/**
 * @file
 * Command-line front end — the analogue of the original artifact's
 * prototype/repair.py driven by repair.conf.
 *
 * Subcommands:
 *
 *   cirfix repair   --design faulty.v --tb <tb_module> --dut <module>
 *                   (--golden golden.v | --oracle trace.csv)
 *                   [--pop N] [--gens N] [--budget SECONDS] [--seed N]
 *                   [--phi F] [--out repaired.v] [--trials N]
 *
 *   cirfix simulate --design design.v --tb <tb_module>
 *                   [--vcd out.vcd] [--trace out.csv]
 *
 *   cirfix localize --design faulty.v --tb <tb_module> --dut <module>
 *                   (--golden golden.v | --oracle trace.csv)
 *
 * Design files may contain the testbench module inline, or pass an
 * extra file with --extra (repeatable) — all files are concatenated.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "core/engine.h"
#include "core/faultloc.h"
#include "core/scenario.h"
#include "core/snapshot.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "sim/vcd.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace {

using namespace cirfix;

struct Args
{
    std::string command;
    std::map<std::string, std::string> flags;
    std::vector<std::string> extras;

    const std::string &
    need(const std::string &key) const
    {
        auto it = flags.find(key);
        if (it == flags.end())
            throw std::runtime_error("missing required flag --" + key);
        return it->second;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : it->second;
    }

    long
    getLong(const std::string &key, long fallback) const
    {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : std::stol(it->second);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : std::stod(it->second);
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        throw std::runtime_error("no subcommand");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0)
            throw std::runtime_error("unexpected argument: " + a);
        std::string key = a.substr(2);
        if (i + 1 >= argc)
            throw std::runtime_error("flag --" + key + " needs a value");
        std::string value = argv[++i];
        if (key == "extra")
            args.extras.push_back(value);
        else
            args.flags[key] = value;
    }
    return args;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << content;
}

std::string
gatherSources(const Args &args)
{
    std::string src = readFile(args.need("design"));
    for (auto &e : args.extras)
        src += "\n" + readFile(e);
    return src;
}

/** Expected behavior: golden design re-simulation or a CSV trace. */
sim::Trace
loadOracle(const Args &args, const sim::ProbeConfig &probe,
           const std::string &tb, const std::string &extra_tb_src)
{
    if (args.flags.count("oracle"))
        return sim::Trace::fromCsv(readFile(args.get("oracle")));
    if (!args.flags.count("golden"))
        throw std::runtime_error("need --golden <file> or --oracle "
                                 "<csv>");
    std::string golden_src = readFile(args.get("golden"));
    golden_src += "\n" + extra_tb_src;
    std::shared_ptr<const verilog::SourceFile> golden =
        verilog::parse(golden_src);
    auto design = sim::elaborate(golden, tb);
    sim::TraceRecorder rec(*design, probe);
    design->run();
    return rec.takeTrace();
}

/** The --golden file holds the DUT only; reuse the tb from --design
 *  by stripping DUT modules that the golden file redefines. */
std::string
testbenchOnlySource(const std::string &combined_src,
                    const std::string &golden_src)
{
    auto combined = verilog::parse(combined_src);
    auto golden = verilog::parse(golden_src);
    std::string out;
    for (auto &m : combined->modules)
        if (!golden->findModule(m->name))
            out += verilog::print(*m) + "\n";
    return out;
}

int
cmdSimulate(const Args &args)
{
    std::string src = gatherSources(args);
    std::string tb = args.need("tb");
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, tb);
    auto design = sim::elaborate(file, tb);
    sim::TraceRecorder rec(*design, probe);
    std::unique_ptr<sim::VcdRecorder> vcd;
    if (args.flags.count("vcd"))
        vcd = std::make_unique<sim::VcdRecorder>(*design);
    auto res = design->run();
    std::cout << "simulation ended at t=" << res.endTime << " ("
              << res.callbacks << " callbacks)\n";
    for (auto &line : design->displayLog())
        std::cout << "$display: " << line << "\n";
    if (args.flags.count("trace")) {
        writeFile(args.get("trace"), rec.trace().toCsv());
        std::cout << "trace written to " << args.get("trace") << "\n";
    } else {
        std::cout << rec.trace().toCsv();
    }
    if (vcd) {
        writeFile(args.get("vcd"), vcd->document());
        std::cout << "vcd written to " << args.get("vcd") << "\n";
    }
    return 0;
}

int
cmdLocalize(const Args &args)
{
    std::string src = gatherSources(args);
    std::string tb = args.need("tb");
    std::string dut = args.need("dut");
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, tb);

    sim::Trace oracle = loadOracle(
        args, probe, tb,
        args.flags.count("golden")
            ? testbenchOnlySource(src, readFile(args.get("golden")))
            : "");

    auto design = sim::elaborate(file, tb);
    sim::TraceRecorder rec(*design, probe);
    design->run();

    auto mismatch = core::outputMismatch(rec.trace(), oracle);
    std::cout << "mismatched outputs:";
    for (auto &m : mismatch)
        std::cout << " " << m;
    std::cout << "\n";

    const verilog::Module *mod = file->findModule(dut);
    if (!mod)
        throw std::runtime_error("module not found: " + dut);
    auto fl = core::faultLocalize(*mod, rec.trace(), oracle);
    std::cout << "fault localization: " << fl.nodeIds.size()
              << " implicated nodes after " << fl.iterations
              << " iterations\n";
    verilog::visitAll(
        *const_cast<verilog::Module *>(mod),
        [&](verilog::Node &n) {
            if (n.kind == verilog::NodeKind::Assign &&
                fl.contains(n.id))
                std::cout << "  line " << n.line << ": "
                          << verilog::printStmt(
                                 *n.as<verilog::Assign>());
        });
    return 0;
}

int
cmdRepair(const Args &args)
{
    std::string src = gatherSources(args);
    std::string tb = args.need("tb");
    std::string dut = args.need("dut");
    std::shared_ptr<const verilog::SourceFile> faulty =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*faulty, tb);

    sim::Trace oracle = loadOracle(
        args, probe, tb,
        args.flags.count("golden")
            ? testbenchOnlySource(src, readFile(args.get("golden")))
            : "");

    core::EngineConfig cfg;
    cfg.popSize = static_cast<int>(args.getLong("pop", 500));
    cfg.maxGenerations = static_cast<int>(args.getLong("gens", 20));
    cfg.maxSeconds = args.getDouble("budget", 60.0);
    cfg.fitness.phi = args.getDouble("phi", 2.0);
    cfg.numThreads = static_cast<int>(args.getLong("threads", 0));
    cfg.evalDeadlineSeconds =
        args.getDouble("deadline", cfg.evalDeadlineSeconds);
    cfg.evalMemoryBudget = static_cast<uint64_t>(args.getLong(
        "mem-budget", static_cast<long>(cfg.evalMemoryBudget)));
    cfg.snapshotPath = args.get("snapshot");
    cfg.snapshotEvery =
        static_cast<int>(args.getLong("snapshot-every", 1));
    int trials = static_cast<int>(args.getLong("trials", 5));
    uint64_t seed0 =
        static_cast<uint64_t>(args.getLong("seed", 1000));

    std::unique_ptr<std::ofstream> log;
    if (args.flags.count("log"))
        log = std::make_unique<std::ofstream>(args.get("log"));

    auto report = [&](const core::RepairResult &res) {
        std::cout << "  " << res.fitnessEvals << " fitness probes, "
                  << res.generations << " generations, " << res.seconds
                  << "s\n"
                  << "  outcomes: " << res.outcomes.summary() << "\n";
        if (!res.found)
            return 2;
        std::cout << "repair found: " << res.patch.describe() << "\n";
        if (args.flags.count("out")) {
            writeFile(args.get("out"), res.repairedSource);
            std::cout << "repaired design written to "
                      << args.get("out") << "\n";
        } else {
            std::cout << res.repairedSource;
        }
        return 0;
    };

    // --resume <snapshot>: continue an interrupted run bit-identically
    // (one trial; the snapshot pins the seed and progress).
    if (args.flags.count("resume")) {
        core::EngineState state =
            core::loadSnapshot(args.get("resume"));
        cfg.seed = state.seed;
        if (log) {
            cfg.onGeneration = [&log](int gen, double best,
                                      long evals) {
                *log << "trial 1 gen " << gen << " best " << best
                     << " evals " << evals << "\n";
                log->flush();
            };
        }
        core::RepairEngine engine(faulty, tb, dut, probe, oracle, cfg);
        std::cout << "resuming from " << args.get("resume")
                  << " (seed " << state.seed << ", "
                  << state.generationsDone << " generations done)...\n";
        return report(engine.resume(state));
    }

    for (int trial = 0; trial < trials; ++trial) {
        cfg.seed = seed0 + static_cast<uint64_t>(trial) * 7919;
        if (log) {
            cfg.onGeneration = [&log, trial](int gen, double best,
                                             long evals) {
                *log << "trial " << trial + 1 << " gen " << gen
                     << " best " << best << " evals " << evals
                     << "\n";
                log->flush();
            };
        }
        core::RepairEngine engine(faulty, tb, dut, probe, oracle, cfg);
        std::cout << "trial " << trial + 1 << "/" << trials
                  << " (seed " << cfg.seed << ")...\n";
        core::RepairResult res = engine.run();
        if (report(res) == 0)
            return 0;
    }
    std::cout << "no repair found within resource bounds\n";
    return 2;
}

void
usage()
{
    std::cerr <<
        "usage: cirfix <repair|simulate|localize> [flags]\n"
        "  repair   --design f.v --tb TB --dut MOD "
        "(--golden g.v | --oracle t.csv)\n"
        "           [--pop N] [--gens N] [--budget S] [--seed N] "
        "[--phi F] [--trials N] [--threads N] [--out r.v]\n"
        "           [--deadline S] [--mem-budget BYTES]\n"
        "           [--snapshot f.snap] [--snapshot-every N] "
        "[--resume f.snap]\n"
        "  simulate --design f.v --tb TB [--vcd o.vcd] "
        "[--trace o.csv]\n"
        "  localize --design f.v --tb TB --dut MOD "
        "(--golden g.v | --oracle t.csv)\n"
        "  (--extra file.v may be repeated to add source files)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args = parseArgs(argc, argv);
        if (args.command == "repair")
            return cmdRepair(args);
        if (args.command == "simulate")
            return cmdSimulate(args);
        if (args.command == "localize")
            return cmdLocalize(args);
        usage();
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        usage();
        return 1;
    }
}
