/**
 * @file
 * Command-line front end — the analogue of the original artifact's
 * prototype/repair.py driven by repair.conf, plus the client and
 * daemon sides of the repair service.
 *
 * Local subcommands:
 *
 *   cirfix repair   --design faulty.v --tb <tb_module> --dut <module>
 *                   (--golden golden.v | --oracle trace.csv)
 *                   [--pop N] [--gens N] [--budget SECONDS] [--seed N]
 *                   [--phi F] [--out repaired.v] [--trials N]
 *
 *   cirfix simulate --design design.v --tb <tb_module>
 *                   [--vcd out.vcd] [--trace out.csv]
 *                   [--backend event|compiled|auto]
 *
 *   cirfix diffsim  [--project NAME] [--defect ID]
 *                   [--design f.v --tb <tb_module>]
 *                   (differential harness: run every benchmark design
 *                   and defect variant under both the event-driven
 *                   and compiled backends, fail on any sampled-trace
 *                   mismatch with a minimized reproducer)
 *
 *   cirfix localize --design faulty.v --tb <tb_module> --dut <module>
 *                   (--golden golden.v | --oracle trace.csv)
 *
 *   cirfix lint     <file.v>... [--json] [--Werror]
 *                   [--waivers FILE] [--check id=severity]
 *
 *   cirfix lint-bench  [--Werror] [--waivers FILE]
 *                   [--check id=severity]
 *                   (lints every seed benchmark design)
 *
 *   cirfix witness  --golden g.v --patched p.v --dut <module>
 *                   [--seed N] [--tries N] [--cycles N]
 *                   [--out bench.v] [--json]
 *                   (search for a minimal stimulus separating the two)
 *
 * Witness-driven hardening: `repair --harden 1` additionally needs
 * --golden (for witness generation) plus --verify-tb/--verify-module
 * (the held-out bench that exposes overfitting); when a found patch
 * fails the held-out bench, a discriminating witness bench is
 * generated, installed into the oracle, and the run resumes from its
 * discovery-point snapshot (pass --snapshot to enable resume; without
 * it each hardening round restarts).
 *
 * Service subcommands (see src/service/):
 *
 *   cirfix serve    --socket PATH | --listen ADDR  --state-dir DIR
 *                   [--workers N] [--queue-depth N]
 *                   [--max-eval-budget N] [--max-budget-seconds S]
 *
 *   cirfix coordinator --listen ADDR --state-dir DIR
 *                   [--local-workers N] [--min-workers N]
 *                   [--lease-seconds S] [admission flags as serve]
 *                   (fleet coordinator: jobs run on remote workers)
 *
 *   cirfix worker   --connect ADDR --work-dir DIR [--name NAME]
 *                   (claims and executes jobs from a coordinator)
 *
 *   cirfix submit   --socket|--connect ADDR <repair inputs>
 *                   [--priority N]
 *   cirfix status   --socket|--connect ADDR --id N
 *   cirfix list     --socket|--connect ADDR
 *   cirfix cancel   --socket|--connect ADDR --id N
 *   cirfix result   --socket|--connect ADDR --id N [--out repaired.v]
 *   cirfix watch    --socket|--connect ADDR --id N
 *
 * Addresses are "unix:PATH", "tcp:host:port", or a bare socket path.
 * Client commands take [--timeout S] (connect + per-frame I/O
 * deadline; expiry exits with code 5) and [--retry N] (connect
 * attempts with exponential backoff).
 *
 * Design files may contain the testbench module inline, or pass an
 * extra file with --extra (repeatable) — all files are concatenated.
 *
 * Exit codes (stable; scripts rely on them):
 *   0  repair found (repair/result), or the command succeeded
 *   1  lint found error-severity diagnostics (lint/lint-bench only)
 *   2  no repair within the resource budget (or job canceled first)
 *   3  usage error: bad flags, bad request, unknown job
 *   4  internal error: I/O failure, malformed design, server fault
 *   5  --timeout expired before the server answered
 */

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "benchmarks/registry.h"
#include "core/engine.h"
#include "core/faultloc.h"
#include "core/island.h"
#include "core/scenario.h"
#include "core/snapshot.h"
#include "core/witness.h"
#include "lint/lint.h"
#include "service/client.h"
#include "service/fleet.h"
#include "service/server.h"
#include "sim/difftest.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "sim/vcd.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace {

using namespace cirfix;

constexpr int kExitRepairFound = 0;
constexpr int kExitLintErrors = 1;
constexpr int kExitNoRepair = 2;
constexpr int kExitUsage = 3;
constexpr int kExitInternal = 4;
constexpr int kExitTimeout = 5;

/** Bad flags / bad invocation — exits with kExitUsage. */
class UsageError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

struct Args
{
    std::string command;
    std::map<std::string, std::string> flags;
    std::vector<std::string> extras;
    /** Bare (non-flag) arguments; only the lint commands take any. */
    std::vector<std::string> positional;
    /** Repeatable --check id=severity overrides, in order. */
    std::vector<std::string> checkOverrides;

    const std::string &
    need(const std::string &key) const
    {
        auto it = flags.find(key);
        if (it == flags.end())
            throw UsageError("missing required flag --" + key);
        return it->second;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : it->second;
    }

    long
    getLong(const std::string &key, long fallback) const
    {
        auto it = flags.find(key);
        if (it == flags.end())
            return fallback;
        try {
            return std::stol(it->second);
        } catch (const std::exception &) {
            throw UsageError("flag --" + key +
                             " wants an integer, got '" + it->second +
                             "'");
        }
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = flags.find(key);
        if (it == flags.end())
            return fallback;
        try {
            return std::stod(it->second);
        } catch (const std::exception &) {
            throw UsageError("flag --" + key + " wants a number, got '" +
                             it->second + "'");
        }
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        throw UsageError("no subcommand");
    args.command = argv[1];
    const bool lint_cmd =
        args.command == "lint" || args.command == "lint-bench";
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0) {
            // Only the lint commands take bare file operands; for
            // everything else a stray word is a usage error.
            if (!lint_cmd)
                throw UsageError("unexpected argument: " + a);
            args.positional.push_back(a);
            continue;
        }
        std::string key = a.substr(2);
        // Boolean switches take no value.
        if ((lint_cmd && (key == "json" || key == "Werror")) ||
            (args.command == "witness" && key == "json")) {
            args.flags[key] = "1";
            continue;
        }
        if (i + 1 >= argc)
            throw UsageError("flag --" + key + " needs a value");
        std::string value = argv[++i];
        if (key == "extra")
            args.extras.push_back(value);
        else if (key == "check")
            args.checkOverrides.push_back(value);
        else
            args.flags[key] = value;
    }
    return args;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << content;
}

std::string
gatherSources(const Args &args)
{
    std::string src = readFile(args.need("design"));
    for (auto &e : args.extras)
        src += "\n" + readFile(e);
    return src;
}

/** Expected behavior: golden design re-simulation or a CSV trace. */
sim::Trace
loadOracle(const Args &args, const sim::ProbeConfig &probe,
           const std::string &tb, const std::string &extra_tb_src)
{
    if (args.flags.count("oracle"))
        return sim::Trace::fromCsv(readFile(args.get("oracle")));
    if (!args.flags.count("golden"))
        throw UsageError("need --golden <file> or --oracle <csv>");
    std::string golden_src = readFile(args.get("golden"));
    golden_src += "\n" + extra_tb_src;
    std::shared_ptr<const verilog::SourceFile> golden =
        verilog::parse(golden_src);
    auto design = sim::elaborate(golden, tb);
    sim::TraceRecorder rec(*design, probe);
    design->run();
    return rec.takeTrace();
}

/** The --golden file holds the DUT only; reuse the tb from --design
 *  by stripping DUT modules that the golden file redefines. */
std::string
testbenchOnlySource(const std::string &combined_src,
                    const std::string &golden_src)
{
    auto combined = verilog::parse(combined_src);
    auto golden = verilog::parse(golden_src);
    std::string out;
    for (auto &m : combined->modules)
        if (!golden->findModule(m->name))
            out += verilog::print(*m) + "\n";
    return out;
}

/** --backend event|compiled|auto (default event). */
sim::SimBackend
backendFromArgs(const Args &args)
{
    std::string name = args.get("backend", "event");
    if (name == "event")
        return sim::SimBackend::Event;
    if (name == "compiled")
        return sim::SimBackend::Compiled;
    if (name == "auto")
        return sim::SimBackend::Auto;
    throw UsageError("--backend wants event|compiled|auto, got '" +
                     name + "'");
}

void
printCompiledStats(const sim::CompiledStats &cs)
{
    std::cout << "compiled backend: " << cs.modulesCompiled
              << " module(s) compiled, fallback_count="
              << cs.modulesFallback << ", two-state evals "
              << cs.twoStateEvals << ", 4-state bails "
              << cs.fourStateFallbacks << "\n";
}

int
cmdSimulate(const Args &args)
{
    std::string src = gatherSources(args);
    std::string tb = args.need("tb");
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, tb);
    sim::SimGuards guards;
    guards.backend = backendFromArgs(args);
    auto design = sim::elaborate(file, tb, guards);
    sim::TraceRecorder rec(*design, probe);
    std::unique_ptr<sim::VcdRecorder> vcd;
    if (args.flags.count("vcd"))
        vcd = std::make_unique<sim::VcdRecorder>(*design);
    auto res = design->run();
    std::cout << "simulation ended at t=" << res.endTime << " ("
              << res.callbacks << " callbacks)\n";
    for (auto &line : design->displayLog())
        std::cout << "$display: " << line << "\n";
    if (args.flags.count("trace")) {
        writeFile(args.get("trace"), rec.trace().toCsv());
        std::cout << "trace written to " << args.get("trace") << "\n";
    } else {
        std::cout << rec.trace().toCsv();
    }
    if (vcd) {
        writeFile(args.get("vcd"), vcd->document());
        std::cout << "vcd written to " << args.get("vcd") << "\n";
    }
    if (guards.backend != sim::SimBackend::Event)
        printCompiledStats(design->compiledStats());
    return 0;
}

/**
 * Differential backend harness: every benchmark design (11 golden
 * projects) and every defect variant (32), or a user-supplied design,
 * simulated under both backends and compared sample-for-sample.
 * Exits nonzero on any mismatch, printing the minimized reproducer.
 */
int
cmdDiffsim(const Args &args)
{
    struct Case
    {
        std::string name;
        std::shared_ptr<const verilog::SourceFile> file;
        std::string top;
    };
    std::vector<Case> cases;

    if (args.flags.count("design")) {
        std::string src = gatherSources(args);
        cases.push_back({args.get("design"),
                         std::shared_ptr<const verilog::SourceFile>(
                             verilog::parse(src)),
                         args.need("tb")});
    } else {
        std::string only_project = args.get("project");
        std::string only_defect = args.get("defect");
        if (only_defect.empty())
            for (const core::ProjectSpec &p : bench::allProjects()) {
                if (!only_project.empty() && p.name != only_project)
                    continue;
                cases.push_back(
                    {"project " + p.name,
                     std::shared_ptr<const verilog::SourceFile>(
                         verilog::parse(p.goldenSource + "\n" +
                                        p.testbenchSource)),
                     p.tbModule});
            }
        for (const core::DefectSpec &d : bench::allDefects()) {
            if (!only_defect.empty() && d.id != only_defect)
                continue;
            const core::ProjectSpec &p = bench::getProject(d.project);
            if (!only_project.empty() && p.name != only_project)
                continue;
            std::string faulty =
                core::applyRewrites(p.goldenSource, d.rewrites);
            cases.push_back(
                {"defect " + d.id,
                 std::shared_ptr<const verilog::SourceFile>(
                     verilog::parse(faulty + "\n" +
                                    p.testbenchSource)),
                 p.tbModule});
        }
        if (cases.empty())
            throw UsageError("no benchmark matches the given filter");
    }

    sim::CompiledStats total;
    int mismatches = 0;
    for (const Case &c : cases) {
        sim::ProbeConfig probe = sim::deriveProbeConfig(*c.file, c.top);
        sim::DiffResult r = sim::diffBackends(c.file, c.top, probe);
        total.modulesCompiled += r.stats.modulesCompiled;
        total.modulesFallback += r.stats.modulesFallback;
        total.twoStateEvals += r.stats.twoStateEvals;
        total.fourStateFallbacks += r.stats.fourStateFallbacks;
        if (r.match) {
            std::cout << "  ok  " << c.name << " ("
                      << r.eventTrace.rows().size() << " samples, "
                      << r.stats.modulesCompiled << " compiled/"
                      << r.stats.modulesFallback << " fallback)\n";
        } else {
            ++mismatches;
            std::cout << "MISMATCH " << c.name << "\n  reproducer: "
                      << r.mismatch << "\n";
        }
    }
    std::cout << cases.size() << " design(s), " << mismatches
              << " mismatch(es); designs_compiled="
              << total.modulesCompiled
              << " fallback_count=" << total.modulesFallback
              << " two_state_evals=" << total.twoStateEvals
              << " four_state_fallbacks=" << total.fourStateFallbacks
              << "\n";
    return mismatches == 0 ? 0 : 1;
}

int
cmdLocalize(const Args &args)
{
    std::string src = gatherSources(args);
    std::string tb = args.need("tb");
    std::string dut = args.need("dut");
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, tb);

    sim::Trace oracle = loadOracle(
        args, probe, tb,
        args.flags.count("golden")
            ? testbenchOnlySource(src, readFile(args.get("golden")))
            : "");

    auto design = sim::elaborate(file, tb);
    sim::TraceRecorder rec(*design, probe);
    design->run();

    auto mismatch = core::outputMismatch(rec.trace(), oracle);
    std::cout << "mismatched outputs:";
    for (auto &m : mismatch)
        std::cout << " " << m;
    std::cout << "\n";

    const verilog::Module *mod = file->findModule(dut);
    if (!mod)
        throw std::runtime_error("module not found: " + dut);
    auto fl = core::faultLocalize(*mod, rec.trace(), oracle);
    std::cout << "fault localization: " << fl.nodeIds.size()
              << " implicated nodes after " << fl.iterations
              << " iterations\n";
    verilog::visitAll(
        *const_cast<verilog::Module *>(mod),
        [&](verilog::Node &n) {
            if (n.kind == verilog::NodeKind::Assign &&
                fl.contains(n.id))
                std::cout << "  line " << n.line << ": "
                          << verilog::printStmt(
                                 *n.as<verilog::Assign>());
        });
    return 0;
}

// ---------------------------------------------------------------
// Lint subcommands
// ---------------------------------------------------------------

lint::Severity
parseSeverity(const std::string &name)
{
    if (name == "off")
        return lint::Severity::Off;
    if (name == "warning")
        return lint::Severity::Warning;
    if (name == "error")
        return lint::Severity::Error;
    throw UsageError("unknown severity '" + name +
                     "' (want off|warning|error)");
}

/** Shared by lint and lint-bench: --check / --waivers -> Options. */
lint::Options
lintOptionsFromArgs(const Args &args)
{
    lint::Options opts;
    for (const std::string &ov : args.checkOverrides) {
        size_t eq = ov.find('=');
        if (eq == std::string::npos)
            throw UsageError("--check wants id=severity, got '" + ov +
                             "'");
        std::string id = ov.substr(0, eq);
        bool known = false;
        for (const lint::CheckInfo &c : lint::checkRegistry())
            known = known || id == c.id;
        if (!known)
            throw UsageError("unknown lint check '" + id + "'");
        opts.overrides[id] = parseSeverity(ov.substr(eq + 1));
    }
    if (args.flags.count("waivers")) {
        try {
            opts.waivers =
                lint::parseWaivers(readFile(args.get("waivers")));
        } catch (const std::runtime_error &e) {
            throw UsageError(std::string("bad waiver file: ") +
                             e.what());
        }
    }
    return opts;
}

/** Exit status shared by lint and lint-bench: --Werror promotes
 *  unwaived warnings to failures. */
int
lintExitCode(int errors, int warnings, bool werror)
{
    return errors + (werror ? warnings : 0) > 0 ? kExitLintErrors
                                                : kExitRepairFound;
}

int
cmdLint(const Args &args)
{
    std::vector<std::string> files = args.positional;
    if (args.flags.count("design"))
        files.push_back(args.get("design"));
    for (const std::string &e : args.extras)
        files.push_back(e);
    if (files.empty())
        throw UsageError("lint wants at least one Verilog file");
    std::string src;
    for (const std::string &f : files)
        src += readFile(f) + "\n";
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(src);
    lint::Result res = lint::run(*file, lintOptionsFromArgs(args));
    if (args.flags.count("json"))
        std::cout << lint::renderJson(res);
    else
        std::cout << lint::renderText(res);
    return lintExitCode(res.errors, res.warnings,
                        args.flags.count("Werror") > 0);
}

int
cmdLintBench(const Args &args)
{
    // Lint every seed design in the benchmark registry: each
    // project's golden source and each defect's faulty source, both
    // together with the repair testbench (cross-module port-width
    // checks want the instantiating side present). No simulation —
    // this is the static sweep CI gates on.
    const lint::Options opts = lintOptionsFromArgs(args);
    const bool werror = args.flags.count("Werror") > 0;
    int errors = 0;
    int warnings = 0;
    auto sweep = [&](const std::string &name, const std::string &src) {
        auto file = verilog::parse(src);
        lint::Result res = lint::run(*file, opts);
        errors += res.errors;
        warnings += res.warnings;
        std::cout << name << ": " << res.errors << " error(s), "
                  << res.warnings << " warning(s)\n";
        if (res.errors + (werror ? res.warnings : 0) > 0)
            std::cout << lint::renderText(res);
    };
    for (const core::ProjectSpec &p : bench::allProjects())
        sweep(p.name,
              p.goldenSource + "\n" + p.testbenchSource);
    for (const core::DefectSpec &d : bench::allDefects()) {
        const core::ProjectSpec &p = bench::getProject(d.project);
        sweep(d.id, core::applyRewrites(p.goldenSource, d.rewrites) +
                        "\n" + p.testbenchSource);
    }
    std::cout << "lint-bench total: " << errors << " error(s), "
              << warnings << " warning(s)\n";
    return lintExitCode(errors, warnings, werror);
}

// ---------------------------------------------------------------
// Witness generation
// ---------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Witness search knobs shared by `witness` and `repair --harden`. */
core::WitnessOptions
witnessOptionsFromArgs(const Args &args)
{
    core::WitnessOptions wo;
    wo.seed = static_cast<uint64_t>(
        args.getLong("wseed", static_cast<long>(wo.seed)));
    wo.maxTries =
        static_cast<int>(args.getLong("tries", wo.maxTries));
    wo.maxCycles =
        static_cast<int>(args.getLong("cycles", wo.maxCycles));
    wo.maxRounds =
        static_cast<int>(args.getLong("rounds", wo.maxRounds));
    return wo;
}

int
cmdWitness(const Args &args)
{
    std::string golden_src = readFile(args.need("golden"));
    std::string patched_src = readFile(args.need("patched"));
    std::string dut = args.need("dut");
    core::WitnessOptions wo = witnessOptionsFromArgs(args);
    wo.seed = static_cast<uint64_t>(
        args.getLong("seed", static_cast<long>(wo.seed)));

    core::WitnessSearchResult ws = core::findWitness(
        golden_src, patched_src, dut, wo, "__cirfix_witness0",
        "cirfix witness: " + args.get("golden") + " vs " +
            args.get("patched"));

    if (args.flags.count("json")) {
        std::ostringstream os;
        os << "{\"found\": " << (ws.found ? "true" : "false")
           << ", \"tries\": " << ws.tries
           << ", \"coverage_pool\": " << ws.coveragePool;
        if (ws.found) {
            os << ", \"steps\": " << ws.steps.size()
               << ", \"steps_before_min\": " << ws.stepsBeforeMin
               << ", \"minimize_tests\": " << ws.minimizeTests
               << ", \"module\": \"" << jsonEscape(ws.bench.module)
               << "\", \"clock\": \"" << jsonEscape(ws.bench.probe.clock)
               << "\", \"signals\": [";
            for (size_t i = 0; i < ws.bench.probe.signals.size(); ++i)
                os << (i ? ", " : "") << "\""
                   << jsonEscape(ws.bench.probe.signals[i]) << "\"";
            os << "], \"oracle_rows\": " << ws.bench.oracle.rows().size()
               << ", \"bench_source\": \"" << jsonEscape(ws.bench.source)
               << "\", \"oracle_csv\": \""
               << jsonEscape(ws.bench.oracle.toCsv()) << "\"";
        }
        os << "}\n";
        std::cout << os.str();
    } else if (ws.found) {
        std::cout << "witness found after " << ws.tries
                  << " stimuli: " << ws.stepsBeforeMin
                  << " cycle(s) minimized to " << ws.steps.size()
                  << " (" << ws.minimizeTests << " minimizer tests, "
                  << ws.coveragePool << " novel behaviors pooled)\n";
    } else {
        std::cout << "no witness found after " << ws.tries
                  << " stimuli (the designs may be equivalent under "
                  << "short bounded stimuli)\n";
    }
    if (ws.found) {
        if (args.flags.count("out")) {
            writeFile(args.get("out"), ws.bench.source);
            std::cout << "witness bench written to " << args.get("out")
                      << "\n";
        } else if (!args.flags.count("json")) {
            std::cout << ws.bench.source;
        }
    }
    return ws.found ? kExitRepairFound : kExitNoRepair;
}

int
cmdRepair(const Args &args)
{
    std::string src = gatherSources(args);
    std::string tb = args.need("tb");
    std::string dut = args.need("dut");
    std::shared_ptr<const verilog::SourceFile> faulty =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*faulty, tb);

    sim::Trace oracle = loadOracle(
        args, probe, tb,
        args.flags.count("golden")
            ? testbenchOnlySource(src, readFile(args.get("golden")))
            : "");

    core::EngineConfig cfg;
    cfg.popSize = static_cast<int>(args.getLong("pop", 500));
    cfg.maxGenerations = static_cast<int>(args.getLong("gens", 20));
    cfg.maxSeconds = args.getDouble("budget", 60.0);
    cfg.fitness.phi = args.getDouble("phi", 2.0);
    cfg.numThreads = static_cast<int>(args.getLong("threads", 0));
    cfg.evalDeadlineSeconds =
        args.getDouble("deadline", cfg.evalDeadlineSeconds);
    cfg.evalMemoryBudget = static_cast<uint64_t>(args.getLong(
        "mem-budget", static_cast<long>(cfg.evalMemoryBudget)));
    cfg.earlyAbort = args.getLong("early-abort", 1) != 0;
    cfg.lintPrescreen = args.getLong("lint", 1) != 0;
    cfg.offspringPerGen =
        static_cast<int>(args.getLong("offspring", 0));
    cfg.snapshotPath = args.get("snapshot");
    cfg.snapshotEvery =
        static_cast<int>(args.getLong("snapshot-every", 1));
    cfg.backend = backendFromArgs(args);
    int trials = static_cast<int>(args.getLong("trials", 5));
    uint64_t seed0 =
        static_cast<uint64_t>(args.getLong("seed", 1000));

    std::unique_ptr<std::ofstream> log;
    if (args.flags.count("log"))
        log = std::make_unique<std::ofstream>(args.get("log"));

    auto report = [&](const core::RepairResult &res) {
        std::cout << "  " << res.fitnessEvals << " fitness probes, "
                  << res.generations << " generations, " << res.seconds
                  << "s\n"
                  << "  outcomes: " << res.outcomes.summary() << "\n";
        if (res.earlyAborts > 0) {
            uint64_t rows = res.rowsScored + res.rowsSkipped;
            std::cout << "  early aborts: " << res.earlyAborts << " ("
                      << res.rowsSkipped << "/" << rows
                      << " oracle rows skipped)\n";
        }
        if (res.lintRejects > 0)
            std::cout << "  lint rejects: " << res.lintRejects
                      << " (candidates never simulated)\n";
        if (cfg.backend != sim::SimBackend::Event)
            std::cout << "  compiled backend: "
                      << res.compiled.modulesCompiled
                      << " module(s) compiled, fallback_count="
                      << res.compiled.modulesFallback
                      << ", two-state evals "
                      << res.compiled.twoStateEvals
                      << ", 4-state bails "
                      << res.compiled.fourStateFallbacks << "\n";
        if (!res.found)
            return kExitNoRepair;
        std::cout << "repair found: " << res.patch.describe() << "\n";
        if (args.flags.count("out")) {
            writeFile(args.get("out"), res.repairedSource);
            std::cout << "repaired design written to "
                      << args.get("out") << "\n";
        } else {
            std::cout << res.repairedSource;
        }
        return kExitRepairFound;
    };

    // --islands K: island-model evolution (core/island.h). K derived
    // subpopulations evolve in parallel threads and exchange elites
    // every --migration-interval generations; the run is bit-identical
    // per (seed, K, schedule) and prints the canonical fingerprint so
    // it can be compared against a distributed fleet run.
    if (args.getLong("islands", 1) > 1) {
        core::IslandConfig ic;
        ic.islands = static_cast<int>(args.getLong("islands", 1));
        ic.migrationInterval = static_cast<int>(args.getLong(
            "migration-interval", ic.migrationInterval));
        ic.migrantsPerIsland = static_cast<int>(
            args.getLong("migrants", ic.migrantsPerIsland));
        if (ic.migrationInterval < 1 || ic.migrantsPerIsland < 0)
            throw UsageError("--migration-interval wants >= 1 and "
                             "--migrants wants >= 0");
        std::string snapDir = args.get("snapshot");
        cfg.snapshotPath.clear();  // per-island paths live in snapDir
        for (int trial = 0; trial < trials; ++trial) {
            cfg.seed = seed0 + static_cast<uint64_t>(trial) * 7919;
            std::function<void(const core::GenerationStats &)> onGen;
            if (log)
                onGen = [&log,
                         trial](const core::GenerationStats &g) {
                    *log << "trial " << trial + 1 << " island "
                         << g.island << " epoch " << g.epoch << " gen "
                         << g.generation << " best " << g.bestFitness
                         << " evals " << g.fitnessEvals << "\n";
                    log->flush();
                };
            std::cout << "trial " << trial + 1 << "/" << trials
                      << " (seed " << cfg.seed << ", " << ic.islands
                      << " islands, migrate every "
                      << ic.migrationInterval << " gens)...\n";
            core::IslandOutcome outcome =
                core::runIslands(faulty, tb, dut, probe, oracle, cfg,
                                 ic, snapDir, onGen);
            for (const core::IslandStats &st : outcome.islands) {
                std::cout << "  island " << st.island << ": "
                          << st.generations << " generations, best "
                          << st.bestFitness << ", "
                          << st.fitnessEvals << " evals, "
                          << st.fleetCacheHits << " fleet cache hits";
                if (st.found)
                    std::cout << " [found]";
                std::cout << "\n";
            }
            std::cout << "  migration: "
                      << outcome.migration.elitesExported
                      << " elites exported, "
                      << outcome.migration.migrantsBroadcast
                      << " migrants broadcast, "
                      << outcome.migration.migrantDuplicates
                      << " duplicates, "
                      << outcome.migration.elitesLost << " lost\n";
            if (outcome.found)
                std::cout << "  winner: island "
                          << outcome.winnerIsland << " at epoch "
                          << outcome.winnerEpoch << "\n";
            std::cout << "  fingerprint: " << outcome.fingerprint
                      << "\n";
            if (report(outcome.result) == kExitRepairFound)
                return kExitRepairFound;
        }
        std::cout << "no repair found within resource bounds\n";
        return kExitNoRepair;
    }

    // --harden 1: witness-driven oracle hardening. Needs the full
    // scenario — the golden design (witness generation compares
    // against it) and a held-out verification bench (which exposes
    // overfitting in the first place).
    if (args.getLong("harden", 0) != 0) {
        if (!args.flags.count("golden"))
            throw UsageError("--harden 1 needs --golden <file>");
        std::string golden_src = readFile(args.get("golden"));
        core::ProjectSpec proj;
        proj.name = "cli";
        proj.description = "cirfix repair --harden";
        proj.goldenSource = golden_src;
        proj.testbenchSource = testbenchOnlySource(src, golden_src);
        proj.verifySource = readFile(args.need("verify-tb"));
        proj.dutModule = dut;
        proj.tbModule = tb;
        proj.verifyModule = args.need("verify-module");
        // The faulty DUT is every module of --design that the golden
        // file also defines (the rest is the repair testbench).
        std::string faulty_dut;
        {
            auto dfile = verilog::parse(src);
            auto gfile = verilog::parse(golden_src);
            for (auto &m : dfile->modules)
                if (gfile->findModule(m->name))
                    faulty_dut += verilog::print(*m) + "\n";
        }
        core::Scenario sc = core::buildScenarioFromSources(
            proj, faulty_dut, cfg.simLimits);
        core::WitnessOptions wo = witnessOptionsFromArgs(args);
        for (int trial = 0; trial < trials; ++trial) {
            cfg.seed = seed0 + static_cast<uint64_t>(trial) * 7919;
            wo.seed = cfg.seed;
            std::cout << "trial " << trial + 1 << "/" << trials
                      << " (seed " << cfg.seed << ", hardened)...\n";
            core::HardenedRepairResult hr =
                core::hardenedRepair(sc, cfg, wo);
            if (hr.overfitKills > 0)
                std::cout << "  oracle hardening: " << hr.overfitKills
                          << " overfit patch(es) killed by witnesses ("
                          << hr.rounds << " round(s), "
                          << hr.witnessTries << " stimuli tried, "
                          << hr.resumedFromSnapshot
                          << " snapshot resume(s))\n";
            if (hr.result.found)
                std::cout << "  held-out verification: "
                          << (hr.correct ? "PASS"
                                         : "FAIL (plausible-only)")
                          << "\n";
            if (report(hr.result) == kExitRepairFound)
                return kExitRepairFound;
        }
        std::cout << "no repair found within resource bounds\n";
        return kExitNoRepair;
    }

    // --resume <snapshot>: continue an interrupted run bit-identically
    // (one trial; the snapshot pins the seed and progress).
    if (args.flags.count("resume")) {
        core::EngineState state =
            core::loadSnapshot(args.get("resume"));
        cfg.seed = state.seed;
        if (log) {
            cfg.onGeneration = [&log](const core::GenerationStats &g) {
                *log << "trial 1 gen " << g.generation << " best "
                     << g.bestFitness << " evals " << g.fitnessEvals
                     << " cache " << g.cache.hits << "/"
                     << g.cache.misses << " " << g.outcomes.summary()
                     << "\n";
                log->flush();
            };
        }
        core::RepairEngine engine(faulty, tb, dut, probe, oracle, cfg);
        std::cout << "resuming from " << args.get("resume")
                  << " (seed " << state.seed << ", "
                  << state.generationsDone << " generations done)...\n";
        return report(engine.resume(state));
    }

    for (int trial = 0; trial < trials; ++trial) {
        cfg.seed = seed0 + static_cast<uint64_t>(trial) * 7919;
        if (log) {
            cfg.onGeneration = [&log,
                                trial](const core::GenerationStats &g) {
                *log << "trial " << trial + 1 << " gen "
                     << g.generation << " best " << g.bestFitness
                     << " evals " << g.fitnessEvals << " cache "
                     << g.cache.hits << "/" << g.cache.misses << " "
                     << g.outcomes.summary() << "\n";
                log->flush();
            };
        }
        core::RepairEngine engine(faulty, tb, dut, probe, oracle, cfg);
        std::cout << "trial " << trial + 1 << "/" << trials
                  << " (seed " << cfg.seed << ")...\n";
        core::RepairResult res = engine.run();
        if (report(res) == kExitRepairFound)
            return kExitRepairFound;
    }
    std::cout << "no repair found within resource bounds\n";
    return kExitNoRepair;
}

// ---------------------------------------------------------------
// Service subcommands
// ---------------------------------------------------------------

service::Server *g_server = nullptr;
service::Worker *g_worker = nullptr;

void
onStopSignal(int)
{
    if (g_server)
        g_server->requestStop();  // async-signal-safe (one write())
    if (g_worker)
        g_worker->requestStop();  // async-signal-safe (atomic store)
}

/** Shared by serve and coordinator: admission caps from flags. */
void
admissionFromArgs(const Args &args, service::AdmissionLimits *limits)
{
    limits->queueDepth = static_cast<int>(
        args.getLong("queue-depth", limits->queueDepth));
    limits->maxEvalBudget =
        args.getLong("max-eval-budget", limits->maxEvalBudget);
    limits->maxBudgetSeconds =
        args.getDouble("max-budget-seconds", limits->maxBudgetSeconds);
}

int
runServer(const service::ServerConfig &cfg, const char *banner)
{
    service::Server server(cfg);
    server.start();
    g_server = &server;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    std::cout << banner << " listening on " << server.boundAddress()
              << " (state dir " << cfg.stateDir << ", " << cfg.workers
              << " local worker" << (cfg.workers == 1 ? "" : "s")
              << ")\n"
              << std::flush;
    server.wait();
    server.stop();
    g_server = nullptr;
    std::cout << "daemon stopped; interrupted jobs resume on restart\n";
    return 0;
}

int
cmdServe(const Args &args)
{
    service::ServerConfig cfg;
    cfg.socketPath = args.get("socket");
    cfg.listenAddress = args.get("listen");
    if (cfg.socketPath.empty() && cfg.listenAddress.empty())
        throw UsageError("serve needs --socket PATH or --listen ADDR");
    cfg.stateDir = args.need("state-dir");
    cfg.workers = static_cast<int>(args.getLong("workers", 1));
    admissionFromArgs(args, &cfg.limits);
    return runServer(cfg, "cirfix-repaird");
}

int
cmdCoordinator(const Args &args)
{
    service::ServerConfig cfg;
    cfg.listenAddress = args.need("listen");
    cfg.stateDir = args.need("state-dir");
    // A coordinator executes nothing itself by default: jobs wait for
    // remote workers, and submits with zero workers are rejected with
    // no_workers. --local-workers N blends in local capacity.
    cfg.workers = static_cast<int>(args.getLong("local-workers", 0));
    cfg.fleet.requireWorkers = true;
    cfg.fleet.minWorkers =
        static_cast<int>(args.getLong("min-workers", 1));
    cfg.fleet.leaseSeconds =
        args.getDouble("lease-seconds", cfg.fleet.leaseSeconds);
    if (cfg.fleet.leaseSeconds <= 0)
        throw UsageError("--lease-seconds must be positive");
    admissionFromArgs(args, &cfg.limits);
    return runServer(cfg, "cirfix-coordinator");
}

int
cmdWorker(const Args &args)
{
    service::WorkerConfig wc;
    wc.coordinator = args.need("connect");
    wc.workDir = args.need("work-dir");
    wc.name = args.get("name", "worker");
    service::Worker worker(wc);
    g_worker = &worker;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    std::cout << "cirfix worker '" << wc.name << "' claiming from "
              << wc.coordinator << " (work dir " << wc.workDir << ")\n"
              << std::flush;
    worker.run({});
    g_worker = nullptr;
    service::WorkerStats st = worker.stats();
    std::cout << "worker stopped: " << st.jobsCompleted
              << " job(s) completed, " << st.jobsAbandoned
              << " abandoned, " << st.reconnects << " reconnect(s)\n";
    return 0;
}

/** Client commands accept --connect ADDR (or the legacy --socket). */
std::string
serviceAddress(const Args &args)
{
    if (args.flags.count("connect"))
        return args.get("connect");
    return args.need("socket");
}

/** --timeout S bounds connect + every frame; --retry N adds dial
 *  attempts with exponential backoff. */
service::ClientOptions
clientOptionsFromArgs(const Args &args)
{
    service::ClientOptions opts;
    double timeout = args.getDouble("timeout", 0.0);
    if (timeout < 0)
        throw UsageError("--timeout wants a non-negative number");
    if (timeout > 0) {
        opts.connectTimeout = timeout;
        opts.ioTimeout = timeout;
    }
    opts.connectAttempts =
        static_cast<int>(args.getLong("retry", 1));
    if (opts.connectAttempts < 1)
        throw UsageError("--retry wants at least 1 attempt");
    return opts;
}

/** Shared by submit: the same repair inputs the local repair command
 *  takes, shipped over the wire as a JobSpec. */
service::JobSpec
specFromArgs(const Args &args)
{
    service::JobSpec spec;
    spec.designSource = gatherSources(args);
    spec.tbModule = args.need("tb");
    spec.dutModule = args.need("dut");
    if (args.flags.count("oracle"))
        spec.oracleCsv = readFile(args.get("oracle"));
    else if (args.flags.count("golden"))
        spec.goldenSource = readFile(args.get("golden"));
    else
        throw UsageError("need --golden <file> or --oracle <csv>");
    spec.params.popSize = static_cast<int>(
        args.getLong("pop", spec.params.popSize));
    spec.params.maxGenerations = static_cast<int>(
        args.getLong("gens", spec.params.maxGenerations));
    spec.params.maxSeconds =
        args.getDouble("budget", spec.params.maxSeconds);
    spec.params.seed = static_cast<uint64_t>(
        args.getLong("seed", static_cast<long>(spec.params.seed)));
    spec.params.numThreads = static_cast<int>(
        args.getLong("threads", spec.params.numThreads));
    spec.params.phi = args.getDouble("phi", spec.params.phi);
    spec.params.evalDeadlineSeconds =
        args.getDouble("deadline", spec.params.evalDeadlineSeconds);
    spec.params.evalMemoryBudget = static_cast<uint64_t>(args.getLong(
        "mem-budget",
        static_cast<long>(spec.params.evalMemoryBudget)));
    spec.params.islands = static_cast<int>(
        args.getLong("islands", spec.params.islands));
    spec.params.migrationInterval = static_cast<int>(args.getLong(
        "migration-interval", spec.params.migrationInterval));
    spec.params.migrantsPerIsland = static_cast<int>(
        args.getLong("migrants", spec.params.migrantsPerIsland));
    spec.priority = static_cast<int>(args.getLong("priority", 0));
    return spec;
}

int
cmdSubmit(const Args &args)
{
    service::JobSpec spec = specFromArgs(args);
    service::ClientOptions opts = clientOptionsFromArgs(args);
    // The request id makes a retried submit idempotent: if the
    // connection dies after the server enqueued but before the reply
    // arrived, the retry returns the same job instead of a duplicate.
    std::string requestId = service::Client::newRequestId();
    for (int attempt = 1;; ++attempt) {
        try {
            service::Client client(serviceAddress(args), opts);
            long id = client.submit(spec, requestId);
            std::cout << "submitted job " << id << "\n";
            return 0;
        } catch (const service::ConnectionClosed &) {
            if (attempt >= 3)
                throw;
        }
    }
}

int
cmdStatus(const Args &args)
{
    service::Client client(serviceAddress(args),
                           clientOptionsFromArgs(args));
    std::cout << client.status(args.getLong("id", -1)).dump() << "\n";
    return 0;
}

int
cmdList(const Args &args)
{
    service::Client client(serviceAddress(args),
                           clientOptionsFromArgs(args));
    service::Json jobs = client.list();
    for (const service::Json &job : jobs.items())
        std::cout << job.dump() << "\n";
    return 0;
}

int
cmdCancel(const Args &args)
{
    service::Client client(serviceAddress(args),
                           clientOptionsFromArgs(args));
    long id = args.getLong("id", -1);
    client.cancel(id);
    std::cout << "cancel requested for job " << id << "\n";
    return 0;
}

int
cmdResult(const Args &args)
{
    service::Client client(serviceAddress(args),
                           clientOptionsFromArgs(args));
    long id = args.getLong("id", -1);
    service::Json reply = client.result(id);
    std::string state = reply.str("state");
    if (state == "failed") {
        std::cerr << "job " << id << " failed: " << reply.str("error")
                  << "\n";
        return kExitInternal;
    }
    const service::Json *res = reply.find("result");
    if (!res || !res->isObject()) {
        std::cerr << "job " << id << " is " << state
                  << " but carries no result payload\n";
        return kExitInternal;
    }
    std::cout << "job " << id << " " << state << ": "
              << res->num("fitness_evals") << " fitness probes, "
              << res->num("generations") << " generations\n";
    if (!res->flag("found")) {
        std::cout << (state == "canceled"
                          ? "canceled before a repair was found\n"
                          : "no repair found within resource bounds\n");
        return kExitNoRepair;
    }
    std::cout << "repair found: " << res->str("patch") << "\n";
    if (args.flags.count("out")) {
        writeFile(args.get("out"), res->str("repaired_source"));
        std::cout << "repaired design written to " << args.get("out")
                  << "\n";
    } else {
        std::cout << res->str("repaired_source");
    }
    return kExitRepairFound;
}

int
cmdWatch(const Args &args)
{
    service::Client client(serviceAddress(args),
                           clientOptionsFromArgs(args));
    long id = args.getLong("id", -1);
    client.subscribe(id);
    service::Json ev;
    while (client.recv(&ev)) {
        std::string type = ev.str("type");
        if (type == "end_of_stream")
            return 0;
        if (type == "error")
            throw service::ServiceError(ev.str("code", "internal"),
                                        ev.str("message"));
        std::string kind = ev.str("event");
        if (kind == "generation") {
            std::cout << "job " << id;
            if (ev.has("island"))
                std::cout << " island " << ev.num("island")
                          << " epoch " << ev.num("epoch");
            std::cout << " gen " << ev.num("generation") << " best "
                      << ev.real("best_fitness") << " evals "
                      << ev.num("fitness_evals") << "\n"
                      << std::flush;
        } else if (kind == "state") {
            std::cout << "job " << id << " " << ev.str("state");
            if (ev.has("error"))
                std::cout << " (" << ev.str("error") << ")";
            std::cout << "\n" << std::flush;
        }
    }
    throw std::runtime_error("server closed the event stream early");
}

void
usage(std::ostream &os)
{
    os <<
        "usage: cirfix <command> [flags]\n"
        "\n"
        "local commands:\n"
        "  repair   --design f.v --tb TB --dut MOD "
        "(--golden g.v | --oracle t.csv)\n"
        "           [--pop N] [--gens N] [--budget S] [--seed N] "
        "[--phi F] [--trials N] [--threads N] [--out r.v]\n"
        "           [--deadline S] [--mem-budget BYTES] "
        "[--early-abort 0|1] [--offspring N] [--lint 0|1]\n"
        "           [--snapshot f.snap] [--snapshot-every N] "
        "[--resume f.snap]\n"
        "           [--harden 0|1 --verify-tb v.v --verify-module MOD "
        "[--tries N] [--cycles N] [--rounds N]]\n"
        "           [--backend event|compiled|auto]\n"
        "           [--islands K] [--migration-interval N] "
        "[--migrants M]   (island-model evolution)\n"
        "  simulate --design f.v --tb TB [--vcd o.vcd] "
        "[--trace o.csv] [--backend event|compiled|auto]\n"
        "  diffsim  [--project NAME] [--defect ID] "
        "[--design f.v --tb TB]\n"
        "           (event-vs-compiled differential over the "
        "benchmark suite; exit 1 on any sample mismatch)\n"
        "  localize --design f.v --tb TB --dut MOD "
        "(--golden g.v | --oracle t.csv)\n"
        "  lint     <file.v>... [--json] [--Werror] "
        "[--waivers FILE] [--check id=severity]\n"
        "  lint-bench  [--Werror] [--waivers FILE] "
        "[--check id=severity]   (lint the benchmark suite)\n"
        "  witness  --golden g.v --patched p.v --dut MOD [--seed N]\n"
        "           [--tries N] [--cycles N] [--out bench.v] [--json]\n"
        "           (minimal stimulus separating two designs; exit 2 "
        "when none found)\n"
        "  (--extra file.v may be repeated to add source files)\n"
        "\n"
        "service commands (ADDR = unix:PATH | tcp:host:port | bare "
        "path):\n"
        "  serve    --socket S | --listen ADDR  --state-dir D "
        "[--workers N]\n"
        "           [--queue-depth N] [--max-eval-budget N] "
        "[--max-budget-seconds S]\n"
        "  coordinator --listen ADDR --state-dir D "
        "[--local-workers N]\n"
        "           [--min-workers N] [--lease-seconds S] "
        "[admission flags as serve]\n"
        "  worker   --connect ADDR --work-dir D [--name NAME]\n"
        "  submit   --socket|--connect ADDR <repair inputs> "
        "[--priority N]\n"
        "           [--islands K] [--migration-interval N] "
        "[--migrants M]   (a coordinator shards K islands)\n"
        "  status   --socket|--connect ADDR --id N\n"
        "  list     --socket|--connect ADDR\n"
        "  cancel   --socket|--connect ADDR --id N\n"
        "  result   --socket|--connect ADDR --id N [--out r.v]\n"
        "  watch    --socket|--connect ADDR --id N\n"
        "  (client commands: [--timeout S] exits 5 on expiry; "
        "[--retry N] dial attempts)\n"
        "\n"
        "exit codes:\n"
        "  0  repair found / command succeeded\n"
        "  1  lint found error-severity diagnostics\n"
        "  2  no repair within the resource budget (or job canceled)\n"
        "  3  usage error (bad flags, bad request, unknown job)\n"
        "  4  internal error (I/O failure, malformed design, server "
        "fault)\n"
        "  5  --timeout expired before the server answered\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // A peer that hangs up mid-write must surface as a typed
    // ConnectionClosed from the framing layer, never kill the process
    // with SIGPIPE (sockets already use MSG_NOSIGNAL; this covers the
    // pipe fallback and any stray stdio writes to a closed pager).
    std::signal(SIGPIPE, SIG_IGN);
    try {
        Args args = parseArgs(argc, argv);
        if (args.command == "--help" || args.command == "-h" ||
            args.command == "help") {
            usage(std::cout);
            return 0;
        }
        if (args.command == "repair")
            return cmdRepair(args);
        if (args.command == "diffsim")
            return cmdDiffsim(args);
        if (args.command == "simulate")
            return cmdSimulate(args);
        if (args.command == "localize")
            return cmdLocalize(args);
        if (args.command == "lint")
            return cmdLint(args);
        if (args.command == "lint-bench")
            return cmdLintBench(args);
        if (args.command == "witness")
            return cmdWitness(args);
        if (args.command == "serve")
            return cmdServe(args);
        if (args.command == "coordinator")
            return cmdCoordinator(args);
        if (args.command == "worker")
            return cmdWorker(args);
        if (args.command == "submit")
            return cmdSubmit(args);
        if (args.command == "status")
            return cmdStatus(args);
        if (args.command == "list")
            return cmdList(args);
        if (args.command == "cancel")
            return cmdCancel(args);
        if (args.command == "result")
            return cmdResult(args);
        if (args.command == "watch")
            return cmdWatch(args);
        throw UsageError("unknown subcommand '" + args.command + "'");
    } catch (const UsageError &e) {
        std::cerr << "usage error: " << e.what() << "\n";
        usage(std::cerr);
        return kExitUsage;
    } catch (const service::FrameTimeout &e) {
        std::cerr << "timeout: " << e.what() << "\n";
        return kExitTimeout;
    } catch (const service::DialTimeout &e) {
        std::cerr << "timeout: " << e.what() << "\n";
        return kExitTimeout;
    } catch (const service::ServiceError &e) {
        std::cerr << "service error (" << e.code()
                  << "): " << e.what() << "\n";
        bool server_side = e.code() == service::errc::kInternal ||
                           e.code() == service::errc::kVersionMismatch;
        return server_side ? kExitInternal : kExitUsage;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitInternal;
    }
}
