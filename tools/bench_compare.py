#!/usr/bin/env python3
"""Benchmark-regression gate for CI.

Compares a freshly produced BENCH_repair.json (and, optionally, a
google-benchmark ``--benchmark_format=json`` dump from perf_micro)
against the committed baseline:

* **Gated counters** (deterministic per seed/toolchain — allocator
  counts, fitness evals, rows skipped, the fingerprint-match bit) fail
  the build when they regress by more than the threshold (default 15%).
* **Timing metrics** (evals/sec, per-benchmark real_time) are machine-
  dependent; regressions only warn, so a noisy runner cannot produce a
  flaky gate.

Usage:
    tools/bench_compare.py --baseline BENCH_baseline.json \
        --current BENCH_repair.json \
        [--micro-baseline BENCH_micro_baseline.json] \
        [--micro-current micro.json] \
        [--lint-baseline BENCH_lint_baseline.json] \
        [--lint-current BENCH_lint.json] \
        [--witness-baseline BENCH_witness_baseline.json] \
        [--witness-current BENCH_witness.json] \
        [--fleet-baseline BENCH_fleet_baseline.json] \
        [--fleet-current BENCH_fleet.json] \
        [--island-baseline BENCH_island_baseline.json] \
        [--island-current BENCH_island.json] \
        [--compiled-baseline BENCH_compiled_baseline.json] \
        [--compiled-current BENCH_compiled.json] [--threshold 0.15]

Exit status: 0 = pass (possibly with warnings), 1 = gated regression.
"""

import argparse
import json
import sys

# Gated counters from BENCH_repair.json "counters", with the direction
# that counts as a regression. These are deterministic: any drift means
# the code changed behavior, not that the runner was busy.
GATED = {
    "fitness_evals": "lower",           # more simulations = more work
    "rows_scored": "lower",             # rows the cutoff failed to save
    "rows_skipped": "higher",           # work saved by early abort
    "early_aborts": "higher",           # candidates pruned
    "logic_heap_allocs_per_sim": "lower",
    "eventfn_heap_allocs_per_sim": "lower",
    "slots_allocated_per_sim": "lower",
    "events_scheduled_per_sim": "lower",
    "lint_rejects": "higher",           # doomed mutants pruned pre-sim
}

# Timing metrics from BENCH_repair.json "timing" (warn-only).
TIMING = {
    "evals_per_sec_full": "higher",
    "evals_per_sec_abort": "higher",
    "sim_seconds_per_candidate": "lower",
}


def regression(baseline, current, direction):
    """Fractional regression of current vs baseline (>0 = worse)."""
    if baseline == 0:
        return 1.0 if (direction == "lower" and current > 0) else 0.0
    if direction == "lower":
        return (current - baseline) / baseline
    return (baseline - current) / baseline


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_repair(baseline, current, threshold):
    failures, warnings = [], []

    if not current.get("fingerprint_match", False):
        failures.append(
            "fingerprint_match is false: the early-abort run produced a "
            "different repair than full evaluation (soundness bug)")

    if not current.get("prescreen_fingerprint_match", False):
        failures.append(
            "prescreen_fingerprint_match is false: the lint pre-screen "
            "changed the repair result instead of only what gets "
            "simulated (soundness bug)")

    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for name, direction in GATED.items():
        if name in base_counters and name not in cur_counters:
            # The producer stopped emitting a gated counter: that is
            # how a gate silently erodes, so it fails hard.
            failures.append(
                f"counter {name} present in baseline but missing from "
                "current (producer stopped emitting a gated counter)")
            continue
        if name not in base_counters:
            warnings.append(f"counter {name} missing from baseline; "
                            "skipped (regenerate the baseline)")
            continue
        reg = regression(base_counters[name], cur_counters[name],
                         direction)
        line = (f"{name}: baseline={base_counters[name]} "
                f"current={cur_counters[name]} ({reg:+.1%})")
        if reg > threshold:
            failures.append("gated counter regressed " + line)
        elif reg > 0:
            warnings.append(line)

    base_timing = baseline.get("timing", {})
    cur_timing = current.get("timing", {})
    for name, direction in TIMING.items():
        if name not in base_timing or name not in cur_timing:
            continue
        reg = regression(base_timing[name], cur_timing[name], direction)
        if reg > threshold:
            warnings.append(
                f"timing {name}: baseline={base_timing[name]:.4g} "
                f"current={cur_timing[name]:.4g} ({reg:+.1%}) "
                "[warn-only: machine-dependent]")

    return failures, warnings


def compare_lint(baseline, current, threshold):
    """BENCH_lint.json: per-check diagnostic counts are deterministic —
    any drift is an analyzer behavior change, so they gate exactly, not
    by threshold. Throughput warns only."""
    failures, warnings = [], []

    cur_counters = current.get("counters", {})
    base_counters = baseline.get("counters", {})

    # The golden designs lint clean by construction; a nonzero count
    # means a new false positive, failed outright regardless of what
    # the baseline says.
    if cur_counters.get("golden_errors_total", 0) != 0:
        failures.append(
            "golden_errors_total="
            f"{cur_counters['golden_errors_total']}: a golden design "
            "now lints with error severity (analyzer false positive or "
            "broken golden)")

    for name in sorted(set(base_counters) | set(cur_counters)):
        if name in base_counters and name not in cur_counters:
            failures.append(
                f"lint counter {name} present in baseline but missing "
                "from current (producer stopped emitting a gated "
                "counter)")
            continue
        if name not in base_counters:
            warnings.append(f"lint counter {name} missing from "
                            "baseline; skipped (regenerate the "
                            "baseline)")
            continue
        if base_counters[name] != cur_counters[name]:
            failures.append(
                f"lint counter {name} changed: "
                f"baseline={base_counters[name]} "
                f"current={cur_counters[name]} (deterministic — "
                "regenerate BENCH_lint_baseline.json if intentional)")

    base_timing = baseline.get("timing", {})
    cur_timing = current.get("timing", {})
    if "lints_per_sec" in base_timing and "lints_per_sec" in cur_timing:
        reg = regression(base_timing["lints_per_sec"],
                         cur_timing["lints_per_sec"], "higher")
        if reg > threshold:
            warnings.append(
                f"timing lints_per_sec: "
                f"baseline={base_timing['lints_per_sec']:.4g} "
                f"current={cur_timing['lints_per_sec']:.4g} "
                f"({reg:+.1%}) [warn-only: machine-dependent]")

    return failures, warnings


def compare_witness(baseline, current, threshold):
    """BENCH_witness.json: hardening counters are pure functions of the
    benchmark seeds, so they gate exactly. golden_kills_total is a hard
    invariant — a witness bench that rejects the golden design would
    poison every future repair — and fails outright regardless of the
    baseline. Sweep timing warns only."""
    failures, warnings = [], []

    cur_counters = current.get("counters", {})
    base_counters = baseline.get("counters", {})

    if cur_counters.get("golden_kills_total", 0) != 0:
        failures.append(
            "golden_kills_total="
            f"{cur_counters['golden_kills_total']}: a generated witness "
            "bench rejects the golden design (golden-invariance "
            "violation — witnesses may only kill wrong behavior)")

    for name in sorted(set(base_counters) | set(cur_counters)):
        if name in base_counters and name not in cur_counters:
            failures.append(
                f"witness counter {name} present in baseline but "
                "missing from current (producer stopped emitting a "
                "gated counter)")
            continue
        if name not in base_counters:
            warnings.append(f"witness counter {name} missing from "
                            "baseline; skipped (regenerate the "
                            "baseline)")
            continue
        if base_counters[name] != cur_counters[name]:
            failures.append(
                f"witness counter {name} changed: "
                f"baseline={base_counters[name]} "
                f"current={cur_counters[name]} (deterministic — "
                "regenerate BENCH_witness_baseline.json if intentional)")

    base_timing = baseline.get("timing", {})
    cur_timing = current.get("timing", {})
    if "sweep_seconds" in base_timing and "sweep_seconds" in cur_timing:
        reg = regression(base_timing["sweep_seconds"],
                         cur_timing["sweep_seconds"], "lower")
        if reg > threshold:
            warnings.append(
                f"timing sweep_seconds: "
                f"baseline={base_timing['sweep_seconds']:.4g} "
                f"current={cur_timing['sweep_seconds']:.4g} "
                f"({reg:+.1%}) [warn-only: machine-dependent]")

    return failures, warnings


def compare_fleet(baseline, current, threshold):
    """BENCH_fleet.json: the distributed layer's two hard invariants —
    zero jobs lost, zero jobs duplicated — fail outright regardless of
    the baseline. Every other counter (lease churn, reconnects, chaos
    events) and all timing depend on scheduling, so they only warn."""
    failures, warnings = [], []

    cur_counters = current.get("counters", {})
    base_counters = baseline.get("counters", {})

    for name in ("jobs_lost_total", "jobs_duplicated_total"):
        if cur_counters.get(name, 0) != 0:
            failures.append(
                f"{name}={cur_counters[name]}: the fleet violated its "
                "exactly-once guarantee (hard invariant — never "
                "baseline-relative)")

    # A completed-jobs shortfall that somehow dodged jobs_lost_total
    # (schema drift) still gates.
    submitted = cur_counters.get("jobs_submitted_total", 0)
    done = cur_counters.get("jobs_completed_total", 0)
    if done < submitted:
        failures.append(
            f"jobs_completed_total={done} < "
            f"jobs_submitted_total={submitted}: a job never finished")

    for name in sorted(set(base_counters) | set(cur_counters)):
        if name in ("jobs_lost_total", "jobs_duplicated_total"):
            continue
        if name in base_counters and name not in cur_counters:
            # Fleet counter VALUES are scheduling-dependent (warn
            # only), but a counter disappearing from the report is
            # schema drift, not scheduling noise.
            failures.append(
                f"fleet counter {name} present in baseline but "
                "missing from current (producer stopped emitting it)")
            continue
        if name not in base_counters:
            warnings.append(f"fleet counter {name} missing from "
                            "baseline; skipped (regenerate the "
                            "baseline)")
            continue
        if base_counters[name] != cur_counters[name]:
            warnings.append(
                f"fleet counter {name}: baseline={base_counters[name]} "
                f"current={cur_counters[name]} [warn-only: "
                "scheduling-dependent]")

    base_timing = baseline.get("timing", {})
    cur_timing = current.get("timing", {})
    for name in ("failover_recovery_seconds", "chaos_wall_seconds"):
        if name not in base_timing or name not in cur_timing:
            continue
        reg = regression(base_timing[name], cur_timing[name], "lower")
        if reg > threshold:
            warnings.append(
                f"timing {name}: baseline={base_timing[name]:.4g} "
                f"current={cur_timing[name]:.4g} ({reg:+.1%}) "
                "[warn-only: machine-dependent]")

    return failures, warnings


def compare_island(baseline, current, threshold):
    """BENCH_island.json: the island model's determinism invariants —
    zero elites lost, zero duplicate migrants in a broadcast, K=1
    bit-identical to a plain run — fail outright regardless of the
    baseline, as does the acceleration floor (median generations to
    first plausible must stay >= 2x the single-population run). The
    K=1 fingerprint gates by exact string equality against the
    baseline: any drift means the search itself changed, not just its
    cost. Remaining counters are pure functions of the seed set and
    gate exactly; wall-clock timing warns only."""
    failures, warnings = [], []

    cur_counters = current.get("counters", {})
    base_counters = baseline.get("counters", {})

    for name in ("elites_lost_total", "migrant_duplicates_total"):
        if cur_counters.get(name, 0) != 0:
            failures.append(
                f"{name}={cur_counters[name]}: the migration ledger "
                "violated its determinism contract (hard invariant — "
                "never baseline-relative)")
    if cur_counters.get("k1_matches_plain", 0) != 1:
        failures.append(
            "k1_matches_plain="
            f"{cur_counters.get('k1_matches_plain')}: a 1-island run "
            "diverged from the plain engine on the same seed "
            "(identity violation — never baseline-relative)")
    speedup = cur_counters.get("generations_speedup_x", 0)
    if speedup < 2.0:
        failures.append(
            f"generations_speedup_x={speedup}: the island model no "
            "longer halves the median search depth vs a single "
            "population (hard floor 2.0 — never baseline-relative)")

    base_fps = baseline.get("fingerprints", {})
    cur_fps = current.get("fingerprints", {})
    for name in sorted(set(base_fps) | set(cur_fps)):
        if name not in cur_fps:
            failures.append(
                f"island fingerprint {name} present in baseline but "
                "missing from current (producer stopped emitting it)")
            continue
        if name not in base_fps:
            warnings.append(f"island fingerprint {name} missing from "
                            "baseline; skipped (regenerate the "
                            "baseline)")
            continue
        if base_fps[name] != cur_fps[name]:
            failures.append(
                f"island fingerprint {name} changed: "
                f"baseline={base_fps[name]} current={cur_fps[name]} "
                "(the K=1 search itself changed — regenerate "
                "BENCH_island_baseline.json only if intentional)")

    hard = ("elites_lost_total", "migrant_duplicates_total",
            "k1_matches_plain")
    for name in sorted(set(base_counters) | set(cur_counters)):
        if name in hard:
            continue
        if name in base_counters and name not in cur_counters:
            failures.append(
                f"island counter {name} present in baseline but "
                "missing from current (producer stopped emitting a "
                "gated counter)")
            continue
        if name not in base_counters:
            warnings.append(f"island counter {name} missing from "
                            "baseline; skipped (regenerate the "
                            "baseline)")
            continue
        if base_counters[name] != cur_counters[name]:
            failures.append(
                f"island counter {name} changed: "
                f"baseline={base_counters[name]} "
                f"current={cur_counters[name]} (deterministic — "
                "regenerate BENCH_island_baseline.json if intentional)")

    base_timing = baseline.get("timing", {})
    cur_timing = current.get("timing", {})
    for name in sorted(set(base_timing) & set(cur_timing)):
        reg = regression(base_timing[name], cur_timing[name], "lower")
        if reg > threshold:
            warnings.append(
                f"timing {name}: baseline={base_timing[name]:.4g} "
                f"current={cur_timing[name]:.4g} ({reg:+.1%}) "
                "[warn-only: machine-dependent]")

    return failures, warnings


def compare_compiled(baseline, current, threshold):
    """BENCH_compiled.json: backend-equivalence quantities are pure
    functions of the design sources and seeds, so they gate exactly.
    Two hard invariants fail outright regardless of the baseline:
    sample_mismatches must be 0 (one diverging sample means the
    compiled backend could change a repair verdict) and
    repair_identical must be 1 (same seed, same scenario, same winner
    patch under both backends). Throughput warns only."""
    failures, warnings = [], []

    cur_counters = current.get("counters", {})
    base_counters = baseline.get("counters", {})

    if cur_counters.get("sample_mismatches", 1) != 0:
        failures.append(
            "sample_mismatches="
            f"{cur_counters.get('sample_mismatches')}: the compiled "
            "backend diverged from the event-driven reference on a "
            "sampled output (bit-identity violation — never "
            "baseline-relative)")
    if cur_counters.get("repair_identical", 0) != 1:
        failures.append(
            "repair_identical="
            f"{cur_counters.get('repair_identical')}: the same seeded "
            "repair produced a different winner patch or generation "
            "count under the compiled backend (determinism violation "
            "— never baseline-relative)")

    for name in sorted(set(base_counters) | set(cur_counters)):
        if name in base_counters and name not in cur_counters:
            failures.append(
                f"compiled counter {name} present in baseline but "
                "missing from current (producer stopped emitting a "
                "gated counter)")
            continue
        if name not in base_counters:
            warnings.append(f"compiled counter {name} missing from "
                            "baseline; skipped (regenerate the "
                            "baseline)")
            continue
        if base_counters[name] != cur_counters[name]:
            failures.append(
                f"compiled counter {name} changed: "
                f"baseline={base_counters[name]} "
                f"current={cur_counters[name]} (deterministic — a "
                "designs_compiled drop means modules silently fell "
                "back to the interpreter; regenerate "
                "BENCH_compiled_baseline.json if intentional)")

    base_timing = baseline.get("timing", {})
    cur_timing = current.get("timing", {})
    # Every compiled timing metric (evals/sec, speedup_x) is
    # higher-is-better.
    for name in sorted(set(base_timing) & set(cur_timing)):
        reg = regression(base_timing[name], cur_timing[name], "higher")
        if reg > threshold:
            warnings.append(
                f"timing {name}: baseline={base_timing[name]:.4g} "
                f"current={cur_timing[name]:.4g} ({reg:+.1%}) "
                "[warn-only: machine-dependent]")

    return failures, warnings


def compare_micro(baseline, current, threshold):
    """google-benchmark JSON: match by name, warn on real_time."""
    warnings = []
    base = {b["name"]: b for b in baseline.get("benchmarks", [])}
    for b in current.get("benchmarks", []):
        ref = base.get(b["name"])
        if ref is None or "real_time" not in ref:
            continue
        reg = regression(ref["real_time"], b["real_time"], "lower")
        if reg > threshold:
            warnings.append(
                f"micro {b['name']}: baseline={ref['real_time']:.0f}"
                f"{ref.get('time_unit', 'ns')} "
                f"current={b['real_time']:.0f}"
                f"{b.get('time_unit', 'ns')} ({reg:+.1%}) "
                "[warn-only: machine-dependent]")
    return warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline")
    ap.add_argument("--current")
    ap.add_argument("--micro-baseline")
    ap.add_argument("--micro-current")
    ap.add_argument("--lint-baseline")
    ap.add_argument("--lint-current")
    ap.add_argument("--witness-baseline")
    ap.add_argument("--witness-current")
    ap.add_argument("--fleet-baseline")
    ap.add_argument("--fleet-current")
    ap.add_argument("--island-baseline")
    ap.add_argument("--island-current")
    ap.add_argument("--compiled-baseline")
    ap.add_argument("--compiled-current")
    ap.add_argument("--threshold", type=float, default=0.15)
    args = ap.parse_args()

    failures, warnings = [], []
    if args.baseline and args.current:
        failures, warnings = compare_repair(
            load(args.baseline), load(args.current), args.threshold)

    if args.micro_baseline and args.micro_current:
        warnings += compare_micro(
            load(args.micro_baseline), load(args.micro_current),
            args.threshold)

    if args.lint_baseline and args.lint_current:
        lint_failures, lint_warnings = compare_lint(
            load(args.lint_baseline), load(args.lint_current),
            args.threshold)
        failures += lint_failures
        warnings += lint_warnings

    if args.witness_baseline and args.witness_current:
        witness_failures, witness_warnings = compare_witness(
            load(args.witness_baseline), load(args.witness_current),
            args.threshold)
        failures += witness_failures
        warnings += witness_warnings

    if args.fleet_baseline and args.fleet_current:
        fleet_failures, fleet_warnings = compare_fleet(
            load(args.fleet_baseline), load(args.fleet_current),
            args.threshold)
        failures += fleet_failures
        warnings += fleet_warnings

    if args.island_baseline and args.island_current:
        island_failures, island_warnings = compare_island(
            load(args.island_baseline), load(args.island_current),
            args.threshold)
        failures += island_failures
        warnings += island_warnings

    if args.compiled_baseline and args.compiled_current:
        compiled_failures, compiled_warnings = compare_compiled(
            load(args.compiled_baseline), load(args.compiled_current),
            args.threshold)
        failures += compiled_failures
        warnings += compiled_warnings

    for w in warnings:
        print(f"WARN  {w}")
    for f in failures:
        print(f"FAIL  {f}")
    if failures:
        print(f"bench_compare: {len(failures)} gated regression(s)")
        return 1
    print(f"bench_compare: pass ({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
