# Empty compiler generated dependencies file for cirfix_benchmarks.
# This may be replaced when dependencies are built.
