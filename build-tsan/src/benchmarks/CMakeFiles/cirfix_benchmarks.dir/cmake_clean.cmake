file(REMOVE_RECURSE
  "CMakeFiles/cirfix_benchmarks.dir/defects.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/defects.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/projects_fsm.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/projects_fsm.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/projects_i2c.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/projects_i2c.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/projects_rs.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/projects_rs.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/projects_sdram.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/projects_sdram.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/projects_sha3.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/projects_sha3.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/projects_small.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/projects_small.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/projects_tate.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/projects_tate.cc.o.d"
  "CMakeFiles/cirfix_benchmarks.dir/registry.cc.o"
  "CMakeFiles/cirfix_benchmarks.dir/registry.cc.o.d"
  "libcirfix_benchmarks.a"
  "libcirfix_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cirfix_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
