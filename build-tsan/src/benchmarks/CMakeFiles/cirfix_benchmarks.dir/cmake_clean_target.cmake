file(REMOVE_RECURSE
  "libcirfix_benchmarks.a"
)
