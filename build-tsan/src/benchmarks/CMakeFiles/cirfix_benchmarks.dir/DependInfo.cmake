
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/defects.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/defects.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/defects.cc.o.d"
  "/root/repo/src/benchmarks/projects_fsm.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_fsm.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_fsm.cc.o.d"
  "/root/repo/src/benchmarks/projects_i2c.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_i2c.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_i2c.cc.o.d"
  "/root/repo/src/benchmarks/projects_rs.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_rs.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_rs.cc.o.d"
  "/root/repo/src/benchmarks/projects_sdram.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_sdram.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_sdram.cc.o.d"
  "/root/repo/src/benchmarks/projects_sha3.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_sha3.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_sha3.cc.o.d"
  "/root/repo/src/benchmarks/projects_small.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_small.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_small.cc.o.d"
  "/root/repo/src/benchmarks/projects_tate.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_tate.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/projects_tate.cc.o.d"
  "/root/repo/src/benchmarks/registry.cc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/registry.cc.o" "gcc" "src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/cirfix_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/cirfix_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_verilog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
