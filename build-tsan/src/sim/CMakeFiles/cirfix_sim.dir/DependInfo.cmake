
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/design.cc" "src/sim/CMakeFiles/cirfix_sim.dir/design.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/design.cc.o.d"
  "/root/repo/src/sim/elaborate.cc" "src/sim/CMakeFiles/cirfix_sim.dir/elaborate.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/elaborate.cc.o.d"
  "/root/repo/src/sim/eval.cc" "src/sim/CMakeFiles/cirfix_sim.dir/eval.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/eval.cc.o.d"
  "/root/repo/src/sim/interp.cc" "src/sim/CMakeFiles/cirfix_sim.dir/interp.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/interp.cc.o.d"
  "/root/repo/src/sim/probe.cc" "src/sim/CMakeFiles/cirfix_sim.dir/probe.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/probe.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/cirfix_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/signal.cc" "src/sim/CMakeFiles/cirfix_sim.dir/signal.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/signal.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/cirfix_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/vcd.cc" "src/sim/CMakeFiles/cirfix_sim.dir/vcd.cc.o" "gcc" "src/sim/CMakeFiles/cirfix_sim.dir/vcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_verilog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
