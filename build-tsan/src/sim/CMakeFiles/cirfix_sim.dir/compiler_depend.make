# Empty compiler generated dependencies file for cirfix_sim.
# This may be replaced when dependencies are built.
