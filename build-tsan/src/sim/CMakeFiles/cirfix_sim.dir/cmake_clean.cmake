file(REMOVE_RECURSE
  "CMakeFiles/cirfix_sim.dir/design.cc.o"
  "CMakeFiles/cirfix_sim.dir/design.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/elaborate.cc.o"
  "CMakeFiles/cirfix_sim.dir/elaborate.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/eval.cc.o"
  "CMakeFiles/cirfix_sim.dir/eval.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/interp.cc.o"
  "CMakeFiles/cirfix_sim.dir/interp.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/probe.cc.o"
  "CMakeFiles/cirfix_sim.dir/probe.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/scheduler.cc.o"
  "CMakeFiles/cirfix_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/signal.cc.o"
  "CMakeFiles/cirfix_sim.dir/signal.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/trace.cc.o"
  "CMakeFiles/cirfix_sim.dir/trace.cc.o.d"
  "CMakeFiles/cirfix_sim.dir/vcd.cc.o"
  "CMakeFiles/cirfix_sim.dir/vcd.cc.o.d"
  "libcirfix_sim.a"
  "libcirfix_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cirfix_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
