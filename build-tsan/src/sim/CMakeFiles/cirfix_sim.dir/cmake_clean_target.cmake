file(REMOVE_RECURSE
  "libcirfix_sim.a"
)
