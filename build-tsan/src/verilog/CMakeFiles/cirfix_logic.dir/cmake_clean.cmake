file(REMOVE_RECURSE
  "CMakeFiles/cirfix_logic.dir/__/sim/logic.cc.o"
  "CMakeFiles/cirfix_logic.dir/__/sim/logic.cc.o.d"
  "libcirfix_logic.a"
  "libcirfix_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cirfix_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
