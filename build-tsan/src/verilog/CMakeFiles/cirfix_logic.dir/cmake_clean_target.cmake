file(REMOVE_RECURSE
  "libcirfix_logic.a"
)
