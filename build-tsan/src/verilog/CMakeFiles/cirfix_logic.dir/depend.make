# Empty dependencies file for cirfix_logic.
# This may be replaced when dependencies are built.
