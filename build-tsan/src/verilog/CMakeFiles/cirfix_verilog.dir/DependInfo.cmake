
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verilog/ast.cc" "src/verilog/CMakeFiles/cirfix_verilog.dir/ast.cc.o" "gcc" "src/verilog/CMakeFiles/cirfix_verilog.dir/ast.cc.o.d"
  "/root/repo/src/verilog/lexer.cc" "src/verilog/CMakeFiles/cirfix_verilog.dir/lexer.cc.o" "gcc" "src/verilog/CMakeFiles/cirfix_verilog.dir/lexer.cc.o.d"
  "/root/repo/src/verilog/parser.cc" "src/verilog/CMakeFiles/cirfix_verilog.dir/parser.cc.o" "gcc" "src/verilog/CMakeFiles/cirfix_verilog.dir/parser.cc.o.d"
  "/root/repo/src/verilog/printer.cc" "src/verilog/CMakeFiles/cirfix_verilog.dir/printer.cc.o" "gcc" "src/verilog/CMakeFiles/cirfix_verilog.dir/printer.cc.o.d"
  "/root/repo/src/verilog/validate.cc" "src/verilog/CMakeFiles/cirfix_verilog.dir/validate.cc.o" "gcc" "src/verilog/CMakeFiles/cirfix_verilog.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
