file(REMOVE_RECURSE
  "CMakeFiles/cirfix_verilog.dir/ast.cc.o"
  "CMakeFiles/cirfix_verilog.dir/ast.cc.o.d"
  "CMakeFiles/cirfix_verilog.dir/lexer.cc.o"
  "CMakeFiles/cirfix_verilog.dir/lexer.cc.o.d"
  "CMakeFiles/cirfix_verilog.dir/parser.cc.o"
  "CMakeFiles/cirfix_verilog.dir/parser.cc.o.d"
  "CMakeFiles/cirfix_verilog.dir/printer.cc.o"
  "CMakeFiles/cirfix_verilog.dir/printer.cc.o.d"
  "CMakeFiles/cirfix_verilog.dir/validate.cc.o"
  "CMakeFiles/cirfix_verilog.dir/validate.cc.o.d"
  "libcirfix_verilog.a"
  "libcirfix_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cirfix_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
