file(REMOVE_RECURSE
  "libcirfix_verilog.a"
)
