# Empty compiler generated dependencies file for cirfix_verilog.
# This may be replaced when dependencies are built.
