file(REMOVE_RECURSE
  "libcirfix_core.a"
)
