# Empty compiler generated dependencies file for cirfix_core.
# This may be replaced when dependencies are built.
