
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bruteforce.cc" "src/core/CMakeFiles/cirfix_core.dir/bruteforce.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/bruteforce.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/cirfix_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/engine.cc.o.d"
  "/root/repo/src/core/evalpool.cc" "src/core/CMakeFiles/cirfix_core.dir/evalpool.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/evalpool.cc.o.d"
  "/root/repo/src/core/faultloc.cc" "src/core/CMakeFiles/cirfix_core.dir/faultloc.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/faultloc.cc.o.d"
  "/root/repo/src/core/fitness.cc" "src/core/CMakeFiles/cirfix_core.dir/fitness.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/fitness.cc.o.d"
  "/root/repo/src/core/fixloc.cc" "src/core/CMakeFiles/cirfix_core.dir/fixloc.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/fixloc.cc.o.d"
  "/root/repo/src/core/minimize.cc" "src/core/CMakeFiles/cirfix_core.dir/minimize.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/minimize.cc.o.d"
  "/root/repo/src/core/mutation.cc" "src/core/CMakeFiles/cirfix_core.dir/mutation.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/mutation.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/cirfix_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/patch.cc" "src/core/CMakeFiles/cirfix_core.dir/patch.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/patch.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/cirfix_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/templates.cc" "src/core/CMakeFiles/cirfix_core.dir/templates.cc.o" "gcc" "src/core/CMakeFiles/cirfix_core.dir/templates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/cirfix_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_verilog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
