file(REMOVE_RECURSE
  "CMakeFiles/cirfix_core.dir/bruteforce.cc.o"
  "CMakeFiles/cirfix_core.dir/bruteforce.cc.o.d"
  "CMakeFiles/cirfix_core.dir/engine.cc.o"
  "CMakeFiles/cirfix_core.dir/engine.cc.o.d"
  "CMakeFiles/cirfix_core.dir/evalpool.cc.o"
  "CMakeFiles/cirfix_core.dir/evalpool.cc.o.d"
  "CMakeFiles/cirfix_core.dir/faultloc.cc.o"
  "CMakeFiles/cirfix_core.dir/faultloc.cc.o.d"
  "CMakeFiles/cirfix_core.dir/fitness.cc.o"
  "CMakeFiles/cirfix_core.dir/fitness.cc.o.d"
  "CMakeFiles/cirfix_core.dir/fixloc.cc.o"
  "CMakeFiles/cirfix_core.dir/fixloc.cc.o.d"
  "CMakeFiles/cirfix_core.dir/minimize.cc.o"
  "CMakeFiles/cirfix_core.dir/minimize.cc.o.d"
  "CMakeFiles/cirfix_core.dir/mutation.cc.o"
  "CMakeFiles/cirfix_core.dir/mutation.cc.o.d"
  "CMakeFiles/cirfix_core.dir/oracle.cc.o"
  "CMakeFiles/cirfix_core.dir/oracle.cc.o.d"
  "CMakeFiles/cirfix_core.dir/patch.cc.o"
  "CMakeFiles/cirfix_core.dir/patch.cc.o.d"
  "CMakeFiles/cirfix_core.dir/scenario.cc.o"
  "CMakeFiles/cirfix_core.dir/scenario.cc.o.d"
  "CMakeFiles/cirfix_core.dir/templates.cc.o"
  "CMakeFiles/cirfix_core.dir/templates.cc.o.d"
  "libcirfix_core.a"
  "libcirfix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cirfix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
