file(REMOVE_RECURSE
  "CMakeFiles/simulate_design.dir/simulate_design.cpp.o"
  "CMakeFiles/simulate_design.dir/simulate_design.cpp.o.d"
  "simulate_design"
  "simulate_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
