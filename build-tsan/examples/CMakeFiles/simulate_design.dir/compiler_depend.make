# Empty compiler generated dependencies file for simulate_design.
# This may be replaced when dependencies are built.
