file(REMOVE_RECURSE
  "CMakeFiles/fault_localization.dir/fault_localization.cpp.o"
  "CMakeFiles/fault_localization.dir/fault_localization.cpp.o.d"
  "fault_localization"
  "fault_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
