# Empty compiler generated dependencies file for fault_localization.
# This may be replaced when dependencies are built.
