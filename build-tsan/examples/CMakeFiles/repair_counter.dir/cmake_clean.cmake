file(REMOVE_RECURSE
  "CMakeFiles/repair_counter.dir/repair_counter.cpp.o"
  "CMakeFiles/repair_counter.dir/repair_counter.cpp.o.d"
  "repair_counter"
  "repair_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
