# Empty dependencies file for repair_counter.
# This may be replaced when dependencies are built.
