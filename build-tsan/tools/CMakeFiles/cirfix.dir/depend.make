# Empty dependencies file for cirfix.
# This may be replaced when dependencies are built.
