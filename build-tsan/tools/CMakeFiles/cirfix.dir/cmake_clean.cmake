file(REMOVE_RECURSE
  "CMakeFiles/cirfix.dir/cirfix_cli.cc.o"
  "CMakeFiles/cirfix.dir/cirfix_cli.cc.o.d"
  "cirfix"
  "cirfix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cirfix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
