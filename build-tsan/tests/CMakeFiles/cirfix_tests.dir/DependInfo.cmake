
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_benchmarks.cc" "tests/CMakeFiles/cirfix_tests.dir/test_benchmarks.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_benchmarks.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/cirfix_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_eval.cc" "tests/CMakeFiles/cirfix_tests.dir/test_eval.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_eval.cc.o.d"
  "/root/repo/tests/test_evalpool.cc" "tests/CMakeFiles/cirfix_tests.dir/test_evalpool.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_evalpool.cc.o.d"
  "/root/repo/tests/test_faultloc.cc" "tests/CMakeFiles/cirfix_tests.dir/test_faultloc.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_faultloc.cc.o.d"
  "/root/repo/tests/test_fitness.cc" "tests/CMakeFiles/cirfix_tests.dir/test_fitness.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_fitness.cc.o.d"
  "/root/repo/tests/test_fixloc.cc" "tests/CMakeFiles/cirfix_tests.dir/test_fixloc.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_fixloc.cc.o.d"
  "/root/repo/tests/test_functions.cc" "tests/CMakeFiles/cirfix_tests.dir/test_functions.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_functions.cc.o.d"
  "/root/repo/tests/test_lexer.cc" "tests/CMakeFiles/cirfix_tests.dir/test_lexer.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_lexer.cc.o.d"
  "/root/repo/tests/test_logic.cc" "tests/CMakeFiles/cirfix_tests.dir/test_logic.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_logic.cc.o.d"
  "/root/repo/tests/test_minimize.cc" "tests/CMakeFiles/cirfix_tests.dir/test_minimize.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_minimize.cc.o.d"
  "/root/repo/tests/test_mutation.cc" "tests/CMakeFiles/cirfix_tests.dir/test_mutation.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_mutation.cc.o.d"
  "/root/repo/tests/test_oracle.cc" "tests/CMakeFiles/cirfix_tests.dir/test_oracle.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_oracle.cc.o.d"
  "/root/repo/tests/test_parser.cc" "tests/CMakeFiles/cirfix_tests.dir/test_parser.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/test_patch.cc" "tests/CMakeFiles/cirfix_tests.dir/test_patch.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_patch.cc.o.d"
  "/root/repo/tests/test_printer.cc" "tests/CMakeFiles/cirfix_tests.dir/test_printer.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_printer.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/cirfix_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_reference_models.cc" "tests/CMakeFiles/cirfix_tests.dir/test_reference_models.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_reference_models.cc.o.d"
  "/root/repo/tests/test_scenarios.cc" "tests/CMakeFiles/cirfix_tests.dir/test_scenarios.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_scenarios.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/cirfix_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/cirfix_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_templates.cc" "tests/CMakeFiles/cirfix_tests.dir/test_templates.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_templates.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/cirfix_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_validate.cc" "tests/CMakeFiles/cirfix_tests.dir/test_validate.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_validate.cc.o.d"
  "/root/repo/tests/test_vcd.cc" "tests/CMakeFiles/cirfix_tests.dir/test_vcd.cc.o" "gcc" "tests/CMakeFiles/cirfix_tests.dir/test_vcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/benchmarks/CMakeFiles/cirfix_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/cirfix_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/cirfix_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_verilog.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verilog/CMakeFiles/cirfix_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
