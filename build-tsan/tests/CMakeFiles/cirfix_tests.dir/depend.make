# Empty dependencies file for cirfix_tests.
# This may be replaced when dependencies are built.
