# Empty dependencies file for cirfix_stress_tests.
# This may be replaced when dependencies are built.
