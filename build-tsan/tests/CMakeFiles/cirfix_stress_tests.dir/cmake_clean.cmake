file(REMOVE_RECURSE
  "CMakeFiles/cirfix_stress_tests.dir/test_evalpool.cc.o"
  "CMakeFiles/cirfix_stress_tests.dir/test_evalpool.cc.o.d"
  "CMakeFiles/cirfix_stress_tests.dir/test_scheduler.cc.o"
  "CMakeFiles/cirfix_stress_tests.dir/test_scheduler.cc.o.d"
  "cirfix_stress_tests"
  "cirfix_stress_tests.pdb"
  "cirfix_stress_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cirfix_stress_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
