# Empty dependencies file for rq2_categories.
# This may be replaced when dependencies are built.
