file(REMOVE_RECURSE
  "CMakeFiles/rq2_categories.dir/rq2_categories.cc.o"
  "CMakeFiles/rq2_categories.dir/rq2_categories.cc.o.d"
  "rq2_categories"
  "rq2_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq2_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
