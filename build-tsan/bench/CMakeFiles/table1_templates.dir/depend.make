# Empty dependencies file for table1_templates.
# This may be replaced when dependencies are built.
