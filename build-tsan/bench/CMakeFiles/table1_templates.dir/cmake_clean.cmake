file(REMOVE_RECURSE
  "CMakeFiles/table1_templates.dir/table1_templates.cc.o"
  "CMakeFiles/table1_templates.dir/table1_templates.cc.o.d"
  "table1_templates"
  "table1_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
