file(REMOVE_RECURSE
  "CMakeFiles/fig3_multiedit.dir/fig3_multiedit.cc.o"
  "CMakeFiles/fig3_multiedit.dir/fig3_multiedit.cc.o.d"
  "fig3_multiedit"
  "fig3_multiedit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_multiedit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
