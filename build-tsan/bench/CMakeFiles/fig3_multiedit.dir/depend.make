# Empty dependencies file for fig3_multiedit.
# This may be replaced when dependencies are built.
