# Empty dependencies file for fig2_mismatch.
# This may be replaced when dependencies are built.
