file(REMOVE_RECURSE
  "CMakeFiles/fig2_mismatch.dir/fig2_mismatch.cc.o"
  "CMakeFiles/fig2_mismatch.dir/fig2_mismatch.cc.o.d"
  "fig2_mismatch"
  "fig2_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
