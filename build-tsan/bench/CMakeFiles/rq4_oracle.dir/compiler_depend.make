# Empty compiler generated dependencies file for rq4_oracle.
# This may be replaced when dependencies are built.
