file(REMOVE_RECURSE
  "CMakeFiles/rq4_oracle.dir/rq4_oracle.cc.o"
  "CMakeFiles/rq4_oracle.dir/rq4_oracle.cc.o.d"
  "rq4_oracle"
  "rq4_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq4_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
