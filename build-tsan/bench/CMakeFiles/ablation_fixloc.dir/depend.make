# Empty dependencies file for ablation_fixloc.
# This may be replaced when dependencies are built.
