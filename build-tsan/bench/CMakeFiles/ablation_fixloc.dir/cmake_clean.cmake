file(REMOVE_RECURSE
  "CMakeFiles/ablation_fixloc.dir/ablation_fixloc.cc.o"
  "CMakeFiles/ablation_fixloc.dir/ablation_fixloc.cc.o.d"
  "ablation_fixloc"
  "ablation_fixloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fixloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
