file(REMOVE_RECURSE
  "CMakeFiles/ablation_phi.dir/ablation_phi.cc.o"
  "CMakeFiles/ablation_phi.dir/ablation_phi.cc.o.d"
  "ablation_phi"
  "ablation_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
