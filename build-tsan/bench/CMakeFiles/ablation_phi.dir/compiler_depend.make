# Empty compiler generated dependencies file for ablation_phi.
# This may be replaced when dependencies are built.
