# Empty dependencies file for rq3_trajectory.
# This may be replaced when dependencies are built.
