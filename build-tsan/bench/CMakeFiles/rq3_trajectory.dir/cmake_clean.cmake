file(REMOVE_RECURSE
  "CMakeFiles/rq3_trajectory.dir/rq3_trajectory.cc.o"
  "CMakeFiles/rq3_trajectory.dir/rq3_trajectory.cc.o.d"
  "rq3_trajectory"
  "rq3_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq3_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
