# Empty compiler generated dependencies file for table2_projects.
# This may be replaced when dependencies are built.
