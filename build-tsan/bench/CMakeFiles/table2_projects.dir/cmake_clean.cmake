file(REMOVE_RECURSE
  "CMakeFiles/table2_projects.dir/table2_projects.cc.o"
  "CMakeFiles/table2_projects.dir/table2_projects.cc.o.d"
  "table2_projects"
  "table2_projects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_projects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
