# Empty dependencies file for ext_templates.
# This may be replaced when dependencies are built.
