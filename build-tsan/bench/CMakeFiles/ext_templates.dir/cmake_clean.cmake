file(REMOVE_RECURSE
  "CMakeFiles/ext_templates.dir/ext_templates.cc.o"
  "CMakeFiles/ext_templates.dir/ext_templates.cc.o.d"
  "ext_templates"
  "ext_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
