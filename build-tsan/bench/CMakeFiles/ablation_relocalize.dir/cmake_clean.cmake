file(REMOVE_RECURSE
  "CMakeFiles/ablation_relocalize.dir/ablation_relocalize.cc.o"
  "CMakeFiles/ablation_relocalize.dir/ablation_relocalize.cc.o.d"
  "ablation_relocalize"
  "ablation_relocalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relocalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
