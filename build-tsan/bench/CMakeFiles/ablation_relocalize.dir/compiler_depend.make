# Empty compiler generated dependencies file for ablation_relocalize.
# This may be replaced when dependencies are built.
