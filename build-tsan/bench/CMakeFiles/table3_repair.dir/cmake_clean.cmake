file(REMOVE_RECURSE
  "CMakeFiles/table3_repair.dir/table3_repair.cc.o"
  "CMakeFiles/table3_repair.dir/table3_repair.cc.o.d"
  "table3_repair"
  "table3_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
