# Empty compiler generated dependencies file for table3_repair.
# This may be replaced when dependencies are built.
