file(REMOVE_RECURSE
  "CMakeFiles/rq1_bruteforce.dir/rq1_bruteforce.cc.o"
  "CMakeFiles/rq1_bruteforce.dir/rq1_bruteforce.cc.o.d"
  "rq1_bruteforce"
  "rq1_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq1_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
