# Empty compiler generated dependencies file for rq1_bruteforce.
# This may be replaced when dependencies are built.
