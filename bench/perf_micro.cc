/**
 * @file
 * Microbenchmarks of the substrate (google-benchmark): parsing,
 * cloning, patch application, elaboration+simulation, fitness
 * evaluation and fault localization. The paper reports that over 90%
 * of repair wall-clock goes to fitness evaluations (design
 * simulations); these numbers show where a trial's time goes in this
 * implementation too.
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <vector>

#include <benchmark/benchmark.h>

#include "benchmarks/registry.h"
#include "core/engine.h"
#include "core/evalpool.h"
#include "core/snapshot.h"
#include "core/faultloc.h"
#include "core/fitness.h"
#include "core/scenario.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;

namespace {

const core::ProjectSpec &
counterProject()
{
    return bench::getProject("counter");
}

std::string
combinedSource()
{
    const core::ProjectSpec &p = counterProject();
    return p.goldenSource + "\n" + p.testbenchSource;
}

void
BM_ParseCounter(benchmark::State &state)
{
    std::string src = combinedSource();
    for (auto _ : state) {
        auto file = verilog::parse(src);
        benchmark::DoNotOptimize(file->nextId);
    }
}
BENCHMARK(BM_ParseCounter);

void
BM_CloneAst(benchmark::State &state)
{
    auto file = verilog::parse(combinedSource());
    for (auto _ : state) {
        auto copy = file->cloneFile();
        benchmark::DoNotOptimize(copy->nextId);
    }
}
BENCHMARK(BM_CloneAst);

void
BM_ElaborateAndSimulate(benchmark::State &state)
{
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(combinedSource());
    const core::ProjectSpec &p = counterProject();
    sim::ProbeConfig probe =
        sim::deriveProbeConfig(*file, p.tbModule);
    for (auto _ : state) {
        auto design = sim::elaborate(file, p.tbModule);
        sim::TraceRecorder rec(*design, probe);
        auto res = design->run();
        benchmark::DoNotOptimize(res.callbacks);
    }
}
BENCHMARK(BM_ElaborateAndSimulate);

void
BM_FullFitnessProbe(benchmark::State &state)
{
    // One complete candidate evaluation: clone + validate +
    // elaborate + simulate + score (what the GP loop does per child).
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);
    for (auto _ : state) {
        // Uncached: measure the real probe, not a fitness-cache hit
        // (BM_FitnessCacheLookup measures the hit).
        core::Variant v = engine.evaluateUncached(core::Patch{});
        benchmark::DoNotOptimize(v.fit.fitness);
    }
}
BENCHMARK(BM_FullFitnessProbe);

void
BM_FullFitnessProbeUnguarded(benchmark::State &state)
{
    // The same probe with the containment guardrails disabled (no
    // wall-clock deadline, no memory budget): the delta against
    // BM_FullFitnessProbe is the per-candidate cost of the failure-
    // containment layer (deadline checks every 4096 statements plus
    // allocation accounting), which should be noise.
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    cfg.evalDeadlineSeconds = 0.0;
    cfg.evalMemoryBudget = 0;
    core::RepairEngine engine = sc.makeEngine(cfg);
    for (auto _ : state) {
        core::Variant v = engine.evaluateUncached(core::Patch{});
        benchmark::DoNotOptimize(v.fit.fitness);
    }
}
BENCHMARK(BM_FullFitnessProbeUnguarded);

void
BM_FitnessComparisonOnly(benchmark::State &state)
{
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);
    core::Variant v = engine.evaluate(core::Patch{});
    for (auto _ : state) {
        auto fit = core::evaluateFitness(v.trace, sc.oracle);
        benchmark::DoNotOptimize(fit.fitness);
    }
}
BENCHMARK(BM_FitnessComparisonOnly);

void
BM_StreamingFitnessOnly(benchmark::State &state)
{
    // The streaming scorer fed the recorded trace row by row — must
    // track BM_FitnessComparisonOnly closely; the delta is the cost of
    // per-sample dispatch plus the upper-bound bookkeeping.
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);
    core::Variant v = engine.evaluate(core::Patch{});
    core::OracleProfile profile =
        core::OracleProfile::build(sc.oracle);
    for (auto _ : state) {
        core::StreamingFitness scorer(sc.oracle, v.trace.vars(), {},
                                      &profile);
        for (const auto &row : v.trace.rows())
            scorer.onSample(row.time, row.values);
        benchmark::DoNotOptimize(scorer.finish().fitness);
    }
}
BENCHMARK(BM_StreamingFitnessOnly);

void
BM_FullFitnessProbeStreaming(benchmark::State &state)
{
    // A full candidate evaluation scored online (no abort threshold):
    // the configuration every generation-loop child runs with. Should
    // match BM_FullFitnessProbe — streaming replaces the batch pass at
    // the end with per-sample work during the simulation.
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);
    core::RepairEngine::EvalHints hints;
    hints.streaming = true;
    for (auto _ : state) {
        core::Variant v =
            engine.evaluateUncached(core::Patch{}, hints);
        benchmark::DoNotOptimize(v.fit.fitness);
    }
}
BENCHMARK(BM_FullFitnessProbeStreaming);

void
BM_FaultLocalization(benchmark::State &state)
{
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_incorrect_reset");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);
    core::Variant v = engine.evaluate(core::Patch{});
    const verilog::Module *dut =
        sc.faulty->findModule(p.dutModule);
    for (auto _ : state) {
        auto fl = core::faultLocalize(*dut, v.trace, sc.oracle);
        benchmark::DoNotOptimize(fl.nodeIds.size());
    }
}
BENCHMARK(BM_FaultLocalization);

void
BM_ParallelEvalThroughput(benchmark::State &state)
{
    // Candidate-evaluation throughput of the EvalPool at N threads:
    // each iteration fans one generation-sized batch of full fitness
    // probes (clone + validate + elaborate + simulate + score) out to
    // the pool — the hot loop of a parallel repair trial. Compare the
    // items/s of Arg(1) vs Arg(4) for the speedup; run() merges
    // results in child order, so any Arg produces identical repairs.
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);

    const int threads = static_cast<int>(state.range(0));
    constexpr int kBatch = 16;
    core::EvalPool pool(threads);
    std::vector<core::Variant> out(kBatch);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < kBatch; ++i)
        jobs.push_back([&engine, &out, i] {
            out[static_cast<size_t>(i)] =
                engine.evaluateUncached(core::Patch{});
        });
    for (auto _ : state) {
        pool.run(jobs);
        benchmark::DoNotOptimize(out[0].fit.fitness);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ParallelEvalThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_FitnessCacheLookup(benchmark::State &state)
{
    // A cache hit must be orders of magnitude cheaper than the
    // simulation it replaces (BM_FullFitnessProbe).
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);
    engine.evaluate(core::Patch{});  // prime the cache
    for (auto _ : state) {
        core::Variant v = engine.evaluate(core::Patch{});
        benchmark::DoNotOptimize(v.fit.fitness);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FitnessCacheLookup);

void
BM_SnapshotEncodeDecode(benchmark::State &state)
{
    // Checkpoint cost: serialize + parse a real end-of-generation
    // engine state (population with traces, quarantine, cache in LRU
    // order). Written once per generation — i.e. once per ~popSize
    // fitness probes (BM_FullFitnessProbe) — so a handful of probes'
    // worth of encode time is effectively free.
    const core::ProjectSpec &p = counterProject();
    const core::DefectSpec &d =
        bench::getDefect("counter_sensitivity");
    core::Scenario sc = core::buildScenario(p, d);
    core::EngineConfig cfg;
    cfg.popSize = 16;
    cfg.maxGenerations = 1;
    cfg.snapshotPath = "/tmp/cirfix_perf_micro.snap";
    std::remove(cfg.snapshotPath.c_str());
    // A run that repairs the defect mid-generation exits before the
    // end-of-generation snapshot; scan seeds until one survives a
    // full generation (deterministic, and seed 1 usually suffices).
    for (cfg.seed = 1; cfg.seed < 64; ++cfg.seed) {
        core::RepairEngine engine = sc.makeEngine(cfg);
        engine.run();
        if (std::ifstream(cfg.snapshotPath).good())
            break;
    }
    core::EngineState st = core::loadSnapshot(cfg.snapshotPath);
    std::remove(cfg.snapshotPath.c_str());
    for (auto _ : state) {
        std::string bytes = core::encodeSnapshot(st);
        core::EngineState back = core::decodeSnapshot(bytes);
        benchmark::DoNotOptimize(back.generationsDone);
    }
}
BENCHMARK(BM_SnapshotEncodeDecode);

void
BM_SimulateSha3(benchmark::State &state)
{
    // The heaviest benchmark design: permutation rounds with loops.
    const core::ProjectSpec &p = bench::getProject("sha3");
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(p.goldenSource + "\n" + p.testbenchSource);
    sim::ProbeConfig probe =
        sim::deriveProbeConfig(*file, p.tbModule);
    for (auto _ : state) {
        auto design = sim::elaborate(file, p.tbModule);
        sim::TraceRecorder rec(*design, probe);
        auto res = design->run();
        benchmark::DoNotOptimize(res.callbacks);
    }
}
BENCHMARK(BM_SimulateSha3);

} // namespace

BENCHMARK_MAIN();
