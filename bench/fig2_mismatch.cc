/**
 * @file
 * Regenerates Figure 2: the side-by-side comparison of the simulation
 * result and expected behavior for the faulty 4-bit counter of the
 * motivating example (missing overflow reset), plus the fitness value
 * the paper derives from it (0.58 on the paper's testbench; ours is
 * computed from our trace and printed for comparison).
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    const core::ProjectSpec &project = getProject("counter");
    const core::DefectSpec &defect =
        getDefect("counter_incorrect_reset");
    core::Scenario sc = core::buildScenario(project, defect);

    core::EngineConfig cfg;
    core::RepairEngine engine = sc.makeEngine(cfg);
    core::Variant faulty = engine.evaluate(core::Patch{});

    std::printf("Figure 2: simulation result vs expected behavior "
                "(faulty 4-bit counter)\n");
    printRule('=');
    std::printf("%-8s | %-24s | %-24s | %s\n", "time",
                "S: counter_out,overflow", "O: counter_out,overflow",
                "mismatch");
    printRule();

    int mismatched_rows = 0;
    for (const auto &orow : sc.oracle.rows()) {
        const sim::Trace::Row *srow = faulty.trace.rowAt(orow.time);
        std::string s0 = "-", s1 = "-";
        if (srow) {
            s0 = srow->values[0].toString();
            s1 = srow->values[1].toString();
        }
        bool mism = !srow ||
                    !srow->values[0].identical(orow.values[0]) ||
                    !srow->values[1].identical(orow.values[1]);
        mismatched_rows += mism;
        std::printf("%-8llu | %10s , %-10s | %10s , %-10s | %s\n",
                    static_cast<unsigned long long>(orow.time),
                    s0.c_str(), s1.c_str(),
                    orow.values[0].toString().c_str(),
                    orow.values[1].toString().c_str(),
                    mism ? "<-- " : "");
    }
    printRule();
    std::printf("\nmismatched sample rows : %d / %zu\n",
                mismatched_rows, sc.oracle.size());
    std::printf("fitness sum/total      : %.1f / %.1f\n",
                faulty.fit.sum, faulty.fit.total);
    std::printf("normalized fitness     : %.4f  (paper reports 0.58 "
                "for its variant of this defect)\n",
                faulty.fit.fitness);
    auto mismatch = core::outputMismatch(faulty.trace, sc.oracle);
    std::printf("mismatch set seeding fault localization:");
    for (auto &m : mismatch)
        std::printf(" %s", m.c_str());
    std::printf("\n");
    return 0;
}
