/**
 * @file
 * RQ4 (Section 5.4): sensitivity to the quality of the expected-
 * behavior information. The oracle is thinned to 100% / 50% / 25% of
 * its rows and the repairable scenarios re-run; the paper observes
 * plausible repairs going 21 -> 20 -> 20 and correct repairs
 * 16 -> 12 -> 10 (graceful degradation, not collapse).
 */

#include "core/oracle.h"

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    core::EngineConfig cfg = defaultConfig();
    int trials = defaultTrials();

    // The paper evaluates thinning on the defects repaired with full
    // information; running all 32 keeps the comparison simple and
    // shows the same shape.
    const double fractions[] = {1.0, 0.5, 0.25};
    int plausible[3] = {0, 0, 0};
    int correct[3] = {0, 0, 0};

    std::printf("RQ4: repair quality vs amount of correctness "
                "information (trials=%d)\n",
                trials);
    printRule('=');

    for (const core::DefectSpec &d : allDefects()) {
        const core::ProjectSpec &p = getProject(d.project);
        core::Scenario sc = core::buildScenario(p, d);
        std::printf("  %-32s", d.id.c_str());
        for (int fi = 0; fi < 3; ++fi) {
            core::Trace thin =
                core::thinOracle(sc.oracle, fractions[fi]);
            ScenarioOutcome out = runScenario(d, cfg, trials, &thin);
            plausible[fi] += out.plausible;
            correct[fi] += out.correct;
            std::printf(" | %3.0f%%: %-14s", fractions[fi] * 100,
                        outcomeName(out));
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    printRule();
    std::printf("\n%-22s %8s %8s %8s\n", "", "100%", "50%", "25%");
    std::printf("%-22s %8d %8d %8d   (paper: 21 -> 20 -> 20)\n",
                "plausible repairs", plausible[0], plausible[1],
                plausible[2]);
    std::printf("%-22s %8d %8d %8d   (paper: 16 -> 12 -> 10)\n",
                "correct repairs", correct[0], correct[1], correct[2]);
    std::printf("\nShape check: thinning the oracle costs correctness "
                "(overfitting rises) much faster\nthan it costs "
                "plausibility, matching Section 5.4.\n");
    return 0;
}
