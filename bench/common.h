#pragma once

/**
 * @file
 * Shared harness for the experiment binaries: scaled GP configuration
 * (overridable via environment variables), the multi-trial protocol of
 * Section 4.2 (5 independent seeded trials per scenario, stopping at
 * the first acceptable repair), and table formatting helpers.
 *
 * Environment knobs:
 *   CIRFIX_TRIALS  trials per scenario            (default 5)
 *   CIRFIX_POP     GP population size             (default 200)
 *   CIRFIX_GENS    max generations per trial      (default 25)
 *   CIRFIX_BUDGET  wall-clock seconds per trial   (default 10)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "core/scenario.h"

namespace cirfix::bench {

inline long
envLong(const char *name, long fallback)
{
    const char *v = std::getenv(name);
    return v ? std::atol(v) : fallback;
}

inline core::EngineConfig
defaultConfig()
{
    core::EngineConfig cfg;
    cfg.popSize = static_cast<int>(envLong("CIRFIX_POP", 500));
    cfg.maxGenerations = static_cast<int>(envLong("CIRFIX_GENS", 20));
    cfg.maxSeconds =
        static_cast<double>(envLong("CIRFIX_BUDGET", 8));
    return cfg;
}

inline int
defaultTrials()
{
    return static_cast<int>(envLong("CIRFIX_TRIALS", 3));
}

/** Aggregated outcome of the trial protocol for one scenario. */
struct ScenarioOutcome
{
    const core::DefectSpec *defect = nullptr;
    bool plausible = false;   //!< some trial found a repair
    bool correct = false;     //!< some trial's repair passed held-out
    double repairSeconds = 0; //!< time of the first successful trial
    long fitnessEvals = 0;    //!< probes of the first successful trial
    long totalEvals = 0;      //!< probes across all executed trials
    int trialsRun = 0;
    int editCount = 0;        //!< minimized patch size (when found)
    double totalSeconds = 0;
    core::Patch patch;        //!< first successful (minimized) patch
    std::string repairedSource;
};

/**
 * The paper's protocol: up to @p trials independent seeded runs,
 * stopping at the first acceptable repair; a found repair is then
 * checked against the held-out verification bench.
 */
inline ScenarioOutcome
runScenario(const core::DefectSpec &defect,
            const core::EngineConfig &base_cfg, int trials,
            const core::Trace *oracle_override = nullptr)
{
    ScenarioOutcome out;
    out.defect = &defect;
    const core::ProjectSpec &project =
        bench::getProject(defect.project);
    core::Scenario sc = core::buildScenario(project, defect);

    for (int trial = 0; trial < trials; ++trial) {
        core::EngineConfig cfg = base_cfg;
        cfg.seed = 1000 + static_cast<uint64_t>(trial) * 7919;
        ++out.trialsRun;
        core::RepairResult res;
        if (oracle_override) {
            const std::string &dut =
                defect.repairModule.empty() ? project.dutModule
                                            : defect.repairModule;
            core::RepairEngine engine(sc.faulty, project.tbModule, dut,
                                      sc.probe, *oracle_override, cfg);
            res = engine.run();
        } else {
            core::RepairEngine engine = sc.makeEngine(cfg);
            res = engine.run();
        }
        out.totalEvals += res.fitnessEvals;
        out.totalSeconds += res.seconds;
        if (res.found) {
            out.plausible = true;
            out.repairSeconds = res.seconds;
            out.fitnessEvals = res.fitnessEvals;
            out.editCount = static_cast<int>(res.patch.size());
            out.patch = res.patch;
            out.repairedSource = res.repairedSource;
            out.correct = core::checkCorrectness(sc, res.patch);
            break;  // stop at the first acceptable repair
        }
    }
    return out;
}

inline const char *
outcomeName(const ScenarioOutcome &o)
{
    if (!o.plausible)
        return "no-repair";
    return o.correct ? "correct" : "plausible-only";
}

inline void
printRule(char c = '-', int n = 98)
{
    for (int i = 0; i < n; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace cirfix::bench
