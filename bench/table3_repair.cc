/**
 * @file
 * Regenerates Table 3: repair results for all 32 defect scenarios.
 *
 * Protocol (Section 4.2, scaled): up to CIRFIX_TRIALS independent
 * seeded trials per scenario, each bounded by CIRFIX_GENS generations
 * and CIRFIX_BUDGET seconds, stopping at the first acceptable repair;
 * found repairs are classified correct vs plausible-only via the
 * held-out verification testbench. The paper's outcome for each row is
 * printed alongside for comparison.
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    core::EngineConfig cfg = defaultConfig();
    int trials = defaultTrials();

    std::printf("Table 3: Repair results for CirFix "
                "(pop=%d, gens<=%d, budget=%.0fs, trials=%d)\n",
                cfg.popSize, cfg.maxGenerations, cfg.maxSeconds,
                trials);
    printRule('=', 118);
    std::printf("%-22s %-46s %3s | %-14s %9s | %-14s %9s %6s\n",
                "Project", "Defect", "Cat", "Paper", "Paper t(s)",
                "Ours", "Ours t(s)", "Evals");
    printRule('-', 118);

    int plausible = 0, correct = 0;
    int cat1_total = 0, cat1_plausible = 0;
    int cat2_total = 0, cat2_plausible = 0;
    int agree_repaired = 0;

    for (const core::DefectSpec &d : allDefects()) {
        ScenarioOutcome out = runScenario(d, cfg, trials);
        plausible += out.plausible;
        correct += out.correct;
        (d.category == 1 ? cat1_total : cat2_total)++;
        if (out.plausible)
            (d.category == 1 ? cat1_plausible : cat2_plausible)++;
        bool paper_repaired =
            d.paperOutcome != core::PaperOutcome::NoRepair;
        if (paper_repaired == out.plausible)
            ++agree_repaired;

        char paper_time[16] = "-";
        if (d.paperTimeSeconds >= 0)
            std::snprintf(paper_time, sizeof(paper_time), "%.1f",
                          d.paperTimeSeconds);
        char our_time[16] = "-";
        if (out.plausible)
            std::snprintf(our_time, sizeof(our_time), "%.2f",
                          out.repairSeconds);

        std::printf("%-22s %-46s %3d | %-14s %9s | %-14s %9s %6ld\n",
                    d.project.c_str(),
                    d.description.substr(0, 46).c_str(), d.category,
                    core::paperOutcomeName(d.paperOutcome), paper_time,
                    outcomeName(out), our_time,
                    out.plausible ? out.fitnessEvals : out.totalEvals);
        std::fflush(stdout);
    }

    printRule('-', 118);
    std::printf("\nSummary (paper -> ours):\n");
    std::printf("  plausible repairs : 21/32 -> %d/32\n", plausible);
    std::printf("  correct repairs   : 16/32 -> %d/32\n", correct);
    std::printf("  category 1        : 12/19 -> %d/%d\n",
                cat1_plausible, cat1_total);
    std::printf("  category 2        :  9/13 -> %d/%d\n",
                cat2_plausible, cat2_total);
    std::printf("  per-row repaired/not-repaired agreement with "
                "Table 3: %d/32\n",
                agree_repaired);
    return 0;
}
