/**
 * @file
 * Witness-hardening benchmark for the CI regression gate.
 *
 * For each covered Table-3 scenario this harness seeds a guaranteed
 * overfit starting point (the oracle is weakened to the rows the
 * faulty design already matches, so the empty patch is instantly
 * plausible-but-wrong), then runs the full hardened repair loop and
 * emits BENCH_witness.json with two metric groups:
 *
 *  - counters: deterministic hardening quantities. overfit_kills_total
 *    pins the loop's ability to demote seeded overfits with generated
 *    witnesses; correct_total pins end-to-end recovery (final patch
 *    passes the held-out bench); golden_kills_total re-simulates the
 *    golden design under every installed witness bench and MUST stay
 *    0 — a witness that rejects the correct design would poison every
 *    future repair, so that is a hard failure (nonzero exit), not a
 *    regression warning.
 *  - timing: wall-clock of the hardened sweep. Machine-dependent; the
 *    gate only warns.
 *
 * Determinism: engine and witness search are pure functions of their
 * seeds, and the generation budget (not wall-clock) is the binding
 * stop condition at these sizes, so the counters are exact-comparable
 * across machines.
 *
 * Usage: witness_bench [output.json]   (default: BENCH_witness.json)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "core/oracle.h"
#include "core/scenario.h"
#include "core/witness.h"

using namespace cirfix;
using namespace cirfix::core;
using Clock = std::chrono::steady_clock;

namespace {

struct Case
{
    const char *defect;
    uint64_t seed;
};

/** Scenarios where the weakened-oracle overfit is reliably killed and
 *  re-repaired at the chosen seed (mirrors test_witness.cc). */
const Case kCases[] = {
    {"counter_sensitivity", 7},
    {"lshift_sensitivity", 42},
    {"lshift_conditional", 42},
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_witness.json";

    long overfit_seeded = 0;
    long overfit_kills = 0;
    long witnesses_installed = 0;
    long golden_kills = 0;
    long resumed = 0;
    long correct = 0;
    long witness_tries = 0;
    long witness_cycles = 0;

    Clock::time_point t0 = Clock::now();
    for (const Case &c : kCases) {
        const DefectSpec &d = bench::getDefect(c.defect);
        const ProjectSpec &p = bench::getProject(d.project);
        Scenario sc = buildScenario(p, d);

        EngineConfig cfg;
        cfg.popSize = 100;
        cfg.maxGenerations = 12;
        // Generous: the generation budget must bind, not wall-clock,
        // or the counters stop being machine-independent.
        cfg.maxSeconds = 120.0;
        cfg.seed = c.seed;
        cfg.snapshotPath = out_path + "." + c.defect + ".snap";

        // Seed the overfit: weaken the oracle to agreement rows.
        {
            RepairEngine probe = sc.makeEngine(cfg);
            sc.oracle =
                agreementRows(sc.oracle, probe.evaluate(Patch{}).trace);
        }
        if (sc.baselineFitness(cfg).plausible() &&
            !checkCorrectness(sc, Patch{}))
            ++overfit_seeded;

        WitnessOptions wo;
        wo.seed = c.seed;
        wo.maxTries = 4000;
        wo.maxRounds = 3;
        HardenedRepairResult hr = hardenedRepair(sc, cfg, wo);

        overfit_kills += hr.overfitKills;
        witnesses_installed += static_cast<long>(hr.witnesses.size());
        resumed += hr.resumedFromSnapshot;
        witness_tries += hr.witnessTries;
        if (hr.correct)
            ++correct;
        for (const OracleBench &b : hr.witnesses) {
            witness_cycles += static_cast<long>(b.oracle.size());
            // Golden invariance, re-checked the expensive way: the
            // correct design simulated under the installed bench.
            Trace golden_t = runWitnessBench(p.goldenSource, b);
            if (!evaluateFitness(golden_t, b.oracle).plausible()) {
                ++golden_kills;
                std::cerr << "witness_bench: GOLDEN KILL by "
                          << b.provenance << "\n";
            }
        }
        std::remove(cfg.snapshotPath.c_str());
    }
    double sweep_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const long cases = static_cast<long>(std::size(kCases));
    // Integer percent so the value stays exact-comparable.
    long kill_rate_pct =
        overfit_seeded > 0 ? 100 * overfit_kills / overfit_seeded : 0;

    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": 1,\n"
       << "  \"scenarios\": " << cases << ",\n"
       << "  \"counters\": {\n"
       << "    \"overfit_seeded_total\": " << overfit_seeded << ",\n"
       << "    \"overfit_kills_total\": " << overfit_kills << ",\n"
       << "    \"overfit_kill_rate_pct\": " << kill_rate_pct << ",\n"
       << "    \"witnesses_installed_total\": " << witnesses_installed
       << ",\n"
       << "    \"golden_kills_total\": " << golden_kills << ",\n"
       << "    \"resumed_total\": " << resumed << ",\n"
       << "    \"correct_total\": " << correct << ",\n"
       << "    \"witness_tries_total\": " << witness_tries << ",\n"
       << "    \"witness_cycles_total\": " << witness_cycles << "\n"
       << "  },\n"
       << "  \"timing\": {\n"
       << "    \"sweep_seconds\": " << sweep_seconds << "\n"
       << "  }\n"
       << "}\n";

    std::ofstream out(out_path);
    out << js.str();
    out.close();
    std::cout << js.str();
    std::cerr << "witness_bench: wrote " << out_path << " (" << cases
              << " scenarios)\n";
    // A witness must never reject the golden design.
    return golden_kills == 0 ? 0 : 1;
}
