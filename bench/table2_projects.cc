/**
 * @file
 * Regenerates Table 2: the benchmark hardware projects with their
 * project and testbench sizes, plus a golden-design sanity pass (each
 * golden design simulates cleanly under both testbenches).
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    std::printf("Table 2: Benchmark hardware projects\n");
    printRule('=');
    std::printf("%-22s %-52s %8s %10s\n", "Project", "Description",
                "Proj LOC", "TB LOC");
    printRule();

    int total_loc = 0, total_tb = 0;
    bool all_clean = true;
    for (const core::ProjectSpec &p : allProjects()) {
        total_loc += p.projectLoc();
        total_tb += p.testbenchLoc();
        std::printf("%-22s %-52s %8d %10d\n", p.name.c_str(),
                    p.description.substr(0, 52).c_str(),
                    p.projectLoc(), p.testbenchLoc());
        // Sanity: golden design passes both instrumented benches.
        for (bool verify : {false, true}) {
            sim::Trace t = core::recordGoldenTrace(p, verify);
            bool clean = t.size() >= 5;
            for (auto &v : t.rows().back().values)
                clean &= !v.hasUnknown();
            if (!clean) {
                std::printf("  !! golden design unclean on %s bench\n",
                            verify ? "verification" : "repair");
                all_clean = false;
            }
        }
    }
    printRule();
    std::printf("%-22s %-52s %8d %10d\n", "Total", "", total_loc,
                total_tb);
    std::printf("\nGolden sanity: %s\n",
                all_clean ? "all 11 projects simulate cleanly under "
                            "both testbenches"
                          : "FAILURES (see above)");
    std::printf("\nPaper comparison: same 11 projects; our "
                "re-implementations are functionally real but\n"
                "size-reduced (paper totals: 9770 project / 2923 "
                "testbench LOC), see DESIGN.md.\n");
    return all_clean ? 0 : 1;
}
