/**
 * @file
 * Island-model acceleration benchmark for the CI regression gate.
 *
 * Runs the two-fault toggle defect over a fixed seed set twice — once
 * as a single population, once as a 4-island run with migration — and
 * measures the median generations-to-first-plausible under the same
 * per-island generation budget. Islands run concurrently (one engine
 * thread each), so the generation count of the *winning island* is the
 * wall-clock-proportional cost of the island run.
 *
 * The emitted BENCH_island.json carries three hard invariants that
 * fail the build outright (and this binary's exit code) regardless of
 * what the baseline says:
 *
 *   elites_lost_total == 0        no failover replay or re-export ever
 *                                 disagreed with the sealed ledger
 *   migrant_duplicates_total == 0 no broadcast ever carried the same
 *                                 patch key twice
 *   k1_matches_plain == 1         a 1-island run is bit-identical to a
 *                                 plain RepairEngine run (same seed)
 *
 * plus one hard floor: generations_speedup_x >= 2.0 — the island model
 * must keep halving the median search depth on this defect. The K=1
 * fingerprint is also emitted; the gate compares it exactly against
 * the committed baseline (any drift means the search itself changed).
 *
 * Everything under "timing" is machine-dependent and only warns.
 *
 * Usage: island_bench [output.json]   (default: BENCH_island.json)
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/island.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using Clock = std::chrono::steady_clock;

namespace {

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

/** The same two-fault defect the island tests use: inverted reset
 *  polarity plus a dropped toggle — a multi-edit repair, deep enough
 *  that single-population runs usually exhaust the budget. */
std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    s.replace(s.find("rst == 1'b1"), 11, "rst != 1'b1");
    s.replace(s.find("q <= !q"), 7, "q <= q");
    return s;
}

/** Benchmark knobs — all deterministic inputs, all part of the
 *  emitted JSON so a baseline mismatch is self-describing. */
constexpr int kIslands = 4;
constexpr int kMigrationInterval = 1;
constexpr int kMigrantsPerIsland = 2;
constexpr int kPopSize = 12;
constexpr int kBudgetGenerations = 48;
constexpr uint64_t kFingerprintSeed = 7;
const std::vector<uint64_t> kSeeds = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

EngineConfig
baseConfig(uint64_t seed)
{
    EngineConfig cfg;
    cfg.popSize = kPopSize;
    cfg.maxGenerations = kBudgetGenerations;
    cfg.maxSeconds = 600.0;
    cfg.seed = seed;
    return cfg;
}

double
median(std::vector<int> xs)
{
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    return n % 2 ? xs[n / 2]
                 : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_island.json";

    std::shared_ptr<const verilog::SourceFile> golden =
        verilog::parse(kGoldenToggle);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*golden, "tb");
    auto design = sim::elaborate(golden, "tb");
    sim::TraceRecorder rec(*design, probe);
    design->run();
    Trace oracle = rec.takeTrace();
    std::shared_ptr<const verilog::SourceFile> faulty =
        verilog::parse(faultyToggle());

    IslandConfig single;
    single.islands = 1;
    IslandConfig multi;
    multi.islands = kIslands;
    multi.migrationInterval = kMigrationInterval;
    multi.migrantsPerIsland = kMigrantsPerIsland;

    long elites_lost = 0;
    long migrant_duplicates = 0;
    long single_found = 0;
    long island_found = 0;
    std::vector<int> single_gens, island_gens;

    // ---- single population per seed ----------------------------------
    Clock::time_point t0 = Clock::now();
    for (uint64_t seed : kSeeds) {
        IslandOutcome out = runIslands(faulty, "tb", "dut", probe,
                                       oracle, baseConfig(seed),
                                       single);
        single_found += out.found ? 1 : 0;
        single_gens.push_back(out.found ? out.result.generations
                                        : kBudgetGenerations);
    }
    double single_wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // ---- K islands per seed ------------------------------------------
    t0 = Clock::now();
    for (uint64_t seed : kSeeds) {
        IslandOutcome out = runIslands(faulty, "tb", "dut", probe,
                                       oracle, baseConfig(seed),
                                       multi);
        island_found += out.found ? 1 : 0;
        island_gens.push_back(
            out.found ? out.islands[out.winnerIsland].generations
                      : kBudgetGenerations);
        elites_lost += out.migration.elitesLost;
        migrant_duplicates += out.migration.migrantDuplicates;
    }
    double island_wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // ---- the K=1 identity invariant ----------------------------------
    // A 1-island run must be bit-identical to a plain engine run; its
    // fingerprint is the baseline-exact drift detector.
    RepairResult plain;
    {
        RepairEngine engine(faulty, "tb", "dut", probe, oracle,
                            baseConfig(kFingerprintSeed));
        plain = engine.run();
    }
    IslandOutcome solo = runIslands(faulty, "tb", "dut", probe, oracle,
                                    baseConfig(kFingerprintSeed),
                                    single);
    bool k1_matches =
        solo.found == plain.found &&
        solo.result.generations == plain.generations &&
        solo.result.patch.key() == plain.patch.key() &&
        solo.result.repairedSource == plain.repairedSource;

    double median_single = median(single_gens);
    double median_island = median(island_gens);
    double speedup =
        median_island > 0 ? median_single / median_island : 0.0;

    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": 1,\n"
       << "  \"defect\": \"toggle-two-fault\",\n"
       << "  \"islands\": " << kIslands << ",\n"
       << "  \"migration_interval\": " << kMigrationInterval << ",\n"
       << "  \"migrants_per_island\": " << kMigrantsPerIsland << ",\n"
       << "  \"pop_size\": " << kPopSize << ",\n"
       << "  \"budget_generations\": " << kBudgetGenerations << ",\n"
       << "  \"seeds\": " << kSeeds.size() << ",\n"
       << "  \"counters\": {\n"
       << "    \"elites_lost_total\": " << elites_lost << ",\n"
       << "    \"migrant_duplicates_total\": " << migrant_duplicates
       << ",\n"
       << "    \"k1_matches_plain\": " << (k1_matches ? 1 : 0) << ",\n"
       << "    \"single_found_total\": " << single_found << ",\n"
       << "    \"island_found_total\": " << island_found << ",\n"
       << "    \"generations_single_median\": " << median_single
       << ",\n"
       << "    \"generations_island_median\": " << median_island
       << ",\n"
       << "    \"generations_speedup_x\": " << speedup << "\n"
       << "  },\n"
       << "  \"fingerprints\": {\n"
       << "    \"k1_seed" << kFingerprintSeed << "\": \""
       << solo.fingerprint << "\"\n"
       << "  },\n"
       << "  \"timing\": {\n"
       << "    \"single_wall_seconds\": " << single_wall << ",\n"
       << "    \"island_wall_seconds\": " << island_wall << "\n"
       << "  }\n"
       << "}\n";

    std::ofstream out(out_path);
    out << js.str();
    out.close();
    std::cout << js.str();
    std::cerr << "island_bench: wrote " << out_path << "\n";

    // The hard invariants also bind this binary's exit code.
    bool ok = elites_lost == 0 && migrant_duplicates == 0 &&
              k1_matches && speedup >= 2.0;
    if (!ok)
        std::cerr << "island_bench: hard invariant violated "
                  << "(elites_lost=" << elites_lost
                  << " migrant_duplicates=" << migrant_duplicates
                  << " k1_matches_plain=" << k1_matches
                  << " speedup=" << speedup << ")\n";
    return ok ? 0 : 1;
}
