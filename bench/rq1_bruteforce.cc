/**
 * @file
 * RQ1 baseline comparison (Section 5.1): CirFix vs a brute-force
 * search applying edits uniformly (no fault localization, no fitness
 * guidance). The paper reports the brute force found no repairs within
 * its 12-hour bounds and took hours on simple single-edit defects that
 * CirFix solved in seconds-to-minutes.
 */

#include "core/bruteforce.h"

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    // Simple single-edit defects from small course-style projects
    // (the comparison population the paper describes).
    const char *ids[] = {
        "counter_sensitivity",
        "flipflop_conditional",
        "lshift_sensitivity",
        "lshift_conditional",
        "counter_increment",
    };

    core::EngineConfig cfg = defaultConfig();
    double bf_budget = cfg.maxSeconds * 3;

    std::printf("RQ1: CirFix vs brute-force on simple single-edit "
                "defects\n");
    printRule('=');
    std::printf("%-26s | %-10s %10s %8s | %-10s %10s %10s\n",
                "Defect", "CirFix", "t(s)", "evals", "BruteForce",
                "t(s)", "tried");
    printRule();

    int cf_found = 0, bf_found = 0;
    double cf_time = 0, bf_time = 0;
    for (const char *id : ids) {
        const core::DefectSpec &d = getDefect(id);
        const core::ProjectSpec &p = getProject(d.project);
        core::Scenario sc = core::buildScenario(p, d);

        ScenarioOutcome cf = runScenario(d, cfg, defaultTrials());
        cf_found += cf.plausible;
        cf_time += cf.plausible ? cf.repairSeconds : cfg.maxSeconds;

        core::RepairEngine engine = sc.makeEngine(cfg);
        core::BruteForceResult bf = core::bruteForceRepair(
            engine, *sc.faulty,
            d.repairModule.empty() ? p.dutModule : d.repairModule,
            bf_budget, 99);
        bf_found += bf.found;
        bf_time += bf.seconds;

        std::printf("%-26s | %-10s %10.2f %8ld | %-10s %10.2f %10ld\n",
                    id, cf.plausible ? "repaired" : "no",
                    cf.plausible ? cf.repairSeconds : cfg.maxSeconds,
                    cf.plausible ? cf.fitnessEvals : cf.totalEvals,
                    bf.found ? "repaired" : "no", bf.seconds,
                    bf.candidatesTried);
        std::fflush(stdout);
    }
    printRule();
    std::printf("\nCirFix repaired %d/5 (avg %.2fs); brute force "
                "repaired %d/5 (avg %.2fs at %.0fx budget).\n",
                cf_found, cf_time / 5, bf_found, bf_time / 5,
                bf_budget / cfg.maxSeconds);
    std::printf("Shape check vs paper: CirFix finds these repairs "
                "quickly; undirected search is far slower\n"
                "(the paper's brute force found none within its "
                "resource bounds on the full benchmarks).\n");
    return 0;
}
