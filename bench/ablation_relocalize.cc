/**
 * @file
 * Re-localization ablation (Section 3 design note): CirFix re-runs
 * fault localization for every selected parent, supporting dependent
 * multi-edit repairs whose later edits target code implicated only
 * after earlier edits changed behavior. This bench compares the
 * paper's re-localizing configuration against localizing once on the
 * original design, on both single-edit and multi-edit defects.
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    const char *ids[] = {
        "counter_sensitivity",       // single-edit
        "lshift_conditional",        // single-edit
        "counter_incorrect_reset",   // triple-edit (RQ3 defect)
        "sdram_sync_reset",          // double-edit
        "fsm_missing_next_state_default",  // multi-edit
    };

    core::EngineConfig base = defaultConfig();
    int trials = defaultTrials();

    std::printf("Re-localization ablation (trials=%d)\n", trials);
    printRule('=');
    std::printf("%-32s | %-22s | %-22s\n", "Defect",
                "re-localize per parent", "localize once");
    printRule();

    int found[2] = {0, 0};
    for (const char *id : ids) {
        const core::DefectSpec &d = getDefect(id);
        std::printf("%-32s", id);
        for (int mode = 0; mode < 2; ++mode) {
            core::EngineConfig cfg = base;
            cfg.relocalize = (mode == 0);
            ScenarioOutcome out = runScenario(d, cfg, trials);
            found[mode] += out.plausible;
            char cell[40];
            if (out.plausible)
                std::snprintf(cell, sizeof(cell), "%s (%ld ev)",
                              out.correct ? "correct" : "plausible",
                              out.fitnessEvals);
            else
                std::snprintf(cell, sizeof(cell), "no (%ld ev)",
                              out.totalEvals);
            std::printf(" | %-22s", cell);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    printRule();
    std::printf("\nrepaired: %d/5 with re-localization vs %d/5 "
                "localizing once.\n",
                found[0], found[1]);
    std::printf("The paper re-localizes every parent specifically to "
                "support dependent multi-edit\nrepairs; single-edit "
                "defects are unaffected, multi-edit ones benefit.\n");
    return 0;
}
