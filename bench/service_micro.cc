/**
 * @file
 * Microbenchmarks for the repair-service layer: JSON encode/decode,
 * frame throughput over a socketpair, and JobQueue submit/pop. These
 * bound the daemon's per-request overhead — the repair engine itself
 * dominates everything else, so the service layer must stay cheap.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "service/framing.h"
#include "service/jobqueue.h"
#include "service/protocol.h"

using namespace cirfix::service;

namespace {

JobSpec
sampleSpec(size_t design_bytes)
{
    JobSpec spec;
    spec.designSource = std::string(design_bytes, 'x');
    spec.tbModule = "tb";
    spec.dutModule = "dut";
    spec.oracleCsv = "t,q\n0,0\n5,1\n";
    spec.params.popSize = 40;
    spec.params.maxGenerations = 8;
    return spec;
}

void
BM_JsonDumpJobSpec(benchmark::State &state)
{
    Json j = toJson(sampleSpec(static_cast<size_t>(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(j.dump());
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(j.dump().size()));
}
BENCHMARK(BM_JsonDumpJobSpec)->Arg(1 << 10)->Arg(64 << 10);

void
BM_JsonParseJobSpec(benchmark::State &state)
{
    std::string text =
        toJson(sampleSpec(static_cast<size_t>(state.range(0)))).dump();
    for (auto _ : state)
        benchmark::DoNotOptimize(Json::parse(text));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_JsonParseJobSpec)->Arg(1 << 10)->Arg(64 << 10);

void
BM_SpecRoundTrip(benchmark::State &state)
{
    JobSpec spec = sampleSpec(4 << 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            jobSpecFromJson(Json::parse(toJson(spec).dump())));
}
BENCHMARK(BM_SpecRoundTrip);

/** One frame through a socketpair, echo-style: the cost of the wire
 *  layer per request/response pair. */
void
BM_FrameEchoSocketpair(benchmark::State &state)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        state.SkipWithError("socketpair failed");
        return;
    }
    std::thread echo([fd = fds[1]] {
        std::string payload;
        while (readFrame(fd, payload))
            writeFrame(fd, payload);
    });
    std::string msg(static_cast<size_t>(state.range(0)), 'm');
    std::string back;
    for (auto _ : state) {
        writeFrame(fds[0], msg);
        readFrame(fds[0], back);
    }
    ::shutdown(fds[0], SHUT_RDWR);
    echo.join();
    ::close(fds[0]);
    ::close(fds[1]);
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(2 * msg.size()));
}
BENCHMARK(BM_FrameEchoSocketpair)->Arg(256)->Arg(64 << 10);

void
BM_QueueSubmitPop(benchmark::State &state)
{
    AdmissionLimits limits;
    limits.queueDepth = 1 << 20;
    JobSpec spec = sampleSpec(1 << 10);
    for (auto _ : state) {
        JobQueue q(limits);
        for (int i = 0; i < state.range(0); ++i) {
            spec.priority = i % 7;
            benchmark::DoNotOptimize(q.submit(spec));
        }
        q.close();
        while (q.pop())
            ;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_QueueSubmitPop)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
