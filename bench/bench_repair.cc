/**
 * @file
 * End-to-end repair benchmark for the CI regression gate.
 *
 * Runs one committed defect scenario through the repair engine twice —
 * early abort off, then on, same seed — and emits a machine-readable
 * BENCH_repair.json with three metric groups:
 *
 *  - counters: deterministic per-seed quantities (fitness evals, early
 *    aborts, oracle rows scored/skipped, simulator allocation counts
 *    per candidate simulation). bench_compare.py gates these hard: a
 *    regression here is a behavior change, not noise.
 *  - timing: wall-clock throughput (evals/sec with and without the
 *    cutoff). Machine-dependent, so the gate only warns on these.
 *  - fingerprint_match: whether both runs produced semantically
 *    identical repairs — the soundness contract of the cutoff
 *    (DESIGN.md, "Streaming fitness & early abort") checked on every
 *    CI run, not just in the unit suite.
 *
 * A second scenario (the flip-flop defect) runs with the lint
 * pre-screen on and off: the gated run must report nonzero
 * lint_rejects (mutants that manufacture zero-delay loops) while
 * producing the exact same repair as the ungated run
 * (prescreen_fingerprint_match).
 *
 * Usage: bench_repair [output.json]   (default: BENCH_repair.json)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "benchmarks/registry.h"
#include "core/engine.h"
#include "core/scenario.h"
#include "sim/elaborate.h"
#include "sim/logic.h"
#include "sim/probe.h"
#include "sim/scheduler.h"
#include "verilog/parser.h"

using namespace cirfix;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Everything that must be identical between the two runs. */
std::string
semanticFingerprint(const core::RepairResult &r)
{
    std::ostringstream os;
    os << r.found << '|' << r.patch.key() << '|' << r.repairedSource
       << '|' << r.finalFitness.sum << '/' << r.finalFitness.total
       << '|' << r.generations << '|' << r.totalMutants << '|'
       << r.invalidMutants;
    for (const auto &[evals, fit] : r.fitnessTrajectory)
        os << '|' << evals << ':' << fit;
    return os.str();
}

/**
 * Narrow fingerprint for the pre-screen soundness check. The lint gate
 * changes how many candidates are *simulated* (rejects are never
 * charged a fitness eval), so eval counts and trajectory x-coordinates
 * legitimately shift; everything about the repair itself — what was
 * found, the patch, the printed source, the fitness values climbed
 * through — must be identical.
 */
std::string
prescreenFingerprint(const core::RepairResult &r)
{
    std::ostringstream os;
    os << r.found << '|' << r.patch.key() << '|' << r.repairedSource
       << '|' << r.finalFitness.sum << '/' << r.finalFitness.total
       << '|' << r.generations;
    for (const auto &[evals, fit] : r.fitnessTrajectory)
        os << '|' << fit;
    return os.str();
}

struct AllocProfile
{
    uint64_t logicHeapAllocs = 0;
    uint64_t eventHeapAllocs = 0;
    uint64_t slotsAllocated = 0;
    uint64_t slotsRecycled = 0;
    uint64_t eventsScheduled = 0;
    double simSeconds = 0.0;
    int sims = 0;
};

/**
 * Allocation cost of one candidate simulation: elaborate + probe + run
 * the counter testbench and read back the thread-local allocation
 * counters. Deterministic — the same design schedules the same events
 * and allocates the same words every time.
 */
AllocProfile
profileSimulatorAllocations()
{
    const core::ProjectSpec &p = bench::getProject("counter");
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(p.goldenSource + "\n" + p.testbenchSource);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, p.tbModule);

    AllocProfile prof;
    prof.sims = 32;
    // Warm-up run so one-time lazy setup is not billed to the loop.
    {
        auto design = sim::elaborate(file, p.tbModule);
        sim::TraceRecorder rec(*design, probe);
        design->run();
    }
    uint64_t logic0 = sim::logicHeapAllocs();
    uint64_t event0 = sim::EventFn::heapAllocs();
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < prof.sims; ++i) {
        auto design = sim::elaborate(file, p.tbModule);
        sim::TraceRecorder rec(*design, probe);
        design->run();
        const sim::Scheduler::AllocStats &st =
            design->scheduler().allocStats();
        prof.slotsAllocated += st.slotsAllocated;
        prof.slotsRecycled += st.slotsRecycled;
        prof.eventsScheduled += st.eventsScheduled;
    }
    prof.simSeconds = secondsSince(t0);
    prof.logicHeapAllocs = sim::logicHeapAllocs() - logic0;
    prof.eventHeapAllocs = sim::EventFn::heapAllocs() - event0;
    return prof;
}

core::EngineConfig
trialConfig(bool early_abort)
{
    core::EngineConfig cfg;
    cfg.popSize = 20;
    cfg.maxGenerations = 6;
    // Lambda > popSize so truncation selection — and therefore the
    // cutoff — has real work to do each generation.
    cfg.offspringPerGen = 40;
    cfg.seed = 7;
    cfg.numThreads = 4;
    // The wall clock must not influence the search or the two runs
    // could diverge for non-semantic reasons.
    cfg.maxSeconds = 1e9;
    cfg.earlyAbort = early_abort;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_repair.json";
    const std::string defect_id = "counter_incorrect_reset";

    AllocProfile alloc = profileSimulatorAllocations();

    const core::ProjectSpec &p = bench::getProject("counter");
    const core::DefectSpec &d = bench::getDefect(defect_id);
    core::Scenario sc = core::buildScenario(p, d);

    core::RepairEngine full = sc.makeEngine(trialConfig(false));
    Clock::time_point t0 = Clock::now();
    core::RepairResult full_res = full.run();
    double full_seconds = secondsSince(t0);

    core::RepairEngine abort_on = sc.makeEngine(trialConfig(true));
    t0 = Clock::now();
    core::RepairResult abort_res = abort_on.run();
    double abort_seconds = secondsSince(t0);

    bool fingerprint_match =
        semanticFingerprint(full_res) == semanticFingerprint(abort_res);

    // Pre-screen soundness on a second defect: the flip-flop's mutants
    // readily produce `always @*` blocks that feed a signal back into
    // itself, which the lint gate rejects without simulating. The gate
    // must change only *what gets simulated*, never the repair.
    const core::ProjectSpec &pf = bench::getProject("flip_flop");
    const core::DefectSpec &df = bench::getDefect("flipflop_conditional");
    core::Scenario scf = core::buildScenario(pf, df);

    core::EngineConfig lint_off_cfg = trialConfig(true);
    lint_off_cfg.lintPrescreen = false;
    core::RepairEngine lint_off = scf.makeEngine(lint_off_cfg);
    t0 = Clock::now();
    core::RepairResult lint_off_res = lint_off.run();
    double lint_off_seconds = secondsSince(t0);

    core::RepairEngine lint_on = scf.makeEngine(trialConfig(true));
    t0 = Clock::now();
    core::RepairResult lint_on_res = lint_on.run();
    double lint_on_seconds = secondsSince(t0);

    bool prescreen_fingerprint_match =
        prescreenFingerprint(lint_on_res) ==
        prescreenFingerprint(lint_off_res);

    uint64_t rows_total = abort_res.rowsScored + abort_res.rowsSkipped;
    double samples_aborted_pct =
        rows_total ? 100.0 * static_cast<double>(abort_res.rowsSkipped) /
                         static_cast<double>(rows_total)
                   : 0.0;
    double full_eps =
        full_seconds > 0 ? full_res.fitnessEvals / full_seconds : 0.0;
    double abort_eps =
        abort_seconds > 0 ? abort_res.fitnessEvals / abort_seconds : 0.0;

    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": 1,\n"
       << "  \"scenario\": \"" << defect_id << "\",\n"
       << "  \"counters\": {\n"
       << "    \"fitness_evals\": " << abort_res.fitnessEvals << ",\n"
       << "    \"generations\": " << abort_res.generations << ",\n"
       << "    \"early_aborts\": " << abort_res.earlyAborts << ",\n"
       << "    \"rows_scored\": " << abort_res.rowsScored << ",\n"
       << "    \"rows_skipped\": " << abort_res.rowsSkipped << ",\n"
       << "    \"logic_heap_allocs_per_sim\": "
       << alloc.logicHeapAllocs / alloc.sims << ",\n"
       << "    \"eventfn_heap_allocs_per_sim\": "
       << alloc.eventHeapAllocs / alloc.sims << ",\n"
       << "    \"slots_allocated_per_sim\": "
       << alloc.slotsAllocated / alloc.sims << ",\n"
       << "    \"slots_recycled_per_sim\": "
       << alloc.slotsRecycled / alloc.sims << ",\n"
       << "    \"events_scheduled_per_sim\": "
       << alloc.eventsScheduled / alloc.sims << ",\n"
       << "    \"lint_rejects\": " << lint_on_res.lintRejects << "\n"
       << "  },\n"
       << "  \"fingerprint_match\": "
       << (fingerprint_match ? "true" : "false") << ",\n"
       << "  \"prescreen_fingerprint_match\": "
       << (prescreen_fingerprint_match ? "true" : "false") << ",\n"
       << "  \"repair_found\": "
       << (abort_res.found ? "true" : "false") << ",\n"
       << "  \"samples_aborted_pct\": " << samples_aborted_pct << ",\n"
       << "  \"timing\": {\n"
       << "    \"full_eval_seconds\": " << full_seconds << ",\n"
       << "    \"abort_eval_seconds\": " << abort_seconds << ",\n"
       << "    \"evals_per_sec_full\": " << full_eps << ",\n"
       << "    \"evals_per_sec_abort\": " << abort_eps << ",\n"
       << "    \"prescreen_off_seconds\": " << lint_off_seconds
       << ",\n"
       << "    \"prescreen_on_seconds\": " << lint_on_seconds << ",\n"
       << "    \"sim_seconds_per_candidate\": "
       << alloc.simSeconds / alloc.sims << "\n"
       << "  }\n"
       << "}\n";

    std::ofstream out(out_path);
    out << js.str();
    out.close();
    std::cout << js.str();
    std::cerr << "bench_repair: wrote " << out_path
              << (fingerprint_match ? " (fingerprint match)"
                                    : " (FINGERPRINT MISMATCH)")
              << (prescreen_fingerprint_match
                      ? ""
                      : " (PRESCREEN FINGERPRINT MISMATCH)")
              << "\n";
    // A fingerprint mismatch means the cutoff (or the lint gate)
    // changed repair results — fail loudly so CI cannot miss it.
    return fingerprint_match && prescreen_fingerprint_match ? 0 : 1;
}
