/**
 * @file
 * Fix-localization ablation (Section 3.6): the paper reports that
 * restricting insertion sources to statements of the module under
 * repair (and insertion targets to initial/always blocks) cuts the
 * average rate of mutants that fail to compile from 35% to 10%.
 *
 * We measure the invalid-mutant rate across every benchmark project
 * with fix localization on and off (off = donors drawn uniformly from
 * the whole file, testbench included, whose statements reference names
 * undeclared in the DUT).
 */

#include <random>

#include "common.h"
#include "core/mutation.h"
#include "verilog/validate.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::core;
    using namespace cirfix::bench;

    const int kMutants = 400;

    std::printf("Fix localization ablation: invalid-mutant rate "
                "(%d mutants per project per mode)\n",
                kMutants);
    printRule('=');
    std::printf("%-24s %14s %14s\n", "Project", "with fixloc",
                "without");
    printRule();

    double with_sum = 0, without_sum = 0;
    int n = 0;
    for (const ProjectSpec &p : allProjects()) {
        // Use the first defect of the project so the mutated design
        // is a real repair scenario.
        auto defects = defectsForProject(p.name);
        Scenario sc = buildScenario(p, *defects[0]);
        const verilog::Module *dut = sc.faulty->findModule(
            defects[0]->repairModule.empty()
                ? p.dutModule
                : defects[0]->repairModule);

        std::unordered_set<int> fl;
        visitAll(*const_cast<verilog::Module *>(dut),
                 [&](verilog::Node &node) { fl.insert(node.id); });

        double rates[2] = {0, 0};
        for (int mode = 0; mode < 2; ++mode) {
            bool use_fixloc = (mode == 0);
            std::mt19937_64 rng(12345);
            MutationConfig mcfg;
            mcfg.useFixLoc = use_fixloc;
            Mutator mut(rng, mcfg);
            int invalid = 0, total = 0;
            for (int i = 0; i < kMutants; ++i) {
                auto e = mut.mutate(*sc.faulty, *dut, fl);
                if (!e)
                    continue;
                Patch patch;
                patch.edits.push_back(std::move(*e));
                auto mutant = applyPatch(*sc.faulty, patch);
                ++total;
                invalid += verilog::isValid(*mutant) ? 0 : 1;
            }
            rates[mode] =
                total ? 100.0 * invalid / total : 0.0;
        }
        std::printf("%-24s %13.1f%% %13.1f%%\n", p.name.c_str(),
                    rates[0], rates[1]);
        with_sum += rates[0];
        without_sum += rates[1];
        ++n;
    }
    printRule();
    std::printf("%-24s %13.1f%% %13.1f%%   (paper: 10%% vs 35%%)\n",
                "average", with_sum / n, without_sum / n);
    std::printf("\nShape check: fix localization cuts the invalid-"
                "mutant rate by a large factor.\n");
    return 0;
}
