/**
 * @file
 * Regenerates Table 1: the nine repair templates, each demonstrated by
 * applying it to a sample design and showing the rewritten code.
 */

#include "common.h"
#include "core/templates.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;

namespace {

const char *kSample = R"(
module sample (clk, rst, q);
    input clk, rst;
    output [3:0] q;
    reg [3:0] q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 4'd0;
        end
        else begin
            q = q + 4'd1;
        end
    end
endmodule
)";

int
findTarget(SourceFile &file, TemplateKind kind)
{
    int id = -1;
    visitAll(file, [&](Node &n) {
        if (id >= 0)
            return;
        switch (kind) {
          case TemplateKind::NegateConditional:
            if (n.kind == NodeKind::If)
                id = n.id;
            break;
          case TemplateKind::SensitivityNegedge:
          case TemplateKind::SensitivityPosedge:
          case TemplateKind::SensitivityStar:
          case TemplateKind::SensitivityLevel:
            if (n.kind == NodeKind::EventCtrl)
                id = n.id;
            break;
          case TemplateKind::BlockingToNonblocking:
            if (n.kind == NodeKind::Assign &&
                n.as<Assign>()->blocking)
                id = n.id;
            break;
          case TemplateKind::NonblockingToBlocking:
            if (n.kind == NodeKind::Assign &&
                !n.as<Assign>()->blocking)
                id = n.id;
            break;
          case TemplateKind::IncrementValue:
          case TemplateKind::DecrementValue:
            if (n.kind == NodeKind::Number &&
                n.as<Number>()->value.toUint64() == 1)
                id = n.id;
            break;
          default:
            break;  // extended templates are shown by ext_templates
        }
    });
    return id;
}

const char *
categoryOf(TemplateKind k)
{
    switch (k) {
      case TemplateKind::NegateConditional:
        return "Conditionals";
      case TemplateKind::SensitivityNegedge:
      case TemplateKind::SensitivityPosedge:
      case TemplateKind::SensitivityStar:
      case TemplateKind::SensitivityLevel:
        return "Sensitivity Lists";
      case TemplateKind::BlockingToNonblocking:
      case TemplateKind::NonblockingToBlocking:
        return "Assignments";
      default:
        return "Numeric";
    }
}

/** The line of the printed module that changed, if any. */
std::string
changedLine(const std::string &before, const std::string &after)
{
    size_t b = 0, a = 0;
    while (b < before.size() && a < after.size()) {
        size_t be = before.find('\n', b);
        size_t ae = after.find('\n', a);
        std::string bl = before.substr(b, be - b);
        std::string al = after.substr(a, ae - a);
        if (bl != al)
            return "    " + bl + "  ==>  " + al;
        if (be == std::string::npos || ae == std::string::npos)
            break;
        b = be + 1;
        a = ae + 1;
    }
    return "    (sensitivity/structure change, see full diff)";
}

} // namespace

int
main()
{
    using namespace cirfix::bench;

    std::printf("Table 1: Repair templates in CirFix\n");
    printRule('=');

    for (TemplateKind k : allTemplates()) {
        auto file = parse(kSample);
        int target = findTarget(*file, k);
        std::string before = print(*file);
        std::string param;
        if (k == TemplateKind::SensitivityNegedge ||
            k == TemplateKind::SensitivityPosedge ||
            k == TemplateKind::SensitivityLevel)
            param = "rst";
        bool ok = applyTemplate(*file, k, target, param);
        std::string after = print(*file);
        std::printf("%-18s %-22s %s\n", categoryOf(k),
                    templateName(k), ok ? "" : "(not applicable)");
        if (ok) {
            // Show the textual effect on the sample design.
            std::string delta = changedLine(before, after);
            // Trim leading spaces for display.
            std::printf("%s\n", delta.c_str());
        }
    }
    printRule();
    std::printf("All 9 templates of Table 1 implemented; see "
                "src/core/templates.h.\n");
    return 0;
}
