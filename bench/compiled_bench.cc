/**
 * @file
 * Compiled-backend benchmark for the CI regression gate.
 *
 * Three metric groups land in BENCH_compiled.json:
 *
 *  - counters: deterministic equivalence quantities over the full
 *    benchmark suite (11 golden projects + 32 defect variants run
 *    under both backends). sample_mismatches MUST stay 0 — one
 *    diverging sample means the compiled backend could change a
 *    repair verdict, so that is a hard failure (nonzero exit).
 *    designs_compiled / fallback_count pin the compilable subset: a
 *    drop in designs_compiled means modules silently fell back to the
 *    interpreter and the speedup quietly evaporated.
 *  - repair_identical: a Table-3 repair (counter_sensitivity, fixed
 *    seed) run under both backends must produce the same winner patch
 *    fingerprint, generation count and eval count. Hard-gated.
 *  - timing: fitness-shaped evaluation throughput (elaborate +
 *    simulate + trace-record per eval) for both backends and the
 *    resulting speedup. Machine-dependent; the gate only warns.
 *
 * Determinism: the diff sweep and the repair runs are pure functions
 * of the design sources and seeds, so every counter is
 * exact-comparable across machines.
 *
 * Usage: compiled_bench [output.json]   (default: BENCH_compiled.json)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "core/scenario.h"
#include "sim/difftest.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using Clock = std::chrono::steady_clock;

namespace {

std::shared_ptr<const verilog::SourceFile>
parseTogether(const std::string &dut, const std::string &tb)
{
    return std::shared_ptr<const verilog::SourceFile>(
        verilog::parse(dut + "\n" + tb));
}

/** One fitness-shaped evaluation: elaborate, attach probe, run. */
void
evalOnce(const std::shared_ptr<const verilog::SourceFile> &file,
         const std::string &top, const sim::ProbeConfig &probe,
         sim::SimBackend backend)
{
    sim::SimGuards guards;
    guards.backend = backend;
    auto design = sim::elaborate(file, top, guards);
    sim::TraceRecorder rec(*design, probe);
    design->run();
}

double
evalsPerSec(const std::shared_ptr<const verilog::SourceFile> &file,
            const std::string &top, const sim::ProbeConfig &probe,
            sim::SimBackend backend, int reps)
{
    evalOnce(file, top, probe, backend);  // warm-up
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < reps; ++i)
        evalOnce(file, top, probe, backend);
    double s = std::chrono::duration<double>(Clock::now() - t0).count();
    return s > 0.0 ? reps / s : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_compiled.json";

    // ---- Differential sweep: every golden project + defect variant.
    long designs = 0;
    long sample_mismatches = 0;
    uint64_t designs_compiled = 0;
    uint64_t fallback_count = 0;
    uint64_t four_state_fallbacks = 0;

    auto sweepOne = [&](const std::string &name,
                        const std::string &dut_src,
                        const ProjectSpec &p) {
        auto file = parseTogether(dut_src, p.testbenchSource);
        sim::ProbeConfig probe =
            sim::deriveProbeConfig(*file, p.tbModule);
        sim::DiffResult r =
            sim::diffBackends(file, p.tbModule, probe);
        ++designs;
        designs_compiled += r.stats.modulesCompiled;
        fallback_count += r.stats.modulesFallback;
        four_state_fallbacks += r.stats.fourStateFallbacks;
        if (!r.match) {
            ++sample_mismatches;
            std::cerr << "compiled_bench: MISMATCH " << name << ": "
                      << r.mismatch << "\n";
        }
    };

    for (const ProjectSpec &p : bench::allProjects())
        sweepOne("project " + p.name, p.goldenSource, p);
    for (const DefectSpec &d : bench::allDefects()) {
        const ProjectSpec &p = bench::getProject(d.project);
        sweepOne("defect " + d.id,
                 applyRewrites(p.goldenSource, d.rewrites), p);
    }

    // ---- Repair-fingerprint identity on a Table-3 scenario.
    long repair_identical = 0;
    int repair_generations = 0;
    long repair_evals = 0;
    {
        const DefectSpec &d = bench::getDefect("counter_sensitivity");
        const ProjectSpec &p = bench::getProject(d.project);
        Scenario sc = buildScenario(p, d);
        auto runWith = [&](sim::SimBackend backend) {
            EngineConfig cfg;
            cfg.popSize = 100;
            cfg.maxGenerations = 12;
            // Generous: the generation budget must bind, not
            // wall-clock, or the fingerprint stops being
            // machine-independent.
            cfg.maxSeconds = 120.0;
            cfg.seed = 42;
            cfg.backend = backend;
            RepairEngine engine = sc.makeEngine(cfg);
            return engine.run();
        };
        RepairResult ev = runWith(sim::SimBackend::Event);
        RepairResult cp = runWith(sim::SimBackend::Compiled);
        repair_generations = ev.generations;
        repair_evals = ev.fitnessEvals;
        if (ev.found == cp.found &&
            ev.patch.key() == cp.patch.key() &&
            ev.generations == cp.generations &&
            ev.fitnessEvals == cp.fitnessEvals)
            repair_identical = 1;
        else
            std::cerr << "compiled_bench: REPAIR DIVERGED: found "
                      << ev.found << "/" << cp.found << " gens "
                      << ev.generations << "/" << cp.generations
                      << " evals " << ev.fitnessEvals << "/"
                      << cp.fitnessEvals << "\n";
    }

    // ---- Throughput: fitness-shaped evals/sec.
    //
    // Two regimes, reported separately because they answer different
    // questions:
    //  - Table-3 designs (counter, sha3): what a repair run actually
    //    gains today. Their testbenches stay interpreted (delays,
    //    initial blocks, $display), so Amdahl caps the whole-eval
    //    speedup well below the kernel speedup.
    //  - deep-comb stress: a 48-stage combinational cascade clocked
    //    for 20k cycles, where levelized two-state execution is the
    //    workload. This is the regime the compiled backend exists
    //    for, and where the ~10x evals/sec target is measured.
    auto throughput = [&](const std::string &dut_src,
                          const std::string &tb_src,
                          const std::string &top, int reps,
                          double *ev, double *cp) {
        auto file = parseTogether(dut_src, tb_src);
        sim::ProbeConfig probe = sim::deriveProbeConfig(*file, top);
        *ev = evalsPerSec(file, top, probe, sim::SimBackend::Event,
                          reps);
        *cp = evalsPerSec(file, top, probe,
                          sim::SimBackend::Compiled, reps);
    };

    const ProjectSpec &tp = bench::getProject("counter");
    double counter_ev = 0, counter_cp = 0;
    throughput(tp.goldenSource, tp.testbenchSource, tp.tbModule, 200,
               &counter_ev, &counter_cp);
    const ProjectSpec &sp = bench::getProject("sha3");
    double sha3_ev = 0, sha3_cp = 0;
    throughput(sp.goldenSource, sp.testbenchSource, sp.tbModule, 50,
               &sha3_ev, &sha3_cp);

    std::ostringstream stress;
    stress << "module pipe(clk, rst, in, out);\n"
              " input clk; input rst; input [31:0] in;"
              " output reg [31:0] out;\n reg [31:0] acc;\n";
    for (int i = 0; i < 48; ++i)
        stress << " wire [31:0] s" << i << ";\n";
    stress << " assign s0 = in ^ acc;\n";
    for (int i = 1; i < 48; ++i)
        stress << " assign s" << i << " = (s" << (i - 1) << " + 32'd"
               << i << ") ^ (s" << (i - 1) << " >> 1);\n";
    stress << " always @(posedge clk) begin\n"
              "  if (rst) begin acc <= 32'd0; out <= 32'd0; end\n"
              "  else begin acc <= acc + s47; out <= s47; end\n"
              " end\nendmodule\n";
    const char *stress_tb =
        "module tb;\n"
        " reg clk; reg rst; reg [31:0] in; wire [31:0] out;\n"
        " pipe dut(.clk(clk), .rst(rst), .in(in), .out(out));\n"
        " initial begin clk = 0; rst = 1; in = 32'd3;"
        " #20 rst = 0; end\n"
        " always #5 clk = ~clk;\n"
        " always @(posedge clk) in <= in + 32'd7;\n"
        " initial #200000 $finish;\nendmodule\n";
    {
        // The stress design must itself be bit-identical across
        // backends, or its timing numbers are meaningless.
        auto sfile = parseTogether(stress.str(), stress_tb);
        sim::ProbeConfig sprobe = sim::deriveProbeConfig(*sfile, "tb");
        sim::DiffResult r = sim::diffBackends(sfile, "tb", sprobe);
        if (!r.match) {
            ++sample_mismatches;
            std::cerr << "compiled_bench: MISMATCH stress: "
                      << r.mismatch << "\n";
        }
    }
    double stress_ev = 0, stress_cp = 0;
    throughput(stress.str(), stress_tb, "tb", 3, &stress_ev,
               &stress_cp);

    auto ratio = [](double cp, double ev) {
        return ev > 0.0 ? cp / ev : 0.0;
    };

    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": 1,\n"
       << "  \"designs\": " << designs << ",\n"
       << "  \"counters\": {\n"
       << "    \"sample_mismatches\": " << sample_mismatches << ",\n"
       << "    \"designs_compiled\": " << designs_compiled << ",\n"
       << "    \"fallback_count\": " << fallback_count << ",\n"
       << "    \"four_state_fallbacks\": " << four_state_fallbacks
       << ",\n"
       << "    \"repair_identical\": " << repair_identical << ",\n"
       << "    \"repair_generations\": " << repair_generations << ",\n"
       << "    \"repair_evals\": " << repair_evals << "\n"
       << "  },\n"
       << "  \"timing\": {\n"
       << "    \"counter_event_evals_per_sec\": " << counter_ev
       << ",\n"
       << "    \"counter_compiled_evals_per_sec\": " << counter_cp
       << ",\n"
       << "    \"counter_speedup_x\": " << ratio(counter_cp, counter_ev)
       << ",\n"
       << "    \"sha3_event_evals_per_sec\": " << sha3_ev << ",\n"
       << "    \"sha3_compiled_evals_per_sec\": " << sha3_cp << ",\n"
       << "    \"sha3_speedup_x\": " << ratio(sha3_cp, sha3_ev)
       << ",\n"
       << "    \"stress_event_evals_per_sec\": " << stress_ev << ",\n"
       << "    \"stress_compiled_evals_per_sec\": " << stress_cp
       << ",\n"
       << "    \"stress_speedup_x\": " << ratio(stress_cp, stress_ev)
       << "\n"
       << "  }\n"
       << "}\n";

    std::ofstream out(out_path);
    out << js.str();
    out.close();
    std::cout << js.str();
    std::cerr << "compiled_bench: wrote " << out_path << " ("
              << designs << " designs)\n";
    // Equivalence and repair identity are correctness properties, not
    // performance numbers: fail the build on the spot.
    return (sample_mismatches == 0 && repair_identical == 1) ? 0 : 1;
}
