/**
 * @file
 * Regenerates Figure 3: a representative multi-edit repair for the
 * sdram_controller category-2 defect (a missing and an incorrect
 * assignment in the synchronous-reset block). The defect requires an
 * insert plus a value change, mirroring the paper's insert+replace.
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    const core::DefectSpec &defect = getDefect("sdram_sync_reset");
    const core::ProjectSpec &project = getProject(defect.project);
    core::Scenario sc = core::buildScenario(project, defect);

    std::printf("Figure 3: multi-edit repair of the sdram_controller "
                "synchronous-reset defect\n");
    printRule('=');

    std::printf("Transplanted defect (vs golden):\n");
    for (auto &rw : defect.rewrites) {
        std::printf("  - %s\n", rw.from.c_str());
        std::printf("  + %s\n", rw.to.c_str());
    }

    core::EngineConfig cfg = defaultConfig();
    cfg.maxSeconds = std::max(cfg.maxSeconds, 20.0);
    std::printf("\nbaseline fitness of the defect: %.4f\n",
                sc.baselineFitness(cfg).fitness);

    ScenarioOutcome out = runScenario(defect, cfg, defaultTrials());
    if (!out.plausible) {
        std::printf("no repair found in %d trials -- rerun with a "
                    "larger CIRFIX_BUDGET\n",
                    out.trialsRun);
        return 1;
    }

    std::printf("\nrepair found in %.2fs (%ld fitness evaluations), "
                "minimized to %d edit(s):\n  %s\n",
                out.repairSeconds, out.fitnessEvals, out.editCount,
                out.patch.describe().c_str());
    std::printf("held-out verification: %s\n",
                out.correct ? "correct" : "plausible-only");
    std::printf("multi-edit repair: %s (paper: 7 of 21 minimized "
                "repairs were multi-edit)\n",
                out.editCount >= 2 ? "yes" : "no");

    // Show the repaired reset block.
    std::printf("\n---- repaired HOST_IF reset block ----\n");
    std::string src = out.repairedSource;
    size_t start = src.find("HOST_IF");
    size_t stop = src.find("case", start);
    if (start != std::string::npos && stop != std::string::npos)
        std::printf("%s...\n", src.substr(start, stop - start).c_str());
    return 0;
}
