/**
 * @file
 * Extended-template experiment (paper Section 5.2, future work):
 * "while adding more repair templates can help in such cases..." —
 * we add three templates beyond the paper's nine (force a conditional
 * true/false, swap if-branches) and measure their effect on repair
 * effort for conditional-flavored defects, plus whether they unlock
 * any of the no-repair rows (they should not: those need
 * declaration/expression edits no statement template reaches).
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    const char *conditional_ids[] = {
        "flipflop_conditional",
        "flipflop_branches_swapped",
        "lshift_conditional",
        "sha3_overflow_check",
    };
    const char *unreachable_ids[] = {
        "rs_register_size",
        "tate_shift_operator",
        "sdram_numeric_definitions",
    };

    core::EngineConfig base = defaultConfig();
    int trials = defaultTrials();

    std::printf("Extended templates: the paper's 9 vs 9+3 "
                "(force-cond-true/false, swap-if-branches)\n");
    printRule('=');
    std::printf("%-30s | %-20s | %-20s\n", "Defect", "9 templates",
                "12 templates");
    printRule();

    auto run_both = [&](const char *id) {
        const core::DefectSpec &d = getDefect(id);
        std::printf("%-30s", id);
        for (bool extended : {false, true}) {
            core::EngineConfig cfg = base;
            cfg.mutation.extendedTemplates = extended;
            ScenarioOutcome out = runScenario(d, cfg, trials);
            char cell[40];
            if (out.plausible)
                std::snprintf(cell, sizeof(cell), "%s (%ld ev)",
                              out.correct ? "correct" : "plausible",
                              out.fitnessEvals);
            else
                std::snprintf(cell, sizeof(cell), "no (%ld ev)",
                              out.totalEvals);
            std::printf(" | %-20s", cell);
            std::fflush(stdout);
        }
        std::printf("\n");
    };

    std::printf("-- conditional-flavored defects --\n");
    for (const char *id : conditional_ids)
        run_both(id);
    std::printf("-- structurally unreachable defects --\n");
    for (const char *id : unreachable_ids)
        run_both(id);

    printRule();
    std::printf("\nExpected shape: conditional defects repair with "
                "comparable or less effort given the\nricher template "
                "set; the unreachable rows stay unreachable — extra "
                "templates only help\nwhen the defect class is one "
                "they express (the paper's register-size example "
                "would\nneed a declaration-editing operator, not more "
                "statement templates).\n");
    return 0;
}
