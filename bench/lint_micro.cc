/**
 * @file
 * Lint microbenchmark for the CI regression gate.
 *
 * Sweeps the whole benchmark registry through the lint subsystem —
 * every golden project and every seeded defect, each with its repair
 * testbench — and emits BENCH_lint.json with two metric groups:
 *
 *  - counters: deterministic golden-lint quantities. The total
 *    diagnostic counts over the suite pin the analyzers' behavior:
 *    a check that suddenly fires more (new false positives) or less
 *    (lost coverage) moves these. golden_errors_total must stay 0 —
 *    the golden designs lint clean by construction.
 *  - timing: lint throughput (designs/sec over repeated sweeps). The
 *    pre-screen runs this pass once per mutant, so a slowdown here
 *    multiplies across the whole repair search. Machine-dependent;
 *    the gate only warns.
 *
 * Usage: lint_micro [output.json]   (default: BENCH_lint.json)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "core/scenario.h"
#include "lint/lint.h"
#include "verilog/parser.h"

using namespace cirfix;
using Clock = std::chrono::steady_clock;

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_lint.json";

    // Parse every suite design once up front so the timing loop
    // measures lint alone, not the parser.
    std::vector<std::shared_ptr<const verilog::SourceFile>> designs;
    long golden_errors = 0, golden_warnings = 0;
    long defect_errors = 0, defect_warnings = 0;
    std::map<std::string, long> by_check;

    for (const core::ProjectSpec &p : bench::allProjects()) {
        auto file =
            verilog::parse(p.goldenSource + "\n" + p.testbenchSource);
        lint::Result r = lint::run(*file);
        golden_errors += r.errors;
        golden_warnings += r.warnings;
        for (const lint::Diagnostic &d : r.diags)
            if (!d.waived)
                ++by_check[d.check];
        designs.push_back(std::move(file));
    }
    for (const core::DefectSpec &d : bench::allDefects()) {
        const core::ProjectSpec &p = bench::getProject(d.project);
        auto file = verilog::parse(
            core::applyRewrites(p.goldenSource, d.rewrites) + "\n" +
            p.testbenchSource);
        lint::Result r = lint::run(*file);
        defect_errors += r.errors;
        defect_warnings += r.warnings;
        for (const lint::Diagnostic &dg : r.diags)
            if (!dg.waived)
                ++by_check[dg.check];
        designs.push_back(std::move(file));
    }

    // Throughput: repeated full-suite sweeps (the pre-screen's unit of
    // work is one lint::run per mutant).
    const int kSweeps = 10;
    Clock::time_point t0 = Clock::now();
    long sink = 0;
    for (int i = 0; i < kSweeps; ++i)
        for (const auto &file : designs)
            sink += static_cast<long>(lint::run(*file).diags.size());
    double sweep_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    double lints = static_cast<double>(kSweeps) *
                   static_cast<double>(designs.size());
    double lints_per_sec =
        sweep_seconds > 0 ? lints / sweep_seconds : 0.0;

    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": 1,\n"
       << "  \"designs\": " << designs.size() << ",\n"
       << "  \"counters\": {\n"
       << "    \"golden_errors_total\": " << golden_errors << ",\n"
       << "    \"golden_warnings_total\": " << golden_warnings << ",\n"
       << "    \"defect_errors_total\": " << defect_errors << ",\n"
       << "    \"defect_warnings_total\": " << defect_warnings;
    for (const auto &[check, count] : by_check)
        js << ",\n    \"diags_" << check << "\": " << count;
    js << "\n  },\n"
       << "  \"timing\": {\n"
       << "    \"sweep_seconds\": " << sweep_seconds << ",\n"
       << "    \"lints_per_sec\": " << lints_per_sec << "\n"
       << "  }\n"
       << "}\n";

    std::ofstream out(out_path);
    out << js.str();
    out.close();
    std::cout << js.str();
    std::cerr << "lint_micro: wrote " << out_path << " ("
              << static_cast<long>(lints) << " lints, sink " << sink
              << ")\n";
    // The golden designs must lint clean: an error here means an
    // analyzer regression (or a broken golden design), not noise.
    return golden_errors == 0 ? 0 : 1;
}
