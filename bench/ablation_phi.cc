/**
 * @file
 * phi sensitivity (Section 4.2): the paper chose phi = 2 after
 * observing that phi = 1 under-penalizes x/z comparisons (longer
 * repair times) and phi = 3 depresses fitness too much (worse search
 * space exploration). We re-run a set of repairable scenarios whose
 * defects produce x values at each phi and compare repair effort.
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    // Scenarios whose defects leave wires uninitialized (x) so that
    // phi actually matters.
    const char *ids[] = {
        "counter_incorrect_reset",
        "rs_out_stage_sensitivity",
        "sdram_sync_reset",
        "counter_sensitivity",
        "lshift_sensitivity",
        "i2c_no_ack",
    };
    const double phis[] = {1.0, 2.0, 3.0};

    core::EngineConfig base = defaultConfig();
    int trials = defaultTrials();

    std::printf("phi ablation: repair effort vs the x/z penalty "
                "weight (trials=%d)\n",
                trials);
    printRule('=');
    std::printf("%-28s | %-16s | %-16s | %-16s\n", "Defect",
                "phi=1", "phi=2", "phi=3");
    printRule();

    int found[3] = {0, 0, 0};
    long evals[3] = {0, 0, 0};
    for (const char *id : ids) {
        const core::DefectSpec &d = getDefect(id);
        std::printf("%-28s", id);
        for (int pi = 0; pi < 3; ++pi) {
            core::EngineConfig cfg = base;
            cfg.fitness.phi = phis[pi];
            ScenarioOutcome out = runScenario(d, cfg, trials);
            found[pi] += out.plausible;
            evals[pi] += out.plausible ? out.fitnessEvals
                                       : out.totalEvals;
            char cell[32];
            if (out.plausible)
                std::snprintf(cell, sizeof(cell), "%ld ev/%.1fs",
                              out.fitnessEvals, out.repairSeconds);
            else
                std::snprintf(cell, sizeof(cell), "no (%ld ev)",
                              out.totalEvals);
            std::printf(" | %-16s", cell);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    printRule();
    std::printf("%-28s | %d found, %ld ev | %d found, %ld ev | "
                "%d found, %ld ev\n",
                "total", found[0], evals[0], found[1], evals[1],
                found[2], evals[2]);
    std::printf("\nPaper's finding: phi = 2 balances the penalty; "
                "phi = 1 converges more slowly on\nx-heavy defects "
                "and phi = 3 over-penalizes exploration.\n");
    return 0;
}
