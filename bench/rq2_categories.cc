/**
 * @file
 * RQ2 (Section 5.2): does CirFix perform differently on category-1
 * ("easy") vs category-2 ("hard") defects? The paper reports 12/19 vs
 * 9/13 plausible repairs, with comparable average repair times and
 * fitness-probe counts per successful trial.
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    core::EngineConfig cfg = defaultConfig();
    int trials = defaultTrials();

    struct CatStats
    {
        int total = 0;
        int plausible = 0;
        int correct = 0;
        double time_sum = 0;
        long probe_sum = 0;
    };
    CatStats cats[3];

    std::printf("RQ2: repair performance by defect category "
                "(pop=%d, gens<=%d, budget=%.0fs, trials=%d)\n",
                cfg.popSize, cfg.maxGenerations, cfg.maxSeconds,
                trials);
    printRule('=');

    for (const core::DefectSpec &d : allDefects()) {
        ScenarioOutcome out = runScenario(d, cfg, trials);
        CatStats &c = cats[d.category];
        ++c.total;
        if (out.plausible) {
            ++c.plausible;
            c.correct += out.correct;
            c.time_sum += out.repairSeconds;
            c.probe_sum += out.fitnessEvals;
        }
        std::printf("  cat%d %-32s %s\n", d.category, d.id.c_str(),
                    outcomeName(out));
        std::fflush(stdout);
    }

    printRule();
    std::printf("\n%-28s %12s %12s\n", "", "Category 1", "Category 2");
    std::printf("%-28s %8d/%-3d %8d/%-3d   (paper: 12/19 vs 9/13)\n",
                "plausible repairs", cats[1].plausible, cats[1].total,
                cats[2].plausible, cats[2].total);
    std::printf("%-28s %12d %12d\n", "correct repairs",
                cats[1].correct, cats[2].correct);
    auto avg = [](double sum, int n) { return n ? sum / n : 0.0; };
    std::printf("%-28s %12.2f %12.2f   (paper: 2.07h vs 1.97h)\n",
                "avg repair time (s)",
                avg(cats[1].time_sum, cats[1].plausible),
                avg(cats[2].time_sum, cats[2].plausible));
    std::printf("%-28s %12.0f %12.0f   (paper: ~9500 vs ~5000)\n",
                "avg fitness probes",
                avg(static_cast<double>(cats[1].probe_sum),
                    cats[1].plausible),
                avg(static_cast<double>(cats[2].probe_sum),
                    cats[2].plausible));
    std::printf("\nShape check: both categories repair at comparable "
                "rates and costs, matching the\npaper's finding that "
                "CirFix scales across defect difficulty.\n");
    return 0;
}
