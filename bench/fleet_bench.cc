/**
 * @file
 * Fleet chaos benchmark for the CI regression gate.
 *
 * Spins up an in-process coordinator plus a three-worker fleet over a
 * real listener, then measures the two properties the distributed
 * layer promises:
 *
 *  1. Failover recovery: a long deterministic job is interrupted by
 *     killing its worker mid-run; the harness times how long the
 *     coordinator takes to re-lease the job to a surviving worker
 *     (failover_recovery_seconds) and verifies the resumed run still
 *     finishes.
 *
 *  2. Sustained chaos: with the NetFaultInjector dropping, stalling
 *     and truncating frames for the whole phase, a batch of jobs is
 *     submitted with idempotent request ids and driven to completion.
 *
 * The emitted BENCH_fleet.json has two hard invariants that fail the
 * build outright (and this binary's exit code) regardless of what the
 * baseline says:
 *
 *   jobs_lost_total == 0        every submitted job reached a
 *                               terminal "done" state
 *   jobs_duplicated_total == 0  no retried submit enqueued a second
 *                               job, and no job committed twice
 *
 * Everything else — lease expirations, requeues, stale rejections,
 * reconnects, chaos-event counts, recovery latency — depends on
 * scheduling and machine speed, so the gate only warns on drift.
 *
 * Usage: fleet_bench [output.json]   (default: BENCH_fleet.json)
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/client.h"
#include "service/fleet.h"
#include "service/netfault.h"
#include "service/server.h"
#include "service/transport.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::service;
using Clock = std::chrono::steady_clock;

namespace {

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

std::string
goldenTraceCsv(int finish_at)
{
    std::string src = kGoldenToggle;
    src.replace(src.find("#100 $finish"), 12,
                "#" + std::to_string(finish_at) + " $finish");
    std::shared_ptr<const verilog::SourceFile> golden =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*golden, "tb");
    auto design = sim::elaborate(golden, "tb");
    sim::TraceRecorder rec(*design, probe);
    design->run();
    return rec.takeTrace().toCsv();
}

/** A job that always runs its full generation budget (golden design
 *  vs a longer oracle: never plausible, never early-out), so the
 *  interruption point is deterministic and machine-independent. */
JobSpec
fullBudgetSpec(int gens, uint64_t seed)
{
    JobSpec spec;
    spec.designSource = kGoldenToggle;
    spec.tbModule = "tb";
    spec.dutModule = "dut";
    spec.oracleCsv = goldenTraceCsv(200);
    spec.params.popSize = 8;
    spec.params.maxGenerations = gens;
    spec.params.maxSeconds = 300.0;
    spec.params.seed = seed;
    return spec;
}

std::string
scratchDir(const std::string &name)
{
    std::string d = std::filesystem::temp_directory_path().string() +
                    "/fleet-bench-" + name + "." +
                    std::to_string(::getpid());
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

struct WorkerThread
{
    Worker worker;
    std::thread thread;

    explicit WorkerThread(WorkerConfig cfg) : worker(std::move(cfg))
    {
        thread = std::thread([this] {
            try {
                worker.run({});
            } catch (...) {
            }
        });
    }
    ~WorkerThread() { stop(); }
    void
    stop()
    {
        worker.requestStop();
        if (thread.joinable())
            thread.join();
    }
};

WorkerConfig
workerConfig(const std::string &coordinator, const std::string &name)
{
    WorkerConfig cfg;
    cfg.coordinator = coordinator;
    cfg.name = name;
    cfg.workDir = scratchDir("wd-" + name);
    cfg.claimWaitSeconds = 0.05;
    return cfg;
}

bool
eventually(const std::function<bool()> &pred, double seconds)
{
    auto deadline =
        Clock::now() + std::chrono::duration<double>(seconds);
    while (Clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

Json
statusWithRetry(const std::string &address, long id)
{
    for (int attempt = 0;; ++attempt) {
        try {
            Client c(address);
            return c.status(id);
        } catch (const std::exception &) {
            if (attempt > 100)
                throw;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }
}

long
submitWithRetry(const std::string &address, const JobSpec &spec)
{
    std::string requestId = Client::newRequestId();
    for (int attempt = 0;; ++attempt) {
        try {
            Client c(address);
            return c.submit(spec, requestId);
        } catch (const ServiceError &) {
            throw;  // structured rejection, not a transport fault
        } catch (const std::exception &) {
            if (attempt > 100)
                throw;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";

    ServerConfig cfg;
    // TCP on an ephemeral port: the bench exercises the same transport
    // a cross-host fleet uses, not the Unix-socket fast path.
    cfg.listenAddress = "tcp:127.0.0.1:0";
    cfg.stateDir = scratchDir("state");
    cfg.workers = 0;  // coordinator: remote execution only
    cfg.fleet.requireWorkers = true;
    cfg.fleet.leaseSeconds = 0.5;
    Server server(cfg);
    server.start();
    const std::string address = server.boundAddress();

    std::vector<std::unique_ptr<WorkerThread>> workers;
    for (int i = 0; i < 3; ++i)
        workers.push_back(std::make_unique<WorkerThread>(
            workerConfig(address, "bw" + std::to_string(i))));
    if (!eventually([&] { return server.workerCount() == 3; }, 30.0)) {
        std::cerr << "fleet_bench: workers never connected\n";
        return 1;
    }

    long submitted = 0;
    long completed = 0;
    long failovers = 0;

    // ---- phase 1: failover recovery latency --------------------------
    double recovery_seconds = 0.0;
    {
        long id = submitWithRetry(address, fullBudgetSpec(40, 11));
        ++submitted;
        if (!eventually(
                [&] {
                    return statusWithRetry(address, id)
                               .num("generation", 0) >= 2;
                },
                60.0)) {
            std::cerr << "fleet_bench: job never progressed\n";
            return 1;
        }
        // Kill whichever worker holds the lease; time until a second
        // assignment lands (attempts flips to 2 when another worker
        // claims the re-queued job and resumes from the snapshot).
        std::string holder = statusWithRetry(address, id).str("worker");
        Clock::time_point t0 = Clock::now();
        bool killed = false;
        for (auto &w : workers) {
            std::string prefix = w->worker.config().name + "/";
            if (holder.rfind(prefix, 0) == 0) {
                w->stop();
                killed = true;
                break;
            }
        }
        if (!killed) {
            std::cerr << "fleet_bench: lease holder '" << holder
                      << "' not found\n";
            return 1;
        }
        if (!eventually(
                [&] {
                    return statusWithRetry(address, id)
                               .num("attempts", 0) >= 2;
                },
                60.0)) {
            std::cerr << "fleet_bench: failover never happened\n";
            return 1;
        }
        recovery_seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        ++failovers;
        if (!eventually(
                [&] {
                    return statusWithRetry(address, id).str("state") ==
                           "done";
                },
                120.0)) {
            std::cerr << "fleet_bench: failed-over job never "
                         "finished\n";
            return 1;
        }
        ++completed;
    }

    // ---- phase 2: sustained frame-level chaos ------------------------
    double chaos_seconds = 0.0;
    uint64_t chaos_events = 0;
    {
        NetFaultPlan plan;
        plan.dropWriteAt = 13;
        plan.dropReadAt = 23;
        plan.stallWriteAt = 7;
        plan.stallSeconds = 0.005;
        plan.every = true;
        NetFaultInjector::instance().arm(plan);

        std::vector<long> ids;
        Clock::time_point t0 = Clock::now();
        for (int i = 0; i < 4; ++i) {
            ids.push_back(submitWithRetry(
                address, fullBudgetSpec(3 + i, 17 + 2 * i)));
            ++submitted;
        }
        bool all_done = true;
        for (long id : ids)
            all_done = eventually(
                           [&] {
                               return statusWithRetry(address, id)
                                          .str("state") == "done";
                           },
                           180.0) &&
                       all_done;
        chaos_seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        chaos_events = NetFaultInjector::instance().counters().total();
        NetFaultInjector::instance().disarm();
        if (!all_done) {
            std::cerr << "fleet_bench: a job was lost under chaos\n";
            // fall through: the json still records the loss
        }
        for (long id : ids)
            if (statusWithRetry(address, id).str("state") == "done")
                ++completed;
    }

    // ---- settle + measure --------------------------------------------
    long listed = 0;
    {
        Client calm(address);
        listed = static_cast<long>(calm.list().size());
    }
    LeaseStats leases = server.queue().leaseStats();
    uint64_t reconnects = 0;
    uint64_t worker_abandoned = 0;
    for (auto &w : workers) {
        WorkerStats ws = w->worker.stats();
        reconnects += ws.reconnects;
        worker_abandoned += ws.jobsAbandoned;
    }
    for (auto &w : workers)
        w->stop();
    server.stop();

    const long lost = submitted - completed;
    // Duplicates would show up as extra jobs in the table (an
    // idempotent retry that enqueued twice); a double *commit* is
    // structurally blocked by completeLeased() and surfaces here as a
    // stale rejection instead.
    const long duplicated = listed - submitted;

    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": 1,\n"
       << "  \"workers\": 3,\n"
       << "  \"counters\": {\n"
       << "    \"jobs_submitted_total\": " << submitted << ",\n"
       << "    \"jobs_completed_total\": " << completed << ",\n"
       << "    \"jobs_lost_total\": " << lost << ",\n"
       << "    \"jobs_duplicated_total\": " << duplicated << ",\n"
       << "    \"failovers_total\": " << failovers << ",\n"
       << "    \"lease_assignments_total\": " << leases.assignments
       << ",\n"
       << "    \"lease_expirations_total\": " << leases.expirations
       << ",\n"
       << "    \"lease_requeues_total\": " << leases.requeues << ",\n"
       << "    \"stale_rejections_total\": " << leases.staleRejections
       << ",\n"
       << "    \"worker_reconnects_total\": " << reconnects << ",\n"
       << "    \"worker_abandons_total\": " << worker_abandoned << ",\n"
       << "    \"chaos_events_total\": " << chaos_events << "\n"
       << "  },\n"
       << "  \"timing\": {\n"
       << "    \"failover_recovery_seconds\": " << recovery_seconds
       << ",\n"
       << "    \"chaos_wall_seconds\": " << chaos_seconds << "\n"
       << "  }\n"
       << "}\n";

    std::ofstream out(out_path);
    out << js.str();
    out.close();
    std::cout << js.str();
    std::cerr << "fleet_bench: wrote " << out_path << "\n";
    // The hard invariants also bind this binary's exit code.
    return (lost == 0 && duplicated == 0) ? 0 : 1;
}
