/**
 * @file
 * RQ3 (Section 5.3): quality of the fitness function. The paper's
 * headline evidence is the counter defect that needs three edits,
 * whose best-candidate fitness climbed 0 -> 0.58 -> 0.77 -> 1.0 as
 * the repair assembled — each productive edit raises fitness, i.e.,
 * strong fitness-distance correlation. This bench reproduces the
 * trajectory on our triple-edit counter reset defect.
 */

#include "common.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::bench;

    const core::DefectSpec &defect =
        getDefect("counter_incorrect_reset");
    const core::ProjectSpec &project = getProject(defect.project);
    core::Scenario sc = core::buildScenario(project, defect);

    std::printf("RQ3: best-fitness trajectory for the multi-edit "
                "counter reset defect\n");
    printRule('=');

    core::EngineConfig cfg = defaultConfig();
    cfg.maxSeconds = std::max(cfg.maxSeconds, 20.0);

    bool shown = false;
    for (int trial = 0; trial < defaultTrials() && !shown; ++trial) {
        cfg.seed = 1000 + static_cast<uint64_t>(trial) * 7919;
        core::RepairEngine engine = sc.makeEngine(cfg);
        core::RepairResult res = engine.run();
        if (!res.found)
            continue;
        shown = true;
        std::printf("trial seed %llu repaired in %.2fs with %zu "
                    "edits: %s\n\n",
                    static_cast<unsigned long long>(cfg.seed),
                    res.seconds, res.patch.size(),
                    res.patch.describe().c_str());
        std::printf("%12s %12s     (paper: 0 -> 0.58 -> 0.77 -> 1.0)\n",
                    "probe #", "best fitness");
        for (auto &[probe, fit] : res.fitnessTrajectory)
            std::printf("%12ld %12.4f\n", probe, fit);
        // Monotonicity check (the trajectory only records
        // improvements, so it is strictly increasing by design; the
        // interesting part is that multiple intermediate levels
        // exist, i.e., partial repairs scored partially).
        std::printf("\nimprovement levels observed: %zu ",
                    res.fitnessTrajectory.size());
        std::printf("(>= 3 demonstrates incremental credit for "
                    "partial repairs)\n");
    }
    if (!shown) {
        std::printf("no successful trial; rerun with larger "
                    "CIRFIX_BUDGET/CIRFIX_GENS\n");
        return 1;
    }

    std::printf("\nSecond observation of Section 5.3: the "
                "instrumented probe can catch errors the\noriginal "
                "testbench misses -- see the rs_out_stage scenario, "
                "where pre-reset x values\nare visible only in the "
                "sampled trace.\n");
    return 0;
}
