// A small, lint-clean design: CI runs `cirfix lint --Werror` over it
// and expects a zero exit status with no findings.
module clean_counter(input clk, input rst, output reg [3:0] count);
    always @(posedge clk) begin
        if (rst)
            count <= 4'd0;
        else
            count <= count + 4'd1;
    end
endmodule
