// Deliberately broken: `y` has two continuous drivers, so real
// hardware would resolve it to X whenever a != b. `cirfix lint` flags
// this as the error-severity check "multi-driven-net"; CI asserts the
// nonzero exit status on this file.
module mult_driven(input a, input b, output y);
    assign y = a;
    assign y = b;
endmodule
