/**
 * @file
 * Using the simulator substrate directly: parse a Verilog design,
 * elaborate it, attach the instrumented-testbench probe, run, and
 * dump both the $display output and the sampled trace (the Figure 2
 * CSV format).
 *
 *   $ ./simulate_design [path/to/design.v [testbench_module]]
 *
 * Without arguments, a built-in traffic-light controller is used.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

static const char *kTrafficLight = R"(
// A three-state traffic light with a yellow-phase timer.
module traffic_light (clk, rst, car_waiting, lights);
    input clk, rst, car_waiting;
    output [2:0] lights;          // {red, yellow, green}
    reg [2:0] lights;

    parameter GREEN  = 2'd0;
    parameter YELLOW = 2'd1;
    parameter RED    = 2'd2;

    reg [1:0] state;
    reg [1:0] timer;

    always @(posedge clk) begin
        if (rst == 1'b1) begin
            state <= GREEN;
            timer <= 2'd0;
            lights <= 3'b001;
        end
        else begin
            case (state)
                GREEN : begin
                    lights <= 3'b001;
                    if (car_waiting == 1'b1) begin
                        state <= YELLOW;
                        timer <= 2'd2;
                    end
                end
                YELLOW : begin
                    lights <= 3'b010;
                    if (timer == 2'd0) begin
                        state <= RED;
                        timer <= 2'd3;
                    end
                    else begin
                        timer <= timer - 2'd1;
                    end
                end
                RED : begin
                    lights <= 3'b100;
                    if (timer == 2'd0) begin
                        state <= GREEN;
                    end
                    else begin
                        timer <= timer - 2'd1;
                    end
                end
                default : state <= GREEN;
            endcase
        end
    end
endmodule

module traffic_light_tb;
    reg clk, rst, car_waiting;
    wire [2:0] lights;

    traffic_light dut (.clk(clk), .rst(rst),
                       .car_waiting(car_waiting), .lights(lights));

    initial begin
        clk = 0;
        rst = 0;
        car_waiting = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst = 1;
        @(negedge clk);
        rst = 0;
        repeat (2) @(negedge clk);
        car_waiting = 1;
        repeat (3) @(negedge clk);
        car_waiting = 0;
        repeat (8) @(negedge clk);
        $display("final lights=%b at time %t", lights, $time);
        $finish;
    end
endmodule
)";

int
main(int argc, char **argv)
{
    using namespace cirfix;

    std::string source = kTrafficLight;
    std::string tb_name = "traffic_light_tb";
    if (argc >= 2) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        source = ss.str();
        tb_name = argc >= 3 ? argv[2] : "tb";
    }

    // Parse and derive the probe automatically (DUT outputs + clock).
    std::shared_ptr<const verilog::SourceFile> file =
        verilog::parse(source);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, tb_name);
    std::cout << "clock: " << probe.clock << "\nprobed signals:";
    for (auto &s : probe.signals)
        std::cout << " " << s;
    std::cout << "\n\n";

    // Elaborate and run.
    auto design = sim::elaborate(file, tb_name);
    sim::TraceRecorder recorder(*design, probe);
    auto result = design->run();

    const char *status =
        result.status == sim::Scheduler::Status::Finished ? "$finish"
        : result.status == sim::Scheduler::Status::Idle   ? "idle"
        : result.status == sim::Scheduler::Status::MaxTime
            ? "max-time"
            : "runaway";
    std::cout << "simulation ended (" << status << ") at t="
              << result.endTime << " after " << result.callbacks
              << " scheduler callbacks\n\n";

    for (auto &line : design->displayLog())
        std::cout << "$display: " << line << "\n";

    std::cout << "\n---- sampled trace (Figure 2 format) ----\n"
              << recorder.trace().toCsv();
    return 0;
}
