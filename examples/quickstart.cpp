/**
 * @file
 * Quickstart: repair a defective 4-bit counter end to end.
 *
 * This walks the full CirFix pipeline on the paper's motivating
 * example (Figure 1): record the expected-behavior oracle from a
 * golden design, transplant a defect, run the genetic-programming
 * repair loop, and print the minimized repair.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "benchmarks/registry.h"
#include "core/scenario.h"

int
main()
{
    using namespace cirfix;

    // 1. Pick a benchmark project and a defect scenario. The counter
    //    is the paper's motivating example; this defect breaks the
    //    sensitivity list of its always block.
    const core::ProjectSpec &project = bench::getProject("counter");
    const core::DefectSpec &defect =
        bench::getDefect("counter_sensitivity");
    std::cout << "project: " << project.name << " ("
              << project.description << ")\n";
    std::cout << "defect:  " << defect.description << " (category "
              << defect.category << ")\n\n";

    // 2. Build the scenario: this simulates the golden design under
    //    the instrumented testbench to record the oracle, then
    //    transplants the defect into the source.
    core::Scenario scenario = core::buildScenario(project, defect);
    std::cout << "oracle rows: " << scenario.oracle.size()
              << " (sampled at each rising clock edge)\n";

    // 3. The defective design scores below 1.0 against the oracle.
    core::EngineConfig config;
    config.popSize = 100;
    config.maxGenerations = 12;
    config.maxSeconds = 30.0;
    config.seed = 42;
    std::cout << "defective fitness: "
              << scenario.baselineFitness(config).fitness << "\n\n";

    // 4. Run the repair loop (Algorithm 1).
    core::RepairEngine engine = scenario.makeEngine(config);
    core::RepairResult result = engine.run();

    if (!result.found) {
        std::cout << "no repair found within resource bounds ("
                  << result.fitnessEvals << " fitness evaluations)\n";
        return 1;
    }

    std::cout << "repair found in " << result.seconds << "s after "
              << result.fitnessEvals << " fitness evaluations\n";
    std::cout << "minimized patch: " << result.patch.describe()
              << "\n\n";

    // 5. Check the repair against the held-out verification testbench
    //    (the mechanized version of the paper's manual inspection).
    bool correct = core::checkCorrectness(scenario, result.patch);
    std::cout << "held-out verification: "
              << (correct ? "correct" : "plausible only (overfits)")
              << "\n\n";

    std::cout << "---- repaired design ----\n"
              << result.repairedSource << "\n";
    return 0;
}
