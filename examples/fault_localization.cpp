/**
 * @file
 * The fault localization walk-through of the paper's Section 2/3.1:
 * simulate the faulty 4-bit counter (missing overflow reset), compare
 * its trace against the expected behavior, and run the fixed-point
 * analysis of Algorithm 2 to see which statements get implicated.
 *
 *   $ ./fault_localization
 */

#include <iostream>

#include "benchmarks/registry.h"
#include "core/faultloc.h"
#include "core/scenario.h"
#include "verilog/printer.h"

int
main()
{
    using namespace cirfix;
    using namespace cirfix::verilog;

    const core::ProjectSpec &project = bench::getProject("counter");
    const core::DefectSpec &defect =
        bench::getDefect("counter_incorrect_reset");
    core::Scenario sc = core::buildScenario(project, defect);

    // Simulate the faulty design once to obtain S (the simulation
    // result the instrumented testbench records).
    core::EngineConfig config;
    core::RepairEngine engine = sc.makeEngine(config);
    core::Variant faulty = engine.evaluate(core::Patch{});

    std::cout << "fitness of the faulty design: "
              << faulty.fit.fitness << "\n\n";

    // get_output_mismatch(O, S): which outputs ever disagree?
    auto mismatch = core::outputMismatch(faulty.trace, sc.oracle);
    std::cout << "initial mismatch set:";
    for (auto &name : mismatch)
        std::cout << " " << name;
    std::cout << "\n";

    // Algorithm 2 fixed point over the DUT's AST.
    const Module *dut = sc.faulty->findModule(project.dutModule);
    core::FaultLocResult fl =
        core::faultLocalize(*dut, faulty.trace, sc.oracle);

    std::cout << "fixed point reached after " << fl.iterations
              << " iterations\n";
    std::cout << "final mismatch set:";
    for (auto &name : fl.mismatchNames)
        std::cout << " " << name;
    std::cout << "\nimplicated AST nodes: " << fl.nodeIds.size()
              << "\n\n";

    // Show the implicated statements as source text.
    std::cout << "---- implicated statements ----\n";
    visitAll(*const_cast<Module *>(dut), [&](Node &n) {
        if (n.kind != NodeKind::Assign || !fl.contains(n.id))
            return;
        std::cout << "node " << n.id << " (line " << n.line
                  << "): " << printStmt(*n.as<Assign>());
    });

    std::cout << "\n(These assignments and everything they "
                 "transitively control are where the repair\n"
                 "search concentrates its mutation operators.)\n";
    return 0;
}
