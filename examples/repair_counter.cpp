/**
 * @file
 * Repairing a user-provided defect: this example builds a repair
 * scenario from scratch — no benchmark registry — to show exactly
 * what a downstream user supplies: a golden design (or manually
 * annotated expected behavior), a testbench, and the faulty design.
 *
 * The DUT is a parity-tracking shift register; the defect resets the
 * parity flag to the wrong value, inverting it for the entire run.
 *
 *   $ ./repair_counter [seed]
 */

#include <cstdlib>
#include <iostream>

#include "core/engine.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

static const char *kTestbench = R"(
module shifter_tb;
    reg clk, rst;
    reg din;
    wire [3:0] window;
    wire parity;

    shifter dut (.clk(clk), .rst(rst), .din(din), .window(window),
                 .parity(parity));

    initial begin
        clk = 0;
        rst = 0;
        din = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst = 1;
        @(negedge clk);
        rst = 0;
        din = 1;
        repeat (2) @(negedge clk);
        din = 0;
        @(negedge clk);
        din = 1;
        repeat (3) @(negedge clk);
        din = 0;
        repeat (4) @(negedge clk);
        $finish;
    end
endmodule
)";

static const char *kGolden = R"(
module shifter (clk, rst, din, window, parity);
    input clk, rst, din;
    output [3:0] window;
    output parity;
    reg [3:0] window;
    reg parity;

    always @(posedge clk) begin
        if (rst == 1'b1) begin
            window <= 4'b0000;
            parity <= 1'b0;
        end
        else begin
            window <= {window[2:0], din};
            parity <= parity ^ din;
        end
    end
endmodule
)";

static const char *kFaulty = R"(
module shifter (clk, rst, din, window, parity);
    input clk, rst, din;
    output [3:0] window;
    output parity;
    reg [3:0] window;
    reg parity;

    always @(posedge clk) begin
        if (rst == 1'b1) begin
            window <= 4'b0000;
            parity <= 1'b1;
        end
        else begin
            window <= {window[2:0], din};
            parity <= parity ^ din;
        end
    end
endmodule
)";

int
main(int argc, char **argv)
{
    using namespace cirfix;

    uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

    // Step 1: record expected behavior from the previously-functioning
    // version of the design (paper Section 4.1.2). A user without a
    // golden version would load a hand-annotated Trace::fromCsv here.
    std::shared_ptr<const verilog::SourceFile> golden =
        verilog::parse(std::string(kGolden) + kTestbench);
    sim::ProbeConfig probe =
        sim::deriveProbeConfig(*golden, "shifter_tb");
    sim::Trace oracle;
    {
        auto design = sim::elaborate(golden, "shifter_tb");
        sim::TraceRecorder rec(*design, probe);
        design->run();
        oracle = rec.takeTrace();
    }
    std::cout << "expected behavior (" << oracle.size()
              << " sampled cycles):\n"
              << oracle.toCsv() << "\n";

    // Step 2: point the engine at the faulty design + testbench.
    std::shared_ptr<const verilog::SourceFile> faulty =
        verilog::parse(std::string(kFaulty) + kTestbench);

    core::EngineConfig config;
    config.popSize = 100;
    config.maxGenerations = 15;
    config.maxSeconds = 30.0;
    config.seed = seed;

    core::RepairEngine engine(faulty, "shifter_tb", "shifter", probe,
                              oracle, config);

    std::cout << "faulty fitness: "
              << engine.evaluate(core::Patch{}).fit.fitness << "\n";

    // Step 3: search.
    core::RepairResult result = engine.run();
    if (!result.found) {
        std::cout << "no repair found (" << result.fitnessEvals
                  << " evaluations, " << result.generations
                  << " generations)\n";
        return 1;
    }

    std::cout << "repaired with " << result.patch.size()
              << " edit(s): " << result.patch.describe() << "\n";
    std::cout << "fitness evaluations: " << result.fitnessEvals
              << ", invalid mutants: " << result.invalidMutants
              << "\n\n";
    std::cout << result.repairedSource;
    return 0;
}
