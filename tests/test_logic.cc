/**
 * @file
 * Unit and property tests for the four-state logic vectors.
 */

#include <gtest/gtest.h>

#include <random>

#include "sim/logic.h"

using namespace cirfix::sim;

namespace {

LogicVec
v(const std::string &bits)
{
    return LogicVec::fromString(bits);
}

TEST(Logic, BitCharRoundTrip)
{
    EXPECT_EQ(bitChar(Bit::Zero), '0');
    EXPECT_EQ(bitChar(Bit::One), '1');
    EXPECT_EQ(bitChar(Bit::X), 'x');
    EXPECT_EQ(bitChar(Bit::Z), 'z');
    EXPECT_EQ(charBit('0'), Bit::Zero);
    EXPECT_EQ(charBit('1'), Bit::One);
    EXPECT_EQ(charBit('X'), Bit::X);
    EXPECT_EQ(charBit('Z'), Bit::Z);
    EXPECT_THROW(charBit('q'), std::invalid_argument);
}

TEST(Logic, ConstructFill)
{
    LogicVec a(4, Bit::X);
    EXPECT_EQ(a.toString(), "xxxx");
    LogicVec b(4, Bit::Zero);
    EXPECT_EQ(b.toString(), "0000");
    LogicVec c(3, Bit::Z);
    EXPECT_EQ(c.toString(), "zzz");
    EXPECT_THROW(LogicVec(0, Bit::X), std::invalid_argument);
}

TEST(Logic, ConstructValue)
{
    LogicVec a(8, uint64_t(0xa5));
    EXPECT_EQ(a.toString(), "10100101");
    EXPECT_EQ(a.toUint64(), 0xa5u);
    LogicVec b(4, uint64_t(0xff));  // masked to width
    EXPECT_EQ(b.toUint64(), 0xfu);
}

TEST(Logic, FromStringMsbFirst)
{
    LogicVec a = v("10x1z");
    EXPECT_EQ(a.width(), 5);
    EXPECT_EQ(a.bit(0), Bit::Z);
    EXPECT_EQ(a.bit(1), Bit::One);
    EXPECT_EQ(a.bit(2), Bit::X);
    EXPECT_EQ(a.bit(3), Bit::Zero);
    EXPECT_EQ(a.bit(4), Bit::One);
    EXPECT_EQ(a.toString(), "10x1z");
}

TEST(Logic, OutOfRangeBitReadsX)
{
    LogicVec a(4, uint64_t(0));
    EXPECT_EQ(a.bit(7), Bit::X);
    EXPECT_EQ(a.bit(-1), Bit::X);
}

TEST(Logic, WideVectors)
{
    LogicVec a(130, Bit::Zero);
    a.setBit(129, Bit::One);
    a.setBit(0, Bit::One);
    EXPECT_EQ(a.bit(129), Bit::One);
    EXPECT_EQ(a.bit(128), Bit::Zero);
    EXPECT_TRUE(a.hasOne());
    EXPECT_FALSE(a.hasUnknown());
    LogicVec b = a.shr(LogicVec(32, uint64_t(129)));
    EXPECT_EQ(b.bit(0), Bit::One);
    EXPECT_EQ(b.bit(1), Bit::Zero);
}

TEST(Logic, Predicates)
{
    EXPECT_TRUE(v("0000").isAllZero());
    EXPECT_FALSE(v("00x0").isAllZero());
    EXPECT_TRUE(v("00x0").hasUnknown());
    EXPECT_FALSE(v("0010").hasUnknown());
    EXPECT_TRUE(v("0010").hasOne());
    EXPECT_TRUE(v("x1x").isTrue());   // a definite 1 dominates
    EXPECT_FALSE(v("x0x").isTrue());  // ambiguous counts as false
}

TEST(Logic, ResizeTruncatesAndZeroExtends)
{
    EXPECT_EQ(v("1011").resized(2).toString(), "11");
    EXPECT_EQ(v("11").resized(4).toString(), "0011");
    EXPECT_EQ(v("x1").resized(4).toString(), "00x1");
}

TEST(Logic, SliceAndWriteSlice)
{
    LogicVec a = v("11010010");
    EXPECT_EQ(a.slice(7, 4).toString(), "1101");
    EXPECT_EQ(a.slice(3, 0).toString(), "0010");
    EXPECT_EQ(a.slice(4, 1).toString(), "1001");
    // Out-of-range bits read x.
    EXPECT_EQ(a.slice(9, 6).toString(), "xx11");
    a.writeSlice(2, v("111"));
    EXPECT_EQ(a.toString(), "11011110");
}

TEST(Logic, BitwiseAndTable)
{
    LogicVec a = v("0011xxzz01");
    LogicVec b = v("0101xz01xz");
    // Verilog AND: 0 dominates, 1&1=1, rest x.
    EXPECT_EQ(a.bitAnd(b).toString(), "0001xx0x0x");
}

TEST(Logic, BitwiseOrTable)
{
    LogicVec a = v("0011xxzz01");
    LogicVec b = v("0101xz01xz");
    // Verilog OR: 1 dominates, 0|0=0, rest x.
    EXPECT_EQ(a.bitOr(b).toString(), "0111xxx1x1");
}

TEST(Logic, BitwiseXorPropagatesX)
{
    LogicVec a = v("0011x");
    LogicVec b = v("0101z");
    EXPECT_EQ(a.bitXor(b).toString(), "0110x");
    EXPECT_EQ(a.bitXnor(b).toString(), "1001x");
}

TEST(Logic, BitNot)
{
    EXPECT_EQ(v("01xz").bitNot().toString(), "10xx");
}

TEST(Logic, AddBasic)
{
    LogicVec a(8, uint64_t(200)), b(8, uint64_t(100));
    EXPECT_EQ(a.add(b).toUint64(), 44u);  // mod 256
    EXPECT_EQ(LogicVec(8, uint64_t(1))
                  .add(LogicVec(8, uint64_t(2)))
                  .toUint64(),
              3u);
}

TEST(Logic, AddUnknownPropagates)
{
    EXPECT_EQ(v("1x").add(v("01")).toString(), "xx");
    EXPECT_EQ(v("11").add(v("z1")).toString(), "xx");
}

TEST(Logic, SubAndNegate)
{
    LogicVec a(8, uint64_t(5)), b(8, uint64_t(7));
    EXPECT_EQ(a.sub(b).toUint64(), 254u);
    EXPECT_EQ(b.sub(a).toUint64(), 2u);
    EXPECT_EQ(LogicVec(4, uint64_t(1)).negate().toUint64(), 15u);
}

TEST(Logic, MulDivMod)
{
    LogicVec a(16, uint64_t(300)), b(16, uint64_t(7));
    EXPECT_EQ(a.mul(b).toUint64(), 2100u);
    EXPECT_EQ(a.div(b).toUint64(), 42u);
    EXPECT_EQ(a.mod(b).toUint64(), 6u);
    // Division by zero yields x.
    EXPECT_TRUE(a.div(LogicVec(16, uint64_t(0))).hasUnknown());
    EXPECT_TRUE(a.mod(LogicVec(16, uint64_t(0))).hasUnknown());
}

TEST(Logic, Pow)
{
    LogicVec a(16, uint64_t(3)), b(16, uint64_t(5));
    EXPECT_EQ(a.pow(b).toUint64(), 243u);
    EXPECT_EQ(a.pow(LogicVec(16, uint64_t(0))).toUint64(), 1u);
}

TEST(Logic, Shifts)
{
    LogicVec a = v("00010110");
    EXPECT_EQ(a.shl(LogicVec(4, uint64_t(2))).toString(), "01011000");
    EXPECT_EQ(a.shr(LogicVec(4, uint64_t(2))).toString(), "00000101");
    // Shifting by >= width clears.
    EXPECT_TRUE(a.shl(LogicVec(8, uint64_t(8))).isAllZero());
    EXPECT_TRUE(a.shr(LogicVec(8, uint64_t(200))).isAllZero());
    // Unknown shift amount -> all x.
    EXPECT_TRUE(a.shl(v("x")).hasUnknown());
}

TEST(Logic, Relational)
{
    LogicVec a(8, uint64_t(5)), b(8, uint64_t(9));
    EXPECT_TRUE(a.lt(b).isTrue());
    EXPECT_TRUE(a.le(b).isTrue());
    EXPECT_FALSE(a.gt(b).isTrue());
    EXPECT_TRUE(b.ge(a).isTrue());
    EXPECT_TRUE(a.le(a).isTrue());
    EXPECT_TRUE(a.lt(v("x000")).hasUnknown());
}

TEST(Logic, LogicalEquality)
{
    EXPECT_TRUE(v("0101").logicEq(v("0101")).isTrue());
    EXPECT_FALSE(v("0101").logicEq(v("0100")).isTrue());
    // A definite mismatch gives 0 even with x elsewhere.
    EXPECT_FALSE(v("x1").logicEq(v("x0")).hasUnknown());
    EXPECT_FALSE(v("x1").logicEq(v("x0")).isTrue());
    // Fully ambiguous comparison gives x.
    EXPECT_TRUE(v("x1").logicEq(v("01")).hasUnknown());
    EXPECT_TRUE(v("0101").logicNeq(v("0100")).isTrue());
}

TEST(Logic, CaseEquality)
{
    EXPECT_TRUE(v("x1z0").caseEq(v("x1z0")).isTrue());
    EXPECT_FALSE(v("x1z0").caseEq(v("11z0")).isTrue());
    EXPECT_FALSE(v("x1z0").caseEq(v("x1z0")).hasUnknown());
    EXPECT_TRUE(v("x1").caseNeq(v("z1")).isTrue());
}

TEST(Logic, WidthExtensionInComparison)
{
    // 2'b10 compared against 4'b0010 must be equal (zero extension).
    EXPECT_TRUE(v("10").logicEq(v("0010")).isTrue());
    EXPECT_FALSE(v("10").logicEq(v("1010")).isTrue());
}

TEST(Logic, LogicalConnectives)
{
    EXPECT_TRUE(v("01").logicAnd(v("10")).isTrue());
    EXPECT_FALSE(v("00").logicAnd(v("10")).isTrue());
    EXPECT_FALSE(v("00").logicAnd(v("xx")).isTrue());
    EXPECT_FALSE(v("00").logicAnd(v("xx")).hasUnknown());
    EXPECT_TRUE(v("10").logicAnd(v("xx")).hasUnknown());
    EXPECT_TRUE(v("10").logicOr(v("xx")).isTrue());
    EXPECT_TRUE(v("00").logicOr(v("xx")).hasUnknown());
    EXPECT_TRUE(v("00").logicNot().isTrue());
    EXPECT_FALSE(v("01").logicNot().isTrue());
    EXPECT_TRUE(v("0x").logicNot().hasUnknown());
}

TEST(Logic, Reductions)
{
    EXPECT_TRUE(v("1111").reduceAnd().isTrue());
    EXPECT_FALSE(v("1101").reduceAnd().isTrue());
    EXPECT_FALSE(v("1101").reduceAnd().hasUnknown());
    EXPECT_TRUE(v("11x1").reduceAnd().hasUnknown());
    EXPECT_FALSE(v("10x1").reduceAnd().hasUnknown());  // 0 dominates
    EXPECT_TRUE(v("0010").reduceOr().isTrue());
    EXPECT_FALSE(v("0000").reduceOr().isTrue());
    EXPECT_TRUE(v("00x0").reduceOr().hasUnknown());
    EXPECT_TRUE(v("0111").reduceXor().isTrue());
    EXPECT_FALSE(v("0110").reduceXor().isTrue());
    EXPECT_TRUE(v("011x").reduceXor().hasUnknown());
    EXPECT_FALSE(v("1111").reduceNand().isTrue());
    EXPECT_TRUE(v("0000").reduceNor().isTrue());
    EXPECT_TRUE(v("0110").reduceXnor().isTrue());
}

TEST(Logic, ConcatAndReplicate)
{
    LogicVec c = LogicVec::concat(v("10"), v("0x1"));
    EXPECT_EQ(c.toString(), "100x1");
    EXPECT_EQ(v("10").replicate(3).toString(), "101010");
    EXPECT_THROW(v("1").replicate(0), std::invalid_argument);
}

TEST(Logic, DecimalString)
{
    EXPECT_EQ(LogicVec(16, uint64_t(1234)).toDecimalString(), "1234");
    EXPECT_EQ(LogicVec(8, uint64_t(0)).toDecimalString(), "0");
    EXPECT_EQ(v("1x").toDecimalString(), "1x");
    // Multi-word decimal conversion.
    LogicVec big(128, Bit::Zero);
    big.setBit(100, Bit::One);
    EXPECT_EQ(big.toDecimalString(), "1267650600228229401496703205376");
}

TEST(Logic, IdenticalIsExact)
{
    EXPECT_TRUE(v("1x0z").identical(v("1x0z")));
    EXPECT_FALSE(v("1x0z").identical(v("1x00")));
    EXPECT_FALSE(v("10").identical(v("010")));  // width matters
}

// ----- property-style sweeps -----

class LogicArithProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LogicArithProperty, MatchesNativeArithmetic)
{
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        uint64_t x = rng() & 0xffffffffull;
        uint64_t y = rng() & 0xffffffffull;
        LogicVec a(32, x), b(32, y);
        uint32_t xa = static_cast<uint32_t>(x);
        uint32_t ya = static_cast<uint32_t>(y);
        EXPECT_EQ(a.add(b).toUint64(), uint64_t(uint32_t(xa + ya)));
        EXPECT_EQ(a.sub(b).toUint64(), uint64_t(uint32_t(xa - ya)));
        EXPECT_EQ(a.mul(b).toUint64(), uint64_t(uint32_t(xa * ya)));
        if (ya != 0) {
            EXPECT_EQ(a.div(b).toUint64(), uint64_t(xa / ya));
            EXPECT_EQ(a.mod(b).toUint64(), uint64_t(xa % ya));
        }
        EXPECT_EQ(a.bitAnd(b).toUint64(), uint64_t(xa & ya));
        EXPECT_EQ(a.bitOr(b).toUint64(), uint64_t(xa | ya));
        EXPECT_EQ(a.bitXor(b).toUint64(), uint64_t(xa ^ ya));
        EXPECT_EQ(a.lt(b).isTrue(), xa < ya);
        EXPECT_EQ(a.logicEq(b).isTrue(), xa == ya);
        uint64_t sh = rng() % 32;
        EXPECT_EQ(a.shl(LogicVec(8, sh)).toUint64(),
                  uint64_t(uint32_t(xa << sh)));
        EXPECT_EQ(a.shr(LogicVec(8, sh)).toUint64(),
                  uint64_t(xa >> sh));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogicArithProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

class LogicWidthProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LogicWidthProperty, RoundTripAndInvariants)
{
    int width = GetParam();
    std::mt19937_64 rng(static_cast<uint64_t>(width) * 7919);
    for (int trial = 0; trial < 50; ++trial) {
        std::string bits;
        for (int i = 0; i < width; ++i)
            bits.push_back("01xz"[rng() % 4]);
        LogicVec a = LogicVec::fromString(bits);
        // toString round trip.
        EXPECT_EQ(a.toString(), bits);
        EXPECT_TRUE(LogicVec::fromString(a.toString()).identical(a));
        // Double negation is identity on defined bits only.
        LogicVec nn = a.bitNot().bitNot();
        for (int i = 0; i < width; ++i) {
            if (a.bit(i) == Bit::Zero || a.bit(i) == Bit::One)
                EXPECT_EQ(nn.bit(i), a.bit(i));
            else
                EXPECT_EQ(nn.bit(i), Bit::X);
        }
        // Case equality is reflexive even with x/z.
        EXPECT_TRUE(a.caseEq(a).isTrue());
        // Concat width adds up; slices reassemble.
        if (width >= 2) {
            int cut = 1 + static_cast<int>(rng() % uint64_t(width - 1));
            LogicVec hi = a.slice(width - 1, cut);
            LogicVec lo = a.slice(cut - 1, 0);
            EXPECT_TRUE(LogicVec::concat(hi, lo).identical(a));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, LogicWidthProperty,
                         ::testing::Values(1, 2, 7, 8, 25, 32, 33, 64,
                                           65, 100, 128));

} // namespace
