/**
 * @file
 * Tests for the parallel candidate-evaluation substrate: the EvalPool
 * thread pool, the patch-keyed LRU fitness cache, and — the core
 * contract — that a repair trial is bit-identical for a given seed at
 * any thread count (determinism regression harness).
 */

#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/evalpool.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;
using sim::ProbeConfig;
using sim::TraceRecorder;

namespace {

// ------------------------------------------------------------------
// EvalPool
// ------------------------------------------------------------------

TEST(EvalPool, RunsEveryJobExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        EvalPool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        constexpr int kJobs = 64;
        std::vector<std::atomic<int>> counts(kJobs);
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < kJobs; ++i)
            jobs.push_back([&counts, i] {
                counts[static_cast<size_t>(i)].fetch_add(1);
            });
        pool.run(jobs);
        for (auto &c : counts)
            EXPECT_EQ(c.load(), 1);
    }
}

TEST(EvalPool, ReusableAcrossBatches)
{
    EvalPool pool(4);
    std::atomic<int> total{0};
    for (int batch = 0; batch < 10; ++batch) {
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 16; ++i)
            jobs.push_back([&total] { total.fetch_add(1); });
        pool.run(jobs);
    }
    EXPECT_EQ(total.load(), 160);
}

TEST(EvalPool, EmptyBatchIsNoop)
{
    EvalPool pool(4);
    pool.run({});
}

TEST(EvalPool, RethrowsLowestIndexedException)
{
    for (int threads : {1, 4}) {
        EvalPool pool(threads);
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 8; ++i)
            jobs.push_back([i] {
                if (i == 3 || i == 6)
                    throw std::runtime_error("job " +
                                             std::to_string(i));
            });
        try {
            pool.run(jobs);
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 3");
        }
        // The pool survives a throwing batch.
        std::atomic<int> ran{0};
        pool.run({[&ran] { ran.fetch_add(1); }});
        EXPECT_EQ(ran.load(), 1);
    }
}

// ------------------------------------------------------------------
// FitnessCache
// ------------------------------------------------------------------

FitnessCache::Entry
entryWithFitness(double f)
{
    FitnessCache::Entry e;
    e.valid = true;
    e.fit.fitness = f;
    return e;
}

TEST(FitnessCache, HitMissAccounting)
{
    FitnessCache cache(8);
    EXPECT_EQ(cache.find("a"), nullptr);
    EXPECT_EQ(cache.stats().misses, 1);
    cache.insert("a", entryWithFitness(0.5));
    const FitnessCache::Entry *hit = cache.find("a");
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(hit->fit.fitness, 0.5);
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().misses, 1);
    cache.noteDuplicateHit();
    EXPECT_EQ(cache.stats().hits, 2);
}

TEST(FitnessCache, LruEviction)
{
    FitnessCache cache(2);
    cache.insert("a", entryWithFitness(0.1));
    cache.insert("b", entryWithFitness(0.2));
    EXPECT_EQ(cache.size(), 2u);
    // Touch "a" so "b" becomes least recently used.
    EXPECT_NE(cache.find("a"), nullptr);
    cache.insert("c", entryWithFitness(0.3));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_EQ(cache.find("b"), nullptr);   // evicted
    EXPECT_NE(cache.find("a"), nullptr);   // kept (recently used)
    EXPECT_NE(cache.find("c"), nullptr);
}

TEST(FitnessCache, ReinsertRefreshesInsteadOfDuplicating)
{
    FitnessCache cache(2);
    cache.insert("a", entryWithFitness(0.1));
    cache.insert("a", entryWithFitness(0.9));
    EXPECT_EQ(cache.size(), 1u);
    const FitnessCache::Entry *e = cache.find("a");
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->fit.fitness, 0.9);
    EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(FitnessCache, ZeroCapacityDisablesCaching)
{
    FitnessCache cache(0);
    cache.insert("a", entryWithFitness(0.1));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find("a"), nullptr);
}

// ------------------------------------------------------------------
// Engine-level determinism and dedup
// ------------------------------------------------------------------

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    auto pos = s.find("rst == 1'b1");
    s.replace(pos, 11, "rst != 1'b1");
    return s;
}

struct MiniScenario
{
    std::shared_ptr<const SourceFile> faulty;
    ProbeConfig probe;
    Trace oracle;

    MiniScenario()
    {
        std::shared_ptr<const SourceFile> golden =
            parse(kGoldenToggle);
        probe = sim::deriveProbeConfig(*golden, "tb");
        auto design = sim::elaborate(golden, "tb");
        TraceRecorder rec(*design, probe);
        design->run();
        oracle = rec.takeTrace();
        faulty = parse(faultyToggle());
    }

    RepairEngine
    engine(EngineConfig cfg) const
    {
        return RepairEngine(faulty, "tb", "dut", probe, oracle, cfg);
    }
};

/** seed -> RepairResult must be bit-identical at any thread count. */
TEST(EvalPoolDeterminism, SameSeedSameResultAcrossThreadCounts)
{
    MiniScenario sc;
    EngineConfig cfg;
    cfg.popSize = 16;
    cfg.maxGenerations = 3;
    cfg.maxSeconds = 60.0;
    cfg.seed = 20260805;

    std::vector<RepairResult> results;
    for (int threads : {1, 2, 8}) {
        EngineConfig c = cfg;
        c.numThreads = threads;
        auto engine = sc.engine(c);
        results.push_back(engine.run());
    }

    const RepairResult &ref = results[0];
    for (size_t i = 1; i < results.size(); ++i) {
        const RepairResult &r = results[i];
        EXPECT_EQ(r.found, ref.found);
        EXPECT_EQ(r.patch.key(), ref.patch.key());
        EXPECT_EQ(r.patch.describe(), ref.patch.describe());
        EXPECT_EQ(r.repairedSource, ref.repairedSource);
        EXPECT_EQ(r.generations, ref.generations);
        EXPECT_EQ(r.fitnessEvals, ref.fitnessEvals);
        EXPECT_EQ(r.invalidMutants, ref.invalidMutants);
        EXPECT_EQ(r.totalMutants, ref.totalMutants);
        EXPECT_EQ(r.fitnessTrajectory, ref.fitnessTrajectory);
        EXPECT_EQ(r.cache.hits, ref.cache.hits);
        EXPECT_EQ(r.cache.misses, ref.cache.misses);
        EXPECT_EQ(r.cache.evictions, ref.cache.evictions);
        EXPECT_DOUBLE_EQ(r.finalFitness.fitness,
                         ref.finalFitness.fitness);
    }
}

/** Re-evaluating an identical patch is a cache hit, not a simulation. */
TEST(EvalPoolDeterminism, IdenticalPatchDedup)
{
    MiniScenario sc;
    EngineConfig cfg;
    auto engine = sc.engine(cfg);

    Variant v1 = engine.evaluate(Patch{});
    long evals_after_first = engine.cacheStats().misses;
    Variant v2 = engine.evaluate(Patch{});
    EXPECT_EQ(engine.cacheStats().misses, evals_after_first);
    EXPECT_EQ(engine.cacheStats().hits, 1);
    EXPECT_EQ(v1.valid, v2.valid);
    EXPECT_DOUBLE_EQ(v1.fit.fitness, v2.fit.fitness);
    EXPECT_EQ(v1.trace.toCsv(), v2.trace.toCsv());
}

/** A standard trial exercises the cache (duplicate children exist). */
TEST(EvalPoolDeterminism, TrialHasNonzeroCacheHits)
{
    MiniScenario sc;
    EngineConfig cfg;
    cfg.popSize = 16;
    cfg.maxGenerations = 3;
    cfg.maxSeconds = 60.0;
    cfg.seed = 11;
    auto engine = sc.engine(cfg);
    RepairResult res = engine.run();
    EXPECT_GT(res.cache.misses, 0);
    EXPECT_GT(res.cache.hits, 0);
}

/** evaluateUncached is safe to call from many threads concurrently. */
TEST(EvalPoolDeterminism, ConcurrentUncachedEvaluationsAgree)
{
    MiniScenario sc;
    EngineConfig cfg;
    auto engine = sc.engine(cfg);

    constexpr int kJobs = 8;
    std::vector<Variant> out(kJobs);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < kJobs; ++i)
        jobs.push_back([&engine, &out, i] {
            out[static_cast<size_t>(i)] =
                engine.evaluateUncached(Patch{});
        });
    EvalPool pool(8);
    pool.run(jobs);

    for (int i = 1; i < kJobs; ++i) {
        EXPECT_EQ(out[size_t(i)].valid, out[0].valid);
        EXPECT_DOUBLE_EQ(out[size_t(i)].fit.fitness,
                         out[0].fit.fitness);
        EXPECT_EQ(out[size_t(i)].trace.toCsv(), out[0].trace.toCsv());
    }
}

} // namespace
