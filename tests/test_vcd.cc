/**
 * @file
 * Tests for the VCD waveform recorder.
 */

#include <gtest/gtest.h>

#include "sim/elaborate.h"
#include "sim/vcd.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::sim;
using namespace cirfix::verilog;

namespace {

const char *kDesign = R"(
module child (input clk, output reg [3:0] q);
    always @(posedge clk) q <= q + 1;
    initial q = 4'h0;
endmodule
module t;
    reg clk;
    wire [3:0] q;
    child c (.clk(clk), .q(q));
    initial begin
        clk = 0;
        #35 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

TEST(Vcd, DocumentStructure)
{
    std::shared_ptr<const SourceFile> file = parse(kDesign);
    auto design = elaborate(file, "t");
    VcdRecorder vcd(*design);
    design->run();
    std::string doc = vcd.document();
    EXPECT_NE(doc.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(doc.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(doc.find("$dumpvars"), std::string::npos);
    EXPECT_NE(doc.find("$scope module"), std::string::npos);
    EXPECT_NE(doc.find("$upscope $end"), std::string::npos);
    // clk is a 1-bit var; q is a 4-bit vector with a range suffix.
    EXPECT_NE(doc.find("$var wire 1"), std::string::npos);
    EXPECT_NE(doc.find("[3:0] $end"), std::string::npos);
    EXPECT_GT(vcd.changeCount(), 5u);
}

TEST(Vcd, TimestampsAndChanges)
{
    std::shared_ptr<const SourceFile> file = parse(kDesign);
    auto design = elaborate(file, "t");
    VcdRecorder vcd(*design);
    design->run();
    std::string doc = vcd.document();
    // Clock toggles at 5, 10, 15, ... -> timestamps present in order.
    size_t t5 = doc.find("#5\n");
    size_t t10 = doc.find("#10\n");
    size_t t15 = doc.find("#15\n");
    ASSERT_NE(t5, std::string::npos);
    ASSERT_NE(t10, std::string::npos);
    ASSERT_NE(t15, std::string::npos);
    EXPECT_LT(t5, t10);
    EXPECT_LT(t10, t15);
    // Vector changes use the b<bits> form.
    EXPECT_NE(doc.find("b0001 "), std::string::npos);
    EXPECT_NE(doc.find("b0010 "), std::string::npos);
}

TEST(Vcd, SelectedSignalsOnly)
{
    std::shared_ptr<const SourceFile> file = parse(kDesign);
    auto design = elaborate(file, "t");
    VcdRecorder vcd(*design, std::vector<std::string>{"c.q"});
    design->run();
    std::string doc = vcd.document();
    // Only one $var: the selected vector.
    size_t count = 0;
    for (size_t pos = doc.find("$var"); pos != std::string::npos;
         pos = doc.find("$var", pos + 1))
        ++count;
    EXPECT_EQ(count, 1u);
    // clk's per-cycle toggles are not recorded.
    EXPECT_EQ(doc.find("$var wire 1 "), std::string::npos);
}

TEST(Vcd, UnknownPathIgnored)
{
    std::shared_ptr<const SourceFile> file = parse(kDesign);
    auto design = elaborate(file, "t");
    VcdRecorder vcd(*design, std::vector<std::string>{"nope.q"});
    design->run();
    EXPECT_EQ(vcd.changeCount(), 0u);
}

TEST(Vcd, InitialValuesAreX)
{
    std::shared_ptr<const SourceFile> file = parse(kDesign);
    auto design = elaborate(file, "t");
    VcdRecorder vcd(*design, std::vector<std::string>{"c.q"});
    design->run();
    std::string doc = vcd.document();
    size_t dump = doc.find("$dumpvars");
    size_t end = doc.find("$end", dump);
    EXPECT_NE(doc.substr(dump, end - dump).find("bxxxx"),
              std::string::npos);
}

} // namespace
