/**
 * @file
 * Checkpoint/resume tests: snapshots round-trip byte-exactly, a
 * resumed run is bit-identical to an uninterrupted one (the ISSUE's
 * acceptance criterion is tested literally, with SIGKILL mid-run and
 * resume from the latest snapshot), and corrupt or mismatched
 * snapshots are rejected instead of misparsed.
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/snapshot.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;
using sim::ProbeConfig;
using sim::TraceRecorder;

namespace {

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

/**
 * Two seeded defects (inverted reset polarity AND a non-toggling
 * feedback) so the repair needs a multi-edit patch: with popSize 12
 * and seed 7 the engine provably finds it in generation 6 and not a
 * generation earlier, which keeps every snapshot-writing and
 * kill/resume path below live instead of short-circuiting on an
 * easy gen-1 repair.
 */
std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    s.replace(s.find("rst == 1'b1"), 11, "rst != 1'b1");
    s.replace(s.find("q <= !q"), 7, "q <= q");
    return s;
}

struct MiniScenario
{
    std::shared_ptr<const SourceFile> faulty;
    ProbeConfig probe;
    Trace oracle;

    MiniScenario()
    {
        std::shared_ptr<const SourceFile> golden =
            parse(kGoldenToggle);
        probe = sim::deriveProbeConfig(*golden, "tb");
        auto design = sim::elaborate(golden, "tb");
        TraceRecorder rec(*design, probe);
        design->run();
        oracle = rec.takeTrace();
        faulty = parse(faultyToggle());
    }

    RepairEngine
    engine(EngineConfig cfg) const
    {
        return RepairEngine(faulty, "tb", "dut", probe, oracle, cfg);
    }
};

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

EngineConfig
baseConfig()
{
    EngineConfig cfg;
    cfg.popSize = 12;
    cfg.maxGenerations = 6;  // the seed-7 repair lands in generation 6
    cfg.maxSeconds = 120.0;  // generous: time limits never bind here
    cfg.seed = 7;
    return cfg;
}

void
expectSameResult(const RepairResult &a, const RepairResult &b)
{
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.patch.key(), b.patch.key());
    EXPECT_EQ(a.repairedSource, b.repairedSource);
    EXPECT_EQ(a.generations, b.generations);
    EXPECT_EQ(a.fitnessEvals, b.fitnessEvals);
    EXPECT_EQ(a.invalidMutants, b.invalidMutants);
    EXPECT_EQ(a.totalMutants, b.totalMutants);
    EXPECT_EQ(a.fitnessTrajectory, b.fitnessTrajectory);
    EXPECT_EQ(a.cache.hits, b.cache.hits);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_EQ(a.cache.evictions, b.cache.evictions);
    EXPECT_EQ(a.outcomes.counts, b.outcomes.counts);
    EXPECT_EQ(a.outcomes.quarantineHits, b.outcomes.quarantineHits);
    EXPECT_DOUBLE_EQ(a.finalFitness.fitness, b.finalFitness.fitness);
}

// ------------------------------------------------------------------
// Format round-trip
// ------------------------------------------------------------------

TEST(Snapshot, EncodeDecodeIsByteExact)
{
    MiniScenario sc;
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 2;
    cfg.snapshotPath = tmpPath("roundtrip.snap");
    auto engine = sc.engine(cfg);
    engine.run();

    std::string bytes = slurp(cfg.snapshotPath);
    ASSERT_FALSE(bytes.empty());
    EngineState state = decodeSnapshot(bytes);
    // decode(encode(decode(x))) — field-exact implies byte-exact.
    EXPECT_EQ(encodeSnapshot(state), bytes);
    EXPECT_EQ(state.seed, cfg.seed);
    EXPECT_GE(state.generationsDone, 1);
    EXPECT_FALSE(state.population.empty());
    std::remove(cfg.snapshotPath.c_str());
}

TEST(Snapshot, RejectsGarbageAndWrongVersion)
{
    EXPECT_THROW(decodeSnapshot("not a snapshot\n"),
                 std::runtime_error);
    EXPECT_THROW(decodeSnapshot(""), std::runtime_error);

    MiniScenario sc;
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 1;
    cfg.snapshotPath = tmpPath("version.snap");
    auto engine = sc.engine(cfg);
    engine.run();
    std::string bytes = slurp(cfg.snapshotPath);
    ASSERT_EQ(bytes.rfind("CIRFIX-SNAPSHOT 8\n", 0), 0u);
    std::string wrong = bytes;
    wrong.replace(0, 18, "CIRFIX-SNAPSHOT 99\n");
    try {
        decodeSnapshot(wrong);
        FAIL() << "expected version rejection";
    } catch (const std::runtime_error &e) {
        // The diagnostic names BOTH versions (the file's and the
        // readable range) and tells the user the remedy.
        std::string what = e.what();
        EXPECT_NE(what.find("version 99"), std::string::npos) << what;
        EXPECT_NE(what.find("7..8"), std::string::npos) << what;
        EXPECT_NE(what.find("newer cirfix"), std::string::npos)
            << what;
    }
    // A version-1 file (no checksum seal) is likewise rejected by
    // version, not misparsed.
    std::string v1 = bytes;
    v1.replace(0, 18, "CIRFIX-SNAPSHOT 1\n");
    EXPECT_THROW(decodeSnapshot(v1), std::runtime_error);
    // Truncation anywhere must throw, never misparse.
    EXPECT_THROW(decodeSnapshot(bytes.substr(0, bytes.size() / 2)),
                 std::runtime_error);
    std::remove(cfg.snapshotPath.c_str());
}

TEST(Snapshot, IslandProvenanceAndLedgerRoundTrip)
{
    MiniScenario sc;
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 1;
    cfg.islandIndex = 2;
    cfg.islandCount = 4;
    cfg.snapshotPath = tmpPath("island.snap");
    auto engine = sc.engine(cfg);
    engine.run();

    EngineState state = loadSnapshot(cfg.snapshotPath);
    EXPECT_EQ(state.islandIndex, 2);
    EXPECT_EQ(state.islandCount, 4);
    EXPECT_EQ(state.migrationEpoch, 0);
    EXPECT_TRUE(state.migrantLedger.empty());

    // The migrant ledger round-trips byte-exactly, including keys
    // with newlines and blanks (they travel as length-prefixed
    // blobs, not lines).
    MigrantRecord e1;
    e1.epoch = 1;
    e1.keys = {"k:1|alpha", "k:2|with\nnewline", ""};
    MigrantRecord e2;
    e2.epoch = 2;
    e2.keys = {"k:9"};
    state.migrantLedger = {e1, e2};
    state.migrationEpoch = 2;
    std::string bytes = encodeSnapshot(state);
    EngineState back = decodeSnapshot(bytes);
    EXPECT_EQ(encodeSnapshot(back), bytes);
    ASSERT_EQ(back.migrantLedger.size(), 2u);
    EXPECT_EQ(back.migrantLedger[0].epoch, 1);
    EXPECT_EQ(back.migrantLedger[0].keys, e1.keys);
    EXPECT_EQ(back.migrantLedger[1].keys, e2.keys);
    EXPECT_EQ(back.migrationEpoch, 2);
    std::remove(cfg.snapshotPath.c_str());
}

TEST(Snapshot, V7FileLoadsAsPlainRun)
{
    // Forward compat: a v7 snapshot (no island records) still loads,
    // and comes back as "not an island run" — island -1 of 0, empty
    // ledger — rather than garbage or a rejection.
    MiniScenario sc;
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 1;
    cfg.snapshotPath = tmpPath("v7compat.snap");
    auto engine = sc.engine(cfg);
    engine.run();
    std::string v8 = slurp(cfg.snapshotPath);
    ASSERT_EQ(v8.rfind("CIRFIX-SNAPSHOT 8\n", 0), 0u);

    // Synthesize the v7 byte stream: drop the island + ledger
    // records, stamp the old version, and re-seal the checksum.
    std::string body = v8;
    size_t isl = body.find("\nisland ");
    ASSERT_NE(isl, std::string::npos);
    size_t ledger = body.find("\nledger ", isl);
    ASSERT_NE(ledger, std::string::npos);
    size_t ledgerEnd = body.find('\n', ledger + 1);
    ASSERT_NE(ledgerEnd, std::string::npos);
    body.erase(isl, ledgerEnd - isl);
    body.replace(0, 18, "CIRFIX-SNAPSHOT 7\n");
    size_t seal = body.rfind("\nchecksum ");
    ASSERT_NE(seal, std::string::npos);
    body.erase(seal + 1);
    body += "checksum " + std::to_string(fingerprintSource(body)) +
            "\nend\n";

    EngineState st = decodeSnapshot(body);
    EXPECT_EQ(st.islandIndex, -1);
    EXPECT_EQ(st.islandCount, 0);
    EXPECT_EQ(st.migrationEpoch, 0);
    EXPECT_TRUE(st.migrantLedger.empty());
    EXPECT_EQ(st.seed, cfg.seed);

    // And a plain engine resumes it: v7 files stay usable across the
    // format bump.
    auto resumer = sc.engine(baseConfig());
    RepairResult resumed = resumer.resume(st);
    EXPECT_TRUE(resumed.found);
    std::remove(cfg.snapshotPath.c_str());
}

TEST(Snapshot, ResumeRejectsIslandProvenanceMismatch)
{
    MiniScenario sc;
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 1;
    cfg.islandIndex = 1;
    cfg.islandCount = 4;
    cfg.snapshotPath = tmpPath("islandslot.snap");
    auto engine = sc.engine(cfg);
    engine.run();
    EngineState state = loadSnapshot(cfg.snapshotPath);

    // Wrong slot of the same job: refused, with both slots named.
    EngineConfig other = cfg;
    other.islandIndex = 0;
    other.snapshotPath.clear();
    auto wrongSlot = sc.engine(other);
    try {
        wrongSlot.resume(state);
        FAIL() << "expected island-provenance rejection";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("island provenance mismatch"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("island 1 of 4"), std::string::npos)
            << what;
        EXPECT_NE(what.find("island 0 of 4"), std::string::npos)
            << what;
    }

    // A plain (non-island) engine refuses an island snapshot too.
    EngineConfig plain = baseConfig();
    auto plainEngine = sc.engine(plain);
    EXPECT_THROW(plainEngine.resume(state), std::runtime_error);
    std::remove(cfg.snapshotPath.c_str());
}

TEST(Snapshot, RejectsTruncationAtEveryRecordBoundary)
{
    MiniScenario sc;
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 1;
    cfg.snapshotPath = tmpPath("truncate.snap");
    auto engine = sc.engine(cfg);
    engine.run();
    std::string bytes = slurp(cfg.snapshotPath);
    ASSERT_GT(bytes.size(), 64u);

    // Cut the file at every line boundary (mid-record for multi-line
    // records like variants): each prefix must be rejected with a
    // diagnostic, never silently decoded to partial state.
    size_t boundaries = 0;
    for (size_t nl = bytes.find('\n'); nl != std::string::npos;
         nl = bytes.find('\n', nl + 1)) {
        if (nl + 1 >= bytes.size())
            break;  // the full file decodes, of course
        ++boundaries;
        EXPECT_THROW(decodeSnapshot(bytes.substr(0, nl + 1)),
                     std::runtime_error)
            << "prefix of " << nl + 1 << " bytes decoded";
    }
    EXPECT_GT(boundaries, 10u);

    // And a cut in the *middle* of a blob payload (the population's
    // trace CSV) as well as mid-line.
    size_t blob = bytes.find("trace blob ");
    ASSERT_NE(blob, std::string::npos);
    EXPECT_THROW(decodeSnapshot(bytes.substr(0, blob + 20)),
                 std::runtime_error);
    std::remove(cfg.snapshotPath.c_str());
}

TEST(Snapshot, RejectsBitFlipsAndTrailingGarbage)
{
    MiniScenario sc;
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 1;
    cfg.snapshotPath = tmpPath("bitflip.snap");
    auto engine = sc.engine(cfg);
    engine.run();
    std::string bytes = slurp(cfg.snapshotPath);

    // Flip one character inside a blob payload: the record lengths all
    // still parse, so only the checksum can catch it.
    size_t blob = bytes.find("trace blob ");
    ASSERT_NE(blob, std::string::npos);
    size_t payload = bytes.find('\n', blob) + 2;
    ASSERT_LT(payload, bytes.size());
    std::string flipped = bytes;
    flipped[payload] = flipped[payload] == '0' ? '1' : '0';
    try {
        decodeSnapshot(flipped);
        FAIL() << "expected checksum rejection";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }

    // Bytes appended after the end marker are rejected too.
    EXPECT_THROW(decodeSnapshot(bytes + "stray\n"),
                 std::runtime_error);
    std::remove(cfg.snapshotPath.c_str());
}

TEST(Snapshot, LoadMissingFileThrows)
{
    EXPECT_THROW(loadSnapshot(tmpPath("does-not-exist.snap")),
                 std::runtime_error);
}

// ------------------------------------------------------------------
// Resume equivalence
// ------------------------------------------------------------------

TEST(Snapshot, ResumeContinuesBitIdentically)
{
    MiniScenario sc;

    // Uninterrupted reference run.
    RepairResult full;
    {
        auto engine = sc.engine(baseConfig());
        full = engine.run();
    }

    // Interrupted run: stop after 2 generations (the snapshot is the
    // state a killed process would leave behind), then resume with the
    // full generation budget.
    std::string snap = tmpPath("resume.snap");
    {
        EngineConfig cfg = baseConfig();
        cfg.maxGenerations = 2;
        cfg.snapshotPath = snap;
        auto engine = sc.engine(cfg);
        RepairResult partial = engine.run();
        // The two-fault defect is not repairable by generation 2, so
        // there is always something left to resume.
        ASSERT_FALSE(partial.found);
    }
    EngineState state = loadSnapshot(snap);
    EXPECT_EQ(state.generationsDone, 2);
    auto engine = sc.engine(baseConfig());
    RepairResult resumed = engine.resume(state);
    ASSERT_TRUE(full.found);
    expectSameResult(full, resumed);
    std::remove(snap.c_str());
}

TEST(Snapshot, ResumeRejectsDifferentDesign)
{
    MiniScenario sc;
    std::string snap = tmpPath("mismatch.snap");
    EngineConfig cfg = baseConfig();
    cfg.maxGenerations = 1;
    cfg.snapshotPath = snap;
    auto engine = sc.engine(cfg);
    engine.run();
    EngineState state = loadSnapshot(snap);

    // Same scenario, different faulty source: the golden design.
    std::shared_ptr<const SourceFile> other = parse(kGoldenToggle);
    RepairEngine wrong(other, "tb", "dut", sc.probe, sc.oracle, cfg);
    EXPECT_THROW(wrong.resume(state), std::runtime_error);
    std::remove(snap.c_str());
}

// ------------------------------------------------------------------
// The acceptance criterion, literally: SIGKILL the repair process
// mid-run, resume from the latest snapshot, and the final repair
// (patch and fitness) matches the uninterrupted run with the same
// seed.
// ------------------------------------------------------------------

TEST(Snapshot, KilledMidRunResumesToSameRepair)
{
    MiniScenario sc;
    std::string snap = tmpPath("killed.snap");
    std::remove(snap.c_str());

    EngineConfig cfg = baseConfig();
    cfg.numThreads = 2;  // exercise the pool across the kill boundary

    // Uninterrupted reference run (same seed).
    RepairResult full;
    {
        auto engine = sc.engine(cfg);
        full = engine.run();
    }

    pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        // Child: repair with checkpointing, die hard inside the
        // generation-2 progress callback. The snapshot for generation
        // 2 is written before the callback runs, so it is durable.
        EngineConfig child_cfg = cfg;
        child_cfg.snapshotPath = snap;
        child_cfg.onGeneration = [](const GenerationStats &gs) {
            if (gs.generation == 2)
                raise(SIGKILL);
        };
        auto engine = sc.engine(child_cfg);
        engine.run();
        _exit(0);  // unreachable: the repair lands after the kill point
    }

    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    EngineState state = loadSnapshot(snap);
    EXPECT_EQ(state.generationsDone, 2);
    auto engine = sc.engine(cfg);
    RepairResult resumed = engine.resume(state);

    // Same final repair: same patch, same fitness — and the rest of
    // the result is bit-identical too.
    ASSERT_TRUE(full.found);
    EXPECT_TRUE(resumed.found);
    expectSameResult(full, resumed);
    std::remove(snap.c_str());
}

} // namespace
