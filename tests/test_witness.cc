/**
 * @file
 * Witness-driven oracle hardening tests.
 *
 * The central property is GOLDEN INVARIANCE: a witness bench's expected
 * trace is recorded from the golden design, so the correct design
 * passes every hardened oracle by construction — a witness can only
 * ever kill wrong behavior. Every test that generates a witness
 * re-checks this on the real golden source.
 *
 * The end-to-end tests seed a guaranteed-overfit starting point by
 * weakening a scenario's oracle to agreementRows(oracle, faulty_trace):
 * the unrepaired design is then instantly plausible (and wrong), the
 * hardened loop must kill it with a generated witness, resume from the
 * discovery-point snapshot, and drive the search to a patch that
 * passes the held-out verification bench.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "benchmarks/registry.h"
#include "core/oracle.h"
#include "core/scenario.h"
#include "core/snapshot.h"
#include "core/witness.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;

namespace {

const char *kGoldenCounter = R"(
module counter (clk, reset, enable, counter_out, overflow_out);
    input clk;
    input reset;
    input enable;
    output [3:0] counter_out;
    output overflow_out;
    reg [3:0] counter_out;
    reg overflow_out;
    always @(posedge clk)
    begin
        if (reset == 1'b1) begin
            counter_out <= #1 4'b0000;
            overflow_out <= #1 1'b0;
        end
        else if (enable == 1'b1) begin
            counter_out <= #1 counter_out + 1;
        end
        if (counter_out == 4'b1111) begin
            overflow_out <= #1 1'b1;
        end
    end
endmodule
)";

/** Same counter, but overflow fires early (at 7 instead of 15). */
const char *kEarlyOverflowCounter = R"(
module counter (clk, reset, enable, counter_out, overflow_out);
    input clk;
    input reset;
    input enable;
    output [3:0] counter_out;
    output overflow_out;
    reg [3:0] counter_out;
    reg overflow_out;
    always @(posedge clk)
    begin
        if (reset == 1'b1) begin
            counter_out <= #1 4'b0000;
            overflow_out <= #1 1'b0;
        end
        else if (enable == 1'b1) begin
            counter_out <= #1 counter_out + 1;
        end
        if (counter_out == 4'b0111) begin
            overflow_out <= #1 1'b1;
        end
    end
endmodule
)";

WitnessOptions
fastWitnessOptions(uint64_t seed = 7)
{
    WitnessOptions wo;
    wo.seed = seed;
    // The early-overflow bug needs ~8 uninterrupted enabled cycles to
    // surface; each try is sub-millisecond, so a generous budget keeps
    // the tests seed-robust without noticeable cost.
    wo.maxTries = 4000;
    wo.maxCycles = 24;
    return wo;
}

EngineConfig
fastConfig(uint64_t seed = 42)
{
    EngineConfig cfg;
    cfg.popSize = 100;
    cfg.maxGenerations = 12;
    cfg.maxSeconds = 20.0;
    cfg.seed = seed;
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** The golden design must score a perfect fitness under @p bench. */
void
expectGoldenPasses(const std::string &golden_src,
                   const OracleBench &bench)
{
    Trace t = runWitnessBench(golden_src, bench);
    FitnessResult fit = evaluateFitness(t, bench.oracle);
    EXPECT_TRUE(fit.plausible())
        << "witness bench '" << bench.module
        << "' rejects the golden design (" << bench.provenance << ")";
}

/**
 * A scenario whose oracle has been weakened until the UNREPAIRED
 * design is plausible: the seeded overfit starting point.
 */
Scenario
weakenedScenario(const std::string &defect_id)
{
    const DefectSpec &d = bench::getDefect(defect_id);
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    RepairEngine probe = sc.makeEngine(fastConfig());
    Trace faulty_trace = probe.evaluate(Patch{}).trace;
    sc.oracle = agreementRows(sc.oracle, faulty_trace);
    return sc;
}

// ------------------------------------------------------------------
// Interface derivation and bench generation
// ------------------------------------------------------------------

TEST(Witness, DerivesInterfaceFromPorts)
{
    auto file = verilog::parse(kGoldenCounter);
    WitnessInterface iface = deriveWitnessInterface(*file, "counter");
    EXPECT_EQ(iface.dutModule, "counter");
    EXPECT_EQ(iface.clockPort, "clk");
    ASSERT_EQ(iface.inputs.size(), 2u);
    EXPECT_EQ(iface.inputs[0].name, "reset");
    EXPECT_EQ(iface.inputs[0].width, 1);
    EXPECT_EQ(iface.inputs[1].name, "enable");
    ASSERT_EQ(iface.outputs.size(), 2u);
    EXPECT_EQ(iface.outputs[0].name, "counter_out");
    EXPECT_EQ(iface.outputs[0].width, 4);
    EXPECT_EQ(iface.outputs[1].name, "overflow_out");
    EXPECT_EQ(iface.outputs[1].width, 1);
}

TEST(Witness, UnknownModuleThrows)
{
    auto file = verilog::parse(kGoldenCounter);
    EXPECT_THROW(deriveWitnessInterface(*file, "nope"),
                 std::runtime_error);
}

TEST(Witness, GeneratedBenchSimulatesAndSamplesEveryStep)
{
    auto file = verilog::parse(kGoldenCounter);
    WitnessInterface iface = deriveWitnessInterface(*file, "counter");
    // reset, then count three cycles.
    StepMatrix steps{{1, 0}, {0, 1}, {0, 1}, {0, 1}};
    OracleBench bench;
    bench.module = "wtb";
    bench.source = makeWitnessBenchSource(iface, steps, "wtb", 5);
    bench.probe = witnessProbe(iface);
    Trace t = runWitnessBench(kGoldenCounter, bench);
    ASSERT_EQ(t.rows().size(), steps.size());
    // Row k samples the state *entering* posedge k (the DUT's `<= #1`
    // response to step k lands in the next time slot), so the reset
    // shows up in row 1 and each enabled increment one row later.
    EXPECT_EQ(t.rows()[0].values[0].toString(), "xxxx");
    EXPECT_EQ(t.rows()[1].values[0].toString(), "0000");
    EXPECT_EQ(t.rows()[2].values[0].toString(), "0001");
    EXPECT_EQ(t.rows()[3].values[0].toString(), "0010");
}

TEST(Witness, BenchGenerationIsDeterministic)
{
    auto file = verilog::parse(kGoldenCounter);
    WitnessInterface iface = deriveWitnessInterface(*file, "counter");
    StepMatrix steps{{1, 0}, {0, 1}};
    EXPECT_EQ(makeWitnessBenchSource(iface, steps, "wtb", 5),
              makeWitnessBenchSource(iface, steps, "wtb", 5));
}

// ------------------------------------------------------------------
// Delta-debugging minimizer
// ------------------------------------------------------------------

TEST(WitnessMinimize, KeepsExactlyTheNecessaryRows)
{
    // Discriminates iff a row of 3s appears before a row of 7s —
    // everything else is padding ddmin must strip.
    auto pred = [](const StepMatrix &m) {
        size_t first3 = m.size();
        for (size_t i = 0; i < m.size(); ++i) {
            if (m[i][0] == 3 && first3 == m.size())
                first3 = i;
            if (m[i][0] == 7 && first3 < i)
                return true;
        }
        return false;
    };
    StepMatrix bloated{{0}, {1}, {3}, {2}, {9}, {7}, {4}, {5}};
    ASSERT_TRUE(pred(bloated));
    int tests = 0;
    StepMatrix min = minimizeWitnessSteps(bloated, pred, &tests);
    ASSERT_EQ(min.size(), 2u);
    EXPECT_EQ(min[0][0], 3u);
    EXPECT_EQ(min[1][0], 7u);
    EXPECT_GT(tests, 0);
    EXPECT_TRUE(pred(min)) << "minimized stimulus must discriminate";
}

TEST(WitnessMinimize, ResultIsOneMinimal)
{
    auto pred = [](const StepMatrix &m) {
        uint64_t sum = 0;
        for (const auto &row : m)
            sum += row[0];
        return sum >= 10;
    };
    StepMatrix steps{{4}, {1}, {4}, {1}, {4}, {1}};
    StepMatrix min = minimizeWitnessSteps(steps, pred);
    ASSERT_TRUE(pred(min));
    // Removing any single remaining row must break the predicate.
    for (size_t i = 0; i < min.size(); ++i) {
        StepMatrix trial;
        for (size_t j = 0; j < min.size(); ++j)
            if (j != i)
                trial.push_back(min[j]);
        EXPECT_FALSE(pred(trial))
            << "row " << i << " is removable: not 1-minimal";
    }
}

TEST(WitnessMinimize, MinimizationIsIdempotent)
{
    auto pred = [](const StepMatrix &m) {
        for (const auto &row : m)
            if (row[0] == 7)
                return true;
        return false;
    };
    StepMatrix steps{{1}, {7}, {2}, {7}, {3}};
    StepMatrix once = minimizeWitnessSteps(steps, pred);
    StepMatrix twice = minimizeWitnessSteps(once, pred);
    EXPECT_EQ(once, twice);
    ASSERT_EQ(once.size(), 1u);
    EXPECT_EQ(once[0][0], 7u);
}

TEST(WitnessMinimize, SingleRowAndEmptyInputsPassThrough)
{
    auto always = [](const StepMatrix &) { return true; };
    StepMatrix one{{5}};
    EXPECT_EQ(minimizeWitnessSteps(one, always), one);
    StepMatrix none;
    EXPECT_EQ(minimizeWitnessSteps(none, always), none);
}

// ------------------------------------------------------------------
// Witness search
// ------------------------------------------------------------------

TEST(WitnessSearch, SeparatesEarlyOverflowCounter)
{
    WitnessSearchResult ws =
        findWitness(kGoldenCounter, kEarlyOverflowCounter, "counter",
                    fastWitnessOptions(), "wtb", "unit test");
    ASSERT_TRUE(ws.found);
    EXPECT_GT(ws.tries, 0);
    EXPECT_GE(ws.stepsBeforeMin, ws.steps.size());
    EXPECT_FALSE(ws.bench.source.empty());
    EXPECT_FALSE(ws.bench.oracle.rows().empty());
    // Golden invariance: the bench was recorded from the golden design.
    expectGoldenPasses(kGoldenCounter, ws.bench);
    // ... and it genuinely discriminates: the wrong design fails it.
    Trace wrong = runWitnessBench(kEarlyOverflowCounter, ws.bench);
    EXPECT_FALSE(evaluateFitness(wrong, ws.bench.oracle).plausible());
}

TEST(WitnessSearch, IdenticalDesignsYieldNoWitness)
{
    WitnessOptions wo = fastWitnessOptions();
    wo.maxTries = 40;  // equivalence exhausts the try budget
    WitnessSearchResult ws = findWitness(
        kGoldenCounter, kGoldenCounter, "counter", wo, "wtb", "t");
    EXPECT_FALSE(ws.found);
    EXPECT_EQ(ws.tries, wo.maxTries);
}

TEST(WitnessSearch, DeterministicPerSeed)
{
    WitnessSearchResult a =
        findWitness(kGoldenCounter, kEarlyOverflowCounter, "counter",
                    fastWitnessOptions(11), "wtb", "t");
    WitnessSearchResult b =
        findWitness(kGoldenCounter, kEarlyOverflowCounter, "counter",
                    fastWitnessOptions(11), "wtb", "t");
    ASSERT_TRUE(a.found);
    ASSERT_TRUE(b.found);
    EXPECT_EQ(a.tries, b.tries);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.bench.source, b.bench.source);
    EXPECT_EQ(a.bench.oracle.toCsv(), b.bench.oracle.toCsv());
}

// ------------------------------------------------------------------
// Engine integration: witness benches shape combined fitness
// ------------------------------------------------------------------

TEST(WitnessEngine, WitnessDemotesOverfitButNotGolden)
{
    // A "repair testbench" so weak (one reset cycle) that the broken
    // counter is plausible under it — until a witness is installed.
    const char *weak_tb = R"(
module weak_tb;
    reg clk; reg reset; reg enable;
    wire [3:0] counter_out; wire overflow_out;
    counter dut (.clk(clk), .reset(reset), .enable(enable),
                 .counter_out(counter_out),
                 .overflow_out(overflow_out));
    initial clk = 0;
    always #5 clk = !clk;
    initial begin
        reset = 1; enable = 0;
        #40 $finish;
    end
endmodule
)";
    auto assemble = [&](const char *dut_src, EngineConfig cfg) {
        std::string src = std::string(dut_src) + "\n" + weak_tb;
        std::shared_ptr<const verilog::SourceFile> file =
            verilog::parse(src);
        sim::ProbeConfig probe =
            sim::deriveProbeConfig(*file, "weak_tb");
        auto golden_file = std::shared_ptr<const verilog::SourceFile>(
            verilog::parse(std::string(kGoldenCounter) + "\n" +
                           weak_tb));
        auto design = sim::elaborate(golden_file, "weak_tb");
        sim::TraceRecorder rec(*design, probe);
        design->run();
        return RepairEngine(file, "weak_tb", "counter", probe,
                            rec.takeTrace(), cfg);
    };

    // Without a witness the early-overflow counter is plausible.
    {
        RepairEngine engine =
            assemble(kEarlyOverflowCounter, fastConfig());
        EXPECT_TRUE(engine.evaluate(Patch{}).fit.plausible());
    }

    WitnessSearchResult ws =
        findWitness(kGoldenCounter, kEarlyOverflowCounter, "counter",
                    fastWitnessOptions(), "wtb", "t");
    ASSERT_TRUE(ws.found);

    EngineConfig hardened = fastConfig();
    hardened.witnessBenches.push_back(ws.bench);
    {
        // The witness demotes the overfit design...
        RepairEngine engine =
            assemble(kEarlyOverflowCounter, hardened);
        Variant v = engine.evaluate(Patch{});
        EXPECT_FALSE(v.fit.plausible());
        EXPECT_LT(v.fit.fitness, 1.0);
    }
    {
        // ...and never the golden one.
        RepairEngine engine = assemble(kGoldenCounter, hardened);
        Variant v = engine.evaluate(Patch{});
        EXPECT_TRUE(v.fit.plausible());
    }
}

// ------------------------------------------------------------------
// Snapshot format v5: witness provenance
// ------------------------------------------------------------------

TEST(WitnessSnapshot, WitnessBenchesRoundTrip)
{
    WitnessSearchResult ws =
        findWitness(kGoldenCounter, kEarlyOverflowCounter, "counter",
                    fastWitnessOptions(), "wtb", "roundtrip");
    ASSERT_TRUE(ws.found);

    EngineState st;
    st.seed = 3;
    st.rngState = "12345 67890";
    st.witnesses.push_back(ws.bench);
    EngineState back = decodeSnapshot(encodeSnapshot(st));
    ASSERT_EQ(back.witnesses.size(), 1u);
    EXPECT_EQ(back.witnesses[0].module, ws.bench.module);
    EXPECT_EQ(back.witnesses[0].source, ws.bench.source);
    EXPECT_EQ(back.witnesses[0].provenance, ws.bench.provenance);
    EXPECT_EQ(back.witnesses[0].probe.clock, ws.bench.probe.clock);
    EXPECT_EQ(back.witnesses[0].probe.signals,
              ws.bench.probe.signals);
    EXPECT_EQ(back.witnesses[0].probe.startTime,
              ws.bench.probe.startTime);
    EXPECT_EQ(back.witnesses[0].oracle.toCsv(),
              ws.bench.oracle.toCsv());
}

TEST(WitnessSnapshot, ResumeRejectsMismatchedWitnessSet)
{
    // A snapshot scored under a witness cannot resume on an engine
    // without it (and vice versa): the fitness values would be lies.
    Scenario sc = weakenedScenario("counter_sensitivity");
    EngineConfig cfg = fastConfig();
    cfg.maxGenerations = 1;
    cfg.maxSeconds = 5.0;
    cfg.snapshotPath = tmpPath("witness_mismatch.snap");
    cfg.snapshotOnWin = true;
    RepairEngine engine = sc.makeEngine(cfg);
    RepairResult r = engine.run();
    ASSERT_TRUE(r.found);  // the weakened oracle accepts the original
    EngineState st = loadSnapshot(cfg.snapshotPath);
    EXPECT_TRUE(st.witnesses.empty());

    WitnessSearchResult ws =
        findWitness(kGoldenCounter, kEarlyOverflowCounter, "counter",
                    fastWitnessOptions(), "wtb", "t");
    ASSERT_TRUE(ws.found);
    EngineConfig hardened = cfg;
    hardened.witnessBenches.push_back(ws.bench);
    RepairEngine hardened_engine = sc.makeEngine(hardened);
    EXPECT_THROW(hardened_engine.resume(st), std::runtime_error);

    // rehardenSnapshot migrates it; then resume works.
    rehardenSnapshot(hardened_engine, st);
    ASSERT_EQ(st.witnesses.size(), 1u);
    RepairEngine fresh = sc.makeEngine(hardened);
    RepairResult resumed = fresh.resume(st);
    EXPECT_GE(resumed.generations, 0);
    EXPECT_EQ(resumed.witnessBenches, 1);
}

// ------------------------------------------------------------------
// End-to-end hardening on Table-3 scenarios
// ------------------------------------------------------------------

/**
 * Seed an overfit (the weakened oracle accepts the faulty design),
 * then demand the full loop: witness kills it, the run resumes from
 * the discovery-point snapshot, and the final patch passes the
 * held-out verification bench. Golden invariance is re-checked for
 * every witness the loop generated.
 */
void
hardenedEndToEnd(const std::string &defect_id, uint64_t seed)
{
    Scenario sc = weakenedScenario(defect_id);
    // Confirm the seeded overfit: plausible under the weak oracle,
    // wrong under the held-out bench.
    ASSERT_TRUE(sc.baselineFitness(fastConfig()).plausible());
    ASSERT_FALSE(checkCorrectness(sc, Patch{}));

    EngineConfig cfg = fastConfig(seed);
    cfg.snapshotPath = tmpPath("harden_" + defect_id + ".snap");
    WitnessOptions wo = fastWitnessOptions(seed);
    wo.maxRounds = 3;
    HardenedRepairResult hr = hardenedRepair(sc, cfg, wo);

    EXPECT_GE(hr.overfitKills, 1)
        << "the witness search must kill the seeded overfit patch";
    EXPECT_GE(hr.resumedFromSnapshot, 1)
        << "hardened rounds must resume from the discovery snapshot";
    ASSERT_GE(hr.witnesses.size(), 1u);
    for (const OracleBench &b : hr.witnesses)
        expectGoldenPasses(sc.project->goldenSource, b);
    EXPECT_EQ(hr.result.overfitKills, hr.overfitKills);
    ASSERT_TRUE(hr.result.found)
        << "the hardened search should still find a repair";
    EXPECT_TRUE(hr.correct)
        << "the final patch must pass the held-out bench";
    EXPECT_TRUE(checkCorrectness(sc, hr.result.patch));
}

TEST(WitnessEndToEnd, HardensCounterSensitivity)
{
    hardenedEndToEnd("counter_sensitivity", 7);
}

TEST(WitnessEndToEnd, HardensLshiftSensitivity)
{
    hardenedEndToEnd("lshift_sensitivity", 42);
}

TEST(WitnessEndToEnd, HardensLshiftConditional)
{
    hardenedEndToEnd("lshift_conditional", 42);
}

// ------------------------------------------------------------------
// Determinism across thread counts
// ------------------------------------------------------------------

TEST(WitnessDeterminism, HardenedRepairBitIdenticalAcrossThreads)
{
    // The witness search is single-threaded by construction and the
    // engine's determinism contract covers hardened resume: the whole
    // loop must be a pure function of the seed at any thread count.
    Scenario sc = weakenedScenario("counter_sensitivity");
    auto runAt = [&](int threads) {
        EngineConfig cfg = fastConfig(1234);
        cfg.numThreads = threads;
        cfg.snapshotPath =
            tmpPath("harden_threads_" + std::to_string(threads) +
                    ".snap");
        WitnessOptions wo = fastWitnessOptions(1234);
        wo.maxRounds = 2;
        return hardenedRepair(sc, cfg, wo);
    };
    HardenedRepairResult a = runAt(1);
    HardenedRepairResult b = runAt(4);
    HardenedRepairResult c = runAt(8);

    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.rounds, c.rounds);
    EXPECT_EQ(a.overfitKills, b.overfitKills);
    EXPECT_EQ(a.overfitKills, c.overfitKills);
    EXPECT_EQ(a.witnessTries, b.witnessTries);
    EXPECT_EQ(a.witnessTries, c.witnessTries);
    ASSERT_EQ(a.witnesses.size(), b.witnesses.size());
    ASSERT_EQ(a.witnesses.size(), c.witnesses.size());
    for (size_t i = 0; i < a.witnesses.size(); ++i) {
        EXPECT_EQ(a.witnesses[i].source, b.witnesses[i].source);
        EXPECT_EQ(a.witnesses[i].source, c.witnesses[i].source);
        EXPECT_EQ(a.witnesses[i].oracle.toCsv(),
                  b.witnesses[i].oracle.toCsv());
        EXPECT_EQ(a.witnesses[i].oracle.toCsv(),
                  c.witnesses[i].oracle.toCsv());
    }
    EXPECT_EQ(a.result.found, b.result.found);
    EXPECT_EQ(a.result.found, c.result.found);
    if (a.result.found) {
        EXPECT_EQ(a.result.patch.describe(),
                  b.result.patch.describe());
        EXPECT_EQ(a.result.patch.describe(),
                  c.result.patch.describe());
        EXPECT_EQ(a.result.repairedSource, b.result.repairedSource);
        EXPECT_EQ(a.result.repairedSource, c.result.repairedSource);
    }
}

} // namespace
