/**
 * @file
 * Integration tests for the repair engine (Algorithm 1): candidate
 * evaluation, the GP loop, minimization, and the brute-force baseline.
 */

#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/engine.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;
using sim::ProbeConfig;
using sim::TraceRecorder;

namespace {

/** A tiny scenario built from inline golden and faulty sources. */
struct MiniScenario
{
    std::shared_ptr<const SourceFile> faulty;
    ProbeConfig probe;
    Trace oracle;

    MiniScenario(const std::string &golden_src,
                 const std::string &faulty_src, const std::string &tb)
    {
        std::shared_ptr<const SourceFile> golden = parse(golden_src);
        probe = sim::deriveProbeConfig(*golden, tb);
        auto design = sim::elaborate(golden, tb);
        TraceRecorder rec(*design, probe);
        design->run();
        oracle = rec.takeTrace();
        faulty = parse(faulty_src);
    }

    RepairEngine
    engine(const std::string &tb, const std::string &dut,
           EngineConfig cfg)
    {
        return RepairEngine(faulty, tb, dut, probe, oracle, cfg);
    }
};

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

/** Same design with an inverted reset test (negate-template fixable). */
std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    auto pos = s.find("rst == 1'b1");
    s.replace(pos, 11, "rst != 1'b1");
    return s;
}

TEST(Engine, EvaluateOriginalDefective)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    auto engine = sc.engine("tb", "dut", cfg);
    Variant v = engine.evaluate(Patch{});
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.evaluated);
    EXPECT_LT(v.fit.fitness, 1.0);
    // (The inverted reset holds q at 0/x, so the clamped fitness can
    // legitimately be 0 here; what matters is it is not plausible.)
    EXPECT_FALSE(v.fit.plausible());
    EXPECT_FALSE(v.trace.empty());
}

TEST(Engine, EvaluateGoldenEquivalentIsPlausible)
{
    MiniScenario sc(kGoldenToggle, kGoldenToggle, "tb");
    EngineConfig cfg;
    auto engine = sc.engine("tb", "dut", cfg);
    EXPECT_TRUE(engine.evaluate(Patch{}).fit.plausible());
}

TEST(Engine, InvalidMutantScoresZero)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    auto engine = sc.engine("tb", "dut", cfg);
    // A replace pulling in an undeclared name makes the mutant
    // structurally invalid.
    auto donor_file = parse(
        "module x; reg q; initial q = ghost_name; endmodule");
    Patch p;
    Edit e;
    e.kind = EditKind::Replace;
    e.target = 0;  // will not even matter: code is invalid
    visitAll(*const_cast<Module *>(sc.faulty->modules[0].get()),
             [&](Node &n) {
                 if (n.kind == NodeKind::Assign && e.target <= 0)
                     e.target = n.id;
             });
    e.code = donor_file->modules[0]->items.back()
                 ->as<InitialBlock>()->body->cloneStmt();
    p.edits.push_back(std::move(e));
    Variant v = engine.evaluate(p);
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(v.fit.fitness, 0.0);
}

TEST(Engine, RepairsNegatedConditional)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 40;
    cfg.maxGenerations = 10;
    cfg.maxSeconds = 20.0;
    cfg.seed = 7;
    auto engine = sc.engine("tb", "dut", cfg);
    RepairResult res = engine.run();
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.finalFitness.plausible());
    EXPECT_FALSE(res.repairedSource.empty());
    EXPECT_GT(res.fitnessEvals, 0);
    // The repaired source re-parses and is itself plausible.
    auto reparsed = parse(res.repairedSource);
    EXPECT_NE(reparsed->findModule("dut"), nullptr);
}

TEST(Engine, MinimizedRepairIsOneMinimal)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 40;
    cfg.maxGenerations = 10;
    cfg.maxSeconds = 20.0;
    cfg.seed = 3;
    auto engine = sc.engine("tb", "dut", cfg);
    RepairResult res = engine.run();
    ASSERT_TRUE(res.found);
    for (size_t i = 0; i < res.patch.edits.size(); ++i) {
        Patch without;
        for (size_t j = 0; j < res.patch.edits.size(); ++j)
            if (j != i)
                without.edits.push_back(res.patch.edits[j]);
        if (without.empty())
            continue;
        Variant v = engine.evaluate(without);
        EXPECT_FALSE(v.valid && v.fit.plausible())
            << "edit " << i << " was unnecessary";
    }
}

TEST(Engine, FitnessTrajectoryMonotone)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 30;
    cfg.maxGenerations = 6;
    cfg.maxSeconds = 20.0;
    auto engine = sc.engine("tb", "dut", cfg);
    RepairResult res = engine.run();
    ASSERT_GE(res.fitnessTrajectory.size(), 1u);
    for (size_t i = 1; i < res.fitnessTrajectory.size(); ++i) {
        EXPECT_GE(res.fitnessTrajectory[i].first,
                  res.fitnessTrajectory[i - 1].first);
        EXPECT_GT(res.fitnessTrajectory[i].second,
                  res.fitnessTrajectory[i - 1].second);
    }
}

TEST(Engine, DeterministicWithSameSeed)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 20;
    cfg.maxGenerations = 3;
    cfg.maxSeconds = 30.0;
    cfg.seed = 1234;
    auto e1 = sc.engine("tb", "dut", cfg);
    auto e2 = sc.engine("tb", "dut", cfg);
    RepairResult r1 = e1.run();
    RepairResult r2 = e2.run();
    EXPECT_EQ(r1.found, r2.found);
    EXPECT_EQ(r1.patch.describe(), r2.patch.describe());
    EXPECT_EQ(r1.fitnessEvals, r2.fitnessEvals);
}

TEST(Engine, ResourceBoundsRespected)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 10;
    cfg.maxGenerations = 2;
    cfg.maxSeconds = 30.0;
    // Make the defect unfindable by disabling all useful search: one
    // generation of a tiny population rarely repairs; bound respected.
    auto engine = sc.engine("tb", "dut", cfg);
    RepairResult res = engine.run();
    EXPECT_LE(res.generations, 2);
}

TEST(Engine, BruteForceFindsSingleEditRepair)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    auto engine = sc.engine("tb", "dut", cfg);
    BruteForceResult res =
        bruteForceRepair(engine, *sc.faulty, "dut", 30.0, 5);
    EXPECT_TRUE(res.found);
    EXPECT_GT(res.candidatesTried, 0);
}

TEST(Engine, GenerationHookReportsProgress)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 15;
    cfg.maxGenerations = 3;
    cfg.maxSeconds = 30.0;
    cfg.seed = 99991;  // a seed that does not repair during seeding
    std::vector<GenerationStats> log;
    cfg.onGeneration = [&](const GenerationStats &gs) {
        log.push_back(gs);
    };
    auto engine = sc.engine("tb", "dut", cfg);
    RepairResult res = engine.run();
    if (!res.found) {
        // All generations ran: the hook fired once per generation
        // with increasing indices and evaluation counts.
        ASSERT_EQ(log.size(), 3u);
        for (size_t i = 0; i < log.size(); ++i) {
            EXPECT_EQ(log[i].generation, static_cast<int>(i) + 1);
            EXPECT_GE(log[i].bestFitness, 0.0);
            EXPECT_LE(log[i].bestFitness, 1.0);
            if (i > 0) {
                EXPECT_GT(log[i].fitnessEvals,
                          log[i - 1].fitnessEvals);
                EXPECT_GE(log[i].totalMutants,
                          log[i - 1].totalMutants);
            }
        }
        // The hook reports the same cumulative accounting the final
        // result does.
        EXPECT_EQ(log.back().fitnessEvals, res.fitnessEvals);
        EXPECT_EQ(log.back().totalMutants, res.totalMutants);
        EXPECT_EQ(log.back().outcomes.counts, res.outcomes.counts);
        EXPECT_EQ(log.back().cache.hits, res.cache.hits);
        EXPECT_EQ(log.back().cache.misses, res.cache.misses);
    }
    // When the repair lands mid-generation the hook may fire fewer
    // times; either way it must never report out-of-range fitness.
    for (auto &gs : log) {
        EXPECT_GE(gs.bestFitness, 0.0);
        EXPECT_LE(gs.bestFitness, 1.0);
        EXPECT_GE(gs.elapsedSeconds, 0.0);
        EXPECT_LE(gs.outcomes.of(EvalOutcome::Ok),
                  gs.totalMutants + 1);
    }
}

TEST(Engine, ShouldStopCancelsMidGeneration)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 15;
    cfg.maxGenerations = 50;
    cfg.maxSeconds = 120.0;
    cfg.seed = 99991;
    int hooks = 0;
    bool cancel = false;
    // Request the stop after generation 2's hook has fired: the engine
    // must end the run before generation 3 is evaluated.
    cfg.onGeneration = [&](const GenerationStats &) {
        if (++hooks == 2)
            cancel = true;
    };
    cfg.shouldStop = [&] { return cancel; };
    auto engine = sc.engine("tb", "dut", cfg);
    RepairResult res = engine.run();
    if (!res.found) {
        EXPECT_TRUE(res.stopped);
        EXPECT_EQ(hooks, 2);
        EXPECT_EQ(res.generations, 2);
    }
    // A fresh run with shouldStop never firing is unaffected.
    EngineConfig plain = cfg;
    plain.maxGenerations = 2;
    plain.onGeneration = nullptr;
    plain.shouldStop = [] { return false; };
    auto engine2 = sc.engine("tb", "dut", plain);
    EXPECT_FALSE(engine2.run().stopped);
}

TEST(Engine, UniformIndexIsUnbiased)
{
    // Tournament selection previously used rng() % n, which skews
    // toward small indices whenever n does not divide 2^64.
    // uniformIndex() must pass a chi-squared uniformity check on an
    // awkward (non-power-of-two) bucket count.
    constexpr size_t kBuckets = 13;
    constexpr int kDraws = 130000;
    std::mt19937_64 rng(987654321);
    std::vector<long> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i) {
        size_t idx = uniformIndex(rng, kBuckets);
        ASSERT_LT(idx, kBuckets);
        ++counts[idx];
    }
    const double expected =
        static_cast<double>(kDraws) / static_cast<double>(kBuckets);
    double chi2 = 0.0;
    for (long c : counts) {
        double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    // 12 degrees of freedom: the 99.9th percentile of chi^2 is ~32.9.
    // A deterministic seed keeps this stable; a modulo-biased
    // generator over a 13-bucket range drawn from a small word would
    // blow far past this.
    EXPECT_LT(chi2, 32.9);
    // Every bucket was reachable.
    for (long c : counts)
        EXPECT_GT(c, 0);
}

TEST(Engine, UniformIndexCoversFullRangeSmallN)
{
    std::mt19937_64 rng(5);
    std::vector<bool> seen(3, false);
    for (int i = 0; i < 100; ++i)
        seen[uniformIndex(rng, 3)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(Engine, ReportsCacheStatsInResult)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    cfg.popSize = 12;
    cfg.maxGenerations = 2;
    cfg.maxSeconds = 30.0;
    cfg.seed = 42;
    auto engine = sc.engine("tb", "dut", cfg);
    RepairResult res = engine.run();
    // Whatever the outcome, the trial evaluated candidates, so the
    // cache saw traffic, and the result mirrors the engine's stats.
    EXPECT_GT(res.cache.misses, 0);
    EXPECT_EQ(res.cache.hits, engine.cacheStats().hits);
    EXPECT_EQ(res.cache.misses, engine.cacheStats().misses);
    EXPECT_EQ(res.cache.evictions, engine.cacheStats().evictions);
}

TEST(Engine, BruteForceRespectsTimeBudget)
{
    MiniScenario sc(kGoldenToggle, faultyToggle(), "tb");
    EngineConfig cfg;
    auto engine = sc.engine("tb", "dut", cfg);
    BruteForceResult res =
        bruteForceRepair(engine, *sc.faulty, "dut", 0.0, 5);
    EXPECT_FALSE(res.found);
    EXPECT_EQ(res.candidatesTried, 0);
}

} // namespace
