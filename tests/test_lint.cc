/**
 * @file
 * Tests for the semantic lint subsystem: one positive/negative pair
 * per registered check, the fingerprint/waiver machinery behind the
 * mutant pre-screen, golden-lint coverage of the whole benchmark
 * registry (the pre-screen must never reject the correct repair), and
 * the LintReject determinism contract at several thread counts.
 */

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/engine.h"
#include "core/scenario.h"
#include "lint/lint.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::lint;

namespace {

Result
lintSrc(const std::string &src, const Options &opts = {})
{
    auto file = verilog::parse(src);
    return run(*file, opts);
}

/** Unwaived check ids present in a result. */
std::multiset<std::string>
checkIds(const Result &r)
{
    std::multiset<std::string> ids;
    for (auto &d : r.diags)
        if (!d.waived)
            ids.insert(d.check);
    return ids;
}

bool
has(const Result &r, const std::string &check)
{
    return checkIds(r).count(check) > 0;
}

// ------------------------------------------------------------------
// Registry
// ------------------------------------------------------------------

TEST(LintRegistry, TenChecksWithUniqueIds)
{
    auto &reg = checkRegistry();
    EXPECT_EQ(reg.size(), 10u);
    std::set<std::string> ids;
    for (auto &c : reg) {
        EXPECT_TRUE(ids.insert(c.id).second) << c.id;
        EXPECT_NE(std::string(c.summary), "");
    }
    // Error severity is reserved for doomed designs; the pre-screen
    // rejects on these, so adding one is a semantic decision.
    std::set<std::string> errors;
    for (auto &c : reg)
        if (c.defaultSeverity == Severity::Error)
            errors.insert(c.id);
    EXPECT_EQ(errors, (std::set<std::string>{
                          "multi-driven-net", "comb-loop",
                          "empty-sens"}));
}

// ------------------------------------------------------------------
// Per-check positives and negatives
// ------------------------------------------------------------------

TEST(LintChecks, MultiDrivenNet)
{
    Result r = lintSrc(R"(
module m(input a, input b, output y);
    assign y = a;
    assign y = b;
endmodule
)");
    EXPECT_TRUE(has(r, "multi-driven-net"));
    EXPECT_EQ(r.errors, 1);

    Result clean = lintSrc(
        "module m(input a, output y); assign y = a; endmodule");
    EXPECT_FALSE(has(clean, "multi-driven-net"));
    EXPECT_EQ(clean.errors, 0);
}

TEST(LintChecks, MultiDrivenReg)
{
    Result r = lintSrc(R"(
module m(input clk);
    reg q;
    always @(posedge clk) q <= 1'b1;
    always @(posedge clk) q <= 1'b0;
endmodule
)");
    EXPECT_TRUE(has(r, "multi-driven-reg"));

    Result clean = lintSrc(R"(
module m(input clk);
    reg q;
    always @(posedge clk) q <= !q;
endmodule
)");
    EXPECT_FALSE(has(clean, "multi-driven-reg"));
}

TEST(LintChecks, MixedAssign)
{
    Result r = lintSrc(R"(
module m(input clk, input d);
    reg q;
    always @(posedge clk) begin
        q = d;
        q <= d;
    end
endmodule
)");
    EXPECT_TRUE(has(r, "mixed-assign"));

    Result clean = lintSrc(R"(
module m(input clk, input d);
    reg q;
    always @(posedge clk) q <= d;
endmodule
)");
    EXPECT_FALSE(has(clean, "mixed-assign"));
}

TEST(LintChecks, DuplicateDecl)
{
    Result r = lintSrc("module m; wire w; wire w; endmodule");
    EXPECT_TRUE(has(r, "duplicate-decl"));

    Result clean = lintSrc("module m; wire w; wire x; endmodule");
    EXPECT_FALSE(has(clean, "duplicate-decl"));
}

TEST(LintChecks, CombLoop)
{
    Result r = lintSrc(R"(
module m;
    wire a, b;
    assign a = ~b;
    assign b = ~a;
endmodule
)");
    EXPECT_TRUE(has(r, "comb-loop"));
    EXPECT_GE(r.errors, 1);

    Result clean = lintSrc(R"(
module m(input x);
    wire a, b;
    assign a = ~x;
    assign b = ~a;
endmodule
)");
    EXPECT_FALSE(has(clean, "comb-loop"));
}

TEST(LintChecks, EmptySensitivity)
{
    // The parser cannot produce an empty event list from source, so
    // mutate the AST the same way a mutation operator could.
    auto file = verilog::parse(
        "module m; reg q; always @(q) q <= !q; endmodule");
    for (auto &it : file->modules[0]->items)
        if (it->kind == verilog::NodeKind::AlwaysBlock)
            it->as<verilog::AlwaysBlock>()
                ->body->as<verilog::EventCtrl>()
                ->events.clear();
    Result r = run(*file);
    EXPECT_TRUE(has(r, "empty-sens"));
    EXPECT_EQ(r.errors, 1);

    Result clean = lintSrc(
        "module m; reg q; always @(q) q <= !q; endmodule");
    EXPECT_FALSE(has(clean, "empty-sens"));
}

TEST(LintChecks, IncompleteSensitivity)
{
    Result r = lintSrc(R"(
module m(input a, input b, output reg y);
    always @(a) y = a & b;
endmodule
)");
    EXPECT_TRUE(has(r, "incomplete-sens"));

    Result clean = lintSrc(R"(
module m(input a, input b, output reg y);
    always @(a or b) y = a & b;
endmodule
)");
    EXPECT_FALSE(has(clean, "incomplete-sens"));
}

TEST(LintChecks, IncompleteSensitivityIgnoresBlockComputedReads)
{
    // `t` is written before it is read inside the same block — it is
    // an intermediate, not an input, and must not appear in the
    // missing-signal set (regression: sha3's theta/chi temporaries).
    Result r = lintSrc(R"(
module m(input a, output reg y);
    reg t;
    always @(a) begin
        t = ~a;
        y = t;
    end
endmodule
)");
    EXPECT_FALSE(has(r, "incomplete-sens"));
}

TEST(LintChecks, InferredLatch)
{
    Result r = lintSrc(R"(
module m(input en, input d, output reg q);
    always @(*) begin
        if (en)
            q = d;
    end
endmodule
)");
    EXPECT_TRUE(has(r, "inferred-latch"));

    Result clean = lintSrc(R"(
module m(input en, input d, output reg q);
    always @(*) begin
        if (en)
            q = d;
        else
            q = 1'b0;
    end
endmodule
)");
    EXPECT_FALSE(has(clean, "inferred-latch"));
}

TEST(LintChecks, ForLoopCounterClean)
{
    // Loop control executes a bounded number of times per delta cycle:
    // the counter is neither a combinational feedback loop nor a latch
    // nor a missing sensitivity (regression: sha3's `for (i = ...)`).
    Result r = lintSrc(R"(
module m(input [3:0] d, output reg [3:0] y);
    integer i;
    always @(*) begin
        for (i = 0; i < 4; i = i + 1)
            y[i] = ~d[i];
    end
endmodule
)");
    EXPECT_FALSE(has(r, "comb-loop"));
    EXPECT_FALSE(has(r, "inferred-latch"));
    EXPECT_FALSE(has(r, "incomplete-sens"));
    EXPECT_EQ(r.errors, 0);
}

TEST(LintChecks, WidthMismatch)
{
    Result r = lintSrc(R"(
module m(input [7:0] a, output y);
    assign y = a;
endmodule
)");
    EXPECT_TRUE(has(r, "width-mismatch"));

    Result clean = lintSrc(R"(
module m(input [7:0] a, output [7:0] y);
    assign y = a;
endmodule
)");
    EXPECT_FALSE(has(clean, "width-mismatch"));
}

TEST(LintChecks, WidthMismatchArrayElementWidth)
{
    // `mem[addr]` selects an 8-bit element, not one bit of a vector —
    // storing an 8-bit value is exact (regression: ahb memories).
    Result r = lintSrc(R"(
module m(input clk, input [7:0] d, input [3:0] addr);
    reg [7:0] mem [0:15];
    always @(posedge clk) mem[addr] <= d;
endmodule
)");
    EXPECT_FALSE(has(r, "width-mismatch"));
}

TEST(LintChecks, DeadCode)
{
    Result r = lintSrc(R"(
module m;
    initial begin
        if (1'b0)
            $display("never");
    end
endmodule
)");
    EXPECT_TRUE(has(r, "dead-code"));

    Result after_finish = lintSrc(R"(
module m;
    initial begin
        $finish;
        $display("never");
    end
endmodule
)");
    EXPECT_TRUE(has(after_finish, "dead-code"));

    Result clean = lintSrc(R"(
module m(input c);
    initial begin
        if (c)
            $display("maybe");
        $finish;
    end
endmodule
)");
    EXPECT_FALSE(has(clean, "dead-code"));
}

// ------------------------------------------------------------------
// Severity overrides and waivers
// ------------------------------------------------------------------

TEST(LintOptions, SeverityOverridePromotesAndDisables)
{
    const std::string src = R"(
module m(input [7:0] a, output y);
    assign y = a;
endmodule
)";
    Result def = lintSrc(src);
    EXPECT_EQ(def.errors, 0);
    EXPECT_GE(def.warnings, 1);

    Options promote;
    promote.overrides["width-mismatch"] = Severity::Error;
    Result err = lintSrc(src, promote);
    EXPECT_GE(err.errors, 1);

    Options off;
    off.overrides["width-mismatch"] = Severity::Off;
    Result none = lintSrc(src, off);
    EXPECT_FALSE(has(none, "width-mismatch"));
    EXPECT_EQ(none.warnings, 0);
}

TEST(LintOptions, WaiverWildcardsMatchByPrecision)
{
    const std::string src = R"(
module m(input [7:0] a, output y);
    assign y = a;
endmodule
)";
    for (Waiver w : {Waiver{"width-mismatch", "", ""},
                     Waiver{"width-mismatch", "m", ""},
                     Waiver{"width-mismatch", "m", "y"}}) {
        Options opts;
        opts.waivers.push_back(w);
        Result r = lintSrc(src, opts);
        ASSERT_EQ(r.diags.size(), 1u);
        EXPECT_TRUE(r.diags[0].waived);
        EXPECT_EQ(r.warnings, 0);
    }
    // A waiver naming a different module/signal must not match.
    for (Waiver w : {Waiver{"width-mismatch", "other", ""},
                     Waiver{"width-mismatch", "m", "a"}}) {
        Options opts;
        opts.waivers.push_back(w);
        Result r = lintSrc(src, opts);
        EXPECT_EQ(r.warnings, 1);
    }
}

TEST(LintOptions, ParseWaivers)
{
    auto ws = parseWaivers(
        "# comment\n"
        "\n"
        "inferred-latch\n"
        "width-mismatch tb\n"
        "mixed-assign tb data  # trailing comment\n");
    ASSERT_EQ(ws.size(), 3u);
    EXPECT_EQ(ws[0].check, "inferred-latch");
    EXPECT_EQ(ws[0].module, "");
    EXPECT_EQ(ws[1].module, "tb");
    EXPECT_EQ(ws[2].signal, "data");

    EXPECT_THROW(parseWaivers("no-such-check\n"), std::runtime_error);
    EXPECT_THROW(parseWaivers("inferred-latch a b extra\n"),
                 std::runtime_error);
}

// ------------------------------------------------------------------
// Fingerprint and newErrorCount (the pre-screen primitive)
// ------------------------------------------------------------------

TEST(LintFingerprint, SpanFreeAndErrorsOnly)
{
    Result a = lintSrc(
        "module m(input a, input b, output y);\n"
        "assign y = a;\nassign y = b;\nendmodule\n");
    // Same defect, shifted several lines down: identical fingerprint.
    Result b = lintSrc(
        "\n\n\n\nmodule m(input a, input b, output y);\n"
        "assign y = a;\nassign y = b;\nendmodule\n");
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    ASSERT_EQ(fingerprint(a).size(), 1u);
    EXPECT_EQ(fingerprint(a).begin()->first, "multi-driven-net|m|y");

    // Warning-severity findings never enter the fingerprint.
    Result warn = lintSrc(
        "module m(input [7:0] a, output y); assign y = a; endmodule");
    EXPECT_GE(warn.warnings, 1);
    EXPECT_TRUE(fingerprint(warn).empty());
}

TEST(LintFingerprint, NewErrorCountDiffsAgainstBaseline)
{
    Result broken = lintSrc(
        "module m(input a, input b, output y);\n"
        "assign y = a;\nassign y = b;\nendmodule\n");

    // Pre-existing wart: baseline multiplicity absorbs it.
    EXPECT_EQ(newErrorCount(fingerprint(broken), broken), 0);

    // Fresh error vs a clean baseline: counted, message surfaced.
    std::string msg;
    EXPECT_EQ(newErrorCount({}, broken, &msg), 1);
    EXPECT_NE(msg.find("y"), std::string::npos);

    // Clean candidate vs broken baseline: fixing a wart is free.
    Result clean = lintSrc(
        "module m(input a, output y); assign y = a; endmodule");
    EXPECT_EQ(newErrorCount(fingerprint(broken), clean), 0);
}

TEST(LintRender, TextAndJsonCarryTheDiagnostic)
{
    Result r = lintSrc(
        "module m(input a, input b, output y);\n"
        "assign y = a;\nassign y = b;\nendmodule\n");
    std::string text = renderText(r);
    EXPECT_NE(text.find("[multi-driven-net]"), std::string::npos);
    EXPECT_NE(text.find("error"), std::string::npos);
    EXPECT_NE(text.find("1 error(s)"), std::string::npos);

    std::string json = renderJson(r);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"check\": \"multi-driven-net\""),
              std::string::npos);
    EXPECT_NE(json.find("\"signal\": \"y\""), std::string::npos);
    EXPECT_NE(json.find("\"waived\": false"), std::string::npos);
}

// ------------------------------------------------------------------
// Golden-lint coverage of the benchmark registry
// ------------------------------------------------------------------

/** Every golden design (with its testbench) lints clean. */
TEST(GoldenLint, GoldenDesignsAreClean)
{
    for (const core::ProjectSpec &p : bench::allProjects()) {
        auto file = verilog::parse(p.goldenSource + "\n" +
                                   p.testbenchSource);
        Result r = run(*file);
        EXPECT_EQ(r.errors, 0) << p.name << ":\n" << renderText(r);
        EXPECT_EQ(r.warnings, 0) << p.name << ":\n" << renderText(r);
    }
}

/**
 * The pre-screen contract over all 32 seeded defects: with the faulty
 * design as baseline, the *correct repair* (the golden source) never
 * introduces a new error-severity finding — i.e. the lint gate can
 * never reject the patch the search is looking for.
 */
TEST(GoldenLint, PrescreenNeverRejectsTheCorrectRepair)
{
    size_t defects = 0;
    for (const core::DefectSpec &d : bench::allDefects()) {
        const core::ProjectSpec &p = bench::getProject(d.project);
        auto faulty = verilog::parse(
            core::applyRewrites(p.goldenSource, d.rewrites) + "\n" +
            p.testbenchSource);
        Fingerprint baseline = fingerprint(run(*faulty));

        auto golden = verilog::parse(p.goldenSource + "\n" +
                                     p.testbenchSource);
        std::string msg;
        EXPECT_EQ(newErrorCount(baseline, run(*golden), &msg), 0)
            << d.id << ": " << msg;
        ++defects;
    }
    EXPECT_EQ(defects, bench::allDefects().size());
    EXPECT_GE(defects, 32u);
}

// ------------------------------------------------------------------
// LintReject determinism in the repair loop
// ------------------------------------------------------------------

/**
 * With the pre-screen on, a trial that actually rejects candidates
 * must still be bit-identical for a given seed at any thread count —
 * including the lintRejects counter itself.
 */
TEST(LintPrescreen, RejectionIsDeterministicAcrossThreadCounts)
{
    const core::ProjectSpec &p = bench::getProject("flip_flop");
    const core::DefectSpec &d =
        bench::getDefect("flipflop_conditional");
    core::Scenario sc = core::buildScenario(p, d);

    core::EngineConfig cfg;
    cfg.popSize = 20;
    cfg.maxGenerations = 6;
    cfg.offspringPerGen = 40;
    cfg.seed = 7;
    cfg.maxSeconds = 1e9;
    cfg.earlyAbort = true;

    std::vector<core::RepairResult> results;
    for (int threads : {1, 4, 8}) {
        core::EngineConfig c = cfg;
        c.numThreads = threads;
        core::RepairEngine engine = sc.makeEngine(c);
        results.push_back(engine.run());
    }

    const core::RepairResult &ref = results[0];
    // The scenario is chosen because its mutants readily manufacture
    // zero-delay feedback loops; a zero here means the pre-screen
    // stopped doing anything and the test lost its subject.
    EXPECT_GT(ref.lintRejects, 0);
    for (size_t i = 1; i < results.size(); ++i) {
        const core::RepairResult &r = results[i];
        EXPECT_EQ(r.found, ref.found);
        EXPECT_EQ(r.patch.key(), ref.patch.key());
        EXPECT_EQ(r.repairedSource, ref.repairedSource);
        EXPECT_EQ(r.generations, ref.generations);
        EXPECT_EQ(r.fitnessEvals, ref.fitnessEvals);
        EXPECT_EQ(r.totalMutants, ref.totalMutants);
        EXPECT_EQ(r.invalidMutants, ref.invalidMutants);
        EXPECT_EQ(r.lintRejects, ref.lintRejects);
        EXPECT_EQ(r.earlyAborts, ref.earlyAborts);
        EXPECT_EQ(r.fitnessTrajectory, ref.fitnessTrajectory);
    }
}

/** Turning the pre-screen off must not change the repair itself. */
TEST(LintPrescreen, OffAndOnAgreeOnTheRepair)
{
    const core::ProjectSpec &p = bench::getProject("flip_flop");
    const core::DefectSpec &d =
        bench::getDefect("flipflop_conditional");
    core::Scenario sc = core::buildScenario(p, d);

    core::EngineConfig cfg;
    cfg.popSize = 20;
    cfg.maxGenerations = 6;
    cfg.offspringPerGen = 40;
    cfg.seed = 7;
    cfg.maxSeconds = 1e9;
    cfg.earlyAbort = true;
    cfg.numThreads = 4;

    core::EngineConfig off_cfg = cfg;
    off_cfg.lintPrescreen = false;

    core::RepairEngine on_engine = sc.makeEngine(cfg);
    core::RepairResult on = on_engine.run();
    core::RepairEngine off_engine = sc.makeEngine(off_cfg);
    core::RepairResult off = off_engine.run();

    EXPECT_GT(on.lintRejects, 0);
    EXPECT_EQ(off.lintRejects, 0);
    EXPECT_EQ(on.found, off.found);
    EXPECT_EQ(on.patch.key(), off.patch.key());
    EXPECT_EQ(on.repairedSource, off.repairedSource);
    EXPECT_EQ(on.generations, off.generations);
    EXPECT_DOUBLE_EQ(on.finalFitness.fitness, off.finalFitness.fitness);
}

} // namespace
