/**
 * @file
 * Exit-code contract of the cirfix CLI, asserted against the real
 * binary (CIRFIX_CLI_BIN is injected by CMake):
 *
 *   0  repair found / command succeeded
 *   1  lint found errors (or warnings under --Werror)
 *   2  no repair within the resource budget
 *   3  usage error (bad flags, unknown subcommand, unknown job)
 *   4  internal error (unreadable files, malformed designs)
 *   5  --timeout expired before the server answered
 *
 * Scripts and the CI harness depend on these staying stable.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace {

#ifndef CIRFIX_CLI_BIN
#error "CIRFIX_CLI_BIN must point at the cirfix binary"
#endif

std::string
tmpFile(const std::string &name, const std::string &content)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream os(path);
    os << content;
    return path;
}

/** Run the CLI with @p args, discarding output; returns the exit
 *  code (or -1 if the process died on a signal). */
int
runCli(const std::string &args)
{
    std::string cmd = std::string(CIRFIX_CLI_BIN) + " " + args +
                      " > /dev/null 2>&1";
    int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

const char *kGolden = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
)";

const char *kTestbench = R"(
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

std::string
faultyDesign()
{
    std::string s = std::string(kGolden) + kTestbench;
    s.replace(s.find("rst == 1'b1"), 11, "rst != 1'b1");
    return s;
}

TEST(CliExitCodes, HelpSucceeds)
{
    EXPECT_EQ(runCli("--help"), 0);
    EXPECT_EQ(runCli("help"), 0);
}

TEST(CliExitCodes, UsageErrorsExitThree)
{
    EXPECT_EQ(runCli(""), 3);                       // no subcommand
    EXPECT_EQ(runCli("frobnicate"), 3);             // unknown command
    EXPECT_EQ(runCli("repair"), 3);                 // missing flags
    EXPECT_EQ(runCli("repair --design"), 3);        // flag needs value
    EXPECT_EQ(runCli("serve --socket s --state-dir d "
                     "--workers banana"),
              3);                                   // non-numeric flag
    // Missing oracle/golden choice is a usage error, not an I/O one.
    std::string design = tmpFile("cli_u.v", faultyDesign());
    EXPECT_EQ(
        runCli("repair --design " + design + " --tb tb --dut dut"), 3);
}

TEST(CliExitCodes, InternalErrorsExitFour)
{
    // Unreadable input file.
    EXPECT_EQ(runCli("repair --design /nonexistent/x.v --tb tb "
                     "--dut dut --golden /nonexistent/g.v"),
              4);
    // Design that does not parse.
    std::string bad = tmpFile("cli_bad.v", "module; endmodule garbage");
    std::string golden = tmpFile("cli_g1.v", kGolden);
    EXPECT_EQ(runCli("repair --design " + bad + " --tb tb --dut dut "
                     "--golden " + golden),
              4);
    // Client commands against a daemon that is not there.
    EXPECT_EQ(runCli("status --socket /nonexistent/sock --id 1"), 4);
}

TEST(CliExitCodes, RepairFoundExitsZero)
{
    std::string design = tmpFile("cli_f.v", faultyDesign());
    std::string golden = tmpFile("cli_g2.v", kGolden);
    std::string out = ::testing::TempDir() + "cli_repaired.v";
    EXPECT_EQ(runCli("repair --design " + design + " --tb tb "
                     "--dut dut --golden " + golden +
                     " --pop 20 --gens 6 --seed 42 --trials 1 "
                     "--out " + out),
              0);
    std::ifstream repaired(out);
    EXPECT_TRUE(repaired.good());
}

TEST(CliExitCodes, LintCleanExitsZero)
{
    std::string clean = tmpFile(
        "cli_lint_clean.v",
        "module m(input a, output y); assign y = a; endmodule\n");
    EXPECT_EQ(runCli("lint " + clean), 0);
    EXPECT_EQ(runCli("lint --Werror " + clean), 0);
    EXPECT_EQ(runCli("lint --json " + clean), 0);
}

TEST(CliExitCodes, LintErrorsExitOne)
{
    std::string broken = tmpFile(
        "cli_lint_broken.v",
        "module m(input a, input b, output y);\n"
        "assign y = a;\nassign y = b;\nendmodule\n");
    EXPECT_EQ(runCli("lint " + broken), 1);
    EXPECT_EQ(runCli("lint --json " + broken), 1);

    // Warning-only designs pass by default, fail under --Werror, and
    // pass again when the finding is waived.
    std::string warn = tmpFile(
        "cli_lint_warn.v",
        "module m(input [7:0] a, output y); assign y = a; endmodule\n");
    EXPECT_EQ(runCli("lint " + warn), 0);
    EXPECT_EQ(runCli("lint --Werror " + warn), 1);
    std::string waivers =
        tmpFile("cli_lint.waivers", "width-mismatch m y\n");
    EXPECT_EQ(runCli("lint --Werror --waivers " + waivers + " " + warn),
              0);
}

TEST(CliExitCodes, LintUsageErrorsExitThree)
{
    EXPECT_EQ(runCli("lint"), 3);                    // no input files
    std::string clean = tmpFile(
        "cli_lint_u.v",
        "module m(input a, output y); assign y = a; endmodule\n");
    EXPECT_EQ(runCli("lint --check nope=error " + clean), 3);
    EXPECT_EQ(runCli("lint --check width-mismatch=loud " + clean), 3);
    // Unreadable input is an internal error, not usage.
    EXPECT_EQ(runCli("lint /nonexistent/x.v"), 4);
}

TEST(CliExitCodes, TimeoutExitsFive)
{
    // A Unix listener that never accepts: the CLI's connect succeeds
    // against the backlog, then the handshake read hits the --timeout
    // deadline. That must be exit code 5 — distinct from 4 (internal),
    // so scripts can tell "server slow/wedged" from "server absent".
    std::string path = ::testing::TempDir() + "cli_mute_" +
                       std::to_string(::getpid()) + ".sock";
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                     sizeof(sa)),
              0);
    ASSERT_EQ(::listen(fd, 8), 0);

    EXPECT_EQ(runCli("list --socket " + path + " --timeout 0.2"), 5);
    EXPECT_EQ(runCli("list --connect unix:" + path + " --timeout 0.2"),
              5);
    // A negative timeout is a usage error, not a timeout.
    EXPECT_EQ(runCli("list --socket " + path + " --timeout -1"), 3);

    ::close(fd);
    ::unlink(path.c_str());
}

TEST(CliExitCodes, BudgetExhaustedExitsTwo)
{
    // A starved search (population 2, one generation, one trial)
    // cannot repair the double-defect design: budget exhaustion.
    std::string s = faultyDesign();
    s.replace(s.find("q <= !q"), 7, "q <= q");
    std::string design = tmpFile("cli_hard.v", s);
    std::string golden = tmpFile("cli_g3.v", kGolden);
    EXPECT_EQ(runCli("repair --design " + design + " --tb tb "
                     "--dut dut --golden " + golden +
                     " --pop 2 --gens 1 --seed 1 --trials 1"),
              2);
}

} // namespace
