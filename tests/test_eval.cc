/**
 * @file
 * Expression evaluation tests: operators, 4-state semantics, selects,
 * memories, parameters, and system functions, evaluated against
 * elaborated designs.
 */

#include <gtest/gtest.h>

#include "sim/elaborate.h"
#include "sim/eval.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::sim;
using namespace cirfix::verilog;

namespace {

/**
 * Elaborate "module t; <body> wire [..] __w; assign __w = <expr>;",
 * run the initial blocks, and evaluate <expr> in the settled scope.
 */
class EvalHarness
{
  public:
    EvalHarness(const std::string &body, const std::string &expr)
    {
        std::string src = "module t;\n" + body +
                          "\n    wire [63:0] __w;\n    assign __w = " +
                          expr + ";\nendmodule\n";
        std::shared_ptr<const SourceFile> file = parse(src);
        for (auto &it : file->modules[0]->items)
            if (it->kind == NodeKind::ContAssign)
                expr_ = it->as<ContAssign>()->rhs.get();
        design_ = elaborate(file, "t");
        design_->run();
    }

    LogicVec
    value()
    {
        return evalExpr(*expr_, design_->top(), *design_);
    }

  private:
    std::unique_ptr<Design> design_;
    const Expr *expr_ = nullptr;
};

LogicVec
evalIn(const std::string &body, const std::string &expr)
{
    EvalHarness h(body, expr);
    return h.value();
}

LogicVec
evalConst_(const std::string &expr)
{
    return evalIn("", expr);
}

TEST(Eval, NumbersAndArithmetic)
{
    EXPECT_EQ(evalConst_("1 + 2").toUint64(), 3u);
    EXPECT_EQ(evalConst_("10 - 3").toUint64(), 7u);
    EXPECT_EQ(evalConst_("6 * 7").toUint64(), 42u);
    EXPECT_EQ(evalConst_("17 / 5").toUint64(), 3u);
    EXPECT_EQ(evalConst_("17 % 5").toUint64(), 2u);
    EXPECT_EQ(evalConst_("2 ** 10").toUint64(), 1024u);
    EXPECT_EQ(evalConst_("-(4'd1)").toString(), "1111");
}

TEST(Eval, WidthRules)
{
    // Binary operators extend to the wider operand.
    EXPECT_EQ(evalConst_("4'hf + 4'h1").toUint64(), 0u);   // wraps at 4
    EXPECT_EQ(evalConst_("4'hf + 8'h01").toUint64(), 16u); // 8 bits
    EXPECT_EQ(evalConst_("2'b11 + 2'b01").toUint64(), 0u);
}

TEST(Eval, SignalReads)
{
    EXPECT_EQ(evalIn("reg [7:0] a; initial a = 8'h2c;", "a").toUint64(),
              0x2cu);
    EXPECT_EQ(
        evalIn("reg [7:0] a; initial a = 8'h2c;", "a + 1").toUint64(),
        0x2du);
    // Undeclared names evaluate to x, not a crash.
    EXPECT_TRUE(evalIn("", "nonexistent").hasUnknown());
}

TEST(Eval, UninitializedRegIsX)
{
    EXPECT_EQ(evalIn("reg [3:0] a;", "a").toString(), "xxxx");
    EXPECT_TRUE(evalIn("reg [3:0] a;", "a + 1").hasUnknown());
}

TEST(Eval, BitAndPartSelects)
{
    std::string body = "reg [7:0] a; initial a = 8'b11010010;";
    EXPECT_EQ(evalIn(body, "a[1]").toUint64(), 1u);
    EXPECT_EQ(evalIn(body, "a[0]").toUint64(), 0u);
    EXPECT_EQ(evalIn(body, "a[7:4]").toString(), "1101");
    EXPECT_EQ(evalIn(body, "a[4:1]").toString(), "1001");
    // Out-of-range select reads x.
    EXPECT_TRUE(evalIn(body, "a[9]").hasUnknown());
    // Variable index.
    EXPECT_EQ(
        evalIn(body + " reg [2:0] i; initial i = 3'd6;", "a[i]")
            .toUint64(),
        1u);
    // Unknown index reads x.
    EXPECT_TRUE(evalIn(body + " reg [2:0] i;", "a[i]").hasUnknown());
}

TEST(Eval, NonZeroLsbRanges)
{
    std::string body = "reg [7:4] a; initial a = 4'b1010;";
    EXPECT_EQ(evalIn(body, "a[7]").toUint64(), 1u);
    EXPECT_EQ(evalIn(body, "a[4]").toUint64(), 0u);
    EXPECT_EQ(evalIn(body, "a[6:5]").toString(), "01");
}

TEST(Eval, MemoryReads)
{
    std::string body =
        "reg [3:0] mem [0:7]; initial begin mem[2] = 4'h9; "
        "mem[5] = 4'h3; end";
    EXPECT_EQ(evalIn(body, "mem[2]").toUint64(), 9u);
    EXPECT_EQ(evalIn(body, "mem[5]").toUint64(), 3u);
    EXPECT_TRUE(evalIn(body, "mem[6]").hasUnknown());   // never written
    EXPECT_TRUE(evalIn(body, "mem[9]").hasUnknown());   // out of range
}

TEST(Eval, Parameters)
{
    std::string body = "parameter P = 12; parameter Q = P * 2;";
    EXPECT_EQ(evalIn(body, "P").toUint64(), 12u);
    EXPECT_EQ(evalIn(body, "Q").toUint64(), 24u);
    EXPECT_EQ(evalIn(body, "P + Q").toUint64(), 36u);
}

TEST(Eval, TernarySemantics)
{
    EXPECT_EQ(evalConst_("1'b1 ? 8'haa : 8'h55").toUint64(), 0xaau);
    EXPECT_EQ(evalConst_("1'b0 ? 8'haa : 8'h55").toUint64(), 0x55u);
    // Ambiguous condition merges branches bitwise.
    EXPECT_EQ(evalConst_("1'bx ? 4'b1100 : 4'b1010").toString(),
              "1xx0");
}

TEST(Eval, LogicalAndRelational)
{
    EXPECT_TRUE(evalConst_("3 < 5").isTrue());
    EXPECT_TRUE(evalConst_("5 <= 5").isTrue());
    EXPECT_TRUE(evalConst_("4'b0101 == 4'b0101").isTrue());
    EXPECT_TRUE(evalConst_("4'b0101 != 4'b0100").isTrue());
    EXPECT_TRUE(evalConst_("1 && 2").isTrue());
    EXPECT_FALSE(evalConst_("1 && 0").isTrue());
    EXPECT_TRUE(evalConst_("0 || 3").isTrue());
    EXPECT_FALSE(evalConst_("!1").isTrue());
    EXPECT_TRUE(evalConst_("4'bxxxx === 4'bxxxx").isTrue());
    EXPECT_FALSE(evalConst_("4'bxxxx == 4'bxxxx").isTrue());
}

TEST(Eval, ReductionAndUnary)
{
    EXPECT_TRUE(evalConst_("&4'b1111").isTrue());
    EXPECT_FALSE(evalConst_("&4'b1101").isTrue());
    EXPECT_TRUE(evalConst_("|4'b0100").isTrue());
    EXPECT_TRUE(evalConst_("^4'b0111").isTrue());
    EXPECT_EQ(evalConst_("~4'b1100").toString(), "0011");
}

TEST(Eval, ConcatRepl)
{
    EXPECT_EQ(evalConst_("{4'b1010, 4'b0101}").toString(), "10100101");
    EXPECT_EQ(evalConst_("{2{3'b101}}").toString(), "101101");
    EXPECT_EQ(evalConst_("{2'b01, {2{1'b1}}, 2'b00}").toString(),
              "011100");
}

TEST(Eval, SystemFunctions)
{
    // $time at the end of an idle run of a module with no delays is 0.
    EXPECT_EQ(evalIn("", "$time").toUint64(), 0u);
    // $random is deterministic per design and 32 bits wide.
    EXPECT_EQ(evalIn("", "$random").width(), 32);
}

TEST(Eval, ConstEval)
{
    std::unordered_map<std::string, LogicVec> params;
    params.emplace("W", LogicVec(32, uint64_t(8)));
    auto file = parse(
        "module m; wire [63:0] w; assign w = W * 2 - 1; endmodule");
    const Expr *e = nullptr;
    for (auto &it : file->modules[0]->items)
        if (it->kind == NodeKind::ContAssign)
            e = it->as<ContAssign>()->rhs.get();
    EXPECT_EQ(evalConst(*e, params).toUint64(), 15u);
    EXPECT_EQ(evalConstInt(*e, params), 15);
    // Unknown identifier in constant context throws.
    auto file2 = parse(
        "module m; wire [63:0] w; assign w = unknown_name; endmodule");
    const Expr *e2 = file2->modules[0]->items.back()
                         ->as<ContAssign>()->rhs.get();
    EXPECT_THROW(evalConst(*e2, params), ElabError);
}

TEST(Eval, WriteTargetsThroughAssignments)
{
    // Exercise resolveLValue/performWrite via initial-block writes.
    std::string body = R"(
    reg [7:0] a;
    reg b;
    reg [3:0] mem [0:3];
    initial begin
        a = 8'h00;
        a[5] = 1'b1;
        a[3:2] = 2'b11;
        {b, a[0]} = 2'b11;
        mem[1] = 4'hc;
    end
)";
    EXPECT_EQ(evalIn(body, "a").toString(), "00101101");
    EXPECT_EQ(evalIn(body, "b").toUint64(), 1u);
    EXPECT_EQ(evalIn(body, "mem[1]").toUint64(), 0xcu);
}

TEST(Eval, OutOfRangeWritesDropped)
{
    std::string body = R"(
    reg [3:0] a;
    reg [1:0] mem [0:1];
    reg [3:0] i;
    initial begin
        a = 4'h0;
        a[9] = 1'b1;
        mem[7] = 2'b11;
        i = 4'hx;
        a[i] = 1'b1;
    end
)";
    EXPECT_EQ(evalIn(body, "a").toString(), "0000");
    EXPECT_TRUE(evalIn(body, "mem[0]").hasUnknown());
}

} // namespace
