/**
 * @file
 * Tests for the edit-list patch representation and its application.
 */

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "core/patch.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;

namespace {

const std::string kSrc = R"(
module m (clk, q);
    input clk;
    output [3:0] q;
    reg [3:0] q;
    reg [3:0] shadow;
    always @(posedge clk) begin
        q <= q + 4'd1;
        shadow <= q;
    end
endmodule
)";

struct Ids
{
    int first_assign = -1;
    int second_assign = -1;
    int block = -1;

    explicit Ids(SourceFile &f)
    {
        visitAll(f, [&](Node &n) {
            if (n.kind == NodeKind::Assign) {
                if (first_assign < 0)
                    first_assign = n.id;
                else if (second_assign < 0)
                    second_assign = n.id;
            }
            if (n.kind == NodeKind::SeqBlock && block < 0)
                block = n.id;
        });
    }
};

StmtPtr
parseDonor(const std::string &stmt_src)
{
    auto f = parse("module d; reg [3:0] q; initial " + stmt_src +
                   " endmodule");
    auto *blk = f->modules[0]->items.back()->as<InitialBlock>();
    return blk->body->cloneStmt();
}

TEST(Patch, EmptyPatchIsOriginal)
{
    auto orig = parse(kSrc);
    auto copy = applyPatch(*orig, Patch{});
    EXPECT_EQ(print(*orig), print(*copy));
}

TEST(Patch, ApplyDoesNotMutateOriginal)
{
    auto orig = parse(kSrc);
    std::string before = print(*orig);
    Ids ids(*orig);
    Patch p;
    Edit e;
    e.kind = EditKind::Delete;
    e.target = ids.first_assign;
    p.edits.push_back(std::move(e));
    auto patched = applyPatch(*orig, p);
    EXPECT_EQ(print(*orig), before);
    EXPECT_NE(print(*patched), before);
}

TEST(Patch, DeleteReplacesWithNull)
{
    auto orig = parse(kSrc);
    Ids ids(*orig);
    Patch p;
    Edit e;
    e.kind = EditKind::Delete;
    e.target = ids.first_assign;
    p.edits.push_back(std::move(e));
    int applied = 0;
    auto patched = applyPatch(*orig, p, &applied);
    EXPECT_EQ(applied, 1);
    EXPECT_EQ(findNode(*patched, ids.first_assign), nullptr);
    // Structure is preserved: the block still has two statements.
    auto *blk = findNode(*patched, ids.block)->as<SeqBlock>();
    EXPECT_EQ(blk->stmts.size(), 2u);
    EXPECT_EQ(blk->stmts[0]->kind, NodeKind::NullStmt);
}

TEST(Patch, ReplaceClonesDonorWithFreshIds)
{
    auto orig = parse(kSrc);
    Ids ids(*orig);
    Patch p;
    Edit e;
    e.kind = EditKind::Replace;
    e.target = ids.second_assign;
    e.code = parseDonor("q <= 4'd9;");
    p.edits.push_back(std::move(e));
    auto patched = applyPatch(*orig, p);
    auto *blk = findNode(*patched, ids.block)->as<SeqBlock>();
    auto *repl = blk->stmts[1]->as<Assign>();
    EXPECT_EQ(printExpr(*repl->rhs), "4'd9");
    // Fresh id beyond the original numbering.
    EXPECT_GE(repl->id, orig->nextId);
}

TEST(Patch, InsertAfterInBlock)
{
    auto orig = parse(kSrc);
    Ids ids(*orig);
    Patch p;
    Edit e;
    e.kind = EditKind::InsertAfter;
    e.target = ids.first_assign;
    e.code = parseDonor("q <= 4'd0;");
    p.edits.push_back(std::move(e));
    auto patched = applyPatch(*orig, p);
    auto *blk = findNode(*patched, ids.block)->as<SeqBlock>();
    ASSERT_EQ(blk->stmts.size(), 3u);
    EXPECT_EQ(printExpr(*blk->stmts[1]->as<Assign>()->rhs), "4'd0");
}

TEST(Patch, MissingTargetSkipsEdit)
{
    auto orig = parse(kSrc);
    Patch p;
    Edit e;
    e.kind = EditKind::Delete;
    e.target = 424242;
    p.edits.push_back(std::move(e));
    int applied = -1;
    auto patched = applyPatch(*orig, p, &applied);
    EXPECT_EQ(applied, 0);
    EXPECT_EQ(print(*orig), print(*patched));
}

TEST(Patch, EditsApplyInOrderAndCanChain)
{
    // The second edit targets a node created by the first (the fresh
    // numbering is deterministic).
    auto orig = parse(kSrc);
    Ids ids(*orig);
    Patch p;
    Edit ins;
    ins.kind = EditKind::InsertAfter;
    ins.target = ids.first_assign;
    ins.code = parseDonor("q <= 4'd5;");
    p.edits.push_back(std::move(ins));
    // Find the fresh id the insertion will get by applying once.
    auto probe = applyPatch(*orig, p);
    int inserted_id = -1;
    auto *blk = findNode(*probe, ids.block)->as<SeqBlock>();
    inserted_id = blk->stmts[1]->id;
    // Now chain a template on the inserted statement's literal.
    int num_id = -1;
    visitAll(*blk->stmts[1], [&](Node &n) {
        if (n.kind == NodeKind::Number)
            num_id = n.id;
    });
    ASSERT_GE(num_id, 0);
    Edit tmpl;
    tmpl.kind = EditKind::Template;
    tmpl.tmpl = TemplateKind::DecrementValue;
    tmpl.target = num_id;
    p.edits.push_back(std::move(tmpl));
    auto patched = applyPatch(*orig, p);
    auto *blk2 = findNode(*patched, ids.block)->as<SeqBlock>();
    EXPECT_EQ(blk2->stmts[1]->id, inserted_id);  // deterministic ids
    EXPECT_EQ(printExpr(*blk2->stmts[1]->as<Assign>()->rhs), "4'd4");
}

TEST(Patch, DeterministicReapplication)
{
    auto orig = parse(kSrc);
    Ids ids(*orig);
    Patch p;
    for (int round = 0; round < 2; ++round) {
        Edit e;
        e.kind = EditKind::InsertAfter;
        e.target = ids.second_assign;
        e.code = parseDonor("q <= 4'd3;");
        p.edits.push_back(std::move(e));
    }
    auto a = applyPatch(*orig, p);
    auto b = applyPatch(*orig, p);
    EXPECT_EQ(print(*a), print(*b));
    EXPECT_EQ(a->nextId, b->nextId);
}

TEST(Patch, CopySemanticsDeepCopyDonor)
{
    Edit e;
    e.kind = EditKind::Replace;
    e.target = 1;
    e.code = parseDonor("q <= 4'd1;");
    Edit copy = e;
    EXPECT_NE(copy.code.get(), e.code.get());
    EXPECT_EQ(copy.target, e.target);
    Patch p;
    p.edits.push_back(e);
    Patch q = p;  // patch copy via Edit's copy ctor
    EXPECT_EQ(q.edits.size(), 1u);
    EXPECT_NE(q.edits[0].code.get(), p.edits[0].code.get());
}

TEST(Patch, Describe)
{
    Patch p;
    Edit e1;
    e1.kind = EditKind::Delete;
    e1.target = 7;
    p.edits.push_back(std::move(e1));
    Edit e2;
    e2.kind = EditKind::Template;
    e2.tmpl = TemplateKind::SensitivityPosedge;
    e2.target = 3;
    e2.param = "clk";
    p.edits.push_back(std::move(e2));
    EXPECT_EQ(p.describe(),
              "delete@7; template[sensitivity-posedge]@3(clk)");
    EXPECT_STREQ(editKindName(EditKind::InsertAfter), "insert-after");
}

TEST(Patch, TargetsInsideControlStructures)
{
    auto orig = parse(R"(
module m;
    reg [3:0] q;
    reg clk;
    always @(posedge clk) begin
        if (q == 4'd3)
            q <= 4'd0;
        else
            case (q)
                4'd1 : q <= 4'd2;
                default : q <= q + 4'd1;
            endcase
    end
endmodule
)");
    // Delete the assignment inside the case default arm.
    int target = -1;
    visitAll(*orig, [&](Node &n) {
        if (n.kind == NodeKind::Case) {
            auto *c = n.as<Case>();
            for (auto &item : c->items)
                if (item.labels.empty())
                    target = item.body->id;
        }
    });
    ASSERT_GE(target, 0);
    Patch p;
    Edit e;
    e.kind = EditKind::Delete;
    e.target = target;
    p.edits.push_back(std::move(e));
    int applied = 0;
    auto patched = applyPatch(*orig, p, &applied);
    EXPECT_EQ(applied, 1);
    EXPECT_EQ(findNode(*patched, target), nullptr);
}

// ------------------------------------------------------------------
// Patch::key() — the fitness-cache fingerprint
// ------------------------------------------------------------------

/** Build a randomized edit; donors come from a fixed pool. */
Edit
randomEdit(std::mt19937_64 &rng)
{
    static const char *donors[] = {
        "q <= 4'd1;", "q = q + 4'd2;", "shadow <= q;",
        "begin q <= 4'd0; shadow <= 4'd7; end",
    };
    Edit e;
    switch (rng() % 4) {
      case 0:
        e.kind = EditKind::Delete;
        break;
      case 1:
        e.kind = EditKind::Replace;
        e.code = parseDonor(donors[rng() % 4]);
        break;
      case 2:
        e.kind = EditKind::InsertAfter;
        e.code = parseDonor(donors[rng() % 4]);
        break;
      default:
        e.kind = EditKind::Template;
        e.tmpl = static_cast<TemplateKind>(rng() % 9);
        if (rng() % 2)
            e.param = (rng() % 2) ? "clk" : "rst";
        break;
    }
    e.target = static_cast<int>(rng() % 50);
    return e;
}

Patch
randomPatch(std::mt19937_64 &rng)
{
    Patch p;
    size_t len = 1 + rng() % 4;
    for (size_t i = 0; i < len; ++i)
        p.edits.push_back(randomEdit(rng));
    return p;
}

TEST(PatchKey, EqualEditListsHashEqual)
{
    std::mt19937_64 rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        Patch p = randomPatch(rng);
        Patch copy = p;  // deep-copies donor code
        EXPECT_EQ(p.key(), copy.key());
    }
}

TEST(PatchKey, KeyIsStableAcrossCalls)
{
    std::mt19937_64 rng(7);
    Patch p = randomPatch(rng);
    EXPECT_EQ(p.key(), p.key());
}

TEST(PatchKey, TargetPerturbationChangesKey)
{
    std::mt19937_64 rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        Patch p = randomPatch(rng);
        Patch q = p;
        size_t i = rng() % q.edits.size();
        q.edits[i].target += 1;
        EXPECT_NE(p.key(), q.key()) << "trial " << trial;
    }
}

TEST(PatchKey, KindPerturbationChangesKey)
{
    std::mt19937_64 rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        Patch p = randomPatch(rng);
        Patch q = p;
        size_t i = rng() % q.edits.size();
        Edit &e = q.edits[i];
        // Delete <-> Replace-with-null-free-code is the cleanest
        // same-payload kind flip; for code-bearing kinds swap the
        // insert/replace pair so the payload stays identical.
        switch (e.kind) {
          case EditKind::Delete:
            e.kind = EditKind::Template;
            e.tmpl = TemplateKind::NegateConditional;
            e.param.clear();
            break;
          case EditKind::Replace:
            e.kind = EditKind::InsertAfter;
            break;
          case EditKind::InsertAfter:
            e.kind = EditKind::Replace;
            break;
          case EditKind::Template:
            e.kind = EditKind::Delete;
            break;
        }
        EXPECT_NE(p.key(), q.key()) << "trial " << trial;
    }
}

TEST(PatchKey, PayloadPerturbationChangesKey)
{
    // Donor-code payload.
    Patch a, b;
    Edit ea;
    ea.kind = EditKind::Replace;
    ea.target = 3;
    ea.code = parseDonor("q <= 4'd1;");
    a.edits.push_back(std::move(ea));
    Edit eb;
    eb.kind = EditKind::Replace;
    eb.target = 3;
    eb.code = parseDonor("q <= 4'd2;");
    b.edits.push_back(std::move(eb));
    EXPECT_NE(a.key(), b.key());

    // Template-kind payload.
    Patch c, d;
    Edit ec;
    ec.kind = EditKind::Template;
    ec.target = 3;
    ec.tmpl = TemplateKind::IncrementValue;
    c.edits.push_back(std::move(ec));
    Edit ed;
    ed.kind = EditKind::Template;
    ed.target = 3;
    ed.tmpl = TemplateKind::DecrementValue;
    d.edits.push_back(std::move(ed));
    EXPECT_NE(c.key(), d.key());

    // Template-parameter payload.
    Patch f, g;
    Edit ef;
    ef.kind = EditKind::Template;
    ef.target = 3;
    ef.tmpl = TemplateKind::SensitivityPosedge;
    ef.param = "clk";
    f.edits.push_back(std::move(ef));
    Edit eg;
    eg.kind = EditKind::Template;
    eg.target = 3;
    eg.tmpl = TemplateKind::SensitivityPosedge;
    eg.param = "rst";
    g.edits.push_back(std::move(eg));
    EXPECT_NE(f.key(), g.key());
}

TEST(PatchKey, EditListOrderAndLengthMatter)
{
    Edit del;
    del.kind = EditKind::Delete;
    del.target = 4;
    Edit tmpl;
    tmpl.kind = EditKind::Template;
    tmpl.target = 9;
    tmpl.tmpl = TemplateKind::NegateConditional;

    Patch ab, ba, a;
    ab.edits = {del, tmpl};
    ba.edits = {tmpl, del};
    a.edits = {del};
    EXPECT_NE(ab.key(), ba.key());
    EXPECT_NE(ab.key(), a.key());
    EXPECT_NE(Patch{}.key(), a.key());
    EXPECT_EQ(Patch{}.key(), std::string());
}

TEST(PatchKey, NoCollisionsAcrossRandomizedPatches)
{
    // Distinct random patches should (essentially always) have
    // distinct keys; the key is an exact canonical encoding, so the
    // only allowed equal-key pairs are structurally equal edit lists.
    std::mt19937_64 rng(1234);
    std::map<std::string, std::string> seen;  // key -> describe()
    int collisions = 0;
    for (int trial = 0; trial < 500; ++trial) {
        Patch p = randomPatch(rng);
        auto [it, inserted] = seen.emplace(p.key(), p.describe());
        if (!inserted && it->second != p.describe())
            ++collisions;
    }
    EXPECT_EQ(collisions, 0);
}

} // namespace
