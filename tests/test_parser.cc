/**
 * @file
 * Unit tests for the Verilog parser.
 */

#include <gtest/gtest.h>

#include "verilog/parser.h"

using namespace cirfix::verilog;

namespace {

std::unique_ptr<Module>
parseModule(const std::string &body)
{
    auto file = parse("module m;\n" + body + "\nendmodule\n");
    EXPECT_EQ(file->modules.size(), 1u);
    return std::move(file->modules[0]);
}

/** First statement of the first always block in the module. */
const Stmt *
alwaysBody(const Module &m)
{
    for (auto &it : m.items)
        if (it->kind == NodeKind::AlwaysBlock)
            return it->as<AlwaysBlock>()->body.get();
    return nullptr;
}

TEST(Parser, EmptyModule)
{
    auto file = parse("module top; endmodule");
    ASSERT_EQ(file->modules.size(), 1u);
    EXPECT_EQ(file->modules[0]->name, "top");
    EXPECT_TRUE(file->modules[0]->ports.empty());
}

TEST(Parser, TraditionalPorts)
{
    auto file = parse(R"(
module m (clk, q);
    input clk;
    output [3:0] q;
    reg [3:0] q;
endmodule
)");
    const Module &m = *file->modules[0];
    ASSERT_EQ(m.ports.size(), 2u);
    EXPECT_EQ(m.ports[0].name, "clk");
    EXPECT_EQ(*m.portDir("clk"), PortDir::Input);
    EXPECT_EQ(*m.portDir("q"), PortDir::Output);
    EXPECT_FALSE(m.portDir("nope").has_value());
}

TEST(Parser, AnsiPorts)
{
    auto file = parse(
        "module m (input wire clk, input [1:0] sel, "
        "output reg [3:0] q, r); endmodule");
    const Module &m = *file->modules[0];
    ASSERT_EQ(m.ports.size(), 4u);
    EXPECT_EQ(*m.portDir("sel"), PortDir::Input);
    EXPECT_EQ(*m.portDir("q"), PortDir::Output);
    EXPECT_EQ(*m.portDir("r"), PortDir::Output);
    const VarDecl *q = m.findDecl("q");
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->varKind, VarKind::Reg);
    ASSERT_NE(q->msb, nullptr);
}

TEST(Parser, Declarations)
{
    auto m = parseModule(R"(
    wire a, b;
    reg [7:0] r = 8'hff;
    integer i;
    event e;
    parameter P = 4;
    localparam Q = P + 1;
    reg [3:0] mem [0:15];
)");
    EXPECT_NE(m->findDecl("a"), nullptr);
    EXPECT_NE(m->findDecl("b"), nullptr);
    const VarDecl *r = m->findDecl("r");
    ASSERT_NE(r, nullptr);
    EXPECT_NE(r->init, nullptr);
    EXPECT_EQ(m->findDecl("i")->varKind, VarKind::Integer);
    EXPECT_EQ(m->findDecl("P")->varKind, VarKind::Parameter);
    EXPECT_EQ(m->findDecl("Q")->varKind, VarKind::Localparam);
    const VarDecl *mem = m->findDecl("mem");
    ASSERT_NE(mem, nullptr);
    EXPECT_NE(mem->arrayFirst, nullptr);
}

TEST(Parser, ContinuousAssignList)
{
    auto m = parseModule("wire a, b, c;\nassign a = b, c = a;");
    int count = 0;
    for (auto &it : m->items)
        count += it->kind == NodeKind::ContAssign;
    EXPECT_EQ(count, 2);
}

TEST(Parser, AlwaysWithSensitivity)
{
    auto m = parseModule(R"(
    reg q; wire clk, rst;
    always @(posedge clk or negedge rst)
        q <= 1'b0;
)");
    const Stmt *body = alwaysBody(*m);
    ASSERT_NE(body, nullptr);
    ASSERT_EQ(body->kind, NodeKind::EventCtrl);
    auto *ec = body->as<EventCtrl>();
    ASSERT_EQ(ec->events.size(), 2u);
    EXPECT_EQ(ec->events[0].edge, Edge::Pos);
    EXPECT_EQ(ec->events[1].edge, Edge::Neg);
    ASSERT_NE(ec->stmt, nullptr);
    EXPECT_EQ(ec->stmt->kind, NodeKind::Assign);
    EXPECT_FALSE(ec->stmt->as<Assign>()->blocking);
}

TEST(Parser, AlwaysStarForms)
{
    auto m1 = parseModule("reg q; wire a;\nalways @* q = a;");
    EXPECT_TRUE(alwaysBody(*m1)->as<EventCtrl>()->star);
    auto m2 = parseModule("reg q; wire a;\nalways @(*) q = a;");
    EXPECT_TRUE(alwaysBody(*m2)->as<EventCtrl>()->star);
}

TEST(Parser, NamedBlocks)
{
    auto m = parseModule(R"(
    reg q; wire clk;
    always @(posedge clk)
    begin : MYBLOCK
        q <= 1'b1;
    end
)");
    auto *ec = alwaysBody(*m)->as<EventCtrl>();
    ASSERT_EQ(ec->stmt->kind, NodeKind::SeqBlock);
    EXPECT_EQ(ec->stmt->as<SeqBlock>()->name, "MYBLOCK");
}

TEST(Parser, IfElseChain)
{
    auto m = parseModule(R"(
    reg q; wire a, b;
    always @(a or b)
        if (a == 1'b1) q = 1'b0;
        else if (b) q = 1'b1;
        else q = 1'bx;
)");
    auto *ec = alwaysBody(*m)->as<EventCtrl>();
    ASSERT_EQ(ec->stmt->kind, NodeKind::If);
    auto *i = ec->stmt->as<If>();
    ASSERT_NE(i->elseStmt, nullptr);
    EXPECT_EQ(i->elseStmt->kind, NodeKind::If);
    EXPECT_NE(i->elseStmt->as<If>()->elseStmt, nullptr);
}

TEST(Parser, CaseStatement)
{
    auto m = parseModule(R"(
    reg [1:0] s; reg q;
    always @(s)
        case (s)
            2'b00, 2'b01 : q = 1'b0;
            2'b10 : begin q = 1'b1; end
            default : q = 1'bx;
        endcase
)");
    auto *c = alwaysBody(*m)->as<EventCtrl>()->stmt->as<Case>();
    ASSERT_EQ(c->items.size(), 3u);
    EXPECT_EQ(c->items[0].labels.size(), 2u);
    EXPECT_TRUE(c->items[2].labels.empty());  // default
    EXPECT_EQ(c->type, CaseType::Case);
}

TEST(Parser, CasezCasex)
{
    auto m = parseModule(R"(
    reg [1:0] s; reg q;
    always @(s) begin
        casez (s) 2'b1? : q = 1'b1; default : q = 1'b0; endcase
        casex (s) 2'bx1 : q = 1'b1; default : q = 1'b0; endcase
    end
)");
    auto *blk =
        alwaysBody(*m)->as<EventCtrl>()->stmt->as<SeqBlock>();
    EXPECT_EQ(blk->stmts[0]->as<Case>()->type, CaseType::CaseZ);
    EXPECT_EQ(blk->stmts[1]->as<Case>()->type, CaseType::CaseX);
}

TEST(Parser, Loops)
{
    auto m = parseModule(R"(
    integer i; reg [7:0] q;
    initial begin
        for (i = 0; i < 8; i = i + 1) q = q + 1;
        while (q > 0) q = q - 1;
        repeat (4) q = q + 2;
        forever q = q;
    end
)");
    auto *blk = m->items.back()->as<InitialBlock>()
                    ->body->as<SeqBlock>();
    EXPECT_EQ(blk->stmts[0]->kind, NodeKind::For);
    EXPECT_EQ(blk->stmts[1]->kind, NodeKind::While);
    EXPECT_EQ(blk->stmts[2]->kind, NodeKind::Repeat);
    EXPECT_EQ(blk->stmts[3]->kind, NodeKind::Forever);
}

TEST(Parser, DelaysAndIntraAssignmentDelay)
{
    auto m = parseModule(R"(
    reg q;
    initial begin
        #5 q = 1'b0;
        #10;
        q <= #1 1'b1;
        q = #2 1'b0;
    end
)");
    auto *blk = m->items.back()->as<InitialBlock>()
                    ->body->as<SeqBlock>();
    ASSERT_EQ(blk->stmts[0]->kind, NodeKind::DelayStmt);
    EXPECT_NE(blk->stmts[0]->as<DelayStmt>()->stmt, nullptr);
    EXPECT_EQ(blk->stmts[1]->as<DelayStmt>()->stmt, nullptr);
    auto *nba = blk->stmts[2]->as<Assign>();
    EXPECT_FALSE(nba->blocking);
    EXPECT_NE(nba->delay, nullptr);
    auto *ba = blk->stmts[3]->as<Assign>();
    EXPECT_TRUE(ba->blocking);
    EXPECT_NE(ba->delay, nullptr);
}

TEST(Parser, EventControlsAndTrigger)
{
    auto m = parseModule(R"(
    event go; reg q; wire clk;
    initial begin
        @(go);
        @(posedge clk) q = 1'b1;
        -> go;
    end
)");
    auto *blk = m->items.back()->as<InitialBlock>()
                    ->body->as<SeqBlock>();
    EXPECT_EQ(blk->stmts[0]->kind, NodeKind::EventCtrl);
    EXPECT_EQ(blk->stmts[0]->as<EventCtrl>()->stmt, nullptr);
    EXPECT_EQ(blk->stmts[2]->kind, NodeKind::TriggerEvent);
    EXPECT_EQ(blk->stmts[2]->as<TriggerEvent>()->name, "go");
}

TEST(Parser, WaitStatement)
{
    auto m = parseModule(R"(
    wire busy; reg q;
    initial begin
        wait (busy == 1'b0);
        wait (busy) q = 1'b1;
    end
)");
    auto *blk = m->items.back()->as<InitialBlock>()
                    ->body->as<SeqBlock>();
    EXPECT_EQ(blk->stmts[0]->kind, NodeKind::Wait);
    EXPECT_EQ(blk->stmts[0]->as<Wait>()->stmt, nullptr);
    EXPECT_NE(blk->stmts[1]->as<Wait>()->stmt, nullptr);
}

TEST(Parser, SysTasks)
{
    auto m = parseModule(R"(
    reg q;
    initial begin
        $display("q=%b at %t", q, $time);
        $finish;
    end
)");
    auto *blk = m->items.back()->as<InitialBlock>()
                    ->body->as<SeqBlock>();
    auto *disp = blk->stmts[0]->as<SysTask>();
    EXPECT_EQ(disp->name, "$display");
    ASSERT_TRUE(disp->format.has_value());
    EXPECT_EQ(disp->args.size(), 2u);
    EXPECT_EQ(disp->args[1]->kind, NodeKind::SysFuncCall);
    EXPECT_EQ(blk->stmts[1]->as<SysTask>()->name, "$finish");
}

TEST(Parser, LValueForms)
{
    auto m = parseModule(R"(
    reg [7:0] a; reg b; reg [3:0] mem [0:3]; wire [1:0] i;
    initial begin
        a = 8'h00;
        a[3] = 1'b1;
        a[7:4] = 4'hf;
        {a[0], b} = 2'b10;
        mem[i] = 4'h5;
    end
)");
    auto *blk = m->items.back()->as<InitialBlock>()
                    ->body->as<SeqBlock>();
    EXPECT_EQ(blk->stmts[0]->as<Assign>()->lhs->kind, NodeKind::Ident);
    EXPECT_EQ(blk->stmts[1]->as<Assign>()->lhs->kind, NodeKind::Index);
    EXPECT_EQ(blk->stmts[2]->as<Assign>()->lhs->kind,
              NodeKind::RangeSel);
    EXPECT_EQ(blk->stmts[3]->as<Assign>()->lhs->kind, NodeKind::Concat);
    EXPECT_EQ(blk->stmts[4]->as<Assign>()->lhs->kind, NodeKind::Index);
}

TEST(Parser, ExpressionPrecedence)
{
    auto m = parseModule(R"(
    wire [7:0] a, b, c; wire q;
    assign q = a + b * c == c && a < b || !q;
)");
    const ContAssign *ca = nullptr;
    for (auto &it : m->items)
        if (it->kind == NodeKind::ContAssign)
            ca = it->as<ContAssign>();
    ASSERT_NE(ca, nullptr);
    // Top node must be || (lowest precedence).
    ASSERT_EQ(ca->rhs->kind, NodeKind::Binary);
    EXPECT_EQ(ca->rhs->as<Binary>()->op, BinaryOp::LogOr);
    // Left of || is &&.
    EXPECT_EQ(ca->rhs->as<Binary>()->lhs->as<Binary>()->op,
              BinaryOp::LogAnd);
}

TEST(Parser, TernaryRightAssociative)
{
    auto m = parseModule(R"(
    wire a, b; wire [1:0] q;
    assign q = a ? 2'b00 : b ? 2'b01 : 2'b10;
)");
    const ContAssign *ca = m->items.back()->as<ContAssign>();
    ASSERT_EQ(ca->rhs->kind, NodeKind::Ternary);
    EXPECT_EQ(ca->rhs->as<Ternary>()->elseExpr->kind,
              NodeKind::Ternary);
}

TEST(Parser, ConcatReplicationSelects)
{
    auto m = parseModule(R"(
    wire [7:0] a; wire [15:0] q;
    assign q = {a[7:4], {2{a[0]}}, a, 2'b01};
)");
    const ContAssign *ca = m->items.back()->as<ContAssign>();
    ASSERT_EQ(ca->rhs->kind, NodeKind::Concat);
    auto *cc = ca->rhs->as<Concat>();
    ASSERT_EQ(cc->parts.size(), 4u);
    EXPECT_EQ(cc->parts[0]->kind, NodeKind::RangeSel);
    EXPECT_EQ(cc->parts[1]->kind, NodeKind::Repl);
}

TEST(Parser, Instances)
{
    auto file = parse(R"(
module child (input a, output y);
endmodule
module top;
    wire a, y1, y2;
    child c1 (.a(a), .y(y1));
    child c2 (a, y2);
    child c3 (.a(1'b1), .y());
endmodule
)");
    Module *top = file->findModule("top");
    ASSERT_NE(top, nullptr);
    std::vector<const Instance *> insts;
    for (auto &it : top->items)
        if (it->kind == NodeKind::Instance)
            insts.push_back(it->as<Instance>());
    ASSERT_EQ(insts.size(), 3u);
    EXPECT_EQ(insts[0]->conns[0].port, "a");
    EXPECT_TRUE(insts[1]->conns[0].port.empty());
    EXPECT_EQ(insts[2]->conns[1].expr, nullptr);
}

TEST(Parser, NodeNumberingIsDense)
{
    auto file = parse("module m; reg a; initial a = 1'b0; endmodule");
    int count = 0;
    int max_id = -1;
    visitAll(*file, [&](Node &n) {
        ++count;
        max_id = std::max(max_id, n.id);
        EXPECT_GE(n.id, 0);
    });
    EXPECT_EQ(max_id, count - 1);
    EXPECT_EQ(file->nextId, count);
}

TEST(Parser, Errors)
{
    EXPECT_THROW(parse("module"), ParseError);
    EXPECT_THROW(parse("module m; initial begin endmodule"),
                 ParseError);
    EXPECT_THROW(parse("module m; assign = 1; endmodule"), ParseError);
    EXPECT_THROW(parse("module m; wire w; w; endmodule"), ParseError);
    EXPECT_THROW(parse("garbage"), ParseError);
}

TEST(Parser, MultipleModules)
{
    auto file = parse(R"(
module a; endmodule
module b; endmodule
module c; endmodule
)");
    EXPECT_EQ(file->modules.size(), 3u);
    EXPECT_NE(file->findModule("b"), nullptr);
    EXPECT_EQ(file->findModule("zzz"), nullptr);
}

} // namespace
