/**
 * @file
 * Compiled cycle-based backend tests: differential equivalence against
 * the event-driven reference over the full benchmark suite (every
 * golden project and every defect variant), directed 4-state fallback
 * coverage, counter plumbing through the engine, and repair-result
 * identity across backends.
 */

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/scenario.h"
#include "sim/difftest.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;

namespace {

std::shared_ptr<const verilog::SourceFile>
parseTogether(const std::string &dut, const std::string &tb)
{
    return std::shared_ptr<const verilog::SourceFile>(
        verilog::parse(dut + "\n" + tb));
}

sim::DiffResult
diffProject(const ProjectSpec &p, const std::string &dutSource)
{
    auto file = parseTogether(dutSource, p.testbenchSource);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, p.tbModule);
    return sim::diffBackends(file, p.tbModule, probe);
}

} // namespace

// Every golden design must produce bit-identical samples under both
// backends.  The mismatch string is the minimized reproducer.
TEST(CompiledEquivalence, AllProjectsBitIdentical)
{
    for (const ProjectSpec &p : bench::allProjects()) {
        SCOPED_TRACE("project=" + p.name);
        sim::DiffResult r = diffProject(p, p.goldenSource);
        EXPECT_TRUE(r.match) << r.mismatch;
        EXPECT_GT(r.eventTrace.rows().size(), 0u);
    }
}

// Every defect variant too: repair-time simulation runs faulty
// mutants, so equivalence on golden designs alone is not enough.
TEST(CompiledEquivalence, AllDefectsBitIdentical)
{
    for (const DefectSpec &d : bench::allDefects()) {
        SCOPED_TRACE("defect=" + d.id);
        const ProjectSpec &p = bench::getProject(d.project);
        std::string faulty = applyRewrites(p.goldenSource, d.rewrites);
        sim::DiffResult r = diffProject(p, faulty);
        EXPECT_TRUE(r.match) << r.mismatch;
    }
}

// At least part of the suite must actually exercise the compiled path:
// a backend that falls back everywhere would pass equivalence
// vacuously.
TEST(CompiledEquivalence, SuiteExercisesCompiledPath)
{
    uint64_t compiled = 0, twoState = 0;
    for (const ProjectSpec &p : bench::allProjects()) {
        sim::DiffResult r = diffProject(p, p.goldenSource);
        compiled += r.stats.modulesCompiled;
        twoState += r.stats.twoStateEvals;
    }
    EXPECT_GT(compiled, 0u);
    EXPECT_GT(twoState, 0u);
}

namespace {

// Small DUT whose datapath goes through add/sub/xor-reduce: x inputs
// force the compiled backend off the two-state fast path.
const char *kFourStateDut = R"(
module fsdut(clk, a, b, y, p);
  input clk;
  input [7:0] a;
  input [7:0] b;
  output reg [7:0] y;
  output p;
  wire [7:0] s;
  assign s = a + b;
  assign p = ^s;
  always @(posedge clk)
    y <= s - 8'd1;
endmodule
)";

const char *kFourStateTb = R"(
module fstb;
  reg clk;
  reg [7:0] a;
  reg [7:0] b;
  wire [7:0] y;
  wire p;
  fsdut dut(.clk(clk), .a(a), .b(b), .y(y), .p(p));
  initial begin
    clk = 0;
    a = 8'bxxxxxxxx;
    b = 8'd3;
    #20 a = 8'd10;
    #20 b = 8'bzzzzzzzz;
    #20 b = 8'd250;
    #20 $finish;
  end
  always #5 clk = ~clk;
endmodule
)";

} // namespace

// x/z inputs must route evaluation through the 4-state fallback while
// keeping samples bit-identical, and the fallbacks must be counted.
TEST(CompiledFourState, FallbackIsCountedAndBitIdentical)
{
    auto file = parseTogether(kFourStateDut, kFourStateTb);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*file, "fstb");
    sim::DiffResult r = sim::diffBackends(file, "fstb", probe);
    EXPECT_TRUE(r.match) << r.mismatch;
    EXPECT_EQ(r.stats.modulesCompiled, 1u);
    EXPECT_GT(r.stats.fourStateFallbacks, 0u)
        << "x/z inputs never left the two-state fast path";
    EXPECT_GT(r.stats.twoStateEvals, 0u)
        << "defined inputs never reached the two-state fast path";
    // The recorded samples themselves must contain x's (the fallback
    // produced real 4-state values, not zeros).
    bool sawUnknown = false;
    for (const auto &row : r.compiledTrace.rows())
        for (const auto &v : row.values)
            sawUnknown = sawUnknown || v.hasUnknown();
    EXPECT_TRUE(sawUnknown);
}

// Backend selection must thread through EngineConfig: a compiled-
// backend repair run reports nonzero compiled counters in its result
// and per-generation stats.
TEST(CompiledEngine, CountersFlowThroughRepairResult)
{
    const DefectSpec &d = bench::getDefect("counter_sensitivity");
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);

    EngineConfig cfg;
    cfg.popSize = 20;
    cfg.maxGenerations = 2;
    cfg.maxSeconds = 20.0;
    cfg.seed = 7;
    cfg.backend = sim::SimBackend::Compiled;
    sim::CompiledStats lastGen;
    cfg.onGeneration = [&](const GenerationStats &gs) {
        lastGen = gs.compiled;
    };

    RepairEngine engine = sc.makeEngine(cfg);
    RepairResult res = engine.run();
    EXPECT_GT(lastGen.modulesCompiled + lastGen.modulesFallback, 0u)
        << "generation stats never carried compiled counters";
    EXPECT_GT(res.compiled.modulesCompiled + res.compiled.modulesFallback, 0u)
        << "no elaboration consulted the compiled backend";
    EXPECT_GT(res.compiled.twoStateEvals + res.compiled.fourStateFallbacks,
              0u);
}

// The tentpole acceptance bar: same seed, same scenario, the repair
// outcome (patch fingerprint, generation count, eval count) must be
// identical under both backends.
TEST(CompiledEngine, RepairResultIdenticalAcrossBackends)
{
    const DefectSpec &d = bench::getDefect("counter_sensitivity");
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);

    auto runWith = [&](sim::SimBackend backend) {
        EngineConfig cfg;
        cfg.popSize = 60;
        cfg.maxGenerations = 6;
        cfg.maxSeconds = 30.0;
        cfg.seed = 42;
        cfg.backend = backend;
        RepairEngine engine = sc.makeEngine(cfg);
        return engine.run();
    };

    RepairResult ev = runWith(sim::SimBackend::Event);
    RepairResult cp = runWith(sim::SimBackend::Compiled);

    EXPECT_EQ(ev.found, cp.found);
    EXPECT_EQ(ev.patch.key(), cp.patch.key());
    EXPECT_EQ(ev.generations, cp.generations);
    EXPECT_EQ(ev.fitnessEvals, cp.fitnessEvals);
    EXPECT_EQ(ev.finalFitness.fitness, cp.finalFitness.fitness);
}
