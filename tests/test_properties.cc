/**
 * @file
 * Cross-cutting property tests:
 *
 *  - differential testing of the two expression evaluation paths
 *    (evalConst vs evalExpr through an elaborated design) on randomly
 *    generated constant expressions;
 *  - random single-template mutants always re-parse after printing
 *    (the printer/parser round trip holds under mutation);
 *  - randomly generated patches applied to benchmark designs are
 *    deterministic and never corrupt the original tree;
 *  - the 4-state edge-detection table agrees with the IEEE intuition
 *    under exhaustive enumeration.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "benchmarks/registry.h"
#include "core/mutation.h"
#include "core/templates.h"
#include "sim/elaborate.h"
#include "sim/eval.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

using namespace cirfix;
using namespace cirfix::sim;
using namespace cirfix::verilog;

namespace {

/** Generate a random constant expression as source text. */
std::string
randomConstExpr(std::mt19937_64 &rng, int depth)
{
    auto literal = [&]() {
        std::ostringstream os;
        switch (rng() % 3) {
          case 0:
            os << (rng() % 256);
            break;
          case 1:
            os << "8'd" << (rng() % 256);
            break;
          default: {
            os << "4'b";
            for (int i = 0; i < 4; ++i)
                os << "01xz"[rng() % (depth == 0 ? 2 : 4)];
            break;
          }
        }
        return os.str();
    };
    if (depth <= 0 || rng() % 3 == 0)
        return literal();
    static const char *binops[] = {"+",  "-",  "*",  "&",  "|",
                                   "^",  "<<", ">>", "==", "!=",
                                   "<",  ">",  "&&", "||"};
    static const char *unops[] = {"~", "!", "-", "&", "|", "^"};
    switch (rng() % 4) {
      case 0:
        return "(" + randomConstExpr(rng, depth - 1) + " " +
               binops[rng() % 14] + " " +
               randomConstExpr(rng, depth - 1) + ")";
      case 1:
        return std::string(unops[rng() % 6]) + "(" +
               randomConstExpr(rng, depth - 1) + ")";
      case 2:
        return "{" + randomConstExpr(rng, depth - 1) + ", " +
               randomConstExpr(rng, depth - 1) + "}";
      default:
        return "(" + randomConstExpr(rng, depth - 1) + " ? " +
               randomConstExpr(rng, depth - 1) + " : " +
               randomConstExpr(rng, depth - 1) + ")";
    }
}

class EvalDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EvalDifferential, ConstAndRuntimeEvaluationAgree)
{
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 60; ++trial) {
        std::string expr_src = randomConstExpr(rng, 3);
        std::string src = "module t; wire [63:0] w; assign w = " +
                          expr_src + "; endmodule";
        std::shared_ptr<const SourceFile> file;
        ASSERT_NO_THROW(file = parse(src)) << expr_src;
        const Expr *e = nullptr;
        for (auto &it : file->modules[0]->items)
            if (it->kind == NodeKind::ContAssign)
                e = it->as<ContAssign>()->rhs.get();
        ASSERT_NE(e, nullptr);

        std::unordered_map<std::string, LogicVec> no_params;
        LogicVec via_const = evalConst(*e, no_params);

        auto design = elaborate(file, "t");
        design->run();
        LogicVec via_runtime =
            evalExpr(*e, design->top(), *design);

        EXPECT_TRUE(via_const.identical(via_runtime))
            << expr_src << "\n  const:   " << via_const.toString()
            << "\n  runtime: " << via_runtime.toString();

        // And the continuous assign committed the resized value.
        SignalRef w = design->findSignal("w");
        ASSERT_NE(w.sig, nullptr);
        EXPECT_TRUE(w.sig->value().identical(via_const.resized(64)))
            << expr_src;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalDifferential,
                         ::testing::Values(101u, 202u, 303u, 404u));

class MutantRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MutantRoundTrip, RandomTemplateMutantsReparse)
{
    const core::ProjectSpec &p = bench::getProject(GetParam());
    auto file = parse(p.goldenSource + "\n" + p.testbenchSource);
    const Module *dut = file->findModule(p.dutModule);
    ASSERT_NE(dut, nullptr);
    auto sites = core::enumerateTemplateSites(*dut, nullptr);
    ASSERT_FALSE(sites.empty());
    std::mt19937_64 rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        const core::TemplateSite &site = sites[rng() % sites.size()];
        core::Patch patch;
        core::Edit e;
        e.kind = core::EditKind::Template;
        e.tmpl = site.kind;
        e.target = site.target;
        e.param = site.param;
        patch.edits.push_back(std::move(e));
        auto mutant = core::applyPatch(*file, patch);
        std::string printed = print(*mutant);
        EXPECT_NO_THROW(parse(printed))
            << "template " << core::templateName(site.kind) << " @"
            << site.target << " broke printing:\n"
            << printed;
    }
}

INSTANTIATE_TEST_SUITE_P(Projects, MutantRoundTrip,
                         ::testing::Values("counter", "fsm_full",
                                           "sha3", "i2c",
                                           "sdram_controller"));

class MutationDeterminism : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MutationDeterminism, RandomPatchesApplyDeterministically)
{
    const core::ProjectSpec &p = bench::getProject("fsm_full");
    auto file = parse(p.goldenSource + "\n" + p.testbenchSource);
    const Module *dut = file->findModule(p.dutModule);
    std::string original = print(*file);

    std::unordered_set<int> fl;
    visitAll(*const_cast<Module *>(dut),
             [&](Node &n) { fl.insert(n.id); });

    std::mt19937_64 rng(GetParam());
    core::Mutator mut(rng, core::MutationConfig{});
    core::Patch patch;
    for (int i = 0; i < 5; ++i) {
        // Grow the patch against the *current* mutant, as the engine
        // does, so later edits may reference fresh node ids.
        auto current = core::applyPatch(*file, patch);
        const Module *cur_dut = current->findModule(p.dutModule);
        auto e = mut.mutate(*current, *cur_dut, fl);
        if (!e)
            continue;
        patch.edits.push_back(std::move(*e));
        auto a = core::applyPatch(*file, patch);
        auto b = core::applyPatch(*file, patch);
        EXPECT_EQ(print(*a), print(*b)) << patch.describe();
        EXPECT_EQ(a->nextId, b->nextId);
    }
    // The original tree was never mutated in place.
    EXPECT_EQ(print(*file), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationDeterminism,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(EdgeTable, ExhaustiveFourStateTransitions)
{
    // IEEE 1364: posedge covers transitions toward 1 (0->1, 0->x/z,
    // x/z->1); negedge mirrors; level fires on any change.
    const Bit bits[] = {Bit::Zero, Bit::One, Bit::X, Bit::Z};
    auto rank = [](Bit b) {
        return b == Bit::Zero ? 0 : b == Bit::One ? 2 : 1;
    };
    for (Bit from : bits) {
        for (Bit to : bits) {
            bool change = from != to;
            EXPECT_EQ(edgeMatches(Edge::Level, from, to), change);
            EXPECT_EQ(edgeMatches(Edge::Pos, from, to),
                      change && rank(to) > rank(from));
            EXPECT_EQ(edgeMatches(Edge::Neg, from, to),
                      change && rank(to) < rank(from));
            // posedge and negedge are mutually exclusive.
            EXPECT_FALSE(edgeMatches(Edge::Pos, from, to) &&
                         edgeMatches(Edge::Neg, from, to));
        }
    }
}

TEST(OracleProperty, GoldenDesignsAlwaysScorePerfect)
{
    // For every project: the golden design evaluated against its own
    // recorded oracle is plausible, under both phi values.
    for (const core::ProjectSpec &p : bench::allProjects()) {
        Trace oracle = core::recordGoldenTrace(p, false);
        Trace again = core::recordGoldenTrace(p, false);
        // Simulation is deterministic.
        ASSERT_EQ(oracle.size(), again.size()) << p.name;
        for (double phi : {1.0, 2.0, 3.0}) {
            core::FitnessParams fp;
            fp.phi = phi;
            auto fit = core::evaluateFitness(again, oracle, fp);
            EXPECT_TRUE(fit.plausible()) << p.name << " phi=" << phi;
        }
    }
}

} // namespace
