/**
 * @file
 * Fault-injection tests for the failure-containment layer: every way a
 * candidate evaluation can die (runaway, wall-clock stall, injected
 * crash, allocation failure, memory budget) must degrade to a
 * worst-fitness Variant with the right EvalOutcome — never an
 * exception out of the engine — and a full repair run over such
 * candidates must finish every generation and report the outcomes.
 */

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/evaloutcome.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;
using sim::ProbeConfig;
using sim::TraceRecorder;

namespace {

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    auto pos = s.find("rst == 1'b1");
    s.replace(pos, 11, "rst != 1'b1");
    return s;
}

struct MiniScenario
{
    std::shared_ptr<const SourceFile> faulty;
    ProbeConfig probe;
    Trace oracle;

    MiniScenario()
    {
        std::shared_ptr<const SourceFile> golden =
            parse(kGoldenToggle);
        probe = sim::deriveProbeConfig(*golden, "tb");
        auto design = sim::elaborate(golden, "tb");
        TraceRecorder rec(*design, probe);
        design->run();
        oracle = rec.takeTrace();
        faulty = parse(faultyToggle());
    }

    RepairEngine
    engine(EngineConfig cfg) const
    {
        return RepairEngine(faulty, "tb", "dut", probe, oracle, cfg);
    }
};

// ------------------------------------------------------------------
// Single-evaluation containment: each injected failure mode maps to
// its EvalOutcome and a worst-fitness (valid=false, fitness 0) result.
// ------------------------------------------------------------------

TEST(FaultInjection, InjectedThrowDegradesToCrashedWorstFitness)
{
    MiniScenario sc;
    EngineConfig cfg;
    cfg.faultPlan.throwAtStmt = 5;
    auto engine = sc.engine(cfg);
    Variant v = engine.evaluate(Patch{});
    EXPECT_EQ(v.outcome, EvalOutcome::Crashed);
    EXPECT_FALSE(v.valid);
    EXPECT_DOUBLE_EQ(v.fit.fitness, 0.0);
    EXPECT_NE(v.error.find("injected fault"), std::string::npos)
        << v.error;
    EXPECT_EQ(engine.outcomes().of(EvalOutcome::Crashed), 1);
}

TEST(FaultInjection, InjectedStallReapedByDeadlineWatchdog)
{
    MiniScenario sc;
    EngineConfig cfg;
    cfg.faultPlan.stallAtStmt = 1;   // ~1 ms per statement, no progress
    cfg.evalDeadlineSeconds = 0.05;  // watchdog fires well under a second
    auto engine = sc.engine(cfg);
    Variant v = engine.evaluate(Patch{});
    EXPECT_EQ(v.outcome, EvalOutcome::Deadline);
    EXPECT_FALSE(v.valid);
    EXPECT_DOUBLE_EQ(v.fit.fitness, 0.0);
    EXPECT_EQ(engine.outcomes().of(EvalOutcome::Deadline), 1);
}

TEST(FaultInjection, InjectedAllocationFailureDegradesToOom)
{
    MiniScenario sc;
    EngineConfig cfg;
    cfg.faultPlan.failAllocAt = 2;
    auto engine = sc.engine(cfg);
    Variant v = engine.evaluate(Patch{});
    EXPECT_EQ(v.outcome, EvalOutcome::Oom);
    EXPECT_FALSE(v.valid);
    EXPECT_DOUBLE_EQ(v.fit.fitness, 0.0);
    EXPECT_NE(v.error.find("injected allocation failure"),
              std::string::npos)
        << v.error;
}

TEST(FaultInjection, MemoryBudgetExhaustionDegradesToOom)
{
    MiniScenario sc;
    EngineConfig cfg;
    cfg.evalMemoryBudget = 1;  // nothing elaborates in one byte
    auto engine = sc.engine(cfg);
    Variant v = engine.evaluate(Patch{});
    EXPECT_EQ(v.outcome, EvalOutcome::Oom);
    EXPECT_FALSE(v.valid);
    EXPECT_NE(v.error.find("memory budget exhausted"),
              std::string::npos)
        << v.error;
}

// ------------------------------------------------------------------
// Runaway mutants (statement-budget exhaustion) end-to-end: worst
// fitness, not a throw — through the serial path, the parallel path,
// and a repeat lookup answered by the quarantine.
// ------------------------------------------------------------------

EngineConfig
runawayConfig()
{
    EngineConfig cfg;
    // A statement budget this small makes every candidate (including
    // the unpatched original) a runaway mutant.
    cfg.simLimits.maxStatements = 5;
    cfg.popSize = 8;
    cfg.maxGenerations = 2;
    cfg.maxSeconds = 60.0;
    cfg.seed = 42;
    return cfg;
}

TEST(FaultInjection, RunawayYieldsWorstFitnessNotThrow)
{
    MiniScenario sc;
    auto engine = sc.engine(runawayConfig());
    Variant v;
    ASSERT_NO_THROW(v = engine.evaluate(Patch{}));
    EXPECT_EQ(v.outcome, EvalOutcome::Runaway);
    EXPECT_FALSE(v.valid);
    EXPECT_DOUBLE_EQ(v.fit.fitness, 0.0);
}

TEST(FaultInjection, QuarantineAnswersRepeatLookupWithoutSimulating)
{
    MiniScenario sc;
    auto engine = sc.engine(runawayConfig());
    Variant first = engine.evaluate(Patch{});
    ASSERT_EQ(first.outcome, EvalOutcome::Runaway);
    EXPECT_EQ(engine.quarantineSize(), 1u);
    long misses_after_first = engine.cacheStats().misses;

    Variant again = engine.evaluate(Patch{});
    EXPECT_EQ(again.outcome, EvalOutcome::Runaway);
    EXPECT_FALSE(again.valid);
    EXPECT_DOUBLE_EQ(again.fit.fitness, 0.0);
    // Quarantine short-circuits before the cache: no new miss, no new
    // simulation, and the hit is accounted separately.
    EXPECT_EQ(engine.cacheStats().misses, misses_after_first);
    EXPECT_EQ(engine.outcomes().quarantineHits, 1);
    EXPECT_EQ(engine.outcomes().of(EvalOutcome::Runaway), 1);
}

TEST(FaultInjection, RunawayRunFinishesEveryGenerationSerialAndParallel)
{
    MiniScenario sc;
    std::vector<RepairResult> results;
    for (int threads : {1, 4}) {
        EngineConfig cfg = runawayConfig();
        cfg.numThreads = threads;
        auto engine = sc.engine(cfg);
        RepairResult res;
        ASSERT_NO_THROW(res = engine.run());
        EXPECT_FALSE(res.found);
        EXPECT_EQ(res.generations, cfg.maxGenerations);
        EXPECT_GT(res.outcomes.of(EvalOutcome::Runaway), 0);
        EXPECT_EQ(res.outcomes.of(EvalOutcome::Ok), 0);
        results.push_back(std::move(res));
    }
    // The containment path preserves PR 1's determinism contract.
    EXPECT_EQ(results[0].totalMutants, results[1].totalMutants);
    EXPECT_EQ(results[0].outcomes.counts, results[1].outcomes.counts);
    EXPECT_EQ(results[0].outcomes.quarantineHits,
              results[1].outcomes.quarantineHits);
}

// ------------------------------------------------------------------
// Whole-run containment: injected failures never abort a generation.
// ------------------------------------------------------------------

TEST(FaultInjection, InjectedCrashNeverAbortsAGeneration)
{
    MiniScenario sc;
    EngineConfig cfg;
    cfg.faultPlan.throwAtStmt = 5;
    cfg.popSize = 8;
    cfg.maxGenerations = 2;
    cfg.maxSeconds = 60.0;
    cfg.seed = 7;
    auto engine = sc.engine(cfg);
    RepairResult res;
    ASSERT_NO_THROW(res = engine.run());
    EXPECT_FALSE(res.found);
    EXPECT_EQ(res.generations, cfg.maxGenerations);
    EXPECT_GT(res.outcomes.of(EvalOutcome::Crashed), 0);
    EXPECT_GT(res.totalMutants, 0);
}

TEST(FaultInjection, OutcomeSummaryIsReadable)
{
    OutcomeCounts c;
    c.add(EvalOutcome::Ok);
    c.add(EvalOutcome::Ok);
    c.add(EvalOutcome::Runaway);
    c.quarantineHits = 3;
    EXPECT_EQ(c.total(), 3);
    EXPECT_EQ(c.failures(), 1);
    std::string s = c.summary();
    EXPECT_NE(s.find("ok=2"), std::string::npos) << s;
    EXPECT_NE(s.find("runaway=1"), std::string::npos) << s;
    EXPECT_NE(s.find("quarantine-hits=3"), std::string::npos) << s;
}

TEST(FaultInjection, OutcomeNamesRoundTrip)
{
    for (int i = 0; i < kEvalOutcomeCount; ++i) {
        EvalOutcome o = static_cast<EvalOutcome>(i);
        EXPECT_EQ(evalOutcomeFromName(evalOutcomeName(o)), o);
    }
    EXPECT_THROW(evalOutcomeFromName("no-such-outcome"),
                 std::runtime_error);
}

// ------------------------------------------------------------------
// Pool-level failure accounting (jobs that throw are not silent).
// ------------------------------------------------------------------

TEST(FaultInjection, PoolCapturesJobFailureMessages)
{
    for (int threads : {1, 4}) {
        EvalPool pool(threads);
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 4; ++i)
            jobs.push_back([i] {
                if (i == 2)
                    throw std::runtime_error("boom " +
                                             std::to_string(i));
            });
        EXPECT_THROW(pool.run(jobs), std::runtime_error);
        EXPECT_EQ(pool.jobFailures(), 1);
        ASSERT_EQ(pool.lastErrorMessages().size(), 4u);
        EXPECT_EQ(pool.lastErrorMessages()[2], "boom 2");
        EXPECT_EQ(pool.lastErrorMessages()[0], "");
    }
}

} // namespace
