/**
 * @file
 * Unit tests for the Verilog tokenizer.
 */

#include <gtest/gtest.h>

#include "verilog/lexer.h"

using namespace cirfix::verilog;
using cirfix::sim::Bit;

namespace {

std::vector<Token>
lexAll(const std::string &src)
{
    std::vector<Token> toks = lex(src);
    EXPECT_FALSE(toks.empty());
    EXPECT_EQ(toks.back().kind, Tok::End);
    toks.pop_back();
    return toks;
}

TEST(Lexer, EmptyInput)
{
    std::vector<Token> toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::End);
}

TEST(Lexer, IdentifiersAndKeywords)
{
    auto toks = lexAll("module foo_bar _x a$b endmodule");
    ASSERT_EQ(toks.size(), 5u);
    for (auto &t : toks)
        EXPECT_EQ(t.kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "foo_bar");
    EXPECT_EQ(toks[2].text, "_x");
    EXPECT_EQ(toks[3].text, "a$b");
}

TEST(Lexer, LineAndBlockComments)
{
    auto toks = lexAll("a // comment here\n b /* multi\nline */ c");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
    EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, UnterminatedBlockCommentThrows)
{
    EXPECT_THROW(lex("a /* never closed"), LexError);
}

TEST(Lexer, DirectivesSkipped)
{
    auto toks = lexAll("`timescale 1ns/1ps\nmodule");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].text, "module");
}

TEST(Lexer, PlainDecimal)
{
    auto toks = lexAll("42");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::Number);
    EXPECT_EQ(toks[0].value.width(), 32);
    EXPECT_EQ(toks[0].value.toUint64(), 42u);
    EXPECT_FALSE(toks[0].sized);
}

TEST(Lexer, SizedBinary)
{
    auto toks = lexAll("4'b10_10");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].value.width(), 4);
    EXPECT_EQ(toks[0].value.toString(), "1010");
    EXPECT_EQ(toks[0].base, 'b');
}

TEST(Lexer, SizedHexOctalDecimal)
{
    auto toks = lexAll("8'hFf 6'o17 10'd500");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].value.toUint64(), 0xffu);
    EXPECT_EQ(toks[1].value.toUint64(), 017u);
    EXPECT_EQ(toks[2].value.toUint64(), 500u);
    EXPECT_EQ(toks[2].value.width(), 10);
}

TEST(Lexer, XAndZDigits)
{
    auto toks = lexAll("4'b1x0z 8'hxz 4'dx 1'bz");
    EXPECT_EQ(toks[0].value.toString(), "1x0z");
    EXPECT_EQ(toks[1].value.toString(), "xxxxzzzz");
    EXPECT_EQ(toks[2].value.toString(), "xxxx");
    EXPECT_EQ(toks[3].value.toString(), "z");
}

TEST(Lexer, MsbExtensionOfShortBasedLiterals)
{
    // A literal narrower than its width extends with the top digit
    // when that digit is x/z, else with zero.
    auto toks = lexAll("8'bx1 8'b01 8'hz");
    EXPECT_EQ(toks[0].value.toString(), "xxxxxxx1");
    EXPECT_EQ(toks[1].value.toString(), "00000001");
    EXPECT_EQ(toks[2].value.toString(), "zzzzzzzz");
}

TEST(Lexer, SizeWithSpaceBeforeBase)
{
    auto toks = lexAll("4 'b1010");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].value.toString(), "1010");
}

TEST(Lexer, TruncationToWidth)
{
    auto toks = lexAll("2'h10");  // 16 truncated to 2 bits
    EXPECT_EQ(toks[0].value.toUint64(), 0u);
}

TEST(Lexer, BadLiterals)
{
    EXPECT_THROW(lex("4'q0"), LexError);
    EXPECT_THROW(lex("4'b"), LexError);
    EXPECT_THROW(lex("$"), LexError);
}

TEST(Lexer, SystemIdentifiers)
{
    auto toks = lexAll("$display $time $finish");
    for (auto &t : toks)
        EXPECT_EQ(t.kind, Tok::SysIdent);
    EXPECT_EQ(toks[0].text, "$display");
    EXPECT_EQ(toks[1].text, "$time");
}

TEST(Lexer, StringsWithEscapes)
{
    auto toks = lexAll(R"("hello \"world\"\n")");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::String);
    EXPECT_EQ(toks[0].text, "hello \"world\"\n");
    EXPECT_THROW(lex("\"never closed"), LexError);
}

TEST(Lexer, MultiCharOperators)
{
    auto toks = lexAll("=== !== == != <= >= && || << >> ~^ ** -> ~& ~|");
    std::vector<std::string> expect = {"===", "!==", "==", "!=", "<=",
                                       ">=", "&&", "||", "<<", ">>",
                                       "~^", "**", "->", "~&", "~|"};
    ASSERT_EQ(toks.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(toks[i].kind, Tok::Punct);
        EXPECT_EQ(toks[i].text, expect[i]);
    }
}

TEST(Lexer, ArithmeticShiftsDegradeToLogical)
{
    auto toks = lexAll("a <<< b >>> c");
    EXPECT_EQ(toks[1].text, "<<");
    EXPECT_EQ(toks[3].text, ">>");
}

TEST(Lexer, SingleCharPunct)
{
    auto toks = lexAll("( ) [ ] { } ; : , . # @ = + - * / % & | ^ ~ !");
    for (auto &t : toks)
        EXPECT_EQ(t.kind, Tok::Punct);
}

TEST(Lexer, LineNumbersTracked)
{
    auto toks = lexAll("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, UnexpectedCharacter)
{
    EXPECT_THROW(lex("a \x01 b"), LexError);
}

} // namespace
