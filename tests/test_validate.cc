/**
 * @file
 * Tests for structural validation (the "does it compile" gate that
 * rejects ill-formed mutants).
 */

#include <gtest/gtest.h>

#include "verilog/parser.h"
#include "verilog/validate.h"

using namespace cirfix::verilog;

namespace {

std::vector<ValidationError>
check(const std::string &src)
{
    auto file = parse(src);
    return validate(*file);
}

TEST(Validate, CleanModulePasses)
{
    auto errs = check(R"(
module m (clk, q);
    input clk;
    output q;
    reg q;
    wire w;
    event e;
    assign w = q & clk;
    always @(posedge clk) begin
        q <= !q;
        -> e;
    end
endmodule
)");
    EXPECT_TRUE(errs.empty());
}

TEST(Validate, UndeclaredReference)
{
    auto errs = check(
        "module m; wire w; assign w = ghost; endmodule");
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_NE(errs[0].message.find("ghost"), std::string::npos);
    EXPECT_EQ(errs[0].module, "m");
}

TEST(Validate, AssignmentToUndeclared)
{
    auto errs = check(
        "module m; initial ghost = 1'b1; endmodule");
    EXPECT_FALSE(errs.empty());
}

TEST(Validate, ProceduralAssignToWire)
{
    auto errs = check(
        "module m; wire w; initial w = 1'b1; endmodule");
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].message.find("non-reg"), std::string::npos);
}

TEST(Validate, ContinuousAssignToReg)
{
    auto errs = check(
        "module m; reg r; assign r = 1'b1; endmodule");
    ASSERT_FALSE(errs.empty());
}

TEST(Validate, TriggerOfNonEvent)
{
    auto errs = check(
        "module m; reg r; initial -> r; endmodule");
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].message.find("event"), std::string::npos);
}

TEST(Validate, UnknownInstanceModule)
{
    auto errs = check("module m; ghost u (); endmodule");
    ASSERT_FALSE(errs.empty());
}

TEST(Validate, UnknownPortConnection)
{
    auto errs = check(R"(
module child (input a);
endmodule
module m;
    reg r;
    child u (.nonport(r));
endmodule
)");
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].message.find("nonport"), std::string::npos);
}

TEST(Validate, PortWithoutDeclarationStillOk)
{
    // Header-only ports default to scalar wires at elaboration; the
    // validator flags them since the source has no explicit decl.
    auto errs = check("module m (a); endmodule");
    EXPECT_FALSE(errs.empty());
}

TEST(Validate, TestbenchNamesDontLeakAcrossModules)
{
    // A statement referencing testbench names is invalid inside the
    // DUT (this is exactly the mutant class fix localization avoids).
    auto errs = check(R"(
module dut (input clk);
    reg q;
    always @(posedge clk) q <= tb_only_signal;
endmodule
module tb;
    reg clk;
    reg tb_only_signal;
    dut d (.clk(clk));
endmodule
)");
    ASSERT_FALSE(errs.empty());
    EXPECT_EQ(errs[0].module, "dut");
}

TEST(Validate, IntegerAssignable)
{
    auto errs = check(
        "module m; integer i; initial i = 5; endmodule");
    EXPECT_TRUE(errs.empty());
}

TEST(Validate, ConcatLValueChecksParts)
{
    auto errs = check(R"(
module m;
    reg a;
    wire b;
    initial {a, b} = 2'b10;
endmodule
)");
    ASSERT_FALSE(errs.empty());  // b is a wire
}

TEST(Validate, EmptySensitivityAccepted)
{
    // An event control with no events and no star is legal (if
    // useless) Verilog: the process suspends forever, exactly like
    // @* with no reads. The lint subsystem reports it ("empty-sens",
    // see test_lint.cc); validate no longer rejects the design.
    auto file = parse(
        "module m; reg q; always @(q) q <= !q; endmodule");
    Module *m = file->modules[0].get();
    for (auto &it : m->items) {
        if (it->kind == NodeKind::AlwaysBlock) {
            auto *ec = it->as<AlwaysBlock>()->body->as<EventCtrl>();
            ec->events.clear();
        }
    }
    EXPECT_TRUE(validate(*file).empty());
}

TEST(Validate, IsValidWrapper)
{
    auto good = parse("module m; reg r; initial r = 1'b0; endmodule");
    EXPECT_TRUE(isValid(*good));
    auto bad = parse("module m; initial ghost = 1'b0; endmodule");
    EXPECT_FALSE(isValid(*bad));
}

TEST(Validate, AllBenchmarkIdiomsPass)
{
    auto errs = check(R"(
module m (clk, rst, q);
    input clk, rst;
    output [3:0] q;
    reg [3:0] q;
    parameter LIMIT = 4'hf;
    reg [3:0] mem [0:3];
    integer i;
    wire full;
    assign full = (q == LIMIT);
    always @(posedge clk or posedge rst) begin
        if (rst) begin
            q <= 4'h0;
            for (i = 0; i < 4; i = i + 1) mem[i[1:0]] <= 4'h0;
        end
        else begin
            case (q[1:0])
                2'b00 : q <= q + 1;
                default : q[3:2] <= 2'b01;
            endcase
        end
    end
endmodule
)");
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs[0].message);
}

} // namespace
