/**
 * @file
 * Tests for the benchmark suite itself: every project's golden design
 * passes both of its testbenches, and the suite matches the paper's
 * Table 2/3 structure.
 */

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/scenario.h"

using namespace cirfix;
using namespace cirfix::core;

namespace {

TEST(Benchmarks, ElevenProjectsInTable2Order)
{
    auto &projects = bench::allProjects();
    ASSERT_EQ(projects.size(), 11u);
    EXPECT_EQ(projects[0].name, "decoder_3_to_8");
    EXPECT_EQ(projects[1].name, "counter");
    EXPECT_EQ(projects[10].name, "sdram_controller");
    for (auto &p : projects) {
        EXPECT_FALSE(p.description.empty());
        EXPECT_FALSE(p.goldenSource.empty());
        EXPECT_FALSE(p.testbenchSource.empty());
        EXPECT_FALSE(p.verifySource.empty());
        EXPECT_GT(p.projectLoc(), 10);
        EXPECT_GT(p.testbenchLoc(), 10);
    }
}

TEST(Benchmarks, LookupByName)
{
    EXPECT_EQ(bench::getProject("sha3").name, "sha3");
    EXPECT_THROW(bench::getProject("nope"), std::out_of_range);
    EXPECT_EQ(bench::getDefect("counter_sensitivity").project,
              "counter");
    EXPECT_THROW(bench::getDefect("nope"), std::out_of_range);
}

TEST(Benchmarks, ThirtyTwoDefectsWithPaperCategories)
{
    auto &defects = bench::allDefects();
    ASSERT_EQ(defects.size(), 32u);
    int cat1 = 0, cat2 = 0;
    int correct = 0, plausible = 0, norepair = 0;
    for (auto &d : defects) {
        EXPECT_TRUE(d.category == 1 || d.category == 2) << d.id;
        (d.category == 1 ? cat1 : cat2)++;
        switch (d.paperOutcome) {
          case PaperOutcome::Correct: ++correct; break;
          case PaperOutcome::PlausibleOnly: ++plausible; break;
          case PaperOutcome::NoRepair: ++norepair; break;
        }
        EXPECT_FALSE(d.rewrites.empty()) << d.id;
        EXPECT_NO_THROW(bench::getProject(d.project)) << d.id;
    }
    // Table 3: 19 category-1 and 13 category-2 defects; 16 correct,
    // 5 plausible-only, 11 no-repair.
    EXPECT_EQ(cat1, 19);
    EXPECT_EQ(cat2, 13);
    EXPECT_EQ(correct, 16);
    EXPECT_EQ(plausible, 5);
    EXPECT_EQ(norepair, 11);
}

TEST(Benchmarks, EveryProjectHasDefects)
{
    for (auto &p : bench::allProjects()) {
        auto ds = bench::defectsForProject(p.name);
        EXPECT_GE(ds.size(), 2u) << p.name;
        EXPECT_LE(ds.size(), 4u) << p.name;
    }
}

TEST(Benchmarks, RewritesApplyCleanly)
{
    for (auto &d : bench::allDefects()) {
        auto &p = bench::getProject(d.project);
        std::string faulty;
        ASSERT_NO_THROW(faulty =
                            applyRewrites(p.goldenSource, d.rewrites))
            << d.id;
        EXPECT_NE(faulty, p.goldenSource) << d.id;
    }
}

TEST(Benchmarks, RewriteOnMissingPatternThrows)
{
    EXPECT_THROW(applyRewrites("abc", {{"zzz", "yyy"}}),
                 std::runtime_error);
}

class GoldenProject : public ::testing::TestWithParam<int>
{
};

TEST_P(GoldenProject, GoldenTracesAreCleanOnBothBenches)
{
    const ProjectSpec &p =
        bench::allProjects()[static_cast<size_t>(GetParam())];
    for (bool verify : {false, true}) {
        Trace t = recordGoldenTrace(p, verify);
        ASSERT_GE(t.size(), 5u) << p.name;
        // The final samples of a settled golden design are defined.
        for (auto &v : t.rows().back().values)
            EXPECT_FALSE(v.hasUnknown())
                << p.name << (verify ? " verify" : " repair");
    }
}

INSTANTIATE_TEST_SUITE_P(AllProjects, GoldenProject,
                         ::testing::Range(0, 11));

class DefectScenario : public ::testing::TestWithParam<int>
{
};

TEST_P(DefectScenario, DefectIsVisibleAndNotPlausible)
{
    const DefectSpec &d =
        bench::allDefects()[static_cast<size_t>(GetParam())];
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    EngineConfig cfg;
    FitnessResult fit = sc.baselineFitness(cfg);
    // Requirements of Section 4.1.3: the transplanted defect compiles
    // and changes externally visible behavior.
    EXPECT_FALSE(fit.plausible()) << d.id;
    EXPECT_LT(fit.fitness, 1.0) << d.id;
    // The faulty design still parses/elaborates (fitness computable
    // over a non-empty oracle).
    EXPECT_GT(sc.oracle.size(), 0u) << d.id;
}

TEST_P(DefectScenario, GoldenPassesVerificationOracle)
{
    const DefectSpec &d =
        bench::allDefects()[static_cast<size_t>(GetParam())];
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    // An empty patch on the *golden* design (simulated via
    // checkCorrectness against a scenario whose "faulty" source is
    // golden) must pass: build such a scenario with no rewrites.
    DefectSpec nodefect = d;
    nodefect.rewrites.clear();
    Scenario golden_sc = buildScenario(p, nodefect);
    EXPECT_TRUE(checkCorrectness(golden_sc, Patch{})) << d.id;
}

INSTANTIATE_TEST_SUITE_P(AllDefects, DefectScenario,
                         ::testing::Range(0, 32));

} // namespace
