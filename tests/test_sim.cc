/**
 * @file
 * Integration tests for the event-driven simulator: scheduling
 * semantics, nonblocking assignments, delays, events, hierarchy,
 * memories, continuous assignments and the testbench probe.
 */

#include <gtest/gtest.h>

#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::sim;
using namespace cirfix::verilog;

namespace {

struct Sim
{
    std::unique_ptr<Design> design;
    Scheduler::RunResult result;

    explicit Sim(const std::string &src, const std::string &top = "t",
                 RunLimits limits = RunLimits())
    {
        std::shared_ptr<const SourceFile> file = parse(src);
        design = elaborate(file, top);
        result = design->run(limits);
    }

    uint64_t
    value(const std::string &path)
    {
        SignalRef r = design->findSignal(path);
        EXPECT_NE(r.sig, nullptr) << path;
        return r.sig->value().toUint64();
    }

    std::string
    bits(const std::string &path)
    {
        SignalRef r = design->findSignal(path);
        EXPECT_NE(r.sig, nullptr) << path;
        return r.sig->value().toString();
    }
};

TEST(Sim, InitialBlockRunsOnce)
{
    Sim s("module t; reg [7:0] a; initial a = 8'h7e; endmodule");
    EXPECT_EQ(s.value("a"), 0x7eu);
    EXPECT_EQ(s.result.status, Scheduler::Status::Idle);
}

TEST(Sim, BlockingOrderWithinBlock)
{
    Sim s(R"(
module t;
    reg [7:0] a, b;
    initial begin
        a = 8'd1;
        b = a + 1;
        a = b * 2;
    end
endmodule
)");
    EXPECT_EQ(s.value("b"), 2u);
    EXPECT_EQ(s.value("a"), 4u);
}

TEST(Sim, NonblockingReadsOldValue)
{
    // The classic swap: with NBA both regs read pre-update values.
    Sim s(R"(
module t;
    reg [3:0] a, b;
    reg clk;
    initial begin
        clk = 0;
        a = 4'h5;
        b = 4'ha;
        #10 clk = 1;
    end
    always @(posedge clk) begin
        a <= b;
        b <= a;
    end
endmodule
)");
    EXPECT_EQ(s.value("a"), 0xau);
    EXPECT_EQ(s.value("b"), 0x5u);
}

TEST(Sim, NbaVisibleToOtherProcessesNextCycle)
{
    // A second always block sampling at the same edge sees the OLD
    // value; blocking in the writer would expose the new one.
    Sim s(R"(
module t;
    reg clk;
    reg [3:0] src, snoop;
    initial begin
        clk = 0;
        src = 4'h0;
        #5 clk = 1;
        #5 clk = 0;
        #5 clk = 1;
    end
    always @(posedge clk) src <= src + 1;
    always @(posedge clk) snoop <= src;
endmodule
)");
    // Two posedges: src 0->1->2; snoop samples pre-edge src: 0 then 1.
    EXPECT_EQ(s.value("src"), 2u);
    EXPECT_EQ(s.value("snoop"), 1u);
}

TEST(Sim, DelaysAdvanceTime)
{
    Sim s(R"(
module t;
    reg [7:0] a;
    initial begin
        a = 8'd0;
        #7 a = 8'd1;
        #13 a = 8'd2;
    end
endmodule
)");
    EXPECT_EQ(s.value("a"), 2u);
    EXPECT_EQ(s.result.endTime, 20u);
}

TEST(Sim, IntraAssignmentDelays)
{
    Sim s(R"(
module t;
    reg [7:0] a, b, witness;
    initial begin
        a = 8'd1;
        b = #5 a + 1;
        witness = b;
    end
    initial begin
        #2 a = 8'd10;
    end
endmodule
)");
    // Blocking intra-delay: RHS evaluated at t=0 (a=1 -> 2), written
    // at t=5, then witness copies it.
    EXPECT_EQ(s.value("b"), 2u);
    EXPECT_EQ(s.value("witness"), 2u);
}

TEST(Sim, NbaIntraDelayScheduledLater)
{
    Sim s(R"(
module t;
    reg [7:0] a, sample_before, sample_after;
    initial begin
        a = 8'd1;
        a <= #10 8'd9;
        #5 sample_before = a;
        #10 sample_after = a;
    end
endmodule
)");
    EXPECT_EQ(s.value("sample_before"), 1u);
    EXPECT_EQ(s.value("sample_after"), 9u);
}

TEST(Sim, ZeroDelayGoesToInactiveRegion)
{
    Sim s(R"(
module t;
    reg [7:0] a, b;
    initial begin
        #0 b = a;
    end
    initial begin
        a = 8'd42;
    end
endmodule
)");
    // The #0 defers past the second initial block's active execution.
    EXPECT_EQ(s.value("b"), 42u);
}

TEST(Sim, ClockGeneratorAndEdges)
{
    Sim s(R"(
module t;
    reg clk;
    reg [7:0] pos_count, neg_count;
    initial begin
        clk = 0;
        pos_count = 0;
        neg_count = 0;
        #52 $finish;
    end
    always #5 clk = !clk;
    always @(posedge clk) pos_count <= pos_count + 1;
    always @(negedge clk) neg_count <= neg_count + 1;
endmodule
)");
    // Posedges at 5,15,25,35,45; negedges at 10,20,30,40,50.
    EXPECT_EQ(s.value("pos_count"), 5u);
    EXPECT_EQ(s.value("neg_count"), 5u);
    EXPECT_EQ(s.result.status, Scheduler::Status::Finished);
}

TEST(Sim, XToOneIsAPosedge)
{
    Sim s(R"(
module t;
    reg clk;
    reg [3:0] edges;
    initial edges = 4'd0;
    initial #3 clk = 1;   // x -> 1 must count as a rising edge
    always @(posedge clk) edges <= edges + 1;
endmodule
)");
    EXPECT_EQ(s.value("edges"), 1u);
}

TEST(Sim, NamedEvents)
{
    Sim s(R"(
module t;
    event go, done;
    reg [7:0] stage;
    initial begin
        stage = 8'd0;
        #10 -> go;
        @(done);
        stage = stage + 8'd100;
    end
    initial begin
        @(go);
        stage = 8'd7;
        -> done;
    end
endmodule
)");
    EXPECT_EQ(s.value("stage"), 107u);
}

TEST(Sim, WaitStatement)
{
    Sim s(R"(
module t;
    reg flag;
    reg [7:0] when_seen;
    initial begin
        flag = 0;
        #25 flag = 1;
    end
    initial begin
        wait (flag == 1'b1);
        when_seen = $time;
    end
endmodule
)");
    EXPECT_EQ(s.value("when_seen"), 25u);
}

TEST(Sim, ForWhileRepeatLoops)
{
    Sim s(R"(
module t;
    integer i;
    reg [15:0] sum;
    reg [7:0] w, r;
    initial begin
        sum = 0;
        for (i = 1; i <= 10; i = i + 1) sum = sum + i[15:0];
        w = 8'd0;
        while (w < 5) w = w + 1;
        r = 8'd0;
        repeat (6) r = r + 2;
    end
endmodule
)");
    EXPECT_EQ(s.value("sum"), 55u);
    EXPECT_EQ(s.value("w"), 5u);
    EXPECT_EQ(s.value("r"), 12u);
}

TEST(Sim, CaseSelectsArmAndDefault)
{
    Sim s(R"(
module t;
    reg [1:0] sel;
    reg [7:0] out;
    always @(sel) begin
        case (sel)
            2'b00 : out = 8'd10;
            2'b01, 2'b10 : out = 8'd20;
            default : out = 8'd99;
        endcase
    end
    reg [7:0] r0, r1, r2, r3;
    initial begin
        sel = 2'b01; #1 r1 = out;
        sel = 2'b00; #1 r0 = out;
        sel = 2'b10; #1 r2 = out;
        sel = 2'b11; #1 r3 = out;
    end
endmodule
)");
    EXPECT_EQ(s.value("r0"), 10u);
    EXPECT_EQ(s.value("r1"), 20u);
    EXPECT_EQ(s.value("r2"), 20u);
    EXPECT_EQ(s.value("r3"), 99u);
}

TEST(Sim, CasezTreatsZAsDontCare)
{
    Sim s(R"(
module t;
    reg [3:0] v;
    reg [7:0] out;
    always @(v) begin
        casez (v)
            4'b1??? : out = 8'd1;
            4'b01?? : out = 8'd2;
            default : out = 8'd0;
        endcase
    end
    reg [7:0] r1, r2, r3;
    initial begin
        v = 4'b1000; #1 r1 = out;
        v = 4'b0111; #1 r2 = out;
        v = 4'b0011; #1 r3 = out;
    end
endmodule
)");
    EXPECT_EQ(s.value("r1"), 1u);
    EXPECT_EQ(s.value("r2"), 2u);
    EXPECT_EQ(s.value("r3"), 0u);
}

TEST(Sim, ContinuousAssignTracksSources)
{
    Sim s(R"(
module t;
    reg [3:0] a, b;
    wire [3:0] sum;
    reg [3:0] seen_early, seen_late;
    assign sum = a + b;
    initial begin
        a = 4'd1;
        b = 4'd2;
        #1 seen_early = sum;
        a = 4'd7;
        #1 seen_late = sum;
    end
endmodule
)");
    EXPECT_EQ(s.value("seen_early"), 3u);
    EXPECT_EQ(s.value("seen_late"), 9u);
}

TEST(Sim, HierarchyAliasesPorts)
{
    Sim s(R"(
module inv (input a, output y);
    assign y = !a;
endmodule
module t;
    reg a;
    wire y;
    inv u (.a(a), .y(y));
    reg r0, r1;
    initial begin
        a = 0;
        #1 r0 = y;
        a = 1;
        #1 r1 = y;
    end
endmodule
)");
    EXPECT_EQ(s.value("r0"), 1u);
    EXPECT_EQ(s.value("r1"), 0u);
    // Child scope sees the same signal.
    EXPECT_EQ(s.value("u.y"), 0u);
}

TEST(Sim, InputPortExpressionBinding)
{
    Sim s(R"(
module add1 (input [3:0] a, output [3:0] y);
    assign y = a + 1;
endmodule
module t;
    reg [3:0] x;
    wire [3:0] y;
    add1 u (.a(x ^ 4'b0011), .y(y));
    reg [3:0] r;
    initial begin
        x = 4'b0101;
        #1 r = y;
    end
endmodule
)");
    // (0101 ^ 0011) + 1 = 0110 + 1 = 0111.
    EXPECT_EQ(s.value("r"), 7u);
}

TEST(Sim, WidthMismatchedPortBridges)
{
    // 1-bit output into a 4-bit parent wire: low bit drives, rest 0.
    Sim s(R"(
module one (output y);
    reg y;
    initial y = 1'b1;
endmodule
module t;
    wire [3:0] w;
    one u (.y(w));
    reg [3:0] r;
    initial #1 r = w;
endmodule
)");
    EXPECT_EQ(s.value("r"), 1u);
}

TEST(Sim, MemoriesReadWrite)
{
    Sim s(R"(
module t;
    reg [7:0] mem [0:15];
    reg [7:0] a, b;
    integer i;
    initial begin
        for (i = 0; i < 16; i = i + 1) mem[i[3:0]] = i[7:0] * 3;
        a = mem[5];
        b = mem[15];
    end
endmodule
)");
    EXPECT_EQ(s.value("a"), 15u);
    EXPECT_EQ(s.value("b"), 45u);
}

TEST(Sim, FinishStopsSimulation)
{
    Sim s(R"(
module t;
    reg [7:0] a;
    initial begin
        a = 8'd1;
        #10 $finish;
        a = 8'd2;
    end
endmodule
)");
    EXPECT_EQ(s.result.status, Scheduler::Status::Finished);
    EXPECT_EQ(s.result.endTime, 10u);
    EXPECT_EQ(s.value("a"), 1u);
}

TEST(Sim, CombinationalLoopOfXStabilizes)
{
    // A ring of inverters with no defined value reaches the all-x
    // fixpoint (!x == x), so the simulation goes idle instead of
    // oscillating -- standard 4-state behavior.
    Sim s(R"(
module t;
    wire a, b;
    assign a = !b;
    assign b = !a;
endmodule
)",
          "t", RunLimits{1000, 20'000, 1'000'000});
    EXPECT_EQ(s.result.status, Scheduler::Status::Idle);
}

TEST(Sim, RunawayCombinationalLoopAborts)
{
    // Two cross-triggering combinational blocks ping-pong in zero
    // time once kicked with a defined value; the callback budget
    // catches the runaway. (A single self-triggering block stabilizes
    // because its own change happens while it is not waiting.)
    Sim s(R"(
module t;
    reg a, b;
    always @(b) a = !b;
    always @(a) b = a;
    initial #5 b = 1'b1;
endmodule
)",
          "t", RunLimits{1000, 20'000, 1'000'000});
    EXPECT_EQ(s.result.status, Scheduler::Status::Runaway);
}

TEST(Sim, RunawayZeroDelayLoopAborts)
{
    Sim s(R"(
module t;
    reg a;
    initial forever a = !a;
endmodule
)",
          "t", RunLimits{1000, 100'000, 50'000});
    EXPECT_EQ(s.result.status, Scheduler::Status::Runaway);
}

TEST(Sim, MaxTimeBound)
{
    Sim s(R"(
module t;
    reg clk;
    initial clk = 0;
    always #5 clk = !clk;
endmodule
)",
          "t", RunLimits{100, 100'000, 1'000'000});
    EXPECT_EQ(s.result.status, Scheduler::Status::MaxTime);
}

TEST(Sim, DisplayFormatting)
{
    Sim s(R"(
module t;
    reg [7:0] v;
    initial begin
        v = 8'd77;
        $display("dec=%d hex=%h bin=%b at %t", v, v, v, $time);
        $display("pct=%% done");
    end
endmodule
)");
    ASSERT_EQ(s.design->displayLog().size(), 2u);
    EXPECT_EQ(s.design->displayLog()[0], "dec=77 hex=4d bin=01001101 at 0");
    EXPECT_EQ(s.design->displayLog()[1], "pct=% done");
}

TEST(Sim, ProbeRecordsAtPosedges)
{
    std::shared_ptr<const SourceFile> file = parse(R"(
module dut (input clk, output reg [3:0] q);
    always @(posedge clk) q <= q + 1;
endmodule
module tb;
    reg clk;
    wire [3:0] q;
    dut d (.clk(clk), .q(q));
    initial begin
        clk = 0;
        #47 $finish;
    end
    always #5 clk = !clk;
endmodule
)");
    ProbeConfig cfg = deriveProbeConfig(*file, "tb");
    EXPECT_EQ(cfg.clock, "clk");
    ASSERT_EQ(cfg.signals.size(), 1u);
    EXPECT_EQ(cfg.signals[0], "d.q");
    auto design = elaborate(file, "tb");
    TraceRecorder rec(*design, cfg);
    design->run();
    // Posedges at 5,15,25,35,45 -> 5 samples.
    ASSERT_EQ(rec.trace().size(), 5u);
    EXPECT_EQ(rec.trace().rows()[0].time, 5u);
    // q is x before the first edge commits... the sample happens in
    // the postponed region, after the NBA: q increments from x -> x.
    // With q uninitialized the increments stay x forever.
    EXPECT_TRUE(rec.trace().rows()[4].values[0].hasUnknown());
}

TEST(Sim, ProbeSettledValuesAfterNba)
{
    std::shared_ptr<const SourceFile> file = parse(R"(
module dut (input clk, input rst, output reg [3:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else q <= q + 1;
    end
endmodule
module tb;
    reg clk, rst;
    wire [3:0] q;
    dut d (.clk(clk), .q(q), .rst(rst));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #40 $finish;
    end
    always #5 clk = !clk;
endmodule
)");
    ProbeConfig cfg = deriveProbeConfig(*file, "tb");
    auto design = elaborate(file, "tb");
    TraceRecorder rec(*design, cfg);
    design->run();
    // Samples show the post-edge (settled) q: reset drives q to 0 at
    // t=5 already (sample reads the NBA-updated value).
    const Trace &t = rec.trace();
    ASSERT_GE(t.size(), 4u);
    EXPECT_EQ(t.rows()[0].values[0].toUint64(), 0u);  // t=5, reset
    EXPECT_EQ(t.rows()[1].values[0].toUint64(), 1u);  // t=15, count
    EXPECT_EQ(t.rows()[2].values[0].toUint64(), 2u);
}

TEST(Sim, ScopeLookupPaths)
{
    Sim s(R"(
module leaf (input x);
    reg [1:0] inner;
    initial inner = 2'b10;
endmodule
module mid;
    leaf l (.x(1'b0));
endmodule
module t;
    mid m ();
endmodule
)");
    EXPECT_EQ(s.bits("m.l.inner"), "10");
    EXPECT_EQ(s.design->findSignal("m.l.missing").sig, nullptr);
    EXPECT_EQ(s.design->findSignal("nope.inner").sig, nullptr);
    EXPECT_NE(s.design->findScope("m.l"), nullptr);
}

TEST(Sim, ElaborationErrors)
{
    auto expect_elab_error = [](const std::string &src) {
        std::shared_ptr<const SourceFile> f = parse(src);
        EXPECT_THROW(elaborate(f, "t"), ElabError);
    };
    // Missing top module.
    {
        std::shared_ptr<const SourceFile> f =
            parse("module other; endmodule");
        EXPECT_THROW(elaborate(f, "t"), ElabError);
    }
    // Unknown instantiated module.
    expect_elab_error("module t; nonexistent u (); endmodule");
    // Parameter without value cannot occur syntactically; ascending
    // ranges are rejected.
    expect_elab_error("module t; wire [0:3] w; endmodule");
}

TEST(Sim, RecursiveInstantiationRejected)
{
    std::shared_ptr<const SourceFile> f =
        parse("module t; t u (); endmodule");
    EXPECT_THROW(elaborate(f, "t"), ElabError);
}

} // namespace
