/**
 * @file
 * Tests for the dataflow-based fault localization (Algorithm 2),
 * including the paper's motivating example walk-through.
 */

#include <gtest/gtest.h>

#include "core/faultloc.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;
using cirfix::sim::LogicVec;

namespace {

/** Parse a module and return it (keeping the file alive). */
struct Parsed
{
    std::unique_ptr<SourceFile> file;
    Module *mod;

    explicit Parsed(const std::string &src)
        : file(parse(src)), mod(file->modules[0].get())
    {}
};

Trace
traceOf(const std::vector<std::string> &vars,
        std::vector<std::pair<uint64_t, std::vector<std::string>>> rows)
{
    Trace t{std::vector<std::string>(vars)};
    for (auto &[time, vals] : rows) {
        std::vector<LogicVec> vv;
        for (auto &s : vals)
            vv.push_back(LogicVec::fromString(s));
        t.addRow(time, std::move(vv));
    }
    return t;
}

TEST(FaultLoc, OutputMismatchDetectsDifferences)
{
    Trace o = traceOf({"dut.a", "dut.b"},
                      {{5, {"00", "1"}}, {15, {"01", "1"}}});
    Trace s = traceOf({"dut.a", "dut.b"},
                      {{5, {"00", "1"}}, {15, {"11", "1"}}});
    auto mm = outputMismatch(s, o);
    EXPECT_EQ(mm.size(), 1u);
    EXPECT_TRUE(mm.count("a"));  // hierarchical prefix stripped
}

TEST(FaultLoc, XCountsAsMismatch)
{
    Trace o = traceOf({"q"}, {{5, {"0"}}});
    Trace s = traceOf({"q"}, {{5, {"x"}}});
    EXPECT_EQ(outputMismatch(s, o).count("q"), 1u);
}

TEST(FaultLoc, MissingSimRowIsMismatch)
{
    Trace o = traceOf({"q"}, {{5, {"0"}}, {15, {"0"}}});
    Trace s = traceOf({"q"}, {{5, {"0"}}});
    EXPECT_EQ(outputMismatch(s, o).count("q"), 1u);
}

TEST(FaultLoc, EmptyMismatchYieldsEmptyFl)
{
    Parsed p("module m; reg a; initial a = 1'b0; endmodule");
    auto fl = faultLocalize(*p.mod, {});
    EXPECT_TRUE(fl.nodeIds.empty());
}

TEST(FaultLoc, ImplDataImplicatesAssignments)
{
    Parsed p(R"(
module m;
    reg a, b;
    initial begin
        a = 1'b0;
        b = 1'b1;
    end
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"a"});
    // The assignment to a (and its subtree) is in FL; b's is not.
    bool a_in = false, b_in = false;
    visitAll(*p.mod, [&](Node &n) {
        if (n.kind == NodeKind::Assign) {
            auto *as = n.as<Assign>();
            if (as->lhs->kind == NodeKind::Ident) {
                const std::string &nm = as->lhs->as<Ident>()->name;
                if (nm == "a")
                    a_in = fl.contains(n.id);
                if (nm == "b")
                    b_in = fl.contains(n.id);
            }
        }
    });
    EXPECT_TRUE(a_in);
    EXPECT_FALSE(b_in);
}

TEST(FaultLoc, MotivatingExampleCounter)
{
    // Paper Section 2/3.1: overflow_out mismatch implicates the
    // overflow assignment (Impl-Data), then the wrapping if via its
    // condition (Impl-Ctrl), which brings counter_out into the
    // mismatch set (Add-Child), implicating the counter assignments.
    Parsed p(R"(
module counter (clk, reset, enable, counter_out, overflow_out);
    input clk, reset, enable;
    output [3:0] counter_out;
    output overflow_out;
    reg [3:0] counter_out;
    reg overflow_out;
    always @(posedge clk)
    begin : COUNTER
        if (reset == 1'b1) begin
            counter_out <= #1 4'b0000;
        end
        else if (enable == 1'b1) begin
            counter_out <= #1 counter_out + 1;
        end
        if (counter_out == 4'b1111) begin
            overflow_out <= #1 1'b1;
        end
    end
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"overflow_out"});
    EXPECT_TRUE(fl.mismatchNames.count("overflow_out"));
    // counter_out joins the mismatch set transitively.
    EXPECT_TRUE(fl.mismatchNames.count("counter_out"));
    // Both the overflow if and the counter assignments implicated.
    int implicated_assigns = 0;
    visitAll(*p.mod, [&](Node &n) {
        if (n.kind == NodeKind::Assign && fl.contains(n.id))
            ++implicated_assigns;
    });
    EXPECT_EQ(implicated_assigns, 3);
    EXPECT_GE(fl.iterations, 2);
}

TEST(FaultLoc, ControlDependenciesOfImplicatedAssignments)
{
    // An assignment inside a case arm pulls the case subject into the
    // mismatch set (ascending control dependency).
    Parsed p(R"(
module m;
    reg [1:0] state;
    reg out, other;
    always @(state) begin
        case (state)
            2'b00 : out = 1'b0;
            2'b01 : out = 1'b1;
        endcase
    end
    always @(state) begin
        if (state == 2'b10) other = 1'b1;
    end
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"out"});
    EXPECT_TRUE(fl.mismatchNames.count("state"));
    // Via state, the if conditional in the second block implicates.
    bool if_in = false;
    visitAll(*p.mod, [&](Node &n) {
        if (n.kind == NodeKind::If)
            if_in |= fl.contains(n.id);
    });
    EXPECT_TRUE(if_in);
}

TEST(FaultLoc, UniformSetNotRanked)
{
    // The result is a set of ids: no ordering / scores involved.
    Parsed p(R"(
module m;
    reg a, b;
    always @(b) a = b;
    always @(a) b = a;
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"a"});
    // Fixed point pulls in b and then b's assignment too.
    EXPECT_TRUE(fl.mismatchNames.count("b"));
    int assigns = 0;
    visitAll(*p.mod, [&](Node &n) {
        if (n.kind == NodeKind::Assign && fl.contains(n.id))
            ++assigns;
    });
    EXPECT_EQ(assigns, 2);
}

TEST(FaultLoc, ContAssignParticipates)
{
    Parsed p(R"(
module m;
    wire y;
    reg a, b;
    assign y = a & b;
    initial begin
        a = 1'b0;
        b = 1'b1;
    end
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"y"});
    EXPECT_TRUE(fl.mismatchNames.count("a"));
    EXPECT_TRUE(fl.mismatchNames.count("b"));
    int implicated_assigns = 0;
    visitAll(*p.mod, [&](Node &n) {
        if ((n.kind == NodeKind::Assign ||
             n.kind == NodeKind::ContAssign) &&
            fl.contains(n.id))
            ++implicated_assigns;
    });
    EXPECT_EQ(implicated_assigns, 3);
}

TEST(FaultLoc, ConcatLhsImplicates)
{
    Parsed p(R"(
module m;
    reg a, b, c;
    initial {a, b} = {c, c};
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"b"});
    EXPECT_TRUE(fl.mismatchNames.count("c"));
    EXPECT_FALSE(fl.nodeIds.empty());
}

TEST(FaultLoc, TerminatesOnSelfReference)
{
    Parsed p(R"(
module m;
    reg [3:0] q;
    always @(q) q = q + 1;
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"q"});
    EXPECT_LE(fl.iterations, 64);
    EXPECT_FALSE(fl.nodeIds.empty());
}

TEST(FaultLoc, UnrelatedLogicExcluded)
{
    Parsed p(R"(
module m;
    reg a, b, u1, u2;
    always @(b) a = b;
    always @(u1) u2 = u1;
endmodule
)");
    auto fl = faultLocalize(*p.mod, {"a"});
    EXPECT_FALSE(fl.mismatchNames.count("u1"));
    EXPECT_FALSE(fl.mismatchNames.count("u2"));
    // u2's assignment must not be implicated.
    visitAll(*p.mod, [&](Node &n) {
        if (n.kind == NodeKind::Assign) {
            auto *as = n.as<Assign>();
            if (as->lhs->kind == NodeKind::Ident &&
                as->lhs->as<Ident>()->name == "u2") {
                EXPECT_FALSE(fl.contains(n.id));
            }
        }
    });
}

TEST(FaultLoc, FromTracesEndToEnd)
{
    Parsed p(R"(
module m;
    reg good, bad;
    initial begin
        good = 1'b1;
        bad = 1'b0;
    end
endmodule
)");
    Trace o = traceOf({"dut.good", "dut.bad"}, {{5, {"1", "1"}}});
    Trace s = traceOf({"dut.good", "dut.bad"}, {{5, {"1", "0"}}});
    auto fl = faultLocalize(*p.mod, s, o);
    EXPECT_TRUE(fl.mismatchNames.count("bad"));
    EXPECT_FALSE(fl.mismatchNames.count("good"));
}

} // namespace
