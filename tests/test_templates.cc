/**
 * @file
 * Tests for the nine repair templates of Table 1.
 */

#include <gtest/gtest.h>

#include "core/templates.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;

namespace {

struct Parsed
{
    std::unique_ptr<SourceFile> file;
    Module *mod;

    explicit Parsed(const std::string &src)
        : file(parse(src)), mod(file->modules[0].get())
    {}

    int
    firstId(NodeKind kind)
    {
        int id = -1;
        visitAll(*mod, [&](Node &n) {
            if (id < 0 && n.kind == kind)
                id = n.id;
        });
        return id;
    }
};

const std::string kModule = R"(
module m (clk, rst, q);
    input clk, rst;
    output [3:0] q;
    reg [3:0] q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 4'd0;
        end
        else begin
            q <= q + 4'd1;
        end
        while (q > 4'd8) q = q - 4'd2;
    end
endmodule
)";

TEST(Templates, CatalogComplete)
{
    EXPECT_EQ(allTemplates().size(),
              static_cast<size_t>(kNumTemplates));
    for (TemplateKind k : allTemplates())
        EXPECT_STRNE(templateName(k), "?");
}

TEST(Templates, NegateConditionalOnIf)
{
    Parsed p(kModule);
    int if_id = p.firstId(NodeKind::If);
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::NegateConditional,
                              if_id, ""));
    Node *n = findNode(*p.file, if_id);
    auto *i = n->as<If>();
    ASSERT_EQ(i->cond->kind, NodeKind::Unary);
    EXPECT_EQ(i->cond->as<Unary>()->op, UnaryOp::Not);
    // The new node has a fresh, unique id.
    EXPECT_GE(i->cond->id, 0);
}

TEST(Templates, NegateConditionalOnWhile)
{
    Parsed p(kModule);
    int wid = p.firstId(NodeKind::While);
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::NegateConditional,
                              wid, ""));
    EXPECT_EQ(findNode(*p.file, wid)->as<While>()->cond->kind,
              NodeKind::Unary);
}

TEST(Templates, NegateRejectsOtherKinds)
{
    Parsed p(kModule);
    int assign_id = p.firstId(NodeKind::Assign);
    EXPECT_FALSE(applyTemplate(*p.file, TemplateKind::NegateConditional,
                               assign_id, ""));
}

TEST(Templates, SensitivityEdges)
{
    for (auto [kind, edge] :
         {std::pair{TemplateKind::SensitivityNegedge, Edge::Neg},
          std::pair{TemplateKind::SensitivityPosedge, Edge::Pos},
          std::pair{TemplateKind::SensitivityLevel, Edge::Level}}) {
        Parsed p(kModule);
        int ec_id = p.firstId(NodeKind::EventCtrl);
        ASSERT_TRUE(applyTemplate(*p.file, kind, ec_id, "rst"));
        auto *ec = findNode(*p.file, ec_id)->as<EventCtrl>();
        ASSERT_EQ(ec->events.size(), 1u);
        EXPECT_EQ(ec->events[0].edge, edge);
        EXPECT_EQ(ec->events[0].signal->as<Ident>()->name, "rst");
        EXPECT_FALSE(ec->star);
    }
}

TEST(Templates, SensitivityStar)
{
    Parsed p(kModule);
    int ec_id = p.firstId(NodeKind::EventCtrl);
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::SensitivityStar,
                              ec_id, ""));
    auto *ec = findNode(*p.file, ec_id)->as<EventCtrl>();
    EXPECT_TRUE(ec->star);
    EXPECT_TRUE(ec->events.empty());
}

TEST(Templates, SensitivityViaAlwaysBlockNode)
{
    Parsed p(kModule);
    int blk_id = p.firstId(NodeKind::AlwaysBlock);
    ASSERT_TRUE(applyTemplate(
        *p.file, TemplateKind::SensitivityPosedge, blk_id, "clk"));
}

TEST(Templates, SensitivityNeedsParam)
{
    Parsed p(kModule);
    int ec_id = p.firstId(NodeKind::EventCtrl);
    EXPECT_FALSE(applyTemplate(*p.file, TemplateKind::SensitivityPosedge,
                               ec_id, ""));
}

TEST(Templates, BlockingToggles)
{
    Parsed p(kModule);
    // First assignment (q <= 4'd0) is non-blocking.
    int nba_id = p.firstId(NodeKind::Assign);
    EXPECT_FALSE(applyTemplate(
        *p.file, TemplateKind::BlockingToNonblocking, nba_id, ""));
    ASSERT_TRUE(applyTemplate(
        *p.file, TemplateKind::NonblockingToBlocking, nba_id, ""));
    EXPECT_TRUE(findNode(*p.file, nba_id)->as<Assign>()->blocking);
    ASSERT_TRUE(applyTemplate(
        *p.file, TemplateKind::BlockingToNonblocking, nba_id, ""));
    EXPECT_FALSE(findNode(*p.file, nba_id)->as<Assign>()->blocking);
}

TEST(Templates, IncrementDecrementValue)
{
    Parsed p(kModule);
    int num_id = -1;
    visitAll(*p.mod, [&](Node &n) {
        if (n.kind == NodeKind::Number &&
            n.as<Number>()->value.toUint64() == 8)
            num_id = n.id;
    });
    ASSERT_GE(num_id, 0);
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::IncrementValue,
                              num_id, ""));
    EXPECT_EQ(findNode(*p.file, num_id)->as<Number>()->value.toUint64(),
              9u);
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::DecrementValue,
                              num_id, ""));
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::DecrementValue,
                              num_id, ""));
    EXPECT_EQ(findNode(*p.file, num_id)->as<Number>()->value.toUint64(),
              7u);
}

TEST(Templates, DecrementWrapsAtZero)
{
    Parsed p("module m; reg r; initial r = 1'b0; endmodule");
    int num_id = p.firstId(NodeKind::Number);
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::DecrementValue,
                              num_id, ""));
    // 1-bit 0 - 1 wraps to 1.
    EXPECT_EQ(findNode(*p.file, num_id)->as<Number>()->value.toUint64(),
              1u);
}

TEST(Templates, MissingTargetIsNoop)
{
    Parsed p(kModule);
    EXPECT_FALSE(applyTemplate(*p.file, TemplateKind::IncrementValue,
                               999999, ""));
}

TEST(Templates, ResultStillPrintsAndReparses)
{
    Parsed p(kModule);
    int if_id = p.firstId(NodeKind::If);
    int ec_id = p.firstId(NodeKind::EventCtrl);
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::NegateConditional,
                              if_id, ""));
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::SensitivityNegedge,
                              ec_id, "clk"));
    std::string out = print(*p.file);
    EXPECT_NO_THROW(parse(out)) << out;
    EXPECT_NE(out.find("negedge clk"), std::string::npos);
    EXPECT_NE(out.find("!("), std::string::npos);
}

TEST(Templates, EnumerateSitesCoverAllCategories)
{
    Parsed p(kModule);
    auto sites = enumerateTemplateSites(*p.mod, nullptr);
    int negate = 0, sens = 0, blocking = 0, numeric = 0;
    for (auto &s : sites) {
        switch (s.kind) {
          case TemplateKind::NegateConditional: ++negate; break;
          case TemplateKind::SensitivityNegedge:
          case TemplateKind::SensitivityPosedge:
          case TemplateKind::SensitivityLevel:
          case TemplateKind::SensitivityStar: ++sens; break;
          case TemplateKind::BlockingToNonblocking:
          case TemplateKind::NonblockingToBlocking: ++blocking; break;
          case TemplateKind::IncrementValue:
          case TemplateKind::DecrementValue: ++numeric; break;
          default: break;  // extended kinds are opt-in
        }
    }
    EXPECT_EQ(negate, 2);    // one if, one while
    EXPECT_GT(sens, 3);      // 3 per signal + star
    EXPECT_EQ(blocking, 3);  // three assignments
    EXPECT_GT(numeric, 4);   // two per literal
}

TEST(Templates, SensitivitySitesIncludePorts)
{
    // clk is not read in the block body, but it is a port, so the
    // sensitivity templates must offer it as a trigger candidate.
    Parsed p(R"(
module m (clk, d, q);
    input clk, d;
    output q;
    reg q;
    always @(negedge d) begin
        q <= d;
    end
endmodule
)");
    auto sites = enumerateTemplateSites(*p.mod, nullptr);
    bool clk_pos = false;
    for (auto &s : sites)
        clk_pos |= (s.kind == TemplateKind::SensitivityPosedge &&
                    s.param == "clk");
    EXPECT_TRUE(clk_pos);
}

TEST(Templates, FlSetFiltersSites)
{
    Parsed p(kModule);
    std::unordered_set<int> empty_fl{999999};
    auto none = enumerateTemplateSites(*p.mod, &empty_fl);
    auto all = enumerateTemplateSites(*p.mod, nullptr);
    EXPECT_LT(none.size(), all.size());
}

TEST(ExtTemplates, CatalogAndNames)
{
    EXPECT_EQ(allTemplatesExtended().size(),
              static_cast<size_t>(kNumExtendedTemplates));
    EXPECT_STREQ(templateName(TemplateKind::ForceConditionalTrue),
                 "force-cond-true");
    EXPECT_STREQ(templateName(TemplateKind::SwapIfBranches),
                 "swap-if-branches");
}

TEST(ExtTemplates, ForceConditional)
{
    Parsed p(kModule);
    int if_id = p.firstId(NodeKind::If);
    ASSERT_TRUE(applyTemplate(
        *p.file, TemplateKind::ForceConditionalTrue, if_id, ""));
    auto *i = findNode(*p.file, if_id)->as<If>();
    ASSERT_EQ(i->cond->kind, NodeKind::Number);
    EXPECT_EQ(i->cond->as<Number>()->value.toUint64(), 1u);

    Parsed q(kModule);
    int if2 = q.firstId(NodeKind::If);
    ASSERT_TRUE(applyTemplate(
        *q.file, TemplateKind::ForceConditionalFalse, if2, ""));
    EXPECT_EQ(findNode(*q.file, if2)
                  ->as<If>()->cond->as<Number>()->value.toUint64(),
              0u);
}

TEST(ExtTemplates, SwapIfBranches)
{
    Parsed p(kModule);
    int if_id = p.firstId(NodeKind::If);
    auto *before = findNode(*p.file, if_id)->as<If>();
    int then_id = before->thenStmt->id;
    int else_id = before->elseStmt->id;
    ASSERT_TRUE(applyTemplate(*p.file, TemplateKind::SwapIfBranches,
                              if_id, ""));
    auto *after = findNode(*p.file, if_id)->as<If>();
    EXPECT_EQ(after->thenStmt->id, else_id);
    EXPECT_EQ(after->elseStmt->id, then_id);
}

TEST(ExtTemplates, SwapRequiresElse)
{
    Parsed p(R"(
module m;
    reg q; wire c;
    always @(c) begin
        if (c) q = 1'b1;
    end
endmodule
)");
    int if_id = p.firstId(NodeKind::If);
    EXPECT_FALSE(applyTemplate(*p.file, TemplateKind::SwapIfBranches,
                               if_id, ""));
}

TEST(ExtTemplates, EnumerationIsOptIn)
{
    Parsed p(kModule);
    auto plain = enumerateTemplateSites(*p.mod, nullptr, false);
    auto ext = enumerateTemplateSites(*p.mod, nullptr, true);
    EXPECT_GT(ext.size(), plain.size());
    for (auto &s : plain) {
        EXPECT_NE(s.kind, TemplateKind::ForceConditionalTrue);
        EXPECT_NE(s.kind, TemplateKind::SwapIfBranches);
    }
    bool has_swap = false;
    for (auto &s : ext)
        has_swap |= (s.kind == TemplateKind::SwapIfBranches);
    EXPECT_TRUE(has_swap);
}

} // namespace
