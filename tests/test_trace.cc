/**
 * @file
 * Tests for the sampled-trace data model and its CSV serialization
 * (the Figure 2 format).
 */

#include <gtest/gtest.h>

#include "sim/trace.h"

using namespace cirfix::sim;

namespace {

Trace
makeTrace()
{
    Trace t({"dut.q", "dut.flag"});
    t.addRow(5, {LogicVec::fromString("xxxx"), LogicVec::fromString("x")});
    t.addRow(15, {LogicVec::fromString("0000"), LogicVec::fromString("0")});
    t.addRow(25, {LogicVec::fromString("0001"), LogicVec::fromString("0")});
    t.addRow(35, {LogicVec::fromString("0010"), LogicVec::fromString("1")});
    return t;
}

TEST(Trace, BasicAccessors)
{
    Trace t = makeTrace();
    EXPECT_EQ(t.size(), 4u);
    EXPECT_FALSE(t.empty());
    EXPECT_EQ(t.varIndex("dut.q"), 0);
    EXPECT_EQ(t.varIndex("dut.flag"), 1);
    EXPECT_EQ(t.varIndex("missing"), -1);
}

TEST(Trace, RowLookupByTime)
{
    Trace t = makeTrace();
    ASSERT_NE(t.rowAt(25), nullptr);
    EXPECT_EQ(t.rowAt(25)->values[0].toString(), "0001");
    EXPECT_EQ(t.rowAt(26), nullptr);
    EXPECT_EQ(t.rowAt(0), nullptr);
    EXPECT_NE(t.rowAt(35), nullptr);
}

TEST(Trace, AtAccessor)
{
    Trace t = makeTrace();
    auto v = t.at(15, "dut.flag");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->toString(), "0");
    EXPECT_FALSE(t.at(15, "missing").has_value());
    EXPECT_FALSE(t.at(16, "dut.q").has_value());
}

TEST(Trace, ResampleSameInstantKeepsLatest)
{
    Trace t({"a"});
    t.addRow(10, {LogicVec::fromString("0")});
    t.addRow(10, {LogicVec::fromString("1")});
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.rowAt(10)->values[0].toString(), "1");
}

TEST(Trace, TotalBits)
{
    Trace t = makeTrace();
    EXPECT_EQ(t.totalBits(), 4u * (4 + 1));
}

TEST(Trace, CsvRoundTrip)
{
    Trace t = makeTrace();
    std::string csv = t.toCsv();
    EXPECT_EQ(csv.substr(0, 20), "time,dut.q,dut.flag\n");
    Trace back = Trace::fromCsv(csv);
    ASSERT_EQ(back.size(), t.size());
    ASSERT_EQ(back.vars(), t.vars());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back.rows()[i].time, t.rows()[i].time);
        for (size_t v = 0; v < t.vars().size(); ++v)
            EXPECT_TRUE(back.rows()[i].values[v].identical(
                t.rows()[i].values[v]));
    }
}

TEST(Trace, CsvPreservesXZ)
{
    Trace t({"w"});
    t.addRow(1, {LogicVec::fromString("1x0z")});
    Trace back = Trace::fromCsv(t.toCsv());
    EXPECT_EQ(back.rows()[0].values[0].toString(), "1x0z");
}

TEST(Trace, CsvErrors)
{
    EXPECT_THROW(Trace::fromCsv(""), std::runtime_error);
    EXPECT_THROW(Trace::fromCsv("bogus,a\n"), std::runtime_error);
    EXPECT_THROW(Trace::fromCsv("time,a\n5,01,11\n"),
                 std::runtime_error);
}

TEST(Trace, EmptyTraceCsv)
{
    Trace t({"a", "b"});
    Trace back = Trace::fromCsv(t.toCsv());
    EXPECT_TRUE(back.empty());
    EXPECT_EQ(back.vars().size(), 2u);
}

} // namespace
