/**
 * @file
 * Tests for streaming fitness scoring and the early-abort cutoff:
 * bit-identity between the streaming and batch scorers, soundness of
 * the fitness upper bound, SurvivalTracker semantics, and the headline
 * contract — a repair run with the cutoff enabled produces the same
 * repair as full evaluation at any thread count.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "core/engine.h"
#include "core/evaloutcome.h"
#include "core/fitness.h"
#include "core/scenario.h"

using namespace cirfix::core;
using cirfix::sim::LogicVec;
using cirfix::sim::Trace;

namespace {

Trace
traceOf(const std::vector<std::string> &vars,
        const std::vector<std::pair<uint64_t, std::vector<std::string>>>
            &rows)
{
    Trace t{std::vector<std::string>(vars)};
    for (auto &[time, vals] : rows) {
        std::vector<LogicVec> vv;
        for (auto &s : vals)
            vv.push_back(LogicVec::fromString(s));
        t.addRow(time, std::move(vv));
    }
    return t;
}

/** Feed every row of @p sim to a StreamingFitness over @p oracle. */
FitnessResult
streamScore(const Trace &sim, const Trace &oracle,
            const FitnessParams &params = {})
{
    StreamingFitness scorer(oracle, sim.vars(), params);
    for (const auto &row : sim.rows())
        scorer.onSample(row.time, row.values);
    return scorer.finish();
}

void
expectSameResult(const FitnessResult &a, const FitnessResult &b)
{
    // Bit-identical, not approximately equal: both paths must run the
    // same additions in the same order.
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.fitness, b.fitness);
    EXPECT_EQ(a.bitMatches, b.bitMatches);
    EXPECT_EQ(a.bitMismatches, b.bitMismatches);
    EXPECT_EQ(a.unknownMatches, b.unknownMatches);
    EXPECT_EQ(a.unknownMismatches, b.unknownMismatches);
}

TEST(StreamingFitness, MatchesBatchOnHandPickedShapes)
{
    struct Case
    {
        const char *name;
        Trace oracle;
        Trace sim;
    };
    std::vector<Case> cases;
    cases.push_back({"perfect",
                     traceOf({"q"}, {{5, {"0101"}}, {15, {"0110"}}}),
                     traceOf({"q"}, {{5, {"0101"}}, {15, {"0110"}}})});
    cases.push_back({"sim ended early",
                     traceOf({"q"}, {{5, {"01"}}, {15, {"10"}}}),
                     traceOf({"q"}, {{5, {"01"}}})});
    cases.push_back({"sim rows between oracle rows",
                     traceOf({"q"}, {{10, {"1"}}, {30, {"0"}}}),
                     traceOf({"q"}, {{5, {"0"}},
                                     {10, {"1"}},
                                     {20, {"x"}},
                                     {30, {"0"}},
                                     {40, {"1"}}})});
    cases.push_back({"missing column",
                     traceOf({"q", "r"}, {{5, {"1", "0"}}}),
                     traceOf({"q"}, {{5, {"1"}}})});
    cases.push_back({"swapped columns",
                     traceOf({"a", "b"}, {{5, {"1", "0"}}}),
                     traceOf({"b", "a"}, {{5, {"0", "1"}}})});
    cases.push_back({"width mismatch",
                     traceOf({"q"}, {{5, {"0011"}}}),
                     traceOf({"q"}, {{5, {"11"}}})});
    cases.push_back({"x and z everywhere",
                     traceOf({"q"}, {{5, {"xz01"}}, {15, {"zzxx"}}}),
                     traceOf({"q"}, {{5, {"x001"}}, {15, {"10zx"}}})});
    cases.push_back({"empty sim",
                     traceOf({"q"}, {{5, {"1"}}, {15, {"0"}}}),
                     Trace{std::vector<std::string>{"q"}}});
    cases.push_back({"empty oracle",
                     Trace{std::vector<std::string>{"q"}},
                     traceOf({"q"}, {{5, {"1"}}})});

    for (double phi : {1.0, 2.0, 3.5}) {
        FitnessParams params;
        params.phi = phi;
        for (const Case &c : cases) {
            SCOPED_TRACE(std::string(c.name) +
                         " phi=" + std::to_string(phi));
            expectSameResult(streamScore(c.sim, c.oracle, params),
                             evaluateFitness(c.sim, c.oracle, params));
        }
    }
}

TEST(StreamingFitness, ResampleAtSameInstantReplacesPending)
{
    // Trace::addRow keeps the latest row per timestamp; the streaming
    // scorer must honor the same replace-on-equal-time semantics.
    Trace oracle = traceOf({"q"}, {{5, {"1"}}, {15, {"0"}}});
    StreamingFitness scorer(oracle, {"q"});
    scorer.onSample(5, {LogicVec::fromString("0")});  // replaced below
    scorer.onSample(5, {LogicVec::fromString("1")});
    scorer.onSample(15, {LogicVec::fromString("0")});
    FitnessResult batch = evaluateFitness(
        traceOf({"q"}, {{5, {"1"}}, {15, {"0"}}}), oracle);
    expectSameResult(scorer.finish(), batch);
}

TEST(StreamingFitness, RandomizedEquivalence)
{
    std::mt19937_64 rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        int width = 1 + static_cast<int>(rng() % 7);
        auto random_trace = [&](int rows, uint64_t step) {
            Trace t({"v", "w"});
            for (int i = 0; i < rows; ++i) {
                auto bits = [&] {
                    std::string s;
                    for (int b = 0; b < width; ++b)
                        s.push_back("01xz"[rng() % 4]);
                    return LogicVec::fromString(s);
                };
                t.addRow(static_cast<uint64_t>(i) * step,
                         {bits(), bits()});
            }
            return t;
        };
        // Different row counts and steps so sim/oracle timestamps
        // align only sometimes.
        Trace oracle = random_trace(1 + static_cast<int>(rng() % 10),
                                    5 + rng() % 3);
        Trace sim = random_trace(1 + static_cast<int>(rng() % 10),
                                 5 + rng() % 3);
        FitnessParams params;
        params.phi = 0.5 + static_cast<double>(rng() % 8) / 2.0;
        SCOPED_TRACE("trial " + std::to_string(trial));
        expectSameResult(streamScore(sim, oracle, params),
                         evaluateFitness(sim, oracle, params));
    }
}

TEST(StreamingFitness, UpperBoundDominatesEveryCompletion)
{
    // At every prefix of the sample stream, upperBound() must be >=
    // the fitness the candidate finally achieves.
    std::mt19937_64 rng(99);
    for (int trial = 0; trial < 100; ++trial) {
        auto random_trace = [&](int rows) {
            Trace t({"v"});
            for (int i = 0; i < rows; ++i) {
                std::string s;
                for (int b = 0; b < 4; ++b)
                    s.push_back("01xz"[rng() % 4]);
                t.addRow(static_cast<uint64_t>(i) * 10,
                         {LogicVec::fromString(s)});
            }
            return t;
        };
        Trace oracle = random_trace(8);
        Trace sim = random_trace(1 + static_cast<int>(rng() % 8));
        double final_fitness =
            evaluateFitness(sim, oracle).fitness;
        StreamingFitness scorer(oracle, sim.vars());
        EXPECT_GE(scorer.upperBound(), final_fitness);
        for (const auto &row : sim.rows()) {
            scorer.onSample(row.time, row.values);
            EXPECT_GE(scorer.upperBound() + 1e-12, final_fitness)
                << "trial " << trial;
        }
        EXPECT_EQ(scorer.finish().fitness, final_fitness);
    }
}

TEST(StreamingFitness, PerfectCandidateUpperBoundStaysOne)
{
    // A candidate with no mismatches keeps ub = 1 at every prefix, so
    // it can never be aborted by any threshold <= 1 (plausible repairs
    // are never lost to the cutoff).
    Trace oracle = traceOf({"q"}, {{5, {"0101"}}, {15, {"0110"}},
                                   {25, {"1111"}}});
    StreamingFitness scorer(oracle, {"q"});
    for (const auto &row : oracle.rows()) {
        EXPECT_DOUBLE_EQ(scorer.upperBound(), 1.0);
        scorer.onSample(row.time, row.values);
    }
    EXPECT_DOUBLE_EQ(scorer.finish().fitness, 1.0);
}

TEST(SurvivalTracker, ThresholdIsKthBest)
{
    SurvivalTracker t(3);
    EXPECT_FALSE(t.armed());
    EXPECT_EQ(t.threshold(),
              -std::numeric_limits<double>::infinity());
    t.submit(0.5);
    t.submit(0.9);
    EXPECT_FALSE(t.armed());
    t.submit(0.2);
    EXPECT_TRUE(t.armed());
    EXPECT_DOUBLE_EQ(t.threshold(), 0.2);  // 3rd best of {.9,.5,.2}
    t.submit(0.7);
    EXPECT_DOUBLE_EQ(t.threshold(), 0.5);  // {.9,.7,.5}
    t.submit(0.1);  // below threshold: no change
    EXPECT_DOUBLE_EQ(t.threshold(), 0.5);
    t.submit(1.0);
    EXPECT_DOUBLE_EQ(t.threshold(), 0.7);  // {1,.9,.7}
}

TEST(SurvivalTracker, ZeroCapacityNeverArms)
{
    SurvivalTracker t(0);
    t.submit(0.5);
    EXPECT_FALSE(t.armed());
    EXPECT_EQ(t.threshold(),
              -std::numeric_limits<double>::infinity());
}

TEST(EvalOutcome, NamesRoundTripAndAreDistinct)
{
    std::set<std::string> seen;
    for (int i = 0; i < kEvalOutcomeCount; ++i) {
        auto o = static_cast<EvalOutcome>(i);
        std::string name = evalOutcomeName(o);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate outcome name " << name;
        EXPECT_EQ(evalOutcomeFromName(name), o);
    }
    EXPECT_EQ(evalOutcomeName(EvalOutcome::EarlyAbort),
              std::string("early-abort"));
    EXPECT_FALSE(isQuarantineOutcome(EvalOutcome::EarlyAbort));
    EXPECT_THROW(evalOutcomeFromName("no-such-outcome"),
                 std::runtime_error);
}

/** The semantic fields that must not depend on the cutoff. */
std::string
semanticFingerprint(const RepairResult &r)
{
    std::ostringstream os;
    os << r.found << '|' << r.patch.key() << '|' << r.repairedSource
       << '|' << r.finalFitness.sum << '/' << r.finalFitness.total
       << '|' << r.generations << '|' << r.totalMutants << '|'
       << r.invalidMutants;
    for (const auto &[evals, fit] : r.fitnessTrajectory)
        os << '|' << evals << ':' << fit;
    return os.str();
}

RepairResult
runTrial(const Scenario &sc, bool early_abort, int threads)
{
    EngineConfig cfg;
    cfg.popSize = 20;
    cfg.maxGenerations = 5;
    // Lambda > popSize so truncation actually drops candidates and the
    // cutoff has something to prune.
    cfg.offspringPerGen = 40;
    cfg.seed = 7;
    cfg.numThreads = threads;
    cfg.maxSeconds = 1e9;  // the clock must not shape the search
    cfg.earlyAbort = early_abort;
    RepairEngine engine = sc.makeEngine(cfg);
    return engine.run();
}

TEST(EarlyAbort, RepairResultsBitIdenticalAcrossThreadCounts)
{
    const ProjectSpec &p = cirfix::bench::getProject("counter");
    const DefectSpec &d =
        cirfix::bench::getDefect("counter_incorrect_reset");
    Scenario sc = buildScenario(p, d);

    RepairResult reference = runTrial(sc, false, 1);
    EXPECT_EQ(reference.earlyAborts, 0);
    std::string want = semanticFingerprint(reference);

    bool any_aborts = false;
    for (int threads : {1, 4, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        RepairResult full = runTrial(sc, false, threads);
        EXPECT_EQ(semanticFingerprint(full), want);
        RepairResult aborted = runTrial(sc, true, threads);
        EXPECT_EQ(semanticFingerprint(aborted), want);
        // The aborted set itself is deterministic per seed, so every
        // thread count saves exactly the same work.
        EXPECT_EQ(aborted.earlyAborts,
                  runTrial(sc, true, 2).earlyAborts);
        EXPECT_EQ(aborted.rowsSkipped,
                  runTrial(sc, true, 2).rowsSkipped);
        any_aborts = any_aborts || aborted.earlyAborts > 0;
    }
    // The configuration is chosen so the cutoff really fires; if this
    // fails the test is vacuous, not the engine wrong.
    EXPECT_TRUE(any_aborts);
}

TEST(EarlyAbort, AbortedVariantHoldsPartialScore)
{
    // Drive evaluateUncached directly with an impossible threshold:
    // the simulation must stop early, classify as EarlyAbort, and
    // report a partial (not worst) fitness plus the rows it reached.
    const ProjectSpec &p = cirfix::bench::getProject("counter");
    const DefectSpec &d =
        cirfix::bench::getDefect("counter_incorrect_reset");
    Scenario sc = buildScenario(p, d);
    EngineConfig cfg;
    RepairEngine engine = sc.makeEngine(cfg);

    RepairEngine::EvalHints hints;
    hints.streaming = true;
    hints.abortThreshold = 2.0;  // unreachable: ub <= 1 always
    Variant v = engine.evaluateUncached(Patch{}, hints);
    EXPECT_EQ(v.outcome, EvalOutcome::EarlyAbort);
    EXPECT_TRUE(v.valid);
    EXPECT_FALSE(v.error.empty());
    EXPECT_LT(v.rowsScored, sc.oracle.rows().size());

    // Threshold -inf never aborts and reproduces batch scoring.
    RepairEngine::EvalHints no_abort;
    no_abort.streaming = true;
    Variant full = engine.evaluateUncached(Patch{}, no_abort);
    EXPECT_EQ(full.outcome, EvalOutcome::Ok);
    Variant batch = engine.evaluateUncached(Patch{});
    EXPECT_EQ(full.fit.sum, batch.fit.sum);
    EXPECT_EQ(full.fit.total, batch.fit.total);
    EXPECT_EQ(full.fit.fitness, batch.fit.fitness);
    EXPECT_EQ(full.rowsScored, sc.oracle.rows().size());
}

} // namespace
