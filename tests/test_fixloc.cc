/**
 * @file
 * Tests for fix localization (Section 3.6): donor scoping, insertion
 * anchors and replacement compatibility.
 */

#include <gtest/gtest.h>

#include "core/fixloc.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;

namespace {

const std::string kTwoModules = R"(
module dut (clk, q);
    input clk;
    output q;
    reg q;
    always @(posedge clk) begin
        q <= !q;
        if (q) q <= 1'b0;
    end
endmodule
module tb;
    reg clk;
    wire q;
    event go;
    dut d (.clk(clk), .q(q));
    initial begin
        clk = 0;
        -> go;
        #5 clk = 1;
    end
endmodule
)";

TEST(FixLoc, CollectsStmtSlots)
{
    auto file = parse(kTwoModules);
    const Module *dut = file->findModule("dut");
    auto slots = collectStmtSlots(*dut);
    // begin/end block, two assignments, the if, the nested assign.
    EXPECT_EQ(slots.size(), 5u);
    int in_block = 0;
    for (auto &s : slots)
        in_block += s.inBlock;
    EXPECT_EQ(in_block, 2);  // the two direct children of begin/end
}

TEST(FixLoc, EnabledRestrictsDonorsToDut)
{
    auto file = parse(kTwoModules);
    const Module *dut = file->findModule("dut");
    FixLocSpace with = computeFixLoc(*file, *dut, true);
    FixLocSpace without = computeFixLoc(*file, *dut, false);
    EXPECT_LT(with.donorIds.size(), without.donorIds.size());
    // All enabled donors belong to the DUT's id range.
    for (int id : with.donorIds)
        EXPECT_NE(findNode(*const_cast<Module *>(dut), id), nullptr);
    // Disabled mode includes testbench statements (e.g. the trigger).
    bool has_tb_donor = false;
    for (int id : without.donorIds) {
        Node *n = findNode(*file, id);
        has_tb_donor |= (n && n->kind == NodeKind::TriggerEvent);
    }
    EXPECT_TRUE(has_tb_donor);
}

TEST(FixLoc, SlotsAlwaysFromDut)
{
    auto file = parse(kTwoModules);
    const Module *dut = file->findModule("dut");
    for (bool enabled : {true, false}) {
        FixLocSpace space = computeFixLoc(*file, *dut, enabled);
        for (auto &slot : space.slots)
            EXPECT_NE(
                findNode(*const_cast<Module *>(dut), slot.id),
                nullptr);
    }
}

TEST(FixLoc, ReplacementCompatibility)
{
    // Statements freely substitute (shared `statement` production).
    EXPECT_TRUE(replacementCompatible(NodeKind::Assign, NodeKind::If));
    EXPECT_TRUE(replacementCompatible(NodeKind::Case,
                                      NodeKind::SeqBlock));
    EXPECT_TRUE(
        replacementCompatible(NodeKind::NullStmt, NodeKind::Assign));
    EXPECT_TRUE(replacementCompatible(NodeKind::Assign,
                                      NodeKind::Assign));
    // Non-statements require exact kind match.
    EXPECT_TRUE(replacementCompatible(NodeKind::Number,
                                      NodeKind::Number));
    EXPECT_FALSE(replacementCompatible(NodeKind::Number,
                                       NodeKind::Ident));
    EXPECT_FALSE(replacementCompatible(NodeKind::Assign,
                                       NodeKind::Number));
}

TEST(FixLoc, ContAssignsAreNotDonors)
{
    auto file = parse(R"(
module dut (input a, output y);
    assign y = a;
endmodule
)");
    const Module *dut = file->findModule("dut");
    FixLocSpace space = computeFixLoc(*file, *dut, true);
    EXPECT_TRUE(space.donorIds.empty());
    EXPECT_TRUE(space.slots.empty());
}

TEST(FixLoc, NullStatementsNotDonorsButAreSlots)
{
    auto file = parse(R"(
module dut (input clk);
    reg q;
    always @(posedge clk) begin
        ;
        q <= 1'b1;
    end
endmodule
)");
    const Module *dut = file->findModule("dut");
    FixLocSpace space = computeFixLoc(*file, *dut, true);
    for (int id : space.donorIds) {
        Node *n = findNode(*const_cast<Module *>(dut), id);
        EXPECT_NE(n->kind, NodeKind::NullStmt);
    }
    bool null_slot = false;
    for (auto &s : space.slots)
        null_slot |= (s.kind == NodeKind::NullStmt);
    EXPECT_TRUE(null_slot);  // replacement can still fill empty arms
}

} // namespace
