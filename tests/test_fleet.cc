/**
 * @file
 * Fleet tests: transport (Unix + TCP, deadlines, retry/backoff), the
 * network chaos harness (NetFaultInjector), the lease machinery's
 * zero-loss/zero-duplication guarantees, and the coordinator/worker
 * end-to-end scenarios from the acceptance criteria — a worker dying
 * mid-generation fails over to another worker and the finished result
 * is bit-identical to a single-host uninterrupted run; a stale worker
 * trying to commit gets lease_lost; a coordinator restart re-leases
 * live jobs to reconnecting workers; sustained frame-level chaos
 * finishes every job exactly once.
 */

#include <chrono>
#include <csignal>
#include <filesystem>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "service/client.h"
#include "service/fleet.h"
#include "service/jobqueue.h"
#include "service/netfault.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session.h"
#include "service/transport.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::service;

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CIRFIX_UNDER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define CIRFIX_UNDER_TSAN 1
#endif

namespace {

// ---------------------------------------------------------------
// Fixtures (the toggle design shared with the service tests)
// ---------------------------------------------------------------

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    s.replace(s.find("rst == 1'b1"), 11, "rst != 1'b1");
    s.replace(s.find("q <= !q"), 7, "q <= q");
    return s;
}

std::string
goldenDutOnly()
{
    std::string s = kGoldenToggle;
    return s.substr(0, s.find("module tb;"));
}

std::string
goldenTraceCsv(int finish_at)
{
    std::string src = kGoldenToggle;
    if (finish_at != 100)
        src.replace(src.find("#100 $finish"), 12,
                    "#" + std::to_string(finish_at) + " $finish");
    std::shared_ptr<const verilog::SourceFile> golden =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*golden, "tb");
    auto design = sim::elaborate(golden, "tb");
    sim::TraceRecorder rec(*design, probe);
    design->run();
    return rec.takeTrace().toCsv();
}

/** The deterministic seed-7 repair (lands mid-budget, so failover
 *  always happens with generations still to run). */
JobSpec
repairableSpec()
{
    JobSpec spec;
    spec.designSource = faultyToggle();
    spec.tbModule = "tb";
    spec.dutModule = "dut";
    spec.goldenSource = goldenDutOnly();
    spec.params.popSize = 12;
    spec.params.maxGenerations = 6;
    spec.params.maxSeconds = 300.0;
    spec.params.seed = 7;
    return spec;
}

/** Always runs its full generation budget (see test_service.cc). */
JobSpec
unrepairableSpec(int gens)
{
    JobSpec spec;
    spec.designSource = kGoldenToggle;
    spec.tbModule = "tb";
    spec.dutModule = "dut";
    spec.oracleCsv = goldenTraceCsv(200);
    spec.params.popSize = 8;
    spec.params.maxGenerations = gens;
    spec.params.maxSeconds = 300.0;
    spec.params.seed = 11;
    return spec;
}

std::string
uniqueName(const std::string &name)
{
    return name + "." + std::to_string(::getpid());
}

std::string
tmpDir(const std::string &name)
{
    std::string d = ::testing::TempDir() + uniqueName(name);
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

std::string
sockPath(const std::string &name)
{
    return ::testing::TempDir() + uniqueName(name) + ".sock";
}

Json
withoutTimes(Json j)
{
    j.remove("seconds");
    return j;
}

/** Disarm-on-scope-exit guard: a failed ASSERT inside a chaos test
 *  must not leave the process-global injector armed for later tests. */
struct ArmedPlan
{
    explicit ArmedPlan(const NetFaultPlan &plan)
    {
        NetFaultInjector::instance().arm(plan);
    }
    ~ArmedPlan() { NetFaultInjector::instance().disarm(); }
};

/** A Worker on its own thread, joined (via requestStop) on scope
 *  exit — mirrors what `cirfix worker` does in a process. */
struct WorkerThread
{
    Worker worker;
    std::thread thread;

    explicit WorkerThread(WorkerConfig cfg) : worker(std::move(cfg))
    {
        thread = std::thread([this] {
            try {
                worker.run({});
            } catch (...) {
            }
        });
    }
    ~WorkerThread() { stop(); }
    void
    stop()
    {
        worker.requestStop();
        if (thread.joinable())
            thread.join();
    }
};

WorkerConfig
workerConfig(const std::string &coordinator, const std::string &name)
{
    WorkerConfig cfg;
    cfg.coordinator = coordinator;
    cfg.name = name;
    cfg.workDir = tmpDir("fleet-wd-" + name);
    cfg.claimWaitSeconds = 0.05;  // tests poll fast
    return cfg;
}

/** Poll a predicate with a deadline (fleet state changes are
 *  asynchronous: worker connects, leases expire, jobs finish). */
bool
eventually(const std::function<bool()> &pred, double seconds = 30.0)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

/** Connected Conn pair through a real (Unix) listener, so the fault
 *  injector hooks and deadlines run exactly as in production. */
struct ConnPair
{
    Listener listener;
    std::unique_ptr<Conn> client;
    std::unique_ptr<Conn> server;

    explicit ConnPair(const std::string &name)
    {
        listener = Listener::bind(Address::parse(sockPath(name)));
        client = dial(listener.boundAddress(), 5.0);
        pollfd pfd{listener.fd(), POLLIN, 0};
        EXPECT_GT(::poll(&pfd, 1, 5000), 0);
        server = listener.accept();
        EXPECT_NE(server, nullptr);
    }
};

} // namespace

// ---------------------------------------------------------------
// Transport: addresses, round trips, deadlines, retry
// ---------------------------------------------------------------

TEST(FleetTransport, ParsesAndPrintsAddresses)
{
    Address u = Address::parse("unix:/run/x.sock");
    EXPECT_EQ(u.kind, Address::Kind::Unix);
    EXPECT_EQ(u.path, "/run/x.sock");
    EXPECT_EQ(u.str(), "unix:/run/x.sock");

    // Bare paths stay valid — the PR-3 --socket flags keep working.
    Address bare = Address::parse("/tmp/y.sock");
    EXPECT_EQ(bare.kind, Address::Kind::Unix);
    EXPECT_EQ(bare.path, "/tmp/y.sock");

    Address t = Address::parse("tcp:127.0.0.1:9000");
    EXPECT_EQ(t.kind, Address::Kind::Tcp);
    EXPECT_EQ(t.host, "127.0.0.1");
    EXPECT_EQ(t.port, 9000);
    EXPECT_EQ(t.str(), "tcp:127.0.0.1:9000");

    EXPECT_THROW(Address::parse("tcp:nohost"), TransportError);
    EXPECT_THROW(Address::parse("tcp:h:notaport"), TransportError);
    EXPECT_THROW(Address::parse("tcp::"), TransportError);
    EXPECT_THROW(Address::parse(""), TransportError);
}

TEST(FleetTransport, TcpRoundTripOnEphemeralPort)
{
    Listener l = Listener::bind(Address::parse("tcp:127.0.0.1:0"));
    ASSERT_EQ(l.boundAddress().kind, Address::Kind::Tcp);
    ASSERT_GT(l.boundAddress().port, 0);  // ephemeral port resolved

    std::unique_ptr<Conn> client = dial(l.boundAddress(), 5.0);
    pollfd pfd{l.fd(), POLLIN, 0};
    ASSERT_GT(::poll(&pfd, 1, 5000), 0);
    std::unique_ptr<Conn> server = l.accept();
    ASSERT_NE(server, nullptr);

    // Both directions, including a frame big enough to split across
    // TCP segments.
    std::string big(1u << 20, 'm');
    big[0] = 'A';
    big[big.size() - 1] = 'Z';
    std::thread writer([&] { client->writeFrame(big); });
    std::string got;
    ASSERT_TRUE(server->readFrame(&got));
    writer.join();
    EXPECT_EQ(got, big);
    server->writeFrame("pong");
    ASSERT_TRUE(client->readFrame(&got));
    EXPECT_EQ(got, "pong");
}

TEST(FleetTransport, DialToDeadPortFailsTyped)
{
    // Bind, record the port, close: dialing it now must refuse (or,
    // on an overloaded machine, time out) — either way a typed
    // TransportError, never a hang.
    Listener l = Listener::bind(Address::parse("tcp:127.0.0.1:0"));
    Address dead = l.boundAddress();
    l.close();
    EXPECT_THROW(dial(dead, 2.0), TransportError);
}

TEST(FleetTransport, DialRetryCountsAttemptsAndRecovers)
{
    Listener l = Listener::bind(Address::parse("tcp:127.0.0.1:0"));
    Address dead = l.boundAddress();
    l.close();

    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.connectTimeout = 1.0;
    policy.initialDelay = 0.01;
    policy.maxDelay = 0.02;
    int attempts = 0;
    EXPECT_THROW(dialRetry(dead, policy, &attempts), TransportError);
    EXPECT_EQ(attempts, 3);

    // An injected partition on the first dial, then recovery: retry
    // succeeds on attempt 2 against a live listener.
    Listener live = Listener::bind(Address::parse("tcp:127.0.0.1:0"));
    NetFaultPlan plan;
    plan.refuseConnectAt = 1;
    ArmedPlan armed(plan);
    attempts = 0;
    std::unique_ptr<Conn> conn =
        dialRetry(live.boundAddress(), policy, &attempts);
    ASSERT_NE(conn, nullptr);
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(NetFaultInjector::instance().counters().connectsRefused,
              1u);
}

TEST(FleetTransport, IoDeadlineExpiresAsFrameTimeout)
{
    ConnPair cp("fleet-deadline");
    cp.client->setIoDeadline(0.15);
    auto t0 = std::chrono::steady_clock::now();
    std::string got;
    EXPECT_THROW(cp.client->readFrame(&got), FrameTimeout);
    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_GE(waited, 0.1);
    EXPECT_LT(waited, 5.0);  // the deadline, not a hang
}

// ---------------------------------------------------------------
// Chaos harness: the injector drives transport faults
// ---------------------------------------------------------------

TEST(FleetNetFault, OneShotDropFiresExactlyOnce)
{
    ConnPair cp("nf-drop");
    NetFaultPlan plan;
    plan.dropWriteAt = 2;
    ArmedPlan armed(plan);

    cp.client->writeFrame("one");  // write #1: clean
    EXPECT_THROW(cp.client->writeFrame("two"), ConnectionClosed);
    EXPECT_EQ(NetFaultInjector::instance().counters().writesDropped,
              1u);
    // One-shot: a fresh connection's writes are clean again.
    ConnPair cp2("nf-drop2");
    cp2.client->writeFrame("three");  // write #3: past the trigger
    std::string got;
    ASSERT_TRUE(cp2.server->readFrame(&got));
    EXPECT_EQ(got, "three");
}

TEST(FleetNetFault, EveryModeFiresPeriodically)
{
    NetFaultPlan plan;
    plan.dropReadAt = 2;
    plan.every = true;
    ArmedPlan armed(plan);

    int dropped = 0;
    for (int i = 1; i <= 6; ++i) {
        ConnPair cp("nf-every-" + std::to_string(i));
        cp.client->writeFrame("ping");
        std::string got;
        try {
            cp.server->readFrame(&got);
        } catch (const ConnectionClosed &) {
            ++dropped;
        }
    }
    // Reads 2, 4 and 6 out of 6 hit the modulo schedule.
    EXPECT_EQ(dropped, 3);
    EXPECT_EQ(NetFaultInjector::instance().counters().readsDropped, 3u);
}

TEST(FleetNetFault, PartialWriteLeavesTruncatedFrameOnWire)
{
    ConnPair cp("nf-partial");
    NetFaultPlan plan;
    plan.partialWriteAt = 1;
    ArmedPlan armed(plan);

    // The writer sees its connection die; the reader sees a damaged
    // frame (truncation mid-frame), NOT a clean end of stream — the
    // difference between "peer finished" and "peer vanished".
    EXPECT_THROW(cp.client->writeFrame("a-payload-long-enough-to-cut"),
                 ConnectionClosed);
    std::string got;
    EXPECT_THROW(cp.server->readFrame(&got), ConnectionClosed);
    EXPECT_EQ(NetFaultInjector::instance().counters().writesTruncated,
              1u);
}

TEST(FleetNetFault, StallDelaysButDelivers)
{
    ConnPair cp("nf-stall");
    NetFaultPlan plan;
    plan.stallWriteAt = 1;
    plan.stallSeconds = 0.12;
    ArmedPlan armed(plan);

    auto t0 = std::chrono::steady_clock::now();
    cp.client->writeFrame("slow");
    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_GE(waited, 0.1);
    std::string got;
    ASSERT_TRUE(cp.server->readFrame(&got));
    EXPECT_EQ(got, "slow");
    EXPECT_EQ(NetFaultInjector::instance().counters().writeStalls, 1u);
}

// ---------------------------------------------------------------
// Lease machinery: the zero-loss / zero-duplication core
// ---------------------------------------------------------------

TEST(FleetLeases, ClaimRenewCompleteLifecycle)
{
    JobQueue q(AdmissionLimits{});
    long id = std::get<long>(q.submit(unrepairableSpec(1)));

    uint64_t lease = 0;
    std::shared_ptr<Job> job = q.tryClaim("w1/1", 5.0, &lease);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->id, id);
    EXPECT_NE(lease, 0u);
    EXPECT_EQ(job->state, JobState::Running);
    EXPECT_EQ(job->worker, "w1/1");
    EXPECT_EQ(job->attempts, 1);
    // Nothing else to claim.
    uint64_t other = 0;
    EXPECT_EQ(q.tryClaim("w2/2", 5.0, &other), nullptr);

    bool cancel = true;
    EXPECT_TRUE(q.renewLease(id, lease, 5.0, &cancel));
    EXPECT_FALSE(cancel);

    std::shared_ptr<Job> committed = q.completeLeased(id, lease);
    ASSERT_NE(committed, nullptr);
    q.setState(*committed, JobState::Done);
    // Replaying the commit is rejected: the duplication barrier.
    EXPECT_EQ(q.completeLeased(id, lease), nullptr);
    EXPECT_FALSE(q.renewLease(id, lease, 5.0, nullptr));

    LeaseStats stats = q.leaseStats();
    EXPECT_EQ(stats.assignments, 1u);
    EXPECT_EQ(stats.renewals, 1u);
    EXPECT_GE(stats.staleRejections, 2u);
}

TEST(FleetLeases, ExpiredLeaseRequeuesAndStaleCommitIsRejected)
{
    JobQueue q(AdmissionLimits{});
    long id = std::get<long>(q.submit(unrepairableSpec(1)));

    uint64_t stale = 0;
    ASSERT_NE(q.tryClaim("dead/1", 0.01, &stale), nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::vector<long> requeued = q.requeueExpired();
    ASSERT_EQ(requeued.size(), 1u);
    EXPECT_EQ(requeued[0], id);
    EXPECT_EQ(q.find(id)->state, JobState::Queued);

    // The presumed-dead worker comes back: every mutation under the
    // old lease bounces.
    EXPECT_FALSE(q.renewLease(id, stale, 5.0, nullptr));
    EXPECT_EQ(q.completeLeased(id, stale), nullptr);

    // A new claimant gets a strictly newer lease; attempts counts
    // the failover.
    uint64_t fresh = 0;
    std::shared_ptr<Job> job = q.tryClaim("live/2", 5.0, &fresh);
    ASSERT_NE(job, nullptr);
    EXPECT_GT(fresh, stale);
    EXPECT_EQ(job->attempts, 2);
    EXPECT_EQ(job->worker, "live/2");

    LeaseStats stats = q.leaseStats();
    EXPECT_EQ(stats.expirations, 1u);
    EXPECT_EQ(stats.requeues, 1u);
    EXPECT_GE(stats.staleRejections, 2u);
}

TEST(FleetLeases, DisconnectRequeuesImmediately)
{
    JobQueue q(AdmissionLimits{});
    long id = std::get<long>(q.submit(unrepairableSpec(1)));
    uint64_t lease = 0;
    ASSERT_NE(q.tryClaim("w1/7", 60.0, &lease), nullptr);

    // The connection died: no need to wait out a 60-second lease.
    std::vector<long> requeued = q.requeueOwnedBy("w1/7");
    ASSERT_EQ(requeued.size(), 1u);
    EXPECT_EQ(requeued[0], id);
    EXPECT_TRUE(q.requeueOwnedBy("w1/7").empty());  // idempotent
    EXPECT_EQ(q.find(id)->state, JobState::Queued);
}

TEST(FleetLeases, CancelDuringLeaseLandsTerminalNotRequeued)
{
    JobQueue q(AdmissionLimits{});
    long id = std::get<long>(q.submit(unrepairableSpec(1)));
    uint64_t lease = 0;
    ASSERT_NE(q.tryClaim("w1/1", 0.01, &lease), nullptr);

    std::string why;
    ASSERT_TRUE(q.cancel(id, &why)) << why;
    bool cancel = false;
    // The lease is still live for a moment: renewal relays the cancel.
    if (q.renewLease(id, lease, 0.01, &cancel)) {
        EXPECT_TRUE(cancel);
    }

    // The worker never commits (it was canceled); expiry must land the
    // job in Canceled, not re-run it on another worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::vector<long> swept = q.requeueExpired();
    ASSERT_EQ(swept.size(), 1u);  // swept, but terminal — not queued
    EXPECT_EQ(q.find(id)->state, JobState::Canceled);
    uint64_t again = 0;
    EXPECT_EQ(q.tryClaim("w2/2", 5.0, &again), nullptr);
}

TEST(FleetLeases, IdempotentSubmitsBeatEveryAdmissionCheck)
{
    AdmissionLimits limits;
    limits.queueDepth = 1;
    JobQueue q(limits);

    long a = std::get<long>(q.submit(unrepairableSpec(1), "req-A"));
    // Same request id: same job, no duplicate — even though the queue
    // is now full (idempotency outranks admission).
    EXPECT_EQ(std::get<long>(q.submit(unrepairableSpec(1), "req-A")), a);
    EXPECT_EQ(q.queuedCount(), 1u);
    // A different id is a real second submission: rejected.
    auto rej = q.submit(unrepairableSpec(1), "req-B");
    ASSERT_TRUE(std::holds_alternative<Rejection>(rej));
    EXPECT_EQ(std::get<Rejection>(rej).code, errc::kQueueFull);
    // The idempotent retry still resolves even while full.
    EXPECT_EQ(std::get<long>(q.submit(unrepairableSpec(1), "req-A")), a);
}

TEST(FleetLeases, FleetStatusGatesAdmission)
{
    AdmissionLimits limits;
    limits.queueDepth = 4;
    JobQueue q(limits);

    q.setFleetStatus(/*noWorkers=*/true, /*degraded=*/false);
    auto rej = q.submit(unrepairableSpec(1));
    ASSERT_TRUE(std::holds_alternative<Rejection>(rej));
    EXPECT_EQ(std::get<Rejection>(rej).code, errc::kNoWorkers);

    // Degraded: effective depth is halved (4 -> 2) and overflow is
    // coded degraded so clients can tell load-shedding from overload.
    q.setFleetStatus(false, /*degraded=*/true);
    EXPECT_TRUE(std::holds_alternative<long>(q.submit(unrepairableSpec(1))));
    EXPECT_TRUE(std::holds_alternative<long>(q.submit(unrepairableSpec(1))));
    rej = q.submit(unrepairableSpec(1));
    ASSERT_TRUE(std::holds_alternative<Rejection>(rej));
    EXPECT_EQ(std::get<Rejection>(rej).code, errc::kDegraded);

    // Healthy again: the full depth is back.
    q.setFleetStatus(false, false);
    EXPECT_TRUE(std::holds_alternative<long>(q.submit(unrepairableSpec(1))));
}

// ---------------------------------------------------------------
// Coordinator / worker end-to-end
// ---------------------------------------------------------------

namespace {

ServerConfig
coordinatorConfig(const std::string &tag, double leaseSeconds = 3.0)
{
    ServerConfig cfg;
    cfg.listenAddress = "unix:" + sockPath(tag);
    cfg.stateDir = tmpDir(tag + "-state");
    cfg.workers = 0;  // coordinator: remote execution only
    cfg.fleet.requireWorkers = true;
    cfg.fleet.leaseSeconds = leaseSeconds;
    return cfg;
}

/** Drain a job's event stream to its terminal event. */
void
drainJob(const std::string &address, long id)
{
    Client watcher(address);
    watcher.subscribe(id);
    Json ev;
    while (watcher.recv(&ev))
        if (ev.str("type") == "end_of_stream")
            break;
}

} // namespace

TEST(FleetServer, CoordinatorShardsJobToWorkerBitIdentically)
{
    ServerConfig cfg = coordinatorConfig("fleet-e2e");
    Server server(cfg);
    server.start();
    std::string address = server.boundAddress();

    // Admission before any worker connects: structured no_workers.
    {
        Client client(address);
        try {
            client.submit(repairableSpec());
            FAIL() << "submit with no workers must be rejected";
        } catch (const ServiceError &e) {
            EXPECT_EQ(e.code(), errc::kNoWorkers);
        }
    }

    WorkerThread wt(workerConfig(address, "wA"));
    ASSERT_TRUE(eventually([&] { return server.workerCount() == 1; }));

    Client client(address);
    long id = client.submit(repairableSpec());
    ASSERT_GT(id, 0);
    drainJob(address, id);

    Json summary = client.status(id);
    EXPECT_EQ(summary.str("state"), "done");
    // Worker provenance: name + connection serial.
    EXPECT_EQ(summary.str("worker").rfind("wA/", 0), 0u);
    EXPECT_EQ(summary.num("attempts"), 1);

    Json reply = client.result(id);
    const Json *result = reply.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->flag("found"));

    // The remote run is bit-identical to a local in-process run of
    // the same spec (wall-clock excluded).
    SessionOutcome reference =
        runRepairJob(repairableSpec(), "", nullptr, nullptr);
    ASSERT_EQ(reference.state, JobState::Done);
    EXPECT_EQ(withoutTimes(*result).dump(),
              withoutTimes(reference.result).dump());

    // Terminal job: the coordinator-side snapshot is gone.
    EXPECT_FALSE(std::filesystem::exists(cfg.stateDir + "/job-" +
                                         std::to_string(id) + ".snap"));
    server.stop();
}

TEST(FleetServer, WorkerDeathFailsOverAndResumesBitIdentically)
{
    // Short lease: failover latency is bounded by leaseSeconds plus
    // one sweep tick.
    ServerConfig cfg = coordinatorConfig("fleet-failover", 0.5);
    Server server(cfg);
    server.start();
    std::string address = server.boundAddress();

    auto workerA =
        std::make_unique<WorkerThread>(workerConfig(address, "wA"));
    ASSERT_TRUE(eventually([&] { return server.workerCount() == 1; }));

    // A long deterministic job (40 full generations): worker A cannot
    // finish it before the wind-down lands, so failover is guaranteed
    // to happen mid-run.
    JobSpec spec = unrepairableSpec(40);
    Client client(address);
    long id = client.submit(spec);

    // Let worker A checkpoint at least two generations, then wind it
    // down mid-job without letting it commit: its lease lapses and
    // the job must requeue.
    ASSERT_TRUE(eventually([&] {
        return client.status(id).num("generation", 0) >= 2;
    }));
    workerA->stop();
    workerA.reset();

    // The coordinator still holds worker A's last checkpoint, stamped
    // with its provenance — the failover hand-off artifact.
    std::string snap =
        cfg.stateDir + "/job-" + std::to_string(id) + ".snap";
    ASSERT_TRUE(eventually(
        [&] { return std::filesystem::exists(snap); }, 5.0));
    EXPECT_EQ(core::loadSnapshot(snap).provenance, "wA");

    WorkerThread workerB(workerConfig(address, "wB"));
    drainJob(address, id);

    Json summary = client.status(id);
    EXPECT_EQ(summary.str("state"), "done");
    EXPECT_EQ(summary.str("worker").rfind("wB/", 0), 0u);
    EXPECT_EQ(summary.num("attempts"), 2);

    // The acceptance bar: resumed-on-another-worker result equals the
    // single-host uninterrupted run, bit for bit.
    SessionOutcome reference = runRepairJob(spec, "", nullptr, nullptr);
    Json reply = client.result(id);
    EXPECT_EQ(withoutTimes(*reply.find("result")).dump(),
              withoutTimes(reference.result).dump());

    LeaseStats stats = server.queue().leaseStats();
    EXPECT_GE(stats.requeues, 1u);
    server.stop();
}

TEST(FleetServer, StaleWorkerCommitGetsLeaseLost)
{
    ServerConfig cfg = coordinatorConfig("fleet-stale", 0.2);
    Server server(cfg);
    server.start();
    Address addr = Address::parse(server.boundAddress());

    // Raw fake workers: drive the wire protocol directly so the dead
    // worker can "keep computing" past its lease.
    auto helloAs = [&](Conn &conn, const std::string &name) {
        conn.writeFrame(makeWorkerHello(name).dump());
        std::string payload;
        ASSERT_TRUE(conn.readFrame(&payload));
        ASSERT_EQ(Json::parse(payload).str("type"), "hello");
    };
    auto claimOne = [&](Conn &conn, long *id, uint64_t *lease) {
        Json req = Json::object();
        req["type"] = "claim";
        req["wait_ms"] = 2000;
        conn.writeFrame(req.dump());
        std::string payload;
        ASSERT_TRUE(conn.readFrame(&payload));
        Json reply = Json::parse(payload);
        ASSERT_EQ(reply.str("type"), "job");
        *id = reply.num("id", -1);
        *lease = static_cast<uint64_t>(reply.num("lease_id", 0));
    };
    auto sendDone = [&](Conn &conn, long id, uint64_t lease) -> Json {
        Json done = Json::object();
        done["type"] = "done";
        done["id"] = id;
        done["lease_id"] = static_cast<long long>(lease);
        done["state"] = "done";
        Json result = Json::object();
        result["found"] = false;
        done["result"] = std::move(result);
        conn.writeFrame(done.dump());
        std::string payload;
        EXPECT_TRUE(conn.readFrame(&payload));
        return Json::parse(payload);
    };

    std::unique_ptr<Conn> dead = dial(addr, 5.0);
    helloAs(*dead, "dead");
    ASSERT_TRUE(eventually([&] { return server.workerCount() == 1; }));

    Client client(server.boundAddress());
    long submitted = client.submit(unrepairableSpec(2));

    long id = -1;
    uint64_t staleLease = 0;
    claimOne(*dead, &id, &staleLease);
    EXPECT_EQ(id, submitted);

    // The worker goes silent past its lease; the sweep requeues.
    ASSERT_TRUE(eventually([&] {
        return client.status(id).str("state") == "queued";
    }));

    // It then tries to commit anyway: the duplication barrier says no.
    Json bounced = sendDone(*dead, id, staleLease);
    EXPECT_EQ(bounced.str("type"), "error");
    EXPECT_EQ(bounced.str("code"), errc::kLeaseLost);

    // A live worker claims and commits under the fresh lease.
    std::unique_ptr<Conn> live = dial(addr, 5.0);
    helloAs(*live, "live");
    uint64_t freshLease = 0;
    long id2 = -1;
    claimOne(*live, &id2, &freshLease);
    EXPECT_EQ(id2, id);
    EXPECT_GT(freshLease, staleLease);
    Json ok = sendDone(*live, id, freshLease);
    EXPECT_EQ(ok.str("type"), "ok");

    // Exactly one job, exactly one completion.
    EXPECT_EQ(client.status(id).str("state"), "done");
    EXPECT_EQ(client.list().size(), 1u);
    EXPECT_GE(server.queue().leaseStats().staleRejections, 1u);
    server.stop();
}

TEST(FleetServer, CoordinatorRestartRecoversFleetJobs)
{
    std::string socket = sockPath("fleet-restart");
    std::string state = tmpDir("fleet-restart-state");
    auto makeCfg = [&] {
        ServerConfig cfg;
        cfg.listenAddress = "unix:" + socket;
        cfg.stateDir = state;
        cfg.workers = 0;
        cfg.fleet.requireWorkers = true;
        cfg.fleet.leaseSeconds = 1.0;
        return cfg;
    };

    // The worker outlives the coordinator: its dialRetry loop carries
    // it across the restart.
    auto server = std::make_unique<Server>(makeCfg());
    server->start();
    WorkerThread wt(workerConfig("unix:" + socket, "wR"));
    ASSERT_TRUE(eventually([&] { return server->workerCount() == 1; }));

    JobSpec spec = unrepairableSpec(40);  // long enough to interrupt
    Client client("unix:" + socket);
    long id = client.submit(spec);
    ASSERT_TRUE(eventually([&] {
        return client.status(id).num("generation", 0) >= 2;
    }));

    // Stop the coordinator mid-job. The worker abandons its attempt
    // (heartbeat fails) and keeps re-dialing.
    server->stop();
    server.reset();

    // Restart on the same state dir: the job replays as queued (its
    // lease did not survive), the worker reconnects, claims it, and
    // resumes from the durable coordinator-side checkpoint.
    server = std::make_unique<Server>(makeCfg());
    server->start();
    ASSERT_TRUE(
        eventually([&] { return server->workerCount() == 1; }, 60.0));

    Client after("unix:" + socket);
    ASSERT_TRUE(eventually(
        [&] { return after.status(id).str("state") == "done"; }, 60.0));

    SessionOutcome reference = runRepairJob(spec, "", nullptr, nullptr);
    Json reply = after.result(id);
    EXPECT_EQ(withoutTimes(*reply.find("result")).dump(),
              withoutTimes(reference.result).dump());
    EXPECT_GE(wt.worker.stats().reconnects, 1u);
    server->stop();
}

TEST(FleetServer, SigkilledWorkerProcessFailsOver)
{
#ifdef CIRFIX_UNDER_TSAN
    GTEST_SKIP() << "fork+threads is unsupported under tsan";
#endif
    std::string socket = sockPath("fleet-kill9");

    // Fork the victim BEFORE any server threads exist (fork with live
    // locks is undefined); its dialRetry loop waits for the
    // coordinator to come up.
    pid_t victim = fork();
    ASSERT_GE(victim, 0);
    if (victim == 0) {
        try {
            WorkerConfig wc;
            wc.coordinator = "unix:" + socket;
            wc.name = "victim";
            wc.workDir =
                ::testing::TempDir() + "fleet-kill9-wd." +
                std::to_string(::getpid());
            Worker worker(wc);
            worker.run({});
        } catch (...) {
        }
        _exit(0);
    }

    ServerConfig cfg;
    cfg.listenAddress = "unix:" + socket;
    cfg.stateDir = tmpDir("fleet-kill9-state");
    cfg.workers = 0;
    cfg.fleet.requireWorkers = true;
    cfg.fleet.leaseSeconds = 0.5;
    Server server(cfg);
    server.start();
    ASSERT_TRUE(
        eventually([&] { return server.workerCount() == 1; }, 30.0));

    JobSpec spec = unrepairableSpec(40);  // long enough to interrupt
    Client client("unix:" + socket);
    long id = client.submit(spec);
    ASSERT_TRUE(eventually([&] {
        return client.status(id).num("generation", 0) >= 2;
    }));

    // kill -9 mid-generation: no goodbye frame, no unwinding — the
    // lease (and the dead TCP peer) is all the coordinator gets.
    ASSERT_EQ(::kill(victim, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(WIFSIGNALED(status));

    WorkerThread rescue(workerConfig("unix:" + socket, "rescue"));
    drainJob("unix:" + socket, id);

    Json summary = client.status(id);
    EXPECT_EQ(summary.str("state"), "done");
    EXPECT_EQ(summary.str("worker").rfind("rescue/", 0), 0u);
    EXPECT_EQ(summary.num("attempts"), 2);

    SessionOutcome reference = runRepairJob(spec, "", nullptr, nullptr);
    Json reply = client.result(id);
    EXPECT_EQ(withoutTimes(*reply.find("result")).dump(),
              withoutTimes(reference.result).dump());
    server.stop();
}

TEST(FleetServer, SustainedChaosLosesNothingDuplicatesNothing)
{
    ServerConfig cfg = coordinatorConfig("fleet-chaos", 0.5);
    Server server(cfg);
    server.start();
    std::string address = server.boundAddress();

    std::vector<std::unique_ptr<WorkerThread>> workers;
    for (int i = 0; i < 3; ++i)
        workers.push_back(std::make_unique<WorkerThread>(
            workerConfig(address, "cw" + std::to_string(i))));
    ASSERT_TRUE(eventually([&] { return server.workerCount() == 3; }));

    // Sustained frame-level chaos for the whole run: every 13th write
    // drops the connection, every 23rd read drops it, every 7th write
    // stalls. Clients are hit too — their idempotent request ids are
    // what keeps retried submits single.
    NetFaultPlan plan;
    plan.dropWriteAt = 13;
    plan.dropReadAt = 23;
    plan.stallWriteAt = 7;
    plan.stallSeconds = 0.005;
    plan.every = true;
    ArmedPlan armed(plan);

    std::vector<JobSpec> specs;
    specs.push_back(repairableSpec());
    specs.push_back(unrepairableSpec(10));
    {
        JobSpec alt = unrepairableSpec(6);
        alt.params.seed = 23;
        specs.push_back(alt);
    }

    // Submit under chaos: a dropped reply forces a retry of the SAME
    // request id; the id that comes back must be the original job.
    auto submitWithRetry = [&](const JobSpec &spec) -> long {
        std::string requestId = Client::newRequestId();
        for (int attempt = 0;; ++attempt) {
            try {
                Client c(address);
                return c.submit(spec, requestId);
            } catch (const ServiceError &) {
                throw;  // structured rejection: not a transport fault
            } catch (const std::exception &) {
                if (attempt > 50)
                    throw;
            }
        }
    };
    std::vector<long> ids;
    for (const JobSpec &spec : specs)
        ids.push_back(submitWithRetry(spec));

    auto statusWithRetry = [&](long id) -> Json {
        for (int attempt = 0;; ++attempt) {
            try {
                Client c(address);
                return c.status(id);
            } catch (const std::exception &) {
                if (attempt > 50)
                    throw;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        }
    };

    // Every job reaches done — none lost, none wedged — despite
    // connection drops landing on submits, claims, progress frames
    // and commits alike.
    for (long id : ids)
        ASSERT_TRUE(eventually(
            [&] { return statusWithRetry(id).str("state") == "done"; },
            120.0))
            << "job " << id << " not terminal under chaos";

    NetFaultCounters chaos = NetFaultInjector::instance().counters();
    EXPECT_GT(chaos.total(), 0u) << "the plan never fired: no chaos";
    NetFaultInjector::instance().disarm();

    // Zero lost: exactly the submitted jobs exist (idempotent retries
    // never duplicated a submission).
    {
        Client calm(address);
        EXPECT_EQ(calm.list().size(), specs.size());
        // Zero duplicated: every result matches the uninterrupted
        // single-host reference bit for bit — a job that ran twice to
        // completion would have been caught by the lease barrier (and
        // the coordinator's terminal state machine would refuse the
        // second commit).
        for (size_t i = 0; i < ids.size(); ++i) {
            SessionOutcome reference =
                runRepairJob(specs[i], "", nullptr, nullptr);
            Json reply = calm.result(ids[i]);
            EXPECT_EQ(withoutTimes(*reply.find("result")).dump(),
                      withoutTimes(reference.result).dump())
                << "job " << ids[i];
        }
    }

    for (auto &w : workers)
        w->stop();
    server.stop();
}

// ---------------------------------------------------------------
// Island jobs on the fleet (coordinator shards one job to K workers)
// ---------------------------------------------------------------

namespace {

/** The repairable two-fault toggle, sharded into K islands. Migration
 *  reshapes each island's trajectory, so the repair can land later
 *  than the plain run's generation 6 — the budget is generous and the
 *  winner stops everyone early anyway. */
JobSpec
islandSpec(int islands = 4)
{
    JobSpec spec = repairableSpec();
    // Seed 15845 converges at K=4 (island 1 finds the repair at epoch
    // 3); the base seed 7 only repairs in the single-population run.
    spec.params.seed = 15845;
    spec.params.maxGenerations = 12;
    spec.params.islands = islands;
    spec.params.migrationInterval = 2;
    spec.params.migrantsPerIsland = 2;
    return spec;
}

/** A synthetic valid, evaluated variant with a distinct key per
 *  @p target (one Delete edit) — protocol-level test traffic. */
core::Variant
fleetVariant(int target, double fitness)
{
    core::Variant v;
    core::Edit e;
    e.kind = core::EditKind::Delete;
    e.target = target;
    v.patch.edits.push_back(std::move(e));
    v.fit.fitness = fitness;
    v.valid = true;
    v.evaluated = true;
    return v;
}

std::string
fleetKey(int target)
{
    return fleetVariant(target, 0).patch.key();
}

} // namespace

TEST(FleetIsland, CacheSyncSharesScoresAcrossWorkers)
{
    core::IslandConfig ic;
    ic.islands = 2;
    IslandCoordinator coord(ic, "");

    // Worker A publishes an exact score and condemns a crasher.
    core::FitnessCache::Entry scored;
    scored.valid = true;
    scored.fit.fitness = 0.625;
    core::QuarantineEntry crashed;
    crashed.error = "simulator crashed";
    Json publish = Json::object();
    publish["type"] = "cache_sync";
    Json keys;
    publish["publish"] =
        encodeCacheEntries({{fleetKey(1), scored}}, &keys);
    publish["publish_keys"] = std::move(keys);
    publish["condemn"] =
        encodeQuarantineRecords({{fleetKey(2), crashed}});
    Json ack = coord.handleCacheSync(publish);
    EXPECT_EQ(ack.str("type"), "cache");

    // Worker B looks the same keys up: the published score is a hit,
    // the condemned key comes back quarantined, the unknown key is
    // silently absent (B will score it itself).
    Json lookup = Json::object();
    lookup["type"] = "cache_sync";
    Json want = Json::array();
    want.push(fleetKey(1));
    want.push(fleetKey(2));
    want.push(fleetKey(3));
    lookup["lookup"] = std::move(want);
    Json reply = coord.handleCacheSync(lookup);
    ASSERT_EQ(reply.str("type"), "cache");

    auto hits = decodeCacheEntries(*reply.find("hit_keys"),
                                   reply.str("hits"));
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].first, fleetKey(1));
    EXPECT_DOUBLE_EQ(hits[0].second.fit.fitness, 0.625);
    auto quarantined =
        decodeQuarantineRecords(*reply.find("quarantined"));
    ASSERT_EQ(quarantined.size(), 1u);
    EXPECT_EQ(quarantined[0].first, fleetKey(2));
    EXPECT_EQ(quarantined[0].second.error, "simulator crashed");
}

TEST(FleetIsland, QuarantinedKeysNeverMigrateAsElites)
{
    core::IslandConfig ic;
    ic.islands = 2;
    ic.migrationInterval = 2;
    IslandCoordinator coord(ic, "");

    // The fleet condemned key 8 (it crashed a simulator somewhere).
    core::QuarantineEntry crashed;
    crashed.error = "boom";
    Json condemn = Json::object();
    condemn["condemn"] =
        encodeQuarantineRecords({{fleetKey(8), crashed}});
    coord.handleCacheSync(condemn);

    // Island 0 exports the condemned key among its elites; island 1's
    // submission seals the barrier.
    auto migrate = [&](int island,
                       const std::vector<core::Variant> &elites) {
        Json msg = Json::object();
        msg["island"] = island;
        msg["epoch"] = 1;
        msg["elites"] = core::encodeVariants(elites);
        return coord.handleMigrate(msg);
    };
    Json waiting =
        migrate(0, {fleetVariant(8, 1.0), fleetVariant(1, 0.9)});
    EXPECT_EQ(waiting.str("type"), "ok");
    EXPECT_TRUE(waiting.flag("wait"));
    Json sealed = migrate(1, {fleetVariant(5, 0.5)});
    ASSERT_EQ(sealed.str("type"), "migrants");

    // The broadcast excludes the condemned key — a poisoned patch can
    // never propagate through migration.
    std::vector<core::Variant> migrants =
        core::decodeVariants(sealed.str("migrants"));
    std::vector<std::string> keys;
    for (const core::Variant &v : migrants)
        keys.push_back(v.patch.key());
    EXPECT_EQ(keys, (std::vector<std::string>{fleetKey(1),
                                              fleetKey(5)}));
    EXPECT_EQ(coord.ledger().stats().migrantDuplicates, 0);
}

TEST(FleetIsland, FourIslandFleetMatchesInProcessFingerprint)
{
    JobSpec spec = islandSpec(4);

    // In-process reference: the classic daemon path runs the same
    // 4-island job on threads.
    SessionOutcome reference = runRepairJob(spec, "", nullptr, nullptr);
    ASSERT_EQ(reference.state, JobState::Done);
    const Json *refIslands = reference.result.find("islands");
    ASSERT_NE(refIslands, nullptr);
    std::string refFingerprint = refIslands->str("fingerprint");
    ASSERT_FALSE(refFingerprint.empty());

    ServerConfig cfg = coordinatorConfig("fleet-island-e2e");
    Server server(cfg);
    server.start();
    std::string address = server.boundAddress();
    std::vector<std::unique_ptr<WorkerThread>> workers;
    for (int i = 0; i < 4; ++i)
        workers.push_back(std::make_unique<WorkerThread>(
            workerConfig(address, "iw" + std::to_string(i))));
    ASSERT_TRUE(eventually([&] { return server.workerCount() == 4; }));

    Client client(address);
    long id = client.submit(spec);
    drainJob(address, id);

    Json summary = client.status(id);
    EXPECT_EQ(summary.str("state"), "done");
    // The per-shard progress schema rides the status summary.
    EXPECT_EQ(summary.num("island_count"), 4);
    const Json *shards = summary.find("islands");
    ASSERT_NE(shards, nullptr);
    ASSERT_EQ(shards->size(), 4u);
    for (const Json &s : shards->items()) {
        EXPECT_TRUE(s.has("island"));
        EXPECT_TRUE(s.flag("done"));
        EXPECT_TRUE(s.has("generation"));
        EXPECT_TRUE(s.has("epoch"));
        EXPECT_TRUE(s.has("best_fitness"));
        EXPECT_TRUE(s.has("fitness_evals"));
        EXPECT_GE(s.num("attempts"), 1);
        EXPECT_FALSE(s.str("worker").empty());
    }

    Json reply = client.result(id);
    const Json *result = reply.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->flag("found"));
    const Json *islands = result->find("islands");
    ASSERT_NE(islands, nullptr);

    // The acceptance bar: a 4-worker fleet and 4 in-process threads
    // compute the same run — one integer to compare. (Work counters
    // like evals and cache hits legitimately differ with timing; the
    // fingerprint hashes exactly the invariant part.)
    EXPECT_EQ(islands->str("fingerprint"), refFingerprint);
    EXPECT_EQ(islands->num("winner_island"),
              refIslands->num("winner_island"));
    EXPECT_EQ(islands->num("winner_epoch"),
              refIslands->num("winner_epoch"));
    EXPECT_EQ(result->str("repaired_source"),
              reference.result.str("repaired_source"));
    // Hard migration invariants.
    const Json *mig = islands->find("migration");
    ASSERT_NE(mig, nullptr);
    EXPECT_EQ(mig->num("migrant_duplicates"), 0);
    EXPECT_EQ(mig->num("elites_lost"), 0);

    // Terminal island job: ledger and shard snapshots are cleaned up
    // (the removal runs just after the terminal event is published).
    EXPECT_TRUE(eventually([&] {
        if (std::filesystem::exists(cfg.stateDir + "/job-" +
                                    std::to_string(id) + ".ledger"))
            return false;
        for (int k = 0; k < 4; ++k)
            if (std::filesystem::exists(
                    cfg.stateDir + "/job-" + std::to_string(id) +
                    ".i" + std::to_string(k) + ".snap"))
                return false;
        return true;
    }));

    for (auto &w : workers)
        w->stop();
    server.stop();
}

TEST(FleetIsland, RerunOnFleetIsBitIdentical)
{
    // Two fleet runs of the same island job — different timing, same
    // fingerprint. Catches any nondeterminism the in-process
    // comparison above could mask.
    JobSpec spec = islandSpec(3);
    std::vector<std::string> fingerprints;
    for (int round = 0; round < 2; ++round) {
        ServerConfig cfg = coordinatorConfig(
            "fleet-island-rerun" + std::to_string(round));
        Server server(cfg);
        server.start();
        std::string address = server.boundAddress();
        std::vector<std::unique_ptr<WorkerThread>> workers;
        for (int i = 0; i < 3; ++i)
            workers.push_back(std::make_unique<WorkerThread>(
                workerConfig(address, "rw" + std::to_string(i))));
        ASSERT_TRUE(
            eventually([&] { return server.workerCount() == 3; }));
        Client client(address);
        long id = client.submit(spec);
        drainJob(address, id);
        Json reply = client.result(id);
        const Json *islands = reply.find("result")->find("islands");
        ASSERT_NE(islands, nullptr);
        fingerprints.push_back(islands->str("fingerprint"));
        for (auto &w : workers)
            w->stop();
        server.stop();
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST(FleetIsland, SigkilledWorkerMidEpochPreservesFingerprint)
{
#ifdef CIRFIX_UNDER_TSAN
    GTEST_SKIP() << "fork+threads is unsupported under tsan";
#endif
    // A longer deterministic island job (the unrepairable spec, 12
    // generations x 3 islands) so the SIGKILL provably lands mid-run.
    JobSpec spec = unrepairableSpec(12);
    spec.params.islands = 3;
    spec.params.migrationInterval = 2;
    spec.params.migrantsPerIsland = 2;

    SessionOutcome reference = runRepairJob(spec, "", nullptr, nullptr);
    ASSERT_EQ(reference.state, JobState::Done);
    std::string refFingerprint =
        reference.result.find("islands")->str("fingerprint");

    std::string socket = sockPath("fleet-island-kill9");

    // Fork the victim BEFORE any server threads exist (fork with live
    // locks is undefined); its dialRetry loop waits for the
    // coordinator to come up.
    pid_t victim = fork();
    ASSERT_GE(victim, 0);
    if (victim == 0) {
        try {
            WorkerConfig wc;
            wc.coordinator = "unix:" + socket;
            wc.name = "ivictim";
            wc.claimWaitSeconds = 0.05;
            wc.workDir = ::testing::TempDir() + "fleet-ikill9-wd." +
                         std::to_string(::getpid());
            Worker worker(wc);
            worker.run({});
        } catch (...) {
        }
        _exit(0);
    }

    ServerConfig cfg;
    cfg.listenAddress = "unix:" + socket;
    cfg.stateDir = tmpDir("fleet-island-kill9-state");
    cfg.workers = 0;
    cfg.fleet.requireWorkers = true;
    cfg.fleet.leaseSeconds = 0.5;
    Server server(cfg);
    server.start();
    std::string address = server.boundAddress();

    std::vector<std::unique_ptr<WorkerThread>> crew;
    for (int i = 0; i < 2; ++i)
        crew.push_back(std::make_unique<WorkerThread>(
            workerConfig(address, "icrew" + std::to_string(i))));
    ASSERT_TRUE(
        eventually([&] { return server.workerCount() == 3; }, 30.0));

    Client client(address);
    long id = client.submit(spec);

    // Wait until every shard is leased and at least one epoch of
    // progress exists, so the kill lands mid-epoch on a live shard.
    ASSERT_TRUE(eventually([&] {
        Json st = client.status(id);
        const Json *shards = st.find("islands");
        if (!shards || shards->size() != 3u)
            return false;
        int leased = 0, progressed = 0;
        for (const Json &s : shards->items()) {
            if (!s.str("worker").empty())
                ++leased;
            if (s.num("generation", 0) >= 2)
                ++progressed;
        }
        return leased == 3 && progressed >= 1;
    }));

    // kill -9: no goodbye frame — the lease (and a dead TCP peer) is
    // all the coordinator gets. Its shard requeues and another worker
    // resumes it from the coordinator-side shard snapshot.
    ASSERT_EQ(::kill(victim, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(WIFSIGNALED(status));

    WorkerThread rescue(workerConfig(address, "irescue"));
    drainJob(address, id);

    Json summary = client.status(id);
    EXPECT_EQ(summary.str("state"), "done");

    Json reply = client.result(id);
    const Json *islands = reply.find("result")->find("islands");
    ASSERT_NE(islands, nullptr);
    // The acceptance bar: SIGKILL-one-worker-mid-epoch changes
    // nothing the fingerprint can see — and no elites were lost or
    // duplicated across the failover.
    EXPECT_EQ(islands->str("fingerprint"), refFingerprint);
    const Json *mig = islands->find("migration");
    ASSERT_NE(mig, nullptr);
    EXPECT_EQ(mig->num("elites_lost"), 0);
    EXPECT_EQ(mig->num("migrant_duplicates"), 0);

    for (auto &w : crew)
        w->stop();
    server.stop();
}
