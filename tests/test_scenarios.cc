/**
 * @file
 * End-to-end repair tests: CirFix must actually repair representative
 * defect scenarios from the benchmark suite, and the repairs must
 * survive the held-out correctness check.
 */

#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/oracle.h"
#include "core/scenario.h"

using namespace cirfix;
using namespace cirfix::core;

namespace {

EngineConfig
fastConfig(uint64_t seed = 42)
{
    EngineConfig cfg;
    cfg.popSize = 100;
    cfg.maxGenerations = 12;
    cfg.maxSeconds = 20.0;
    cfg.seed = seed;
    return cfg;
}

RepairResult
repairOnce(const std::string &defect_id, uint64_t seed = 42)
{
    const DefectSpec &d = bench::getDefect(defect_id);
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    RepairEngine engine = sc.makeEngine(fastConfig(seed));
    return engine.run();
}

TEST(Scenarios, RepairsCounterSensitivity)
{
    RepairResult res = repairOnce("counter_sensitivity");
    ASSERT_TRUE(res.found);
    const DefectSpec &d = bench::getDefect("counter_sensitivity");
    Scenario sc = buildScenario(bench::getProject(d.project), d);
    EXPECT_TRUE(checkCorrectness(sc, res.patch));
}

TEST(Scenarios, RepairsLshiftSensitivity)
{
    RepairResult res = repairOnce("lshift_sensitivity");
    ASSERT_TRUE(res.found);
    EXPECT_LT(res.seconds, 20.0);
}

TEST(Scenarios, RepairsLshiftConditional)
{
    EXPECT_TRUE(repairOnce("lshift_conditional").found);
}

TEST(Scenarios, RepairsFlipflopConditional)
{
    EXPECT_TRUE(repairOnce("flipflop_conditional").found);
}

TEST(Scenarios, RepairsLshiftBlocking)
{
    bool found = false;
    for (uint64_t seed : {42u, 1u, 7u})
        found |= repairOnce("lshift_blocking", seed).found;
    EXPECT_TRUE(found);
}

TEST(Scenarios, RepairsCounterIncrement)
{
    EXPECT_TRUE(repairOnce("counter_increment").found);
}

TEST(Scenarios, MultiEditCounterResetRepairs)
{
    // The triple-edit defect of RQ3; allow a couple of seeds.
    bool found = false;
    for (uint64_t seed : {42u, 1u, 7u}) {
        RepairResult res = repairOnce("counter_incorrect_reset", seed);
        if (res.found) {
            found = true;
            EXPECT_GE(res.patch.size(), 2u);
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Scenarios, StructurallyUnreachableDefectsStayUnrepaired)
{
    for (const char *id :
         {"tate_shift_operator", "sdram_numeric_definitions"}) {
        const DefectSpec &d = bench::getDefect(id);
        const ProjectSpec &p = bench::getProject(d.project);
        Scenario sc = buildScenario(p, d);
        EngineConfig cfg = fastConfig();
        cfg.popSize = 40;
        cfg.maxGenerations = 4;
        cfg.maxSeconds = 6.0;
        RepairEngine engine = sc.makeEngine(cfg);
        RepairResult res = engine.run();
        EXPECT_FALSE(res.found) << id;
        EXPECT_GT(res.fitnessEvals, 0) << id;
    }
}

TEST(Scenarios, I2cAddressDefectOverfits)
{
    // Designed overfit: the repair testbench only writes; a repair
    // that fixes the visible bit-count error but not the rw bit is
    // plausible yet incorrect.
    const DefectSpec &d = bench::getDefect("i2c_address_assignment");
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    RepairEngine engine = sc.makeEngine(fastConfig());
    RepairResult res = engine.run();
    if (res.found) {  // stochastic: when found, it must overfit
        EXPECT_FALSE(checkCorrectness(sc, res.patch));
    }
}

TEST(Scenarios, RelocalizationCanBeDisabled)
{
    const DefectSpec &d = bench::getDefect("counter_sensitivity");
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    EngineConfig cfg = fastConfig();
    cfg.relocalize = false;
    RepairEngine engine = sc.makeEngine(cfg);
    EXPECT_TRUE(engine.run().found);
}

TEST(Scenarios, ThinnedOracleStillGuidesRepair)
{
    // RQ4: with half the expected-behavior rows the sensitivity
    // defect remains repairable.
    const DefectSpec &d = bench::getDefect("counter_sensitivity");
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    Trace thin = thinOracle(sc.oracle, 0.5);
    ASSERT_LT(thin.size(), sc.oracle.size());
    RepairEngine engine(sc.faulty, p.tbModule, p.dutModule, sc.probe,
                        thin, fastConfig());
    RepairResult res = engine.run();
    EXPECT_TRUE(res.found);
}

TEST(Scenarios, BaselineFitnessMatchesEngineEvaluate)
{
    const DefectSpec &d = bench::getDefect("sdram_sync_reset");
    const ProjectSpec &p = bench::getProject(d.project);
    Scenario sc = buildScenario(p, d);
    EngineConfig cfg;
    FitnessResult direct = sc.baselineFitness(cfg);
    RepairEngine engine = sc.makeEngine(cfg);
    FitnessResult via_engine = engine.evaluate(Patch{}).fit;
    EXPECT_DOUBLE_EQ(direct.fitness, via_engine.fitness);
}

} // namespace
