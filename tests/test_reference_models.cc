/**
 * @file
 * Golden-model property tests: independent C++ reference models of
 * the benchmark circuits, stepped cycle-by-cycle against the traces
 * the simulator records. These catch whole-simulator regressions
 * (scheduling, NBA semantics, port aliasing) that unit tests on
 * individual pieces can miss.
 */

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "benchmarks/registry.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::sim;

namespace {

/** Simulate a golden benchmark and also record its *input* stimuli. */
struct Recorded
{
    Trace outputs;  //!< the DUT outputs (standard probe)
    Trace inputs;   //!< the DUT inputs, sampled at the same instants

    Recorded(const core::ProjectSpec &p,
             const std::vector<std::string> &input_paths)
    {
        std::shared_ptr<const verilog::SourceFile> file =
            verilog::parse(p.goldenSource + "\n" + p.testbenchSource);
        ProbeConfig out_cfg = deriveProbeConfig(*file, p.tbModule);
        ProbeConfig in_cfg = out_cfg;
        in_cfg.signals = input_paths;
        auto design = elaborate(file, p.tbModule);
        TraceRecorder out_rec(*design, out_cfg);
        TraceRecorder in_rec(*design, in_cfg);
        design->run();
        outputs = out_rec.takeTrace();
        inputs = in_rec.takeTrace();
    }
};

uint64_t
val(const Trace &t, size_t row, const std::string &var)
{
    int col = t.varIndex(var);
    EXPECT_GE(col, 0) << var;
    return t.rows()[row].values[static_cast<size_t>(col)].toUint64();
}

bool
defined(const Trace &t, size_t row, const std::string &var)
{
    int col = t.varIndex(var);
    return col >= 0 &&
           !t.rows()[row]
                .values[static_cast<size_t>(col)]
                .hasUnknown();
}

TEST(ReferenceModel, Counter)
{
    // Reference: q' = reset ? 0 : enable ? q+1 : q, overflow set at
    // q==15, cleared by reset. Inputs sampled pre-edge (the tb drives
    // them at negedges, so the value at a posedge sample is what the
    // DUT saw).
    // Note the "<= #1" intra-assignment delays in the design: the
    // update of edge k lands at t_k + 1, *after* the probe samples at
    // t_k, so sample k shows the state committed by edge k-1.
    Recorded r(bench::getProject("counter"), {"reset", "enable"});
    ASSERT_EQ(r.outputs.size(), r.inputs.size());

    bool have_state = false;
    uint64_t q = 0;
    bool ovf = false;
    for (size_t i = 0; i < r.outputs.size(); ++i) {
        if (have_state) {
            EXPECT_EQ(val(r.outputs, i, "dut.counter_out"), q)
                << "cycle " << i;
            EXPECT_EQ(val(r.outputs, i, "dut.overflow_out") != 0, ovf)
                << "cycle " << i;
        }
        // Process edge i to produce the state visible at sample i+1.
        bool reset = val(r.inputs, i, "reset") != 0;
        bool enable = val(r.inputs, i, "enable") != 0;
        bool was15 = have_state && q == 15;
        if (reset) {
            q = 0;
            ovf = false;
            have_state = true;
        } else if (have_state && enable) {
            q = (q + 1) & 0xf;
        }
        if (was15)
            ovf = true;
    }
    EXPECT_TRUE(have_state) << "reset never observed";
}

TEST(ReferenceModel, LshiftReg)
{
    Recorded r(bench::getProject("lshift_reg"),
               {"rstn", "load_en", "load_val"});
    uint64_t op = 0;
    bool serial = false;
    bool tracking = false;
    for (size_t i = 0; i < r.outputs.size(); ++i) {
        bool rstn = val(r.inputs, i, "rstn") != 0;
        bool load = val(r.inputs, i, "load_en") != 0;
        uint64_t load_val = val(r.inputs, i, "load_val");
        bool old_msb = (op >> 7) & 1;
        if (!rstn) {
            op = 0;
            serial = false;
            tracking = true;
        } else if (tracking) {
            serial = old_msb;
            op = load ? load_val : ((op << 1) & 0xff);
        }
        if (!tracking)
            continue;
        EXPECT_EQ(val(r.outputs, i, "dut.op"), op) << "cycle " << i;
        EXPECT_EQ(val(r.outputs, i, "dut.serial_out") != 0, serial)
            << "cycle " << i;
    }
}

TEST(ReferenceModel, Decoder)
{
    Recorded r(bench::getProject("decoder_3_to_8"), {"en", "a"});
    for (size_t i = 0; i < r.outputs.size(); ++i) {
        if (!defined(r.outputs, i, "dut.y"))
            continue;
        bool en = val(r.inputs, i, "en") != 0;
        uint64_t a = val(r.inputs, i, "a");
        uint64_t expect = en ? (1ull << a) : 0;
        EXPECT_EQ(val(r.outputs, i, "dut.y"), expect) << "cycle " << i;
    }
}

TEST(ReferenceModel, Mux)
{
    Recorded r(bench::getProject("mux_4_1"),
               {"in0", "in1", "in2", "in3", "sel"});
    for (size_t i = 0; i < r.outputs.size(); ++i) {
        if (!defined(r.outputs, i, "dut.out"))
            continue;
        uint64_t ins[4] = {val(r.inputs, i, "in0"),
                           val(r.inputs, i, "in1"),
                           val(r.inputs, i, "in2"),
                           val(r.inputs, i, "in3")};
        uint64_t sel = val(r.inputs, i, "sel");
        EXPECT_EQ(val(r.outputs, i, "dut.out"), ins[sel])
            << "cycle " << i;
    }
}

TEST(ReferenceModel, FlipFlop)
{
    Recorded r(bench::getProject("flip_flop"), {"reset", "t"});
    bool q = false, tracking = false;
    for (size_t i = 0; i < r.outputs.size(); ++i) {
        bool reset = val(r.inputs, i, "reset") != 0;
        bool t = val(r.inputs, i, "t") != 0;
        if (reset) {
            q = false;
            tracking = true;
        } else if (tracking && t) {
            q = !q;
        }
        if (!tracking)
            continue;
        EXPECT_EQ(val(r.outputs, i, "dut.q") != 0, q) << "cycle " << i;
    }
}

TEST(ReferenceModel, TateSquareAndMultiply)
{
    // Final result check: GF(2^4) exponentiation base^k with the
    // polynomial x^4 + x + 1 (square-and-multiply, MSB first).
    auto gfmul = [](uint8_t a, uint8_t b) {
        uint8_t acc = 0;
        for (int i = 0; i < 4; ++i) {
            if (b & 1)
                acc ^= a;
            bool hi = a & 0x8;
            a = static_cast<uint8_t>((a << 1) & 0xf);
            if (hi)
                a ^= 0x3;
            b >>= 1;
        }
        return acc;
    };
    uint8_t base = 0x7;
    uint8_t k = 0x35;
    uint8_t acc = 1;
    for (int bit = 7; bit >= 0; --bit) {
        acc = gfmul(acc, acc);
        if ((k >> bit) & 1)
            acc = gfmul(acc, base);
    }

    const core::ProjectSpec &p = bench::getProject("tate_pairing");
    Trace t = core::recordGoldenTrace(p, false);
    // The last sampled "result" value must match the reference.
    int col = t.varIndex("dut.result");
    ASSERT_GE(col, 0);
    EXPECT_EQ(t.rows().back().values[static_cast<size_t>(col)]
                  .toUint64(),
              acc);
}

TEST(ReferenceModel, Sha3Permutation)
{
    // Reference implementation of the 25-bit theta/chi/iota round and
    // sponge from projects_sha3.cc.
    auto round = [](uint32_t s, uint32_t rc) {
        uint32_t theta = 0, chi = 0;
        for (int i = 0; i < 25; ++i) {
            int b = (s >> i) & 1;
            int b5 = (s >> ((i + 5) % 25)) & 1;
            int b20 = (s >> ((i + 20) % 25)) & 1;
            theta |= static_cast<uint32_t>(b ^ b5 ^ b20) << i;
        }
        for (int i = 0; i < 25; ++i) {
            int b = (theta >> i) & 1;
            int b1 = (theta >> ((i + 1) % 25)) & 1;
            int b2 = (theta >> ((i + 2) % 25)) & 1;
            chi |= static_cast<uint32_t>(b ^ ((~b1 & 1) & b2)) << i;
        }
        return (chi ^ rc) & 0x1ffffff;
    };
    uint32_t state = 0;
    for (uint32_t i = 0; i < 8; ++i)
        state ^= (0x41u + i) << i;  // absorb 8 bytes 'A'+i at offset i
    state &= 0x1ffffff;
    for (uint32_t r = 0; r < 8; ++r)
        state = round(state, r);
    // Swizzle per the continuous assign:
    // {hash[7:0], hash[15:8], hash[23:16], hash[24]}
    auto bits = [&](int hi, int lo) {
        return (state >> lo) & ((1u << (hi - lo + 1)) - 1);
    };
    uint32_t swizzled = (bits(7, 0) << 17) | (bits(15, 8) << 9) |
                        (bits(23, 16) << 1) | bits(24, 24);

    const core::ProjectSpec &p = bench::getProject("sha3");
    Trace t = core::recordGoldenTrace(p, false);
    int col = t.varIndex("dut.hash_out");
    ASSERT_GE(col, 0);
    EXPECT_EQ(t.rows().back().values[static_cast<size_t>(col)]
                  .toUint64(),
              swizzled);
}

TEST(ReferenceModel, SdramReadBack)
{
    // End of the repair bench: address 5 was written 0x5a and read
    // back; rd_data must show it.
    const core::ProjectSpec &p = bench::getProject("sdram_controller");
    Trace t = core::recordGoldenTrace(p, false);
    int col = t.varIndex("dut.rd_data");
    ASSERT_GE(col, 0);
    EXPECT_EQ(t.rows().back().values[static_cast<size_t>(col)]
                  .toUint64(),
              0x5au);
}

TEST(ReferenceModel, RsSyndromes)
{
    // Syndromes of the repair-bench codeword 9^i (i = 0..7) over
    // GF(2^4): S0 = sum of symbols; S1 = Horner with alpha (=x).
    auto mul_alpha = [](uint8_t v) {
        bool hi = v & 0x8;
        v = static_cast<uint8_t>((v << 1) & 0xf);
        return static_cast<uint8_t>(hi ? v ^ 0x3 : v);
    };
    uint8_t s0 = 0, s1 = 0;
    for (int i = 0; i < 8; ++i) {
        uint8_t sym = static_cast<uint8_t>((9 ^ i) & 0xf);
        s0 ^= sym;
        s1 = static_cast<uint8_t>(mul_alpha(s1) ^ sym);
    }
    const core::ProjectSpec &p =
        bench::getProject("reed_solomon_decoder");
    Trace t = core::recordGoldenTrace(p, false);
    // Find the first row where done==1 (end of the first decode).
    int done_col = t.varIndex("dut.done");
    int s0_col = t.varIndex("dut.syn0");
    int s1_col = t.varIndex("dut.syn1");
    ASSERT_GE(done_col, 0);
    bool checked = false;
    for (auto &row : t.rows()) {
        if (row.values[static_cast<size_t>(done_col)].toUint64() ==
            1) {
            EXPECT_EQ(
                row.values[static_cast<size_t>(s0_col)].toUint64(),
                s0);
            EXPECT_EQ(
                row.values[static_cast<size_t>(s1_col)].toUint64(),
                s1);
            checked = true;
            break;
        }
    }
    EXPECT_TRUE(checked) << "decoder never signalled done";
}

} // namespace
