/**
 * @file
 * Framing-robustness fuzz tests: the frame layer must turn every kind
 * of wire damage — truncation at any byte, oversized or bit-flipped
 * length prefixes, random garbage, adversarially chunked writes —
 * into a typed FrameError (or a clean parse), never a crash, a hang,
 * or an unbounded allocation. The suite also builds into the ASAN
 * runner (cirfix_fault_tests), where a lifetime or overflow bug in
 * the reassembly loops would abort the test.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "service/framing.h"

using namespace cirfix::service;

namespace {

struct SocketPair
{
    int fds[2] = {-1, -1};
    SocketPair()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    }
    ~SocketPair()
    {
        for (int fd : fds)
            if (fd >= 0)
                ::close(fd);
    }
    void
    closeEnd(int i)
    {
        ::close(fds[i]);
        fds[i] = -1;
    }
};

/** Deterministic xorshift64* stream (tests must not depend on
 *  random_device — same bytes every run, every platform). */
struct Rng
{
    uint64_t s;
    explicit Rng(uint64_t seed) : s(seed ? seed : 1) {}
    uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    }
    size_t
    below(size_t n)
    {
        return static_cast<size_t>(next() % n);
    }
};

/** Encode one frame the way writeFrame puts it on the wire. */
std::string
encodeFrame(const std::string &payload)
{
    uint32_t n = static_cast<uint32_t>(payload.size());
    std::string out;
    out.push_back(static_cast<char>(n >> 24));
    out.push_back(static_cast<char>(n >> 16));
    out.push_back(static_cast<char>(n >> 8));
    out.push_back(static_cast<char>(n));
    out += payload;
    return out;
}

/** Feed @p stream to a reader and drain it to the end. @return the
 *  payloads read; a typed FrameError ends the drain (recorded in
 *  @p errorOut). Anything else thrown fails the test. */
std::vector<std::string>
drainStream(const std::string &stream, std::string *errorOut)
{
    SocketPair sp;
    std::thread writer([&] {
        size_t off = 0;
        while (off < stream.size()) {
            ssize_t n = ::write(sp.fds[0], stream.data() + off,
                                stream.size() - off);
            if (n <= 0)
                break;  // reader bailed early; that's fine
            off += static_cast<size_t>(n);
        }
        sp.closeEnd(0);
    });
    std::vector<std::string> got;
    errorOut->clear();
    try {
        std::string payload;
        while (readFrame(sp.fds[1], payload, 5.0))
            got.push_back(payload);
    } catch (const FrameError &e) {
        *errorOut = e.what();
        EXPECT_FALSE(std::string(e.what()).empty());
    }
    // No catch-all: any non-FrameError exception propagates and fails.
    writer.join();
    return got;
}

} // namespace

TEST(FramingFuzz, TruncationAtEveryByteIsTyped)
{
    const std::string payload = "truncate-me-anywhere";
    const std::string frame = encodeFrame(payload);
    for (size_t cut = 0; cut <= frame.size(); ++cut) {
        SocketPair sp;
        if (cut > 0)
            ASSERT_EQ(::write(sp.fds[0], frame.data(), cut),
                      static_cast<ssize_t>(cut));
        sp.closeEnd(0);
        std::string got;
        if (cut == 0) {
            // EOF at a frame boundary is a clean end of stream.
            EXPECT_FALSE(readFrame(sp.fds[1], got));
        } else if (cut == frame.size()) {
            EXPECT_TRUE(readFrame(sp.fds[1], got));
            EXPECT_EQ(got, payload);
            EXPECT_FALSE(readFrame(sp.fds[1], got));
        } else {
            // EOF mid-header or mid-payload: the peer vanished.
            EXPECT_THROW(readFrame(sp.fds[1], got), ConnectionClosed)
                << "cut at byte " << cut;
        }
    }
}

TEST(FramingFuzz, OversizedPrefixesAreRejectedWithoutAllocation)
{
    // Prefix values beyond kMaxFrameBytes must be rejected from the
    // 4 header bytes alone — the reader never tries to allocate or
    // read the claimed payload (the write side only ever sends 4
    // bytes, so a reader that tried to allocate-and-read would hang
    // or OOM instead of throwing).
    const uint64_t claims[] = {static_cast<uint64_t>(kMaxFrameBytes) + 1,
                               0x7fffffffull, 0xffffffffull};
    for (uint64_t claim : claims) {
        SocketPair sp;
        unsigned char hdr[4] = {
            static_cast<unsigned char>(claim >> 24),
            static_cast<unsigned char>(claim >> 16),
            static_cast<unsigned char>(claim >> 8),
            static_cast<unsigned char>(claim)};
        ASSERT_EQ(::write(sp.fds[0], hdr, 4), 4);
        std::string got;
        try {
            readFrame(sp.fds[1], got, 5.0);
            FAIL() << "oversized prefix " << claim << " accepted";
        } catch (const ConnectionClosed &) {
            FAIL() << "oversized prefix misreported as a disconnect";
        } catch (const FrameError &e) {
            EXPECT_NE(std::string(e.what()).find("frame"),
                      std::string::npos)
                << e.what();
        }
    }
    // The boundary itself is legal: exactly kMaxFrameBytes would be a
    // 64 MiB allocation, so prove the check is > not >= with the
    // writer-side guard instead.
    SocketPair sp;
    std::string too_big(kMaxFrameBytes + 1, 'x');
    EXPECT_THROW(writeFrame(sp.fds[0], too_big), FrameError);
}

TEST(FramingFuzz, HeaderBitFlipsNeverEscapeTypedErrors)
{
    // Flip each of the 32 bits of the first frame's length prefix in a
    // two-frame stream. Depending on the bit, the reader may see an
    // oversized frame, a short frame followed by desynced garbage, or
    // a truncated frame — every outcome must be a parsed payload or a
    // typed FrameError. (Payload corruption is the JSON layer's
    // problem; length corruption is ours.)
    const std::string a(300, 'a');
    const std::string b = "second-frame";
    const std::string stream = encodeFrame(a) + encodeFrame(b);
    for (int bit = 0; bit < 32; ++bit) {
        std::string damaged = stream;
        damaged[static_cast<size_t>(bit / 8)] ^=
            static_cast<char>(1u << (bit % 8));
        std::string err;
        std::vector<std::string> got = drainStream(damaged, &err);
        if (err.empty()) {
            // The flip happened to produce a consistent stream (e.g.
            // shortening frame 1 so its tail parses as more frames);
            // whatever was read must at least fit the bytes sent.
            size_t total = 0;
            for (const std::string &p : got)
                total += 4 + p.size();
            EXPECT_LE(total, damaged.size()) << "bit " << bit;
        }
    }
}

TEST(FramingFuzz, RandomGarbageStreamsNeverEscapeTypedErrors)
{
    Rng rng(0x5eed5eedull);
    for (int round = 0; round < 64; ++round) {
        std::string garbage(1 + rng.below(4096), '\0');
        for (char &c : garbage)
            c = static_cast<char>(rng.next());
        std::string err;
        std::vector<std::string> got = drainStream(garbage, &err);
        size_t total = 0;
        for (const std::string &p : got)
            total += 4 + p.size();
        EXPECT_LE(total, garbage.size()) << "round " << round;
    }
}

TEST(FramingFuzz, AdversarialChunkingReassemblesExactly)
{
    // The same three-frame stream delivered under many different
    // write chunkings (including 1-byte dribbles across header and
    // payload boundaries) must always reassemble to the same three
    // payloads.
    std::vector<std::string> payloads = {
        std::string(1, 'x'), std::string(2000, 'y'), ""};
    payloads[1][0] = 'Y';
    payloads[1][1999] = 'Z';
    std::string stream;
    for (const std::string &p : payloads)
        stream += encodeFrame(p);

    Rng rng(0xc0ffee);
    for (int round = 0; round < 32; ++round) {
        SocketPair sp;
        std::thread writer([&] {
            size_t off = 0;
            while (off < stream.size()) {
                size_t chunk =
                    1 + rng.below(std::min<size_t>(
                            97, stream.size() - off));
                size_t sent = 0;
                while (sent < chunk) {
                    ssize_t n = ::write(sp.fds[0], stream.data() + off +
                                                       sent,
                                        chunk - sent);
                    ASSERT_GT(n, 0);
                    sent += static_cast<size_t>(n);
                }
                off += chunk;
            }
            sp.closeEnd(0);
        });
        std::vector<std::string> got;
        std::string payload;
        while (readFrame(sp.fds[1], payload, 5.0))
            got.push_back(payload);
        writer.join();
        ASSERT_EQ(got.size(), payloads.size()) << "round " << round;
        for (size_t i = 0; i < payloads.size(); ++i)
            EXPECT_EQ(got[i], payloads[i]) << "round " << round;
    }
}

TEST(FramingFuzz, FlippedPayloadBytesStayFrameAligned)
{
    // Payload damage must not desync framing: flip bytes strictly
    // inside frame 1's payload and frame 2 must still arrive intact.
    const std::string a = "{\"type\":\"status\",\"id\":42}";
    const std::string b = "{\"type\":\"list\"}";
    const std::string stream = encodeFrame(a) + encodeFrame(b);
    Rng rng(0xf11bull);
    for (int round = 0; round < 32; ++round) {
        std::string damaged = stream;
        size_t at = 4 + rng.below(a.size());
        damaged[at] ^= static_cast<char>(1 + rng.below(255));
        std::string err;
        std::vector<std::string> got = drainStream(damaged, &err);
        EXPECT_TRUE(err.empty()) << err;
        ASSERT_EQ(got.size(), 2u) << "round " << round;
        EXPECT_EQ(got[0].size(), a.size());
        EXPECT_EQ(got[1], b);
    }
}
