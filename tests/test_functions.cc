/**
 * @file
 * Tests for user-defined Verilog functions (IEEE 1364 §10.4):
 * parsing, validation, evaluation, and use inside designs.
 */

#include <gtest/gtest.h>

#include "sim/elaborate.h"
#include "verilog/parser.h"
#include "verilog/printer.h"
#include "verilog/validate.h"

using namespace cirfix;
using namespace cirfix::sim;
using namespace cirfix::verilog;

namespace {

struct FnRun
{
    std::unique_ptr<Design> design;

    explicit FnRun(const std::string &src, const std::string &top = "t")
    {
        std::shared_ptr<const SourceFile> file = parse(src);
        design = elaborate(file, top);
        design->run();
    }

    uint64_t
    value(const std::string &path)
    {
        SignalRef r = design->findSignal(path);
        EXPECT_NE(r.sig, nullptr) << path;
        return r.sig->value().toUint64();
    }
};

TEST(Functions, ParseDeclarationAndCall)
{
    auto file = parse(R"(
module m;
    function [7:0] add3;
        input [7:0] x;
        begin
            add3 = x + 3;
        end
    endfunction
    reg [7:0] r;
    initial r = add3(8'd4);
endmodule
)");
    const FunctionDecl *fn = nullptr;
    for (auto &it : file->modules[0]->items)
        if (it->kind == NodeKind::FunctionDecl)
            fn = it->as<FunctionDecl>();
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->name, "add3");
    EXPECT_EQ(fn->inputOrder.size(), 1u);
    EXPECT_TRUE(isValid(*file));
}

TEST(Functions, EvaluateSimpleFunction)
{
    FnRun r(R"(
module t;
    function [7:0] add3;
        input [7:0] x;
        add3 = x + 3;
    endfunction
    reg [7:0] out;
    initial out = add3(8'd10);
endmodule
)");
    EXPECT_EQ(r.value("out"), 13u);
}

TEST(Functions, MultipleInputsPositional)
{
    FnRun r(R"(
module t;
    function [7:0] maxv;
        input [7:0] a;
        input [7:0] b;
        maxv = (a > b) ? a : b;
    endfunction
    reg [7:0] out1, out2;
    initial begin
        out1 = maxv(8'd3, 8'd9);
        out2 = maxv(8'd20, 8'd9);
    end
endmodule
)");
    EXPECT_EQ(r.value("out1"), 9u);
    EXPECT_EQ(r.value("out2"), 20u);
}

TEST(Functions, LocalsAndLoops)
{
    // Parity via a for loop over a local integer.
    FnRun r(R"(
module t;
    function parity;
        input [7:0] v;
        integer i;
        begin
            parity = 1'b0;
            for (i = 0; i < 8; i = i + 1)
                parity = parity ^ v[i];
        end
    endfunction
    reg p1, p2;
    initial begin
        p1 = parity(8'b10110100);
        p2 = parity(8'b10110101);
    end
endmodule
)");
    EXPECT_EQ(r.value("p1"), 0u);
    EXPECT_EQ(r.value("p2"), 1u);
}

TEST(Functions, ReadsModuleState)
{
    FnRun r(R"(
module t;
    reg [3:0] base;
    function [3:0] plus_base;
        input [3:0] x;
        plus_base = x + base;
    endfunction
    reg [3:0] out;
    initial begin
        base = 4'd5;
        out = plus_base(4'd2);
    end
endmodule
)");
    EXPECT_EQ(r.value("out"), 7u);
}

TEST(Functions, UsedInContinuousAssign)
{
    FnRun r(R"(
module t;
    function [3:0] inv;
        input [3:0] x;
        inv = ~x;
    endfunction
    reg [3:0] a;
    wire [3:0] y;
    assign y = inv(a);
    reg [3:0] seen;
    initial begin
        a = 4'b0011;
        #1 seen = y;
    end
endmodule
)");
    EXPECT_EQ(r.value("seen"), 0b1100u);
}

TEST(Functions, RecursionBoundedToX)
{
    FnRun r(R"(
module t;
    function [7:0] forever_fn;
        input [7:0] x;
        forever_fn = forever_fn(x + 1);
    endfunction
    reg [7:0] out;
    initial out = forever_fn(8'd0);
endmodule
)");
    SignalRef ref = r.design->findSignal("out");
    EXPECT_TRUE(ref.sig->value().hasUnknown());
}

TEST(Functions, UnknownFunctionEvaluatesToX)
{
    // Validation catches it, but evaluation must stay safe too.
    auto file = parse(R"(
module t;
    reg [7:0] out;
    initial out = ghost(8'd1);
endmodule
)");
    EXPECT_FALSE(isValid(*file));
}

TEST(Functions, ValidatorChecksArity)
{
    auto file = parse(R"(
module m;
    function [3:0] f;
        input [3:0] a;
        f = a;
    endfunction
    reg [3:0] r;
    initial r = f(4'd1, 4'd2);
endmodule
)");
    auto errs = validate(*file);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].message.find("argument"), std::string::npos);
}

TEST(Functions, ValidatorRejectsTimingControls)
{
    auto file = parse(R"(
module m;
    function [3:0] f;
        input [3:0] a;
        begin
            #5 f = a;
        end
    endfunction
    reg [3:0] r;
    initial r = f(4'd1);
endmodule
)");
    EXPECT_FALSE(isValid(*file));
}

TEST(Functions, PrintRoundTrip)
{
    const std::string src = R"(
module m;
    function [7:0] crc_step;
        input [7:0] c;
        input d;
        reg fb;
        begin
            fb = c[7] ^ d;
            crc_step = {c[6:0], 1'b0} ^ {fb, 2'b00, fb, 3'b000, fb};
        end
    endfunction
    reg [7:0] r;
    initial r = crc_step(8'hff, 1'b0);
endmodule
)";
    auto f1 = parse(src);
    std::string p1 = print(*f1);
    std::unique_ptr<SourceFile> f2;
    ASSERT_NO_THROW(f2 = parse(p1)) << p1;
    EXPECT_EQ(p1, print(*f2));
}

TEST(Functions, CrcDatapathEndToEnd)
{
    // A realistic use: CRC-8 computed bit-serially via a function in
    // a clocked datapath.
    FnRun r(R"(
module t;
    reg clk;
    reg [7:0] data;
    reg [7:0] crc;
    integer i;

    function [7:0] crc8_step;
        input [7:0] c;
        input b;
        reg fb;
        begin
            fb = c[7] ^ b;
            crc8_step = (c << 1) ^ (fb ? 8'h07 : 8'h00);
        end
    endfunction

    initial begin
        clk = 0;
        crc = 8'h00;
        data = 8'ha5;
        for (i = 0; i < 8; i = i + 1) begin
            crc = crc8_step(crc, data[7]);
            data = data << 1;
        end
    end
endmodule
)");
    // Reference CRC-8/ATM of 0xa5 starting from 0x00.
    uint8_t crc = 0;
    uint8_t d = 0xa5;
    for (int i = 0; i < 8; ++i) {
        uint8_t fb = ((crc >> 7) ^ (d >> 7)) & 1;
        crc = static_cast<uint8_t>((crc << 1) ^ (fb ? 0x07 : 0x00));
        d = static_cast<uint8_t>(d << 1);
    }
    EXPECT_EQ(r.value("crc"), crc);
}

} // namespace
