/**
 * @file
 * Island-model evolution tests (core/island.h): deterministic seed and
 * config derivation, the strict elite/migrant total order, barrier
 * sealing and the lex-min winner rule, ledger idempotency and
 * crash-recovery round-trips, the shared fitness store, and the
 * end-to-end determinism contract — K=1 equals a plain run, K=3 reruns
 * are bit-identical, and a wind-down + resume converges to the same
 * fingerprint as an uninterrupted run.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/island.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;
using sim::ProbeConfig;
using sim::TraceRecorder;

namespace {

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

/** Same two-fault defect as test_snapshot.cc: multi-edit repair, found
 *  by seed 7 in generation 6 — late enough that migration epochs fire
 *  before the winner lands. */
std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    s.replace(s.find("rst == 1'b1"), 11, "rst != 1'b1");
    s.replace(s.find("q <= !q"), 7, "q <= q");
    return s;
}

struct MiniScenario
{
    std::shared_ptr<const SourceFile> faulty;
    ProbeConfig probe;
    Trace oracle;

    MiniScenario()
    {
        std::shared_ptr<const SourceFile> golden =
            parse(kGoldenToggle);
        probe = sim::deriveProbeConfig(*golden, "tb");
        auto design = sim::elaborate(golden, "tb");
        TraceRecorder rec(*design, probe);
        design->run();
        oracle = rec.takeTrace();
        faulty = parse(faultyToggle());
    }

    IslandOutcome
    islands(const EngineConfig &base, const IslandConfig &ic,
            const std::string &snapDir = "",
            const std::function<bool()> &stop = nullptr) const
    {
        return runIslands(faulty, "tb", "dut", probe, oracle, base,
                          ic, snapDir, nullptr, stop);
    }
};

EngineConfig
baseConfig()
{
    EngineConfig cfg;
    cfg.popSize = 12;
    cfg.maxGenerations = 6;
    cfg.maxSeconds = 120.0;
    cfg.seed = 7;
    return cfg;
}

std::string
tmpDir(const std::string &name)
{
    std::string d = ::testing::TempDir() + name;
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

/** A synthetic valid, evaluated variant: one Delete edit at
 *  @p target (distinct targets give distinct keys) with @p fitness. */
Variant
makeVariant(int target, double fitness)
{
    Variant v;
    Edit e;
    e.kind = EditKind::Delete;
    e.target = target;
    v.patch.edits.push_back(std::move(e));
    v.fit.fitness = fitness;
    v.valid = true;
    v.evaluated = true;
    return v;
}

std::vector<std::string>
keysOf(const std::vector<Variant> &vs)
{
    std::vector<std::string> ks;
    for (const Variant &v : vs)
        ks.push_back(v.patch.key());
    return ks;
}

// ------------------------------------------------------------------
// Derivation
// ------------------------------------------------------------------

TEST(Island, SeedDerivationIsIdentityAtZeroAndDistinct)
{
    // Island 0 draws the plain run's exact stream — the K=1 identity.
    EXPECT_EQ(deriveIslandSeed(7, 0), 7u);
    EXPECT_EQ(deriveIslandSeed(12345, 0), 12345u);
    // Distinct islands get distinct, stable streams.
    std::vector<uint64_t> seeds;
    for (int i = 0; i < 8; ++i)
        seeds.push_back(deriveIslandSeed(7, i));
    for (size_t a = 0; a < seeds.size(); ++a)
        for (size_t b = a + 1; b < seeds.size(); ++b)
            EXPECT_NE(seeds[a], seeds[b]) << a << " vs " << b;
    // Deterministic across calls (no hidden state).
    EXPECT_EQ(deriveIslandSeed(7, 3), deriveIslandSeed(7, 3));
}

TEST(Island, DerivedConfigCarriesIslandProvenance)
{
    EngineConfig base = baseConfig();
    IslandConfig ic;
    ic.islands = 4;
    ic.migrationInterval = 3;
    EngineConfig ec = deriveIslandEngineConfig(base, ic, 2);
    EXPECT_EQ(ec.islandIndex, 2);
    EXPECT_EQ(ec.islandCount, 4);
    EXPECT_EQ(ec.migrationInterval, 3);
    EXPECT_EQ(ec.seed, deriveIslandSeed(base.seed, 2));

    // A 1-island job never migrates: it must equal a plain run.
    IslandConfig one;
    one.islands = 1;
    EngineConfig solo = deriveIslandEngineConfig(base, one, 0);
    EXPECT_EQ(solo.migrationInterval, 0);
    EXPECT_EQ(solo.seed, base.seed);
}

// ------------------------------------------------------------------
// Elite / migrant selection
// ------------------------------------------------------------------

TEST(Island, SelectElitesOrdersAndFiltersDeterministically)
{
    std::vector<Variant> popn;
    popn.push_back(makeVariant(5, 0.9));
    popn.push_back(makeVariant(3, 0.9));  // fitness tie: key breaks it
    popn.push_back(makeVariant(9, 0.5));
    popn.push_back(makeVariant(1, 1.0));
    Variant invalid = makeVariant(2, 1.0);
    invalid.valid = false;
    popn.push_back(invalid);
    Variant unevaluated = makeVariant(4, 1.0);
    unevaluated.evaluated = false;
    popn.push_back(unevaluated);

    std::vector<Variant> elites = selectElites(popn, 3);
    ASSERT_EQ(elites.size(), 3u);
    // Fitness descending; the 0.9 tie resolved by key ascending.
    EXPECT_DOUBLE_EQ(elites[0].fit.fitness, 1.0);
    EXPECT_EQ(elites[0].patch.key(), makeVariant(1, 0).patch.key());
    EXPECT_DOUBLE_EQ(elites[1].fit.fitness, 0.9);
    EXPECT_DOUBLE_EQ(elites[2].fit.fitness, 0.9);
    EXPECT_LT(elites[1].patch.key(), elites[2].patch.key());

    // Schedule independence: any input order gives the same export.
    std::vector<Variant> reversed(popn.rbegin(), popn.rend());
    EXPECT_EQ(keysOf(selectElites(reversed, 3)), keysOf(elites));

    // n larger than the valid pool: only valid+evaluated export.
    EXPECT_EQ(selectElites(popn, 100).size(), 4u);
}

TEST(Island, SelectMigrantsDedupsAcrossIslandsAndDropsQuarantined)
{
    // Island A and island B both export target-1; B also exports a
    // key that the fleet has quarantined.
    std::vector<std::vector<Variant>> exports(2);
    exports[0].push_back(makeVariant(1, 1.0));
    exports[0].push_back(makeVariant(5, 0.7));
    exports[1].push_back(makeVariant(1, 1.0));  // duplicate key
    exports[1].push_back(makeVariant(8, 0.9));  // quarantined below
    std::string condemned = makeVariant(8, 0).patch.key();

    MigrationStats stats;
    std::vector<Variant> migrants = selectMigrants(
        exports,
        [&](const std::string &key) { return key == condemned; },
        &stats);

    std::vector<std::string> keys = keysOf(migrants);
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], makeVariant(1, 0).patch.key());
    EXPECT_EQ(keys[1], makeVariant(5, 0).patch.key());

    EXPECT_EQ(stats.elitesExported, 4);
    EXPECT_EQ(stats.migrantsBroadcast, 2);
    // The hard invariant: the broadcast itself is duplicate-free.
    EXPECT_EQ(stats.migrantDuplicates, 0);
    EXPECT_EQ(stats.elitesLost, 0);
}

TEST(Island, InjectMigrantsSkipsPresentKeysAndTruncates)
{
    std::vector<Variant> popn;
    popn.push_back(makeVariant(1, 0.8));
    popn.push_back(makeVariant(2, 0.6));
    popn.push_back(makeVariant(3, 0.4));

    std::vector<Variant> migrants;
    migrants.push_back(makeVariant(1, 0.8));  // already present: skip
    migrants.push_back(makeVariant(7, 0.9));  // better than all locals
    migrants.push_back(makeVariant(9, 0.1));  // truncated away

    std::vector<std::string> imported =
        injectMigrants(&popn, migrants, 4);
    ASSERT_EQ(popn.size(), 4u);
    EXPECT_EQ(popn[0].patch.key(), makeVariant(7, 0).patch.key());
    EXPECT_DOUBLE_EQ(popn[1].fit.fitness, 0.8);
    // Only migrants that survived into the population are reported —
    // that is what the migrant ledger records. The 0.1 migrant was
    // truncated away, the duplicate was skipped: one import.
    ASSERT_EQ(imported.size(), 1u);
    EXPECT_EQ(imported[0], makeVariant(7, 0).patch.key());
}

// ------------------------------------------------------------------
// The migration ledger (barrier protocol)
// ------------------------------------------------------------------

IslandConfig
threeIslands()
{
    IslandConfig ic;
    ic.islands = 3;
    ic.migrationInterval = 2;
    ic.migrantsPerIsland = 2;
    return ic;
}

TEST(Island, LedgerSealsOnlyWhenEveryIslandSubmittedOrIsDone)
{
    MigrationLedger ledger(threeIslands());
    ledger.submit(0, 1, {makeVariant(1, 0.9)});
    EXPECT_FALSE(ledger.poll(0, 1).ready);
    ledger.submit(1, 1, {makeVariant(2, 0.8)});
    EXPECT_FALSE(ledger.poll(1, 1).ready);

    // Island 2 found a repair inside epoch 1: it never submits epoch 1
    // — its done-mark completes the barrier instead.
    ledger.markDone(2, 1, true);
    MigrationLedger::Exchange ex = ledger.poll(0, 1);
    ASSERT_TRUE(ex.ready);
    // A winner at epoch <= 1 exists, so everyone stops here.
    EXPECT_TRUE(ex.stop);
    EXPECT_EQ(keysOf(ex.migrants),
              (std::vector<std::string>{
                  makeVariant(1, 0).patch.key(),
                  makeVariant(2, 0).patch.key()}));
    EXPECT_EQ(ledger.winner(), (std::pair<int, int>{2, 1}));
}

TEST(Island, LedgerWinnerIsLexicographicMinOfEpochThenIsland)
{
    MigrationLedger ledger(threeIslands());
    ledger.markDone(2, 2, true);
    EXPECT_EQ(ledger.winner(), (std::pair<int, int>{2, 2}));
    // Earlier epoch beats a lower island index...
    ledger.markDone(1, 1, true);
    EXPECT_EQ(ledger.winner(), (std::pair<int, int>{1, 1}));
    // ...and at equal epochs the lower island index wins.
    ledger.markDone(0, 1, true);
    EXPECT_EQ(ledger.winner(), (std::pair<int, int>{0, 1}));
    EXPECT_TRUE(ledger.allDone());
}

TEST(Island, LedgerSubmitIsIdempotentAndCountsMismatchedReplays)
{
    MigrationLedger ledger(threeIslands());
    std::vector<Variant> elites = {makeVariant(1, 0.9),
                                   makeVariant(2, 0.8)};
    ledger.submit(0, 1, elites);
    // Failover re-export with identical keys: ignored, nothing lost.
    ledger.submit(0, 1, elites);
    EXPECT_EQ(ledger.stats().elitesLost, 0);
    // A mismatching re-export means an elite was lost (or fabricated)
    // across a crash: counted, first submission stands.
    ledger.submit(0, 1, {makeVariant(9, 0.9)});
    EXPECT_EQ(ledger.stats().elitesLost, 1);

    ledger.submit(1, 1, {});
    ledger.submit(2, 1, {});
    std::vector<std::string> sealed =
        keysOf(ledger.poll(0, 1).migrants);
    EXPECT_EQ(sealed, keysOf(elites));  // the first export fed the merge
}

TEST(Island, LedgerVerifyReplayFlagsForeignInjections)
{
    MigrationLedger ledger(threeIslands());
    ledger.submit(0, 1, {makeVariant(1, 0.9)});
    ledger.submit(1, 1, {makeVariant(2, 0.8)});
    ledger.submit(2, 1, {});
    ASSERT_TRUE(ledger.poll(0, 1).ready);

    // A resumed island whose injected keys are a subset of the sealed
    // broadcast is consistent.
    MigrantRecord good;
    good.epoch = 1;
    good.keys = {makeVariant(1, 0).patch.key()};
    ledger.verifyReplay(1, {good});
    EXPECT_EQ(ledger.stats().elitesLost, 0);

    // A key the broadcast never carried: that history is not ours.
    MigrantRecord foreign;
    foreign.epoch = 1;
    foreign.keys = {makeVariant(42, 0).patch.key()};
    ledger.verifyReplay(1, {foreign});
    EXPECT_EQ(ledger.stats().elitesLost, 1);

    // An epoch this ledger never sealed: every key counts.
    MigrantRecord unknown;
    unknown.epoch = 9;
    unknown.keys = {"a", "b"};
    ledger.verifyReplay(1, {unknown});
    EXPECT_EQ(ledger.stats().elitesLost, 3);
}

TEST(Island, LedgerEncodeDecodeRoundTripsAndRejectsCorruption)
{
    MigrationLedger ledger(threeIslands());
    ledger.submit(0, 1, {makeVariant(1, 0.9), makeVariant(2, 0.8)});
    ledger.submit(1, 1, {makeVariant(3, 0.7)});
    ledger.submit(2, 1, {});
    ledger.markDone(2, 2, true);
    ledger.submit(0, 2, {makeVariant(4, 0.95)});
    ledger.submit(1, 2, {makeVariant(5, 0.6)});

    std::string bytes = ledger.encode();
    MigrationLedger restored(threeIslands());
    ASSERT_TRUE(restored.decode(bytes));
    EXPECT_EQ(restored.winner(), ledger.winner());
    EXPECT_EQ(restored.allDone(), ledger.allDone());
    auto a = ledger.broadcasts(), b = restored.broadcasts();
    EXPECT_EQ(a, b);
    EXPECT_EQ(restored.stats().elitesExported,
              ledger.stats().elitesExported);
    // decode(encode(x)) re-encodes byte-exactly.
    EXPECT_EQ(restored.encode(), bytes);

    // Corruption (bit flip, truncation, garbage) is refused and the
    // target ledger stays untouched — the caller restarts the job.
    MigrationLedger untouched(threeIslands());
    std::string flipped = bytes;
    size_t mid = flipped.size() / 2;
    flipped[mid] = flipped[mid] == '0' ? '1' : '0';
    EXPECT_FALSE(untouched.decode(flipped));
    EXPECT_FALSE(untouched.decode(bytes.substr(0, bytes.size() / 2)));
    EXPECT_FALSE(untouched.decode("not a ledger\n"));
    EXPECT_TRUE(untouched.broadcasts().empty());
    EXPECT_EQ(untouched.winner(), (std::pair<int, int>{-1, 0}));
}

// ------------------------------------------------------------------
// Shared fitness store
// ------------------------------------------------------------------

TEST(Island, SharedStorePublishesLooksUpAndQuarantines)
{
    SharedFitnessStore store;
    FitnessCache::Entry entry;
    entry.valid = true;
    entry.fit.fitness = 0.75;
    QuarantineEntry bad;
    bad.error = "simulator crashed";
    store.publish({{"key-a", entry}}, {{"key-x", bad}});
    EXPECT_EQ(store.cacheSize(), 1u);
    EXPECT_EQ(store.quarantineSize(), 1u);
    EXPECT_TRUE(store.isQuarantined("key-x"));
    EXPECT_FALSE(store.isQuarantined("key-a"));

    std::unordered_map<std::string, FitnessCache::Entry> hits;
    std::unordered_map<std::string, QuarantineEntry> quar;
    store.lookup({"key-a", "key-x", "key-missing"}, &hits, &quar);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_DOUBLE_EQ(hits.at("key-a").fit.fitness, 0.75);
    ASSERT_EQ(quar.size(), 1u);
    EXPECT_EQ(quar.at("key-x").error, "simulator crashed");
}

// ------------------------------------------------------------------
// End-to-end determinism contract
// ------------------------------------------------------------------

TEST(Island, KOneEqualsPlainEngineRun)
{
    MiniScenario sc;
    EngineConfig base = baseConfig();

    RepairResult plain;
    {
        RepairEngine engine(sc.faulty, "tb", "dut", sc.probe,
                            sc.oracle, base);
        plain = engine.run();
    }
    ASSERT_TRUE(plain.found);

    IslandConfig one;
    one.islands = 1;
    IslandOutcome solo = sc.islands(base, one);
    ASSERT_TRUE(solo.found);
    EXPECT_EQ(solo.winnerIsland, 0);
    EXPECT_EQ(solo.result.patch.key(), plain.patch.key());
    EXPECT_EQ(solo.result.repairedSource, plain.repairedSource);
    EXPECT_EQ(solo.result.generations, plain.generations);
    EXPECT_EQ(solo.result.fitnessEvals, plain.fitnessEvals);
    EXPECT_TRUE(solo.broadcasts.empty());
    EXPECT_EQ(solo.migration.elitesExported, 0);

    // The K=1 fingerprint is itself reproducible — the invariant
    // island_bench gates on.
    IslandOutcome again = sc.islands(base, one);
    EXPECT_EQ(again.fingerprint, solo.fingerprint);
    EXPECT_NE(solo.fingerprint, 0u);
}

TEST(Island, KThreeRerunIsBitIdentical)
{
    MiniScenario sc;
    EngineConfig base = baseConfig();
    IslandConfig ic = threeIslands();

    IslandOutcome first = sc.islands(base, ic);
    IslandOutcome second = sc.islands(base, ic);

    // Thread scheduling varies between the runs; the invariant part
    // must not.
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.found, second.found);
    EXPECT_EQ(first.winnerIsland, second.winnerIsland);
    EXPECT_EQ(first.winnerEpoch, second.winnerEpoch);
    EXPECT_EQ(first.broadcasts, second.broadcasts);
    ASSERT_EQ(first.islands.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(first.islands[i].generations,
                  second.islands[i].generations);
        EXPECT_EQ(first.islands[i].patchKey,
                  second.islands[i].patchKey);
        ASSERT_EQ(first.islands[i].ledger.size(),
                  second.islands[i].ledger.size());
        for (size_t e = 0; e < first.islands[i].ledger.size(); ++e)
            EXPECT_EQ(first.islands[i].ledger[e].keys,
                      second.islands[i].ledger[e].keys);
    }
    // The migration machinery's hard invariants.
    EXPECT_EQ(first.migration.migrantDuplicates, 0);
    EXPECT_EQ(first.migration.elitesLost, 0);
    // And a different seed is a different run (fingerprint is not a
    // constant).
    EngineConfig other = base;
    other.seed = 23;
    EXPECT_NE(sc.islands(other, ic).fingerprint, first.fingerprint);
}

TEST(Island, WindDownThenResumeMatchesUninterruptedFingerprint)
{
    MiniScenario sc;
    EngineConfig base = baseConfig();
    IslandConfig ic = threeIslands();

    IslandOutcome reference = sc.islands(base, ic);
    ASSERT_TRUE(reference.found);

    // Wind the run down after a few generations of total progress
    // (wherever each island happens to be — mid epoch, at a barrier),
    // exactly like a daemon shutdown.
    std::string dir = tmpDir("island-winddown");
    std::atomic<int> gens{0};
    std::atomic<bool> stop{false};
    IslandOutcome interrupted = runIslands(
        sc.faulty, "tb", "dut", sc.probe, sc.oracle, base, ic, dir,
        [&](const GenerationStats &) {
            if (++gens >= 5)
                stop.store(true);
        },
        [&] { return stop.load(); });
    // Where the stop lands (mid epoch, at a barrier, or even after a
    // lucky early repair) depends on timing — the resumed run below
    // must converge to the reference regardless.
    (void)interrupted;

    // Resume from the per-island snapshots + persisted ledger and run
    // to completion: bit-identical to the run that never stopped.
    IslandOutcome resumed = sc.islands(base, ic, dir);
    EXPECT_TRUE(resumed.found);
    EXPECT_EQ(resumed.fingerprint, reference.fingerprint);
    EXPECT_EQ(resumed.winnerIsland, reference.winnerIsland);
    EXPECT_EQ(resumed.winnerEpoch, reference.winnerEpoch);
    EXPECT_EQ(resumed.broadcasts, reference.broadcasts);
    EXPECT_EQ(resumed.result.patch.key(),
              reference.result.patch.key());
    EXPECT_EQ(resumed.migration.elitesLost, 0);
    std::filesystem::remove_all(dir);
}

TEST(Island, CorruptLedgerRestartsFromScratchDeterministically)
{
    MiniScenario sc;
    EngineConfig base = baseConfig();
    IslandConfig ic = threeIslands();
    IslandOutcome reference = sc.islands(base, ic);

    // Interrupt a checkpointed run, then corrupt its ledger: the
    // snapshots are untrustworthy without the ledger that fed them, so
    // the whole job restarts — and lands on the same result anyway.
    std::string dir = tmpDir("island-corrupt");
    std::atomic<int> gens{0};
    std::atomic<bool> stop{false};
    runIslands(
        sc.faulty, "tb", "dut", sc.probe, sc.oracle, base, ic, dir,
        [&](const GenerationStats &) {
            if (++gens >= 5)
                stop.store(true);
        },
        [&] { return stop.load(); });
    std::string ledgerPath = dir + "/islands.ledger";
    if (std::filesystem::exists(ledgerPath)) {
        std::FILE *f = std::fopen(ledgerPath.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fputs("garbage", f);
        std::fclose(f);
    }

    IslandOutcome restarted = sc.islands(base, ic, dir);
    EXPECT_TRUE(restarted.found);
    EXPECT_EQ(restarted.fingerprint, reference.fingerprint);
    std::filesystem::remove_all(dir);
}

} // namespace
