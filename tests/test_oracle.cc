/**
 * @file
 * Tests for oracle thinning (RQ4 support).
 */

#include <gtest/gtest.h>

#include "core/oracle.h"

using namespace cirfix::core;
using cirfix::sim::LogicVec;

namespace {

Trace
rampTrace(int rows)
{
    Trace t({"v"});
    for (int i = 0; i < rows; ++i)
        t.addRow(static_cast<uint64_t>(5 + 10 * i),
                 {LogicVec(8, static_cast<uint64_t>(i))});
    return t;
}

TEST(Oracle, FullFractionIsIdentity)
{
    Trace t = rampTrace(20);
    Trace out = thinOracle(t, 1.0);
    EXPECT_EQ(out.size(), t.size());
}

TEST(Oracle, HalfKeepsAboutHalf)
{
    Trace t = rampTrace(20);
    Trace out = thinOracle(t, 0.5);
    EXPECT_GE(out.size(), 9u);
    EXPECT_LE(out.size(), 11u);
}

TEST(Oracle, QuarterKeepsAboutQuarter)
{
    Trace t = rampTrace(40);
    Trace out = thinOracle(t, 0.25);
    EXPECT_GE(out.size(), 9u);
    EXPECT_LE(out.size(), 11u);
}

TEST(Oracle, EndpointsRetained)
{
    Trace t = rampTrace(30);
    for (double frac : {0.5, 0.25, 0.1}) {
        Trace out = thinOracle(t, frac);
        ASSERT_GE(out.size(), 2u);
        EXPECT_EQ(out.rows().front().time, t.rows().front().time);
        EXPECT_EQ(out.rows().back().time, t.rows().back().time);
    }
}

TEST(Oracle, RowsAreSubsetWithSameValues)
{
    Trace t = rampTrace(25);
    Trace out = thinOracle(t, 0.3);
    for (auto &row : out.rows()) {
        const Trace::Row *orig = t.rowAt(row.time);
        ASSERT_NE(orig, nullptr);
        EXPECT_TRUE(row.values[0].identical(orig->values[0]));
    }
}

TEST(Oracle, TimesStrictlyIncreasing)
{
    Trace out = thinOracle(rampTrace(50), 0.17);
    for (size_t i = 1; i < out.size(); ++i)
        EXPECT_LT(out.rows()[i - 1].time, out.rows()[i].time);
}

TEST(Oracle, TinyTracesUnchanged)
{
    Trace t = rampTrace(2);
    EXPECT_EQ(thinOracle(t, 0.25).size(), 2u);
    Trace one = rampTrace(1);
    EXPECT_EQ(thinOracle(one, 0.1).size(), 1u);
}

TEST(Oracle, ZeroFractionDegradesGracefully)
{
    Trace out = thinOracle(rampTrace(20), 0.0);
    EXPECT_GE(out.size(), 2u);
    EXPECT_LT(out.size(), 20u);
}

} // namespace
