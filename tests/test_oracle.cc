/**
 * @file
 * Tests for oracle thinning (RQ4 support).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/oracle.h"

using namespace cirfix::core;
using cirfix::sim::LogicVec;

namespace {

Trace
rampTrace(int rows)
{
    Trace t({"v"});
    for (int i = 0; i < rows; ++i)
        t.addRow(static_cast<uint64_t>(5 + 10 * i),
                 {LogicVec(8, static_cast<uint64_t>(i))});
    return t;
}

TEST(Oracle, FullFractionIsIdentity)
{
    Trace t = rampTrace(20);
    Trace out = thinOracle(t, 1.0);
    EXPECT_EQ(out.size(), t.size());
}

TEST(Oracle, HalfKeepsAboutHalf)
{
    Trace t = rampTrace(20);
    Trace out = thinOracle(t, 0.5);
    EXPECT_GE(out.size(), 9u);
    EXPECT_LE(out.size(), 11u);
}

TEST(Oracle, QuarterKeepsAboutQuarter)
{
    Trace t = rampTrace(40);
    Trace out = thinOracle(t, 0.25);
    EXPECT_GE(out.size(), 9u);
    EXPECT_LE(out.size(), 11u);
}

TEST(Oracle, EndpointsRetained)
{
    Trace t = rampTrace(30);
    for (double frac : {0.5, 0.25, 0.1}) {
        Trace out = thinOracle(t, frac);
        ASSERT_GE(out.size(), 2u);
        EXPECT_EQ(out.rows().front().time, t.rows().front().time);
        EXPECT_EQ(out.rows().back().time, t.rows().back().time);
    }
}

TEST(Oracle, RowsAreSubsetWithSameValues)
{
    Trace t = rampTrace(25);
    Trace out = thinOracle(t, 0.3);
    for (auto &row : out.rows()) {
        const Trace::Row *orig = t.rowAt(row.time);
        ASSERT_NE(orig, nullptr);
        EXPECT_TRUE(row.values[0].identical(orig->values[0]));
    }
}

TEST(Oracle, TimesStrictlyIncreasing)
{
    Trace out = thinOracle(rampTrace(50), 0.17);
    for (size_t i = 1; i < out.size(); ++i)
        EXPECT_LT(out.rows()[i - 1].time, out.rows()[i].time);
}

TEST(Oracle, TinyTracesUnchanged)
{
    Trace t = rampTrace(2);
    EXPECT_EQ(thinOracle(t, 0.25).size(), 2u);
    Trace one = rampTrace(1);
    EXPECT_EQ(thinOracle(one, 0.1).size(), 1u);
}

TEST(Oracle, ZeroFractionDegradesGracefully)
{
    Trace out = thinOracle(rampTrace(20), 0.0);
    EXPECT_GE(out.size(), 2u);
    EXPECT_LT(out.size(), 20u);
}

TEST(Oracle, NegativeFractionBehavesLikeZero)
{
    Trace t = rampTrace(20);
    Trace neg = thinOracle(t, -0.5);
    Trace zero = thinOracle(t, 0.0);
    EXPECT_EQ(neg.size(), zero.size());
    EXPECT_GE(neg.size(), 2u);
    EXPECT_EQ(neg.rows().front().time, t.rows().front().time);
    EXPECT_EQ(neg.rows().back().time, t.rows().back().time);
}

TEST(Oracle, FractionAboveOneIsIdentity)
{
    Trace t = rampTrace(13);
    for (double frac : {1.0, 1.5, 100.0}) {
        Trace out = thinOracle(t, frac);
        ASSERT_EQ(out.size(), t.size());
        for (size_t i = 0; i < t.size(); ++i) {
            EXPECT_EQ(out.rows()[i].time, t.rows()[i].time);
            EXPECT_TRUE(out.rows()[i].values[0].identical(
                t.rows()[i].values[0]));
        }
    }
}

TEST(Oracle, SingleRowSurvivesAnyFraction)
{
    Trace one = rampTrace(1);
    for (double frac : {-1.0, 0.0, 0.01, 0.5, 1.0, 2.0}) {
        Trace out = thinOracle(one, frac);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out.rows()[0].time, one.rows()[0].time);
    }
}

TEST(Oracle, TwoRowsKeepBothEndpoints)
{
    Trace two = rampTrace(2);
    for (double frac : {-1.0, 0.0, 0.01, 0.5, 1.0}) {
        Trace out = thinOracle(two, frac);
        ASSERT_EQ(out.size(), 2u);
        EXPECT_EQ(out.rows().front().time, two.rows().front().time);
        EXPECT_EQ(out.rows().back().time, two.rows().back().time);
    }
}

// ------------------------------------------------------------------
// combineFitness: multi-bench score folding
// ------------------------------------------------------------------

FitnessResult
makeFit(double sum, double total, uint64_t matches,
        uint64_t mismatches)
{
    FitnessResult f;
    f.sum = sum;
    f.total = total;
    f.fitness = total > 0 ? std::max(0.0, sum) / total : 0.0;
    f.bitMatches = matches;
    f.bitMismatches = mismatches;
    return f;
}

TEST(CombineFitness, SumsTotalsAndBitCountsAdd)
{
    FitnessResult c =
        combineFitness(makeFit(3.0, 4.0, 30, 10), makeFit(1.0, 2.0, 8, 8));
    EXPECT_DOUBLE_EQ(c.sum, 4.0);
    EXPECT_DOUBLE_EQ(c.total, 6.0);
    EXPECT_DOUBLE_EQ(c.fitness, 4.0 / 6.0);
    EXPECT_EQ(c.bitMatches, 38u);
    EXPECT_EQ(c.bitMismatches, 18u);
}

TEST(CombineFitness, PlausibleOnlyWhenBothPerfect)
{
    FitnessResult perfect = makeFit(4.0, 4.0, 32, 0);
    FitnessResult imperfect = makeFit(3.0, 4.0, 24, 8);
    EXPECT_TRUE(combineFitness(perfect, perfect).plausible());
    EXPECT_FALSE(combineFitness(perfect, imperfect).plausible());
    EXPECT_FALSE(combineFitness(imperfect, perfect).plausible());
}

TEST(CombineFitness, EmptyBenchIsIdentity)
{
    FitnessResult a = makeFit(3.0, 4.0, 30, 10);
    FitnessResult c = combineFitness(a, FitnessResult{});
    EXPECT_DOUBLE_EQ(c.sum, a.sum);
    EXPECT_DOUBLE_EQ(c.total, a.total);
    EXPECT_DOUBLE_EQ(c.fitness, a.fitness);
}

// ------------------------------------------------------------------
// agreementRows: the seeded-overfit oracle weakening
// ------------------------------------------------------------------

TEST(AgreementRows, KeepsExactlyTheMatchingRows)
{
    Trace oracle = rampTrace(6);
    Trace sim({"v"});
    for (int i = 0; i < 6; ++i) {
        // Disagree on rows 2 and 4.
        uint64_t v = (i == 2 || i == 4) ? 99u : static_cast<uint64_t>(i);
        sim.addRow(static_cast<uint64_t>(5 + 10 * i), {LogicVec(8, v)});
    }
    Trace weak = agreementRows(oracle, sim);
    ASSERT_EQ(weak.size(), 4u);
    for (auto &row : weak.rows()) {
        const Trace::Row *orig = oracle.rowAt(row.time);
        ASSERT_NE(orig, nullptr);
        EXPECT_TRUE(row.values[0].identical(orig->values[0]));
    }
    // The weakened oracle now scores the "faulty" sim as perfect.
    EXPECT_TRUE(evaluateFitness(sim, weak).plausible());
}

TEST(AgreementRows, DropsRowsTheSimNeverReached)
{
    Trace oracle = rampTrace(10);
    Trace sim = rampTrace(4);  // truncated run: rows 4..9 unreachable
    Trace weak = agreementRows(oracle, sim);
    EXPECT_EQ(weak.size(), 4u);
}

TEST(AgreementRows, SelfAgreementIsIdentity)
{
    Trace oracle = rampTrace(8);
    Trace weak = agreementRows(oracle, oracle);
    EXPECT_EQ(weak.size(), oracle.size());
}

TEST(AgreementRows, TotalDisagreementYieldsEmptyTrace)
{
    Trace oracle = rampTrace(5);
    Trace sim({"v"});
    for (int i = 0; i < 5; ++i)
        sim.addRow(static_cast<uint64_t>(5 + 10 * i),
                   {LogicVec(8, 200u + i)});
    EXPECT_TRUE(agreementRows(oracle, sim).empty());
}

} // namespace
