/**
 * @file
 * Unit tests for the stratified event scheduler.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/elaborate.h"
#include "sim/probe.h"
#include "sim/scheduler.h"
#include "verilog/parser.h"

using namespace cirfix::sim;

namespace {

TEST(Scheduler, EmptyQueueIsIdle)
{
    Scheduler s;
    auto res = s.run(1000, 1000);
    EXPECT_EQ(res.status, Scheduler::Status::Idle);
    EXPECT_EQ(res.callbacks, 0u);
}

TEST(Scheduler, ActiveCallbacksRunFifo)
{
    Scheduler s;
    std::vector<int> order;
    s.scheduleActive([&] { order.push_back(1); });
    s.scheduleActive([&] { order.push_back(2); });
    s.scheduleActive([&] { order.push_back(3); });
    s.run(10, 100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TimeAdvancesInOrder)
{
    Scheduler s;
    std::vector<SimTime> seen;
    s.scheduleAt(30, [&] { seen.push_back(s.now()); });
    s.scheduleAt(10, [&] { seen.push_back(s.now()); });
    s.scheduleAt(20, [&] { seen.push_back(s.now()); });
    auto res = s.run(100, 100);
    EXPECT_EQ(seen, (std::vector<SimTime>{10, 20, 30}));
    EXPECT_EQ(res.endTime, 30u);
}

TEST(Scheduler, InactiveRunsAfterActiveDrains)
{
    Scheduler s;
    std::vector<int> order;
    s.scheduleInactive([&] { order.push_back(9); });
    s.scheduleActive([&] {
        order.push_back(1);
        s.scheduleActive([&] { order.push_back(2); });
    });
    s.run(10, 100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 9}));
}

TEST(Scheduler, NbaRunsAfterInactive)
{
    Scheduler s;
    std::vector<int> order;
    s.scheduleNba([&] { order.push_back(3); });
    s.scheduleInactive([&] { order.push_back(2); });
    s.scheduleActive([&] { order.push_back(1); });
    s.run(10, 100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NbaWakesBackIntoActiveSameSlot)
{
    Scheduler s;
    std::vector<int> order;
    s.scheduleNba([&] {
        order.push_back(1);
        s.scheduleActive([&] { order.push_back(2); });
    });
    auto res = s.run(10, 100);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(res.endTime, 0u);
}

TEST(Scheduler, PostponedRunsLast)
{
    Scheduler s;
    std::vector<int> order;
    s.schedulePostponed([&] { order.push_back(9); });
    s.scheduleNba([&] {
        order.push_back(2);
        s.scheduleActive([&] { order.push_back(3); });
    });
    s.scheduleActive([&] { order.push_back(1); });
    s.run(10, 100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 9}));
}

TEST(Scheduler, NbaAtFutureTime)
{
    Scheduler s;
    std::vector<std::pair<SimTime, int>> seen;
    s.scheduleNbaAt(5, [&] { seen.push_back({s.now(), 1}); });
    s.scheduleAt(5, [&] { seen.push_back({s.now(), 0}); });
    s.run(10, 100);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<SimTime, int>{5, 0}));  // active first
    EXPECT_EQ(seen[1], (std::pair<SimTime, int>{5, 1}));
}

TEST(Scheduler, PastTimeClampsToNow)
{
    Scheduler s;
    bool ran = false;
    s.scheduleAt(50, [&] {
        // Scheduling "in the past" lands in the current slot.
        s.scheduleAt(10, [&] { ran = (s.now() == 50); });
    });
    s.run(100, 100);
    EXPECT_TRUE(ran);
}

TEST(Scheduler, FinishStopsBetweenCallbacks)
{
    Scheduler s;
    int count = 0;
    s.scheduleActive([&] {
        ++count;
        s.requestFinish();
    });
    s.scheduleActive([&] { ++count; });
    auto res = s.run(10, 100);
    EXPECT_EQ(res.status, Scheduler::Status::Finished);
    EXPECT_EQ(count, 1);
}

TEST(Scheduler, MaxTimeBound)
{
    Scheduler s;
    // Self-perpetuating future events.
    std::function<void()> tick = [&] { s.scheduleAt(s.now() + 10, tick); };
    s.scheduleAt(0, tick);
    auto res = s.run(55, 1'000'000);
    EXPECT_EQ(res.status, Scheduler::Status::MaxTime);
    EXPECT_GT(res.endTime, 55u);
}

TEST(Scheduler, CallbackBudgetDetectsRunaway)
{
    Scheduler s;
    std::function<void()> spin = [&] { s.scheduleActive(spin); };
    s.scheduleActive(spin);
    auto res = s.run(10, 500);
    EXPECT_EQ(res.status, Scheduler::Status::Runaway);
    EXPECT_TRUE(s.aborted());
    EXPECT_FALSE(s.abortReason().empty());
}

TEST(Scheduler, NoteAbortStopsRun)
{
    Scheduler s;
    s.scheduleActive([&] { s.noteAbort("deliberate"); });
    s.scheduleAt(5, [] {});
    auto res = s.run(10, 100);
    EXPECT_EQ(res.status, Scheduler::Status::Runaway);
    EXPECT_EQ(s.abortReason(), "deliberate");
}

TEST(Scheduler, SimAbortCarriesMessage)
{
    SimAbort e("budget gone");
    EXPECT_STREQ(e.what(), "budget gone");
}

// ------------------------------------------------------------------
// Concurrency stress: simulating one shared AST from many threads
// ------------------------------------------------------------------

/**
 * Parallel candidate evaluation elaborates and simulates designs on
 * worker threads, and several designs may share one AST (e.g. the
 * unpatched original). The interpreter lazily writes the per-statement
 * suspendCache on that shared tree, so this test drives 8 concurrent
 * simulations of the *same* SourceFile and demands identical traces —
 * it is the regression guard for the atomic suspendCache (run it under
 * `ctest -L tsan` in a -DCIRFIX_TSAN=ON build to prove race-freedom).
 */
TEST(SchedulerStress, ConcurrentSimulationsOfSharedAstAgree)
{
    const char *src = R"(
module dut (clk, rst, count);
    input clk, rst;
    output [3:0] count;
    reg [3:0] count;
    integer i;
    reg [3:0] acc;
    always @(posedge clk) begin
        if (rst) begin
            count <= 4'd0;
        end
        else begin
            acc = 4'd0;
            for (i = 0; i < 3; i = i + 1)
                acc = acc + 4'd1;
            if (count == 4'd9)
                count <= 4'd0;
            else
                count <= count + (acc - 4'd2);
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire [3:0] count;
    dut d (.clk(clk), .rst(rst), .count(count));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #300 $finish;
    end
    always #5 clk = !clk;
endmodule
)";
    std::shared_ptr<const cirfix::verilog::SourceFile> file =
        cirfix::verilog::parse(src);
    ProbeConfig probe = deriveProbeConfig(*file, "tb");

    // Reference trace from a serial run of a private clone (its
    // suspendCache fills independently of the shared tree's).
    std::string expected;
    {
        auto design = elaborate(*file, "tb");
        TraceRecorder rec(*design, probe);
        design->run();
        expected = rec.takeTrace().toCsv();
    }
    ASSERT_FALSE(expected.empty());

    constexpr int kThreads = 8;
    std::vector<std::string> traces(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            // Shares `file` (and its lazily-written suspendCache)
            // with every other thread.
            auto design = elaborate(file, "tb");
            TraceRecorder rec(*design, probe);
            design->run();
            traces[static_cast<size_t>(t)] = rec.takeTrace().toCsv();
        });
    for (auto &th : threads)
        th.join();

    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(traces[static_cast<size_t>(t)], expected)
            << "thread " << t << " diverged";
}

} // namespace
