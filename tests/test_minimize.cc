/**
 * @file
 * Tests for delta-debugging repair minimization (Section 3.7).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/minimize.h"

using namespace cirfix::core;

namespace {

Patch
patchOfTargets(const std::vector<int> &targets)
{
    Patch p;
    for (int t : targets) {
        Edit e;
        e.kind = EditKind::Delete;
        e.target = t;
        p.edits.push_back(std::move(e));
    }
    return p;
}

std::multiset<int>
targets(const Patch &p)
{
    std::multiset<int> out;
    for (auto &e : p.edits)
        out.insert(e.target);
    return out;
}

/** Plausibility oracle: the patch must contain all of @p needed. */
auto
needsAll(std::vector<int> needed)
{
    return [needed](const Patch &p) {
        std::multiset<int> have = targets(p);
        for (int n : needed)
            if (!have.count(n))
                return false;
        return true;
    };
}

TEST(Minimize, DropsAllExtraneousEdits)
{
    Patch p = patchOfTargets({1, 2, 3, 4, 5, 6, 7, 8});
    int tests = 0;
    Patch m = minimizePatch(p, needsAll({3}), &tests);
    EXPECT_EQ(targets(m), (std::multiset<int>{3}));
    EXPECT_GT(tests, 0);
}

TEST(Minimize, KeepsMultipleRequiredEdits)
{
    Patch p = patchOfTargets({1, 2, 3, 4, 5, 6});
    Patch m = minimizePatch(p, needsAll({2, 5, 6}));
    EXPECT_EQ(targets(m), (std::multiset<int>{2, 5, 6}));
}

TEST(Minimize, AlreadyMinimalUnchanged)
{
    Patch p = patchOfTargets({4, 9});
    Patch m = minimizePatch(p, needsAll({4, 9}));
    EXPECT_EQ(targets(m), (std::multiset<int>{4, 9}));
}

TEST(Minimize, SingleEditPatch)
{
    Patch p = patchOfTargets({42});
    Patch m = minimizePatch(p, needsAll({42}));
    EXPECT_EQ(m.size(), 1u);
}

TEST(Minimize, AllEditsRequired)
{
    Patch p = patchOfTargets({1, 2, 3, 4, 5, 6, 7});
    Patch m = minimizePatch(p, needsAll({1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(m.size(), 7u);
}

TEST(Minimize, PreservesOrder)
{
    Patch p = patchOfTargets({9, 1, 7, 3});
    Patch m = minimizePatch(p, needsAll({1, 3}));
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m.edits[0].target, 1);
    EXPECT_EQ(m.edits[1].target, 3);
}

TEST(Minimize, ResultIsOneMinimal)
{
    // Oracle: needs {2} OR ({4} AND {6}) — minimization should land on
    // a subset from which nothing more can be dropped.
    auto oracle = [](const Patch &p) {
        auto t = targets(p);
        return t.count(2) || (t.count(4) && t.count(6));
    };
    Patch p = patchOfTargets({1, 2, 3, 4, 5, 6});
    Patch m = minimizePatch(p, oracle);
    EXPECT_TRUE(oracle(m));
    // Every single-edit removal leaving a non-empty patch breaks it.
    for (size_t i = 0; i < m.edits.size(); ++i) {
        Patch without;
        for (size_t j = 0; j < m.edits.size(); ++j)
            if (j != i)
                without.edits.push_back(m.edits[j]);
        if (!without.empty()) {
            EXPECT_FALSE(oracle(without))
                << "edit " << i << " is removable";
        }
    }
}

TEST(Minimize, NeverTestsEmptyPatch)
{
    Patch p = patchOfTargets({1, 2});
    bool saw_empty = false;
    minimizePatch(p, [&](const Patch &q) {
        saw_empty |= q.empty();
        return true;  // everything "plausible": maximal removal
    });
    EXPECT_FALSE(saw_empty);
}

TEST(Minimize, PolynomialTestCount)
{
    Patch p = patchOfTargets(
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    int tests = 0;
    minimizePatch(p, needsAll({7}), &tests);
    EXPECT_LT(tests, 16 * 16);
}

} // namespace
