/**
 * @file
 * Tests for the CirFix fitness function (Section 3.2 formulas),
 * including the motivating example's arithmetic and property checks.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/fitness.h"

using namespace cirfix::core;
using cirfix::sim::LogicVec;
using cirfix::sim::Trace;

namespace {

Trace
traceOf(const std::vector<std::string> &vars,
        const std::vector<std::pair<uint64_t, std::vector<std::string>>>
            &rows)
{
    Trace t{std::vector<std::string>(vars)};
    for (auto &[time, vals] : rows) {
        std::vector<LogicVec> vv;
        for (auto &s : vals)
            vv.push_back(LogicVec::fromString(s));
        t.addRow(time, std::move(vv));
    }
    return t;
}

TEST(Fitness, PerfectMatchIsPlausible)
{
    Trace o = traceOf({"q"}, {{5, {"0101"}}, {15, {"0110"}}});
    FitnessResult r = evaluateFitness(o, o);
    EXPECT_DOUBLE_EQ(r.fitness, 1.0);
    EXPECT_TRUE(r.plausible());
    EXPECT_EQ(r.bitMatches, 8u);
    EXPECT_EQ(r.bitMismatches, 0u);
}

TEST(Fitness, TotalMismatchIsZero)
{
    Trace o = traceOf({"q"}, {{5, {"1111"}}});
    Trace s = traceOf({"q"}, {{5, {"0000"}}});
    FitnessResult r = evaluateFitness(s, o);
    EXPECT_DOUBLE_EQ(r.fitness, 0.0);  // clamped at zero
    EXPECT_FALSE(r.plausible());
    EXPECT_EQ(r.bitMismatches, 4u);
    EXPECT_LT(r.sum, 0.0);
}

TEST(Fitness, PaperScoringTable)
{
    // One bit per case of the paper's sum() definition.
    Trace o = traceOf({"a", "b", "c", "d", "e", "f"},
                      {{5, {"0", "x", "1", "0", "x", "z"}}});
    Trace s = traceOf({"a", "b", "c", "d", "e", "f"},
                      {{5, {"0", "x", "0", "x", "1", "x"}}});
    FitnessParams p;
    p.phi = 2.0;
    FitnessResult r = evaluateFitness(s, o, p);
    // (0,0): +1/1. (x,x): +2/2. (1,0): -1/1. (0,x): -2/2.
    // (x,1): -2/2. (z,x): -2/2.
    EXPECT_DOUBLE_EQ(r.sum, 1 + 2 - 1 - 2 - 2 - 2);
    EXPECT_DOUBLE_EQ(r.total, 1 + 2 + 1 + 2 + 2 + 2);
    EXPECT_DOUBLE_EQ(r.fitness, 0.0);  // sum < 0 clamps
    EXPECT_EQ(r.unknownMatches, 1u);
    EXPECT_EQ(r.unknownMismatches, 3u);
    EXPECT_EQ(r.bitMismatches, 1u);
}

TEST(Fitness, PhiWeightsUnknowns)
{
    Trace o = traceOf({"q"}, {{5, {"00"}}, {15, {"11"}}});
    Trace s = traceOf({"q"}, {{5, {"0x"}}, {15, {"11"}}});
    FitnessParams p1{1.0}, p2{2.0}, p3{3.0};
    double f1 = evaluateFitness(s, o, p1).fitness;
    double f2 = evaluateFitness(s, o, p2).fitness;
    double f3 = evaluateFitness(s, o, p3).fitness;
    // Larger phi penalizes the x mismatch more.
    EXPECT_GT(f1, f2);
    EXPECT_GT(f2, f3);
}

TEST(Fitness, MissingRowsReadAsX)
{
    Trace o = traceOf({"q"}, {{5, {"01"}}, {15, {"10"}}});
    Trace s = traceOf({"q"}, {{5, {"01"}}});  // sim ended early
    FitnessResult r = evaluateFitness(s, o);
    // Row 5 matches (+2/2); row 15 is x vs defined (-2*phi / 2*phi).
    EXPECT_DOUBLE_EQ(r.sum, 2.0 - 4.0);
    EXPECT_DOUBLE_EQ(r.total, 2.0 + 4.0);
    EXPECT_DOUBLE_EQ(r.fitness, 0.0);
}

TEST(Fitness, MissingVariableReadsAsX)
{
    Trace o = traceOf({"q", "r"}, {{5, {"1", "0"}}});
    Trace s = traceOf({"q"}, {{5, {"1"}}});
    FitnessResult r = evaluateFitness(s, o);
    EXPECT_EQ(r.bitMatches, 1u);
    EXPECT_EQ(r.unknownMismatches, 1u);
}

TEST(Fitness, ExtraSimRowsIgnored)
{
    Trace o = traceOf({"q"}, {{5, {"1"}}});
    Trace s = traceOf({"q"}, {{5, {"1"}}, {15, {"0"}}, {25, {"0"}}});
    FitnessResult r = evaluateFitness(s, o);
    EXPECT_TRUE(r.plausible());
}

TEST(Fitness, VariablesMatchedByName)
{
    Trace o = traceOf({"a", "b"}, {{5, {"1", "0"}}});
    // Columns swapped in the sim trace; name matching must fix it up.
    Trace s = traceOf({"b", "a"}, {{5, {"0", "1"}}});
    FitnessResult r = evaluateFitness(s, o);
    EXPECT_TRUE(r.plausible());
}

TEST(Fitness, WidthNormalization)
{
    Trace o = traceOf({"q"}, {{5, {"0011"}}});
    Trace s = traceOf({"q"}, {{5, {"11"}}});  // narrower: zero-extends
    FitnessResult r = evaluateFitness(s, o);
    EXPECT_TRUE(r.plausible());
}

TEST(Fitness, EmptyOracleNotPlausible)
{
    Trace o{std::vector<std::string>{"q"}};
    Trace s = traceOf({"q"}, {{5, {"1"}}});
    FitnessResult r = evaluateFitness(s, o);
    EXPECT_FALSE(r.plausible());
    EXPECT_DOUBLE_EQ(r.total, 0.0);
}

TEST(Fitness, MotivatingExampleShape)
{
    // Figure 2: overflow_out mismatches x-vs-0 for 17 of 20 early
    // cycles while counter_out matches; fitness lands strictly
    // between 0 and 1 and improves when the mismatch shrinks.
    std::vector<std::pair<uint64_t, std::vector<std::string>>> orows,
        srows_bad, srows_better;
    for (uint64_t c = 0; c < 20; ++c) {
        uint64_t tm = 25 + 10 * c;
        orows.push_back({tm, {"0000", "0"}});
        srows_bad.push_back({tm, {"0000", c < 17 ? "x" : "0"}});
        srows_better.push_back({tm, {"0000", c < 5 ? "x" : "0"}});
    }
    Trace o = traceOf({"counter_out", "overflow_out"}, orows);
    Trace bad = traceOf({"counter_out", "overflow_out"}, srows_bad);
    Trace better = traceOf({"counter_out", "overflow_out"},
                           srows_better);
    double f_bad = evaluateFitness(bad, o).fitness;
    double f_better = evaluateFitness(better, o).fitness;
    EXPECT_GT(f_bad, 0.0);
    EXPECT_LT(f_bad, 1.0);
    EXPECT_GT(f_better, f_bad);
}

class FitnessBoundsProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FitnessBoundsProperty, AlwaysInUnitInterval)
{
    std::mt19937_64 rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        int rows = 1 + static_cast<int>(rng() % 8);
        int width = 1 + static_cast<int>(rng() % 6);
        auto random_trace = [&] {
            Trace t({"v"});
            for (int i = 0; i < rows; ++i) {
                std::string bits;
                for (int b = 0; b < width; ++b)
                    bits.push_back("01xz"[rng() % 4]);
                t.addRow(static_cast<uint64_t>(i * 10),
                         {LogicVec::fromString(bits)});
            }
            return t;
        };
        Trace o = random_trace();
        Trace s = random_trace();
        FitnessResult r = evaluateFitness(s, o);
        EXPECT_GE(r.fitness, 0.0);
        EXPECT_LE(r.fitness, 1.0);
        // Self-comparison of any trace without x/z... may contain x;
        // identical traces always score exactly 1.
        FitnessResult self = evaluateFitness(o, o);
        EXPECT_DOUBLE_EQ(self.fitness, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitnessBoundsProperty,
                         ::testing::Values(11u, 22u, 33u));

} // namespace
