/**
 * @file
 * Printer tests: regenerated Verilog must re-parse, and printing is a
 * fixed point (print(parse(print(x))) == print(x)).
 */

#include <gtest/gtest.h>

#include "verilog/parser.h"
#include "verilog/printer.h"

using namespace cirfix::verilog;

namespace {

void
expectRoundTrip(const std::string &src)
{
    auto f1 = parse(src);
    std::string p1 = print(*f1);
    std::unique_ptr<SourceFile> f2;
    ASSERT_NO_THROW(f2 = parse(p1)) << p1;
    std::string p2 = print(*f2);
    EXPECT_EQ(p1, p2) << "printing is not idempotent for:\n" << src;
}

TEST(Printer, SimpleModule)
{
    expectRoundTrip(R"(
module m (clk, q);
    input clk;
    output q;
    reg q;
    always @(posedge clk) q <= !q;
endmodule
)");
}

TEST(Printer, Expressions)
{
    expectRoundTrip(R"(
module m;
    wire [7:0] a, b;
    wire [7:0] y1, y2, y3, y4, y5;
    assign y1 = a + b * 2 - (a / b) % 3;
    assign y2 = (a << 2) | (b >> 1) & ~a ^ b;
    assign y3 = a == b ? {a[3:0], b[7:4]} : {2{a[1]}} + 6'd12;
    assign y4 = {8{a < b && b >= 3}};
    assign y5 = (a === 8'hzz) ? ^a : ~|b;
endmodule
)");
}

TEST(Printer, Statements)
{
    expectRoundTrip(R"(
module m;
    reg [3:0] q;
    reg clk;
    integer i;
    event done;
    always @(posedge clk or negedge q[0])
    begin : BLK
        if (q == 4'b1111) begin
            q <= #1 4'd0;
        end
        else begin
            q <= q + 1;
        end
        case (q)
            4'h0, 4'h1 : q <= 4'h2;
            4'h2 : ;
            default : begin
                q <= 4'hf;
            end
        endcase
        for (i = 0; i < 4; i = i + 1) q = q ^ 4'b0001;
        while (q > 0) q = q - 1;
        repeat (3) @(negedge clk);
        wait (q == 0) q = 4'h1;
        -> done;
        #5;
        $display("q=%b", q);
    end
endmodule
)");
}

TEST(Printer, NumbersKeepBases)
{
    auto file = parse(
        "module m; wire [7:0] w; assign w = 8'hab + 8'b101 + 13 + "
        "4'bx01z; endmodule");
    std::string out = print(*file);
    EXPECT_NE(out.find("8'hab"), std::string::npos);
    EXPECT_NE(out.find("13"), std::string::npos);
    EXPECT_NE(out.find("4'bx01z"), std::string::npos);
    expectRoundTrip(out);
}

TEST(Printer, Hierarchy)
{
    expectRoundTrip(R"(
module child (input a, input b, output y);
    assign y = a & b;
endmodule
module top (input x, output z);
    wire t;
    child c1 (.a(x), .b(1'b1), .y(t));
    child c2 (x, t, z);
endmodule
)");
}

TEST(Printer, AnsiPortsPrintStandalone)
{
    // ANSI input must regenerate as valid traditional-style output.
    expectRoundTrip(
        "module m (input clk, output reg [3:0] q);\n"
        "    always @(posedge clk) q <= q + 1;\nendmodule\n");
}

TEST(Printer, MemoriesAndParameters)
{
    expectRoundTrip(R"(
module m;
    parameter W = 4;
    parameter DEPTH = 16;
    localparam LAST = DEPTH - 1;
    reg [W-1:0] mem [0:LAST];
    reg [W-1:0] q;
    wire [3:0] addr;
    initial q = mem[addr];
endmodule
)");
}

TEST(Printer, EventControlWithoutStatement)
{
    expectRoundTrip(R"(
module m;
    reg clk;
    event go;
    initial begin
        @(go);
        @(posedge clk);
        @*;
    end
    always #5 clk = !clk;
endmodule
)");
}

TEST(Printer, StringEscapes)
{
    expectRoundTrip(
        "module m; initial $display(\"a\\nb\\t\\\"c\\\"\"); "
        "endmodule");
}

TEST(Printer, ExprPrinterStandalone)
{
    auto file = parse(
        "module m; wire [3:0] a; wire y; assign y = a[2] ^ a[3:1] == "
        "2; endmodule");
    const ContAssign *ca = nullptr;
    for (auto &it : file->modules[0]->items)
        if (it->kind == NodeKind::ContAssign)
            ca = it->as<ContAssign>();
    ASSERT_NE(ca, nullptr);
    std::string s = printExpr(*ca->rhs);
    EXPECT_NE(s.find("a[2]"), std::string::npos);
    EXPECT_NE(s.find("a[3:1]"), std::string::npos);
}

TEST(Printer, BenchmarkStyleSource)
{
    // A representative chunk of the benchmark idioms in one module.
    expectRoundTrip(R"(
module tb;
    reg clk, reset, enable;
    wire [3:0] counter_out;
    reg [7:0] slave_data;
    event reset_trigger, terminate_sim;
    integer i;

    always #5 clk = !clk;

    initial begin
        clk = 0;
        #10 -> reset_trigger;
        @(reset_trigger);
        @(negedge clk);
        reset = 1;
        repeat (21) begin
            @(negedge clk);
        end
        for (i = 0; i < 8; i = i + 1) begin
            slave_data <= {slave_data[6:0], slave_data[7]};
            @(negedge clk);
        end
        wait (counter_out == 4'hf);
        #5 -> terminate_sim;
        $finish;
    end
endmodule
)");
}

} // namespace
