/**
 * @file
 * Tests for the mutation and crossover repair operators.
 */

#include <gtest/gtest.h>

#include "core/mutation.h"
#include "verilog/parser.h"
#include "verilog/printer.h"
#include "verilog/validate.h"

using namespace cirfix;
using namespace cirfix::core;
using namespace cirfix::verilog;

namespace {

const std::string kSrc = R"(
module dut (clk, rst, q);
    input clk, rst;
    output [3:0] q;
    reg [3:0] q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 4'd0;
        end
        else begin
            q <= q + 4'd1;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire [3:0] q;
    reg tb_private;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        tb_private = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

std::unordered_set<int>
allIds(const Module &m)
{
    std::unordered_set<int> ids;
    visitAll(const_cast<Module &>(m), [&](Node &n) { ids.insert(n.id); });
    return ids;
}

TEST(Mutation, ProducesOneOfThreeKinds)
{
    auto file = parse(kSrc);
    const Module *dut = file->findModule("dut");
    std::mt19937_64 rng(7);
    Mutator mut(rng, MutationConfig{});
    std::unordered_set<int> fl = allIds(*dut);
    int deletes = 0, inserts = 0, replaces = 0, none = 0;
    for (int i = 0; i < 300; ++i) {
        auto e = mut.mutate(*file, *dut, fl);
        if (!e) {
            ++none;
            continue;
        }
        switch (e->kind) {
          case EditKind::Delete: ++deletes; break;
          case EditKind::InsertAfter: ++inserts; break;
          case EditKind::Replace: ++replaces; break;
          default: FAIL() << "unexpected edit kind";
        }
    }
    // Thresholds .3/.3/.4 should produce a mix of all three.
    EXPECT_GT(deletes, 30);
    EXPECT_GT(inserts, 30);
    EXPECT_GT(replaces, 30);
    EXPECT_LT(none, 150);
}

TEST(Mutation, TargetsRespectFaultLocalization)
{
    auto file = parse(kSrc);
    const Module *dut = file->findModule("dut");
    // Restrict FL to the reset assignment only.
    int reset_assign = -1;
    visitAll(*const_cast<Module *>(dut), [&](Node &n) {
        if (n.kind == NodeKind::Assign &&
            printExpr(*n.as<Assign>()->rhs).find("4'd0") !=
                std::string::npos)
            reset_assign = n.id;
    });
    ASSERT_GE(reset_assign, 0);
    std::unordered_set<int> fl{reset_assign};
    std::mt19937_64 rng(11);
    Mutator mut(rng, MutationConfig{});
    for (int i = 0; i < 100; ++i) {
        auto e = mut.mutate(*file, *dut, fl);
        if (!e)
            continue;
        if (e->kind == EditKind::Delete ||
            e->kind == EditKind::Replace) {
            EXPECT_EQ(e->target, reset_assign);
        }
    }
}

TEST(Mutation, FallsBackWhenFlEmpty)
{
    auto file = parse(kSrc);
    const Module *dut = file->findModule("dut");
    std::mt19937_64 rng(3);
    Mutator mut(rng, MutationConfig{});
    auto e = mut.mutate(*file, *dut, {});
    EXPECT_TRUE(e.has_value());
}

TEST(Mutation, WithFixLocMutantsMostlyValid)
{
    auto file = parse(kSrc);
    const Module *dut = file->findModule("dut");
    std::mt19937_64 rng(13);
    MutationConfig cfg;
    cfg.useFixLoc = true;
    Mutator mut(rng, cfg);
    std::unordered_set<int> fl = allIds(*dut);
    int invalid = 0, total = 0;
    for (int i = 0; i < 200; ++i) {
        auto e = mut.mutate(*file, *dut, fl);
        if (!e)
            continue;
        Patch p;
        p.edits.push_back(std::move(*e));
        auto mutant = applyPatch(*file, p);
        ++total;
        invalid += isValid(*mutant) ? 0 : 1;
    }
    ASSERT_GT(total, 100);
    EXPECT_LT(static_cast<double>(invalid) / total, 0.15);
}

TEST(Mutation, WithoutFixLocMoreInvalidMutants)
{
    auto file = parse(kSrc);
    const Module *dut = file->findModule("dut");
    auto rate = [&](bool use_fixloc) {
        std::mt19937_64 rng(17);
        MutationConfig cfg;
        cfg.useFixLoc = use_fixloc;
        Mutator mut(rng, cfg);
        std::unordered_set<int> fl = allIds(*dut);
        int invalid = 0, total = 0;
        for (int i = 0; i < 300; ++i) {
            auto e = mut.mutate(*file, *dut, fl);
            if (!e)
                continue;
            Patch p;
            p.edits.push_back(std::move(*e));
            auto mutant = applyPatch(*file, p);
            ++total;
            invalid += isValid(*mutant) ? 0 : 1;
        }
        return static_cast<double>(invalid) / total;
    };
    // The Section 3.6 claim: fix localization reduces the fraction of
    // mutants that fail to compile.
    EXPECT_LT(rate(true), rate(false));
}

TEST(Crossover, SwapsTails)
{
    auto mkpatch = [](std::initializer_list<int> targets) {
        Patch p;
        for (int t : targets) {
            Edit e;
            e.kind = EditKind::Delete;
            e.target = t;
            p.edits.push_back(std::move(e));
        }
        return p;
    };
    Patch a = mkpatch({1, 2, 3});
    Patch b = mkpatch({10, 20});
    std::mt19937_64 rng(5);
    auto [c1, c2] = crossover(a, b, rng);
    // Children together contain exactly the parents' edits.
    EXPECT_EQ(c1.size() + c2.size(), a.size() + b.size());
    // Each child's prefix comes from one parent.
    if (!c1.edits.empty()) {
        EXPECT_TRUE(c1.edits[0].target == 1 ||
                    c1.edits[0].target == 10);
    }
}

TEST(Crossover, EmptyParentsGiveEmptyChildren)
{
    std::mt19937_64 rng(5);
    auto [c1, c2] = crossover(Patch{}, Patch{}, rng);
    EXPECT_TRUE(c1.empty());
    EXPECT_TRUE(c2.empty());
}

TEST(Crossover, Deterministic)
{
    Patch a, b;
    for (int t : {1, 2, 3, 4}) {
        Edit e;
        e.kind = EditKind::Delete;
        e.target = t;
        a.edits.push_back(std::move(e));
    }
    for (int t : {10, 20, 30}) {
        Edit e;
        e.kind = EditKind::Delete;
        e.target = t;
        b.edits.push_back(std::move(e));
    }
    std::mt19937_64 r1(99), r2(99);
    auto [x1, x2] = crossover(a, b, r1);
    auto [y1, y2] = crossover(a, b, r2);
    EXPECT_EQ(x1.describe(), y1.describe());
    EXPECT_EQ(x2.describe(), y2.describe());
}

TEST(Mutation, TemplateEditFromSites)
{
    auto file = parse(kSrc);
    const Module *dut = file->findModule("dut");
    std::mt19937_64 rng(23);
    Mutator mut(rng, MutationConfig{});
    std::unordered_set<int> fl = allIds(*dut);
    int got = 0;
    for (int i = 0; i < 50; ++i) {
        auto e = mut.templateEdit(*file, *dut, fl);
        if (e) {
            ++got;
            EXPECT_EQ(e->kind, EditKind::Template);
        }
    }
    EXPECT_EQ(got, 50);
}

} // namespace
