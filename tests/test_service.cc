/**
 * @file
 * Repair-service tests: JSON and framing round-trips (including
 * partial reads and short writes), protocol handshake, admission
 * control, cancel mid-generation, and the daemon lifecycle — ending
 * with the acceptance scenario: three jobs over one daemon, one
 * canceled mid-run, the daemon SIGKILLed mid-search and restarted,
 * every job reaching the right terminal state and the resumed job's
 * result bit-identical to an uninterrupted run.
 */

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "service/client.h"
#include "service/framing.h"
#include "service/jobqueue.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session.h"
#include "sim/elaborate.h"
#include "sim/probe.h"
#include "verilog/parser.h"

using namespace cirfix;
using namespace cirfix::service;

namespace {

// ---------------------------------------------------------------
// Shared fixtures: the toggle design from the snapshot tests
// ---------------------------------------------------------------

const char *kGoldenToggle = R"(
module dut (clk, rst, q);
    input clk, rst;
    output q;
    reg q;
    always @(posedge clk) begin
        if (rst == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            q <= !q;
        end
    end
endmodule
module tb;
    reg clk, rst;
    wire q;
    dut d (.clk(clk), .rst(rst), .q(q));
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
    always #5 clk = !clk;
endmodule
)";

/** Double defect: the seed-7 pop-12 repair lands in generation 6, so
 *  kill/resume always has generations left (see test_snapshot.cc). */
std::string
faultyToggle()
{
    std::string s = kGoldenToggle;
    s.replace(s.find("rst == 1'b1"), 11, "rst != 1'b1");
    s.replace(s.find("q <= !q"), 7, "q <= q");
    return s;
}

/** Golden DUT module only (server re-simulates it under the design's
 *  own testbench to record the oracle). */
std::string
goldenDutOnly()
{
    std::string s = kGoldenToggle;
    size_t tb = s.find("module tb;");
    return s.substr(0, tb);
}

/** Record the golden toggle's trace with the testbench running to
 *  @p finish_at time units. */
std::string
goldenTraceCsv(int finish_at)
{
    std::string src = kGoldenToggle;
    if (finish_at != 100)
        src.replace(src.find("#100 $finish"), 12,
                    "#" + std::to_string(finish_at) + " $finish");
    std::shared_ptr<const verilog::SourceFile> golden =
        verilog::parse(src);
    sim::ProbeConfig probe = sim::deriveProbeConfig(*golden, "tb");
    auto design = sim::elaborate(golden, "tb");
    sim::TraceRecorder rec(*design, probe);
    design->run();
    return rec.takeTrace().toCsv();
}

/** A spec the engine can repair (deterministically, in generation 6
 *  with these parameters). */
JobSpec
repairableSpec()
{
    JobSpec spec;
    spec.designSource = faultyToggle();
    spec.tbModule = "tb";
    spec.dutModule = "dut";
    spec.goldenSource = goldenDutOnly();
    spec.params.popSize = 12;
    spec.params.maxGenerations = 6;
    spec.params.maxSeconds = 300.0;
    spec.params.seed = 7;
    return spec;
}

/**
 * A spec no patch can satisfy: the submitted design is the *golden*
 * toggle, but the oracle trace was recorded with a testbench that runs
 * twice as long — candidate simulations always end at t=100, so the
 * oracle rows beyond that never match and fitness never reaches 1.0.
 * The engine therefore always runs its full generation budget, which
 * gives the cancel and kill tests a deterministically long-running job.
 */
JobSpec
unrepairableSpec(int gens)
{
    JobSpec spec;
    spec.designSource = kGoldenToggle;
    spec.tbModule = "tb";
    spec.dutModule = "dut";
    spec.oracleCsv = goldenTraceCsv(200);
    spec.params.popSize = 8;
    spec.params.maxGenerations = gens;
    spec.params.maxSeconds = 300.0;
    spec.params.seed = 11;
    return spec;
}

/** This file builds into both cirfix_tests and cirfix_fault_tests,
 *  and ctest runs the two binaries concurrently — paths must be
 *  per-process or the twins delete each other's state mid-test. */
std::string
uniqueName(const std::string &name)
{
    return name + "." + std::to_string(::getpid());
}

std::string
tmpDir(const std::string &name)
{
    std::string d = ::testing::TempDir() + uniqueName(name);
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

/** Abstract-namespace-free socket path under the (short) temp dir. */
std::string
sockPath(const std::string &name)
{
    return ::testing::TempDir() + uniqueName(name) + ".sock";
}

/** Strip wall-clock fields before comparing results bit-for-bit. */
Json
withoutTimes(Json j)
{
    j.remove("seconds");
    return j;
}

// ---------------------------------------------------------------
// JSON
// ---------------------------------------------------------------

TEST(ServiceJson, RoundTripsValuesExactly)
{
    Json j = Json::object();
    j["int"] = static_cast<long>(1234567890123456789LL);
    j["neg"] = -42;
    j["dbl"] = 0.1;
    j["str"] = "hi \"there\"\nline2";
    j["yes"] = true;
    j["nothing"] = Json();
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    arr.push(3.5);
    j["arr"] = std::move(arr);

    Json back = Json::parse(j.dump());
    EXPECT_EQ(back, j);
    // Big integers survive without a trip through double.
    EXPECT_EQ(back.num("int"), 1234567890123456789LL);
    // dump() is deterministic: equal values, identical bytes.
    EXPECT_EQ(back.dump(), j.dump());
}

TEST(ServiceJson, RejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
    EXPECT_THROW(Json::parse("nul"), std::runtime_error);
}

// ---------------------------------------------------------------
// Framing
// ---------------------------------------------------------------

struct SocketPair
{
    int fds[2] = {-1, -1};
    SocketPair()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    }
    ~SocketPair()
    {
        for (int fd : fds)
            if (fd >= 0)
                ::close(fd);
    }
    void
    closeEnd(int i)
    {
        ::close(fds[i]);
        fds[i] = -1;
    }
};

TEST(ServiceFraming, RoundTripsFrames)
{
    SocketPair sp;
    writeFrame(sp.fds[0], "hello");
    writeFrame(sp.fds[0], "");  // empty payloads are legal
    std::string got;
    ASSERT_TRUE(readFrame(sp.fds[1], got));
    EXPECT_EQ(got, "hello");
    ASSERT_TRUE(readFrame(sp.fds[1], got));
    EXPECT_EQ(got, "");
}

TEST(ServiceFraming, ReassemblesPartialReads)
{
    // Dribble one frame a byte at a time from a writer thread: the
    // reader's length-prefix and payload loops must reassemble it.
    SocketPair sp;
    std::string payload(1000, 'x');
    payload[0] = 'a';
    payload[999] = 'z';
    uint32_t n = static_cast<uint32_t>(payload.size());
    unsigned char hdr[4] = {
        static_cast<unsigned char>(n >> 24),
        static_cast<unsigned char>(n >> 16),
        static_cast<unsigned char>(n >> 8),
        static_cast<unsigned char>(n)};
    std::thread writer([&] {
        for (unsigned char b : hdr)
            ASSERT_EQ(::write(sp.fds[0], &b, 1), 1);
        for (char c : payload)
            ASSERT_EQ(::write(sp.fds[0], &c, 1), 1);
    });
    std::string got;
    ASSERT_TRUE(readFrame(sp.fds[1], got));
    writer.join();
    EXPECT_EQ(got, payload);
}

TEST(ServiceFraming, SurvivesShortWritesOnLargeFrames)
{
    // An 8 MiB frame cannot fit a socket buffer, so writeFrame's send
    // loop must handle short writes; the reader drains concurrently.
    SocketPair sp;
    std::string big(8u << 20, 'b');
    big[12345] = 'B';
    big[big.size() - 1] = 'E';
    std::thread writer([&] { writeFrame(sp.fds[0], big); });
    std::string got;
    ASSERT_TRUE(readFrame(sp.fds[1], got));
    writer.join();
    EXPECT_EQ(got, big);
}

TEST(ServiceFraming, CleanEofVsTruncatedFrame)
{
    {
        // EOF exactly at a frame boundary: readFrame reports false.
        SocketPair sp;
        writeFrame(sp.fds[0], "last");
        sp.closeEnd(0);
        std::string got;
        ASSERT_TRUE(readFrame(sp.fds[1], got));
        EXPECT_EQ(got, "last");
        EXPECT_FALSE(readFrame(sp.fds[1], got));
    }
    {
        // EOF mid-frame (header promises more bytes): that is an error,
        // not a clean end of stream.
        SocketPair sp;
        unsigned char hdr[4] = {0, 0, 0, 10};
        ASSERT_EQ(::write(sp.fds[0], hdr, 4), 4);
        ASSERT_EQ(::write(sp.fds[0], "abc", 3), 3);
        sp.closeEnd(0);
        std::string got;
        EXPECT_THROW(readFrame(sp.fds[1], got), std::runtime_error);
    }
}

TEST(ServiceFraming, RejectsOversizedFrames)
{
    SocketPair sp;
    unsigned char hdr[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB
    ASSERT_EQ(::write(sp.fds[0], hdr, 4), 4);
    std::string got;
    EXPECT_THROW(readFrame(sp.fds[1], got), std::runtime_error);
}

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(ServiceProtocol, JobSpecRoundTrips)
{
    JobSpec spec = repairableSpec();
    spec.priority = 3;
    spec.params.numThreads = 2;
    spec.params.phi = 1.5;
    JobSpec back = jobSpecFromJson(toJson(spec));
    EXPECT_EQ(back.designSource, spec.designSource);
    EXPECT_EQ(back.tbModule, spec.tbModule);
    EXPECT_EQ(back.dutModule, spec.dutModule);
    EXPECT_EQ(back.goldenSource, spec.goldenSource);
    EXPECT_EQ(back.oracleCsv, spec.oracleCsv);
    EXPECT_EQ(back.priority, 3);
    EXPECT_EQ(back.params.popSize, spec.params.popSize);
    EXPECT_EQ(back.params.maxGenerations, spec.params.maxGenerations);
    EXPECT_EQ(back.params.seed, spec.params.seed);
    EXPECT_EQ(back.params.numThreads, 2);
    EXPECT_DOUBLE_EQ(back.params.phi, 1.5);
    // toJson . fromJson . toJson is a fixed point: the wire form is
    // canonical.
    EXPECT_EQ(toJson(back).dump(), toJson(spec).dump());
}

TEST(ServiceProtocol, RejectsInvalidSpecs)
{
    JobSpec spec = repairableSpec();
    Json j = toJson(spec);
    j.remove("design");
    EXPECT_THROW(jobSpecFromJson(j), std::runtime_error);

    Json both = toJson(spec);
    both["oracle_csv"] = "t,q\n";  // golden AND oracle: ambiguous
    EXPECT_THROW(jobSpecFromJson(both), std::runtime_error);

    Json neither = toJson(spec);
    neither.remove("golden");
    EXPECT_THROW(jobSpecFromJson(neither), std::runtime_error);
}

TEST(ServiceProtocol, HelloVersionMismatch)
{
    Json hello = makeHello();
    std::string why;
    EXPECT_TRUE(checkHello(hello, &why)) << why;
    hello["version"] = 99;
    EXPECT_FALSE(checkHello(hello, &why));
    EXPECT_NE(why.find("version"), std::string::npos);
    Json notHello = Json::object();
    notHello["type"] = "submit";
    EXPECT_FALSE(checkHello(notHello, &why));
}

// ---------------------------------------------------------------
// JobQueue: scheduling order + admission control
// ---------------------------------------------------------------

TEST(ServiceQueue, SchedulesPriorityThenFifo)
{
    JobQueue q(AdmissionLimits{});
    JobSpec spec = unrepairableSpec(1);
    spec.priority = 0;
    long a = std::get<long>(q.submit(spec));
    spec.priority = 5;
    long b = std::get<long>(q.submit(spec));
    spec.priority = 5;
    long c = std::get<long>(q.submit(spec));
    spec.priority = -1;
    long d = std::get<long>(q.submit(spec));

    EXPECT_EQ(q.pop()->id, b);  // highest priority first
    EXPECT_EQ(q.pop()->id, c);  // FIFO within a priority level
    EXPECT_EQ(q.pop()->id, a);
    EXPECT_EQ(q.pop()->id, d);
}

TEST(ServiceQueue, RejectsOverloadWithStructuredReason)
{
    AdmissionLimits limits;
    limits.queueDepth = 2;
    limits.maxEvalBudget = 1000;
    limits.maxBudgetSeconds = 60.0;
    JobQueue q(limits);

    JobSpec spec = unrepairableSpec(4);  // 8 * 4 = 32 evals: fine
    spec.params.maxSeconds = 30.0;
    EXPECT_TRUE(std::holds_alternative<long>(q.submit(spec)));
    EXPECT_TRUE(std::holds_alternative<long>(q.submit(spec)));

    // Third submission: the queue is at depth; rejected, not dropped.
    auto full = q.submit(spec);
    ASSERT_TRUE(std::holds_alternative<Rejection>(full));
    EXPECT_EQ(std::get<Rejection>(full).code, errc::kQueueFull);
    EXPECT_FALSE(std::get<Rejection>(full).message.empty());
    EXPECT_EQ(q.queuedCount(), 2u);

    // Oversized eval budget and oversized wall clock: budget_too_large.
    JobSpec huge = spec;
    huge.params.popSize = 100;
    huge.params.maxGenerations = 100;  // 10000 > 1000
    auto rej = q.submit(huge);
    ASSERT_TRUE(std::holds_alternative<Rejection>(rej));
    EXPECT_EQ(std::get<Rejection>(rej).code, errc::kBudgetTooLarge);

    JobSpec slow = spec;
    slow.params.maxSeconds = 3600.0;  // > 60
    rej = q.submit(slow);
    ASSERT_TRUE(std::holds_alternative<Rejection>(rej));
    EXPECT_EQ(std::get<Rejection>(rej).code, errc::kBudgetTooLarge);

    // Draining one queued job frees a slot.
    ASSERT_NE(q.pop(), nullptr);
    EXPECT_TRUE(std::holds_alternative<long>(q.submit(spec)));
}

TEST(ServiceQueue, CancelQueuedIsImmediatelyTerminal)
{
    JobQueue q(AdmissionLimits{});
    long id = std::get<long>(q.submit(unrepairableSpec(1)));
    std::string why;
    EXPECT_TRUE(q.cancel(id, &why));
    EXPECT_EQ(q.find(id)->state, JobState::Canceled);
    // A second cancel and a cancel of an unknown id both fail loudly.
    EXPECT_FALSE(q.cancel(id, &why));
    EXPECT_NE(why.find("already"), std::string::npos);
    EXPECT_FALSE(q.cancel(777, &why));
}

TEST(ServiceQueue, EventStreamDeliversHistoryThenTerminates)
{
    JobQueue q(AdmissionLimits{});
    long id = std::get<long>(q.submit(unrepairableSpec(1)));
    std::string why;
    ASSERT_TRUE(q.cancel(id, &why));

    // Subscriber attaching after the fact still sees the full ordered
    // history: queued, then canceled — then a clean end.
    Json ev;
    ASSERT_TRUE(q.waitEvent(id, 0, &ev));
    EXPECT_EQ(ev.str("state"), "queued");
    ASSERT_TRUE(q.waitEvent(id, 1, &ev));
    EXPECT_EQ(ev.str("state"), "canceled");
    EXPECT_FALSE(q.waitEvent(id, 2, &ev));
}

// ---------------------------------------------------------------
// Server: handshake + admission over a real socket
// ---------------------------------------------------------------

TEST(ServiceServer, RejectsVersionMismatchOnHandshake)
{
    ServerConfig cfg;
    cfg.socketPath = sockPath("svc-hs");
    cfg.stateDir = tmpDir("svc-hs-state");
    cfg.workers = 0;
    Server server(cfg);
    server.start();

    // A Client would send the right version; speak raw instead.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    Json hello = makeHello();
    hello["version"] = 99;
    writeFrame(fd, hello.dump());
    std::string payload;
    ASSERT_TRUE(readFrame(fd, payload));
    Json reply = Json::parse(payload);
    EXPECT_EQ(reply.str("type"), "error");
    EXPECT_EQ(reply.str("code"), errc::kVersionMismatch);
    // The server closes the connection after the error.
    EXPECT_FALSE(readFrame(fd, payload));
    ::close(fd);
    server.stop();
}

TEST(ServiceServer, AdmissionErrorsTravelTheWire)
{
    ServerConfig cfg;
    cfg.socketPath = sockPath("svc-adm");
    cfg.stateDir = tmpDir("svc-adm-state");
    cfg.workers = 0;  // admit-only: nothing ever runs
    cfg.limits.queueDepth = 1;
    Server server(cfg);
    server.start();

    Client client(cfg.socketPath);
    EXPECT_EQ(client.serverHello().str("server"), kServerName);
    long id = client.submit(unrepairableSpec(2));
    EXPECT_GT(id, 0);

    // Queue full: a structured, typed rejection — not a dropped frame,
    // not a stuck accept loop (the same connection keeps working).
    try {
        client.submit(unrepairableSpec(2));
        FAIL() << "overload submission must be rejected";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), errc::kQueueFull);
        EXPECT_NE(std::string(e.what()).find("queue depth"),
                  std::string::npos);
    }

    // The connection survives the rejection and answers queries.
    Json summary = client.status(id);
    EXPECT_EQ(summary.str("state"), "queued");
    EXPECT_THROW(client.status(999), ServiceError);
    try {
        client.result(id);
        FAIL() << "result of a live job must be not_done";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), errc::kNotDone);
    }

    // Canceling the queued job frees the admission slot.
    client.cancel(id);
    EXPECT_EQ(client.status(id).str("state"), "canceled");
    EXPECT_GT(client.submit(unrepairableSpec(2)), id);
    server.stop();
}

TEST(ServiceServer, MalformedFramesGetBadRequest)
{
    ServerConfig cfg;
    cfg.socketPath = sockPath("svc-bad");
    cfg.stateDir = tmpDir("svc-bad-state");
    cfg.workers = 0;
    Server server(cfg);
    server.start();

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    writeFrame(fd, makeHello().dump());
    std::string payload;
    ASSERT_TRUE(readFrame(fd, payload));
    ASSERT_EQ(Json::parse(payload).str("type"), "hello");

    // A frame that is not JSON: bad_request, connection stays open.
    writeFrame(fd, "this is not json");
    ASSERT_TRUE(readFrame(fd, payload));
    EXPECT_EQ(Json::parse(payload).str("code"), errc::kBadRequest);

    // Valid JSON with an unknown type: also bad_request.
    Json odd = Json::object();
    odd["type"] = "frobnicate";
    writeFrame(fd, odd.dump());
    ASSERT_TRUE(readFrame(fd, payload));
    EXPECT_EQ(Json::parse(payload).str("code"), errc::kBadRequest);

    // And the connection still answers real requests afterwards.
    Json list = Json::object();
    list["type"] = "list";
    writeFrame(fd, list.dump());
    ASSERT_TRUE(readFrame(fd, payload));
    EXPECT_EQ(Json::parse(payload).str("type"), "list");
    ::close(fd);
    server.stop();
}

// ---------------------------------------------------------------
// Server: cancel mid-generation
// ---------------------------------------------------------------

TEST(ServiceServer, CancelStopsARunningJobMidGeneration)
{
    ServerConfig cfg;
    cfg.socketPath = sockPath("svc-cancel");
    cfg.stateDir = tmpDir("svc-cancel-state");
    cfg.workers = 1;
    Server server(cfg);
    server.start();

    Client watcher(cfg.socketPath);
    long id = watcher.submit(unrepairableSpec(500));
    watcher.subscribe(id);

    // Wait for the first completed generation, then cancel from a
    // second connection: the engine must stop mid-search, hundreds of
    // generations short of its budget.
    Client controller(cfg.socketPath);
    bool canceled = false;
    std::string final_state;
    Json ev;
    while (watcher.recv(&ev)) {
        if (ev.str("type") == "end_of_stream")
            break;
        if (!canceled && ev.str("event") == "generation" &&
            ev.num("generation") >= 1) {
            controller.cancel(id);
            canceled = true;
        }
        if (ev.str("event") == "state")
            final_state = ev.str("state");
    }
    ASSERT_TRUE(canceled);
    EXPECT_EQ(final_state, "canceled");

    Json reply = controller.result(id);
    EXPECT_EQ(reply.str("state"), "canceled");
    const Json *res = reply.find("result");
    ASSERT_NE(res, nullptr);
    EXPECT_FALSE(res->flag("found"));
    EXPECT_TRUE(res->flag("stopped"));
    // Stopped well short of the 500-generation budget.
    EXPECT_LT(res->num("generations"), 500);
    server.stop();
}

// ---------------------------------------------------------------
// The acceptance scenario: concurrent jobs, cancel, SIGKILL, resume
// ---------------------------------------------------------------

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CIRFIX_UNDER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define CIRFIX_UNDER_TSAN 1
#endif

TEST(ServiceServer, EndToEndKillResumeMatchesUninterruptedRun)
{
#ifdef CIRFIX_UNDER_TSAN
    GTEST_SKIP() << "fork+threads is unsupported under tsan";
#endif
    std::string socket = sockPath("svc-e2e");
    std::string state = tmpDir("svc-e2e-state");

    auto spawnDaemon = [&]() -> pid_t {
        pid_t pid = fork();
        if (pid == 0) {
            // Child: run the daemon until killed. No gtest teardown.
            ServerConfig cfg;
            cfg.socketPath = socket;
            cfg.stateDir = state;
            cfg.workers = 1;
            try {
                Server server(cfg);
                server.start();
                server.wait();
            } catch (...) {
            }
            _exit(0);
        }
        return pid;
    };

    auto connectWithRetry = [&]() -> std::unique_ptr<Client> {
        for (int i = 0; i < 200; ++i) {
            try {
                return std::make_unique<Client>(socket);
            } catch (const std::exception &) {
                ::usleep(20 * 1000);
            }
        }
        throw std::runtime_error("daemon never came up on " + socket);
    };

    pid_t daemon = spawnDaemon();
    ASSERT_GT(daemon, 0);

    // Three jobs in flight at once, in one daemon:
    //   cancel_me — unrepairable, runs first (highest priority), gets
    //               canceled mid-run;
    //   repair_me — the deterministic 6-generation repair; the daemon
    //               is SIGKILLed while it runs, and it must resume;
    //   follow_up — queued behind both; must survive the kill and run
    //               to completion after the restart.
    auto client = connectWithRetry();
    JobSpec cancel_spec = unrepairableSpec(500);
    cancel_spec.priority = 10;
    long cancel_me = client->submit(cancel_spec);

    JobSpec repair_spec = repairableSpec();
    repair_spec.priority = 5;
    long repair_me = client->submit(repair_spec);

    JobSpec follow_spec = unrepairableSpec(2);
    follow_spec.priority = 0;
    long follow_up = client->submit(follow_spec);

    {
        Json jobs = client->list();
        EXPECT_EQ(jobs.size(), 3u);
    }

    // Phase 1: cancel the running job mid-generation.
    {
        Client watcher(socket);
        watcher.subscribe(cancel_me);
        bool canceled = false;
        Json ev;
        while (watcher.recv(&ev)) {
            if (ev.str("type") == "end_of_stream")
                break;
            if (!canceled && ev.str("event") == "generation") {
                client->cancel(cancel_me);
                canceled = true;
            }
        }
        ASSERT_TRUE(canceled);
        EXPECT_EQ(client->status(cancel_me).str("state"), "canceled");
    }

    // Phase 2: kill the daemon once the repair job has checkpointed at
    // least two generations (the snapshot is durable before the
    // generation event is published).
    {
        Client watcher(socket);
        watcher.subscribe(repair_me);
        Json ev;
        bool killed = false;
        while (!killed && watcher.recv(&ev)) {
            if (ev.str("event") == "generation" &&
                ev.num("generation") >= 2) {
                ASSERT_EQ(::kill(daemon, SIGKILL), 0);
                killed = true;
            }
            if (ev.str("type") == "end_of_stream")
                break;
        }
        ASSERT_TRUE(killed) << "job finished before it could be killed";
        int status = 0;
        ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
        ASSERT_TRUE(WIFSIGNALED(status));
    }
    client.reset();  // its socket died with the daemon

    // Phase 3: restart on the same state dir (in-process this time).
    // Recovery must re-queue the killed running job and the untouched
    // queued job, and keep the canceled one terminal.
    ServerConfig cfg;
    cfg.socketPath = socket;
    cfg.stateDir = state;
    cfg.workers = 1;
    Server server(cfg);
    server.start();

    Client after(socket);
    EXPECT_EQ(after.status(cancel_me).str("state"), "canceled");

    // Drain the resumed repair job to its terminal state.
    {
        Client watcher(socket);
        watcher.subscribe(repair_me);
        Json ev;
        while (watcher.recv(&ev)) {
            if (ev.str("type") == "end_of_stream")
                break;
        }
    }
    Json repaired = after.result(repair_me);
    EXPECT_EQ(repaired.str("state"), "done");

    // Drain the follow-up job too: queued work survives a SIGKILL.
    {
        Client watcher(socket);
        watcher.subscribe(follow_up);
        Json ev;
        while (watcher.recv(&ev)) {
            if (ev.str("type") == "end_of_stream")
                break;
        }
    }
    Json followed = after.result(follow_up);
    EXPECT_EQ(followed.str("state"), "done");
    EXPECT_FALSE(followed.find("result")->flag("found"));

    server.stop();

    // Phase 4: the resumed run's result is bit-identical to an
    // uninterrupted run of the same spec (wall-clock excluded) — the
    // same session code path the daemon uses, no snapshots involved.
    SessionOutcome reference =
        runRepairJob(repair_spec, "", nullptr, nullptr);
    ASSERT_EQ(reference.state, JobState::Done);
    EXPECT_TRUE(reference.result.flag("found"));
    EXPECT_EQ(withoutTimes(*repaired.find("result")).dump(),
              withoutTimes(reference.result).dump());
}

// ---------------------------------------------------------------
// Concurrency: two workers really run two jobs at once
// ---------------------------------------------------------------

TEST(ServiceServer, TwoWorkersDrainTheQueue)
{
    ServerConfig cfg;
    cfg.socketPath = sockPath("svc-two");
    cfg.stateDir = tmpDir("svc-two-state");
    cfg.workers = 2;
    Server server(cfg);
    server.start();

    Client client(cfg.socketPath);
    long a = client.submit(unrepairableSpec(2));
    long b = client.submit(unrepairableSpec(2));
    for (long id : {a, b}) {
        Client watcher(cfg.socketPath);
        watcher.subscribe(id);
        Json ev;
        while (watcher.recv(&ev))
            if (ev.str("type") == "end_of_stream")
                break;
        EXPECT_EQ(client.status(id).str("state"), "done");
    }
    server.stop();
}

TEST(ServiceServer, StatusCarriesLeaseStatsSchema)
{
    // `cirfix status --json` consumers key on this schema: every
    // status reply carries daemon-wide lease totals, all five
    // members present (zero on a classic daemon that never leased).
    ServerConfig cfg;
    cfg.socketPath = sockPath("svc-leasestats");
    cfg.stateDir = tmpDir("svc-leasestats-state");
    cfg.workers = 1;
    Server server(cfg);
    server.start();

    Client client(cfg.socketPath);
    long id = client.submit(unrepairableSpec(1));
    {
        Client watcher(cfg.socketPath);
        watcher.subscribe(id);
        Json ev;
        while (watcher.recv(&ev))
            if (ev.str("type") == "end_of_stream")
                break;
    }
    Json summary = client.status(id);
    EXPECT_EQ(summary.str("state"), "done");
    const Json *ls = summary.find("lease_stats");
    ASSERT_NE(ls, nullptr) << summary.dump();
    for (const char *member :
         {"assignments", "renewals", "expirations", "requeues",
          "stale_rejections"}) {
        ASSERT_TRUE(ls->has(member)) << member;
        EXPECT_GE(ls->num(member), 0) << member;
    }
    // Local execution leases nothing.
    EXPECT_EQ(ls->num("assignments"), 0);
    server.stop();
}

// ---------------------------------------------------------------
// Client deadlines and dead-peer writes (the --timeout / SIGPIPE
// contract the CLI builds on)
// ---------------------------------------------------------------

TEST(ServiceClient, UnresponsiveServerExpiresAsFrameTimeout)
{
    // A listener that never accepts: connect() succeeds against the
    // backlog, the hello frame sits in the kernel buffer, and the
    // handshake read must expire as a typed FrameTimeout — never a
    // hang (this is exactly what `--timeout S` arms, and the CLI maps
    // the exception to exit code 5).
    std::string path = sockPath("svc-mute");
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                     sizeof(sa)),
              0);
    ASSERT_EQ(::listen(fd, 8), 0);

    ClientOptions opts;
    opts.connectTimeout = 5.0;
    opts.ioTimeout = 0.2;
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(Client(path, opts), FrameTimeout);
    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_LT(waited, 5.0);  // the deadline fired, not a hang
    ::close(fd);
    ::unlink(path.c_str());
}

TEST(ServiceClient, WritesToDeadServerAreTypedNotSigpipe)
{
    // The server goes away under an established connection; pumping
    // frames into the dead socket must raise ConnectionClosed (EPIPE
    // is mapped, MSG_NOSIGNAL suppresses the signal) — a SIGPIPE
    // would kill this whole test binary, which is the regression this
    // test is standing guard against.
    ServerConfig cfg;
    cfg.socketPath = sockPath("svc-dead");
    cfg.stateDir = tmpDir("svc-dead-state");
    cfg.workers = 1;
    Server server(cfg);
    server.start();
    Client client(cfg.socketPath);
    server.stop();

    Json msg = Json::object();
    msg["type"] = "list";
    EXPECT_THROW(
        {
            // The kernel buffer may absorb the first few frames; keep
            // writing until the broken pipe surfaces.
            for (int i = 0; i < 4096; ++i)
                client.send(msg);
        },
        ConnectionClosed);
}

} // namespace
