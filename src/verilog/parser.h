#pragma once

/**
 * @file
 * Recursive-descent parser for the Verilog subset.
 *
 * Produces a SourceFile AST with node ids already assigned via
 * numberNodes(). Both ANSI ("module m(input clk, output reg [3:0] q)")
 * and traditional port declaration styles are accepted.
 */

#include <memory>
#include <stdexcept>
#include <string>

#include "verilog/ast.h"

namespace cirfix::verilog {

/** Thrown on syntactically invalid input. */
struct ParseError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Parse Verilog source text into a numbered AST.
 *
 * @param source  Verilog source containing one or more modules.
 * @return The parsed source file; node ids are assigned in pre-order.
 * @throws ParseError / LexError on malformed input.
 */
std::unique_ptr<SourceFile> parse(const std::string &source);

} // namespace cirfix::verilog
