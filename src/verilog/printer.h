#pragma once

/**
 * @file
 * Regenerates Verilog source text from an AST.
 *
 * This mirrors PyVerilog's code generator in the original CirFix
 * pipeline: after a repair patch is applied to the AST, the printer
 * produces the repaired Verilog for developer review. The output of
 * print(parse(x)) re-parses to a structurally identical tree.
 */

#include <string>

#include "verilog/ast.h"

namespace cirfix::verilog {

/** Print a full source file. */
std::string print(const SourceFile &file);

/** Print a single module. */
std::string print(const Module &mod);

/** Print one expression (no trailing newline). */
std::string printExpr(const Expr &e);

/** Print one statement at the given indent level. */
std::string printStmt(const Stmt &s, int indent = 0);

} // namespace cirfix::verilog
