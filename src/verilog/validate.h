#pragma once

/**
 * @file
 * Structural validation of (possibly mutated) ASTs.
 *
 * In the original CirFix pipeline a syntactically invalid mutant is one
 * the simulator refuses to compile. Because our repair operators edit
 * the AST directly, the corresponding failure mode is a structurally
 * ill-formed tree: references to undeclared names, assignments to
 * non-register targets in procedural code, triggers of non-events,
 * out-of-range constant part selects, and so on. validate() performs
 * those checks; a mutant with any error is discarded without being
 * simulated, exactly as a compile failure would be.
 */

#include <string>
#include <vector>

#include "verilog/ast.h"

namespace cirfix::verilog {

/** One validation diagnostic. */
struct ValidationError
{
    std::string module;
    std::string message;
    /** Source line of the nearest enclosing node (0 if unknown). */
    int line = 0;
    /** Full source range of that node (invalid if unknown). */
    Span span;
};

/**
 * Check a source file for structural well-formedness.
 *
 * @return The list of problems found; empty means the design would
 *         compile.
 */
std::vector<ValidationError> validate(const SourceFile &file);

/** Convenience wrapper: true iff validate() finds no problems. */
bool isValid(const SourceFile &file);

} // namespace cirfix::verilog
