#include "verilog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace cirfix::verilog {

using sim::Bit;
using sim::LogicVec;

namespace {

/** Cursor over the source text with line tracking. */
class Cursor
{
  public:
    explicit Cursor(const std::string &src) : src_(src) {}

    bool done() const { return pos_ >= src_.size(); }
    char peek(size_t off = 0) const
    {
        return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
    }
    char
    take()
    {
        char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }
    int line() const { return line_; }
    int col() const { return col_; }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw LexError("line " + std::to_string(line_) + ": " + msg);
    }

  private:
    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Parse the digits of a based literal into a LogicVec of @p width. */
LogicVec
parseBasedDigits(Cursor &cur, char base, int width)
{
    int bits_per = base == 'b' ? 1 : base == 'o' ? 3 : 4;
    std::vector<Bit> bits;  // LSB-last while collecting digits
    bool any = false;
    while (!cur.done()) {
        char c = cur.peek();
        if (c == '_') {
            cur.take();
            continue;
        }
        Bit special;
        bool is_special = false;
        if (c == 'x' || c == 'X') {
            special = Bit::X;
            is_special = true;
        } else if (c == 'z' || c == 'Z' || c == '?') {
            special = Bit::Z;
            is_special = true;
        }
        if (is_special) {
            cur.take();
            for (int i = 0; i < bits_per; ++i)
                bits.push_back(special);
            any = true;
            continue;
        }
        int d = hexDigit(c);
        if (d < 0 || (base == 'b' && d > 1) || (base == 'o' && d > 7))
            break;
        cur.take();
        for (int i = bits_per - 1; i >= 0; --i)
            bits.push_back(((d >> i) & 1) ? Bit::One : Bit::Zero);
        any = true;
    }
    if (!any)
        cur.fail("based literal has no digits");
    LogicVec v(width, Bit::Zero);
    // If the literal is narrower than the width and its MSB is x/z,
    // Verilog extends with that digit; otherwise zero-extend.
    Bit msb = bits.front();
    Bit fill = (msb == Bit::X || msb == Bit::Z) ? msb : Bit::Zero;
    for (int i = 0; i < width; ++i) {
        int src = static_cast<int>(bits.size()) - 1 - i;
        v.setBit(i, src >= 0 ? bits[src] : fill);
    }
    return v;
}

/** Parse a run of decimal digits (with '_') as a uint64. */
uint64_t
parseDecimalDigits(Cursor &cur)
{
    uint64_t v = 0;
    while (!cur.done()) {
        char c = cur.peek();
        if (c == '_') {
            cur.take();
            continue;
        }
        if (!std::isdigit(static_cast<unsigned char>(c)))
            break;
        v = v * 10 + static_cast<uint64_t>(cur.take() - '0');
    }
    return v;
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> out;
    Cursor cur(source);

    int col = 1;
    auto push = [&](Tok k, std::string text, int line) {
        Token t;
        t.kind = k;
        t.text = std::move(text);
        t.line = line;
        t.col = col;
        t.endLine = cur.line();
        t.endCol = cur.col();
        out.push_back(std::move(t));
    };

    while (!cur.done()) {
        char c = cur.peek();
        int line = cur.line();
        col = cur.col();

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.take();
            continue;
        }
        // Comments.
        if (c == '/' && cur.peek(1) == '/') {
            while (!cur.done() && cur.peek() != '\n')
                cur.take();
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.take();
            cur.take();
            while (!cur.done() &&
                   !(cur.peek() == '*' && cur.peek(1) == '/'))
                cur.take();
            if (cur.done())
                cur.fail("unterminated block comment");
            cur.take();
            cur.take();
            continue;
        }
        // Compiler directives: skip to end of line (`timescale etc.).
        if (c == '`') {
            while (!cur.done() && cur.peek() != '\n')
                cur.take();
            continue;
        }
        // Identifiers / keywords.
        if (isIdentStart(c)) {
            std::string name;
            while (!cur.done() && isIdentChar(cur.peek()))
                name.push_back(cur.take());
            push(Tok::Ident, std::move(name), line);
            continue;
        }
        // System identifiers.
        if (c == '$') {
            cur.take();
            std::string name = "$";
            while (!cur.done() && isIdentChar(cur.peek()))
                name.push_back(cur.take());
            if (name.size() == 1)
                cur.fail("bare '$'");
            push(Tok::SysIdent, std::move(name), line);
            continue;
        }
        // String literals.
        if (c == '"') {
            cur.take();
            std::string text;
            while (!cur.done() && cur.peek() != '"') {
                char ch = cur.take();
                if (ch == '\\' && !cur.done()) {
                    char esc = cur.take();
                    switch (esc) {
                      case 'n': text.push_back('\n'); break;
                      case 't': text.push_back('\t'); break;
                      case '\\': text.push_back('\\'); break;
                      case '"': text.push_back('"'); break;
                      default: text.push_back(esc); break;
                    }
                } else {
                    text.push_back(ch);
                }
            }
            if (cur.done())
                cur.fail("unterminated string");
            cur.take();
            Token t;
            t.kind = Tok::String;
            t.text = std::move(text);
            t.line = line;
            t.col = col;
            t.endLine = cur.line();
            t.endCol = cur.col();
            out.push_back(std::move(t));
            continue;
        }
        // Numbers: [size]'[base]digits or plain decimal.
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
            Token t;
            t.kind = Tok::Number;
            t.line = line;
            t.col = col;
            int width = 32;
            bool have_size = false;
            if (std::isdigit(static_cast<unsigned char>(c))) {
                uint64_t dec = parseDecimalDigits(cur);
                // Lookahead (skipping spaces) for a based suffix.
                size_t probe = 0;
                while (std::isspace(static_cast<unsigned char>(
                           cur.peek(probe))) && cur.peek(probe) != '\n')
                    ++probe;
                if (cur.peek(probe) == '\'') {
                    for (size_t i = 0; i <= probe; ++i)
                        cur.take();
                    width = static_cast<int>(dec);
                    if (width <= 0 || width > 100000)
                        cur.fail("bad literal width");
                    have_size = true;
                } else {
                    t.value = LogicVec(32, dec);
                    t.sized = false;
                    t.base = 'd';
                    t.endLine = cur.line();
                    t.endCol = cur.col();
                    out.push_back(std::move(t));
                    continue;
                }
            } else {
                cur.take();  // the quote of an unsized based literal
            }
            char base = static_cast<char>(
                std::tolower(static_cast<unsigned char>(cur.peek())));
            if (base == 's') {  // signed marker: 4'sb...; accept, ignore
                cur.take();
                base = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(cur.peek())));
            }
            if (base != 'b' && base != 'o' && base != 'h' && base != 'd')
                cur.fail("bad literal base");
            cur.take();
            while (std::isspace(static_cast<unsigned char>(cur.peek())) &&
                   cur.peek() != '\n')
                cur.take();
            if (base == 'd') {
                char dc = cur.peek();
                if (dc == 'x' || dc == 'X') {
                    cur.take();
                    t.value = LogicVec(width, Bit::X);
                } else if (dc == 'z' || dc == 'Z' || dc == '?') {
                    cur.take();
                    t.value = LogicVec(width, Bit::Z);
                } else {
                    t.value = LogicVec(width, parseDecimalDigits(cur));
                }
            } else {
                t.value = parseBasedDigits(cur, base, width);
            }
            t.sized = have_size || true;  // based literals print sized
            t.base = base;
            t.endLine = cur.line();
            t.endCol = cur.col();
            out.push_back(std::move(t));
            continue;
        }
        // Operators and punctuation, longest match first.
        static const char *three[] = {"===", "!==", "<<<", ">>>"};
        static const char *two[] = {"==", "!=", "<=", ">=", "&&", "||",
                                    "<<", ">>", "~^", "^~", "**", "->",
                                    "~&", "~|"};
        bool matched = false;
        for (const char *op : three) {
            if (cur.peek() == op[0] && cur.peek(1) == op[1] &&
                cur.peek(2) == op[2]) {
                cur.take();
                cur.take();
                cur.take();
                // Arithmetic shifts are treated as logical (unsigned).
                std::string text = op;
                if (text == "<<<")
                    text = "<<";
                else if (text == ">>>")
                    text = ">>";
                push(Tok::Punct, text, line);
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        for (const char *op : two) {
            if (cur.peek() == op[0] && cur.peek(1) == op[1]) {
                cur.take();
                cur.take();
                push(Tok::Punct, op, line);
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        static const std::string singles = "()[]{};:,.#@=+-*/%&|^~!<>?";
        if (singles.find(c) != std::string::npos) {
            cur.take();
            push(Tok::Punct, std::string(1, c), line);
            continue;
        }
        cur.fail(std::string("unexpected character '") + c + "'");
    }

    col = cur.col();
    push(Tok::End, "", cur.line());
    return out;
}

} // namespace cirfix::verilog
