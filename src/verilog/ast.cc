#include "verilog/ast.h"

namespace cirfix::verilog {

const char *
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Number: return "Number";
      case NodeKind::Ident: return "Ident";
      case NodeKind::Unary: return "Unary";
      case NodeKind::Binary: return "Binary";
      case NodeKind::Ternary: return "Ternary";
      case NodeKind::Index: return "Index";
      case NodeKind::RangeSel: return "RangeSel";
      case NodeKind::Concat: return "Concat";
      case NodeKind::Repl: return "Repl";
      case NodeKind::SysFuncCall: return "SysFuncCall";
      case NodeKind::FuncCall: return "FuncCall";
      case NodeKind::FunctionDecl: return "FunctionDecl";
      case NodeKind::SeqBlock: return "SeqBlock";
      case NodeKind::If: return "If";
      case NodeKind::Case: return "Case";
      case NodeKind::For: return "For";
      case NodeKind::While: return "While";
      case NodeKind::Repeat: return "Repeat";
      case NodeKind::Forever: return "Forever";
      case NodeKind::Assign: return "Assign";
      case NodeKind::DelayStmt: return "DelayStmt";
      case NodeKind::EventCtrl: return "EventCtrl";
      case NodeKind::Wait: return "Wait";
      case NodeKind::TriggerEvent: return "TriggerEvent";
      case NodeKind::SysTask: return "SysTask";
      case NodeKind::NullStmt: return "NullStmt";
      case NodeKind::VarDecl: return "VarDecl";
      case NodeKind::ContAssign: return "ContAssign";
      case NodeKind::AlwaysBlock: return "AlwaysBlock";
      case NodeKind::InitialBlock: return "InitialBlock";
      case NodeKind::Instance: return "Instance";
      case NodeKind::Module: return "Module";
      case NodeKind::SourceFile: return "SourceFile";
    }
    return "?";
}

std::string
Span::str() const
{
    if (!valid())
        return "?";
    return std::to_string(line) + ":" + std::to_string(col) + "-" +
           std::to_string(endLine) + ":" + std::to_string(endCol);
}

namespace {

/** Copy the id/line bookkeeping from @p src onto @p dst and return it. */
template <typename T>
NodePtr
finishClone(const Node &src, std::unique_ptr<T> dst)
{
    dst->id = src.id;
    dst->line = src.line;
    dst->span = src.span;
    return dst;
}

ExprPtr
cloneExprPtr(const ExprPtr &e)
{
    return e ? e->cloneExpr() : nullptr;
}

StmtPtr
cloneStmtPtr(const StmtPtr &s)
{
    return s ? s->cloneStmt() : nullptr;
}

} // namespace

ExprPtr
Expr::cloneExpr() const
{
    NodePtr n = cloneNode();
    return ExprPtr(static_cast<Expr *>(n.release()));
}

StmtPtr
Stmt::cloneStmt() const
{
    NodePtr n = cloneNode();
    return StmtPtr(static_cast<Stmt *>(n.release()));
}

ItemPtr
Item::cloneItem() const
{
    NodePtr n = cloneNode();
    return ItemPtr(static_cast<Item *>(n.release()));
}

NodePtr
Number::cloneNode() const
{
    auto n = std::make_unique<Number>(value, base);
    n->sized = sized;
    return finishClone(*this, std::move(n));
}

NodePtr
Ident::cloneNode() const
{
    return finishClone(*this, std::make_unique<Ident>(name));
}

NodePtr
Unary::cloneNode() const
{
    return finishClone(*this,
                       std::make_unique<Unary>(op, operand->cloneExpr()));
}

NodePtr
Binary::cloneNode() const
{
    return finishClone(*this, std::make_unique<Binary>(
                                  op, lhs->cloneExpr(), rhs->cloneExpr()));
}

NodePtr
Ternary::cloneNode() const
{
    return finishClone(*this, std::make_unique<Ternary>(
                                  cond->cloneExpr(), thenExpr->cloneExpr(),
                                  elseExpr->cloneExpr()));
}

NodePtr
Index::cloneNode() const
{
    return finishClone(*this,
                       std::make_unique<Index>(name, index->cloneExpr()));
}

NodePtr
RangeSel::cloneNode() const
{
    return finishClone(*this, std::make_unique<RangeSel>(
                                  name, msb->cloneExpr(), lsb->cloneExpr()));
}

NodePtr
Concat::cloneNode() const
{
    auto n = std::make_unique<Concat>();
    for (auto &p : parts)
        n->parts.push_back(p->cloneExpr());
    return finishClone(*this, std::move(n));
}

NodePtr
Repl::cloneNode() const
{
    return finishClone(*this, std::make_unique<Repl>(count->cloneExpr(),
                                                     value->cloneExpr()));
}

NodePtr
FuncCall::cloneNode() const
{
    auto n = std::make_unique<FuncCall>(name);
    for (auto &a : args)
        n->args.push_back(a->cloneExpr());
    return finishClone(*this, std::move(n));
}

NodePtr
SysFuncCall::cloneNode() const
{
    auto n = std::make_unique<SysFuncCall>(name);
    for (auto &a : args)
        n->args.push_back(a->cloneExpr());
    return finishClone(*this, std::move(n));
}

NodePtr
SeqBlock::cloneNode() const
{
    auto n = std::make_unique<SeqBlock>();
    n->name = name;
    for (auto &s : stmts)
        n->stmts.push_back(s->cloneStmt());
    return finishClone(*this, std::move(n));
}

NodePtr
If::cloneNode() const
{
    auto n = std::make_unique<If>();
    n->cond = cond->cloneExpr();
    n->thenStmt = cloneStmtPtr(thenStmt);
    n->elseStmt = cloneStmtPtr(elseStmt);
    return finishClone(*this, std::move(n));
}

CaseItem
CaseItem::clone() const
{
    CaseItem it;
    for (auto &l : labels)
        it.labels.push_back(l->cloneExpr());
    it.body = body ? body->cloneStmt() : nullptr;
    return it;
}

NodePtr
Case::cloneNode() const
{
    auto n = std::make_unique<Case>();
    n->type = type;
    n->subject = subject->cloneExpr();
    for (auto &it : items)
        n->items.push_back(it.clone());
    return finishClone(*this, std::move(n));
}

NodePtr
Assign::cloneNode() const
{
    auto n = std::make_unique<Assign>();
    n->lhs = lhs->cloneExpr();
    n->rhs = rhs->cloneExpr();
    n->blocking = blocking;
    n->delay = cloneExprPtr(delay);
    return finishClone(*this, std::move(n));
}

NodePtr
For::cloneNode() const
{
    auto n = std::make_unique<For>();
    n->init = cloneStmtPtr(init);
    n->cond = cond->cloneExpr();
    n->step = cloneStmtPtr(step);
    n->body = cloneStmtPtr(body);
    return finishClone(*this, std::move(n));
}

NodePtr
While::cloneNode() const
{
    auto n = std::make_unique<While>();
    n->cond = cond->cloneExpr();
    n->body = cloneStmtPtr(body);
    return finishClone(*this, std::move(n));
}

NodePtr
Repeat::cloneNode() const
{
    auto n = std::make_unique<Repeat>();
    n->count = count->cloneExpr();
    n->body = cloneStmtPtr(body);
    return finishClone(*this, std::move(n));
}

NodePtr
Forever::cloneNode() const
{
    auto n = std::make_unique<Forever>();
    n->body = cloneStmtPtr(body);
    return finishClone(*this, std::move(n));
}

NodePtr
DelayStmt::cloneNode() const
{
    auto n = std::make_unique<DelayStmt>();
    n->delay = delay->cloneExpr();
    n->stmt = cloneStmtPtr(stmt);
    return finishClone(*this, std::move(n));
}

EventExpr
EventExpr::clone() const
{
    EventExpr e;
    e.edge = edge;
    e.signal = signal->cloneExpr();
    return e;
}

NodePtr
EventCtrl::cloneNode() const
{
    auto n = std::make_unique<EventCtrl>();
    n->star = star;
    for (auto &e : events)
        n->events.push_back(e.clone());
    n->stmt = cloneStmtPtr(stmt);
    return finishClone(*this, std::move(n));
}

NodePtr
Wait::cloneNode() const
{
    auto n = std::make_unique<Wait>();
    n->cond = cond->cloneExpr();
    n->stmt = cloneStmtPtr(stmt);
    return finishClone(*this, std::move(n));
}

NodePtr
TriggerEvent::cloneNode() const
{
    return finishClone(*this, std::make_unique<TriggerEvent>(name));
}

NodePtr
SysTask::cloneNode() const
{
    auto n = std::make_unique<SysTask>(name);
    n->format = format;
    for (auto &a : args)
        n->args.push_back(a->cloneExpr());
    return finishClone(*this, std::move(n));
}

NodePtr
NullStmt::cloneNode() const
{
    return finishClone(*this, std::make_unique<NullStmt>());
}

NodePtr
VarDecl::cloneNode() const
{
    auto n = std::make_unique<VarDecl>();
    n->varKind = varKind;
    n->name = name;
    n->msb = cloneExprPtr(msb);
    n->lsb = cloneExprPtr(lsb);
    n->arrayFirst = cloneExprPtr(arrayFirst);
    n->arrayLast = cloneExprPtr(arrayLast);
    n->init = cloneExprPtr(init);
    n->isSigned = isSigned;
    return finishClone(*this, std::move(n));
}

NodePtr
ContAssign::cloneNode() const
{
    auto n = std::make_unique<ContAssign>();
    n->lhs = lhs->cloneExpr();
    n->rhs = rhs->cloneExpr();
    return finishClone(*this, std::move(n));
}

NodePtr
AlwaysBlock::cloneNode() const
{
    auto n = std::make_unique<AlwaysBlock>();
    n->body = cloneStmtPtr(body);
    return finishClone(*this, std::move(n));
}

NodePtr
InitialBlock::cloneNode() const
{
    auto n = std::make_unique<InitialBlock>();
    n->body = cloneStmtPtr(body);
    return finishClone(*this, std::move(n));
}

PortConn
PortConn::clone() const
{
    PortConn c;
    c.port = port;
    c.expr = expr ? expr->cloneExpr() : nullptr;
    return c;
}

NodePtr
Instance::cloneNode() const
{
    auto n = std::make_unique<Instance>();
    n->moduleName = moduleName;
    n->instName = instName;
    for (auto &c : conns)
        n->conns.push_back(c.clone());
    return finishClone(*this, std::move(n));
}

NodePtr
FunctionDecl::cloneNode() const
{
    auto n = std::make_unique<FunctionDecl>();
    n->name = name;
    n->msb = msb ? msb->cloneExpr() : nullptr;
    n->lsb = lsb ? lsb->cloneExpr() : nullptr;
    for (auto &l : locals) {
        NodePtr c = l->cloneNode();
        n->locals.emplace_back(
            static_cast<VarDecl *>(c.release()));
    }
    n->inputOrder = inputOrder;
    n->body = body ? body->cloneStmt() : nullptr;
    return finishClone(*this, std::move(n));
}

NodePtr
Module::cloneNode() const
{
    auto n = std::make_unique<Module>();
    n->name = name;
    n->ports = ports;
    for (auto &i : items)
        n->items.push_back(i->cloneItem());
    return finishClone(*this, std::move(n));
}

std::unique_ptr<Module>
Module::cloneModule() const
{
    NodePtr n = cloneNode();
    return std::unique_ptr<Module>(static_cast<Module *>(n.release()));
}

const VarDecl *
Module::findDecl(const std::string &n) const
{
    for (auto &i : items) {
        if (i->kind == NodeKind::VarDecl) {
            auto *d = i->as<VarDecl>();
            if (d->name == n)
                return d;
        }
    }
    return nullptr;
}

std::optional<PortDir>
Module::portDir(const std::string &n) const
{
    for (auto &p : ports)
        if (p.name == n)
            return p.dir;
    return std::nullopt;
}

NodePtr
SourceFile::cloneNode() const
{
    auto n = std::make_unique<SourceFile>();
    n->nextId = nextId;
    for (auto &m : modules)
        n->modules.push_back(m->cloneModule());
    return finishClone(*this, std::move(n));
}

std::unique_ptr<SourceFile>
SourceFile::cloneFile() const
{
    NodePtr n = cloneNode();
    return std::unique_ptr<SourceFile>(
        static_cast<SourceFile *>(n.release()));
}

Module *
SourceFile::findModule(const std::string &n) const
{
    for (auto &m : modules)
        if (m->name == n)
            return m.get();
    return nullptr;
}

void
visitAll(Node &root, const std::function<void(Node &)> &fn)
{
    fn(root);
    root.forEachChild([&](Node *c) {
        if (c)
            visitAll(*c, fn);
    });
}

int
numberNodes(SourceFile &file, int first_id)
{
    int next = first_id;
    visitAll(file, [&](Node &n) { n.id = next++; });
    file.nextId = next;
    return next;
}

void
numberSubtree(SourceFile &file, Node &subtree)
{
    int next = file.nextId;
    visitAll(subtree, [&](Node &n) { n.id = next++; });
    file.nextId = next;
}

Node *
findNode(Node &root, int id)
{
    if (root.id == id)
        return &root;
    Node *found = nullptr;
    root.forEachChild([&](Node *c) {
        if (!found && c)
            found = findNode(*c, id);
    });
    return found;
}

std::vector<std::string>
collectIdents(const Node &root)
{
    std::vector<std::string> names;
    visitAll(const_cast<Node &>(root), [&](Node &n) {
        if (n.kind == NodeKind::Ident)
            names.push_back(n.as<Ident>()->name);
        else if (n.kind == NodeKind::Index)
            names.push_back(n.as<Index>()->name);
        else if (n.kind == NodeKind::RangeSel)
            names.push_back(n.as<RangeSel>()->name);
    });
    return names;
}

int
countNodes(Node &root)
{
    int n = 0;
    visitAll(root, [&](Node &) { ++n; });
    return n;
}

} // namespace cirfix::verilog
