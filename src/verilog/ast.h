#pragma once

/**
 * @file
 * Abstract syntax tree for the Verilog subset handled by this repository.
 *
 * The AST plays the role PyVerilog's AST plays in the original CirFix
 * prototype: every node carries a unique integer id (assigned by
 * numberNodes() after parsing), deep clones preserve ids so that repair
 * patches can be expressed as edit lists over node ids, and the printer
 * regenerates Verilog source from any (possibly mutated) tree.
 *
 * The subset covers the constructs used by the benchmark suite:
 * modules with ports, wire/reg/integer/parameter/event declarations
 * (vectors and 1-D memories), continuous assignments, initial/always
 * blocks, blocking/non-blocking assignments with intra-assignment
 * delays, if/case/casez/casex/for/while/repeat/forever, delay and
 * event controls, named events, module instantiation, and the standard
 * expression operators of IEEE 1364-2005.
 */

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/logic.h"

namespace cirfix::verilog {

using sim::LogicVec;

/** Discriminator for every concrete AST node type. */
enum class NodeKind {
    // Expressions
    Number, Ident, Unary, Binary, Ternary, Index, RangeSel, Concat, Repl,
    SysFuncCall,
    // Statements
    SeqBlock, If, Case, For, While, Repeat, Forever, Assign, DelayStmt,
    EventCtrl, Wait, TriggerEvent, SysTask, NullStmt,
    // Expressions (continued)
    FuncCall,
    // Module items
    VarDecl, ContAssign, AlwaysBlock, InitialBlock, Instance,
    FunctionDecl,
    // Structure
    Module, SourceFile,
};

const char *nodeKindName(NodeKind k);

struct Node;
using NodePtr = std::unique_ptr<Node>;

/**
 * Half-open source range: [line:col, endLine:endCol), both 1-based.
 * All-zero when the node was synthesized by a repair operator rather
 * than parsed from source.
 */
struct Span
{
    int line = 0;
    int col = 0;
    int endLine = 0;
    int endCol = 0;

    bool valid() const { return line > 0; }
    std::string str() const;  //!< "3:5-3:12" (or "?" when invalid)
};

/** Base class for all AST nodes. */
struct Node
{
    /** Unique id assigned by numberNodes(); clones keep their ids. */
    int id = -1;
    NodeKind kind;
    /** 1-based source line (0 if synthesized by a repair operator). */
    int line = 0;
    /** Full begin-end source range (invalid if synthesized). */
    Span span;

    explicit Node(NodeKind k) : kind(k) {}
    virtual ~Node() = default;

    /** Deep copy preserving node ids. */
    virtual NodePtr cloneNode() const = 0;

    /** Visit direct children (non-owning). */
    virtual void forEachChild(const std::function<void(Node *)> &fn) = 0;

    template <typename T>
    T *
    as()
    {
        return static_cast<T *>(this);
    }
    template <typename T>
    const T *
    as() const
    {
        return static_cast<const T *>(this);
    }
};

/** Base for expressions. */
struct Expr : Node
{
    using Node::Node;
    std::unique_ptr<Expr> cloneExpr() const;
};

using ExprPtr = std::unique_ptr<Expr>;

/** Base for statements. */
struct Stmt : Node
{
    using Node::Node;
    std::unique_ptr<Stmt> cloneStmt() const;

    /**
     * Lazily computed by the interpreter: can executing this statement
     * suspend the process (delay/event/wait)? -1 = not yet computed.
     * Purely an execution cache; not part of program structure (and
     * deliberately not copied by clones, which recompute it).
     *
     * Atomic because one shared AST may be simulated by several
     * designs concurrently (parallel candidate evaluation). The cached
     * value is a pure function of the subtree, so racing writers store
     * the same value and relaxed ordering suffices.
     */
    mutable std::atomic<int8_t> suspendCache{-1};
};

using StmtPtr = std::unique_ptr<Stmt>;

/** Base for module items (declarations, processes, instances). */
struct Item : Node
{
    using Node::Node;
    std::unique_ptr<Item> cloneItem() const;
};

using ItemPtr = std::unique_ptr<Item>;

// --------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------

/** A literal such as 4'b1010, 8'hff, 13, or 1'bx. */
struct Number : Expr
{
    LogicVec value;
    /** True if the literal had an explicit width/base (4'b...). */
    bool sized = true;
    /** Base character used when printing: 'b', 'h', 'd', 'o'. */
    char base = 'd';

    Number() : Expr(NodeKind::Number), value(32, uint64_t(0)) {}
    Number(int width, uint64_t v, char base_ch = 'd')
        : Expr(NodeKind::Number), value(width, v), base(base_ch)
    {}
    explicit Number(LogicVec v, char base_ch = 'b')
        : Expr(NodeKind::Number), value(std::move(v)), base(base_ch)
    {}

    NodePtr cloneNode() const override;
    void forEachChild(const std::function<void(Node *)> &) override {}
};

/** A reference to a wire, reg, integer, parameter, or named event. */
struct Ident : Expr
{
    std::string name;

    explicit Ident(std::string n)
        : Expr(NodeKind::Ident), name(std::move(n))
    {}

    NodePtr cloneNode() const override;
    void forEachChild(const std::function<void(Node *)> &) override {}
};

enum class UnaryOp {
    Plus, Minus, Not, BitNot,
    RedAnd, RedOr, RedXor, RedNand, RedNor, RedXnor,
};

struct Unary : Expr
{
    UnaryOp op;
    ExprPtr operand;

    Unary(UnaryOp o, ExprPtr e)
        : Expr(NodeKind::Unary), op(o), operand(std::move(e))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(operand.get());
    }
};

enum class BinaryOp {
    Add, Sub, Mul, Div, Mod, Pow,
    BitAnd, BitOr, BitXor, BitXnor,
    LogAnd, LogOr,
    Eq, Neq, CaseEq, CaseNeq,
    Lt, Le, Gt, Ge,
    Shl, Shr,
};

struct Binary : Expr
{
    BinaryOp op;
    ExprPtr lhs, rhs;

    Binary(BinaryOp o, ExprPtr l, ExprPtr r)
        : Expr(NodeKind::Binary), op(o), lhs(std::move(l)), rhs(std::move(r))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(lhs.get());
        fn(rhs.get());
    }
};

struct Ternary : Expr
{
    ExprPtr cond, thenExpr, elseExpr;

    Ternary(ExprPtr c, ExprPtr t, ExprPtr e)
        : Expr(NodeKind::Ternary), cond(std::move(c)),
          thenExpr(std::move(t)), elseExpr(std::move(e))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(cond.get());
        fn(thenExpr.get());
        fn(elseExpr.get());
    }
};

/** Bit select or memory element select: name[expr]. */
struct Index : Expr
{
    std::string name;
    ExprPtr index;

    Index(std::string n, ExprPtr i)
        : Expr(NodeKind::Index), name(std::move(n)), index(std::move(i))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(index.get());
    }
};

/** Constant part select: name[msb:lsb]. */
struct RangeSel : Expr
{
    std::string name;
    ExprPtr msb, lsb;

    RangeSel(std::string n, ExprPtr m, ExprPtr l)
        : Expr(NodeKind::RangeSel), name(std::move(n)),
          msb(std::move(m)), lsb(std::move(l))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(msb.get());
        fn(lsb.get());
    }
};

/** Concatenation {a, b, c}; parts[0] is the most significant. */
struct Concat : Expr
{
    std::vector<ExprPtr> parts;

    Concat() : Expr(NodeKind::Concat) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &p : parts)
            fn(p.get());
    }
};

/** Replication {count{expr}}. */
struct Repl : Expr
{
    ExprPtr count;
    ExprPtr value;

    Repl(ExprPtr c, ExprPtr v)
        : Expr(NodeKind::Repl), count(std::move(c)), value(std::move(v))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(count.get());
        fn(value.get());
    }
};

/** Call of a user-defined function in an expression: crc8(data, 1). */
struct FuncCall : Expr
{
    std::string name;
    std::vector<ExprPtr> args;

    explicit FuncCall(std::string n)
        : Expr(NodeKind::FuncCall), name(std::move(n))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &a : args)
            fn(a.get());
    }
};

/** System function used in an expression: $time, $random. */
struct SysFuncCall : Expr
{
    std::string name;
    std::vector<ExprPtr> args;

    explicit SysFuncCall(std::string n)
        : Expr(NodeKind::SysFuncCall), name(std::move(n))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &a : args)
            fn(a.get());
    }
};

// --------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------

/** begin ... end, optionally named (begin : COUNTER). */
struct SeqBlock : Stmt
{
    std::string name;
    std::vector<StmtPtr> stmts;

    SeqBlock() : Stmt(NodeKind::SeqBlock) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &s : stmts)
            fn(s.get());
    }
};

struct If : Stmt
{
    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt;  //!< may be null

    If() : Stmt(NodeKind::If) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(cond.get());
        if (thenStmt)
            fn(thenStmt.get());
        if (elseStmt)
            fn(elseStmt.get());
    }
};

enum class CaseType { Case, CaseZ, CaseX };

struct CaseItem
{
    /** Empty labels vector denotes the default item. */
    std::vector<ExprPtr> labels;
    StmtPtr body;  //!< may be null (empty arm)

    CaseItem clone() const;
};

struct Case : Stmt
{
    CaseType type = CaseType::Case;
    ExprPtr subject;
    std::vector<CaseItem> items;

    Case() : Stmt(NodeKind::Case) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(subject.get());
        for (auto &it : items) {
            for (auto &l : it.labels)
                fn(l.get());
            if (it.body)
                fn(it.body.get());
        }
    }
};

/** Procedural assignment; covers both = and <=, with optional #delay. */
struct Assign : Stmt
{
    ExprPtr lhs;
    ExprPtr rhs;
    bool blocking = true;
    /** Intra-assignment delay: a <= #1 b. Null when absent. */
    ExprPtr delay;

    Assign() : Stmt(NodeKind::Assign) {}
    Assign(ExprPtr l, ExprPtr r, bool blocking_assign)
        : Stmt(NodeKind::Assign), lhs(std::move(l)), rhs(std::move(r)),
          blocking(blocking_assign)
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(lhs.get());
        fn(rhs.get());
        if (delay)
            fn(delay.get());
    }
};

struct For : Stmt
{
    StmtPtr init;  //!< Assign
    ExprPtr cond;
    StmtPtr step;  //!< Assign
    StmtPtr body;

    For() : Stmt(NodeKind::For) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        if (init)
            fn(init.get());
        fn(cond.get());
        if (step)
            fn(step.get());
        if (body)
            fn(body.get());
    }
};

struct While : Stmt
{
    ExprPtr cond;
    StmtPtr body;

    While() : Stmt(NodeKind::While) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(cond.get());
        if (body)
            fn(body.get());
    }
};

struct Repeat : Stmt
{
    ExprPtr count;
    StmtPtr body;

    Repeat() : Stmt(NodeKind::Repeat) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(count.get());
        if (body)
            fn(body.get());
    }
};

struct Forever : Stmt
{
    StmtPtr body;

    Forever() : Stmt(NodeKind::Forever) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        if (body)
            fn(body.get());
    }
};

/** #delay stmt; (stmt may be null for a bare delay). */
struct DelayStmt : Stmt
{
    ExprPtr delay;
    StmtPtr stmt;  //!< may be null

    DelayStmt() : Stmt(NodeKind::DelayStmt) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(delay.get());
        if (stmt)
            fn(stmt.get());
    }
};

enum class Edge { Level, Pos, Neg };

/** One entry of a sensitivity/event list: [posedge|negedge] signal. */
struct EventExpr
{
    Edge edge = Edge::Level;
    ExprPtr signal;  //!< Ident (or Index for vector bits)

    EventExpr clone() const;
};

/** @(eventlist) stmt, or @* stmt. stmt may be null: bare "@(e);". */
struct EventCtrl : Stmt
{
    bool star = false;
    std::vector<EventExpr> events;
    StmtPtr stmt;  //!< may be null

    EventCtrl() : Stmt(NodeKind::EventCtrl) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &e : events)
            fn(e.signal.get());
        if (stmt)
            fn(stmt.get());
    }
};

/** wait (cond) stmt; */
struct Wait : Stmt
{
    ExprPtr cond;
    StmtPtr stmt;  //!< may be null

    Wait() : Stmt(NodeKind::Wait) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(cond.get());
        if (stmt)
            fn(stmt.get());
    }
};

/** -> event_name; */
struct TriggerEvent : Stmt
{
    std::string name;

    explicit TriggerEvent(std::string n)
        : Stmt(NodeKind::TriggerEvent), name(std::move(n))
    {}

    NodePtr cloneNode() const override;
    void forEachChild(const std::function<void(Node *)> &) override {}
};

/** $display / $finish / $stop / $monitor style statement. */
struct SysTask : Stmt
{
    std::string name;
    /** The first arg may be a format string (stored here, not an Expr). */
    std::optional<std::string> format;
    std::vector<ExprPtr> args;

    SysTask() : Stmt(NodeKind::SysTask) {}
    explicit SysTask(std::string n)
        : Stmt(NodeKind::SysTask), name(std::move(n))
    {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &a : args)
            fn(a.get());
    }
};

struct NullStmt : Stmt
{
    NullStmt() : Stmt(NodeKind::NullStmt) {}

    NodePtr cloneNode() const override;
    void forEachChild(const std::function<void(Node *)> &) override {}
};

// --------------------------------------------------------------------
// Module items
// --------------------------------------------------------------------

enum class VarKind { Wire, Reg, Integer, Parameter, Localparam, Event };

/** Declaration of one name (comma lists are split by the parser). */
struct VarDecl : Item
{
    VarKind varKind = VarKind::Wire;
    std::string name;
    /** Vector range [msb:lsb]; both null for scalars. */
    ExprPtr msb, lsb;
    /** 1-D memory bounds [first:last]; both null for non-arrays. */
    ExprPtr arrayFirst, arrayLast;
    /** Initializer (parameters; also "reg r = 0" style). */
    ExprPtr init;
    /** True if this declaration is signed (unused by benchmarks). */
    bool isSigned = false;

    VarDecl() : Item(NodeKind::VarDecl) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        if (msb)
            fn(msb.get());
        if (lsb)
            fn(lsb.get());
        if (arrayFirst)
            fn(arrayFirst.get());
        if (arrayLast)
            fn(arrayLast.get());
        if (init)
            fn(init.get());
    }
};

/** assign lhs = rhs; */
struct ContAssign : Item
{
    ExprPtr lhs;
    ExprPtr rhs;

    ContAssign() : Item(NodeKind::ContAssign) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        fn(lhs.get());
        fn(rhs.get());
    }
};

/** always body (the body is typically an EventCtrl or DelayStmt). */
struct AlwaysBlock : Item
{
    StmtPtr body;

    AlwaysBlock() : Item(NodeKind::AlwaysBlock) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        if (body)
            fn(body.get());
    }
};

struct InitialBlock : Item
{
    StmtPtr body;

    InitialBlock() : Item(NodeKind::InitialBlock) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        if (body)
            fn(body.get());
    }
};

/**
 * A Verilog function declaration (IEEE 1364 §10.4): a combinational
 * subroutine usable in expression context. Function bodies execute
 * without consuming simulation time (no timing controls), assigning
 * the result to the function's own name.
 */
struct FunctionDecl : Item
{
    std::string name;
    /** Return range [msb:lsb]; both null for a 1-bit function. */
    ExprPtr msb, lsb;
    /** Inputs (in declaration order) and local reg/integer decls. */
    std::vector<std::unique_ptr<VarDecl>> locals;
    std::vector<std::string> inputOrder;
    StmtPtr body;

    FunctionDecl() : Item(NodeKind::FunctionDecl) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        if (msb)
            fn(msb.get());
        if (lsb)
            fn(lsb.get());
        for (auto &l : locals)
            fn(l.get());
        if (body)
            fn(body.get());
    }
};

/** One port connection of a module instance. */
struct PortConn
{
    std::string port;  //!< empty for positional connections
    ExprPtr expr;      //!< may be null for .port() (unconnected)

    PortConn clone() const;
};

/** mod_name inst_name (.a(x), .b(y)); */
struct Instance : Item
{
    std::string moduleName;
    std::string instName;
    std::vector<PortConn> conns;

    Instance() : Item(NodeKind::Instance) {}

    NodePtr cloneNode() const override;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &c : conns)
            if (c.expr)
                fn(c.expr.get());
    }
};

// --------------------------------------------------------------------
// Structure
// --------------------------------------------------------------------

enum class PortDir { Input, Output, Inout };

struct Port
{
    std::string name;
    PortDir dir = PortDir::Input;
};

struct Module : Node
{
    std::string name;
    std::vector<Port> ports;
    std::vector<ItemPtr> items;

    Module() : Node(NodeKind::Module) {}

    NodePtr cloneNode() const override;
    std::unique_ptr<Module> cloneModule() const;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &i : items)
            fn(i.get());
    }

    /** Find the declaration of a name, or nullptr. */
    const VarDecl *findDecl(const std::string &n) const;
    /** Port direction for a name, if it is a port. */
    std::optional<PortDir> portDir(const std::string &n) const;
};

/** One or more modules from a single source text. */
struct SourceFile : Node
{
    std::vector<std::unique_ptr<Module>> modules;
    /** Next fresh node id; maintained by numberNodes(). */
    int nextId = 0;

    SourceFile() : Node(NodeKind::SourceFile) {}

    NodePtr cloneNode() const override;
    std::unique_ptr<SourceFile> cloneFile() const;
    void
    forEachChild(const std::function<void(Node *)> &fn) override
    {
        for (auto &m : modules)
            fn(m.get());
    }

    Module *findModule(const std::string &name) const;
};

// --------------------------------------------------------------------
// Utilities
// --------------------------------------------------------------------

/** Assign sequential ids to every node; returns the next free id. */
int numberNodes(SourceFile &file, int first_id = 0);

/** Assign fresh ids (starting at file.nextId) to @p subtree nodes. */
void numberSubtree(SourceFile &file, Node &subtree);

/** Depth-first pre-order visit of every node in the tree. */
void visitAll(Node &root, const std::function<void(Node &)> &fn);

/** Find a node by id anywhere under @p root (nullptr if absent). */
Node *findNode(Node &root, int id);

/** Collect all identifier names appearing under @p root. */
std::vector<std::string> collectIdents(const Node &root);

/** Count the nodes under (and including) @p root. */
int countNodes(Node &root);

} // namespace cirfix::verilog
