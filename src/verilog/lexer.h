#pragma once

/**
 * @file
 * Tokenizer for the Verilog subset.
 *
 * Handles identifiers, keywords, sized/unsized numeric literals
 * (including x/z digits and '_' separators), string literals, system
 * identifiers ($display, $time, ...), one- and multi-character operators,
 * line and block comments, and compiler directives (`timescale and
 * friends are skipped to end of line, matching how the benchmarks use
 * them).
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/logic.h"

namespace cirfix::verilog {

enum class Tok {
    End,
    Ident,      //!< identifier or keyword (text in Token::text)
    SysIdent,   //!< $identifier
    Number,     //!< numeric literal (value in Token::value)
    String,     //!< "..." (unescaped text in Token::text)
    // Punctuation / operators; text holds the exact spelling.
    Punct,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    sim::LogicVec value{1, sim::Bit::X};
    /** True when a Number literal carried an explicit size/base. */
    bool sized = false;
    char base = 'd';
    int line = 0;
    int col = 0;      //!< 1-based column of the first character
    int endLine = 0;  //!< line of one-past-the-last character
    int endCol = 0;   //!< 1-based column of one-past-the-last character

    bool
    is(Tok k, const std::string &t = "") const
    {
        return kind == k && (t.empty() || text == t);
    }
    bool isPunct(const std::string &t) const { return is(Tok::Punct, t); }
    bool isKeyword(const std::string &t) const { return is(Tok::Ident, t); }
};

/** Thrown on malformed input; carries a message with the line number. */
struct LexError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Tokenize @p source; the result always ends with a Tok::End token. */
std::vector<Token> lex(const std::string &source);

} // namespace cirfix::verilog
