#include "verilog/validate.h"

#include <unordered_map>
#include <unordered_set>

namespace cirfix::verilog {

namespace {

struct ModuleScope
{
    std::unordered_map<std::string, const VarDecl *> decls;
    std::unordered_set<std::string> events;
    std::unordered_set<std::string> regs;  //!< assignable in procedures
    std::unordered_map<std::string, const FunctionDecl *> functions;
};

ModuleScope
buildScope(const Module &mod)
{
    ModuleScope sc;
    for (auto &it : mod.items) {
        if (it->kind == NodeKind::FunctionDecl) {
            auto *f = it->as<FunctionDecl>();
            sc.functions[f->name] = f;
            continue;
        }
        if (it->kind != NodeKind::VarDecl)
            continue;
        auto *d = it->as<VarDecl>();
        if (d->varKind == VarKind::Event) {
            sc.events.insert(d->name);
            continue;
        }
        // Later declarations of the same name refine earlier ones
        // (e.g., "output q;" followed by "reg q;").
        sc.decls[d->name] = d;
        if (d->varKind == VarKind::Reg || d->varKind == VarKind::Integer)
            sc.regs.insert(d->name);
    }
    return sc;
}

class Validator
{
  public:
    explicit Validator(const SourceFile &file) : file_(file)
    {
        for (auto &m : file.modules)
            moduleNames_.insert(m->name);
    }

    std::vector<ValidationError>
    run()
    {
        for (auto &m : file_.modules)
            checkModule(*m);
        return std::move(errors_);
    }

  private:
    const SourceFile &file_;
    std::unordered_set<std::string> moduleNames_;
    std::vector<ValidationError> errors_;
    const Module *cur_ = nullptr;
    ModuleScope scope_;
    const Node *loc_ = nullptr;  //!< innermost node being checked

    /** Scoped tracker so diagnostics carry the nearest node's span. */
    struct LocGuard
    {
        Validator &v;
        const Node *saved;
        LocGuard(Validator &v_, const Node &n) : v(v_), saved(v_.loc_)
        {
            v.loc_ = &n;
        }
        ~LocGuard() { v.loc_ = saved; }
    };

    void
    error(const std::string &msg)
    {
        ValidationError e;
        e.module = cur_ ? cur_->name : "";
        e.message = msg;
        if (loc_) {
            e.line = loc_->line;
            e.span = loc_->span;
        }
        errors_.push_back(std::move(e));
    }

    void
    checkModule(const Module &mod)
    {
        cur_ = &mod;
        scope_ = buildScope(mod);
        for (auto &p : mod.ports) {
            if (!scope_.decls.count(p.name))
                error("port '" + p.name + "' has no declaration");
        }
        for (auto &it : mod.items)
            checkItem(*it);
    }

    void
    checkItem(const Item &it)
    {
        LocGuard loc(*this, it);
        switch (it.kind) {
          case NodeKind::VarDecl: {
            auto *d = it.as<VarDecl>();
            if (d->init)
                checkExpr(*d->init);
            break;
          }
          case NodeKind::ContAssign: {
            auto *a = it.as<ContAssign>();
            checkLValue(*a->lhs, false);
            checkExpr(*a->rhs);
            break;
          }
          case NodeKind::AlwaysBlock: {
            auto *b = it.as<AlwaysBlock>();
            if (!b->body) {
                error("always block with no body");
            } else {
                checkStmt(*b->body);
            }
            break;
          }
          case NodeKind::InitialBlock: {
            auto *b = it.as<InitialBlock>();
            if (!b->body) {
                error("initial block with no body");
            } else {
                checkStmt(*b->body);
            }
            break;
          }
          case NodeKind::FunctionDecl: {
            auto *f = it.as<FunctionDecl>();
            if (!f->body) {
                error("function '" + f->name + "' has no body");
                break;
            }
            // Function bodies see the module scope plus their locals
            // and the function-name result register, and must not
            // contain timing controls.
            ModuleScope saved = scope_;
            scope_.decls[f->name] = nullptr;
            scope_.regs.insert(f->name);
            for (auto &l : f->locals) {
                scope_.decls[l->name] = l.get();
                scope_.regs.insert(l->name);
            }
            checkNoTiming(*f->body, f->name);
            checkStmt(*f->body);
            scope_ = std::move(saved);
            break;
          }
          case NodeKind::Instance: {
            auto *in = it.as<Instance>();
            if (!moduleNames_.count(in->moduleName))
                error("instance of unknown module '" + in->moduleName +
                      "'");
            const Module *target = file_.findModule(in->moduleName);
            for (auto &c : in->conns) {
                if (c.expr)
                    checkExpr(*c.expr);
                if (target && !c.port.empty() &&
                    !target->portDir(c.port)) {
                    error("connection to unknown port '" + c.port +
                          "' of module '" + in->moduleName + "'");
                }
            }
            break;
          }
          default:
            error(std::string("unexpected item kind ") +
                  nodeKindName(it.kind));
        }
    }

    /** Functions execute in zero time: no delays/events/waits. */
    void
    checkNoTiming(const Stmt &s, const std::string &fn_name)
    {
        visitAll(const_cast<Stmt &>(s), [&](Node &n) {
            switch (n.kind) {
              case NodeKind::DelayStmt:
              case NodeKind::EventCtrl:
              case NodeKind::Wait:
              case NodeKind::TriggerEvent:
                error("timing control inside function '" + fn_name +
                      "'");
                break;
              case NodeKind::Assign:
                if (!n.as<Assign>()->blocking || n.as<Assign>()->delay)
                    error("non-blocking or delayed assignment inside "
                          "function '" + fn_name + "'");
                break;
              default:
                break;
            }
        });
    }

    void
    checkStmt(const Stmt &s)
    {
        LocGuard loc(*this, s);
        switch (s.kind) {
          case NodeKind::SeqBlock:
            for (auto &child : s.as<SeqBlock>()->stmts) {
                if (!child)
                    error("null statement in block");
                else
                    checkStmt(*child);
            }
            break;
          case NodeKind::If: {
            auto *i = s.as<If>();
            checkExpr(*i->cond);
            if (i->thenStmt)
                checkStmt(*i->thenStmt);
            if (i->elseStmt)
                checkStmt(*i->elseStmt);
            break;
          }
          case NodeKind::Case: {
            auto *c = s.as<Case>();
            checkExpr(*c->subject);
            for (auto &itc : c->items) {
                for (auto &l : itc.labels)
                    checkExpr(*l);
                if (itc.body)
                    checkStmt(*itc.body);
            }
            break;
          }
          case NodeKind::For: {
            auto *f = s.as<For>();
            if (f->init)
                checkStmt(*f->init);
            checkExpr(*f->cond);
            if (f->step)
                checkStmt(*f->step);
            if (f->body)
                checkStmt(*f->body);
            break;
          }
          case NodeKind::While: {
            auto *w = s.as<While>();
            checkExpr(*w->cond);
            if (w->body)
                checkStmt(*w->body);
            break;
          }
          case NodeKind::Repeat: {
            auto *r = s.as<Repeat>();
            checkExpr(*r->count);
            if (r->body)
                checkStmt(*r->body);
            break;
          }
          case NodeKind::Forever: {
            auto *f = s.as<Forever>();
            if (f->body)
                checkStmt(*f->body);
            break;
          }
          case NodeKind::Assign: {
            auto *a = s.as<Assign>();
            checkLValue(*a->lhs, true);
            checkExpr(*a->rhs);
            if (a->delay)
                checkExpr(*a->delay);
            break;
          }
          case NodeKind::DelayStmt: {
            auto *d = s.as<DelayStmt>();
            checkExpr(*d->delay);
            if (d->stmt)
                checkStmt(*d->stmt);
            break;
          }
          case NodeKind::EventCtrl: {
            auto *e = s.as<EventCtrl>();
            for (auto &ev : e->events) {
                if (!ev.signal) {
                    error("event control with null signal");
                    continue;
                }
                checkExpr(*ev.signal);
                if (ev.edge != Edge::Level &&
                    ev.signal->kind != NodeKind::Ident &&
                    ev.signal->kind != NodeKind::Index) {
                    error("edge event on a non-signal expression");
                }
            }
            // Empty sensitivity lists are legal (if useless) Verilog;
            // the lint subsystem reports them (check "empty-sens")
            // rather than validate rejecting the design outright.
            if (e->stmt)
                checkStmt(*e->stmt);
            break;
          }
          case NodeKind::Wait: {
            auto *w = s.as<Wait>();
            checkExpr(*w->cond);
            if (w->stmt)
                checkStmt(*w->stmt);
            break;
          }
          case NodeKind::TriggerEvent: {
            auto *t = s.as<TriggerEvent>();
            if (!scope_.events.count(t->name))
                error("trigger of undeclared event '" + t->name + "'");
            break;
          }
          case NodeKind::SysTask:
            for (auto &a : s.as<SysTask>()->args)
                checkExpr(*a);
            break;
          case NodeKind::NullStmt:
            break;
          default:
            error(std::string("unexpected statement kind ") +
                  nodeKindName(s.kind));
        }
    }

    /**
     * Validate an assignment target. Procedural assignments must write
     * regs/integers; continuous assignments must write wires.
     */
    void
    checkLValue(const Expr &e, bool procedural)
    {
        switch (e.kind) {
          case NodeKind::Ident:
            checkTargetName(e.as<Ident>()->name, procedural);
            break;
          case NodeKind::Index: {
            auto *ix = e.as<Index>();
            checkTargetName(ix->name, procedural);
            checkExpr(*ix->index);
            break;
          }
          case NodeKind::RangeSel: {
            auto *r = e.as<RangeSel>();
            checkTargetName(r->name, procedural);
            checkExpr(*r->msb);
            checkExpr(*r->lsb);
            break;
          }
          case NodeKind::Concat:
            for (auto &p : e.as<Concat>()->parts)
                checkLValue(*p, procedural);
            break;
          default:
            error(std::string("invalid assignment target of kind ") +
                  nodeKindName(e.kind));
        }
    }

    void
    checkTargetName(const std::string &name, bool procedural)
    {
        auto it = scope_.decls.find(name);
        if (it == scope_.decls.end()) {
            error("assignment to undeclared name '" + name + "'");
            return;
        }
        if (procedural && !scope_.regs.count(name))
            error("procedural assignment to non-reg '" + name + "'");
        if (!procedural && scope_.regs.count(name))
            error("continuous assignment to reg '" + name + "'");
    }

    void
    checkExpr(const Expr &e)
    {
        LocGuard loc(*this, e);
        switch (e.kind) {
          case NodeKind::Number:
            break;
          case NodeKind::Ident: {
            const std::string &n = e.as<Ident>()->name;
            if (!scope_.decls.count(n) && !scope_.events.count(n))
                error("reference to undeclared name '" + n + "'");
            break;
          }
          case NodeKind::Index: {
            auto *ix = e.as<Index>();
            if (!scope_.decls.count(ix->name))
                error("reference to undeclared name '" + ix->name + "'");
            checkExpr(*ix->index);
            break;
          }
          case NodeKind::RangeSel: {
            auto *r = e.as<RangeSel>();
            if (!scope_.decls.count(r->name))
                error("reference to undeclared name '" + r->name + "'");
            checkExpr(*r->msb);
            checkExpr(*r->lsb);
            break;
          }
          case NodeKind::FuncCall: {
            auto *f = e.as<FuncCall>();
            auto fit = scope_.functions.find(f->name);
            if (fit == scope_.functions.end()) {
                error("call of undeclared function '" + f->name + "'");
            } else if (f->args.size() !=
                       fit->second->inputOrder.size()) {
                error("function '" + f->name + "' called with " +
                      std::to_string(f->args.size()) +
                      " argument(s), expects " +
                      std::to_string(fit->second->inputOrder.size()));
            }
            for (auto &a : f->args)
                checkExpr(*a);
            break;
          }
          default:
            const_cast<Expr &>(e).forEachChild([&](Node *c) {
                if (c)
                    checkExpr(*static_cast<Expr *>(c));
            });
        }
    }
};

} // namespace

std::vector<ValidationError>
validate(const SourceFile &file)
{
    return Validator(file).run();
}

bool
isValid(const SourceFile &file)
{
    return validate(file).empty();
}

} // namespace cirfix::verilog
