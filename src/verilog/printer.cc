#include "verilog/printer.h"

#include <sstream>

namespace cirfix::verilog {

namespace {

const char *
unaryOpText(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Plus: return "+";
      case UnaryOp::Minus: return "-";
      case UnaryOp::Not: return "!";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::RedAnd: return "&";
      case UnaryOp::RedOr: return "|";
      case UnaryOp::RedXor: return "^";
      case UnaryOp::RedNand: return "~&";
      case UnaryOp::RedNor: return "~|";
      case UnaryOp::RedXnor: return "~^";
    }
    return "?";
}

const char *
binaryOpText(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::Pow: return "**";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::BitXnor: return "~^";
      case BinaryOp::LogAnd: return "&&";
      case BinaryOp::LogOr: return "||";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Neq: return "!=";
      case BinaryOp::CaseEq: return "===";
      case BinaryOp::CaseNeq: return "!==";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
    }
    return "?";
}

std::string
numberText(const Number &n)
{
    const LogicVec &v = n.value;
    if (!n.sized && !v.hasUnknown())
        return v.toDecimalString();
    std::ostringstream os;
    os << v.width() << "'";
    if (n.base == 'd' && !v.hasUnknown()) {
        os << "d" << v.toDecimalString();
    } else if (n.base == 'h' && v.width() % 4 == 0 && !v.hasUnknown()) {
        os << "h";
        static const char *digits = "0123456789abcdef";
        for (int i = v.width() - 4; i >= 0; i -= 4)
            os << digits[v.slice(i + 3, i).toUint64()];
    } else {
        os << "b" << v.toString();
    }
    return os.str();
}

class PrintVisitor
{
  public:
    std::string
    expr(const Expr &e)
    {
        switch (e.kind) {
          case NodeKind::Number:
            return numberText(*e.as<Number>());
          case NodeKind::Ident:
            return e.as<Ident>()->name;
          case NodeKind::Unary: {
            auto *u = e.as<Unary>();
            return std::string(unaryOpText(u->op)) + "(" +
                   expr(*u->operand) + ")";
          }
          case NodeKind::Binary: {
            auto *b = e.as<Binary>();
            return "(" + expr(*b->lhs) + " " + binaryOpText(b->op) + " " +
                   expr(*b->rhs) + ")";
          }
          case NodeKind::Ternary: {
            auto *t = e.as<Ternary>();
            return "(" + expr(*t->cond) + " ? " + expr(*t->thenExpr) +
                   " : " + expr(*t->elseExpr) + ")";
          }
          case NodeKind::Index: {
            auto *ix = e.as<Index>();
            return ix->name + "[" + expr(*ix->index) + "]";
          }
          case NodeKind::RangeSel: {
            auto *r = e.as<RangeSel>();
            return r->name + "[" + expr(*r->msb) + ":" + expr(*r->lsb) +
                   "]";
          }
          case NodeKind::Concat: {
            auto *c = e.as<Concat>();
            std::string s = "{";
            for (size_t i = 0; i < c->parts.size(); ++i) {
                if (i)
                    s += ", ";
                s += expr(*c->parts[i]);
            }
            return s + "}";
          }
          case NodeKind::Repl: {
            auto *r = e.as<Repl>();
            return "{" + expr(*r->count) + "{" + expr(*r->value) + "}}";
          }
          case NodeKind::FuncCall: {
            auto *f = e.as<FuncCall>();
            std::string s = f->name + "(";
            for (size_t i = 0; i < f->args.size(); ++i) {
                if (i)
                    s += ", ";
                s += expr(*f->args[i]);
            }
            return s + ")";
          }
          case NodeKind::SysFuncCall: {
            auto *f = e.as<SysFuncCall>();
            std::string s = f->name;
            if (!f->args.empty()) {
                s += "(";
                for (size_t i = 0; i < f->args.size(); ++i) {
                    if (i)
                        s += ", ";
                    s += expr(*f->args[i]);
                }
                s += ")";
            }
            return s;
          }
          default:
            return "/*?expr?*/";
        }
    }

    void
    stmt(std::ostream &os, const Stmt &s, int ind)
    {
        std::string pad(static_cast<size_t>(ind) * 4, ' ');
        switch (s.kind) {
          case NodeKind::SeqBlock: {
            auto *b = s.as<SeqBlock>();
            os << pad << "begin";
            if (!b->name.empty())
                os << " : " << b->name;
            os << "\n";
            for (auto &child : b->stmts)
                stmt(os, *child, ind + 1);
            os << pad << "end\n";
            break;
          }
          case NodeKind::If: {
            auto *i = s.as<If>();
            os << pad << "if (" << expr(*i->cond) << ")\n";
            stmtOrNull(os, i->thenStmt.get(), ind + 1);
            if (i->elseStmt) {
                os << pad << "else\n";
                stmt(os, *i->elseStmt, ind + 1);
            }
            break;
          }
          case NodeKind::Case: {
            auto *c = s.as<Case>();
            const char *kw = c->type == CaseType::Case ? "case"
                             : c->type == CaseType::CaseZ ? "casez"
                                                          : "casex";
            os << pad << kw << " (" << expr(*c->subject) << ")\n";
            for (auto &it : c->items) {
                os << pad << "    ";
                if (it.labels.empty()) {
                    os << "default";
                } else {
                    for (size_t i = 0; i < it.labels.size(); ++i) {
                        if (i)
                            os << ", ";
                        os << expr(*it.labels[i]);
                    }
                }
                os << " :";
                if (it.body) {
                    os << "\n";
                    stmt(os, *it.body, ind + 2);
                } else {
                    os << " ;\n";
                }
            }
            os << pad << "endcase\n";
            break;
          }
          case NodeKind::For: {
            auto *f = s.as<For>();
            os << pad << "for (" << plainAssign(*f->init) << "; "
               << expr(*f->cond) << "; " << plainAssign(*f->step)
               << ")\n";
            stmtOrNull(os, f->body.get(), ind + 1);
            break;
          }
          case NodeKind::While: {
            auto *w = s.as<While>();
            os << pad << "while (" << expr(*w->cond) << ")\n";
            stmtOrNull(os, w->body.get(), ind + 1);
            break;
          }
          case NodeKind::Repeat: {
            auto *r = s.as<Repeat>();
            os << pad << "repeat (" << expr(*r->count) << ")\n";
            stmtOrNull(os, r->body.get(), ind + 1);
            break;
          }
          case NodeKind::Forever: {
            auto *f = s.as<Forever>();
            os << pad << "forever\n";
            stmtOrNull(os, f->body.get(), ind + 1);
            break;
          }
          case NodeKind::Assign: {
            auto *a = s.as<Assign>();
            os << pad << expr(*a->lhs)
               << (a->blocking ? " = " : " <= ");
            if (a->delay)
                os << "#" << expr(*a->delay) << " ";
            os << expr(*a->rhs) << ";\n";
            break;
          }
          case NodeKind::DelayStmt: {
            auto *d = s.as<DelayStmt>();
            os << pad << "#" << expr(*d->delay);
            if (d->stmt) {
                os << "\n";
                stmt(os, *d->stmt, ind + 1);
            } else {
                os << ";\n";
            }
            break;
          }
          case NodeKind::EventCtrl: {
            auto *e = s.as<EventCtrl>();
            os << pad << "@";
            if (e->star) {
                os << "(*)";
            } else {
                os << "(";
                for (size_t i = 0; i < e->events.size(); ++i) {
                    if (i)
                        os << " or ";
                    const EventExpr &ev = e->events[i];
                    if (ev.edge == Edge::Pos)
                        os << "posedge ";
                    else if (ev.edge == Edge::Neg)
                        os << "negedge ";
                    os << expr(*ev.signal);
                }
                os << ")";
            }
            if (e->stmt) {
                os << "\n";
                stmt(os, *e->stmt, ind + 1);
            } else {
                os << ";\n";
            }
            break;
          }
          case NodeKind::Wait: {
            auto *w = s.as<Wait>();
            os << pad << "wait (" << expr(*w->cond) << ")";
            if (w->stmt) {
                os << "\n";
                stmt(os, *w->stmt, ind + 1);
            } else {
                os << ";\n";
            }
            break;
          }
          case NodeKind::TriggerEvent:
            os << pad << "-> " << s.as<TriggerEvent>()->name << ";\n";
            break;
          case NodeKind::SysTask: {
            auto *t = s.as<SysTask>();
            os << pad << t->name;
            if (t->format || !t->args.empty()) {
                os << "(";
                bool first = true;
                if (t->format) {
                    os << '"' << escape(*t->format) << '"';
                    first = false;
                }
                for (auto &a : t->args) {
                    if (!first)
                        os << ", ";
                    os << expr(*a);
                    first = false;
                }
                os << ")";
            }
            os << ";\n";
            break;
          }
          case NodeKind::NullStmt:
            os << pad << ";\n";
            break;
          default:
            os << pad << "/*?stmt?*/;\n";
        }
    }

    void
    stmtOrNull(std::ostream &os, const Stmt *s, int ind)
    {
        if (s) {
            stmt(os, *s, ind);
        } else {
            os << std::string(static_cast<size_t>(ind) * 4, ' ')
               << ";\n";
        }
    }

    std::string
    plainAssign(const Stmt &s)
    {
        auto *a = s.as<Assign>();
        return expr(*a->lhs) + (a->blocking ? " = " : " <= ") +
               expr(*a->rhs);
    }

    static std::string
    escape(const std::string &raw)
    {
        std::string out;
        for (char c : raw) {
            if (c == '\n')
                out += "\\n";
            else if (c == '\t')
                out += "\\t";
            else if (c == '"')
                out += "\\\"";
            else if (c == '\\')
                out += "\\\\";
            else
                out.push_back(c);
        }
        return out;
    }

    void
    item(std::ostream &os, const Item &it)
    {
        switch (it.kind) {
          case NodeKind::VarDecl: {
            auto *d = it.as<VarDecl>();
            os << "    " << varKindText(d->varKind);
            if (d->isSigned)
                os << " signed";
            if (d->msb)
                os << " [" << expr(*d->msb) << ":" << expr(*d->lsb)
                   << "]";
            os << " " << d->name;
            if (d->arrayFirst)
                os << " [" << expr(*d->arrayFirst) << ":"
                   << expr(*d->arrayLast) << "]";
            if (d->init)
                os << " = " << expr(*d->init);
            os << ";\n";
            break;
          }
          case NodeKind::ContAssign: {
            auto *a = it.as<ContAssign>();
            os << "    assign " << expr(*a->lhs) << " = " << expr(*a->rhs)
               << ";\n";
            break;
          }
          case NodeKind::AlwaysBlock: {
            auto *b = it.as<AlwaysBlock>();
            os << "    always\n";
            stmt(os, *b->body, 2);
            break;
          }
          case NodeKind::InitialBlock: {
            auto *b = it.as<InitialBlock>();
            os << "    initial\n";
            stmt(os, *b->body, 2);
            break;
          }
          case NodeKind::FunctionDecl: {
            auto *f = it.as<FunctionDecl>();
            os << "    function";
            if (f->msb)
                os << " [" << expr(*f->msb) << ":" << expr(*f->lsb)
                   << "]";
            os << " " << f->name << ";\n";
            for (auto &l : f->locals) {
                bool is_input = false;
                for (auto &in : f->inputOrder)
                    is_input |= (in == l->name);
                os << "        "
                   << (is_input
                           ? "input"
                           : varKindText(l->varKind));
                if (l->msb)
                    os << " [" << expr(*l->msb) << ":"
                       << expr(*l->lsb) << "]";
                os << " " << l->name << ";\n";
            }
            stmt(os, *f->body, 2);
            os << "    endfunction\n";
            break;
          }
          case NodeKind::Instance: {
            auto *in = it.as<Instance>();
            os << "    " << in->moduleName << " " << in->instName << " (";
            for (size_t i = 0; i < in->conns.size(); ++i) {
                if (i)
                    os << ", ";
                const PortConn &c = in->conns[i];
                if (!c.port.empty()) {
                    os << "." << c.port << "(";
                    if (c.expr)
                        os << expr(*c.expr);
                    os << ")";
                } else if (c.expr) {
                    os << expr(*c.expr);
                }
            }
            os << ");\n";
            break;
          }
          default:
            os << "    /*?item?*/;\n";
        }
    }

    static const char *
    varKindText(VarKind k)
    {
        switch (k) {
          case VarKind::Wire: return "wire";
          case VarKind::Reg: return "reg";
          case VarKind::Integer: return "integer";
          case VarKind::Parameter: return "parameter";
          case VarKind::Localparam: return "localparam";
          case VarKind::Event: return "event";
        }
        return "?";
    }

    void
    module(std::ostream &os, const Module &m)
    {
        os << "module " << m.name;
        if (!m.ports.empty()) {
            os << " (";
            for (size_t i = 0; i < m.ports.size(); ++i) {
                if (i)
                    os << ", ";
                os << m.ports[i].name;
            }
            os << ")";
        }
        os << ";\n";
        // Print explicit direction declarations for every port so the
        // output is valid stand-alone Verilog even when the input used
        // ANSI-style headers.
        for (auto &p : m.ports) {
            const VarDecl *d = m.findDecl(p.name);
            os << "    "
               << (p.dir == PortDir::Input ? "input"
                   : p.dir == PortDir::Output ? "output"
                                              : "inout");
            if (d && d->msb)
                os << " [" << expr(*d->msb) << ":" << expr(*d->lsb)
                   << "]";
            os << " " << p.name << ";\n";
        }
        for (auto &it : m.items) {
            // Port-direction decls were already emitted above; print the
            // reg/wire aspect of port declarations too (width included),
            // except plain wire ports which are implied.
            if (it->kind == NodeKind::VarDecl) {
                auto *d = it->as<VarDecl>();
                if (m.portDir(d->name)) {
                    if (d->varKind == VarKind::Reg) {
                        os << "    reg";
                        if (d->msb)
                            os << " [" << expr(*d->msb) << ":"
                               << expr(*d->lsb) << "]";
                        os << " " << d->name << ";\n";
                    }
                    continue;
                }
            }
            item(os, *it);
        }
        os << "endmodule\n";
    }
};

} // namespace

std::string
printExpr(const Expr &e)
{
    PrintVisitor v;
    return v.expr(e);
}

std::string
printStmt(const Stmt &s, int indent)
{
    PrintVisitor v;
    std::ostringstream os;
    v.stmt(os, s, indent);
    return os.str();
}

std::string
print(const Module &mod)
{
    PrintVisitor v;
    std::ostringstream os;
    v.module(os, mod);
    return os.str();
}

std::string
print(const SourceFile &file)
{
    std::ostringstream os;
    for (auto &m : file.modules) {
        PrintVisitor v;
        v.module(os, *m);
        os << "\n";
    }
    return os.str();
}

} // namespace cirfix::verilog
