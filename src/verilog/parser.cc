#include "verilog/parser.h"

#include <unordered_set>

#include "verilog/lexer.h"

namespace cirfix::verilog {

namespace {

const std::unordered_set<std::string> kKeywords = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "integer", "parameter", "localparam", "event", "assign", "always",
    "initial", "begin", "end", "if", "else", "case", "casez", "casex",
    "endcase", "default", "for", "while", "repeat", "forever", "wait",
    "posedge", "negedge", "or", "and", "not", "signed", "deassign",
    "function", "endfunction", "task", "endtask", "generate",
    "endgenerate", "genvar",
};

class Parser
{
  public:
    explicit Parser(const std::string &source) : toks_(lex(source)) {}

    std::unique_ptr<SourceFile>
    parseFile()
    {
        auto file = std::make_unique<SourceFile>();
        while (!at(Tok::End)) {
            expectKeyword("module");
            file->modules.push_back(parseModule());
        }
        for (auto &mod : file->modules)
            fillSpans(*mod);
        numberNodes(*file);
        return file;
    }

  private:
    std::vector<Token> toks_;
    size_t pos_ = 0;

    const Token &peek(size_t off = 0) const
    {
        size_t i = pos_ + off;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    const Token &take() { return toks_[pos_ < toks_.size() - 1 ? pos_++
                                                               : pos_]; }
    bool at(Tok k) const { return peek().kind == k; }
    bool atPunct(const std::string &p) const { return peek().isPunct(p); }
    bool atKeyword(const std::string &k) const
    {
        return peek().isKeyword(k);
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ParseError("line " + std::to_string(peek().line) + ":" +
                         std::to_string(peek().col) + ": " + msg +
                         " (got '" + peek().text + "')");
    }

    void
    expectPunct(const std::string &p)
    {
        if (!atPunct(p))
            fail("expected '" + p + "'");
        take();
    }

    void
    expectKeyword(const std::string &k)
    {
        if (!atKeyword(k))
            fail("expected '" + k + "'");
        take();
    }

    bool
    acceptPunct(const std::string &p)
    {
        if (atPunct(p)) {
            take();
            return true;
        }
        return false;
    }

    bool
    acceptKeyword(const std::string &k)
    {
        if (atKeyword(k)) {
            take();
            return true;
        }
        return false;
    }

    std::string
    expectIdent()
    {
        if (!at(Tok::Ident) || kKeywords.count(peek().text))
            fail("expected identifier");
        return take().text;
    }

    template <typename T>
    std::unique_ptr<T>
    mk()
    {
        auto n = std::make_unique<T>();
        n->line = peek().line;
        n->span.line = peek().line;
        n->span.col = peek().col;
        return n;
    }

    /** Stamp @p n's span end from the most recently consumed token. */
    void
    closeSpanRef(Node &n)
    {
        const Token &prev = toks_[pos_ > 0 ? pos_ - 1 : 0];
        n.span.endLine = prev.endLine;
        n.span.endCol = prev.endCol;
    }

    template <typename T>
    std::unique_ptr<T>
    closeSpan(std::unique_ptr<T> n)
    {
        closeSpanRef(*n);
        return n;
    }

    // ----------------------------------------------------------------
    // Modules
    // ----------------------------------------------------------------

    std::unique_ptr<Module>
    parseModule()
    {
        auto mod = mk<Module>();
        mod->name = expectIdent();
        if (acceptPunct("(")) {
            if (!atPunct(")"))
                parsePortList(*mod);
            expectPunct(")");
        }
        expectPunct(";");
        while (!acceptKeyword("endmodule")) {
            if (at(Tok::End))
                fail("unexpected end of file in module body");
            size_t before = mod->items.size();
            parseItem(*mod);
            // Multi-declarator items share the span of the whole item.
            for (size_t i = before; i < mod->items.size(); ++i)
                closeSpanRef(*mod->items[i]);
        }
        return closeSpan(std::move(mod));
    }

    /**
     * Post-parse pass: nodes built without explicit span bookkeeping
     * inherit a begin from Node::line and an end from their children,
     * so every parsed node ends up with a usable (if sometimes
     * conservative) range.
     */
    static void
    fillSpans(Node &n)
    {
        n.forEachChild([&](Node *c) {
            if (!c)
                return;
            fillSpans(*c);
            if (c->span.endLine > n.span.endLine ||
                (c->span.endLine == n.span.endLine &&
                 c->span.endCol > n.span.endCol)) {
                n.span.endLine = c->span.endLine;
                n.span.endCol = c->span.endCol;
            }
        });
        if (n.span.line == 0 && n.line > 0) {
            n.span.line = n.line;
            n.span.col = 1;
        }
        if (n.span.endLine == 0) {
            n.span.endLine = n.span.line;
            n.span.endCol = n.span.col;
        }
    }

    static PortDir
    dirOf(const std::string &kw)
    {
        if (kw == "input")
            return PortDir::Input;
        if (kw == "output")
            return PortDir::Output;
        return PortDir::Inout;
    }

    void
    parsePortList(Module &mod)
    {
        // Either a plain name list (traditional) or ANSI declarations.
        for (;;) {
            if (atKeyword("input") || atKeyword("output") ||
                atKeyword("inout")) {
                parseAnsiPortGroup(mod);
            } else {
                Port p;
                p.name = expectIdent();
                p.dir = PortDir::Input;  // fixed up by body declarations
                mod.ports.push_back(p);
            }
            if (!acceptPunct(","))
                break;
        }
    }

    void
    parseAnsiPortGroup(Module &mod)
    {
        PortDir dir = dirOf(take().text);
        VarKind vk = VarKind::Wire;
        if (acceptKeyword("reg"))
            vk = VarKind::Reg;
        else
            acceptKeyword("wire");
        bool is_signed = acceptKeyword("signed");
        ExprPtr msb, lsb;
        parseOptRange(msb, lsb);
        for (;;) {
            auto decl = mk<VarDecl>();
            decl->varKind = vk;
            decl->isSigned = is_signed;
            decl->name = expectIdent();
            decl->msb = msb ? msb->cloneExpr() : nullptr;
            decl->lsb = lsb ? lsb->cloneExpr() : nullptr;
            mod.ports.push_back(Port{decl->name, dir});
            mod.items.push_back(std::move(decl));
            // A following "," may introduce either another name in this
            // group or a new direction group; peek to decide.
            if (atPunct(",") &&
                !(peek(1).isKeyword("input") || peek(1).isKeyword("output")
                  || peek(1).isKeyword("inout"))) {
                take();
                continue;
            }
            break;
        }
    }

    /** Parse "[msb:lsb]" if present. */
    void
    parseOptRange(ExprPtr &msb, ExprPtr &lsb)
    {
        if (acceptPunct("[")) {
            msb = parseExpr();
            expectPunct(":");
            lsb = parseExpr();
            expectPunct("]");
        }
    }

    // ----------------------------------------------------------------
    // Module items
    // ----------------------------------------------------------------

    void
    parseItem(Module &mod)
    {
        if (atKeyword("input") || atKeyword("output") ||
            atKeyword("inout")) {
            parsePortDecl(mod);
        } else if (atKeyword("wire") || atKeyword("reg") ||
                   atKeyword("integer") || atKeyword("event")) {
            parseNetDecl(mod);
        } else if (atKeyword("parameter") || atKeyword("localparam")) {
            parseParamDecl(mod);
        } else if (acceptKeyword("assign")) {
            for (;;) {
                auto ca = mk<ContAssign>();
                ca->lhs = parseLValue();
                expectPunct("=");
                ca->rhs = parseExpr();
                mod.items.push_back(std::move(ca));
                if (!acceptPunct(","))
                    break;
            }
            expectPunct(";");
        } else if (atKeyword("function")) {
            parseFunction(mod);
        } else if (atKeyword("always")) {
            auto blk = mk<AlwaysBlock>();
            take();
            blk->body = parseStmt();
            mod.items.push_back(std::move(blk));
        } else if (atKeyword("initial")) {
            auto blk = mk<InitialBlock>();
            take();
            blk->body = parseStmt();
            mod.items.push_back(std::move(blk));
        } else if (at(Tok::Ident) && !kKeywords.count(peek().text)) {
            parseInstance(mod);
        } else {
            fail("expected module item");
        }
    }

    void
    parsePortDecl(Module &mod)
    {
        PortDir dir = dirOf(take().text);
        VarKind vk = VarKind::Wire;
        if (acceptKeyword("reg"))
            vk = VarKind::Reg;
        else
            acceptKeyword("wire");
        bool is_signed = acceptKeyword("signed");
        ExprPtr msb, lsb;
        parseOptRange(msb, lsb);
        for (;;) {
            auto decl = mk<VarDecl>();
            decl->varKind = vk;
            decl->isSigned = is_signed;
            decl->name = expectIdent();
            decl->msb = msb ? msb->cloneExpr() : nullptr;
            decl->lsb = lsb ? lsb->cloneExpr() : nullptr;
            // Traditional style: fix up the direction of the listed port
            // (or add the port if the header omitted it).
            bool found = false;
            for (auto &p : mod.ports) {
                if (p.name == decl->name) {
                    p.dir = dir;
                    found = true;
                }
            }
            if (!found)
                mod.ports.push_back(Port{decl->name, dir});
            mod.items.push_back(std::move(decl));
            if (!acceptPunct(","))
                break;
        }
        expectPunct(";");
    }

    void
    parseNetDecl(Module &mod)
    {
        std::string kw = take().text;
        VarKind vk = kw == "wire" ? VarKind::Wire
                     : kw == "reg" ? VarKind::Reg
                     : kw == "integer" ? VarKind::Integer
                                       : VarKind::Event;
        bool is_signed = acceptKeyword("signed");
        ExprPtr msb, lsb;
        if (vk != VarKind::Event && vk != VarKind::Integer)
            parseOptRange(msb, lsb);
        for (;;) {
            auto decl = mk<VarDecl>();
            decl->varKind = vk;
            decl->isSigned = is_signed;
            decl->name = expectIdent();
            decl->msb = msb ? msb->cloneExpr() : nullptr;
            decl->lsb = lsb ? lsb->cloneExpr() : nullptr;
            if (vk == VarKind::Reg && acceptPunct("[")) {
                decl->arrayFirst = parseExpr();
                expectPunct(":");
                decl->arrayLast = parseExpr();
                expectPunct("]");
            }
            if (acceptPunct("="))
                decl->init = parseExpr();
            // An existing port with this name keeps its direction but
            // gains reg-ness via this declaration: nothing to update
            // here because elaboration looks decls up by name.
            mod.items.push_back(std::move(decl));
            if (!acceptPunct(","))
                break;
        }
        expectPunct(";");
    }

    void
    parseParamDecl(Module &mod)
    {
        VarKind vk = take().text == "parameter" ? VarKind::Parameter
                                                : VarKind::Localparam;
        ExprPtr msb, lsb;
        parseOptRange(msb, lsb);
        for (;;) {
            auto decl = mk<VarDecl>();
            decl->varKind = vk;
            decl->msb = msb ? msb->cloneExpr() : nullptr;
            decl->lsb = lsb ? lsb->cloneExpr() : nullptr;
            decl->name = expectIdent();
            expectPunct("=");
            decl->init = parseExpr();
            mod.items.push_back(std::move(decl));
            if (!acceptPunct(","))
                break;
        }
        expectPunct(";");
    }

    void
    parseFunction(Module &mod)
    {
        auto fn = mk<FunctionDecl>();
        expectKeyword("function");
        acceptKeyword("signed");
        parseOptRange(fn->msb, fn->lsb);
        fn->name = expectIdent();
        expectPunct(";");
        // Declarations: inputs, regs, integers.
        while (atKeyword("input") || atKeyword("reg") ||
               atKeyword("integer")) {
            bool is_input = atKeyword("input");
            std::string kw = take().text;
            VarKind vk = kw == "integer" ? VarKind::Integer
                                         : VarKind::Reg;
            if (is_input)
                acceptKeyword("reg");
            acceptKeyword("signed");
            ExprPtr msb, lsb;
            if (vk != VarKind::Integer)
                parseOptRange(msb, lsb);
            for (;;) {
                auto decl = mk<VarDecl>();
                decl->varKind = vk;
                decl->name = expectIdent();
                decl->msb = msb ? msb->cloneExpr() : nullptr;
                decl->lsb = lsb ? lsb->cloneExpr() : nullptr;
                if (is_input)
                    fn->inputOrder.push_back(decl->name);
                fn->locals.push_back(std::move(decl));
                if (!acceptPunct(","))
                    break;
            }
            expectPunct(";");
        }
        fn->body = parseStmt();
        expectKeyword("endfunction");
        if (fn->inputOrder.empty())
            fail("function '" + fn->name + "' has no inputs");
        mod.items.push_back(std::move(fn));
    }

    void
    parseInstance(Module &mod)
    {
        auto inst = mk<Instance>();
        inst->moduleName = expectIdent();
        inst->instName = expectIdent();
        expectPunct("(");
        if (!atPunct(")")) {
            for (;;) {
                PortConn conn;
                if (acceptPunct(".")) {
                    conn.port = expectIdent();
                    expectPunct("(");
                    if (!atPunct(")"))
                        conn.expr = parseExpr();
                    expectPunct(")");
                } else {
                    conn.expr = parseExpr();
                }
                inst->conns.push_back(std::move(conn));
                if (!acceptPunct(","))
                    break;
            }
        }
        expectPunct(")");
        expectPunct(";");
        mod.items.push_back(std::move(inst));
    }

    // ----------------------------------------------------------------
    // Statements
    // ----------------------------------------------------------------

    /** Parse a statement; never returns null. */
    StmtPtr
    parseStmt()
    {
        return closeSpan(parseStmtInner());
    }

    StmtPtr
    parseStmtInner()
    {
        if (atKeyword("begin"))
            return parseSeqBlock();
        if (atKeyword("if"))
            return parseIf();
        if (atKeyword("case") || atKeyword("casez") || atKeyword("casex"))
            return parseCase();
        if (atKeyword("for"))
            return parseFor();
        if (atKeyword("while"))
            return parseWhile();
        if (atKeyword("repeat"))
            return parseRepeat();
        if (atKeyword("forever")) {
            auto s = mk<Forever>();
            take();
            s->body = parseStmt();
            return s;
        }
        if (atPunct("#"))
            return parseDelayStmt();
        if (atPunct("@"))
            return parseEventCtrl();
        if (atKeyword("wait"))
            return parseWait();
        if (atPunct("->")) {
            auto line = peek().line;
            auto col = peek().col;
            take();
            auto s = std::make_unique<TriggerEvent>(expectIdent());
            s->line = line;
            s->span.line = line;
            s->span.col = col;
            expectPunct(";");
            return s;
        }
        if (at(Tok::SysIdent))
            return parseSysTask();
        if (atPunct(";")) {
            auto s = mk<NullStmt>();
            take();
            return s;
        }
        return parseAssignStmt();
    }

    /** After # or @, parse either ';' (no statement) or a statement. */
    StmtPtr
    parseOptStmt()
    {
        if (acceptPunct(";"))
            return nullptr;
        return parseStmt();
    }

    StmtPtr
    parseSeqBlock()
    {
        auto blk = mk<SeqBlock>();
        expectKeyword("begin");
        if (acceptPunct(":"))
            blk->name = expectIdent();
        while (!acceptKeyword("end")) {
            if (at(Tok::End))
                fail("unexpected end of file in begin/end block");
            blk->stmts.push_back(parseStmt());
        }
        return blk;
    }

    StmtPtr
    parseIf()
    {
        auto s = mk<If>();
        expectKeyword("if");
        expectPunct("(");
        s->cond = parseExpr();
        expectPunct(")");
        s->thenStmt = parseStmt();
        if (acceptKeyword("else"))
            s->elseStmt = parseStmt();
        return s;
    }

    StmtPtr
    parseCase()
    {
        auto s = mk<Case>();
        std::string kw = take().text;
        s->type = kw == "case" ? CaseType::Case
                  : kw == "casez" ? CaseType::CaseZ
                                  : CaseType::CaseX;
        expectPunct("(");
        s->subject = parseExpr();
        expectPunct(")");
        while (!acceptKeyword("endcase")) {
            if (at(Tok::End))
                fail("unexpected end of file in case statement");
            CaseItem item;
            if (acceptKeyword("default")) {
                acceptPunct(":");
            } else {
                for (;;) {
                    item.labels.push_back(parseExpr());
                    if (!acceptPunct(","))
                        break;
                }
                expectPunct(":");
            }
            if (atPunct(";")) {
                take();  // empty arm
            } else {
                item.body = parseStmt();
            }
            s->items.push_back(std::move(item));
        }
        return s;
    }

    StmtPtr
    parseFor()
    {
        auto s = mk<For>();
        expectKeyword("for");
        expectPunct("(");
        s->init = parsePlainAssign();
        expectPunct(";");
        s->cond = parseExpr();
        expectPunct(";");
        s->step = parsePlainAssign();
        expectPunct(")");
        s->body = parseStmt();
        return s;
    }

    /** "a = expr" with no trailing ';' (for-loop init/step). */
    StmtPtr
    parsePlainAssign()
    {
        auto a = mk<Assign>();
        a->lhs = parseLValue();
        if (acceptPunct("<="))
            a->blocking = false;
        else
            expectPunct("=");
        a->rhs = parseExpr();
        return a;
    }

    StmtPtr
    parseWhile()
    {
        auto s = mk<While>();
        expectKeyword("while");
        expectPunct("(");
        s->cond = parseExpr();
        expectPunct(")");
        s->body = parseStmt();
        return s;
    }

    StmtPtr
    parseRepeat()
    {
        auto s = mk<Repeat>();
        expectKeyword("repeat");
        expectPunct("(");
        s->count = parseExpr();
        expectPunct(")");
        s->body = parseStmt();
        return s;
    }

    StmtPtr
    parseDelayStmt()
    {
        auto s = mk<DelayStmt>();
        expectPunct("#");
        s->delay = parseDelayValue();
        s->stmt = parseOptStmt();
        return s;
    }

    /** Delay values are primaries: #5, #N, #(a+b). */
    ExprPtr
    parseDelayValue()
    {
        if (acceptPunct("(")) {
            ExprPtr e = parseExpr();
            expectPunct(")");
            return e;
        }
        return parsePrimary();
    }

    StmtPtr
    parseEventCtrl()
    {
        auto s = mk<EventCtrl>();
        expectPunct("@");
        if (acceptPunct("*")) {
            s->star = true;
        } else if (acceptPunct("(")) {
            if (acceptPunct("*")) {
                s->star = true;
            } else {
                for (;;) {
                    EventExpr e;
                    if (acceptKeyword("posedge"))
                        e.edge = Edge::Pos;
                    else if (acceptKeyword("negedge"))
                        e.edge = Edge::Neg;
                    e.signal = parseExpr();
                    s->events.push_back(std::move(e));
                    if (acceptKeyword("or") || acceptPunct(","))
                        continue;
                    break;
                }
            }
            expectPunct(")");
        } else {
            // "@ident" named-event shorthand
            EventExpr e;
            e.signal = std::make_unique<Ident>(expectIdent());
            s->events.push_back(std::move(e));
        }
        s->stmt = parseOptStmt();
        return s;
    }

    StmtPtr
    parseWait()
    {
        auto s = mk<Wait>();
        expectKeyword("wait");
        expectPunct("(");
        s->cond = parseExpr();
        expectPunct(")");
        s->stmt = parseOptStmt();
        return s;
    }

    StmtPtr
    parseSysTask()
    {
        auto s = mk<SysTask>();
        s->name = take().text;
        if (acceptPunct("(")) {
            if (!atPunct(")")) {
                bool first = true;
                for (;;) {
                    if (first && at(Tok::String)) {
                        s->format = take().text;
                    } else {
                        s->args.push_back(parseExpr());
                    }
                    first = false;
                    if (!acceptPunct(","))
                        break;
                }
            }
            expectPunct(")");
        }
        expectPunct(";");
        return s;
    }

    StmtPtr
    parseAssignStmt()
    {
        auto a = mk<Assign>();
        a->lhs = parseLValue();
        if (acceptPunct("<="))
            a->blocking = false;
        else if (acceptPunct("="))
            a->blocking = true;
        else
            fail("expected '=' or '<='");
        if (acceptPunct("#"))
            a->delay = parseDelayValue();
        a->rhs = parseExpr();
        expectPunct(";");
        return a;
    }

    /** Lvalues: ident, ident[i], ident[m:l], or a concat of lvalues. */
    ExprPtr
    parseLValue()
    {
        int line = peek().line;
        int col = peek().col;
        auto begin = [&](auto node) {
            node->line = line;
            node->span.line = line;
            node->span.col = col;
            return closeSpan(std::move(node));
        };
        if (acceptPunct("{")) {
            auto c = std::make_unique<Concat>();
            for (;;) {
                c->parts.push_back(parseLValue());
                if (!acceptPunct(","))
                    break;
            }
            expectPunct("}");
            return begin(std::move(c));
        }
        std::string name = expectIdent();
        if (acceptPunct("[")) {
            ExprPtr first = parseExpr();
            if (acceptPunct(":")) {
                ExprPtr second = parseExpr();
                expectPunct("]");
                return begin(std::make_unique<RangeSel>(
                    name, std::move(first), std::move(second)));
            }
            expectPunct("]");
            return begin(std::make_unique<Index>(name, std::move(first)));
        }
        return begin(std::make_unique<Ident>(name));
    }

    // ----------------------------------------------------------------
    // Expressions (precedence climbing)
    // ----------------------------------------------------------------

    ExprPtr
    parseExpr()
    {
        return parseTernary();
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (acceptPunct("?")) {
            ExprPtr t = parseTernary();
            expectPunct(":");
            ExprPtr e = parseTernary();
            Span first = cond->span;
            int line = cond->line;
            auto n = std::make_unique<Ternary>(std::move(cond),
                                               std::move(t), std::move(e));
            n->line = line;
            n->span.line = first.line;
            n->span.col = first.col;
            return closeSpan(std::move(n));
        }
        return cond;
    }

    struct OpInfo
    {
        BinaryOp op;
        int prec;
    };

    /** Binary operator lookup; higher prec binds tighter. */
    static bool
    binaryOp(const Token &t, OpInfo &info)
    {
        if (t.kind != Tok::Punct)
            return false;
        const std::string &s = t.text;
        struct Entry
        {
            const char *text;
            BinaryOp op;
            int prec;
        };
        static const Entry table[] = {
            {"||", BinaryOp::LogOr, 1},
            {"&&", BinaryOp::LogAnd, 2},
            {"|", BinaryOp::BitOr, 3},
            {"^", BinaryOp::BitXor, 4},
            {"~^", BinaryOp::BitXnor, 4},
            {"^~", BinaryOp::BitXnor, 4},
            {"&", BinaryOp::BitAnd, 5},
            {"==", BinaryOp::Eq, 6},
            {"!=", BinaryOp::Neq, 6},
            {"===", BinaryOp::CaseEq, 6},
            {"!==", BinaryOp::CaseNeq, 6},
            {"<", BinaryOp::Lt, 7},
            {"<=", BinaryOp::Le, 7},
            {">", BinaryOp::Gt, 7},
            {">=", BinaryOp::Ge, 7},
            {"<<", BinaryOp::Shl, 8},
            {">>", BinaryOp::Shr, 8},
            {"+", BinaryOp::Add, 9},
            {"-", BinaryOp::Sub, 9},
            {"*", BinaryOp::Mul, 10},
            {"/", BinaryOp::Div, 10},
            {"%", BinaryOp::Mod, 10},
            {"**", BinaryOp::Pow, 11},
        };
        for (const auto &e : table) {
            if (s == e.text) {
                info = {e.op, e.prec};
                return true;
            }
        }
        return false;
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            OpInfo info;
            if (!binaryOp(peek(), info) || info.prec < min_prec)
                break;
            int line = peek().line;
            take();
            ExprPtr rhs = parseBinary(info.prec + 1);
            Span first = lhs->span;
            auto n = std::make_unique<Binary>(info.op, std::move(lhs),
                                              std::move(rhs));
            n->line = line;
            n->span.line = first.line;
            n->span.col = first.col;
            lhs = closeSpan(std::move(n));
        }
        return lhs;
    }

    ExprPtr
    parseUnary()
    {
        struct Entry
        {
            const char *text;
            UnaryOp op;
        };
        static const Entry table[] = {
            {"+", UnaryOp::Plus},   {"-", UnaryOp::Minus},
            {"!", UnaryOp::Not},    {"~", UnaryOp::BitNot},
            {"&", UnaryOp::RedAnd}, {"|", UnaryOp::RedOr},
            {"^", UnaryOp::RedXor}, {"~&", UnaryOp::RedNand},
            {"~|", UnaryOp::RedNor}, {"~^", UnaryOp::RedXnor},
            {"^~", UnaryOp::RedXnor},
        };
        if (peek().kind == Tok::Punct) {
            for (const auto &e : table) {
                if (peek().text == e.text) {
                    int line = peek().line;
                    int col = peek().col;
                    take();
                    auto n = std::make_unique<Unary>(e.op, parseUnary());
                    n->line = line;
                    n->span.line = line;
                    n->span.col = col;
                    return closeSpan(std::move(n));
                }
            }
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        int line = peek().line;
        int col = peek().col;
        auto begin = [&](auto node) -> ExprPtr {
            node->line = line;
            node->span.line = line;
            node->span.col = col;
            return closeSpan(std::move(node));
        };
        if (at(Tok::Number)) {
            const Token &t = take();
            auto n = std::make_unique<Number>(t.value, t.base);
            n->sized = t.sized;
            return begin(std::move(n));
        }
        if (at(Tok::SysIdent)) {
            auto n = std::make_unique<SysFuncCall>(take().text);
            if (acceptPunct("(")) {
                if (!atPunct(")")) {
                    for (;;) {
                        n->args.push_back(parseExpr());
                        if (!acceptPunct(","))
                            break;
                    }
                }
                expectPunct(")");
            }
            return begin(std::move(n));
        }
        if (acceptPunct("(")) {
            ExprPtr e = parseExpr();
            expectPunct(")");
            return e;
        }
        if (acceptPunct("{")) {
            // Replication {n{v}} or concatenation {a, b, ...}.
            ExprPtr first = parseExpr();
            if (atPunct("{")) {
                take();
                ExprPtr value = parseExpr();
                expectPunct("}");
                expectPunct("}");
                return begin(std::make_unique<Repl>(std::move(first),
                                                    std::move(value)));
            }
            auto c = std::make_unique<Concat>();
            c->parts.push_back(std::move(first));
            while (acceptPunct(","))
                c->parts.push_back(parseExpr());
            expectPunct("}");
            return begin(std::move(c));
        }
        if (at(Tok::Ident) && !kKeywords.count(peek().text)) {
            std::string name = take().text;
            if (atPunct("(")) {
                // User-defined function call.
                take();
                auto call = std::make_unique<FuncCall>(name);
                if (!atPunct(")")) {
                    for (;;) {
                        call->args.push_back(parseExpr());
                        if (!acceptPunct(","))
                            break;
                    }
                }
                expectPunct(")");
                return begin(std::move(call));
            }
            if (acceptPunct("[")) {
                ExprPtr first = parseExpr();
                if (acceptPunct(":")) {
                    ExprPtr second = parseExpr();
                    expectPunct("]");
                    return begin(std::make_unique<RangeSel>(
                        name, std::move(first), std::move(second)));
                }
                expectPunct("]");
                return begin(
                    std::make_unique<Index>(name, std::move(first)));
            }
            return begin(std::make_unique<Ident>(name));
        }
        fail("expected expression");
    }
};

} // namespace

std::unique_ptr<SourceFile>
parse(const std::string &source)
{
    Parser p(source);
    return p.parseFile();
}

} // namespace cirfix::verilog
