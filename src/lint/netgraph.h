#pragma once

/**
 * @file
 * Structural analyses shared by the lint checks: per-module driver
 * maps and the zero-delay combinational dependency graph.
 *
 * Everything here is computed from the AST alone (no elaboration, no
 * instance flattening): each module is analyzed against its own
 * declarations, and instance connections are resolved against the
 * instantiated module's port list when it exists in the same source
 * file.
 */

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "verilog/ast.h"

namespace cirfix::lint {

/** One place a signal is driven from. */
struct DriverSite
{
    enum class Kind {
        Continuous,      //!< assign lhs = ...
        Blocking,        //!< lhs = ... inside an always block
        NonBlocking,     //!< lhs <= ... inside an always block
        InstanceOutput,  //!< connected to an instance output port
        Initial,         //!< assigned inside an initial block
    };

    Kind kind = Kind::Continuous;
    /** The assignment / connection expression (for spans). */
    const verilog::Node *node = nullptr;
    /** The module item containing the drive (always/initial/...). */
    const verilog::Item *container = nullptr;
    /** True when the assignment carries a #delay. */
    bool delayed = false;
    /** Bit range driven; wholeSignal when not a constant part select. */
    bool wholeSignal = true;
    long msb = 0;
    long lsb = 0;

    bool overlaps(const DriverSite &o) const;
};

/** Per-module symbol/driver summary used by every check. */
struct ModuleInfo
{
    const verilog::Module *mod = nullptr;
    /**
     * Declarations by name. Later declarations refine earlier ones
     * ("output q;" then "reg q;"), matching validate()'s scope rules.
     */
    std::map<std::string, const verilog::VarDecl *> decls;
    /** Parameter/localparam values that fold to constants. */
    std::map<std::string, long> params;
    /** Declared names of kind Event. */
    std::map<std::string, const verilog::VarDecl *> events;
    /** Function declarations by name. */
    std::map<std::string, const verilog::FunctionDecl *> functions;
    /** Driver sites per signal name, in source order. */
    std::map<std::string, std::vector<DriverSite>> drivers;

    bool isReg(const std::string &name) const;
    /** True for 1-D memories ("reg [7:0] mem [0:15]"). */
    bool isArray(const std::string &name) const;
    /** Resolved bit width of a declared name (nullopt if unknown);
     *  for arrays this is the element width. */
    std::optional<int> width(const std::string &name) const;
};

ModuleInfo analyzeModule(const verilog::Module &mod,
                         const verilog::SourceFile &file);

/**
 * Fold @p e to a constant using @p params for identifier values.
 * Handles the operators that appear in declarations and part selects.
 */
std::optional<long> constEval(const verilog::Expr &e,
                              const std::map<std::string, long> &params);

/**
 * True when @p b is a combinational process: its outermost event
 * control is @* or an all-Level sensitivity list. Edge-triggered and
 * delay-paced processes are sequential and excluded from the
 * zero-delay graph.
 */
bool isCombAlways(const verilog::AlwaysBlock &b);

/**
 * Zero-delay dependency graph of one module: an edge a -> b means a
 * same-timestep change of `a` can re-evaluate an undelayed drive of
 * `b` (continuous assignments plus undelayed assignments inside
 * combinational always blocks, including their dominating branch
 * conditions). Pure copies (`q <= q;`) contribute no edge — they can
 * never change a value, hence never sustain an oscillation.
 */
struct CombGraph
{
    std::vector<std::string> signals;       //!< index -> name
    std::map<std::string, int> index;       //!< name -> index
    std::vector<std::vector<int>> out;      //!< adjacency (deduped)
    /** Representative drive site per signal (first in source order). */
    std::vector<const verilog::Node *> site;

    /**
     * Strongly connected components that can oscillate: size > 1, or
     * a single node with a self edge. Components and their members
     * are in deterministic (index) order.
     */
    std::vector<std::vector<int>> cycles() const;
};

CombGraph buildCombGraph(const verilog::Module &mod);

/** All identifier names read by @p e (no deduplication). */
void collectReads(const verilog::Expr &e, std::vector<std::string> &out);

/** All signal names assigned by lvalue @p e (handles concats). */
void collectTargets(const verilog::Expr &e, std::vector<std::string> &out);

} // namespace cirfix::lint
