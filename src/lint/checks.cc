#include "lint/checks.h"

#include <algorithm>
#include <set>

namespace cirfix::lint {

using namespace verilog;

void
CheckContext::emit(const char *check, std::string signal,
                   const Node *where, std::string message)
{
    Diagnostic d;
    d.check = check;
    d.module = mod.name;
    d.signal = std::move(signal);
    if (where)
        d.span = where->span;
    d.message = std::move(message);
    out.push_back(std::move(d));
}

// --------------------------------------------------------------------
// Driver conflicts
// --------------------------------------------------------------------

void
checkDrivers(CheckContext &cx)
{
    // duplicate-decl: the same name declared twice at the same kind.
    // (A wire redeclared as reg is the legal port-refinement idiom and
    // is not flagged.)
    std::map<std::string, std::vector<const VarDecl *>> byName;
    for (auto &it : cx.mod.items)
        if (it->kind == NodeKind::VarDecl)
            byName[it->as<VarDecl>()->name].push_back(it->as<VarDecl>());
    for (auto &[name, decls] : byName) {
        for (size_t i = 1; i < decls.size(); ++i) {
            if (decls[i]->varKind == decls[i - 1]->varKind) {
                cx.emit("duplicate-decl", name, decls[i],
                        "'" + name + "' is declared more than once");
                break;
            }
        }
    }

    for (auto &[name, sites] : cx.info.drivers) {
        auto decl = cx.info.decls.find(name);
        if (decl == cx.info.decls.end())
            continue;

        if (!cx.info.isReg(name)) {
            // multi-driven-net: a wire with overlapping structural
            // drivers resolves to X in real hardware; there is no
            // priority between continuous assigns.
            std::vector<const DriverSite *> structural;
            for (auto &s : sites)
                if (s.kind == DriverSite::Kind::Continuous ||
                    s.kind == DriverSite::Kind::InstanceOutput)
                    structural.push_back(&s);
            bool conflict = false;
            for (size_t i = 0; i < structural.size() && !conflict; ++i)
                for (size_t j = i + 1; j < structural.size(); ++j)
                    if (structural[i]->overlaps(*structural[j])) {
                        conflict = true;
                        break;
                    }
            if (conflict)
                cx.emit("multi-driven-net", name,
                        structural.back()->node,
                        "wire '" + name + "' has " +
                            std::to_string(structural.size()) +
                            " conflicting drivers");
            continue;
        }

        // Register checks consider only always-block drives: initial
        // blocks legitimately preset registers the design also owns.
        std::set<const Item *> always_containers;
        bool blocking = false, nonblocking = false;
        const DriverSite *last = nullptr;
        for (auto &s : sites) {
            if (s.kind == DriverSite::Kind::Blocking ||
                s.kind == DriverSite::Kind::NonBlocking) {
                always_containers.insert(s.container);
                blocking |= s.kind == DriverSite::Kind::Blocking;
                nonblocking |= s.kind == DriverSite::Kind::NonBlocking;
                last = &s;
            }
        }
        if (always_containers.size() > 1)
            cx.emit("multi-driven-reg", name, last->node,
                    "reg '" + name + "' is assigned from " +
                        std::to_string(always_containers.size()) +
                        " always blocks");
        if (blocking && nonblocking)
            cx.emit("mixed-assign", name, last->node,
                    "reg '" + name +
                        "' is written by both blocking (=) and "
                        "non-blocking (<=) assignments");
    }
}

// --------------------------------------------------------------------
// Combinational loops
// --------------------------------------------------------------------

void
checkCombLoops(CheckContext &cx)
{
    CombGraph g = buildCombGraph(cx.mod);
    for (auto &cycle : g.cycles()) {
        std::vector<std::string> names;
        const Node *where = nullptr;
        for (int v : cycle) {
            names.push_back(g.signals[v]);
            if (!where)
                where = g.site[v];
        }
        std::sort(names.begin(), names.end());
        std::string joined;
        for (auto &n : names)
            joined += (joined.empty() ? "" : ",") + n;
        cx.emit("comb-loop", joined, where,
                "zero-delay combinational loop through {" + joined +
                    "}");
    }
}

// --------------------------------------------------------------------
// Process-shape checks
// --------------------------------------------------------------------

namespace {

/**
 * Identifier reads of a statement subtree: rhs and condition reads,
 * plus index expressions of lvalues (the written bits themselves do
 * not count as reads). Sets @p has_timing when the subtree suspends.
 */
void
stmtReads(const Stmt &s, std::vector<std::string> &out, bool &has_timing)
{
    switch (s.kind) {
      case NodeKind::Assign: {
        auto *a = s.as<Assign>();
        collectReads(*a->rhs, out);
        if (a->lhs->kind == NodeKind::Index)
            collectReads(*a->lhs->as<Index>()->index, out);
        if (a->delay)
            collectReads(*a->delay, out);
        break;
      }
      case NodeKind::SeqBlock:
        for (auto &c : s.as<SeqBlock>()->stmts)
            if (c)
                stmtReads(*c, out, has_timing);
        break;
      case NodeKind::If: {
        auto *i = s.as<If>();
        collectReads(*i->cond, out);
        if (i->thenStmt)
            stmtReads(*i->thenStmt, out, has_timing);
        if (i->elseStmt)
            stmtReads(*i->elseStmt, out, has_timing);
        break;
      }
      case NodeKind::Case: {
        auto *c = s.as<Case>();
        collectReads(*c->subject, out);
        for (auto &item : c->items) {
            for (auto &l : item.labels)
                collectReads(*l, out);
            if (item.body)
                stmtReads(*item.body, out, has_timing);
        }
        break;
      }
      case NodeKind::For: {
        auto *f = s.as<For>();
        if (f->init)
            stmtReads(*f->init, out, has_timing);
        collectReads(*f->cond, out);
        if (f->step)
            stmtReads(*f->step, out, has_timing);
        if (f->body)
            stmtReads(*f->body, out, has_timing);
        break;
      }
      case NodeKind::While: {
        auto *w = s.as<While>();
        collectReads(*w->cond, out);
        if (w->body)
            stmtReads(*w->body, out, has_timing);
        break;
      }
      case NodeKind::Repeat: {
        auto *r = s.as<Repeat>();
        collectReads(*r->count, out);
        if (r->body)
            stmtReads(*r->body, out, has_timing);
        break;
      }
      case NodeKind::Forever:
        if (s.as<Forever>()->body)
            stmtReads(*s.as<Forever>()->body, out, has_timing);
        break;
      case NodeKind::SysTask:
        for (auto &a : s.as<SysTask>()->args)
            if (a)
                collectReads(*a, out);
        break;
      case NodeKind::DelayStmt:
      case NodeKind::EventCtrl:
      case NodeKind::Wait:
        has_timing = true;
        break;
      default:
        break;
    }
}

/** Signals assigned on *every* path through @p s (path intersection). */
std::set<std::string>
fullyAssigned(const Stmt &s, const CheckContext &cx)
{
    switch (s.kind) {
      case NodeKind::Assign: {
        std::vector<std::string> t;
        collectTargets(*s.as<Assign>()->lhs, t);
        return {t.begin(), t.end()};
      }
      case NodeKind::SeqBlock: {
        std::set<std::string> acc;
        for (auto &c : s.as<SeqBlock>()->stmts)
            if (c) {
                auto sub = fullyAssigned(*c, cx);
                acc.insert(sub.begin(), sub.end());
            }
        return acc;
      }
      case NodeKind::If: {
        auto *i = s.as<If>();
        if (!i->elseStmt || !i->thenStmt)
            return {};
        auto a = fullyAssigned(*i->thenStmt, cx);
        auto b = fullyAssigned(*i->elseStmt, cx);
        std::set<std::string> both;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::inserter(both, both.begin()));
        return both;
      }
      case NodeKind::Case: {
        auto *c = s.as<Case>();
        bool has_default = false;
        for (auto &item : c->items)
            has_default |= item.labels.empty();
        if (!has_default) {
            // A case without a default still covers every path when
            // its constant labels enumerate all 2^W subject values
            // (the decoder benchmark's 8-label 3-bit case).
            std::optional<int> w;
            if (c->subject->kind == NodeKind::Ident)
                w = cx.info.width(c->subject->as<Ident>()->name);
            if (!w || *w > 16)
                return {};
            std::set<long> labels;
            for (auto &item : c->items)
                for (auto &l : item.labels) {
                    auto v = constEval(*l, cx.info.params);
                    if (v)
                        labels.insert(*v);
                }
            if (labels.size() != (1ull << *w))
                return {};
        }
        std::set<std::string> acc;
        bool first = true;
        for (auto &item : c->items) {
            std::set<std::string> sub;
            if (item.body)
                sub = fullyAssigned(*item.body, cx);
            if (first) {
                acc = std::move(sub);
                first = false;
            } else {
                std::set<std::string> both;
                std::set_intersection(acc.begin(), acc.end(),
                                      sub.begin(), sub.end(),
                                      std::inserter(both, both.begin()));
                acc = std::move(both);
            }
        }
        return acc;
    }
      case NodeKind::For: {
        // Benchmark-style for loops have constant bounds and run at
        // least once, so treat the init assignment and the body's
        // guaranteed assignments as covering every path. (A zero-trip
        // loop could skip the body — accepted imprecision for a
        // warning-severity heuristic; while/repeat stay unproven.)
        auto *f = s.as<For>();
        std::set<std::string> acc;
        if (f->init)
            acc = fullyAssigned(*f->init, cx);
        if (f->body) {
            auto sub = fullyAssigned(*f->body, cx);
            acc.insert(sub.begin(), sub.end());
        }
        return acc;
      }
      default:
        // Other loops and timing controls cannot be proven to assign.
        return {};
    }
}

/** Every signal assigned anywhere under @p s. */
void
someAssigned(const Stmt &s, std::set<std::string> &out)
{
    if (s.kind == NodeKind::Assign) {
        std::vector<std::string> t;
        collectTargets(*s.as<Assign>()->lhs, t);
        out.insert(t.begin(), t.end());
        return;
    }
    const_cast<Stmt &>(s).forEachChild([&](Node *c) {
        if (!c)
            return;
        switch (c->kind) {
          case NodeKind::SeqBlock: case NodeKind::If: case NodeKind::Case:
          case NodeKind::For: case NodeKind::While: case NodeKind::Repeat:
          case NodeKind::Forever: case NodeKind::Assign:
          case NodeKind::DelayStmt: case NodeKind::EventCtrl:
          case NodeKind::Wait:
            someAssigned(*static_cast<Stmt *>(c), out);
            break;
          default:
            break;
        }
    });
}

} // namespace

void
checkProcesses(CheckContext &cx)
{
    // empty-sens: anywhere in the module (folded from validate, which
    // used to reject these; the process would block forever).
    for (auto &it : cx.mod.items) {
        visitAll(const_cast<Item &>(*it), [&](Node &n) {
            if (n.kind != NodeKind::EventCtrl)
                return;
            auto *ec = n.as<EventCtrl>();
            if (!ec->star && ec->events.empty())
                cx.emit("empty-sens", "", ec,
                        "event control with empty sensitivity list "
                        "(process can never resume)");
        });
    }

    for (auto &it : cx.mod.items) {
        if (it->kind != NodeKind::AlwaysBlock)
            continue;
        auto *blk = it->as<AlwaysBlock>();
        if (!blk->body || blk->body->kind != NodeKind::EventCtrl)
            continue;
        auto *ec = blk->body->as<EventCtrl>();
        if (!ec->stmt)
            continue;

        bool comb = isCombAlways(*blk);

        // incomplete-sens: explicit level-sensitive list missing some
        // of the signals the body reads.
        if (comb && !ec->star) {
            std::set<std::string> listed;
            for (auto &ev : ec->events) {
                if (ev.signal->kind == NodeKind::Ident)
                    listed.insert(ev.signal->as<Ident>()->name);
                else if (ev.signal->kind == NodeKind::Index)
                    listed.insert(ev.signal->as<Index>()->name);
            }
            std::vector<std::string> reads;
            bool has_timing = false;
            stmtReads(*ec->stmt, reads, has_timing);
            // Signals the block itself computes — blocking
            // intermediates (sha3's theta/chi) and loop counters —
            // do not belong in the sensitivity list: their changes
            // originate inside the process.
            std::set<std::string> computed;
            someAssigned(*ec->stmt, computed);
            if (!has_timing) {
                std::set<std::string> missing;
                for (auto &r : reads) {
                    if (listed.count(r) || missing.count(r) ||
                        computed.count(r))
                        continue;
                    auto d = cx.info.decls.find(r);
                    if (d == cx.info.decls.end())
                        continue;
                    VarKind k = d->second->varKind;
                    if (k == VarKind::Parameter ||
                        k == VarKind::Localparam)
                        continue;
                    missing.insert(r);
                }
                if (!missing.empty()) {
                    std::string joined;
                    for (auto &m : missing)
                        joined += (joined.empty() ? "" : ",") + m;
                    cx.emit("incomplete-sens", joined, ec,
                            "sensitivity list misses signal(s) read "
                            "by the body: " + joined);
                }
            }
        }

        // inferred-latch: combinational process where some path skips
        // the assignment of a signal it drives elsewhere.
        if (comb) {
            std::set<std::string> some;
            someAssigned(*ec->stmt, some);
            auto full = fullyAssigned(*ec->stmt, cx);
            for (auto &name : some) {
                if (full.count(name) || !cx.info.isReg(name))
                    continue;
                cx.emit("inferred-latch", name, ec,
                        "'" + name + "' is not assigned on every path "
                        "through this combinational block (latch "
                        "inferred)");
            }
        }
    }
}

// --------------------------------------------------------------------
// Width checks
// --------------------------------------------------------------------

namespace {

/**
 * Static bit width of @p e. nullopt means "unknown or self-sizing":
 * unsized literals stretch to their context in Verilog, so any
 * expression containing one is exempt from truncation warnings.
 */
std::optional<int>
exprWidth(const Expr &e, const ModuleInfo &info)
{
    switch (e.kind) {
      case NodeKind::Number: {
        auto *n = e.as<Number>();
        if (!n->sized)
            return std::nullopt;
        return n->value.width();
      }
      case NodeKind::Ident: {
        auto *id = e.as<Ident>();
        if (info.params.count(id->name))
            return std::nullopt;  // parameters size to context
        return info.width(id->name);
      }
      case NodeKind::Index: {
        // Indexing a memory selects a whole element; indexing a plain
        // vector selects one bit.
        auto *ix = e.as<Index>();
        return info.isArray(ix->name) ? info.width(ix->name)
                                      : std::optional<int>(1);
      }
      case NodeKind::RangeSel: {
        auto *r = e.as<RangeSel>();
        auto m = constEval(*r->msb, info.params);
        auto l = constEval(*r->lsb, info.params);
        if (!m || !l)
            return std::nullopt;
        long w = (*m > *l ? *m - *l : *l - *m) + 1;
        return w >= 1 && w <= 100000 ? std::optional<int>(int(w))
                                     : std::nullopt;
      }
      case NodeKind::Concat: {
        int sum = 0;
        for (auto &p : e.as<Concat>()->parts) {
            auto w = exprWidth(*p, info);
            if (!w)
                return std::nullopt;
            sum += *w;
        }
        return sum;
      }
      case NodeKind::Repl: {
        auto *r = e.as<Repl>();
        auto c = constEval(*r->count, info.params);
        auto w = exprWidth(*r->value, info);
        if (!c || !w || *c < 0 || *c * *w > 100000)
            return std::nullopt;
        return static_cast<int>(*c * *w);
      }
      case NodeKind::Unary: {
        auto *u = e.as<Unary>();
        switch (u->op) {
          case UnaryOp::Plus:
          case UnaryOp::Minus:
          case UnaryOp::BitNot:
            return exprWidth(*u->operand, info);
          default:
            return 1;  // logical not / reductions
        }
      }
      case NodeKind::Binary: {
        auto *b = e.as<Binary>();
        switch (b->op) {
          case BinaryOp::LogAnd: case BinaryOp::LogOr:
          case BinaryOp::Eq: case BinaryOp::Neq:
          case BinaryOp::CaseEq: case BinaryOp::CaseNeq:
          case BinaryOp::Lt: case BinaryOp::Le:
          case BinaryOp::Gt: case BinaryOp::Ge:
            return 1;
          case BinaryOp::Shl: case BinaryOp::Shr:
          case BinaryOp::Pow:
            return exprWidth(*b->lhs, info);
          default: {
            auto l = exprWidth(*b->lhs, info);
            auto r = exprWidth(*b->rhs, info);
            if (!l || !r)
                return std::nullopt;
            return std::max(*l, *r);
          }
        }
      }
      case NodeKind::Ternary: {
        auto *t = e.as<Ternary>();
        auto a = exprWidth(*t->thenExpr, info);
        auto b = exprWidth(*t->elseExpr, info);
        if (!a || !b)
            return std::nullopt;
        return std::max(*a, *b);
      }
      case NodeKind::FuncCall: {
        auto fit = info.functions.find(e.as<FuncCall>()->name);
        if (fit == info.functions.end())
            return std::nullopt;
        const FunctionDecl *f = fit->second;
        if (!f->msb || !f->lsb)
            return 1;
        auto m = constEval(*f->msb, info.params);
        auto l = constEval(*f->lsb, info.params);
        if (!m || !l)
            return std::nullopt;
        return static_cast<int>((*m > *l ? *m - *l : *l - *m) + 1);
      }
      default:
        return std::nullopt;
    }
}

std::optional<int>
lvalueWidth(const Expr &e, const ModuleInfo &info)
{
    switch (e.kind) {
      case NodeKind::Ident:
        return info.width(e.as<Ident>()->name);
      case NodeKind::Index: {
        auto *ix = e.as<Index>();
        return info.isArray(ix->name) ? info.width(ix->name)
                                      : std::optional<int>(1);
      }
      case NodeKind::RangeSel:
      case NodeKind::Concat:
        return exprWidth(e, info);
      default:
        return std::nullopt;
    }
}

void
checkAssignWidth(CheckContext &cx, const Expr &lhs, const Expr &rhs,
                 const Node *where)
{
    auto lw = lvalueWidth(lhs, cx.info);
    auto rw = exprWidth(rhs, cx.info);
    if (!lw || !rw || *rw <= *lw)
        return;
    std::vector<std::string> targets;
    collectTargets(lhs, targets);
    std::string name = targets.empty() ? std::string() : targets[0];
    cx.emit("width-mismatch", name, where,
            "expression of width " + std::to_string(*rw) +
                " truncated to " + std::to_string(*lw) +
                " bits in assignment to '" + name + "'");
}

} // namespace

void
checkWidths(CheckContext &cx)
{
    for (auto &it : cx.mod.items) {
        switch (it->kind) {
          case NodeKind::ContAssign: {
            auto *a = it->as<ContAssign>();
            checkAssignWidth(cx, *a->lhs, *a->rhs, a);
            break;
          }
          case NodeKind::AlwaysBlock:
          case NodeKind::InitialBlock:
            visitAll(const_cast<Item &>(*it), [&](Node &n) {
                if (n.kind != NodeKind::Assign)
                    return;
                auto *a = n.as<Assign>();
                checkAssignWidth(cx, *a->lhs, *a->rhs, a);
            });
            break;
          case NodeKind::Instance: {
            auto *in = it->as<Instance>();
            auto target = cx.allInfo.find(in->moduleName);
            if (target == cx.allInfo.end())
                break;
            const ModuleInfo &ti = target->second;
            for (size_t i = 0; i < in->conns.size(); ++i) {
                const PortConn &c = in->conns[i];
                if (!c.expr)
                    continue;
                std::string port = c.port;
                if (port.empty() &&
                    i < target->second.mod->ports.size())
                    port = target->second.mod->ports[i].name;
                auto fw = ti.width(port);
                auto aw = exprWidth(*c.expr, cx.info);
                if (!fw || !aw || *fw == *aw)
                    continue;
                cx.emit("width-mismatch", port, c.expr.get(),
                        "port '" + port + "' of instance '" +
                            in->instName + "' is " +
                            std::to_string(*fw) +
                            " bits but the connection is " +
                            std::to_string(*aw) + " bits");
            }
            break;
          }
          default:
            break;
        }
    }
}

// --------------------------------------------------------------------
// Dead code
// --------------------------------------------------------------------

namespace {

bool
isTerminal(const Stmt &s)
{
    if (s.kind == NodeKind::Forever)
        return true;
    if (s.kind == NodeKind::SysTask) {
        const std::string &n = s.as<SysTask>()->name;
        return n == "$finish" || n == "$stop";
    }
    return false;
}

void
walkDead(CheckContext &cx, const Stmt &s)
{
    if (s.kind == NodeKind::SeqBlock) {
        auto *b = s.as<SeqBlock>();
        bool reported = false;
        for (size_t i = 0; i + 1 < b->stmts.size(); ++i) {
            if (!reported && b->stmts[i] && isTerminal(*b->stmts[i]) &&
                b->stmts[i + 1]) {
                cx.emit("dead-code", "", b->stmts[i + 1].get(),
                        "statement is unreachable (follows " +
                            std::string(b->stmts[i]->kind ==
                                                NodeKind::Forever
                                            ? "a forever loop"
                                            : "$finish/$stop") +
                            ")");
                reported = true;
            }
        }
    }
    if (s.kind == NodeKind::If) {
        auto *i = s.as<If>();
        auto v = constEval(*i->cond, cx.info.params);
        if (v && *v == 0 && i->thenStmt)
            cx.emit("dead-code", "", i->thenStmt.get(),
                    "branch is unreachable (condition is "
                    "constant false)");
        if (v && *v != 0 && i->elseStmt)
            cx.emit("dead-code", "", i->elseStmt.get(),
                    "branch is unreachable (condition is "
                    "constant true)");
    }
    const_cast<Stmt &>(s).forEachChild([&](Node *c) {
        if (!c)
            return;
        switch (c->kind) {
          case NodeKind::SeqBlock: case NodeKind::If: case NodeKind::Case:
          case NodeKind::For: case NodeKind::While: case NodeKind::Repeat:
          case NodeKind::Forever: case NodeKind::DelayStmt:
          case NodeKind::EventCtrl: case NodeKind::Wait:
            walkDead(cx, *static_cast<Stmt *>(c));
            break;
          default:
            break;
        }
    });
}

} // namespace

void
checkDeadCode(CheckContext &cx)
{
    for (auto &it : cx.mod.items) {
        if (it->kind != NodeKind::AlwaysBlock &&
            it->kind != NodeKind::InitialBlock)
            continue;
        const Stmt *body = it->kind == NodeKind::AlwaysBlock
                               ? it->as<AlwaysBlock>()->body.get()
                               : it->as<InitialBlock>()->body.get();
        if (body)
            walkDead(cx, *body);
    }
}

} // namespace cirfix::lint
