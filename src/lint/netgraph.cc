#include "lint/netgraph.h"

#include <algorithm>
#include <set>

namespace cirfix::lint {

using namespace verilog;

// --------------------------------------------------------------------
// Expression helpers
// --------------------------------------------------------------------

void
collectReads(const Expr &e, std::vector<std::string> &out)
{
    switch (e.kind) {
      case NodeKind::Ident:
        out.push_back(e.as<Ident>()->name);
        break;
      case NodeKind::Index: {
        auto *ix = e.as<Index>();
        out.push_back(ix->name);
        collectReads(*ix->index, out);
        break;
      }
      case NodeKind::RangeSel: {
        auto *r = e.as<RangeSel>();
        out.push_back(r->name);
        collectReads(*r->msb, out);
        collectReads(*r->lsb, out);
        break;
      }
      default:
        const_cast<Expr &>(e).forEachChild([&](Node *c) {
            if (c)
                collectReads(*static_cast<Expr *>(c), out);
        });
        break;
    }
}

void
collectTargets(const Expr &e, std::vector<std::string> &out)
{
    switch (e.kind) {
      case NodeKind::Ident:
        out.push_back(e.as<Ident>()->name);
        break;
      case NodeKind::Index:
        out.push_back(e.as<Index>()->name);
        break;
      case NodeKind::RangeSel:
        out.push_back(e.as<RangeSel>()->name);
        break;
      case NodeKind::Concat:
        for (auto &p : e.as<Concat>()->parts)
            if (p)
                collectTargets(*p, out);
        break;
      default:
        break;
    }
}

std::optional<long>
constEval(const Expr &e, const std::map<std::string, long> &params)
{
    switch (e.kind) {
      case NodeKind::Number: {
        const LogicVec &v = e.as<Number>()->value;
        if (v.hasUnknown() || v.width() > 63)
            return std::nullopt;
        return static_cast<long>(v.toUint64());
      }
      case NodeKind::Ident: {
        auto it = params.find(e.as<Ident>()->name);
        if (it == params.end())
            return std::nullopt;
        return it->second;
      }
      case NodeKind::Unary: {
        auto *u = e.as<Unary>();
        auto v = constEval(*u->operand, params);
        if (!v)
            return std::nullopt;
        switch (u->op) {
          case UnaryOp::Plus: return *v;
          case UnaryOp::Minus: return -*v;
          case UnaryOp::Not: return *v == 0 ? 1 : 0;
          default: return std::nullopt;
        }
      }
      case NodeKind::Binary: {
        auto *b = e.as<Binary>();
        auto l = constEval(*b->lhs, params);
        auto r = constEval(*b->rhs, params);
        if (!l || !r)
            return std::nullopt;
        switch (b->op) {
          case BinaryOp::Add: return *l + *r;
          case BinaryOp::Sub: return *l - *r;
          case BinaryOp::Mul: return *l * *r;
          case BinaryOp::Div: return *r == 0 ? std::optional<long>()
                                             : *l / *r;
          case BinaryOp::Mod: return *r == 0 ? std::optional<long>()
                                             : *l % *r;
          case BinaryOp::Shl:
            return (*r < 0 || *r > 62) ? std::optional<long>()
                                       : *l << *r;
          case BinaryOp::Shr:
            return (*r < 0 || *r > 62) ? std::optional<long>()
                                       : *l >> *r;
          default: return std::nullopt;
        }
      }
      default:
        return std::nullopt;
    }
}

// --------------------------------------------------------------------
// Driver map
// --------------------------------------------------------------------

bool
DriverSite::overlaps(const DriverSite &o) const
{
    if (wholeSignal || o.wholeSignal)
        return true;
    long lo = std::min(msb, lsb), hi = std::max(msb, lsb);
    long olo = std::min(o.msb, o.lsb), ohi = std::max(o.msb, o.lsb);
    return lo <= ohi && olo <= hi;
}

bool
ModuleInfo::isArray(const std::string &name) const
{
    auto it = decls.find(name);
    return it != decls.end() && it->second->arrayFirst != nullptr;
}

bool
ModuleInfo::isReg(const std::string &name) const
{
    auto it = decls.find(name);
    if (it == decls.end())
        return false;
    return it->second->varKind == VarKind::Reg ||
           it->second->varKind == VarKind::Integer;
}

std::optional<int>
ModuleInfo::width(const std::string &name) const
{
    auto it = decls.find(name);
    if (it == decls.end())
        return std::nullopt;
    const VarDecl *d = it->second;
    if (d->varKind == VarKind::Integer)
        return 32;
    if (!d->msb || !d->lsb)
        return 1;
    auto m = constEval(*d->msb, params);
    auto l = constEval(*d->lsb, params);
    if (!m || !l)
        return std::nullopt;
    long w = (*m > *l ? *m - *l : *l - *m) + 1;
    if (w < 1 || w > 100000)
        return std::nullopt;
    return static_cast<int>(w);
}

namespace {

/** Record one lvalue's drive, splitting concats into per-name sites. */
void
addDrive(ModuleInfo &info, const Expr &lhs, DriverSite proto)
{
    switch (lhs.kind) {
      case NodeKind::Ident:
        info.drivers[lhs.as<Ident>()->name].push_back(proto);
        break;
      case NodeKind::Index: {
        auto *ix = lhs.as<Index>();
        if (auto v = constEval(*ix->index, info.params)) {
            proto.wholeSignal = false;
            proto.msb = proto.lsb = *v;
        }
        info.drivers[ix->name].push_back(proto);
        break;
      }
      case NodeKind::RangeSel: {
        auto *r = lhs.as<RangeSel>();
        auto m = constEval(*r->msb, info.params);
        auto l = constEval(*r->lsb, info.params);
        if (m && l) {
            proto.wholeSignal = false;
            proto.msb = *m;
            proto.lsb = *l;
        }
        info.drivers[r->name].push_back(proto);
        break;
      }
      case NodeKind::Concat:
        for (auto &p : lhs.as<Concat>()->parts)
            if (p)
                addDrive(info, *p, proto);
        break;
      default:
        break;
    }
}

/** Walk a process body recording every Assign as a driver site. */
void
walkDrives(ModuleInfo &info, const Stmt &s, const Item &container,
           bool initial, bool under_delay)
{
    if (s.kind == NodeKind::Assign) {
        auto *a = s.as<Assign>();
        DriverSite proto;
        proto.kind = initial ? DriverSite::Kind::Initial
                   : a->blocking ? DriverSite::Kind::Blocking
                                 : DriverSite::Kind::NonBlocking;
        proto.node = a;
        proto.container = &container;
        proto.delayed = under_delay || a->delay != nullptr;
        addDrive(info, *a->lhs, proto);
        return;
    }
    bool delayed = under_delay || s.kind == NodeKind::DelayStmt ||
                   s.kind == NodeKind::EventCtrl ||
                   s.kind == NodeKind::Wait;
    const_cast<Stmt &>(s).forEachChild([&](Node *c) {
        if (!c)
            return;
        // Only descend into statements; expressions cannot assign.
        switch (c->kind) {
          case NodeKind::SeqBlock: case NodeKind::If: case NodeKind::Case:
          case NodeKind::For: case NodeKind::While: case NodeKind::Repeat:
          case NodeKind::Forever: case NodeKind::Assign:
          case NodeKind::DelayStmt: case NodeKind::EventCtrl:
          case NodeKind::Wait: case NodeKind::TriggerEvent:
          case NodeKind::SysTask: case NodeKind::NullStmt:
            walkDrives(info, *static_cast<Stmt *>(c), container, initial,
                       delayed);
            break;
          default:
            break;
        }
    });
}

} // namespace

ModuleInfo
analyzeModule(const Module &mod, const SourceFile &file)
{
    ModuleInfo info;
    info.mod = &mod;

    // Declarations first: drives and widths resolve against them.
    for (auto &it : mod.items) {
        if (it->kind != NodeKind::VarDecl)
            continue;
        auto *d = it->as<VarDecl>();
        if (d->varKind == VarKind::Event) {
            info.events.emplace(d->name, d);
            continue;
        }
        if (d->varKind == VarKind::Parameter ||
            d->varKind == VarKind::Localparam) {
            if (d->init)
                if (auto v = constEval(*d->init, info.params))
                    info.params[d->name] = *v;
            info.decls.emplace(d->name, d);
            continue;
        }
        auto ex = info.decls.find(d->name);
        if (ex == info.decls.end()) {
            info.decls.emplace(d->name, d);
        } else {
            // "output q;" then "reg q;": the refinement wins, but keep
            // whichever declaration carries the vector range.
            const VarDecl *old = ex->second;
            bool new_kind = old->varKind == VarKind::Wire &&
                            d->varKind != VarKind::Wire;
            bool new_range = !old->msb && d->msb;
            if (new_kind || new_range)
                ex->second = d;
        }
    }

    for (auto &it : mod.items) {
        switch (it->kind) {
          case NodeKind::ContAssign: {
            auto *a = it->as<ContAssign>();
            DriverSite proto;
            proto.kind = DriverSite::Kind::Continuous;
            proto.node = a;
            proto.container = it.get();
            addDrive(info, *a->lhs, proto);
            break;
          }
          case NodeKind::AlwaysBlock: {
            auto *b = it->as<AlwaysBlock>();
            if (b->body)
                walkDrives(info, *b->body, *it, false, false);
            break;
          }
          case NodeKind::InitialBlock: {
            auto *b = it->as<InitialBlock>();
            if (b->body)
                walkDrives(info, *b->body, *it, true, false);
            break;
          }
          case NodeKind::Instance: {
            auto *in = it->as<Instance>();
            const Module *target = file.findModule(in->moduleName);
            if (!target)
                break;
            for (size_t i = 0; i < in->conns.size(); ++i) {
                const PortConn &c = in->conns[i];
                if (!c.expr)
                    continue;
                std::string port = c.port;
                if (port.empty() && i < target->ports.size())
                    port = target->ports[i].name;
                auto dir = target->portDir(port);
                if (!dir || *dir == PortDir::Input)
                    continue;
                DriverSite proto;
                proto.kind = DriverSite::Kind::InstanceOutput;
                proto.node = c.expr.get();
                proto.container = it.get();
                addDrive(info, *c.expr, proto);
            }
            break;
          }
          default:
            break;
        }
    }
    return info;
}

// --------------------------------------------------------------------
// Combinational graph
// --------------------------------------------------------------------

bool
isCombAlways(const AlwaysBlock &b)
{
    if (!b.body || b.body->kind != NodeKind::EventCtrl)
        return false;
    auto *ec = b.body->as<EventCtrl>();
    if (ec->star)
        return true;
    if (ec->events.empty())
        return false;
    for (auto &ev : ec->events)
        if (ev.edge != Edge::Level)
            return false;
    return true;
}

namespace {

class GraphBuilder
{
  public:
    explicit GraphBuilder(CombGraph &g) : g_(g) {}

    int
    node(const std::string &name)
    {
        auto it = g_.index.find(name);
        if (it != g_.index.end())
            return it->second;
        int id = static_cast<int>(g_.signals.size());
        g_.index.emplace(name, id);
        g_.signals.push_back(name);
        g_.out.emplace_back();
        g_.site.push_back(nullptr);
        return id;
    }

    void
    edge(const std::string &from, const std::string &to,
         const Node *where)
    {
        int f = node(from), t = node(to);
        if (seen_.insert({f, t}).second)
            g_.out[f].push_back(t);
        if (!g_.site[t])
            g_.site[t] = where;
    }

    /** Drive of @p lhs from @p reads plus the dominating conditions. */
    void
    assignEdges(const Expr &lhs, const Expr &rhs, const Node *where)
    {
        std::vector<std::string> targets;
        collectTargets(lhs, targets);
        if (targets.empty())
            return;

        std::vector<std::string> reads;
        collectReads(rhs, reads);
        // A pure copy (q <= q;) can never change the value, so it
        // cannot sustain a zero-delay oscillation: drop the self read.
        bool pure_copy = rhs.kind == NodeKind::Ident &&
                         lhs.kind == NodeKind::Ident &&
                         targets.size() == 1 && reads.size() == 1 &&
                         reads[0] == targets[0];
        if (pure_copy)
            reads.clear();
        for (auto &c : conds_)
            reads.insert(reads.end(), c.begin(), c.end());

        for (auto &t : targets)
            for (auto &r : reads)
                edge(r, t, where);
    }

    void
    pushCond(const Expr &e)
    {
        conds_.emplace_back();
        collectReads(e, conds_.back());
    }
    void popCond() { conds_.pop_back(); }

    void
    walk(const Stmt &s)
    {
        switch (s.kind) {
          case NodeKind::Assign: {
            auto *a = s.as<Assign>();
            if (!a->delay)  // "<= #1 v" breaks the zero-delay path
                assignEdges(*a->lhs, *a->rhs, a);
            break;
          }
          case NodeKind::SeqBlock:
            for (auto &c : s.as<SeqBlock>()->stmts)
                if (c)
                    walk(*c);
            break;
          case NodeKind::If: {
            auto *i = s.as<If>();
            pushCond(*i->cond);
            if (i->thenStmt)
                walk(*i->thenStmt);
            if (i->elseStmt)
                walk(*i->elseStmt);
            popCond();
            break;
          }
          case NodeKind::Case: {
            auto *c = s.as<Case>();
            pushCond(*c->subject);
            for (auto &item : c->items)
                if (item.body)
                    walk(*item.body);
            popCond();
            break;
          }
          case NodeKind::For: {
            auto *f = s.as<For>();
            // The init and step assignments are loop control: the
            // body runs a bounded number of times within one delta
            // cycle, so a counter's self-increment (i = i + 1) cannot
            // sustain an oscillation through the event queue. (A
            // non-terminating loop shows up as Runaway in simulation,
            // not as a comb loop.)
            pushCond(*f->cond);
            if (f->body)
                walk(*f->body);
            popCond();
            break;
          }
          case NodeKind::While: {
            auto *w = s.as<While>();
            pushCond(*w->cond);
            if (w->body)
                walk(*w->body);
            popCond();
            break;
          }
          case NodeKind::Repeat: {
            auto *r = s.as<Repeat>();
            pushCond(*r->count);
            if (r->body)
                walk(*r->body);
            popCond();
            break;
          }
          case NodeKind::Forever:
            if (s.as<Forever>()->body)
                walk(*s.as<Forever>()->body);
            break;
          // Timing controls suspend the process: whatever runs after
          // them is no longer in the same delta cycle, so their
          // subtrees cannot form a zero-delay loop.
          case NodeKind::DelayStmt:
          case NodeKind::EventCtrl:
          case NodeKind::Wait:
          default:
            break;
        }
    }

  private:
    CombGraph &g_;
    std::set<std::pair<int, int>> seen_;
    std::vector<std::vector<std::string>> conds_;
};

/** Iterative Tarjan SCC (stack-safe for degenerate chain graphs). */
struct Tarjan
{
    const CombGraph &g;
    std::vector<int> idx, low, comp;
    std::vector<bool> on_stack;
    std::vector<int> stack;
    int counter = 0, ncomp = 0;

    explicit Tarjan(const CombGraph &graph)
        : g(graph), idx(graph.signals.size(), -1),
          low(graph.signals.size(), 0), comp(graph.signals.size(), -1),
          on_stack(graph.signals.size(), false)
    {
        for (size_t v = 0; v < g.signals.size(); ++v)
            if (idx[v] < 0)
                visit(static_cast<int>(v));
    }

    void
    visit(int root)
    {
        // Explicit DFS frame: node + position in its adjacency list.
        std::vector<std::pair<int, size_t>> frames{{root, 0}};
        while (!frames.empty()) {
            auto &[v, pos] = frames.back();
            if (pos == 0) {
                idx[v] = low[v] = counter++;
                stack.push_back(v);
                on_stack[v] = true;
            }
            bool descended = false;
            while (pos < g.out[v].size()) {
                int w = g.out[v][pos++];
                if (idx[w] < 0) {
                    frames.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (on_stack[w])
                    low[v] = std::min(low[v], idx[w]);
            }
            if (descended)
                continue;
            if (low[v] == idx[v]) {
                for (;;) {
                    int w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    comp[w] = ncomp;
                    if (w == v)
                        break;
                }
                ++ncomp;
            }
            int finished = v;
            frames.pop_back();
            if (!frames.empty())
                low[frames.back().first] =
                    std::min(low[frames.back().first], low[finished]);
        }
    }
};

} // namespace

std::vector<std::vector<int>>
CombGraph::cycles() const
{
    Tarjan t(*this);
    std::vector<std::vector<int>> members(t.ncomp);
    for (size_t v = 0; v < signals.size(); ++v)
        members[t.comp[v]].push_back(static_cast<int>(v));

    std::vector<std::vector<int>> result;
    for (auto &m : members) {
        bool cyclic = m.size() > 1;
        if (m.size() == 1) {
            for (int w : out[m[0]])
                cyclic |= (w == m[0]);
        }
        if (!cyclic)
            continue;
        std::sort(m.begin(), m.end());
        result.push_back(m);
    }
    std::sort(result.begin(), result.end(),
              [](const auto &a, const auto &b) { return a[0] < b[0]; });
    return result;
}

CombGraph
buildCombGraph(const Module &mod)
{
    CombGraph g;
    GraphBuilder b(g);
    for (auto &it : mod.items) {
        if (it->kind == NodeKind::ContAssign) {
            auto *a = it->as<ContAssign>();
            b.assignEdges(*a->lhs, *a->rhs, a);
        } else if (it->kind == NodeKind::AlwaysBlock) {
            auto *blk = it->as<AlwaysBlock>();
            if (!isCombAlways(*blk))
                continue;
            auto *ec = blk->body->as<EventCtrl>();
            if (ec->stmt)
                b.walk(*ec->stmt);
        }
    }
    return g;
}

} // namespace cirfix::lint
