#pragma once

/**
 * @file
 * Internal interface between the lint driver (lint.cc) and the check
 * implementations (checks.cc). Not installed as public API: consumers
 * use lint.h.
 */

#include <map>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/netgraph.h"

namespace cirfix::lint {

/** Everything a check needs about the module under analysis. */
struct CheckContext
{
    const verilog::SourceFile &file;
    const verilog::Module &mod;
    const ModuleInfo &info;
    /** ModuleInfo for every module in the file, keyed by name. */
    const std::map<std::string, ModuleInfo> &allInfo;
    std::vector<Diagnostic> &out;

    /** Append a finding (severity is resolved later by the driver). */
    void emit(const char *check, std::string signal,
              const verilog::Node *where, std::string message);
};

// Check groups, in emission order.
void checkDrivers(CheckContext &cx);    // multi-driven-*, mixed-assign,
                                        // duplicate-decl
void checkCombLoops(CheckContext &cx);  // comb-loop
void checkProcesses(CheckContext &cx);  // empty-sens, incomplete-sens,
                                        // inferred-latch
void checkWidths(CheckContext &cx);     // width-mismatch
void checkDeadCode(CheckContext &cx);   // dead-code

} // namespace cirfix::lint
