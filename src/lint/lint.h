#pragma once

/**
 * @file
 * Semantic lint over the Verilog AST.
 *
 * Where validate() answers "would this design compile?", the lint
 * subsystem answers "is this design *sensible*?": multiply-driven
 * nets, combinational loops, inferred latches, incomplete sensitivity
 * lists, width truncation, dead statements. Every finding is a
 * structured Diagnostic with a check id, severity, and exact source
 * span, so the same machinery backs three consumers:
 *
 *  - the `cirfix lint` CLI workload (text or JSON output),
 *  - the repair loop's mutant pre-screen (reject candidates whose
 *    *new* error-severity findings prove them unsimulatable-or-doomed
 *    before paying for a simulation), and
 *  - CI gating of the benchmark designs (`--Werror` + waiver file).
 *
 * All analysis is static and elaboration-free: one pass over each
 * module builds a driver map and a zero-delay dependency graph (see
 * netgraph.h), then the check registry walks those structures. The
 * pass is deterministic — diagnostics are emitted in module order,
 * then check order, then source order — so fingerprints of two runs
 * over the same tree are always identical.
 */

#include <map>
#include <string>
#include <vector>

#include "verilog/ast.h"

namespace cirfix::lint {

enum class Severity { Off, Warning, Error };

const char *severityName(Severity s);

/** One lint finding. */
struct Diagnostic
{
    std::string check;    //!< check id, e.g. "comb-loop"
    Severity severity = Severity::Warning;
    std::string module;   //!< enclosing module name
    std::string signal;   //!< primary subject signal ("" when n/a)
    verilog::Span span;   //!< source range of the offending construct
    std::string message;
    bool waived = false;  //!< suppressed by a waiver (still listed)
};

/**
 * Suppress matching diagnostics. Empty module/signal act as
 * wildcards, so {"inferred-latch", "", ""} waives the check globally
 * and {"width-mismatch", "tb", "data"} waives one signal in one
 * module.
 */
struct Waiver
{
    std::string check;
    std::string module;
    std::string signal;
};

struct Options
{
    /** Per-check severity overrides (id -> new severity). */
    std::map<std::string, Severity> overrides;
    std::vector<Waiver> waivers;
};

/** Registry metadata for one check. */
struct CheckInfo
{
    const char *id;
    Severity defaultSeverity;
    const char *summary;
};

/** All known checks, in diagnostic-emission order. */
const std::vector<CheckInfo> &checkRegistry();

struct Result
{
    std::vector<Diagnostic> diags;
    int errors = 0;    //!< unwaived error-severity findings
    int warnings = 0;  //!< unwaived warning-severity findings
};

/** Run every enabled check over @p file. */
Result run(const verilog::SourceFile &file, const Options &opts = {});

/**
 * Multiset of unwaived *error*-severity findings keyed by
 * "check|module|signal" — deliberately span-free, so a mutation that
 * only moves code cannot change the fingerprint of warts it did not
 * introduce.
 */
using Fingerprint = std::map<std::string, int>;

Fingerprint fingerprint(const Result &r);

/**
 * Number of error-severity findings in @p candidate that exceed the
 * baseline's multiplicity for the same key — i.e. errors the mutation
 * *introduced*. When nonzero and @p firstMessage is non-null, it
 * receives a human-readable description of one such finding.
 */
long newErrorCount(const Fingerprint &baseline, const Result &candidate,
                   std::string *firstMessage = nullptr);

/**
 * Parse a waiver file: one waiver per line, "check [module [signal]]",
 * '#' comments and blank lines ignored. Throws std::runtime_error on
 * an unknown check id or malformed line.
 */
std::vector<Waiver> parseWaivers(const std::string &text);

/** "check.v:3:5-3:12: error: ..." lines, one per diagnostic. */
std::string renderText(const Result &r);

/** Stable JSON document (schema documented in README.md). */
std::string renderJson(const Result &r);

} // namespace cirfix::lint
