#include "lint/lint.h"

#include <sstream>
#include <stdexcept>

#include "lint/checks.h"
#include "lint/netgraph.h"

namespace cirfix::lint {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Off: return "off";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

const std::vector<CheckInfo> &
checkRegistry()
{
    // Error severity is reserved for findings that make a design
    // either unsimulatable or incapable of a better outcome than
    // worst-fitness (the mutant pre-screen rejects on *new* errors
    // without simulating). Everything stylistic stays a warning.
    static const std::vector<CheckInfo> kChecks = {
        {"multi-driven-net", Severity::Error,
         "wire with conflicting continuous/instance drivers"},
        {"multi-driven-reg", Severity::Warning,
         "reg assigned from more than one always block"},
        {"mixed-assign", Severity::Warning,
         "reg written by both blocking and non-blocking assigns"},
        {"duplicate-decl", Severity::Warning,
         "name declared more than once at the same kind"},
        {"comb-loop", Severity::Error,
         "zero-delay combinational feedback loop"},
        {"empty-sens", Severity::Error,
         "event control with an empty sensitivity list"},
        {"incomplete-sens", Severity::Warning,
         "level-sensitive block missing signals it reads"},
        {"inferred-latch", Severity::Warning,
         "combinational path that skips an assignment"},
        {"width-mismatch", Severity::Warning,
         "assignment or port connection truncates its value"},
        {"dead-code", Severity::Warning,
         "statement or branch that can never execute"},
    };
    return kChecks;
}

namespace {

Severity
severityOf(const std::string &check, const Options &opts)
{
    auto o = opts.overrides.find(check);
    if (o != opts.overrides.end())
        return o->second;
    for (auto &c : checkRegistry())
        if (check == c.id)
            return c.defaultSeverity;
    return Severity::Warning;
}

bool
matchesWaiver(const Diagnostic &d, const Waiver &w)
{
    if (d.check != w.check)
        return false;
    if (!w.module.empty() && d.module != w.module)
        return false;
    if (!w.signal.empty() && d.signal != w.signal)
        return false;
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Result
run(const verilog::SourceFile &file, const Options &opts)
{
    // Analyze every module first so cross-module checks (instance
    // port widths) can look up their targets.
    std::map<std::string, ModuleInfo> infos;
    for (auto &mod : file.modules)
        infos.emplace(mod->name, analyzeModule(*mod, file));

    Result r;
    for (auto &mod : file.modules) {
        CheckContext cx{file, *mod, infos.at(mod->name), infos,
                        r.diags};
        checkDrivers(cx);
        checkCombLoops(cx);
        checkProcesses(cx);
        checkWidths(cx);
        checkDeadCode(cx);
    }

    // Resolve severities and waivers; drop checks configured Off.
    std::vector<Diagnostic> kept;
    kept.reserve(r.diags.size());
    for (auto &d : r.diags) {
        d.severity = severityOf(d.check, opts);
        if (d.severity == Severity::Off)
            continue;
        for (auto &w : opts.waivers)
            if (matchesWaiver(d, w)) {
                d.waived = true;
                break;
            }
        if (!d.waived) {
            if (d.severity == Severity::Error)
                ++r.errors;
            else
                ++r.warnings;
        }
        kept.push_back(std::move(d));
    }
    r.diags = std::move(kept);
    return r;
}

Fingerprint
fingerprint(const Result &r)
{
    Fingerprint fp;
    for (auto &d : r.diags) {
        if (d.waived || d.severity != Severity::Error)
            continue;
        ++fp[d.check + "|" + d.module + "|" + d.signal];
    }
    return fp;
}

long
newErrorCount(const Fingerprint &baseline, const Result &candidate,
              std::string *firstMessage)
{
    Fingerprint cand = fingerprint(candidate);
    long fresh = 0;
    std::string first_key;
    for (auto &[key, count] : cand) {
        auto b = baseline.find(key);
        long base = b == baseline.end() ? 0 : b->second;
        if (count > base) {
            if (fresh == 0)
                first_key = key;
            fresh += count - base;
        }
    }
    if (fresh > 0 && firstMessage) {
        for (auto &d : candidate.diags) {
            if (d.waived || d.severity != Severity::Error)
                continue;
            if (d.check + "|" + d.module + "|" + d.signal == first_key) {
                *firstMessage = d.message;
                break;
            }
        }
    }
    return fresh;
}

std::vector<Waiver>
parseWaivers(const std::string &text)
{
    std::vector<Waiver> out;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        Waiver w;
        if (!(fields >> w.check))
            continue;  // blank / comment-only line
        bool known = false;
        for (auto &c : checkRegistry())
            known |= w.check == c.id;
        if (!known)
            throw std::runtime_error(
                "waiver line " + std::to_string(lineno) +
                ": unknown check '" + w.check + "'");
        fields >> w.module >> w.signal;
        std::string extra;
        if (fields >> extra)
            throw std::runtime_error(
                "waiver line " + std::to_string(lineno) +
                ": trailing token '" + extra + "'");
        out.push_back(std::move(w));
    }
    return out;
}

std::string
renderText(const Result &r)
{
    std::ostringstream out;
    for (auto &d : r.diags) {
        out << d.module << ':' << d.span.str() << ": "
            << severityName(d.severity);
        if (d.waived)
            out << " (waived)";
        out << ": " << d.message << " [" << d.check << "]\n";
    }
    out << r.errors << " error(s), " << r.warnings << " warning(s)\n";
    return out.str();
}

std::string
renderJson(const Result &r)
{
    std::ostringstream out;
    out << "{\n  \"errors\": " << r.errors
        << ",\n  \"warnings\": " << r.warnings
        << ",\n  \"diagnostics\": [";
    bool first = true;
    for (auto &d : r.diags) {
        out << (first ? "" : ",") << "\n    {\"check\": \""
            << jsonEscape(d.check) << "\", \"severity\": \""
            << severityName(d.severity) << "\", \"module\": \""
            << jsonEscape(d.module) << "\", \"signal\": \""
            << jsonEscape(d.signal) << "\", \"line\": " << d.span.line
            << ", \"col\": " << d.span.col
            << ", \"endLine\": " << d.span.endLine
            << ", \"endCol\": " << d.span.endCol
            << ", \"waived\": " << (d.waived ? "true" : "false")
            << ", \"message\": \"" << jsonEscape(d.message) << "\"}";
        first = false;
    }
    out << "\n  ]\n}\n";
    return out.str();
}

} // namespace cirfix::lint
