#include "sim/elaborate.h"

#include <unordered_map>
#include <unordered_set>

#include "sim/compiled.h"
#include "sim/eval.h"
#include "sim/interp.h"

namespace cirfix::sim {

using namespace verilog;

namespace {

/** Merged view of (possibly several) declarations of one name. */
struct DeclInfo
{
    int width = 1;
    int lsb = 0;
    bool isReg = false;
    bool isArray = false;
    int64_t arrFirst = 0, arrLast = 0;
    const Expr *init = nullptr;
};

class Elaborator
{
  public:
    Elaborator(Design &design, const SourceFile &file)
        : design_(design), file_(file)
    {}

    void
    buildTop(const Module &top)
    {
        design_.setTop(buildScope(top, "", nullptr, {}));
    }

  private:
    Design &design_;
    const SourceFile &file_;
    int depth_ = 0;

    struct Binding
    {
        enum class Kind { None, Target, Expr };
        Kind kind = Kind::None;
        SignalRef target;              //!< alias target (parent signal)
        const Expr *expr = nullptr;    //!< parent-scope driving expr
        InstanceScope *parentScope = nullptr;
        PortDir dir = PortDir::Input;
    };

    using Bindings = std::unordered_map<std::string, Binding>;

    [[noreturn]] void
    fail(const std::string &path, const std::string &msg)
    {
        throw ElabError((path.empty() ? "top" : path) + ": " + msg);
    }

    /**
     * Re-evaluate @p rhs in @p rd_scope and write the result to
     * @p dst whenever any identifier read by rhs changes. Updates are
     * scheduled into the active region (never applied re-entrantly) so
     * combinational cycles degrade into detectable runaway activity
     * instead of native recursion.
     */
    void
    driveSignalFromExpr(InstanceScope &rd_scope, const Expr &rhs,
                        Signal *dst)
    {
        Design *d = &design_;
        auto pending = std::make_shared<bool>(false);
        auto update = [d, &rd_scope, &rhs, dst] {
            dst->set(evalExpr(rhs, rd_scope, *d));
        };
        auto schedule = [d, pending, update] {
            if (*pending)
                return;
            *pending = true;
            d->scheduler().scheduleActive([pending, update] {
                *pending = false;
                update();
            });
        };
        subscribe(rd_scope, rhs, schedule);
        schedule();
    }

    /** Zero-extending copy from @p src to @p dst on every change. */
    void
    bridgeSignals(Signal *src, Signal *dst)
    {
        Design *d = &design_;
        auto pending = std::make_shared<bool>(false);
        auto update = [src, dst] { dst->set(src->value()); };
        auto schedule = [d, pending, update] {
            if (*pending)
                return;
            *pending = true;
            d->scheduler().scheduleActive([pending, update] {
                *pending = false;
                update();
            });
        };
        src->addWatcher(
            [schedule](const LogicVec &, const LogicVec &) {
                schedule();
            });
        schedule();
    }

    /** Continuous assignment: lhs/rhs both in @p scope. */
    void
    makeContAssign(InstanceScope &scope, const Expr &lhs, const Expr &rhs)
    {
        Design *d = &design_;
        auto pending = std::make_shared<bool>(false);
        InstanceScope *sp = &scope;
        const Expr *lp = &lhs, *rp = &rhs;
        auto update = [d, sp, lp, rp] {
            WriteTarget t = resolveLValue(*d, *sp, *lp);
            performWrite(t, evalExpr(*rp, *sp, *d));
        };
        auto schedule = [d, pending, update] {
            if (*pending)
                return;
            *pending = true;
            d->scheduler().scheduleActive([pending, update] {
                *pending = false;
                update();
            });
        };
        subscribe(scope, rhs, schedule);
        // Index expressions inside the target also retrigger the drive.
        const_cast<Expr &>(lhs).forEachChild([&](Node *c) {
            if (c)
                subscribe(scope, *static_cast<Expr *>(c), schedule);
        });
        schedule();
    }

    /** Attach @p schedule as a watcher of every signal @p e reads. */
    void
    subscribe(InstanceScope &scope, const Expr &e,
              const std::function<void()> &schedule)
    {
        std::unordered_set<Signal *> seen;
        for (auto &name : collectIdents(e)) {
            SignalRef r = scope.findSignal(name);
            if (r.sig && seen.insert(r.sig).second)
                r.sig->addWatcher(
                    [schedule](const LogicVec &, const LogicVec &) {
                        schedule();
                    });
        }
    }

    std::unique_ptr<InstanceScope>
    buildScope(const Module &mod, const std::string &path,
               InstanceScope *parent, const Bindings &bindings)
    {
        if (++depth_ > 64)
            throw ElabError("instantiation depth limit exceeded "
                            "(recursive modules?)");
        auto scope = std::make_unique<InstanceScope>();
        scope->path = path;
        scope->module = &mod;
        scope->parent = parent;

        // 0. Functions are name-resolved lazily at call time.
        for (auto &item : mod.items) {
            if (item->kind == NodeKind::FunctionDecl) {
                auto *f = item->as<FunctionDecl>();
                scope->functions[f->name] = f;
            }
        }

        // 1. Parameters, in declaration order.
        for (auto &item : mod.items) {
            if (item->kind != NodeKind::VarDecl)
                continue;
            auto *d = item->as<VarDecl>();
            if (d->varKind != VarKind::Parameter &&
                d->varKind != VarKind::Localparam)
                continue;
            if (!d->init)
                fail(path, "parameter '" + d->name + "' lacks a value");
            scope->params[d->name] = evalConst(*d->init, scope->params);
        }

        // 2. Merge declarations per name.
        std::vector<std::string> order;
        std::unordered_map<std::string, DeclInfo> decls;
        for (auto &item : mod.items) {
            if (item->kind != NodeKind::VarDecl)
                continue;
            auto *d = item->as<VarDecl>();
            if (d->varKind == VarKind::Parameter ||
                d->varKind == VarKind::Localparam)
                continue;
            if (d->varKind == VarKind::Event) {
                if (!scope->events.count(d->name))
                    scope->events[d->name] = design_.makeEvent(
                        path.empty() ? d->name : path + "." + d->name);
                continue;
            }
            if (!decls.count(d->name)) {
                order.push_back(d->name);
                decls[d->name] = DeclInfo{};
            }
            DeclInfo &info = decls[d->name];
            if (d->varKind == VarKind::Reg)
                info.isReg = true;
            if (d->varKind == VarKind::Integer) {
                info.isReg = true;
                info.width = 32;
            }
            if (d->msb) {
                int64_t msb = evalConstInt(*d->msb, scope->params);
                int64_t lsb = evalConstInt(*d->lsb, scope->params);
                if (lsb > msb)
                    fail(path, "ascending range on '" + d->name +
                                   "' is not supported");
                info.width = static_cast<int>(msb - lsb + 1);
                info.lsb = static_cast<int>(lsb);
            }
            if (d->arrayFirst) {
                info.isArray = true;
                info.arrFirst =
                    evalConstInt(*d->arrayFirst, scope->params);
                info.arrLast = evalConstInt(*d->arrayLast, scope->params);
            }
            if (d->init)
                info.init = d->init.get();
        }
        // Ports without any body declaration default to scalar wires.
        for (auto &p : mod.ports) {
            if (!decls.count(p.name)) {
                order.push_back(p.name);
                decls[p.name] = DeclInfo{};
            }
        }

        // 3. Create (or alias) the runtime objects.
        for (auto &name : order) {
            const DeclInfo &info = decls[name];
            std::string full = path.empty() ? name : path + "." + name;
            if (info.isArray) {
                scope->memories[name] = design_.makeMemory(
                    full, info.width, info.arrFirst, info.arrLast);
                continue;
            }
            auto bind = bindings.find(name);
            if (bind != bindings.end() &&
                bind->second.kind == Binding::Kind::Target) {
                Signal *psig = bind->second.target.sig;
                if (psig->width() == info.width) {
                    scope->signals[name] = SignalRef{psig, info.lsb};
                    continue;
                }
                // Width mismatch (real tools warn and connect the low
                // bits): give the child its own signal and bridge it
                // to the parent in the port's direction.
                Signal *csig =
                    design_.makeSignal(full, info.width, info.isReg);
                scope->signals[name] = SignalRef{csig, info.lsb};
                if (bind->second.dir == PortDir::Output)
                    bridgeSignals(csig, psig);
                else
                    bridgeSignals(psig, csig);
                continue;
            }
            Signal *sig = design_.makeSignal(full, info.width,
                                             info.isReg);
            scope->signals[name] = SignalRef{sig, info.lsb};
            if (info.init)
                sig->initValue(evalConst(*info.init, scope->params));
            if (bind != bindings.end() &&
                bind->second.kind == Binding::Kind::Expr) {
                driveSignalFromExpr(*bind->second.parentScope,
                                    *bind->second.expr, sig);
            }
        }

        // 4. Behavioral items and children.
        //
        // Under the compiled backend, DUT modules (everything below the
        // testbench top) inside the compilable subset get their cont
        // assigns and always blocks lowered to bytecode; placeItem()
        // registers each item's runtime hooks at the same elaboration
        // position Process::start/makeContAssign would have used, so
        // t=0 event ordering is preserved. compile() returning null
        // keeps the whole module on the event interpreter.
        CompiledModule *cm = nullptr;
        if (design_.backend() != SimBackend::Event && parent != nullptr) {
            auto compiled = CompiledModule::compile(design_, *scope, mod);
            if (compiled) {
                cm = compiled.get();
                design_.adoptCompiled(std::move(compiled));
                ++design_.compiledStats().modulesCompiled;
            } else {
                ++design_.compiledStats().modulesFallback;
            }
        }
        for (auto &item : mod.items) {
            switch (item->kind) {
              case NodeKind::ContAssign: {
                if (cm) {
                    cm->placeItem(*item);
                    break;
                }
                auto *ca = item->as<ContAssign>();
                makeContAssign(*scope, *ca->lhs, *ca->rhs);
                break;
              }
              case NodeKind::AlwaysBlock: {
                auto *b = item->as<AlwaysBlock>();
                if (!b->body)
                    break;
                if (cm) {
                    cm->placeItem(*item);
                    break;
                }
                auto proc = std::make_unique<Process>(
                    design_, *scope, Process::Kind::Always, *b->body,
                    (path.empty() ? "" : path + ".") + "always@" +
                        std::to_string(b->line));
                proc->start();
                design_.adoptProcess(std::move(proc));
                break;
              }
              case NodeKind::InitialBlock: {
                auto *b = item->as<InitialBlock>();
                if (!b->body)
                    break;
                auto proc = std::make_unique<Process>(
                    design_, *scope, Process::Kind::Initial, *b->body,
                    (path.empty() ? "" : path + ".") + "initial@" +
                        std::to_string(b->line));
                proc->start();
                design_.adoptProcess(std::move(proc));
                break;
              }
              case NodeKind::Instance:
                buildInstance(*scope, *item->as<Instance>());
                break;
              default:
                break;
            }
        }

        --depth_;
        return scope;
    }

    void
    buildInstance(InstanceScope &parent, const Instance &inst)
    {
        const Module *child = file_.findModule(inst.moduleName);
        if (!child)
            fail(parent.path,
                 "instance of unknown module '" + inst.moduleName + "'");

        Bindings bindings;
        for (size_t i = 0; i < inst.conns.size(); ++i) {
            const PortConn &conn = inst.conns[i];
            std::string port_name = conn.port;
            if (port_name.empty()) {
                if (i >= child->ports.size())
                    fail(parent.path, "too many positional connections "
                                      "to '" + inst.instName + "'");
                port_name = child->ports[i].name;
            }
            auto dir = child->portDir(port_name);
            if (!dir)
                fail(parent.path, "unknown port '" + port_name +
                                      "' on module '" +
                                      inst.moduleName + "'");
            if (!conn.expr)
                continue;  // explicitly unconnected

            Binding b;
            b.dir = *dir;
            if (conn.expr->kind == NodeKind::Ident) {
                const std::string &n = conn.expr->as<Ident>()->name;
                if (SignalRef r = parent.findSignal(n); r.sig) {
                    b.kind = Binding::Kind::Target;
                    b.target = r;
                    bindings[port_name] = b;
                    continue;
                }
            }
            if (*dir != PortDir::Input)
                fail(parent.path,
                     "output port '" + port_name +
                         "' must be connected to a plain signal");
            b.kind = Binding::Kind::Expr;
            b.expr = conn.expr.get();
            b.parentScope = &parent;
            bindings[port_name] = b;
        }

        std::string child_path = parent.path.empty()
                                     ? inst.instName
                                     : parent.path + "." + inst.instName;
        parent.children.push_back(
            buildScope(*child, child_path, &parent, bindings));
    }
};

} // namespace

std::unique_ptr<Design>
elaborate(std::shared_ptr<const SourceFile> file, const std::string &top,
          const SimGuards &guards)
{
    const Module *top_mod = file->findModule(top);
    if (!top_mod)
        throw ElabError("top module '" + top + "' not found");
    auto design = std::make_unique<Design>();
    design->setGuards(guards);
    design->holdAst(file);
    Elaborator e(*design, *file);
    e.buildTop(*top_mod);
    return design;
}

std::unique_ptr<Design>
elaborate(const SourceFile &file, const std::string &top,
          const SimGuards &guards)
{
    std::shared_ptr<const SourceFile> copy = file.cloneFile();
    return elaborate(std::move(copy), top, guards);
}

} // namespace cirfix::sim
