#pragma once

/**
 * @file
 * Sampled simulation output: the data model of the paper's Figure 2.
 *
 * A Trace is a mapping Time -> Var -> {0,1,x,z}* recorded by the
 * instrumented testbench: one row per sampling instant (each rising
 * clock edge), one column per recorded output wire/register. The same
 * structure serves as the simulation result S and, when recorded from
 * a known-good design, as the expected-behavior oracle O.
 */

#include <optional>
#include <string>
#include <vector>

#include "sim/logic.h"
#include "sim/scheduler.h"

namespace cirfix::sim {

class Trace
{
  public:
    struct Row
    {
        SimTime time = 0;
        std::vector<LogicVec> values;
    };

    Trace() = default;
    explicit Trace(std::vector<std::string> vars)
        : vars_(std::move(vars))
    {}

    const std::vector<std::string> &vars() const { return vars_; }
    const std::vector<Row> &rows() const { return rows_; }
    bool empty() const { return rows_.empty(); }
    size_t size() const { return rows_.size(); }

    /** Append a sample row (times must be non-decreasing). */
    void addRow(SimTime time, std::vector<LogicVec> values);

    /** Column index of @p var, or -1. */
    int varIndex(const std::string &var) const;

    /** Value of @p var at @p time if that row/column exists. */
    std::optional<LogicVec> at(SimTime time, const std::string &var) const;

    /** Row with the given timestamp, or nullptr. */
    const Row *rowAt(SimTime time) const;

    /** Total number of recorded bits (sum of widths over all rows). */
    uint64_t totalBits() const;

    /**
     * Serialize as CSV: header "time,var1,var2,..." then one line per
     * row with bit-string values (the Figure 2 format).
     */
    std::string toCsv() const;

    /** Parse the toCsv() format. Throws std::runtime_error on errors. */
    static Trace fromCsv(const std::string &text);

  private:
    std::vector<std::string> vars_;
    std::vector<Row> rows_;
};

} // namespace cirfix::sim
