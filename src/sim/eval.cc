#include "sim/eval.h"

#include "sim/interp.h"

namespace cirfix::sim {

using namespace verilog;

namespace {

/**
 * Evaluate a call of a user-defined function (IEEE 1364 §10.4).
 *
 * A temporary scope overlays local Signals for the inputs, local
 * variables, and the function-name result register on top of the
 * caller's module scope; the body executes synchronously (function
 * bodies cannot contain timing controls).
 */
LogicVec
callFunction(const FunctionDecl &fn, const FuncCall &call,
             InstanceScope &scope, Design &design)
{
    static thread_local int depth = 0;
    if (depth >= 64)
        return LogicVec::xs(1);  // runaway recursion

    // Argument values evaluated in the caller's scope.
    std::vector<LogicVec> args;
    for (auto &a : call.args)
        args.push_back(evalExpr(*a, scope, design));
    if (args.size() != fn.inputOrder.size())
        return LogicVec::xs(1);

    int ret_width = 1;
    if (fn.msb) {
        try {
            int64_t m = evalConstInt(*fn.msb, scope.params);
            int64_t l = evalConstInt(*fn.lsb, scope.params);
            ret_width = static_cast<int>(m - l + 1);
        } catch (const ElabError &) {
            return LogicVec::xs(1);
        }
    }
    if (ret_width <= 0)
        return LogicVec::xs(1);

    // Local storage for the call frame (stack-owned Signals). The
    // call scope copies the module's name maps (children excluded:
    // InstanceScope owns those) and overlays the frame's locals.
    std::vector<std::unique_ptr<Signal>> frame;
    InstanceScope local;
    local.path = scope.path;
    local.module = scope.module;
    local.parent = scope.parent;
    local.signals = scope.signals;
    local.memories = scope.memories;
    local.events = scope.events;
    local.params = scope.params;
    local.functions = scope.functions;

    auto add_local = [&](const std::string &name, int width,
                         int lsb) {
        frame.push_back(std::make_unique<Signal>(
            name, width, true, &design.scheduler()));
        local.signals[name] = SignalRef{frame.back().get(), lsb};
        local.memories.erase(name);
        return frame.back().get();
    };

    Signal *ret = add_local(fn.name, ret_width, 0);
    for (auto &decl : fn.locals) {
        int width = 1, lsb = 0;
        if (decl->varKind == VarKind::Integer)
            width = 32;
        if (decl->msb) {
            try {
                int64_t m = evalConstInt(*decl->msb, scope.params);
                int64_t l = evalConstInt(*decl->lsb, scope.params);
                width = static_cast<int>(m - l + 1);
                lsb = static_cast<int>(l);
            } catch (const ElabError &) {
                return LogicVec::xs(ret_width);
            }
        }
        add_local(decl->name, width, lsb);
    }
    for (size_t i = 0; i < fn.inputOrder.size(); ++i) {
        SignalRef r = local.findSignal(fn.inputOrder[i]);
        if (r.sig)
            r.sig->initValue(args[i]);
    }

    if (fn.body && !mightSuspend(*fn.body)) {
        ++depth;
        try {
            execStmtSync(design, local, *fn.body);
        } catch (...) {
            --depth;
            throw;
        }
        --depth;
    }
    return ret->value();
}

LogicVec
applyUnary(UnaryOp op, const LogicVec &v)
{
    switch (op) {
      case UnaryOp::Plus: return v;
      case UnaryOp::Minus: return v.negate();
      case UnaryOp::Not: return v.logicNot();
      case UnaryOp::BitNot: return v.bitNot();
      case UnaryOp::RedAnd: return v.reduceAnd();
      case UnaryOp::RedOr: return v.reduceOr();
      case UnaryOp::RedXor: return v.reduceXor();
      case UnaryOp::RedNand: return v.reduceNand();
      case UnaryOp::RedNor: return v.reduceNor();
      case UnaryOp::RedXnor: return v.reduceXnor();
    }
    return LogicVec::xs(v.width());
}

LogicVec
applyBinary(BinaryOp op, const LogicVec &a, const LogicVec &b)
{
    switch (op) {
      case BinaryOp::Add: return a.add(b);
      case BinaryOp::Sub: return a.sub(b);
      case BinaryOp::Mul: return a.mul(b);
      case BinaryOp::Div: return a.div(b);
      case BinaryOp::Mod: return a.mod(b);
      case BinaryOp::Pow: return a.pow(b);
      case BinaryOp::BitAnd: return a.bitAnd(b);
      case BinaryOp::BitOr: return a.bitOr(b);
      case BinaryOp::BitXor: return a.bitXor(b);
      case BinaryOp::BitXnor: return a.bitXnor(b);
      case BinaryOp::LogAnd: return a.logicAnd(b);
      case BinaryOp::LogOr: return a.logicOr(b);
      case BinaryOp::Eq: return a.logicEq(b);
      case BinaryOp::Neq: return a.logicNeq(b);
      case BinaryOp::CaseEq: return a.caseEq(b);
      case BinaryOp::CaseNeq: return a.caseNeq(b);
      case BinaryOp::Lt: return a.lt(b);
      case BinaryOp::Le: return a.le(b);
      case BinaryOp::Gt: return a.gt(b);
      case BinaryOp::Ge: return a.ge(b);
      case BinaryOp::Shl: return a.shl(b);
      case BinaryOp::Shr: return a.shr(b);
    }
    return LogicVec::xs(std::max(a.width(), b.width()));
}

/** Ternary with ambiguous condition merges branches bitwise (IEEE). */
LogicVec
mergeTernary(const LogicVec &t, const LogicVec &e)
{
    int w = std::max(t.width(), e.width());
    LogicVec a = t.resized(w), b = e.resized(w), r(w, Bit::X);
    for (int i = 0; i < w; ++i)
        if (a.bit(i) == b.bit(i) &&
            (a.bit(i) == Bit::Zero || a.bit(i) == Bit::One))
            r.setBit(i, a.bit(i));
    return r;
}

} // namespace

LogicVec
evalExpr(const Expr &e, InstanceScope &scope, Design &design)
{
    switch (e.kind) {
      case NodeKind::Number:
        return e.as<Number>()->value;
      case NodeKind::Ident: {
        const std::string &n = e.as<Ident>()->name;
        if (SignalRef r = scope.findSignal(n); r.sig)
            return r.sig->value();
        auto p = scope.params.find(n);
        if (p != scope.params.end())
            return p->second;
        return LogicVec::xs(1);
      }
      case NodeKind::Index: {
        auto *ix = e.as<Index>();
        LogicVec idx = evalExpr(*ix->index, scope, design);
        if (Memory *mem = scope.findMemory(ix->name))
            return mem->read(idx);
        LogicVec base(1, Bit::X);
        int lsb = 0;
        if (SignalRef r = scope.findSignal(ix->name); r.sig) {
            base = r.sig->value();
            lsb = r.lsb;
        } else if (auto p = scope.params.find(ix->name);
                   p != scope.params.end()) {
            base = p->second;
        } else {
            return LogicVec::xs(1);
        }
        if (idx.hasUnknown())
            return LogicVec::xs(1);
        int bit = static_cast<int>(idx.toUint64()) - lsb;
        LogicVec out(1, Bit::X);
        out.setBit(0, base.bit(bit));
        return out;
      }
      case NodeKind::RangeSel: {
        auto *r = e.as<RangeSel>();
        LogicVec m = evalExpr(*r->msb, scope, design);
        LogicVec l = evalExpr(*r->lsb, scope, design);
        LogicVec base(1, Bit::X);
        int lsb_off = 0;
        if (SignalRef sr = scope.findSignal(r->name); sr.sig) {
            base = sr.sig->value();
            lsb_off = sr.lsb;
        } else if (auto p = scope.params.find(r->name);
                   p != scope.params.end()) {
            base = p->second;
        } else {
            return LogicVec::xs(1);
        }
        if (m.hasUnknown() || l.hasUnknown())
            return LogicVec::xs(1);
        int msb = static_cast<int>(m.toUint64()) - lsb_off;
        int lsb = static_cast<int>(l.toUint64()) - lsb_off;
        if (msb < lsb)
            return LogicVec::xs(1);
        return base.slice(msb, lsb);
      }
      case NodeKind::Unary: {
        auto *u = e.as<Unary>();
        return applyUnary(u->op, evalExpr(*u->operand, scope, design));
      }
      case NodeKind::Binary: {
        auto *b = e.as<Binary>();
        return applyBinary(b->op, evalExpr(*b->lhs, scope, design),
                           evalExpr(*b->rhs, scope, design));
      }
      case NodeKind::Ternary: {
        auto *t = e.as<Ternary>();
        LogicVec c = evalExpr(*t->cond, scope, design);
        if (c.hasOne())
            return evalExpr(*t->thenExpr, scope, design);
        if (!c.hasUnknown())
            return evalExpr(*t->elseExpr, scope, design);
        return mergeTernary(evalExpr(*t->thenExpr, scope, design),
                            evalExpr(*t->elseExpr, scope, design));
      }
      case NodeKind::Concat: {
        auto *c = e.as<Concat>();
        LogicVec acc(1, Bit::Zero);
        bool first = true;
        for (auto &p : c->parts) {
            LogicVec v = evalExpr(*p, scope, design);
            acc = first ? v : LogicVec::concat(acc, v);
            first = false;
        }
        return acc;
      }
      case NodeKind::Repl: {
        auto *r = e.as<Repl>();
        LogicVec n = evalExpr(*r->count, scope, design);
        LogicVec v = evalExpr(*r->value, scope, design);
        if (n.hasUnknown() || n.toUint64() == 0 || n.toUint64() > 4096)
            return LogicVec::xs(v.width());
        return v.replicate(static_cast<int>(n.toUint64()));
      }
      case NodeKind::FuncCall: {
        auto *f = e.as<FuncCall>();
        if (const FunctionDecl *fn = scope.findFunction(f->name))
            return callFunction(*fn, *f, scope, design);
        return LogicVec::xs(1);
      }
      case NodeKind::SysFuncCall: {
        auto *f = e.as<SysFuncCall>();
        if (f->name == "$time" || f->name == "$stime" ||
            f->name == "$realtime")
            return LogicVec(64, design.scheduler().now());
        if (f->name == "$random" || f->name == "$urandom")
            return LogicVec(32, static_cast<uint64_t>(design.nextRandom()));
        return LogicVec::xs(32);
      }
      default:
        return LogicVec::xs(1);
    }
}

LogicVec
evalConst(const Expr &e,
          const std::unordered_map<std::string, LogicVec> &params)
{
    switch (e.kind) {
      case NodeKind::Number:
        return e.as<Number>()->value;
      case NodeKind::Ident: {
        auto it = params.find(e.as<Ident>()->name);
        if (it == params.end())
            throw ElabError("non-constant identifier '" +
                            e.as<Ident>()->name + "' in constant context");
        return it->second;
      }
      case NodeKind::Unary: {
        auto *u = e.as<Unary>();
        return applyUnary(u->op, evalConst(*u->operand, params));
      }
      case NodeKind::Binary: {
        auto *b = e.as<Binary>();
        return applyBinary(b->op, evalConst(*b->lhs, params),
                           evalConst(*b->rhs, params));
      }
      case NodeKind::Ternary: {
        auto *t = e.as<Ternary>();
        LogicVec c = evalConst(*t->cond, params);
        if (c.hasOne())
            return evalConst(*t->thenExpr, params);
        if (!c.hasUnknown())
            return evalConst(*t->elseExpr, params);
        // Ambiguous condition: IEEE bitwise merge, same as evalExpr.
        return mergeTernary(evalConst(*t->thenExpr, params),
                            evalConst(*t->elseExpr, params));
      }
      case NodeKind::Concat: {
        auto *c = e.as<Concat>();
        LogicVec acc(1, Bit::Zero);
        bool first = true;
        for (auto &p : c->parts) {
            LogicVec v = evalConst(*p, params);
            acc = first ? v : LogicVec::concat(acc, v);
            first = false;
        }
        return acc;
      }
      case NodeKind::Repl: {
        auto *r = e.as<Repl>();
        LogicVec n = evalConst(*r->count, params);
        LogicVec v = evalConst(*r->value, params);
        if (n.hasUnknown() || n.toUint64() == 0)
            throw ElabError("bad replication count in constant context");
        return v.replicate(static_cast<int>(n.toUint64()));
      }
      default:
        throw ElabError(std::string("non-constant expression of kind ") +
                        nodeKindName(e.kind));
    }
}

int64_t
evalConstInt(const Expr &e,
             const std::unordered_map<std::string, LogicVec> &params)
{
    LogicVec v = evalConst(e, params);
    if (v.hasUnknown())
        throw ElabError("x/z value in integer constant context");
    return static_cast<int64_t>(v.toUint64());
}

namespace {

void
resolveInto(Design &design, InstanceScope &scope, const Expr &lhs,
            WriteTarget &out)
{
    switch (lhs.kind) {
      case NodeKind::Ident: {
        WriteSlot s;
        if (SignalRef r = scope.findSignal(lhs.as<Ident>()->name);
            r.sig) {
            s.sig = r.sig;
            s.lsb = 0;
            s.width = r.sig->width();
            s.ok = true;
        }
        out.slots.push_back(std::move(s));
        break;
      }
      case NodeKind::Index: {
        auto *ix = lhs.as<Index>();
        WriteSlot s;
        LogicVec idx = evalExpr(*ix->index, scope, design);
        if (Memory *mem = scope.findMemory(ix->name)) {
            s.mem = mem;
            s.addr = idx;
            s.width = mem->width();
            s.ok = !idx.hasUnknown();
        } else if (SignalRef r = scope.findSignal(ix->name); r.sig) {
            s.sig = r.sig;
            s.width = 1;
            if (!idx.hasUnknown()) {
                int bit = static_cast<int>(idx.toUint64()) - r.lsb;
                if (bit >= 0 && bit < r.sig->width()) {
                    s.lsb = bit;
                    s.ok = true;
                }
            }
        }
        out.slots.push_back(std::move(s));
        break;
      }
      case NodeKind::RangeSel: {
        auto *rs = lhs.as<RangeSel>();
        WriteSlot s;
        LogicVec m = evalExpr(*rs->msb, scope, design);
        LogicVec l = evalExpr(*rs->lsb, scope, design);
        if (SignalRef r = scope.findSignal(rs->name);
            r.sig && !m.hasUnknown() && !l.hasUnknown()) {
            int msb = static_cast<int>(m.toUint64()) - r.lsb;
            int lsb = static_cast<int>(l.toUint64()) - r.lsb;
            if (msb >= lsb && lsb >= 0 && msb < r.sig->width()) {
                s.sig = r.sig;
                s.lsb = lsb;
                s.width = msb - lsb + 1;
                s.ok = true;
            } else if (msb >= lsb) {
                s.width = msb - lsb + 1;
            }
        }
        out.slots.push_back(std::move(s));
        break;
      }
      case NodeKind::Concat:
        for (auto &p : lhs.as<Concat>()->parts)
            resolveInto(design, scope, *p, out);
        break;
      default:
        // Invalid target (validator rejects these); drop the write.
        out.slots.push_back(WriteSlot{});
        break;
    }
}

} // namespace

WriteTarget
resolveLValue(Design &design, InstanceScope &scope, const Expr &lhs)
{
    WriteTarget t;
    resolveInto(design, scope, lhs, t);
    for (auto &s : t.slots)
        t.totalWidth += s.width;
    return t;
}

void
performWrite(const WriteTarget &target, const LogicVec &value)
{
    LogicVec v = value.resized(target.totalWidth);
    int off = 0;  // distribute from the LSB end == last slot first
    for (auto it = target.slots.rbegin(); it != target.slots.rend();
         ++it) {
        const WriteSlot &s = *it;
        LogicVec part = v.slice(off + s.width - 1, off);
        off += s.width;
        if (!s.ok)
            continue;
        if (s.mem) {
            s.mem->write(s.addr, part);
        } else if (s.sig) {
            if (s.lsb == 0 && s.width == s.sig->width()) {
                s.sig->set(part);
            } else {
                LogicVec cur = s.sig->value();
                cur.writeSlice(s.lsb, part);
                s.sig->set(cur);
            }
        }
    }
}

} // namespace cirfix::sim
