#include "sim/design.h"

#include <thread>

#include "sim/compiled.h"
#include "sim/interp.h"

namespace cirfix::sim {

InstanceScope *
InstanceScope::findChild(const std::string &inst_name) const
{
    std::string suffix = "." + inst_name;
    for (auto &c : children) {
        const std::string &p = c->path;
        if (p == inst_name ||
            (p.size() > suffix.size() &&
             p.compare(p.size() - suffix.size(), suffix.size(), suffix) ==
                 0))
            return c.get();
    }
    return nullptr;
}

SignalRef
InstanceScope::findSignal(const std::string &name) const
{
    auto it = signals.find(name);
    return it == signals.end() ? SignalRef{} : it->second;
}

Memory *
InstanceScope::findMemory(const std::string &name) const
{
    auto it = memories.find(name);
    return it == memories.end() ? nullptr : it->second;
}

NamedEvent *
InstanceScope::findEvent(const std::string &name) const
{
    auto it = events.find(name);
    return it == events.end() ? nullptr : it->second;
}

const verilog::FunctionDecl *
InstanceScope::findFunction(const std::string &name) const
{
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : it->second;
}

Design::Design() = default;
Design::~Design() = default;

SignalRef
Design::findSignal(const std::string &hier_path)
{
    size_t dot = hier_path.rfind('.');
    if (dot == std::string::npos)
        return top_->findSignal(hier_path);
    InstanceScope *scope = findScope(hier_path.substr(0, dot));
    if (!scope)
        return SignalRef{};
    return scope->findSignal(hier_path.substr(dot + 1));
}

InstanceScope *
Design::findScope(const std::string &hier_path)
{
    InstanceScope *scope = top_.get();
    if (hier_path.empty())
        return scope;
    size_t start = 0;
    while (scope && start <= hier_path.size()) {
        size_t dot = hier_path.find('.', start);
        std::string part = hier_path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        scope = scope->findChild(part);
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return scope;
}

void
Design::addDisplay(std::string line)
{
    if (log_.size() < kMaxLogLines)
        log_.push_back(std::move(line));
}

uint32_t
Design::nextRandom()
{
    // xorshift64*
    rngState_ ^= rngState_ >> 12;
    rngState_ ^= rngState_ << 25;
    rngState_ ^= rngState_ >> 27;
    return static_cast<uint32_t>((rngState_ * 0x2545F4914F6CDD1Dull) >>
                                 32);
}

Scheduler::RunResult
Design::run(const RunLimits &limits)
{
    stmtBudget_ = limits.maxStatements;
    if (limits.maxWallSeconds > 0) {
        hasDeadline_ = true;
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            limits.maxWallSeconds));
    } else {
        hasDeadline_ = false;
    }
    return sched_.run(limits.maxTime, limits.maxCallbacks,
                      limits.maxWallSeconds);
}

void
Design::setGuards(const SimGuards &guards)
{
    memBudget_ = guards.memBudgetBytes;
    fault_ = guards.faultPlan;
    faultArmed_ = fault_.throwAtStmt != 0 || fault_.stallAtStmt != 0;
    backend_ = guards.backend;
}

void
Design::chargeAlloc(uint64_t bytes)
{
    ++allocCount_;
    if (fault_.failAllocAt && allocCount_ >= fault_.failAllocAt)
        throw SimOom("injected allocation failure (allocation " +
                     std::to_string(allocCount_) + ")");
    memUsed_ += bytes;
    if (memBudget_ && memUsed_ > memBudget_)
        throw SimOom("memory budget exhausted (" +
                     std::to_string(memUsed_) + " > " +
                     std::to_string(memBudget_) + " bytes)");
}

void
Design::checkDeadline()
{
    if (std::chrono::steady_clock::now() < deadline_)
        return;
    // Flag the scheduler first so the run status reads Deadline, then
    // unwind the executing process via the usual SimAbort path.
    sched_.noteDeadline("wall-clock deadline exceeded");
    throw SimAbort("wall-clock deadline exceeded",
                   SimAbort::Cause::Deadline);
}

void
Design::faultStmtHook()
{
    if (fault_.throwAtStmt && stmtCount_ >= fault_.throwAtStmt)
        throw std::runtime_error("injected fault: throw at statement " +
                                 std::to_string(stmtCount_));
    if (fault_.stallAtStmt && stmtCount_ >= fault_.stallAtStmt) {
        if (!hasDeadline_)
            throw std::runtime_error(
                "injected stall without an armed deadline");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        checkDeadline();
    }
}

Signal *
Design::makeSignal(const std::string &name, int width, bool is_reg)
{
    chargeAlloc(128 + static_cast<uint64_t>(width < 0 ? 0 : width) / 4);
    signals_.push_back(
        std::make_unique<Signal>(name, width, is_reg, &sched_));
    return signals_.back().get();
}

Memory *
Design::makeMemory(const std::string &name, int width, int64_t first,
                   int64_t last)
{
    uint64_t words =
        last >= first ? static_cast<uint64_t>(last - first + 1)
                      : static_cast<uint64_t>(first - last + 1);
    chargeAlloc(64 + words * (32 + static_cast<uint64_t>(
                                       width < 0 ? 0 : width) /
                                       4));
    memories_.push_back(std::make_unique<Memory>(name, width, first,
                                                 last));
    return memories_.back().get();
}

NamedEvent *
Design::makeEvent(const std::string &name)
{
    chargeAlloc(64);
    events_.push_back(std::make_unique<NamedEvent>(name));
    return events_.back().get();
}

void
Design::adoptProcess(std::unique_ptr<Process> p)
{
    processes_.push_back(std::move(p));
}

void
Design::adoptCompiled(std::unique_ptr<CompiledModule> m)
{
    compiled_.push_back(std::move(m));
}

} // namespace cirfix::sim
