#include "sim/design.h"

#include "sim/interp.h"

namespace cirfix::sim {

InstanceScope *
InstanceScope::findChild(const std::string &inst_name) const
{
    std::string suffix = "." + inst_name;
    for (auto &c : children) {
        const std::string &p = c->path;
        if (p == inst_name ||
            (p.size() > suffix.size() &&
             p.compare(p.size() - suffix.size(), suffix.size(), suffix) ==
                 0))
            return c.get();
    }
    return nullptr;
}

SignalRef
InstanceScope::findSignal(const std::string &name) const
{
    auto it = signals.find(name);
    return it == signals.end() ? SignalRef{} : it->second;
}

Memory *
InstanceScope::findMemory(const std::string &name) const
{
    auto it = memories.find(name);
    return it == memories.end() ? nullptr : it->second;
}

NamedEvent *
InstanceScope::findEvent(const std::string &name) const
{
    auto it = events.find(name);
    return it == events.end() ? nullptr : it->second;
}

const verilog::FunctionDecl *
InstanceScope::findFunction(const std::string &name) const
{
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : it->second;
}

Design::Design() = default;
Design::~Design() = default;

SignalRef
Design::findSignal(const std::string &hier_path)
{
    size_t dot = hier_path.rfind('.');
    if (dot == std::string::npos)
        return top_->findSignal(hier_path);
    InstanceScope *scope = findScope(hier_path.substr(0, dot));
    if (!scope)
        return SignalRef{};
    return scope->findSignal(hier_path.substr(dot + 1));
}

InstanceScope *
Design::findScope(const std::string &hier_path)
{
    InstanceScope *scope = top_.get();
    if (hier_path.empty())
        return scope;
    size_t start = 0;
    while (scope && start <= hier_path.size()) {
        size_t dot = hier_path.find('.', start);
        std::string part = hier_path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        scope = scope->findChild(part);
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return scope;
}

void
Design::addDisplay(std::string line)
{
    if (log_.size() < kMaxLogLines)
        log_.push_back(std::move(line));
}

uint32_t
Design::nextRandom()
{
    // xorshift64*
    rngState_ ^= rngState_ >> 12;
    rngState_ ^= rngState_ << 25;
    rngState_ ^= rngState_ >> 27;
    return static_cast<uint32_t>((rngState_ * 0x2545F4914F6CDD1Dull) >>
                                 32);
}

Scheduler::RunResult
Design::run(const RunLimits &limits)
{
    stmtBudget_ = limits.maxStatements;
    return sched_.run(limits.maxTime, limits.maxCallbacks);
}

Signal *
Design::makeSignal(const std::string &name, int width, bool is_reg)
{
    signals_.push_back(
        std::make_unique<Signal>(name, width, is_reg, &sched_));
    return signals_.back().get();
}

Memory *
Design::makeMemory(const std::string &name, int width, int64_t first,
                   int64_t last)
{
    memories_.push_back(std::make_unique<Memory>(name, width, first,
                                                 last));
    return memories_.back().get();
}

NamedEvent *
Design::makeEvent(const std::string &name)
{
    events_.push_back(std::make_unique<NamedEvent>(name));
    return events_.back().get();
}

void
Design::adoptProcess(std::unique_ptr<Process> p)
{
    processes_.push_back(std::move(p));
}

} // namespace cirfix::sim
