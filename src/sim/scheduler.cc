#include "sim/scheduler.h"

#include <chrono>

namespace cirfix::sim {

namespace {
/// Thread-local so concurrent candidate evaluations (one Design per
/// worker) never contend; deterministic for a deterministic workload.
thread_local uint64_t g_event_heap_allocs = 0;
} // namespace

uint64_t
EventFn::heapAllocs()
{
    return g_event_heap_allocs;
}

void
EventFn::noteHeapAlloc()
{
    ++g_event_heap_allocs;
}

Scheduler::~Scheduler()
{
    for (TimeSlot *list : {head_, free_}) {
        while (list) {
            TimeSlot *next = list->next;
            delete list;
            list = next;
        }
    }
}

Scheduler::TimeSlot &
Scheduler::slotAt(SimTime t)
{
    // The pending list is short (current slot plus a handful of future
    // delays), and the common case — scheduling into the current slot —
    // hits the head node immediately, so a linear walk beats the old
    // std::map both on lookup and on allocator traffic.
    TimeSlot **link = &head_;
    while (*link && (*link)->time < t)
        link = &(*link)->next;
    if (*link && (*link)->time == t)
        return **link;
    TimeSlot *s;
    if (free_) {
        s = free_;
        free_ = s->next;
        ++allocStats_.slotsRecycled;
    } else {
        s = new TimeSlot;
        ++allocStats_.slotsAllocated;
    }
    s->time = t;
    s->next = *link;
    *link = s;
    return *s;
}

void
Scheduler::retireHead()
{
    TimeSlot *s = head_;
    head_ = s->next;
    s->clear(); // destroys callbacks, keeps each region's capacity
    s->next = free_;
    free_ = s;
}

void
Scheduler::scheduleActive(Callback cb)
{
    ++allocStats_.eventsScheduled;
    slotAt(now_).active.push(std::move(cb));
}

void
Scheduler::scheduleInactive(Callback cb)
{
    ++allocStats_.eventsScheduled;
    slotAt(now_).inactive.push(std::move(cb));
}

void
Scheduler::scheduleAt(SimTime t, Callback cb)
{
    ++allocStats_.eventsScheduled;
    slotAt(t < now_ ? now_ : t).active.push(std::move(cb));
}

void
Scheduler::scheduleNba(Callback cb)
{
    ++allocStats_.eventsScheduled;
    slotAt(now_).nba.push(std::move(cb));
}

void
Scheduler::scheduleNbaAt(SimTime t, Callback cb)
{
    ++allocStats_.eventsScheduled;
    slotAt(t < now_ ? now_ : t).nba.push(std::move(cb));
}

void
Scheduler::schedulePostponed(Callback cb)
{
    ++allocStats_.eventsScheduled;
    slotAt(now_).postponed.push(std::move(cb));
}

void
Scheduler::note(const std::string &reason, AbortKind kind)
{
    // First abort wins: later notes (e.g. the generic noteAbort from a
    // process unwinding a deadline SimAbort) must not reclassify it.
    if (aborted_)
        return;
    aborted_ = true;
    abortKind_ = kind;
    abortReason_ = reason;
}

void
Scheduler::noteAbort(const std::string &reason)
{
    note(reason, AbortKind::Budget);
}

void
Scheduler::noteDeadline(const std::string &reason)
{
    note(reason, AbortKind::Deadline);
}

void
Scheduler::noteCrash(const std::string &reason)
{
    note(reason, AbortKind::Crash);
}

void
Scheduler::noteEarlyStop(const std::string &reason)
{
    note(reason, AbortKind::Early);
}

Scheduler::RunResult
Scheduler::run(SimTime max_time, uint64_t max_callbacks,
               double max_wall_seconds)
{
    RunResult res;
    const auto wall_start = std::chrono::steady_clock::now();
    uint64_t next_wall_check = 1024;
    auto tick = [&] {
        ++res.callbacks;
        if (max_wall_seconds > 0 && res.callbacks >= next_wall_check) {
            next_wall_check = res.callbacks + 1024;
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wall_start)
                              .count();
            if (secs > max_wall_seconds)
                noteDeadline("wall-clock deadline exceeded");
        }
    };
    while (head_) {
        now_ = head_->time;
        if (now_ > max_time) {
            res.status = Status::MaxTime;
            res.endTime = now_;
            return res;
        }
        // Drain the slot: active, then promote inactive, then NBA.
        // NBA updates may refill active (edge wakeups), so loop.
        // Scheduling from inside callbacks can only target now_ or
        // later (scheduleAt clamps), so head_ stays this node until we
        // retire it below.
        TimeSlot &slot = *head_;
        for (;;) {
            if (!slot.active.empty()) {
                Callback cb = slot.active.pop();
                cb();
                tick();
                if (finish_ || aborted_ || res.callbacks > max_callbacks)
                    break;
                continue;
            }
            if (!slot.inactive.empty()) {
                // Promote #0 events; active is drained (empty buffer),
                // so this is a pure buffer exchange.
                std::swap(slot.active.items, slot.inactive.items);
                std::swap(slot.active.head, slot.inactive.head);
                continue;
            }
            if (!slot.nba.empty()) {
                // NBA updates execute in scheduling order; each may wake
                // processes into the (currently empty) active region.
                // Swap into the scratch buffer so both vectors keep
                // their capacity across slots.
                nbaScratch_.clear();
                nbaScratch_.swap(slot.nba.items);
                size_t first = slot.nba.head;
                slot.nba.head = 0;
                for (size_t i = first; i < nbaScratch_.size(); ++i) {
                    nbaScratch_[i]();
                    tick();
                    if (finish_ || aborted_ ||
                        res.callbacks > max_callbacks)
                        break;
                }
                nbaScratch_.clear();
                if (finish_ || aborted_ || res.callbacks > max_callbacks)
                    break;
                continue;
            }
            // Slot quiescent: run postponed (read-only) callbacks.
            if (!slot.postponed.empty()) {
                postScratch_.clear();
                postScratch_.swap(slot.postponed.items);
                size_t first = slot.postponed.head;
                slot.postponed.head = 0;
                for (size_t i = first; i < postScratch_.size(); ++i) {
                    postScratch_[i]();
                    tick();
                }
                postScratch_.clear();
                // Sampling must not create same-slot activity, but be
                // defensive: loop again if it somehow did.
                if (slot.busy())
                    continue;
            }
            break;
        }
        if (aborted_) {
            res.status = abortStatus();
            res.endTime = now_;
            return res;
        }
        if (res.callbacks > max_callbacks) {
            noteAbort("callback budget exhausted");
            res.status = Status::Runaway;
            res.endTime = now_;
            return res;
        }
        if (finish_) {
            res.status = Status::Finished;
            res.endTime = now_;
            return res;
        }
        retireHead();
    }
    res.status = Status::Idle;
    res.endTime = now_;
    return res;
}

} // namespace cirfix::sim
