#include "sim/scheduler.h"

namespace cirfix::sim {

void
Scheduler::scheduleActive(Callback cb)
{
    slotAt(now_).active.push_back(std::move(cb));
}

void
Scheduler::scheduleInactive(Callback cb)
{
    slotAt(now_).inactive.push_back(std::move(cb));
}

void
Scheduler::scheduleAt(SimTime t, Callback cb)
{
    slotAt(t < now_ ? now_ : t).active.push_back(std::move(cb));
}

void
Scheduler::scheduleNba(Callback cb)
{
    slotAt(now_).nba.push_back(std::move(cb));
}

void
Scheduler::scheduleNbaAt(SimTime t, Callback cb)
{
    slotAt(t < now_ ? now_ : t).nba.push_back(std::move(cb));
}

void
Scheduler::schedulePostponed(Callback cb)
{
    slotAt(now_).postponed.push_back(std::move(cb));
}

void
Scheduler::noteAbort(const std::string &reason)
{
    aborted_ = true;
    if (abortReason_.empty())
        abortReason_ = reason;
}

Scheduler::RunResult
Scheduler::run(SimTime max_time, uint64_t max_callbacks)
{
    RunResult res;
    while (!queue_.empty()) {
        auto it = queue_.begin();
        now_ = it->first;
        if (now_ > max_time) {
            res.status = Status::MaxTime;
            res.endTime = now_;
            return res;
        }
        // Drain the slot: active, then promote inactive, then NBA.
        // NBA updates may refill active (edge wakeups), so loop.
        for (;;) {
            TimeSlot &slot = queue_[now_];
            if (!slot.active.empty()) {
                Callback cb = std::move(slot.active.front());
                slot.active.pop_front();
                cb();
                ++res.callbacks;
                if (finish_ || aborted_ || res.callbacks > max_callbacks)
                    break;
                continue;
            }
            if (!slot.inactive.empty()) {
                slot.active.swap(slot.inactive);
                continue;
            }
            if (!slot.nba.empty()) {
                // NBA updates execute in scheduling order; each may wake
                // processes into the (currently empty) active region.
                std::deque<Callback> updates;
                updates.swap(slot.nba);
                for (Callback &cb : updates) {
                    cb();
                    ++res.callbacks;
                    if (finish_ || aborted_ ||
                        res.callbacks > max_callbacks)
                        break;
                }
                if (finish_ || aborted_ || res.callbacks > max_callbacks)
                    break;
                continue;
            }
            // Slot quiescent: run postponed (read-only) callbacks.
            if (!slot.postponed.empty()) {
                std::deque<Callback> sampled;
                sampled.swap(slot.postponed);
                for (Callback &cb : sampled) {
                    cb();
                    ++res.callbacks;
                }
                // Sampling must not create same-slot activity, but be
                // defensive: loop again if it somehow did.
                if (queue_.count(now_) && queue_[now_].busy())
                    continue;
            }
            break;
        }
        if (aborted_) {
            res.status = Status::Runaway;
            res.endTime = now_;
            return res;
        }
        if (res.callbacks > max_callbacks) {
            noteAbort("callback budget exhausted");
            res.status = Status::Runaway;
            res.endTime = now_;
            return res;
        }
        if (finish_) {
            res.status = Status::Finished;
            res.endTime = now_;
            return res;
        }
        queue_.erase(now_);
    }
    res.status = Status::Idle;
    res.endTime = now_;
    return res;
}

} // namespace cirfix::sim
