#include "sim/scheduler.h"

#include <chrono>

namespace cirfix::sim {

void
Scheduler::scheduleActive(Callback cb)
{
    slotAt(now_).active.push_back(std::move(cb));
}

void
Scheduler::scheduleInactive(Callback cb)
{
    slotAt(now_).inactive.push_back(std::move(cb));
}

void
Scheduler::scheduleAt(SimTime t, Callback cb)
{
    slotAt(t < now_ ? now_ : t).active.push_back(std::move(cb));
}

void
Scheduler::scheduleNba(Callback cb)
{
    slotAt(now_).nba.push_back(std::move(cb));
}

void
Scheduler::scheduleNbaAt(SimTime t, Callback cb)
{
    slotAt(t < now_ ? now_ : t).nba.push_back(std::move(cb));
}

void
Scheduler::schedulePostponed(Callback cb)
{
    slotAt(now_).postponed.push_back(std::move(cb));
}

void
Scheduler::note(const std::string &reason, AbortKind kind)
{
    // First abort wins: later notes (e.g. the generic noteAbort from a
    // process unwinding a deadline SimAbort) must not reclassify it.
    if (aborted_)
        return;
    aborted_ = true;
    abortKind_ = kind;
    abortReason_ = reason;
}

void
Scheduler::noteAbort(const std::string &reason)
{
    note(reason, AbortKind::Budget);
}

void
Scheduler::noteDeadline(const std::string &reason)
{
    note(reason, AbortKind::Deadline);
}

void
Scheduler::noteCrash(const std::string &reason)
{
    note(reason, AbortKind::Crash);
}

Scheduler::RunResult
Scheduler::run(SimTime max_time, uint64_t max_callbacks,
               double max_wall_seconds)
{
    RunResult res;
    const auto wall_start = std::chrono::steady_clock::now();
    uint64_t next_wall_check = 1024;
    auto tick = [&] {
        ++res.callbacks;
        if (max_wall_seconds > 0 && res.callbacks >= next_wall_check) {
            next_wall_check = res.callbacks + 1024;
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wall_start)
                              .count();
            if (secs > max_wall_seconds)
                noteDeadline("wall-clock deadline exceeded");
        }
    };
    while (!queue_.empty()) {
        auto it = queue_.begin();
        now_ = it->first;
        if (now_ > max_time) {
            res.status = Status::MaxTime;
            res.endTime = now_;
            return res;
        }
        // Drain the slot: active, then promote inactive, then NBA.
        // NBA updates may refill active (edge wakeups), so loop.
        for (;;) {
            TimeSlot &slot = queue_[now_];
            if (!slot.active.empty()) {
                Callback cb = std::move(slot.active.front());
                slot.active.pop_front();
                cb();
                tick();
                if (finish_ || aborted_ || res.callbacks > max_callbacks)
                    break;
                continue;
            }
            if (!slot.inactive.empty()) {
                slot.active.swap(slot.inactive);
                continue;
            }
            if (!slot.nba.empty()) {
                // NBA updates execute in scheduling order; each may wake
                // processes into the (currently empty) active region.
                std::deque<Callback> updates;
                updates.swap(slot.nba);
                for (Callback &cb : updates) {
                    cb();
                    tick();
                    if (finish_ || aborted_ ||
                        res.callbacks > max_callbacks)
                        break;
                }
                if (finish_ || aborted_ || res.callbacks > max_callbacks)
                    break;
                continue;
            }
            // Slot quiescent: run postponed (read-only) callbacks.
            if (!slot.postponed.empty()) {
                std::deque<Callback> sampled;
                sampled.swap(slot.postponed);
                for (Callback &cb : sampled) {
                    cb();
                    tick();
                }
                // Sampling must not create same-slot activity, but be
                // defensive: loop again if it somehow did.
                if (queue_.count(now_) && queue_[now_].busy())
                    continue;
            }
            break;
        }
        if (aborted_) {
            res.status = abortStatus();
            res.endTime = now_;
            return res;
        }
        if (res.callbacks > max_callbacks) {
            noteAbort("callback budget exhausted");
            res.status = Status::Runaway;
            res.endTime = now_;
            return res;
        }
        if (finish_) {
            res.status = Status::Finished;
            res.endTime = now_;
            return res;
        }
        queue_.erase(now_);
    }
    res.status = Status::Idle;
    res.endTime = now_;
    return res;
}

} // namespace cirfix::sim
