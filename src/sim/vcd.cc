#include "sim/vcd.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace cirfix::sim {

namespace {

/** Emit a value in VCD syntax: scalar "0?" or vector "b1010 ?". */
void
emitValue(std::string &out, const LogicVec &v, const std::string &code)
{
    if (v.width() == 1) {
        out.push_back(bitChar(v.bit(0)));
        out += code;
        out.push_back('\n');
    } else {
        out.push_back('b');
        out += v.toString();
        out.push_back(' ');
        out += code;
        out.push_back('\n');
    }
}

} // namespace

VcdRecorder::VcdRecorder(Design &design, const std::string &timescale)
    : timescale_(timescale), design_(design)
{
    collectScope(design, design.top());
}

VcdRecorder::VcdRecorder(Design &design,
                         const std::vector<std::string> &paths,
                         const std::string &timescale)
    : timescale_(timescale), design_(design)
{
    for (const std::string &p : paths) {
        SignalRef r = design.findSignal(p);
        if (r.sig)
            attach(design, r.sig, p);
    }
}

void
VcdRecorder::collectScope(Design &design, InstanceScope &scope)
{
    // Deterministic order: sort names (maps are unordered).
    std::vector<std::pair<std::string, Signal *>> sigs;
    std::unordered_set<Signal *> seen;
    for (auto &[name, ref] : scope.signals) {
        if (ref.sig && seen.insert(ref.sig).second)
            sigs.emplace_back(name, ref.sig);
    }
    std::sort(sigs.begin(), sigs.end());
    for (auto &[name, sig] : sigs) {
        std::string path =
            scope.path.empty() ? name : scope.path + "." + name;
        attach(design, sig, path);
    }
    std::vector<InstanceScope *> children;
    for (auto &c : scope.children)
        children.push_back(c.get());
    std::sort(children.begin(), children.end(),
              [](auto *a, auto *b) { return a->path < b->path; });
    for (InstanceScope *c : children)
        collectScope(design, *c);
}

std::string
VcdRecorder::codeFor(size_t index)
{
    // Printable identifier codes: base-94 over '!'..'~'.
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

void
VcdRecorder::attach(Design &design, Signal *sig, const std::string &path)
{
    (void)design;  // reserved for future per-design bookkeeping
    Var var{path, codeFor(vars_.size()), sig->width()};
    std::string code = var.code;
    vars_.push_back(std::move(var));

    sig->addWatcher([this, code](const LogicVec &, const LogicVec &nv) {
        SimTime now = design_.scheduler().now();
        if (!timeEmitted_ || now != lastTime_) {
            body_ += "#" + std::to_string(now) + "\n";
            lastTime_ = now;
            timeEmitted_ = true;
        }
        emitValue(body_, nv, code);
        ++changes_;
    });
}

std::string
VcdRecorder::document() const
{
    std::ostringstream os;
    os << "$date\n    (cirfix simulation)\n$end\n";
    os << "$version\n    cirfix VcdRecorder\n$end\n";
    os << "$timescale " << timescale_ << " $end\n";

    // Group variables by scope path for $scope sections. We emit a
    // flat module scope per instance path, which viewers accept.
    std::string current_scope = "\x01";  // sentinel: no scope yet
    std::vector<const Var *> ordered;
    for (auto &v : vars_)
        ordered.push_back(&v);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Var *a, const Var *b) {
                         auto scope_of = [](const std::string &p) {
                             size_t dot = p.rfind('.');
                             return dot == std::string::npos
                                        ? std::string()
                                        : p.substr(0, dot);
                         };
                         return scope_of(a->path) < scope_of(b->path);
                     });
    bool open = false;
    for (const Var *v : ordered) {
        size_t dot = v->path.rfind('.');
        std::string scope =
            dot == std::string::npos ? "top" : v->path.substr(0, dot);
        std::string leaf =
            dot == std::string::npos ? v->path
                                     : v->path.substr(dot + 1);
        if (scope != current_scope) {
            if (open)
                os << "$upscope $end\n";
            os << "$scope module " << scope << " $end\n";
            current_scope = scope;
            open = true;
        }
        os << "$var wire " << v->width << " " << v->code << " " << leaf;
        if (v->width > 1)
            os << " [" << v->width - 1 << ":0]";
        os << " $end\n";
    }
    if (open)
        os << "$upscope $end\n";
    os << "$enddefinitions $end\n";

    // Initial values ($dumpvars block): signals start as all-x at
    // elaboration time (the recorder attaches before run()), and the
    // change body below replays everything from there.
    os << "$dumpvars\n";
    for (const Var &v : vars_) {
        std::string init;
        emitValue(init, LogicVec::xs(v.width), v.code);
        os << init;
    }
    os << "$end\n";
    os << body_;
    return os.str();
}

} // namespace cirfix::sim
