#pragma once

/**
 * @file
 * Expression evaluation over an elaborated scope.
 *
 * Width rules follow a simplified model: operands are evaluated
 * bottom-up at their natural widths, binary arithmetic/bitwise
 * operators extend to the wider operand, and assignment resizes to the
 * target width. This matches IEEE context-determined sizing for all the
 * expression shapes used by the benchmark suite.
 */

#include "sim/design.h"
#include "verilog/ast.h"

namespace cirfix::sim {

/** Evaluate @p e in @p scope. Unresolvable names evaluate to x. */
LogicVec evalExpr(const verilog::Expr &e, InstanceScope &scope,
                  Design &design);

/**
 * Elaboration-time constant evaluation (numbers, parameters, and
 * operators only).
 *
 * @throws ElabError when the expression is not compile-time constant.
 */
LogicVec evalConst(const verilog::Expr &e,
                   const std::unordered_map<std::string, LogicVec> &params);

/** evalConst() narrowed to a signed 64-bit integer. */
int64_t evalConstInt(const verilog::Expr &e,
                     const std::unordered_map<std::string, LogicVec> &params);

// --------------------------------------------------------------------
// Assignment targets
// --------------------------------------------------------------------

/** One piece of a (possibly concatenated) assignment target. */
struct WriteSlot
{
    Signal *sig = nullptr;
    Memory *mem = nullptr;
    LogicVec addr{1, Bit::X};  //!< memory element address
    int lsb = 0;               //!< physical LSB within the signal
    int width = 1;
    bool ok = false;           //!< false: drop this part of the write
};

/** A fully resolved assignment target (indices already evaluated). */
struct WriteTarget
{
    std::vector<WriteSlot> slots;  //!< MSB-first, as written in source
    int totalWidth = 0;
};

/** Resolve an lvalue expression, evaluating indices now. */
WriteTarget resolveLValue(Design &design, InstanceScope &scope,
                          const verilog::Expr &lhs);

/** Write @p value (resized to the target width) into the target. */
void performWrite(const WriteTarget &target, const LogicVec &value);

} // namespace cirfix::sim
