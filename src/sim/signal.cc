#include "sim/signal.h"

#include <algorithm>

namespace cirfix::sim {

bool
edgeMatches(Edge edge, Bit from, Bit to)
{
    if (from == to)
        return false;
    auto rank = [](Bit b) {
        // 0 < {x, z} < 1 for edge-detection purposes.
        switch (b) {
          case Bit::Zero: return 0;
          case Bit::One: return 2;
          default: return 1;
        }
    };
    switch (edge) {
      case Edge::Level:
        return true;
      case Edge::Pos:
        return rank(to) > rank(from);
      case Edge::Neg:
        return rank(to) < rank(from);
    }
    return false;
}

void
Signal::set(const LogicVec &v)
{
    // Hot path (a same-width write) costs one compare plus one plane
    // copy; width-mismatched writes pay one extra resize.
    LogicVec fitted;
    const LogicVec *next = &v;
    if (v.width() != width()) {
        fitted = v.resized(width());
        next = &fitted;
    }
    if (next->identical(value_))
        return;
    LogicVec old = std::move(value_);
    value_ = *next;

    // Fire matching one-shot waiters and prune fired entries.
    if (!waiters_.empty()) {
        for (auto &w : waiters_) {
            if (w.handle->fired)
                continue;
            bool hit;
            if (w.edge == Edge::Level) {
                hit = (w.bit < 0) ? true
                                  : old.bit(w.bit) != value_.bit(w.bit);
            } else {
                int b = w.bit < 0 ? 0 : w.bit;
                hit = edgeMatches(w.edge, old.bit(b), value_.bit(b));
            }
            if (hit)
                w.handle->fire();
        }
        waiters_.erase(
            std::remove_if(waiters_.begin(), waiters_.end(),
                           [](const EdgeWaiter &w) {
                               return w.handle->fired;
                           }),
            waiters_.end());
    }

    for (auto &w : watchers_)
        w(old, value_);
}

void
Signal::addWaiter(Edge edge, int bit, WaitHandlePtr handle)
{
    waiters_.push_back({edge, bit, std::move(handle)});
}

void
NamedEvent::trigger()
{
    // Swap out first: a woken process may immediately re-wait on this
    // event, and that new waiter belongs to the *next* trigger.
    std::vector<WaitHandlePtr> pending;
    pending.swap(waiters_);
    for (auto &h : pending)
        h->fire();
}

LogicVec
Memory::read(const LogicVec &addr) const
{
    if (addr.hasUnknown())
        return LogicVec::xs(width_);
    int64_t a = static_cast<int64_t>(addr.toUint64());
    if (a < lo_ || a > hi_)
        return LogicVec::xs(width_);
    return words_[static_cast<size_t>(a - lo_)];
}

void
Memory::write(const LogicVec &addr, const LogicVec &v)
{
    if (addr.hasUnknown())
        return;
    int64_t a = static_cast<int64_t>(addr.toUint64());
    if (a < lo_ || a > hi_)
        return;
    words_[static_cast<size_t>(a - lo_)] = v.resized(width_);
}

} // namespace cirfix::sim
