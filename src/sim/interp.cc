#include "sim/interp.h"

#include <sstream>

#include "sim/eval.h"

namespace cirfix::sim {

using namespace verilog;

// --------------------------------------------------------------------
// Awaiters
// --------------------------------------------------------------------

namespace {

/** Suspend until an absolute time (or the #0 inactive region). */
struct DelayAwaiter
{
    Scheduler *sched;
    SimTime delay;

    bool await_ready() const noexcept { return false; }
    void
    await_suspend(std::coroutine_handle<> h)
    {
        if (delay == 0)
            sched->scheduleInactive([h] { h.resume(); });
        else
            sched->scheduleAt(sched->now() + delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
};

/** Suspend until one of the listed edges/events fires. */
struct EventsAwaiter
{
    struct SigWait
    {
        Signal *sig;
        Edge edge;
        int bit;  //!< -1 = whole vector / LSB
    };

    Scheduler *sched;
    std::vector<SigWait> sigs;
    std::vector<NamedEvent *> events;

    bool await_ready() const noexcept { return false; }
    void
    await_suspend(std::coroutine_handle<> h)
    {
        auto handle =
            std::make_shared<WaitHandle>(sched, [h] { h.resume(); });
        for (auto &sw : sigs)
            sw.sig->addWaiter(sw.edge, sw.bit, handle);
        for (auto *ev : events)
            ev->addWaiter(handle);
        // With nothing to wait on the process simply stalls, like a
        // real simulator blocked on an event that never triggers.
    }
    void await_resume() const noexcept {}
};

// --------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------

uint64_t
evalDelay(Design &design, InstanceScope &scope, const Expr &e)
{
    LogicVec v = evalExpr(e, scope, design);
    return v.hasUnknown() ? 0 : v.toUint64();
}

/** Resolve the sensitivity of an event control in @p scope. */
void
resolveEvents(Design &design, InstanceScope &scope, const EventCtrl &ec,
              EventsAwaiter &out)
{
    out.sched = &design.scheduler();

    auto addSignalByName = [&](const std::string &name, Edge edge,
                               int bit) {
        if (SignalRef r = scope.findSignal(name); r.sig) {
            out.sigs.push_back({r.sig, edge, bit});
            return;
        }
        if (NamedEvent *ev = scope.findEvent(name))
            out.events.push_back(ev);
    };

    if (ec.star) {
        // @*: wait for a change of any identifier read in the body.
        std::vector<std::string> names;
        if (ec.stmt)
            names = collectIdents(*ec.stmt);
        std::vector<Signal *> seen;
        for (auto &n : names) {
            SignalRef r = scope.findSignal(n);
            if (!r.sig)
                continue;
            bool dup = false;
            for (Signal *s : seen)
                dup |= (s == r.sig);
            if (!dup) {
                seen.push_back(r.sig);
                out.sigs.push_back({r.sig, Edge::Level, -1});
            }
        }
        return;
    }

    for (auto &ev : ec.events) {
        const Expr &sig = *ev.signal;
        if (sig.kind == NodeKind::Ident) {
            addSignalByName(sig.as<Ident>()->name, ev.edge, -1);
        } else if (sig.kind == NodeKind::Index) {
            auto *ix = sig.as<Index>();
            SignalRef r = scope.findSignal(ix->name);
            if (!r.sig)
                continue;
            LogicVec idx = evalExpr(*ix->index, scope, design);
            int bit = idx.hasUnknown()
                          ? -1
                          : static_cast<int>(idx.toUint64()) - r.lsb;
            out.sigs.push_back({r.sig, ev.edge, bit});
        } else {
            // General expressions: watch every identifier they read.
            for (auto &n : collectIdents(sig))
                addSignalByName(n, Edge::Level, -1);
        }
    }
}

std::string
formatValue(const LogicVec &v, char spec)
{
    switch (spec) {
      case 'd': case 't':
        return v.toDecimalString();
      case 'b':
        return v.toString();
      case 'h': case 'x': {
        if (v.hasUnknown())
            return v.toString();
        static const char *digits = "0123456789abcdef";
        std::string s;
        int w = ((v.width() + 3) / 4) * 4;
        LogicVec padded = v.resized(w);
        for (int i = w - 4; i >= 0; i -= 4)
            s.push_back(digits[padded.slice(i + 3, i).toUint64()]);
        return s;
      }
      case 'c':
        return std::string(1, static_cast<char>(v.toUint64() & 0xff));
      default:
        return v.toDecimalString();
    }
}

void
runDisplay(Design &design, InstanceScope &scope, const SysTask &task)
{
    std::ostringstream os;
    size_t arg_i = 0;
    auto nextArg = [&]() -> LogicVec {
        if (arg_i < task.args.size())
            return evalExpr(*task.args[arg_i++], scope, design);
        return LogicVec::xs(1);
    };
    if (task.format) {
        const std::string &fmt = *task.format;
        for (size_t i = 0; i < fmt.size(); ++i) {
            if (fmt[i] != '%' || i + 1 >= fmt.size()) {
                os << fmt[i];
                continue;
            }
            ++i;
            while (i < fmt.size() &&
                   (std::isdigit(static_cast<unsigned char>(fmt[i]))))
                ++i;  // ignore width specifiers like %0d
            if (i >= fmt.size())
                break;
            char spec = static_cast<char>(
                std::tolower(static_cast<unsigned char>(fmt[i])));
            if (spec == '%') {
                os << '%';
            } else if (spec == 'm') {
                os << (scope.path.empty() ? "top" : scope.path);
            } else if (spec == 's') {
                os << formatValue(nextArg(), 'c');
            } else {
                os << formatValue(nextArg(), spec);
            }
        }
        while (arg_i < task.args.size()) {
            os << " ";
            os << formatValue(nextArg(), 'd');
        }
    } else {
        for (size_t i = 0; i < task.args.size(); ++i) {
            if (i)
                os << " ";
            os << formatValue(nextArg(), 'd');
        }
    }
    design.addDisplay(os.str());
}

} // namespace

bool
caseLabelMatches(CaseType type, const LogicVec &subj, const LogicVec &lab)
{
    int w = std::max(subj.width(), lab.width());
    LogicVec s = subj.resized(w), l = lab.resized(w);
    for (int i = 0; i < w; ++i) {
        Bit sb = s.bit(i), lb = l.bit(i);
        if (type == CaseType::CaseZ && (sb == Bit::Z || lb == Bit::Z))
            continue;
        if (type == CaseType::CaseX &&
            (sb == Bit::Z || sb == Bit::X || lb == Bit::Z ||
             lb == Bit::X))
            continue;
        if (sb != lb)
            return false;
    }
    return true;
}

/**
 * Conservative "can this statement suspend the process?" analysis,
 * cached on the node. Statements that cannot suspend are executed by
 * the synchronous fast path below, avoiding a coroutine frame per
 * statement (a large win for combinational always blocks with loops).
 */
bool
mightSuspend(const Stmt &stmt)
{
    int8_t cached = stmt.suspendCache.load(std::memory_order_relaxed);
    if (cached >= 0)
        return cached != 0;
    bool result = false;
    switch (stmt.kind) {
      case NodeKind::DelayStmt:
      case NodeKind::EventCtrl:
      case NodeKind::Wait:
        result = true;
        break;
      case NodeKind::Assign:
        // Only a *blocking* intra-assignment delay suspends; NBA
        // delays are scheduled without blocking the process.
        result = stmt.as<Assign>()->blocking &&
                 stmt.as<Assign>()->delay != nullptr;
        break;
      case NodeKind::SeqBlock:
        for (auto &s : stmt.as<SeqBlock>()->stmts)
            if (s && mightSuspend(*s))
                result = true;
        break;
      case NodeKind::If: {
        auto *s = stmt.as<If>();
        result = (s->thenStmt && mightSuspend(*s->thenStmt)) ||
                 (s->elseStmt && mightSuspend(*s->elseStmt));
        break;
      }
      case NodeKind::Case:
        for (auto &item : stmt.as<Case>()->items)
            if (item.body && mightSuspend(*item.body))
                result = true;
        break;
      case NodeKind::For: {
        auto *s = stmt.as<For>();
        result = s->body && mightSuspend(*s->body);
        break;
      }
      case NodeKind::While: {
        auto *s = stmt.as<While>();
        result = s->body && mightSuspend(*s->body);
        break;
      }
      case NodeKind::Repeat: {
        auto *s = stmt.as<Repeat>();
        result = s->body && mightSuspend(*s->body);
        break;
      }
      case NodeKind::Forever: {
        auto *s = stmt.as<Forever>();
        result = s->body && mightSuspend(*s->body);
        break;
      }
      default:
        result = false;
        break;
    }
    stmt.suspendCache.store(result ? 1 : 0, std::memory_order_relaxed);
    return result;
}

/** Synchronous executor for statements that cannot suspend. */
void
execStmtSync(Design &design, InstanceScope &scope, const Stmt &stmt)
{
    design.chargeStmt();
    Scheduler &sched = design.scheduler();

    switch (stmt.kind) {
      case NodeKind::SeqBlock:
        for (auto &s : stmt.as<SeqBlock>()->stmts) {
            if (sched.finishRequested())
                return;
            if (s)
                execStmtSync(design, scope, *s);
        }
        return;
      case NodeKind::If: {
        auto *s = stmt.as<If>();
        LogicVec c = evalExpr(*s->cond, scope, design);
        if (c.isTrue()) {
            if (s->thenStmt)
                execStmtSync(design, scope, *s->thenStmt);
        } else if (s->elseStmt) {
            execStmtSync(design, scope, *s->elseStmt);
        }
        return;
      }
      case NodeKind::Case: {
        auto *s = stmt.as<Case>();
        LogicVec subj = evalExpr(*s->subject, scope, design);
        const CaseItem *dflt = nullptr;
        for (auto &item : s->items) {
            if (item.labels.empty()) {
                dflt = &item;
                continue;
            }
            for (auto &lab : item.labels) {
                LogicVec lv = evalExpr(*lab, scope, design);
                if (caseLabelMatches(s->type, subj, lv)) {
                    if (item.body)
                        execStmtSync(design, scope, *item.body);
                    return;
                }
            }
        }
        if (dflt && dflt->body)
            execStmtSync(design, scope, *dflt->body);
        return;
      }
      case NodeKind::For: {
        auto *s = stmt.as<For>();
        if (s->init)
            execStmtSync(design, scope, *s->init);
        while (evalExpr(*s->cond, scope, design).isTrue()) {
            if (sched.finishRequested())
                return;
            if (s->body)
                execStmtSync(design, scope, *s->body);
            if (s->step)
                execStmtSync(design, scope, *s->step);
            design.chargeStmt();
        }
        return;
      }
      case NodeKind::While: {
        auto *s = stmt.as<While>();
        while (evalExpr(*s->cond, scope, design).isTrue()) {
            if (sched.finishRequested())
                return;
            if (s->body)
                execStmtSync(design, scope, *s->body);
            design.chargeStmt();
        }
        return;
      }
      case NodeKind::Repeat: {
        auto *s = stmt.as<Repeat>();
        LogicVec n = evalExpr(*s->count, scope, design);
        uint64_t count = n.hasUnknown() ? 0 : n.toUint64();
        for (uint64_t i = 0; i < count; ++i) {
            if (sched.finishRequested())
                return;
            if (s->body)
                execStmtSync(design, scope, *s->body);
            design.chargeStmt();
        }
        return;
      }
      case NodeKind::Forever: {
        // A forever with no timing control inside: spin until the
        // statement budget aborts it (runaway mutant).
        auto *s = stmt.as<Forever>();
        for (;;) {
            if (sched.finishRequested())
                return;
            if (s->body)
                execStmtSync(design, scope, *s->body);
            design.chargeStmt();
        }
      }
      case NodeKind::Assign: {
        auto *s = stmt.as<Assign>();
        LogicVec rhs = evalExpr(*s->rhs, scope, design);
        if (s->blocking) {
            WriteTarget t = resolveLValue(design, scope, *s->lhs);
            performWrite(t, rhs);
        } else {
            WriteTarget t = resolveLValue(design, scope, *s->lhs);
            uint64_t d =
                s->delay ? evalDelay(design, scope, *s->delay) : 0;
            auto update = [t = std::move(t), rhs]() {
                performWrite(t, rhs);
            };
            if (d == 0)
                sched.scheduleNba(std::move(update));
            else
                sched.scheduleNbaAt(sched.now() + d, std::move(update));
        }
        return;
      }
      case NodeKind::TriggerEvent: {
        auto *s = stmt.as<TriggerEvent>();
        if (NamedEvent *ev = scope.findEvent(s->name))
            ev->trigger();
        return;
      }
      case NodeKind::SysTask: {
        auto *s = stmt.as<SysTask>();
        if (s->name == "$finish" || s->name == "$stop") {
            sched.requestFinish();
        } else if (s->name == "$display" || s->name == "$write" ||
                   s->name == "$strobe" || s->name == "$monitor" ||
                   s->name == "$error" || s->name == "$info") {
            runDisplay(design, scope, *s);
        }
        return;
      }
      case NodeKind::NullStmt:
      default:
        return;
    }
}

// --------------------------------------------------------------------
// Statement execution
// --------------------------------------------------------------------

Task
execStmt(Design &design, InstanceScope &scope, const Stmt &stmt)
{
    design.chargeStmt();
    Scheduler &sched = design.scheduler();

    switch (stmt.kind) {
      case NodeKind::SeqBlock: {
        auto *blk = stmt.as<SeqBlock>();
        for (auto &s : blk->stmts) {
            if (sched.finishRequested())
                co_return;
            if (s)
                {
                if (!mightSuspend(*s))
                    execStmtSync(design, scope, *s);
                else
                    co_await execStmt(design, scope, *s);
            }
        }
        co_return;
      }
      case NodeKind::If: {
        auto *s = stmt.as<If>();
        LogicVec c = evalExpr(*s->cond, scope, design);
        if (c.isTrue()) {
            if (s->thenStmt)
                {
                if (!mightSuspend(*s->thenStmt))
                    execStmtSync(design, scope, *s->thenStmt);
                else
                    co_await execStmt(design, scope, *s->thenStmt);
            }
        } else if (s->elseStmt) {
            {
                if (!mightSuspend(*s->elseStmt))
                    execStmtSync(design, scope, *s->elseStmt);
                else
                    co_await execStmt(design, scope, *s->elseStmt);
            }
        }
        co_return;
      }
      case NodeKind::Case: {
        auto *s = stmt.as<Case>();
        LogicVec subj = evalExpr(*s->subject, scope, design);
        const CaseItem *dflt = nullptr;
        for (auto &item : s->items) {
            if (item.labels.empty()) {
                dflt = &item;
                continue;
            }
            for (auto &lab : item.labels) {
                LogicVec lv = evalExpr(*lab, scope, design);
                if (caseLabelMatches(s->type, subj, lv)) {
                    if (item.body)
                        {
                if (!mightSuspend(*item.body))
                    execStmtSync(design, scope, *item.body);
                else
                    co_await execStmt(design, scope, *item.body);
            }
                    co_return;
                }
            }
        }
        if (dflt && dflt->body)
            {
                if (!mightSuspend(*dflt->body))
                    execStmtSync(design, scope, *dflt->body);
                else
                    co_await execStmt(design, scope, *dflt->body);
            }
        co_return;
      }
      case NodeKind::For: {
        auto *s = stmt.as<For>();
        if (s->init)
            {
                if (!mightSuspend(*s->init))
                    execStmtSync(design, scope, *s->init);
                else
                    co_await execStmt(design, scope, *s->init);
            }
        while (evalExpr(*s->cond, scope, design).isTrue()) {
            if (sched.finishRequested())
                co_return;
            if (s->body)
                {
                if (!mightSuspend(*s->body))
                    execStmtSync(design, scope, *s->body);
                else
                    co_await execStmt(design, scope, *s->body);
            }
            if (s->step)
                {
                if (!mightSuspend(*s->step))
                    execStmtSync(design, scope, *s->step);
                else
                    co_await execStmt(design, scope, *s->step);
            }
            design.chargeStmt();
        }
        co_return;
      }
      case NodeKind::While: {
        auto *s = stmt.as<While>();
        while (evalExpr(*s->cond, scope, design).isTrue()) {
            if (sched.finishRequested())
                co_return;
            if (s->body)
                {
                if (!mightSuspend(*s->body))
                    execStmtSync(design, scope, *s->body);
                else
                    co_await execStmt(design, scope, *s->body);
            }
            design.chargeStmt();
        }
        co_return;
      }
      case NodeKind::Repeat: {
        auto *s = stmt.as<Repeat>();
        LogicVec n = evalExpr(*s->count, scope, design);
        uint64_t count = n.hasUnknown() ? 0 : n.toUint64();
        for (uint64_t i = 0; i < count; ++i) {
            if (sched.finishRequested())
                co_return;
            if (s->body)
                {
                if (!mightSuspend(*s->body))
                    execStmtSync(design, scope, *s->body);
                else
                    co_await execStmt(design, scope, *s->body);
            }
            design.chargeStmt();
        }
        co_return;
      }
      case NodeKind::Forever: {
        auto *s = stmt.as<Forever>();
        for (;;) {
            if (sched.finishRequested())
                co_return;
            if (s->body)
                {
                if (!mightSuspend(*s->body))
                    execStmtSync(design, scope, *s->body);
                else
                    co_await execStmt(design, scope, *s->body);
            }
            design.chargeStmt();
        }
      }
      case NodeKind::Assign: {
        auto *s = stmt.as<Assign>();
        LogicVec rhs = evalExpr(*s->rhs, scope, design);
        if (s->blocking) {
            if (s->delay) {
                uint64_t d = evalDelay(design, scope, *s->delay);
                co_await DelayAwaiter{&sched, d};
            }
            WriteTarget t = resolveLValue(design, scope, *s->lhs);
            performWrite(t, rhs);
        } else {
            WriteTarget t = resolveLValue(design, scope, *s->lhs);
            uint64_t d =
                s->delay ? evalDelay(design, scope, *s->delay) : 0;
            auto update = [t = std::move(t), rhs]() {
                performWrite(t, rhs);
            };
            if (d == 0)
                sched.scheduleNba(std::move(update));
            else
                sched.scheduleNbaAt(sched.now() + d, std::move(update));
        }
        co_return;
      }
      case NodeKind::DelayStmt: {
        auto *s = stmt.as<DelayStmt>();
        uint64_t d = evalDelay(design, scope, *s->delay);
        co_await DelayAwaiter{&sched, d};
        if (s->stmt)
            {
                if (!mightSuspend(*s->stmt))
                    execStmtSync(design, scope, *s->stmt);
                else
                    co_await execStmt(design, scope, *s->stmt);
            }
        co_return;
      }
      case NodeKind::EventCtrl: {
        auto *s = stmt.as<EventCtrl>();
        EventsAwaiter aw;
        resolveEvents(design, scope, *s, aw);
        co_await aw;
        if (s->stmt)
            {
                if (!mightSuspend(*s->stmt))
                    execStmtSync(design, scope, *s->stmt);
                else
                    co_await execStmt(design, scope, *s->stmt);
            }
        co_return;
      }
      case NodeKind::Wait: {
        auto *s = stmt.as<Wait>();
        while (!evalExpr(*s->cond, scope, design).isTrue()) {
            EventsAwaiter aw;
            aw.sched = &sched;
            for (auto &n : collectIdents(*s->cond)) {
                if (SignalRef r = scope.findSignal(n); r.sig)
                    aw.sigs.push_back({r.sig, Edge::Level, -1});
            }
            if (aw.sigs.empty())
                co_return;  // condition can never change
            co_await aw;
            design.chargeStmt();
        }
        if (s->stmt)
            {
                if (!mightSuspend(*s->stmt))
                    execStmtSync(design, scope, *s->stmt);
                else
                    co_await execStmt(design, scope, *s->stmt);
            }
        co_return;
      }
      case NodeKind::TriggerEvent: {
        auto *s = stmt.as<TriggerEvent>();
        if (NamedEvent *ev = scope.findEvent(s->name))
            ev->trigger();
        co_return;
      }
      case NodeKind::SysTask: {
        auto *s = stmt.as<SysTask>();
        if (s->name == "$finish" || s->name == "$stop") {
            sched.requestFinish();
        } else if (s->name == "$display" || s->name == "$write" ||
                   s->name == "$strobe" || s->name == "$monitor" ||
                   s->name == "$error" || s->name == "$info") {
            runDisplay(design, scope, *s);
        }
        // Unknown tasks ($dumpfile, $dumpvars, ...) are ignored.
        co_return;
      }
      case NodeKind::NullStmt:
        co_return;
      default:
        // Statement kinds that cannot appear here (defensive).
        co_return;
    }
}

// --------------------------------------------------------------------
// Process
// --------------------------------------------------------------------

Process::Process(Design &design, InstanceScope &scope, Kind kind,
                 const Stmt &body, std::string name)
    : design_(design), scope_(scope), kind_(kind), body_(body),
      name_(std::move(name)), root_(root(this))
{}

void
Process::start()
{
    // Kick the root coroutine in the active region of the current
    // (elaboration) time.
    design_.scheduler().scheduleActive([this] { root_.resume(); });
}

Task
Process::root(Process *self)
{
    try {
        if (self->kind_ == Kind::Always) {
            for (;;) {
                if (self->design_.scheduler().finishRequested())
                    co_return;
                if (!mightSuspend(self->body_))
                    execStmtSync(self->design_, self->scope_,
                                 self->body_);
                else
                    co_await execStmt(self->design_, self->scope_,
                                      self->body_);
                self->design_.chargeStmt();
            }
        } else {
            if (!mightSuspend(self->body_))
                execStmtSync(self->design_, self->scope_,
                             self->body_);
            else
                co_await execStmt(self->design_, self->scope_,
                                  self->body_);
        }
    } catch (const SimAbort &e) {
        self->design_.scheduler().noteAbort(e.what());
    } catch (const std::exception &e) {
        // Anything that is not a budget abort is a crash: SimOom from
        // the memory budget, injected faults, or interpreter bugs. The
        // first-abort-wins latch keeps an earlier Deadline/Runaway
        // classification intact while this unwinds.
        self->design_.scheduler().noteCrash(
            std::string("process crashed: ") + e.what());
    }
}

} // namespace cirfix::sim
