#pragma once

/**
 * @file
 * Testbench instrumentation: the CirFix output probe.
 *
 * The paper instruments each testbench to record the values of the
 * DUT's output wires and registers at every rising clock edge
 * (Section 3.2). Because our simulator is a library, the same effect
 * is achieved by attaching a TraceRecorder to the elaborated design:
 * a watcher on the clock schedules a postponed (end-of-slot, read-only)
 * sample of the configured signals, so recorded values are the settled
 * values of that simulation instant.
 *
 * deriveProbeConfig() automates the static analysis the paper
 * describes: it locates the device-under-test instantiation inside the
 * testbench module, takes the DUT's output ports as the recorded
 * variable set, and picks the testbench's clock signal.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/design.h"
#include "sim/trace.h"

namespace cirfix::sim {

/** What to record and when. */
struct ProbeConfig
{
    /** Hierarchical path of the sampling clock (e.g., "clk"). */
    std::string clock;
    /** Hierarchical paths of the signals to record ("dut.count"). */
    std::vector<std::string> signals;
    /** Ignore samples before this time (reset settling). */
    SimTime startTime = 0;
};

/**
 * Statically derive a ProbeConfig from the testbench module: find the
 * first module instantiation (the DUT), record all of its output
 * ports, and use the testbench signal named "clk"/"clock" (or the
 * first signal connected to a DUT port of that name) as the clock.
 *
 * @throws ElabError if no DUT instance or clock can be found.
 */
ProbeConfig deriveProbeConfig(const verilog::SourceFile &file,
                              const std::string &testbench);

/** Samples configured signals at each rising clock edge. */
class TraceRecorder
{
  public:
    /** What a sample observer wants the simulation to do next. */
    enum class SampleAction {
        Continue,  //!< keep simulating
        Stop,      //!< stop the run (Scheduler::Status::EarlyStop)
    };

    /**
     * Per-sample observer: called with each recorded row (settled
     * end-of-slot values) before it is appended to the trace. Returning
     * Stop latches a clean EarlyStop on the scheduler — the run loop
     * exits once the current time slot's postponed callbacks drain, and
     * the partially recorded trace remains available. This is the hook
     * the streaming-fitness scorer uses to abort candidates whose
     * remaining samples cannot change their fate.
     */
    using SampleCallback = std::function<SampleAction(
        SimTime, const std::vector<LogicVec> &)>;

    /** Attach to @p design; must be called before run(). */
    TraceRecorder(Design &design, const ProbeConfig &config);

    /**
     * Install the per-sample observer. Per-recorder (not on the shared
     * ProbeConfig) because concurrent candidate evaluations share one
     * ProbeConfig but each needs its own scorer state.
     */
    void setSampleCallback(SampleCallback cb) { onSample_ = std::move(cb); }

    const Trace &trace() const { return trace_; }
    Trace takeTrace() { return std::move(trace_); }

  private:
    void sample();

    Design &design_;
    std::vector<SignalRef> refs_;
    SimTime startTime_;
    bool pending_ = false;
    Trace trace_;
    SampleCallback onSample_;
};

} // namespace cirfix::sim
