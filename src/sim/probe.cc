#include "sim/probe.h"

#include <algorithm>

namespace cirfix::sim {

using namespace verilog;

ProbeConfig
deriveProbeConfig(const SourceFile &file, const std::string &testbench)
{
    const Module *tb = file.findModule(testbench);
    if (!tb)
        throw ElabError("testbench module '" + testbench + "' not found");

    // Locate the DUT: the first instantiation inside the testbench.
    const Instance *dut = nullptr;
    for (auto &item : tb->items) {
        if (item->kind == NodeKind::Instance) {
            dut = item->as<Instance>();
            break;
        }
    }
    if (!dut)
        throw ElabError("no DUT instantiation found in testbench '" +
                        testbench + "'");
    const Module *dut_mod = file.findModule(dut->moduleName);
    if (!dut_mod)
        throw ElabError("DUT module '" + dut->moduleName + "' not found");

    ProbeConfig config;
    for (auto &p : dut_mod->ports) {
        if (p.dir == PortDir::Output || p.dir == PortDir::Inout)
            config.signals.push_back(dut->instName + "." + p.name);
    }
    if (config.signals.empty())
        throw ElabError("DUT module '" + dut->moduleName +
                        "' has no output ports to record");

    // Clock: prefer a testbench signal literally named clk/clock;
    // otherwise take whatever drives a DUT input port named clk/clock.
    auto is_clock_name = [](const std::string &n) {
        std::string low;
        for (char c : n)
            low.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        return low == "clk" || low == "clock" || low == "mclk" ||
               low == "sysclk";
    };
    for (auto &item : tb->items) {
        if (item->kind != NodeKind::VarDecl)
            continue;
        auto *d = item->as<VarDecl>();
        if ((d->varKind == VarKind::Reg || d->varKind == VarKind::Wire) &&
            is_clock_name(d->name)) {
            config.clock = d->name;
            break;
        }
    }
    if (config.clock.empty()) {
        for (size_t i = 0; i < dut->conns.size(); ++i) {
            const PortConn &c = dut->conns[i];
            std::string port = c.port.empty()
                                   ? (i < dut_mod->ports.size()
                                          ? dut_mod->ports[i].name
                                          : std::string())
                                   : c.port;
            if (is_clock_name(port) && c.expr &&
                c.expr->kind == NodeKind::Ident) {
                config.clock = c.expr->as<Ident>()->name;
                break;
            }
        }
    }
    if (config.clock.empty())
        throw ElabError("could not determine the testbench clock for '" +
                        testbench + "'");
    return config;
}

TraceRecorder::TraceRecorder(Design &design, const ProbeConfig &config)
    : design_(design), startTime_(config.startTime)
{
    std::vector<std::string> names;
    for (auto &path : config.signals) {
        SignalRef r = design.findSignal(path);
        if (!r.sig)
            throw ElabError("probe signal '" + path + "' not found");
        refs_.push_back(r);
        names.push_back(path);
    }
    trace_ = Trace(std::move(names));

    SignalRef clk = design.findSignal(config.clock);
    if (!clk.sig)
        throw ElabError("probe clock '" + config.clock + "' not found");

    clk.sig->addWatcher([this](const LogicVec &oldv,
                               const LogicVec &newv) {
        if (!edgeMatches(Edge::Pos, oldv.bit(0), newv.bit(0)))
            return;
        if (pending_)
            return;
        pending_ = true;
        design_.scheduler().schedulePostponed([this] {
            pending_ = false;
            sample();
        });
    });
}

void
TraceRecorder::sample()
{
    SimTime now = design_.scheduler().now();
    if (now < startTime_)
        return;
    std::vector<LogicVec> values;
    values.reserve(refs_.size());
    for (auto &r : refs_)
        values.push_back(r.sig->value());
    if (onSample_ &&
        onSample_(now, values) == SampleAction::Stop)
        design_.scheduler().noteEarlyStop(
            "streaming-fitness cutoff: candidate cannot reach the "
            "survival threshold");
    // The row is recorded even when stopping so the partial trace (and
    // its batch re-score) matches what the scorer saw.
    trace_.addRow(now, std::move(values));
}

} // namespace cirfix::sim
