#pragma once

/**
 * @file
 * Compiled cycle-based simulation backend.
 *
 * Instead of running every always block as a coroutine process woken
 * through per-wait heap-allocated handles, a module inside the
 * compilable subset is lowered once, at elaboration time, to threaded
 * bytecode:
 *
 *  - Continuous assignments and combinational always blocks become
 *    *comb items*. Their zero-delay dependency graph is levelized
 *    (reusing the lint NetGraph for SCC rejection) and re-evaluation is
 *    driven by per-item dirty flags: a change of any trigger signal
 *    marks the item and schedules one batched "settle" event that
 *    executes dirty items in topological order until quiescent.
 *  - Edge-triggered always blocks become *seq items*, re-armed one-shot
 *    edge waiters that execute their bytecode once per matching edge.
 *    Non-blocking assigns are double-buffered: targets and values are
 *    staged during the activation and committed by a single NBA-region
 *    event, preserving IEEE NBA ordering.
 *
 * Expressions compile to postfix programs over 64-bit two-state words
 * when every operand is <= 64 bits wide; at run time the program bails
 * out to the 4-state LogicVec evaluator whenever a referenced signal
 * carries x/z bits (or a divisor is zero), so x-propagation semantics
 * are bit-identical to the event-driven reference. Statements outside
 * the bytecode repertoire execute through execStmtSync (the
 * interpreter's synchronous path), so a compiled module never changes
 * the meaning of a statement — modules whose *processes* cannot be
 * expressed (delays, waits, mixed sensitivity, comb cycles, ...)
 * fall back to the event-driven interpreter entirely.
 *
 * All writes go through Signal::set, so compiled and interpreted
 * modules interoperate freely through port-aliased signals, and the
 * testbench (always interpreted) observes identical waiter/watcher
 * firing.
 */

#include <memory>
#include <vector>

#include "sim/design.h"
#include "sim/eval.h"
#include "sim/signal.h"
#include "verilog/ast.h"

namespace cirfix::sim {

/** One instruction of a two-state (uint64) expression program. */
struct TsInstr
{
    enum class Op : uint8_t {
        Sig,     //!< push signal value (arg = signal table index)
        Const,   //!< push constant (arg = constant table index)
        Slice,   //!< x = (x >> arg) & mask(w)   (const part/bit select)
        Add, Sub, Mul, Div, Mod,
        BitAnd, BitOr, BitXor, BitXnor, BitNot, Neg,
        Shl, Shr,
        Eq, Neq, Lt, Le, Gt, Ge,
        LogAnd, LogOr, LogNot,
        RedAnd, RedOr, RedXor, RedNand, RedNor, RedXnor,
        Ternary, //!< pop else, then, cond; push cond ? then : else
        Concat2, //!< pop lo, hi; push (hi << arg) | lo
        Repl,    //!< x replicated arg times, unit width wa
    };

    Op op;
    uint8_t w;    //!< result width (1..64)
    uint8_t wa;   //!< operand/lhs width where needed (shifts, red, repl)
    int32_t arg = 0;
};

/** A compiled two-state expression. */
struct TsProg
{
    std::vector<TsInstr> code;
    std::vector<uint64_t> consts;
    std::vector<Signal *> sigs;  //!< referenced signals (pre-checked)
    int width = 0;               //!< result width
    int maxStack = 0;
};

/** One lowered expression: 4-state AST plus optional two-state program. */
struct ExprSlot
{
    const verilog::Expr *ast = nullptr;
    TsProg ts;
    bool hasTs = false;
};

/** One lowered assignment target. */
struct TargetSlot
{
    const verilog::Expr *ast = nullptr;
    /** Pre-resolved target for plain identifier lvalues. */
    WriteTarget fixed;
    Signal *sig = nullptr;  //!< non-null iff the target is static
};

/** One statement-level bytecode instruction. */
struct Instr
{
    enum class Op : uint8_t {
        Assign,       //!< a = expr slot, b = target slot (blocking)
        AssignNba,    //!< a = expr slot, b = target slot (non-blocking)
        JumpIfFalse,  //!< a = expr slot, b = jump pc
        Jump,         //!< b = jump pc
        Case,         //!< a = case table index; sets pc
        Exec,         //!< a = stmt table index; execStmtSync escape
        End,
    };

    Op op;
    int32_t a = 0;
    int32_t b = 0;
};

/** Dispatch table for a native case/casez/casex. */
struct CaseInfo
{
    verilog::CaseType type;
    int subj = 0;  //!< expr slot of the subject
    struct Arm
    {
        std::vector<int> labels;  //!< expr slots, in source order
        int pc = 0;
    };
    std::vector<Arm> arms;  //!< non-default items, in source order
    int defaultPc = 0;      //!< default body (or endPc when absent)
};

/** A lowered statement body. */
struct Program
{
    std::vector<Instr> code;
};

/**
 * One module instance lowered to bytecode. Created by compile() during
 * elaboration; the elaborator then calls placeItem() for every
 * ContAssign/AlwaysBlock module item, in source order, so the t=0
 * scheduling positions match the event-driven elaboration exactly.
 */
class CompiledModule
{
  public:
    /**
     * Analyze @p mod (elaborated as @p scope) and lower it. Returns
     * nullptr when the module is outside the compilable subset — the
     * caller then elaborates it for the event-driven interpreter.
     * No runtime hooks are registered here; see placeItem().
     */
    static std::unique_ptr<CompiledModule>
    compile(Design &design, InstanceScope &scope,
            const verilog::Module &mod);

    /** Register the runtime hooks of one module item at the current
     *  elaboration position (mirrors Process::start / subscribe). */
    void placeItem(const verilog::Item &item);

    ~CompiledModule();

    CompiledModule(const CompiledModule &) = delete;
    CompiledModule &operator=(const CompiledModule &) = delete;

  private:
    CompiledModule(Design &design, InstanceScope &scope);

    struct CombItem
    {
        Program prog;
        std::vector<Signal *> triggers;  //!< deduped level triggers
        /** true: cont assign (watch + initial eval at placeItem);
         *  false: always-comb (watchers armed by a t=0 event). */
        bool isContAssign = false;
    };

    struct SeqEvent
    {
        Signal *sig;
        verilog::Edge edge;
    };

    struct SeqItem
    {
        Program prog;
        std::vector<SeqEvent> events;
        /** Escaped statements in the body contain NBAs: bypass staging
         *  and schedule every NBA directly, in interpreter order. */
        bool directNba = false;
    };

    struct StagedNba
    {
        Signal *sig = nullptr;  //!< static target (whole signal)
        WriteTarget dyn;        //!< used when sig is null
        LogicVec value{1, Bit::X};
    };

    // --- lowering (see compiled.cc) ---
    friend class ModuleCompiler;

    // --- runtime ---
    void markDirty(int idx);
    void settle();
    void execComb(int idx);
    void armComb(int idx);
    void armSeq(int idx);
    void fireSeq(int idx);
    void execProgram(const Program &prog, SeqItem *seq);
    void doAssign(const Instr &in, bool nba, SeqItem *seq);
    int dispatchCase(const Instr &in);
    LogicVec evalOperand(const ExprSlot &slot);
    bool evalCond(const ExprSlot &slot);
    bool runTs(const TsProg &prog, uint64_t &out);

    Design &design_;
    InstanceScope &scope_;

    std::vector<ExprSlot> exprs_;
    std::vector<TargetSlot> targets_;
    std::vector<CaseInfo> cases_;
    std::vector<const verilog::Stmt *> stmts_;  //!< Exec escapes

    std::vector<CombItem> combItems_;
    std::vector<SeqItem> seqItems_;
    std::vector<int> topo_;  //!< comb item evaluation order

    /** Module item -> (isComb, item index); placeItem lookup. */
    std::vector<std::pair<const verilog::Item *, int>> combByItem_;
    std::vector<std::pair<const verilog::Item *, int>> seqByItem_;

    std::vector<char> dirty_;
    bool settlePending_ = false;
    std::vector<StagedNba> nbaStage_;
};

} // namespace cirfix::sim
