#pragma once

/**
 * @file
 * Runtime state objects: signals, named events and memories.
 *
 * A Signal is the elaborated form of a wire/reg/integer. Processes
 * suspend on signals via WaitHandles (one-shot, edge-qualified);
 * continuous assignments and the testbench probe observe signals via
 * permanent watchers. Edge detection follows the IEEE 1364 edge tables
 * (posedge covers the 0->1, 0->x/z and x/z->1 transitions of the LSB).
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/logic.h"
#include "sim/scheduler.h"
#include "verilog/ast.h"

namespace cirfix::sim {

using verilog::Edge;

/**
 * One-shot wakeup shared between the signals of an event list.
 * Whichever signal matches first fires the handle; the rest see the
 * fired flag and drop their reference.
 */
struct WaitHandle
{
    Scheduler *sched;
    std::function<void()> resume;
    bool fired = false;

    WaitHandle(Scheduler *s, std::function<void()> r)
        : sched(s), resume(std::move(r))
    {}

    void
    fire()
    {
        if (fired)
            return;
        fired = true;
        sched->scheduleActive(resume);
    }
};

using WaitHandlePtr = std::shared_ptr<WaitHandle>;

/** Decide whether a scalar transition matches an edge qualifier. */
bool edgeMatches(Edge edge, Bit from, Bit to);

/** An elaborated wire, reg, or integer. */
class Signal
{
  public:
    Signal(std::string name, int width, bool is_reg, Scheduler *sched)
        : name_(std::move(name)), isReg_(is_reg),
          value_(width, Bit::X), sched_(sched)
    {}

    const std::string &name() const { return name_; }
    int width() const { return value_.width(); }
    bool isReg() const { return isReg_; }
    const LogicVec &value() const { return value_; }

    /**
     * Update the value. If it changed, waiters whose edge qualifier
     * matches are fired and permanent watchers are notified.
     */
    void set(const LogicVec &v);

    /** Set without notification (elaboration-time initialization). */
    void initValue(const LogicVec &v) { value_ = v.resized(width()); }

    /**
     * Register a one-shot waiter.
     *
     * @param edge Edge qualifier; Level fires on any value change.
     * @param bit  Bit index to watch for edge qualifiers on a vector
     *             bit-select, or -1 for the LSB/whole-vector.
     */
    void addWaiter(Edge edge, int bit, WaitHandlePtr handle);

    /** Permanent watcher called as (old_value, new_value). */
    using Watcher = std::function<void(const LogicVec &,
                                       const LogicVec &)>;
    void addWatcher(Watcher w) { watchers_.push_back(std::move(w)); }

  private:
    struct EdgeWaiter
    {
        Edge edge;
        int bit;
        WaitHandlePtr handle;
    };

    std::string name_;
    bool isReg_;
    LogicVec value_;
    Scheduler *sched_;
    std::vector<EdgeWaiter> waiters_;
    std::vector<Watcher> watchers_;
};

/** An elaborated named event ("event e; ... -> e; ... @(e)"). */
class NamedEvent
{
  public:
    explicit NamedEvent(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void
    addWaiter(WaitHandlePtr handle)
    {
        waiters_.push_back(std::move(handle));
    }

    /** Fire every pending waiter. */
    void trigger();

  private:
    std::string name_;
    std::vector<WaitHandlePtr> waiters_;
};

/** A 1-D array of regs ("reg [7:0] mem [0:255]"). */
class Memory
{
  public:
    Memory(std::string name, int width, int64_t first, int64_t last)
        : name_(std::move(name)), width_(width),
          lo_(std::min(first, last)), hi_(std::max(first, last)),
          words_(static_cast<size_t>(hi_ - lo_ + 1),
                 LogicVec(width, Bit::X))
    {}

    const std::string &name() const { return name_; }
    int width() const { return width_; }
    int64_t size() const { return hi_ - lo_ + 1; }

    /** Read element @p addr; out-of-range or unknown address reads x. */
    LogicVec read(const LogicVec &addr) const;

    /** Write element @p addr; out-of-range/unknown writes are ignored. */
    void write(const LogicVec &addr, const LogicVec &v);

  private:
    std::string name_;
    int width_;
    int64_t lo_, hi_;
    std::vector<LogicVec> words_;
};

} // namespace cirfix::sim
