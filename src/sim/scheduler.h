#pragma once

/**
 * @file
 * Event scheduler implementing the IEEE 1364 stratified event queue.
 *
 * Each simulation time slot holds four regions processed in order:
 *
 *   active    -- process resumptions, blocking assignments, continuous
 *                assignment re-evaluations
 *   inactive  -- #0-delayed events (promoted when active drains)
 *   NBA       -- non-blocking assignment updates (promoted when both
 *                active and inactive have drained)
 *   postponed -- read-only sampling (the instrumented-testbench probe);
 *                runs once when the time slot is otherwise exhausted
 *
 * NBA updates change signal values, which wakes edge-sensitive
 * processes back into the active region of the same time slot, so the
 * loop iterates until the slot is quiescent before time advances.
 *
 * The scheduler also implements the resource bounds CirFix relies on to
 * survive pathological mutants: a maximum simulation time and a maximum
 * callback budget ("runaway" detection, the analogue of a simulator
 * timeout in the original VCS-based pipeline).
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace cirfix::sim {

using SimTime = uint64_t;
using Callback = std::function<void()>;

/** Exception used to abort a simulation from inside a process. */
struct SimAbort : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

class Scheduler
{
  public:
    /** Why a run() call returned. */
    enum class Status {
        Finished,  //!< $finish was executed
        Idle,      //!< event queue drained (no more activity)
        MaxTime,   //!< simulated up to the max_time bound
        Runaway,   //!< callback/statement budget exhausted, sim aborted
        Deadline,  //!< wall-clock deadline exceeded, sim aborted
        Crashed,   //!< internal error escaped a process, sim aborted
    };

    struct RunResult
    {
        Status status = Status::Idle;
        SimTime endTime = 0;
        uint64_t callbacks = 0;
    };

    SimTime now() const { return now_; }

    /** Schedule into the active region of the current time slot. */
    void scheduleActive(Callback cb);
    /** Schedule into the inactive (#0) region of the current slot. */
    void scheduleInactive(Callback cb);
    /** Schedule into the active region at absolute time @p t. */
    void scheduleAt(SimTime t, Callback cb);
    /** Schedule an NBA update at the current time. */
    void scheduleNba(Callback cb);
    /** Schedule an NBA update at absolute time @p t (a <= #d v). */
    void scheduleNbaAt(SimTime t, Callback cb);
    /** Schedule a read-only sampling callback at end of current slot. */
    void schedulePostponed(Callback cb);

    /** Request termination ($finish); takes effect between callbacks. */
    void requestFinish() { finish_ = true; }
    bool finishRequested() const { return finish_; }

    /** Record an abort (runaway mutant); stops the run loop. */
    void noteAbort(const std::string &reason);
    /** Record a wall-clock deadline abort (status Deadline). */
    void noteDeadline(const std::string &reason);
    /** Record an internal-error abort (status Crashed). */
    void noteCrash(const std::string &reason);
    bool aborted() const { return aborted_; }
    const std::string &abortReason() const { return abortReason_; }

    /** Status the latched abort maps to (Idle when not aborted); lets
     *  callers classify a SimAbort that escaped the run loop. */
    Status
    abortStatus() const
    {
        if (!aborted_)
            return Status::Idle;
        switch (abortKind_) {
          case AbortKind::Deadline: return Status::Deadline;
          case AbortKind::Crash: return Status::Crashed;
          case AbortKind::Budget: break;
        }
        return Status::Runaway;
    }

    /**
     * Run the simulation.
     *
     * @param max_time         Stop (status MaxTime) once now() passes
     *                         this.
     * @param max_callbacks    Abort (status Runaway) after this many
     *                         scheduled callbacks have executed.
     * @param max_wall_seconds Abort (status Deadline) once this much
     *                         wall-clock time has elapsed, checked
     *                         every 1024 callbacks (0 disables the
     *                         watchdog). Layered on the budgets: it
     *                         reaps candidates that burn real time
     *                         without burning callbacks.
     */
    RunResult run(SimTime max_time, uint64_t max_callbacks,
                  double max_wall_seconds = 0.0);

  private:
    struct TimeSlot
    {
        std::deque<Callback> active;
        std::deque<Callback> inactive;
        std::deque<Callback> nba;
        std::deque<Callback> postponed;

        bool
        busy() const
        {
            return !active.empty() || !inactive.empty() || !nba.empty();
        }
    };

    TimeSlot &slotAt(SimTime t) { return queue_[t]; }

    /** What kind of abort latched first (decides the run status). */
    enum class AbortKind { Budget, Deadline, Crash };

    void note(const std::string &reason, AbortKind kind);

    std::map<SimTime, TimeSlot> queue_;
    SimTime now_ = 0;
    bool finish_ = false;
    bool aborted_ = false;
    AbortKind abortKind_ = AbortKind::Budget;
    std::string abortReason_;
};

} // namespace cirfix::sim
