#pragma once

/**
 * @file
 * Event scheduler implementing the IEEE 1364 stratified event queue.
 *
 * Each simulation time slot holds four regions processed in order:
 *
 *   active    -- process resumptions, blocking assignments, continuous
 *                assignment re-evaluations
 *   inactive  -- #0-delayed events (promoted when active drains)
 *   NBA       -- non-blocking assignment updates (promoted when both
 *                active and inactive have drained)
 *   postponed -- read-only sampling (the instrumented-testbench probe);
 *                runs once when the time slot is otherwise exhausted
 *
 * NBA updates change signal values, which wakes edge-sensitive
 * processes back into the active region of the same time slot, so the
 * loop iterates until the slot is quiescent before time advances.
 *
 * The scheduler also implements the resource bounds CirFix relies on to
 * survive pathological mutants: a maximum simulation time and a maximum
 * callback budget ("runaway" detection, the analogue of a simulator
 * timeout in the original VCS-based pipeline).
 *
 * Allocation discipline: candidate evaluation creates one Design (and
 * one Scheduler) per mutant, so per-event allocator traffic multiplies
 * by the whole population. Time slots are pooled nodes on an intrusive
 * sorted list whose region buffers keep their capacity when the slot is
 * recycled, and events are stored as EventFn — a move-only callable
 * with an inline buffer sized for the largest hot-path capture (an NBA
 * update carrying a WriteTarget plus a LogicVec payload) — so a
 * steady-state simulation schedules events without touching the global
 * allocator. allocStats() exposes the counters the benchmark-regression
 * gate alarms on.
 */

#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cirfix::sim {

using SimTime = uint64_t;

/** Exception used to abort a simulation from inside a process. */
struct SimAbort : std::runtime_error
{
    /**
     * Why the abort was thrown. Carried on the exception so the repair
     * engine can classify a SimAbort even when it unwinds out of
     * elaborate() before any Design (and its scheduler latch) exists —
     * the elab-throw path previously defaulted every such abort to
     * "runaway".
     */
    enum class Cause { Budget, Deadline, Crash, EarlyStop };

    explicit SimAbort(const std::string &what, Cause c = Cause::Budget)
        : std::runtime_error(what), cause(c)
    {}

    Cause cause;
};

/**
 * Move-only type-erased callable with a large inline buffer.
 *
 * std::function's small-object buffer (16 bytes in libstdc++) forces a
 * heap allocation for every scheduled NBA update, because the capture
 * carries the resolved write target and the four-state payload. EventFn
 * inlines callables up to kInlineSize bytes and falls back to the heap
 * beyond that (counted, see eventHeapAllocs()).
 */
class EventFn
{
  public:
    /** Inline capture budget: fits WriteTarget + LogicVec with room to
     *  spare; measured, not guessed — see test_scheduler.cc. */
    static constexpr size_t kInlineSize = 128;

    EventFn() = default;

    template <typename F,
              std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>, int> = 0>
    EventFn(F &&f)  // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            new (buf_) Fn(std::forward<F>(f));
            vt_ = &vtableInline<Fn>;
        } else {
            *reinterpret_cast<void **>(buf_) =
                new Fn(std::forward<F>(f));
            noteHeapAlloc();
            vt_ = &vtableHeap<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    void operator()() { vt_->invoke(buf_); }
    explicit operator bool() const { return vt_ != nullptr; }

    /** Heap fallbacks performed on this thread (oversized captures). */
    static uint64_t heapAllocs();

  private:
    struct VTable
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src);  //!< move + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn> static const VTable vtableInline;
    template <typename Fn> static const VTable vtableHeap;

    static void noteHeapAlloc();

    void
    moveFrom(EventFn &o) noexcept
    {
        vt_ = o.vt_;
        if (vt_)
            vt_->relocate(buf_, o.buf_);
        o.vt_ = nullptr;
    }

    void
    reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

    const VTable *vt_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

template <typename Fn>
const EventFn::VTable EventFn::vtableInline = {
    [](void *b) { (*static_cast<Fn *>(static_cast<void *>(b)))(); },
    [](void *dst, void *src) {
        Fn *s = static_cast<Fn *>(src);
        new (dst) Fn(std::move(*s));
        s->~Fn();
    },
    [](void *b) { static_cast<Fn *>(static_cast<void *>(b))->~Fn(); },
};

template <typename Fn>
const EventFn::VTable EventFn::vtableHeap = {
    [](void *b) { (**static_cast<Fn **>(static_cast<void *>(b)))(); },
    [](void *dst, void *src) {
        *static_cast<void **>(dst) = *static_cast<void **>(src);
    },
    [](void *b) { delete *static_cast<Fn **>(static_cast<void *>(b)); },
};

using Callback = EventFn;

class Scheduler
{
  public:
    /** Why a run() call returned. */
    enum class Status {
        Finished,   //!< $finish was executed
        Idle,       //!< event queue drained (no more activity)
        MaxTime,    //!< simulated up to the max_time bound
        Runaway,    //!< callback/statement budget exhausted, sim aborted
        Deadline,   //!< wall-clock deadline exceeded, sim aborted
        Crashed,    //!< internal error escaped a process, sim aborted
        EarlyStop,  //!< consumer requested stop (streaming fitness
                    //!< early abort): a clean, deliberate cutoff
    };

    struct RunResult
    {
        Status status = Status::Idle;
        SimTime endTime = 0;
        uint64_t callbacks = 0;
    };

    /** Allocator accounting for the run (deterministic; gated in CI). */
    struct AllocStats
    {
        uint64_t slotsAllocated = 0;  //!< time-slot nodes newly created
        uint64_t slotsRecycled = 0;   //!< nodes reused from the pool
        uint64_t eventsScheduled = 0; //!< total events enqueued
    };

    Scheduler() = default;
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    SimTime now() const { return now_; }

    /** Schedule into the active region of the current time slot. */
    void scheduleActive(Callback cb);
    /** Schedule into the inactive (#0) region of the current slot. */
    void scheduleInactive(Callback cb);
    /** Schedule into the active region at absolute time @p t. */
    void scheduleAt(SimTime t, Callback cb);
    /** Schedule an NBA update at the current time. */
    void scheduleNba(Callback cb);
    /** Schedule an NBA update at absolute time @p t (a <= #d v). */
    void scheduleNbaAt(SimTime t, Callback cb);
    /** Schedule a read-only sampling callback at end of current slot. */
    void schedulePostponed(Callback cb);

    /** Request termination ($finish); takes effect between callbacks. */
    void requestFinish() { finish_ = true; }
    bool finishRequested() const { return finish_; }

    /** Record an abort (runaway mutant); stops the run loop. */
    void noteAbort(const std::string &reason);
    /** Record a wall-clock deadline abort (status Deadline). */
    void noteDeadline(const std::string &reason);
    /** Record an internal-error abort (status Crashed). */
    void noteCrash(const std::string &reason);
    /**
     * Record a deliberate consumer-requested stop (status EarlyStop).
     * Used by the streaming-fitness probe once the remaining samples
     * cannot change the candidate's fate; unlike the other notes this
     * is not a failure — the partial result is meaningful.
     */
    void noteEarlyStop(const std::string &reason);
    bool aborted() const { return aborted_; }
    const std::string &abortReason() const { return abortReason_; }

    /** Status the latched abort maps to (Idle when not aborted); lets
     *  callers classify a SimAbort that escaped the run loop. */
    Status
    abortStatus() const
    {
        if (!aborted_)
            return Status::Idle;
        switch (abortKind_) {
          case AbortKind::Deadline: return Status::Deadline;
          case AbortKind::Crash: return Status::Crashed;
          case AbortKind::Early: return Status::EarlyStop;
          case AbortKind::Budget: break;
        }
        return Status::Runaway;
    }

    /**
     * Run the simulation.
     *
     * @param max_time         Stop (status MaxTime) once now() passes
     *                         this.
     * @param max_callbacks    Abort (status Runaway) after this many
     *                         scheduled callbacks have executed.
     * @param max_wall_seconds Abort (status Deadline) once this much
     *                         wall-clock time has elapsed, checked
     *                         every 1024 callbacks (0 disables the
     *                         watchdog). Layered on the budgets: it
     *                         reaps candidates that burn real time
     *                         without burning callbacks.
     */
    RunResult run(SimTime max_time, uint64_t max_callbacks,
                  double max_wall_seconds = 0.0);

    const AllocStats &allocStats() const { return allocStats_; }

  private:
    /**
     * FIFO event region backed by a vector plus a drain cursor, so the
     * buffer (and its capacity) survives slot recycling. Callbacks may
     * push while the region drains (edge wakeups of the same slot);
     * index-based access keeps that safe across reallocation.
     */
    struct EventQueue
    {
        std::vector<Callback> items;
        size_t head = 0;

        bool empty() const { return head >= items.size(); }
        void push(Callback cb) { items.push_back(std::move(cb)); }

        Callback
        pop()
        {
            Callback cb = std::move(items[head]);
            ++head;
            if (head >= items.size())
                clear();
            return cb;
        }

        void
        clear()
        {
            items.clear();
            head = 0;
        }
    };

    /** Pooled node of the pending-slot list (sorted by time). */
    struct TimeSlot
    {
        SimTime time = 0;
        TimeSlot *next = nullptr;
        EventQueue active;
        EventQueue inactive;
        EventQueue nba;
        EventQueue postponed;

        bool
        busy() const
        {
            return !active.empty() || !inactive.empty() || !nba.empty();
        }

        void
        clear()
        {
            active.clear();
            inactive.clear();
            nba.clear();
            postponed.clear();
        }
    };

    TimeSlot &slotAt(SimTime t);
    /** Unlink the head slot and return its node to the free pool. */
    void retireHead();

    /** What kind of abort latched first (decides the run status). */
    enum class AbortKind { Budget, Deadline, Crash, Early };

    void note(const std::string &reason, AbortKind kind);

    TimeSlot *head_ = nullptr;  //!< pending slots, ascending time
    TimeSlot *free_ = nullptr;  //!< recycled nodes (capacity retained)
    SimTime now_ = 0;
    bool finish_ = false;
    bool aborted_ = false;
    AbortKind abortKind_ = AbortKind::Budget;
    std::string abortReason_;
    AllocStats allocStats_;
    /** Scratch buffers for NBA/postponed drains; swapped with the slot
     *  regions so both sides keep their capacity. */
    std::vector<Callback> nbaScratch_;
    std::vector<Callback> postScratch_;
};

} // namespace cirfix::sim
