#include "sim/compiled.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "lint/netgraph.h"
#include "sim/interp.h"

namespace cirfix::sim {

using namespace verilog;

namespace {

constexpr int kMaxTsStack = 32;
constexpr size_t kMaxTsCode = 512;

inline uint64_t
tsMask(int w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

/** True when the subtree contains any of the statement/expression
 *  kinds that make a *combinational* item non-replayable: constructs
 *  whose side effects depend on how many times the body runs. */
bool
combImpure(const Stmt &s)
{
    bool bad = false;
    visitAll(const_cast<Stmt &>(s), [&](Node &n) {
        switch (n.kind) {
          case NodeKind::SysTask:
          case NodeKind::SysFuncCall:
          case NodeKind::FuncCall:
          case NodeKind::TriggerEvent:
            bad = true;
            break;
          case NodeKind::Assign: {
            auto *a = n.as<Assign>();
            if (!a->blocking || a->delay)
                bad = true;
            break;
          }
          default:
            break;
        }
    });
    return bad;
}

bool
exprHasCall(const Expr &e)
{
    bool found = false;
    visitAll(const_cast<Expr &>(e), [&](Node &n) {
        if (n.kind == NodeKind::FuncCall ||
            n.kind == NodeKind::SysFuncCall)
            found = true;
    });
    return found;
}

bool
subtreeHasNba(const Node &n)
{
    bool found = false;
    visitAll(const_cast<Node &>(n), [&](Node &c) {
        if (c.kind == NodeKind::Assign && !c.as<Assign>()->blocking)
            found = true;
    });
    return found;
}

/** Signal names assigned anywhere under @p s (escape-aware). */
void
collectAssignTargets(const Stmt &s, std::vector<std::string> &out)
{
    visitAll(const_cast<Stmt &>(s), [&](Node &n) {
        if (n.kind == NodeKind::Assign)
            lint::collectTargets(*n.as<Assign>()->lhs, out);
    });
}

// --------------------------------------------------------------------
// Two-state expression compiler
// --------------------------------------------------------------------

/**
 * Lowers an expression to a postfix uint64 program, tracking result
 * widths at compile time so every op can mask exactly like the
 * LogicVec operator it replaces. Fails (whole expression stays on the
 * 4-state evaluator) for anything whose two-state meaning is not
 * provably identical: >64-bit operands, x/z literals, function calls,
 * memory reads, non-constant or out-of-range selects, width-mismatched
 * ternaries, and ** .
 */
class TsCompiler
{
  public:
    explicit TsCompiler(InstanceScope &scope) : scope_(scope) {}

    bool
    compile(const Expr &e, TsProg &out)
    {
        int w = emit(e);
        if (!ok_ || w <= 0 || prog_.code.size() > kMaxTsCode)
            return false;
        prog_.width = w;
        prog_.maxStack = maxDepth_;
        out = std::move(prog_);
        return true;
    }

  private:
    InstanceScope &scope_;
    TsProg prog_;
    int depth_ = 0, maxDepth_ = 0;
    bool ok_ = true;

    int
    fail()
    {
        ok_ = false;
        return -1;
    }

    void
    op(TsInstr::Op o, int w, int wa = 0, int32_t arg = 0)
    {
        prog_.code.push_back({o, static_cast<uint8_t>(w),
                              static_cast<uint8_t>(wa), arg});
    }

    void
    push()
    {
        if (++depth_ > maxDepth_)
            maxDepth_ = depth_;
        if (depth_ > kMaxTsStack)
            ok_ = false;
    }

    int
    sigIndex(Signal *s)
    {
        for (size_t i = 0; i < prog_.sigs.size(); ++i)
            if (prog_.sigs[i] == s)
                return static_cast<int>(i);
        prog_.sigs.push_back(s);
        return static_cast<int>(prog_.sigs.size() - 1);
    }

    int
    pushConst(const LogicVec &v)
    {
        if (v.hasUnknown() || v.width() > 64)
            return fail();
        prog_.consts.push_back(v.toUint64());
        op(TsInstr::Op::Const, v.width(), 0,
           static_cast<int32_t>(prog_.consts.size() - 1));
        push();
        return v.width();
    }

    /** Emit a full-signal push; fails for wide or unresolved names. */
    int
    pushSig(const SignalRef &r)
    {
        if (!r.sig || r.sig->width() > 64)
            return fail();
        op(TsInstr::Op::Sig, r.sig->width(), 0, sigIndex(r.sig));
        push();
        return r.sig->width();
    }

    bool
    tryConst(const Expr &e, LogicVec &out)
    {
        try {
            out = evalConst(e, scope_.params);
            return !out.hasUnknown();
        } catch (const ElabError &) {
            return false;
        }
    }

    int
    emit(const Expr &e)
    {
        if (!ok_)
            return -1;
        switch (e.kind) {
          case NodeKind::Number:
            return pushConst(e.as<Number>()->value);
          case NodeKind::Ident: {
            const std::string &n = e.as<Ident>()->name;
            if (SignalRef r = scope_.findSignal(n); r.sig)
                return pushSig(r);
            auto p = scope_.params.find(n);
            if (p != scope_.params.end())
                return pushConst(p->second);
            return fail();
          }
          case NodeKind::Index: {
            auto *ix = e.as<Index>();
            if (scope_.findMemory(ix->name))
                return fail();
            SignalRef r = scope_.findSignal(ix->name);
            LogicVec iv{1, Bit::X};
            if (!r.sig || !tryConst(*ix->index, iv))
                return fail();
            int bit = static_cast<int>(iv.toUint64()) - r.lsb;
            if (bit < 0 || bit >= r.sig->width())
                return fail();
            if (pushSig(r) < 0)
                return -1;
            op(TsInstr::Op::Slice, 1, 0, bit);
            return 1;
          }
          case NodeKind::RangeSel: {
            auto *rs = e.as<RangeSel>();
            SignalRef r = scope_.findSignal(rs->name);
            LogicVec mv{1, Bit::X}, lv{1, Bit::X};
            if (!r.sig || !tryConst(*rs->msb, mv) ||
                !tryConst(*rs->lsb, lv))
                return fail();
            int msb = static_cast<int>(mv.toUint64()) - r.lsb;
            int lsb = static_cast<int>(lv.toUint64()) - r.lsb;
            int w = msb - lsb + 1;
            if (msb < lsb || lsb < 0 || msb >= r.sig->width())
                return fail();
            if (pushSig(r) < 0)
                return -1;
            op(TsInstr::Op::Slice, w, 0, lsb);
            return w;
          }
          case NodeKind::Unary: {
            auto *u = e.as<Unary>();
            int w = emit(*u->operand);
            if (w < 0)
                return -1;
            switch (u->op) {
              case UnaryOp::Plus: return w;
              case UnaryOp::Minus: op(TsInstr::Op::Neg, w); return w;
              case UnaryOp::Not: op(TsInstr::Op::LogNot, 1); return 1;
              case UnaryOp::BitNot: op(TsInstr::Op::BitNot, w); return w;
              case UnaryOp::RedAnd:
                op(TsInstr::Op::RedAnd, 1, w); return 1;
              case UnaryOp::RedOr:
                op(TsInstr::Op::RedOr, 1, w); return 1;
              case UnaryOp::RedXor:
                op(TsInstr::Op::RedXor, 1, w); return 1;
              case UnaryOp::RedNand:
                op(TsInstr::Op::RedNand, 1, w); return 1;
              case UnaryOp::RedNor:
                op(TsInstr::Op::RedNor, 1, w); return 1;
              case UnaryOp::RedXnor:
                op(TsInstr::Op::RedXnor, 1, w); return 1;
            }
            return fail();
          }
          case NodeKind::Binary: {
            auto *b = e.as<Binary>();
            int wl = emit(*b->lhs);
            int wr = emit(*b->rhs);
            if (wl < 0 || wr < 0)
                return -1;
            int wm = std::max(wl, wr);
            depth_ -= 1;  // binary ops pop one operand
            switch (b->op) {
              case BinaryOp::Add: op(TsInstr::Op::Add, wm); return wm;
              case BinaryOp::Sub: op(TsInstr::Op::Sub, wm); return wm;
              case BinaryOp::Mul: op(TsInstr::Op::Mul, wm); return wm;
              case BinaryOp::Div: op(TsInstr::Op::Div, wm); return wm;
              case BinaryOp::Mod: op(TsInstr::Op::Mod, wm); return wm;
              case BinaryOp::Pow: return fail();
              case BinaryOp::BitAnd:
                op(TsInstr::Op::BitAnd, wm); return wm;
              case BinaryOp::BitOr:
                op(TsInstr::Op::BitOr, wm); return wm;
              case BinaryOp::BitXor:
                op(TsInstr::Op::BitXor, wm); return wm;
              case BinaryOp::BitXnor:
                op(TsInstr::Op::BitXnor, wm); return wm;
              case BinaryOp::LogAnd:
                op(TsInstr::Op::LogAnd, 1); return 1;
              case BinaryOp::LogOr:
                op(TsInstr::Op::LogOr, 1); return 1;
              case BinaryOp::Eq:
              case BinaryOp::CaseEq:
                op(TsInstr::Op::Eq, 1); return 1;
              case BinaryOp::Neq:
              case BinaryOp::CaseNeq:
                op(TsInstr::Op::Neq, 1); return 1;
              case BinaryOp::Lt: op(TsInstr::Op::Lt, 1); return 1;
              case BinaryOp::Le: op(TsInstr::Op::Le, 1); return 1;
              case BinaryOp::Gt: op(TsInstr::Op::Gt, 1); return 1;
              case BinaryOp::Ge: op(TsInstr::Op::Ge, 1); return 1;
              case BinaryOp::Shl:
                op(TsInstr::Op::Shl, wl, wl); return wl;
              case BinaryOp::Shr:
                op(TsInstr::Op::Shr, wl, wl); return wl;
            }
            return fail();
          }
          case NodeKind::Ternary: {
            auto *t = e.as<Ternary>();
            int wc = emit(*t->cond);
            int wt = emit(*t->thenExpr);
            int we = emit(*t->elseExpr);
            if (wc < 0 || wt < 0 || we < 0)
                return -1;
            // Branch widths must agree: with a defined condition the
            // 4-state evaluator returns the taken branch at *its own*
            // width, so a static result width needs wt == we.
            if (wt != we)
                return fail();
            depth_ -= 2;
            op(TsInstr::Op::Ternary, wt);
            return wt;
          }
          case NodeKind::Concat: {
            auto *c = e.as<Concat>();
            if (c->parts.empty())
                return fail();
            int w = emit(*c->parts[0]);
            if (w < 0)
                return -1;
            for (size_t i = 1; i < c->parts.size(); ++i) {
                int wp = emit(*c->parts[i]);
                if (wp < 0)
                    return -1;
                if (w + wp > 64)
                    return fail();
                depth_ -= 1;
                op(TsInstr::Op::Concat2, w + wp, 0, wp);
                w += wp;
            }
            return w;
          }
          case NodeKind::Repl: {
            auto *r = e.as<Repl>();
            LogicVec cv{1, Bit::X};
            if (!tryConst(*r->count, cv))
                return fail();
            uint64_t k = cv.toUint64();
            if (k == 0 || k > 4096)
                return fail();
            int wv = emit(*r->value);
            if (wv < 0)
                return -1;
            if (k * static_cast<uint64_t>(wv) > 64)
                return fail();
            op(TsInstr::Op::Repl, static_cast<int>(k) * wv, wv,
               static_cast<int32_t>(k));
            return static_cast<int>(k) * wv;
          }
          default:
            return fail();
        }
    }
};

} // namespace

// --------------------------------------------------------------------
// Module compiler
// --------------------------------------------------------------------

/**
 * Walks one module's items, decides compilability, and lowers bodies
 * to bytecode. Any check failure returns nullptr and the elaborator
 * keeps the module on the event-driven interpreter.
 */
class ModuleCompiler
{
  public:
    ModuleCompiler(Design &design, InstanceScope &scope,
                   const Module &mod)
        : design_(design), scope_(scope), mod_(mod),
          cm_(new CompiledModule(design, scope))
    {}

    std::unique_ptr<CompiledModule>
    run()
    {
        std::vector<const Item *> cas, always;
        for (auto &item : mod_.items) {
            if (item->kind == NodeKind::ContAssign)
                cas.push_back(item.get());
            else if (item->kind == NodeKind::AlwaysBlock)
                always.push_back(item.get());
        }
        if (cas.empty() && always.empty())
            return std::move(cm_);  // nothing behavioral to compile

        // Reject modules whose zero-delay netlist has an SCC that can
        // oscillate: the interpreter's event cascade and the settle
        // loop would both run away, but on different budgets.
        if (!lint::buildCombGraph(mod_).cycles().empty())
            return nullptr;

        for (const Item *it : cas)
            if (!lowerContAssign(*it->as<ContAssign>(), it))
                return nullptr;
        for (const Item *it : always)
            if (!lowerAlways(*it->as<AlwaysBlock>(), it))
                return nullptr;

        if (!checkDrivers())
            return nullptr;
        levelize();

        cm_->dirty_.assign(cm_->combItems_.size(), 0);
        design_.compiledStats().combItems += cm_->combItems_.size();
        design_.compiledStats().seqItems += cm_->seqItems_.size();
        return std::move(cm_);
    }

  private:
    Design &design_;
    InstanceScope &scope_;
    const Module &mod_;
    std::unique_ptr<CompiledModule> cm_;

    /** Per comb/seq item: target + trigger signal sets for the driver
     *  checks and the levelization edges. */
    std::vector<std::unordered_set<Signal *>> combTargetSigs_;
    std::vector<std::unordered_set<Signal *>> combTriggerSigs_;
    std::unordered_set<Signal *> seqTargetSigs_;
    std::unordered_set<Signal *> seqEventSigs_;

    void
    resolveNames(const std::vector<std::string> &names,
                 std::unordered_set<Signal *> &out)
    {
        for (const auto &n : names)
            if (SignalRef r = scope_.findSignal(n); r.sig)
                out.insert(r.sig);
    }

    int
    addExpr(const Expr &e)
    {
        ExprSlot slot;
        slot.ast = &e;
        TsCompiler tc(scope_);
        slot.hasTs = tc.compile(e, slot.ts);
        cm_->exprs_.push_back(std::move(slot));
        return static_cast<int>(cm_->exprs_.size() - 1);
    }

    int
    addTarget(const Expr &lhs)
    {
        TargetSlot slot;
        slot.ast = &lhs;
        if (lhs.kind == NodeKind::Ident) {
            // Identifier targets have no runtime-evaluated indices, so
            // the WriteTarget the interpreter would resolve on every
            // execution is a constant; resolve it once here.
            slot.fixed = resolveLValue(design_, scope_, lhs);
            if (slot.fixed.slots.size() == 1 && slot.fixed.slots[0].ok &&
                slot.fixed.slots[0].sig &&
                slot.fixed.slots[0].lsb == 0 &&
                slot.fixed.slots[0].width ==
                    slot.fixed.slots[0].sig->width())
                slot.sig = slot.fixed.slots[0].sig;
            else
                slot.fixed = WriteTarget{};  // unresolved: re-resolve
        }
        cm_->targets_.push_back(std::move(slot));
        return static_cast<int>(cm_->targets_.size() - 1);
    }

    size_t
    emit(Instr::Op op, int32_t a = 0, int32_t b = 0)
    {
        code_->push_back({op, a, b});
        return code_->size() - 1;
    }

    std::vector<Instr> *code_ = nullptr;
    bool escNba_ = false;

    void
    compileStmt(const Stmt *stmt)
    {
        if (!stmt)
            return;
        auto &code = *code_;
        switch (stmt->kind) {
          case NodeKind::SeqBlock:
            for (auto &s : stmt->as<SeqBlock>()->stmts)
                compileStmt(s.get());
            return;
          case NodeKind::If: {
            auto *s = stmt->as<If>();
            int c = addExpr(*s->cond);
            size_t jf = emit(Instr::Op::JumpIfFalse, c);
            compileStmt(s->thenStmt.get());
            if (s->elseStmt) {
                size_t j = emit(Instr::Op::Jump);
                code[jf].b = static_cast<int32_t>(code.size());
                compileStmt(s->elseStmt.get());
                code[j].b = static_cast<int32_t>(code.size());
            } else {
                code[jf].b = static_cast<int32_t>(code.size());
            }
            return;
          }
          case NodeKind::Case: {
            auto *s = stmt->as<Case>();
            CaseInfo ci;
            ci.type = s->type;
            ci.subj = addExpr(*s->subject);
            size_t cpos = emit(Instr::Op::Case);
            const CaseItem *dflt = nullptr;
            std::vector<size_t> jumps;
            for (auto &item : s->items) {
                if (item.labels.empty()) {
                    dflt = &item;
                    continue;
                }
                CaseInfo::Arm arm;
                for (auto &lab : item.labels)
                    arm.labels.push_back(addExpr(*lab));
                arm.pc = static_cast<int>(code.size());
                compileStmt(item.body.get());
                jumps.push_back(emit(Instr::Op::Jump));
                ci.arms.push_back(std::move(arm));
            }
            if (dflt) {
                ci.defaultPc = static_cast<int>(code.size());
                compileStmt(dflt->body.get());
            }
            int end = static_cast<int>(code.size());
            if (!dflt)
                ci.defaultPc = end;
            for (size_t j : jumps)
                code[j].b = end;
            cm_->cases_.push_back(std::move(ci));
            code[cpos].a =
                static_cast<int32_t>(cm_->cases_.size() - 1);
            return;
          }
          case NodeKind::For: {
            auto *s = stmt->as<For>();
            compileStmt(s->init.get());
            size_t loop = code.size();
            int c = addExpr(*s->cond);
            size_t jf = emit(Instr::Op::JumpIfFalse, c);
            compileStmt(s->body.get());
            compileStmt(s->step.get());
            emit(Instr::Op::Jump, 0, static_cast<int32_t>(loop));
            code[jf].b = static_cast<int32_t>(code.size());
            return;
          }
          case NodeKind::While: {
            auto *s = stmt->as<While>();
            size_t loop = code.size();
            int c = addExpr(*s->cond);
            size_t jf = emit(Instr::Op::JumpIfFalse, c);
            compileStmt(s->body.get());
            emit(Instr::Op::Jump, 0, static_cast<int32_t>(loop));
            code[jf].b = static_cast<int32_t>(code.size());
            return;
          }
          case NodeKind::Assign: {
            auto *s = stmt->as<Assign>();
            if (!s->delay) {
                emit(s->blocking ? Instr::Op::Assign
                                 : Instr::Op::AssignNba,
                     addExpr(*s->rhs), addTarget(*s->lhs));
                return;
            }
            break;  // delayed NBA: escape below
          }
          case NodeKind::NullStmt:
            return;
          default:
            break;
        }
        // Escape: run the statement through the interpreter's
        // synchronous executor for exact semantics.
        if (subtreeHasNba(*stmt))
            escNba_ = true;
        cm_->stmts_.push_back(stmt);
        emit(Instr::Op::Exec,
             static_cast<int32_t>(cm_->stmts_.size() - 1));
    }

    void
    compileBody(const Stmt *stmt, Program &prog, bool &escNba)
    {
        code_ = &prog.code;
        escNba_ = false;
        compileStmt(stmt);
        emit(Instr::Op::End);
        escNba = escNba_;
        code_ = nullptr;
    }

    bool
    lowerContAssign(const ContAssign &ca, const Item *item)
    {
        // $random / function calls in a drive would run a different
        // number of times under batched settling.
        if (exprHasCall(*ca.rhs) || exprHasCall(*ca.lhs))
            return false;

        CompiledModule::CombItem ci;
        ci.isContAssign = true;

        // Mirror makeContAssign's subscribe set: every identifier the
        // rhs reads plus the identifiers inside target index
        // expressions (not the target name itself).
        std::unordered_set<Signal *> trig;
        resolveNames(collectIdents(*ca.rhs), trig);
        const_cast<Expr &>(*ca.lhs).forEachChild([&](Node *c) {
            if (c)
                resolveNames(collectIdents(*c), trig);
        });
        ci.triggers.assign(trig.begin(), trig.end());
        std::sort(ci.triggers.begin(), ci.triggers.end());

        code_ = &ci.prog.code;
        emit(Instr::Op::Assign, addExpr(*ca.rhs), addTarget(*ca.lhs));
        emit(Instr::Op::End);
        code_ = nullptr;

        std::vector<std::string> tnames;
        lint::collectTargets(*ca.lhs, tnames);
        combTargetSigs_.emplace_back();
        resolveNames(tnames, combTargetSigs_.back());
        combTriggerSigs_.push_back(trig);

        cm_->combItems_.push_back(std::move(ci));
        cm_->combByItem_.emplace_back(
            item, static_cast<int>(cm_->combItems_.size() - 1));
        return true;
    }

    bool
    lowerAlways(const AlwaysBlock &b, const Item *item)
    {
        if (!b.body)
            return true;  // elaborator skips bodyless blocks entirely
        if (b.body->kind != NodeKind::EventCtrl)
            return false;  // delay-paced or free-running process
        auto *ec = b.body->as<EventCtrl>();
        const Stmt *inner = ec->stmt.get();
        if (inner && mightSuspend(*inner))
            return false;

        if (lint::isCombAlways(b))
            return lowerComb(*ec, inner, item);
        return lowerSeq(*ec, inner, item);
    }

    bool
    lowerComb(const EventCtrl &ec, const Stmt *inner, const Item *item)
    {
        if (inner && combImpure(*inner))
            return false;

        // Trigger set: exactly resolveEvents' sensitivity. @* watches
        // every identifier the body reads; an explicit list watches the
        // listed names. Names resolving to named events need event
        // waiters we cannot model with watchers -> fall back.
        std::unordered_set<Signal *> trig;
        if (ec.star) {
            if (inner)
                resolveNames(collectIdents(*inner), trig);
        } else {
            for (auto &ev : ec.events) {
                std::vector<std::string> names;
                if (ev.signal->kind == NodeKind::Ident)
                    names.push_back(ev.signal->as<Ident>()->name);
                else if (ev.signal->kind == NodeKind::Index)
                    return false;  // bit-select waits need waiters
                else
                    names = collectIdents(*ev.signal);
                for (auto &n : names) {
                    if (SignalRef r = scope_.findSignal(n); r.sig)
                        trig.insert(r.sig);
                    else if (scope_.findEvent(n))
                        return false;
                }
            }
        }

        CompiledModule::CombItem ci;
        ci.isContAssign = false;
        ci.triggers.assign(trig.begin(), trig.end());
        std::sort(ci.triggers.begin(), ci.triggers.end());

        bool escNba = false;
        compileBody(inner, ci.prog, escNba);
        if (escNba)
            return false;  // unreachable (combImpure rejects NBAs)

        std::vector<std::string> tnames;
        if (inner)
            collectAssignTargets(*inner, tnames);
        combTargetSigs_.emplace_back();
        resolveNames(tnames, combTargetSigs_.back());
        combTriggerSigs_.push_back(trig);

        cm_->combItems_.push_back(std::move(ci));
        cm_->combByItem_.emplace_back(
            item, static_cast<int>(cm_->combItems_.size() - 1));
        return true;
    }

    bool
    lowerSeq(const EventCtrl &ec, const Stmt *inner, const Item *item)
    {
        if (ec.star || ec.events.empty())
            return false;
        CompiledModule::SeqItem si;
        for (auto &ev : ec.events) {
            if (ev.edge == Edge::Level)
                return false;  // mixed sensitivity
            if (ev.signal->kind != NodeKind::Ident)
                return false;
            const std::string &n = ev.signal->as<Ident>()->name;
            if (SignalRef r = scope_.findSignal(n); r.sig) {
                si.events.push_back({r.sig, ev.edge});
                seqEventSigs_.insert(r.sig);
            } else if (scope_.findEvent(n)) {
                return false;  // named-event wait
            }
            // Unresolved names never wake the process in either
            // backend; simply skip them.
        }

        compileBody(inner, si.prog, si.directNba);

        std::vector<std::string> tnames;
        if (inner)
            collectAssignTargets(*inner, tnames);
        resolveNames(tnames, seqTargetSigs_);

        cm_->seqItems_.push_back(std::move(si));
        cm_->seqByItem_.emplace_back(
            item, static_cast<int>(cm_->seqItems_.size() - 1));
        return true;
    }

    /**
     * Structural safety checks:
     *  - a signal driven by two comb items (or by a comb item and a
     *    seq item) keeps interpreter-defined race behavior -> fallback;
     *  - a seq event signal driven by a comb item of the same module
     *    (gated clock) is sensitive to t=0 arm/update interleaving
     *    the settle batching would change -> fallback.
     */
    bool
    checkDrivers()
    {
        std::unordered_set<Signal *> seen;
        for (auto &tset : combTargetSigs_)
            for (Signal *s : tset) {
                if (!seen.insert(s).second)
                    return false;
                if (seqTargetSigs_.count(s))
                    return false;
                if (seqEventSigs_.count(s))
                    return false;
            }
        return true;
    }

    /** Kahn levelization of comb items over trigger edges. Items left
     *  over by a trigger-graph cycle (possible even without a netlist
     *  SCC) are appended in source order; the settle loop's re-marking
     *  still reaches the same fixpoint, just in more passes. */
    void
    levelize()
    {
        int n = static_cast<int>(cm_->combItems_.size());
        std::vector<std::vector<int>> adj(n);
        std::vector<int> indeg(n, 0);
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                bool edge = false;
                for (Signal *s : combTargetSigs_[i])
                    if (combTriggerSigs_[j].count(s)) {
                        edge = true;
                        break;
                    }
                if (edge) {
                    adj[i].push_back(j);
                    ++indeg[j];
                }
            }
        std::vector<char> done(n, 0);
        cm_->topo_.clear();
        for (;;) {
            int pick = -1;
            for (int i = 0; i < n; ++i)
                if (!done[i] && indeg[i] == 0) {
                    pick = i;
                    break;
                }
            if (pick < 0)
                break;
            done[pick] = 1;
            cm_->topo_.push_back(pick);
            for (int j : adj[pick])
                --indeg[j];
        }
        for (int i = 0; i < n; ++i)
            if (!done[i])
                cm_->topo_.push_back(i);
    }
};

// --------------------------------------------------------------------
// CompiledModule
// --------------------------------------------------------------------

CompiledModule::CompiledModule(Design &design, InstanceScope &scope)
    : design_(design), scope_(scope)
{}

CompiledModule::~CompiledModule() = default;

std::unique_ptr<CompiledModule>
CompiledModule::compile(Design &design, InstanceScope &scope,
                        const Module &mod)
{
    ModuleCompiler mc(design, scope, mod);
    return mc.run();
}

void
CompiledModule::placeItem(const Item &item)
{
    for (auto &[it, idx] : combByItem_) {
        if (it != &item)
            continue;
        int i = idx;
        if (combItems_[i].isContAssign) {
            // Mirror makeContAssign: watchers attach immediately and
            // an unconditional initial evaluation runs at this queue
            // position.
            armComb(i);
            dirty_[i] = 1;
            design_.scheduler().scheduleActive([this, i] {
                if (!dirty_[i])
                    return;
                dirty_[i] = 0;
                try {
                    execComb(i);
                } catch (const SimAbort &e) {
                    design_.scheduler().noteAbort(e.what());
                } catch (const std::exception &e) {
                    design_.scheduler().noteCrash(
                        std::string("process crashed: ") + e.what());
                }
            });
        } else {
            // Mirror Process::start: the process would run to its
            // event control at this position and only then arm its
            // waiters; no initial execution.
            design_.scheduler().scheduleActive(
                [this, i] { armComb(i); });
        }
        return;
    }
    for (auto &[it, idx] : seqByItem_) {
        if (it != &item)
            continue;
        int i = idx;
        design_.scheduler().scheduleActive([this, i] { armSeq(i); });
        return;
    }
}

void
CompiledModule::markDirty(int idx)
{
    dirty_[idx] = 1;
    if (settlePending_)
        return;
    settlePending_ = true;
    design_.scheduler().scheduleActive([this] { settle(); });
}

void
CompiledModule::settle()
{
    try {
        bool progress = true;
        while (progress) {
            progress = false;
            for (int i : topo_) {
                if (!dirty_[i])
                    continue;
                dirty_[i] = 0;
                progress = true;
                execComb(i);
            }
        }
    } catch (const SimAbort &e) {
        design_.scheduler().noteAbort(e.what());
    } catch (const std::exception &e) {
        design_.scheduler().noteCrash(
            std::string("process crashed: ") + e.what());
    }
    settlePending_ = false;
}

void
CompiledModule::execComb(int idx)
{
    design_.chargeStmt();
    execProgram(combItems_[idx].prog, nullptr);
}

void
CompiledModule::armComb(int idx)
{
    for (Signal *s : combItems_[idx].triggers)
        s->addWatcher([this, idx](const LogicVec &, const LogicVec &) {
            markDirty(idx);
        });
}

void
CompiledModule::armSeq(int idx)
{
    auto handle = std::make_shared<WaitHandle>(
        &design_.scheduler(), [this, idx] { fireSeq(idx); });
    for (auto &ev : seqItems_[idx].events)
        ev.sig->addWaiter(ev.edge, -1, handle);
}

void
CompiledModule::fireSeq(int idx)
{
    SeqItem &it = seqItems_[idx];
    try {
        design_.chargeStmt();
        nbaStage_.clear();
        execProgram(it.prog, &it);
        if (!nbaStage_.empty()) {
            design_.scheduler().scheduleNba(
                [batch = std::move(nbaStage_)] {
                    for (auto &s : batch) {
                        if (s.sig)
                            s.sig->set(s.value);
                        else
                            performWrite(s.dyn, s.value);
                    }
                });
            nbaStage_.clear();
        }
    } catch (const SimAbort &e) {
        design_.scheduler().noteAbort(e.what());
        return;
    } catch (const std::exception &e) {
        design_.scheduler().noteCrash(
            std::string("process crashed: ") + e.what());
        return;
    }
    if (!design_.scheduler().finishRequested())
        armSeq(idx);
}

void
CompiledModule::execProgram(const Program &prog, SeqItem *seq)
{
    Scheduler &sched = design_.scheduler();
    size_t pc = 0;
    for (;;) {
        if (sched.finishRequested())
            return;
        const Instr &in = prog.code[pc];
        switch (in.op) {
          case Instr::Op::End:
            return;
          case Instr::Op::Assign:
            design_.chargeStmt();
            doAssign(in, false, seq);
            ++pc;
            break;
          case Instr::Op::AssignNba:
            design_.chargeStmt();
            doAssign(in, true, seq);
            ++pc;
            break;
          case Instr::Op::JumpIfFalse:
            design_.chargeStmt();
            pc = evalCond(exprs_[in.a])
                     ? pc + 1
                     : static_cast<size_t>(in.b);
            break;
          case Instr::Op::Jump:
            pc = static_cast<size_t>(in.b);
            break;
          case Instr::Op::Case:
            design_.chargeStmt();
            pc = static_cast<size_t>(dispatchCase(in));
            break;
          case Instr::Op::Exec:
            execStmtSync(design_, scope_, *stmts_[in.a]);
            ++pc;
            break;
        }
    }
}

void
CompiledModule::doAssign(const Instr &in, bool nba, SeqItem *seq)
{
    const ExprSlot &es = exprs_[in.a];
    const TargetSlot &ts = targets_[in.b];
    bool haveValue = false;
    LogicVec value{1, Bit::X};

    if (es.hasTs) {
        uint64_t v;
        if (runTs(es.ts, v)) {
            ++design_.compiledStats().twoStateEvals;
            if (ts.sig) {
                if (!nba) {
                    // Settle re-evaluations usually recompute the
                    // value a signal already holds; skipping the
                    // write (and its LogicVec temporary) here is the
                    // compiled backend's hottest shortcut.
                    const LogicVec &cur = ts.sig->value();
                    if (!(cur.toUint64() == v && !cur.hasUnknown()))
                        ts.sig->set(LogicVec(ts.sig->width(), v));
                    return;
                }
                if (seq && !seq->directNba) {
                    nbaStage_.push_back(
                        {ts.sig, WriteTarget{},
                         LogicVec(ts.sig->width(), v)});
                    return;
                }
            }
            value = LogicVec(es.ts.width, v);
            haveValue = true;
        } else {
            ++design_.compiledStats().fourStateFallbacks;
        }
    }
    if (!haveValue)
        value = evalExpr(*es.ast, scope_, design_);

    if (ts.sig) {
        if (!nba) {
            ts.sig->set(value.resized(ts.sig->width()));
            return;
        }
        if (seq && !seq->directNba) {
            nbaStage_.push_back({ts.sig, WriteTarget{},
                                 value.resized(ts.sig->width())});
            return;
        }
        WriteTarget t = ts.fixed;
        design_.scheduler().scheduleNba(
            [t = std::move(t), value] { performWrite(t, value); });
        return;
    }

    WriteTarget t = resolveLValue(design_, scope_, *ts.ast);
    if (!nba) {
        performWrite(t, value);
        return;
    }
    if (seq && !seq->directNba) {
        nbaStage_.push_back({nullptr, std::move(t), value});
        return;
    }
    design_.scheduler().scheduleNba(
        [t = std::move(t), value] { performWrite(t, value); });
}

int
CompiledModule::dispatchCase(const Instr &in)
{
    const CaseInfo &ci = cases_[in.a];
    LogicVec subj = evalOperand(exprs_[ci.subj]);
    for (const auto &arm : ci.arms) {
        for (int lab : arm.labels) {
            LogicVec lv = evalOperand(exprs_[lab]);
            if (caseLabelMatches(ci.type, subj, lv))
                return arm.pc;
        }
    }
    return ci.defaultPc;
}

LogicVec
CompiledModule::evalOperand(const ExprSlot &slot)
{
    if (slot.hasTs) {
        uint64_t v;
        if (runTs(slot.ts, v)) {
            ++design_.compiledStats().twoStateEvals;
            return LogicVec(slot.ts.width, v);
        }
        ++design_.compiledStats().fourStateFallbacks;
    }
    return evalExpr(*slot.ast, scope_, design_);
}

bool
CompiledModule::evalCond(const ExprSlot &slot)
{
    if (slot.hasTs) {
        uint64_t v;
        if (runTs(slot.ts, v)) {
            ++design_.compiledStats().twoStateEvals;
            return v != 0;
        }
        ++design_.compiledStats().fourStateFallbacks;
    }
    return evalExpr(*slot.ast, scope_, design_).isTrue();
}

bool
CompiledModule::runTs(const TsProg &prog, uint64_t &out)
{
    for (Signal *s : prog.sigs)
        if (s->value().hasUnknown())
            return false;

    uint64_t st[kMaxTsStack];
    int sp = 0;
    for (const TsInstr &i : prog.code) {
        switch (i.op) {
          case TsInstr::Op::Sig:
            st[sp++] = prog.sigs[i.arg]->value().toUint64();
            break;
          case TsInstr::Op::Const:
            st[sp++] = prog.consts[i.arg];
            break;
          case TsInstr::Op::Slice:
            st[sp - 1] = (st[sp - 1] >> i.arg) & tsMask(i.w);
            break;
          case TsInstr::Op::Add: {
            uint64_t b = st[--sp];
            st[sp - 1] = (st[sp - 1] + b) & tsMask(i.w);
            break;
          }
          case TsInstr::Op::Sub: {
            uint64_t b = st[--sp];
            st[sp - 1] = (st[sp - 1] - b) & tsMask(i.w);
            break;
          }
          case TsInstr::Op::Mul: {
            uint64_t b = st[--sp];
            st[sp - 1] = (st[sp - 1] * b) & tsMask(i.w);
            break;
          }
          case TsInstr::Op::Div: {
            uint64_t b = st[--sp];
            if (b == 0)
                return false;  // x result: 4-state path
            st[sp - 1] = st[sp - 1] / b;
            break;
          }
          case TsInstr::Op::Mod: {
            uint64_t b = st[--sp];
            if (b == 0)
                return false;
            st[sp - 1] = st[sp - 1] % b;
            break;
          }
          case TsInstr::Op::BitAnd: {
            uint64_t b = st[--sp];
            st[sp - 1] &= b;
            break;
          }
          case TsInstr::Op::BitOr: {
            uint64_t b = st[--sp];
            st[sp - 1] |= b;
            break;
          }
          case TsInstr::Op::BitXor: {
            uint64_t b = st[--sp];
            st[sp - 1] ^= b;
            break;
          }
          case TsInstr::Op::BitXnor: {
            uint64_t b = st[--sp];
            st[sp - 1] = ~(st[sp - 1] ^ b) & tsMask(i.w);
            break;
          }
          case TsInstr::Op::BitNot:
            st[sp - 1] = ~st[sp - 1] & tsMask(i.w);
            break;
          case TsInstr::Op::Neg:
            st[sp - 1] = (~st[sp - 1] + 1) & tsMask(i.w);
            break;
          case TsInstr::Op::Shl: {
            uint64_t n = st[--sp];
            uint64_t a = st[sp - 1];
            st[sp - 1] = n >= static_cast<uint64_t>(i.wa)
                             ? 0
                             : (a << n) & tsMask(i.w);
            break;
          }
          case TsInstr::Op::Shr: {
            uint64_t n = st[--sp];
            uint64_t a = st[sp - 1];
            st[sp - 1] = n >= static_cast<uint64_t>(i.wa) ? 0 : a >> n;
            break;
          }
          case TsInstr::Op::Eq: {
            uint64_t b = st[--sp];
            st[sp - 1] = st[sp - 1] == b;
            break;
          }
          case TsInstr::Op::Neq: {
            uint64_t b = st[--sp];
            st[sp - 1] = st[sp - 1] != b;
            break;
          }
          case TsInstr::Op::Lt: {
            uint64_t b = st[--sp];
            st[sp - 1] = st[sp - 1] < b;
            break;
          }
          case TsInstr::Op::Le: {
            uint64_t b = st[--sp];
            st[sp - 1] = st[sp - 1] <= b;
            break;
          }
          case TsInstr::Op::Gt: {
            uint64_t b = st[--sp];
            st[sp - 1] = st[sp - 1] > b;
            break;
          }
          case TsInstr::Op::Ge: {
            uint64_t b = st[--sp];
            st[sp - 1] = st[sp - 1] >= b;
            break;
          }
          case TsInstr::Op::LogAnd: {
            uint64_t b = st[--sp];
            st[sp - 1] = (st[sp - 1] != 0) && (b != 0);
            break;
          }
          case TsInstr::Op::LogOr: {
            uint64_t b = st[--sp];
            st[sp - 1] = (st[sp - 1] != 0) || (b != 0);
            break;
          }
          case TsInstr::Op::LogNot:
            st[sp - 1] = st[sp - 1] == 0;
            break;
          case TsInstr::Op::RedAnd:
            st[sp - 1] = st[sp - 1] == tsMask(i.wa);
            break;
          case TsInstr::Op::RedOr:
            st[sp - 1] = st[sp - 1] != 0;
            break;
          case TsInstr::Op::RedXor:
            st[sp - 1] =
                static_cast<uint64_t>(__builtin_popcountll(st[sp - 1]) &
                                      1);
            break;
          case TsInstr::Op::RedNand:
            st[sp - 1] = st[sp - 1] != tsMask(i.wa);
            break;
          case TsInstr::Op::RedNor:
            st[sp - 1] = st[sp - 1] == 0;
            break;
          case TsInstr::Op::RedXnor:
            st[sp - 1] = static_cast<uint64_t>(
                ~__builtin_popcountll(st[sp - 1]) & 1);
            break;
          case TsInstr::Op::Ternary: {
            uint64_t e = st[--sp];
            uint64_t t = st[--sp];
            st[sp - 1] = st[sp - 1] ? t : e;
            break;
          }
          case TsInstr::Op::Concat2: {
            uint64_t lo = st[--sp];
            st[sp - 1] = (i.arg >= 64 ? 0 : (st[sp - 1] << i.arg)) | lo;
            break;
          }
          case TsInstr::Op::Repl: {
            uint64_t v = st[sp - 1];
            uint64_t r = 0;
            for (int32_t k = 0; k < i.arg; ++k)
                r = (r << i.wa) | v;
            st[sp - 1] = r & tsMask(i.w);
            break;
          }
        }
    }
    out = st[0];
    return true;
}

} // namespace cirfix::sim
