#pragma once

/**
 * @file
 * Coroutine-based execution of behavioral Verilog.
 *
 * Every initial/always block becomes a Process whose body is executed
 * by a recursive C++20 coroutine (Task). Timing controls (#delay,
 * @(events), wait) suspend the whole coroutine stack; the scheduler
 * resumes the innermost frame when the delay elapses or a matching
 * edge fires, and completion propagates outward via symmetric
 * transfer. This mirrors how an event-driven simulator interleaves the
 * parallel processes of a hardware design.
 */

#include <coroutine>
#include <exception>
#include <string>
#include <utility>

#include "sim/design.h"
#include "verilog/ast.h"

namespace cirfix::sim {

/**
 * An eagerly-recursive coroutine task with symmetric transfer.
 *
 * Tasks are awaited exactly once ("co_await execStmt(...)"); the
 * temporary Task owns the child frame for the duration of the await,
 * so destroying a suspended root frame unwinds the whole stack.
 */
class [[nodiscard]] Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation = std::noop_coroutine();
        std::exception_ptr exception;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                return h.promise().continuation;
            }
            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    // Awaiting a task starts the child frame via symmetric transfer.
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }
    void
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    /** Kick off a root task (non-awaited use). */
    void resume() { handle_.resume(); }
    bool done() const { return handle_.done(); }
    std::exception_ptr
    exception() const
    {
        return handle_.promise().exception;
    }

  private:
    std::coroutine_handle<promise_type> handle_;
};

/** One initial or always block, running as a coroutine. */
class Process
{
  public:
    enum class Kind { Always, Initial };

    Process(Design &design, InstanceScope &scope, Kind kind,
            const verilog::Stmt &body, std::string name);

    /** Schedule the first resumption (elaboration calls this at t=0). */
    void start();

    const std::string &name() const { return name_; }
    bool done() const { return root_.done(); }

  private:
    static Task root(Process *self);

    Design &design_;
    InstanceScope &scope_;
    Kind kind_;
    const verilog::Stmt &body_;
    std::string name_;
    Task root_;
};

/**
 * Execute one statement in @p scope. This is the interpreter entry
 * point; Process::root drives it, and it recurses via co_await.
 */
Task execStmt(Design &design, InstanceScope &scope,
              const verilog::Stmt &stmt);

/**
 * Synchronously execute a statement that cannot suspend (see
 * mightSuspend); used by the interpreter's fast path and by
 * user-defined function evaluation.
 */
void execStmtSync(Design &design, InstanceScope &scope,
                  const verilog::Stmt &stmt);

/** Can executing @p stmt suspend the process? (cached analysis) */
bool mightSuspend(const verilog::Stmt &stmt);

/** IEEE case/casez/casex label comparison (shared with the compiled
 *  backend so both engines agree bit-for-bit). */
bool caseLabelMatches(verilog::CaseType type, const LogicVec &subj,
                      const LogicVec &lab);

} // namespace cirfix::sim
